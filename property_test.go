package iceclave

import (
	"testing"
	"testing/quick"

	"iceclave/internal/host"
	"iceclave/internal/query"
)

// TestHostTEEQueryEquivalenceProperty is the offload-correctness
// property: for any dataset seed, every query program must return
// byte-identical output whether it runs host-side over plain memory or
// inside an in-storage TEE over the permission-checked, bus-encrypted
// data path. This is what makes the offload transparent to applications.
func TestHostTEEQueryEquivalenceProperty(t *testing.T) {
	programs := []struct {
		name string
		p    query.Program
	}{
		{"Q1", query.Q1}, {"Q12", query.Q12},
		{"Filter", query.Filter}, {"Aggregate", query.Aggregate},
	}
	prop := func(seed uint64) bool {
		rows := 1200 + int(seed%1800)
		ssd, err := Open(Options{})
		if err != nil {
			t.Logf("open: %v", err)
			return false
		}
		ds := query.GenerateTPCH(rows, seed)
		sd, err := ssd.StoreDataset(ds, 0)
		if err != nil {
			t.Logf("seed %d: store: %v", seed, err)
			return false
		}
		mem := query.NewMemStore(4096)
		sdHost, err := query.GenerateTPCH(rows, seed).Store(mem, 0)
		if err != nil {
			t.Logf("seed %d: host store: %v", seed, err)
			return false
		}
		for _, pr := range programs {
			var hm query.Meter
			want, err := pr.p(mem, sdHost, &hm)
			if err != nil {
				t.Logf("seed %d: %s host-side: %v", seed, pr.name, err)
				return false
			}
			got, err := ssd.Execute(host.Offload{
				TaskID: uint32(seed),
				Binary: make([]byte, 32<<10),
				LPAs:   sd.AllLPAs(4096),
			}, func(st query.Store, m *query.Meter) ([]byte, error) {
				out, err := pr.p(st, sd, m)
				return []byte(out), err
			})
			if err != nil {
				t.Logf("seed %d: %s TEE-side: %v", seed, pr.name, err)
				return false
			}
			if string(got) != want {
				t.Logf("seed %d: %s diverges:\nTEE:  %q\nhost: %q", seed, pr.name, got, want)
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 4}); err != nil {
		t.Fatal(err)
	}
}
