// iceclave-trace records the functional execution of each workload and
// dumps its characterization: the Table 1 write ratios plus page and
// instruction counts — useful when recalibrating the timing model.
package main

import (
	"flag"
	"fmt"
	"log"

	"iceclave/internal/workload"
)

func main() {
	rows := flag.Int("rows", 0, "lineitem rows (default: the standard small scale)")
	flag.Parse()

	sc := workload.SmallScale()
	if *rows > 0 {
		sc.LineitemRows = *rows
	}
	fmt.Printf("%-12s %10s %10s %12s %10s %10s %12s\n",
		"workload", "pagesRead", "pagesWrit", "instructions", "memReads", "memWrites", "writeRatio")
	for _, w := range workload.Standard() {
		tr, err := workload.Record(w, sc, 4096)
		if err != nil {
			log.Fatalf("%s: %v", w.Name, err)
		}
		m := tr.Meter
		fmt.Printf("%-12s %10d %10d %12d %10d %10d %12.3e\n",
			w.Name, m.PagesRead, m.PagesWritten, m.Instructions,
			m.MemReads, m.MemWrites, m.WriteRatio())
	}
	fmt.Println("\npaper Table 1 write ratios for comparison:")
	for _, w := range workload.Standard() {
		fmt.Printf("%-12s %12.3e\n", w.Name, w.PaperWriteRatio)
	}
}
