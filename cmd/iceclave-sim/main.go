// iceclave-sim replays one workload under one execution mode and prints
// the timing breakdown — the single-run face of the simulator.
//
// Usage:
//
//	iceclave-sim -workload "TPC-H Q1" -mode iceclave [-channels 8]
//	             [-readlat 50] [-rows 120000] [-cpu a72|a77|a53|a72slow]
package main

import (
	"flag"
	"fmt"
	"log"
	"strings"

	"iceclave/internal/core"
	"iceclave/internal/cpu"
	"iceclave/internal/sim"
	"iceclave/internal/workload"
)

func main() {
	var (
		name     = flag.String("workload", "TPC-H Q1", "workload name (see -list)")
		mode     = flag.String("mode", "iceclave", "host | hostsgx | isc | iceclave")
		channels = flag.Int("channels", 8, "flash channels")
		readlat  = flag.Int("readlat", 50, "flash read latency (µs)")
		rows     = flag.Int("rows", 120_000, "lineitem rows (dataset scale)")
		cpuName  = flag.String("cpu", "a72", "storage core: a72 | a72slow | a77 | a53")
		list     = flag.Bool("list", false, "list workloads and exit")
	)
	flag.Parse()

	if *list {
		for _, n := range workload.Names() {
			fmt.Println(n)
		}
		return
	}

	w, err := workload.ByName(*name)
	if err != nil {
		log.Fatal(err)
	}
	sc := workload.SmallScale()
	sc.LineitemRows = *rows
	fmt.Printf("recording %s at %d lineitem rows...\n", w.Name, sc.LineitemRows)
	tr, err := workload.Record(w, sc, 4096)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("trace: %d steps, %d pages read, %d written, %d instructions, result %q\n",
		len(tr.Steps), tr.Meter.PagesRead, tr.Meter.PagesWritten,
		tr.Meter.Instructions, firstLine(tr.Result))

	cfg := core.DefaultConfig()
	cfg.Channels = *channels
	cfg.FlashTiming.ReadLatency = sim.Duration(*readlat) * sim.Microsecond
	switch strings.ToLower(*cpuName) {
	case "a72":
		cfg.StorageCore = cpu.CortexA72
	case "a72slow":
		cfg.StorageCore = cpu.CortexA72Slow
	case "a77":
		cfg.StorageCore = cpu.CortexA77
	case "a53":
		cfg.StorageCore = cpu.CortexA53
	default:
		log.Fatalf("unknown cpu %q", *cpuName)
	}

	var m core.Mode
	switch strings.ToLower(*mode) {
	case "host":
		m = core.ModeHost
	case "hostsgx", "host+sgx":
		m = core.ModeHostSGX
	case "isc":
		m = core.ModeISC
	case "iceclave":
		m = core.ModeIceClave
	default:
		log.Fatalf("unknown mode %q", *mode)
	}

	r, err := core.Run(tr, m, cfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\n%s on %s (%d channels, tRD=%dµs, %s)\n",
		w.Name, m, *channels, *readlat, cfg.StorageCore.Name)
	fmt.Printf("  total:        %v\n", r.Total)
	fmt.Printf("  load stall:   %v\n", r.LoadTime)
	fmt.Printf("  compute:      %v\n", r.ComputeTime)
	fmt.Printf("  mem security: %v\n", r.SecurityTime)
	fmt.Printf("  tee overhead: %v\n", r.TEETime)
	fmt.Printf("  CMT miss:     %.4f%%\n", 100*r.CMTMissRate)
	if m == core.ModeIceClave {
		fmt.Printf("  MEE traffic:  +%.2f%% enc, +%.2f%% verify\n",
			100*r.MEE.EncryptionOverhead(), 100*r.MEE.VerificationOverhead())
	}
	fmt.Printf("  throughput:   %.1f MB/s of input\n", r.Throughput(tr.InputBytes())/1e6)
}

func firstLine(s string) string {
	if i := strings.IndexByte(s, '\n'); i >= 0 {
		return s[:i]
	}
	return s
}
