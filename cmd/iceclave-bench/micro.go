package main

import (
	"fmt"
	"runtime"
	"sync"
	"time"

	"iceclave/internal/core"
	"iceclave/internal/experiments"
	"iceclave/internal/fault"
	"iceclave/internal/flash"
	"iceclave/internal/ftl"
	"iceclave/internal/mee"
	"iceclave/internal/sched"
	"iceclave/internal/sim"
	"iceclave/internal/trivium"
	"iceclave/internal/workload"
)

// triviumResults records the cipher microbenchmark: one encrypted-page
// unit of work (key schedule + 4 KB keystream) for the bit-serial
// reference and the word-parallel production engine. The speedup is the
// number `make bench-compare` checks against the >= 10x floor.
type triviumResults struct {
	PageBytes          int     `json:"page_bytes"`
	BitserialNsPerPage int64   `json:"bitserial_ns_per_page"`
	Word64NsPerPage    int64   `json:"word64_ns_per_page"`
	Speedup            float64 `json:"speedup"`
	Word64MBPerS       float64 `json:"word64_mb_per_s"`
}

// ftlResults records the lock-sharding microbenchmark: write+read round
// trips through the FTL with all tenants on one goroutine vs one goroutine
// per channel (each pinned to its own channel's LPAs, so the sharded locks
// never collide). On a 1-CPU container parallel_speedup sits near 1x; see
// docs/BENCHMARKS.md.
type ftlResults struct {
	Channels           int     `json:"channels"`
	Stripes            int     `json:"mapping_stripes"`
	OpsPerTenant       int     `json:"ops_per_tenant"`
	SerialPagesPerSec  float64 `json:"serial_pages_per_sec"`
	ShardedPagesPerSec float64 `json:"sharded_parallel_pages_per_sec"`
	ParallelSpeedup    float64 `json:"parallel_speedup"`
}

// benchTrivium times Reset+Keystream over a flash page for both cipher
// implementations. The bit-serial oracle is ~100x slower, so it gets a
// smaller iteration budget at equal statistical weight.
func benchTrivium() triviumResults {
	const pageBytes = 4096
	key := []byte("iceclave-k")
	iv := make([]byte, trivium.IVSize)
	page := make([]byte, pageBytes)

	var ref trivium.Reference
	const refIters = 64
	t0 := time.Now()
	for i := 0; i < refIters; i++ {
		iv[9] = byte(i)
		ref.Reset(key, iv)
		ref.Keystream(page)
	}
	bitNs := time.Since(t0).Nanoseconds() / refIters

	var word trivium.Cipher
	const wordIters = 8192
	t1 := time.Now()
	for i := 0; i < wordIters; i++ {
		iv[9] = byte(i)
		word.Reset(key, iv)
		word.Keystream(page)
	}
	wordNs := time.Since(t1).Nanoseconds() / wordIters

	return triviumResults{
		PageBytes:          pageBytes,
		BitserialNsPerPage: bitNs,
		Word64NsPerPage:    wordNs,
		Speedup:            float64(bitNs) / float64(wordNs),
		Word64MBPerS:       float64(pageBytes) / (float64(wordNs) / 1e9) / (1 << 20),
	}
}

// benchFTL measures cross-channel scaling of the sharded FTL: the same
// per-tenant op sequence (out-of-place write + fused translate/read, with
// enough rewrites to trigger GC) run serially and then with one goroutine
// per channel.
func benchFTL() (ftlResults, error) {
	const opsPerTenant = 2000
	geo := flash.Geometry{
		Channels:        4,
		ChipsPerChannel: 1,
		DiesPerChip:     1,
		PlanesPerDie:    1,
		BlocksPerPlane:  16,
		PagesPerBlock:   16,
		PageSize:        4096,
	}
	build := func() (*ftl.FTL, error) {
		dev, err := flash.NewDevice(geo, flash.DefaultTiming())
		if err != nil {
			return nil, err
		}
		return ftl.New(dev, ftl.Config{}), nil
	}
	payload := make([]byte, 64)
	tenant := func(f *ftl.FTL, ch int) error {
		lpas := [4]ftl.LPA{}
		for i := range lpas {
			lpas[i] = ftl.LPA(ch + i*geo.Channels) // pinned to channel ch
		}
		at := sim.Time(0)
		for r := 0; r < opsPerTenant; r++ {
			l := lpas[r%len(lpas)]
			done, err := f.Write(at, l, payload)
			if err != nil {
				return err
			}
			if _, _, err := f.Read(done, l); err != nil {
				return err
			}
			at = done
		}
		return nil
	}

	fSerial, err := build()
	if err != nil {
		return ftlResults{}, err
	}
	t0 := time.Now()
	for ch := 0; ch < geo.Channels; ch++ {
		if err := tenant(fSerial, ch); err != nil {
			return ftlResults{}, err
		}
	}
	serialSec := time.Since(t0).Seconds()

	fPar, err := build()
	if err != nil {
		return ftlResults{}, err
	}
	var wg sync.WaitGroup
	errCh := make(chan error, geo.Channels)
	t1 := time.Now()
	for ch := 0; ch < geo.Channels; ch++ {
		wg.Add(1)
		go func(ch int) {
			defer wg.Done()
			if err := tenant(fPar, ch); err != nil {
				errCh <- err
			}
		}(ch)
	}
	wg.Wait()
	parSec := time.Since(t1).Seconds()
	close(errCh)
	for err := range errCh {
		return ftlResults{}, err
	}

	pages := float64(geo.Channels * opsPerTenant * 2) // one write + one read per op
	return ftlResults{
		Channels:           geo.Channels,
		Stripes:            fPar.Stripes(),
		OpsPerTenant:       opsPerTenant,
		SerialPagesPerSec:  pages / serialSec,
		ShardedPagesPerSec: pages / parSec,
		ParallelSpeedup:    serialSec / parSec,
	}, nil
}

// dieOverlapResults records the die-pipelining microbenchmark in
// SIMULATED time: the same burst of programs aimed at one channel,
// completing on a single die (serialized by tPROG) versus striped across
// the channel's dies (only the short bus transfers serialize). The
// speedup is virtual-time, so it is deterministic — `make bench-compare`
// fails if it regresses to the serialized baseline.
type dieOverlapResults struct {
	DiesPerChannel   int     `json:"dies_per_channel"`
	Programs         int     `json:"programs"`
	SerializedNs     int64   `json:"single_die_done_ns"`
	PipelinedNs      int64   `json:"multi_die_done_ns"`
	OverlapSpeedup   float64 `json:"overlap_speedup"`
	ProgramLatencyNs int64   `json:"tprog_ns"`
}

// queueingResults records the virtual-time admission microbenchmark: N
// equal-length tenant jobs through the sched simulated-time gate with a
// fixed slot count, once per grant policy. Deterministic: with service S
// and k slots, per-release job i waits floor(i/k)*S; the batched run
// additionally rounds every grant up to its quantum tick, and
// batched_grant_ticks counts the scheduling passes the firmware would
// run — the quantity batching exists to bound.
type queueingResults struct {
	Tenants           int   `json:"tenants"`
	Slots             int   `json:"slots"`
	ServiceNs         int64 `json:"service_ns"`
	TotalWaitNs       int64 `json:"total_queue_wait_ns"`
	MeanWaitNs        int64 `json:"mean_queue_wait_ns"`
	BatchedQuantumNs  int64 `json:"batched_quantum_ns"`
	BatchedMeanWaitNs int64 `json:"batched_mean_queue_wait_ns"`
	BatchedTicks      int64 `json:"batched_grant_ticks"`
}

// benchDieOverlap drives one burst of same-channel programs through the
// FTL against a single-die channel and a multi-die channel and compares
// the virtual completion times.
func benchDieOverlap() (dieOverlapResults, error) {
	const programs = 8
	const diesPerChannel = 4
	run := func(dies int) (sim.Time, error) {
		geo := flash.Geometry{
			Channels:        2,
			ChipsPerChannel: dies,
			DiesPerChip:     1,
			PlanesPerDie:    1,
			BlocksPerPlane:  8,
			PagesPerBlock:   16,
			PageSize:        4096,
		}
		dev, err := flash.NewDevice(geo, flash.DefaultTiming())
		if err != nil {
			return 0, err
		}
		f := ftl.New(dev, ftl.Config{})
		var last sim.Time
		for i := 0; i < programs; i++ {
			// Even LPAs stay on channel 0; all issued at t=0 so the only
			// serialization is what the timing model imposes.
			done, err := f.Write(0, ftl.LPA(2*i), nil)
			if err != nil {
				return 0, err
			}
			if done > last {
				last = done
			}
		}
		return last, nil
	}
	serial, err := run(1)
	if err != nil {
		return dieOverlapResults{}, err
	}
	pipelined, err := run(diesPerChannel)
	if err != nil {
		return dieOverlapResults{}, err
	}
	return dieOverlapResults{
		DiesPerChannel:   diesPerChannel,
		Programs:         programs,
		SerializedNs:     int64(serial),
		PipelinedNs:      int64(pipelined),
		OverlapSpeedup:   float64(serial) / float64(pipelined),
		ProgramLatencyNs: int64(flash.DefaultTiming().ProgramLatency),
	}, nil
}

// writeStormResults records the many-channel write-storm microbenchmark:
// the same program/invalidate/erase churn against flash.Device, run with
// every channel's ops on one goroutine and then with one goroutine per
// channel. The ops go straight at the device (no FTL), so the measurement
// isolates the device's own locking: with per-channel functional shards,
// cross-channel writers share no lock and the parallel pass scales with
// available cores. On a 1-CPU container the speedup sits near 1x (see
// docs/BENCHMARKS.md); the gate floor adapts to GOMAXPROCS so the
// bench-compare check still catches a sharding regression (parallel
// falling well below serial means cross-channel ops are contending on a
// shared lock again) without demanding parallelism one core cannot give.
type writeStormResults struct {
	Channels            int     `json:"channels"`
	ProgramsPerChannel  int     `json:"programs_per_channel"`
	SerialPagesPerSec   float64 `json:"serial_pages_per_sec"`
	ParallelPagesPerSec float64 `json:"parallel_pages_per_sec"`
	ParallelSpeedup     float64 `json:"parallel_speedup"`
	GateFloor           float64 `json:"gate_floor"`
	GOMAXPROCS          int     `json:"gomaxprocs"`
}

// writeStormGate returns the bench-compare floor for the write-storm
// speedup: with >= 4 cores the cross-channel storm must scale at least
// 2x (the die-overlap analogue); with fewer cores wall-clock parallelism
// is unavailable, so the gate only rejects the pathological regression
// where the parallel pass collapses well below serial — the signature of
// cross-channel operations serializing on a re-introduced shared lock.
func writeStormGate(procs int) float64 {
	if procs >= 4 {
		return 2.0
	}
	return 0.7
}

// benchWriteStorm drives an 8-channel program/invalidate/erase storm
// through the device, serially and with one goroutine per channel, each
// pinned to its own channel's pages.
func benchWriteStorm() (writeStormResults, error) {
	geo := flash.Geometry{
		Channels:        8,
		ChipsPerChannel: 1,
		DiesPerChip:     1,
		PlanesPerDie:    1,
		BlocksPerPlane:  4,
		PagesPerBlock:   64,
		PageSize:        4096,
	}
	const rounds = 48 // full-channel program+invalidate+erase sweeps
	programsPerChannel := rounds * geo.BlocksPerPlane * geo.PagesPerBlock
	payload := make([]byte, 64)

	// storm churns every page of channel ch: program the channel full,
	// invalidate everything, erase the blocks, repeat.
	pagesPerChannel := geo.PagesPerChannel()
	blocksPerChannel := geo.BlocksPerChannel()
	storm := func(d *flash.Device, ch int) error {
		firstPage := flash.PPA(int64(ch) * pagesPerChannel)
		firstBlock := flash.BlockID(int64(ch) * blocksPerChannel)
		for r := 0; r < rounds; r++ {
			for p := int64(0); p < pagesPerChannel; p++ {
				if _, err := d.Program(0, firstPage+flash.PPA(p), payload); err != nil {
					return err
				}
			}
			for p := int64(0); p < pagesPerChannel; p++ {
				if err := d.Invalidate(firstPage + flash.PPA(p)); err != nil {
					return err
				}
			}
			for b := int64(0); b < blocksPerChannel; b++ {
				if _, err := d.Erase(0, firstBlock+flash.BlockID(b)); err != nil {
					return err
				}
			}
		}
		return nil
	}

	dSerial, err := flash.NewDevice(geo, flash.DefaultTiming())
	if err != nil {
		return writeStormResults{}, err
	}
	t0 := time.Now()
	for ch := 0; ch < geo.Channels; ch++ {
		if err := storm(dSerial, ch); err != nil {
			return writeStormResults{}, err
		}
	}
	serialSec := time.Since(t0).Seconds()

	dPar, err := flash.NewDevice(geo, flash.DefaultTiming())
	if err != nil {
		return writeStormResults{}, err
	}
	var wg sync.WaitGroup
	errCh := make(chan error, geo.Channels)
	t1 := time.Now()
	for ch := 0; ch < geo.Channels; ch++ {
		wg.Add(1)
		go func(ch int) {
			defer wg.Done()
			if err := storm(dPar, ch); err != nil {
				errCh <- err
			}
		}(ch)
	}
	wg.Wait()
	parSec := time.Since(t1).Seconds()
	close(errCh)
	for err := range errCh {
		return writeStormResults{}, err
	}

	pages := float64(geo.Channels * programsPerChannel)
	return writeStormResults{
		Channels:            geo.Channels,
		ProgramsPerChannel:  programsPerChannel,
		SerialPagesPerSec:   pages / serialSec,
		ParallelPagesPerSec: pages / parSec,
		ParallelSpeedup:     serialSec / parSec,
		GateFloor:           writeStormGate(runtime.GOMAXPROCS(0)),
		GOMAXPROCS:          runtime.GOMAXPROCS(0),
	}, nil
}

// benchQueueing measures admission queueing delay on the virtual clock:
// every tenant submits one job at t=0, the gate admits `slots` at a time,
// and each job releases its slot after a fixed service time. The same
// workload runs once per grant policy — per-release dispatch, then
// batched grants on a tick that deliberately does not divide the service
// time, so every batched grant pays a visible rounding delay.
func benchQueueing() queueingResults {
	const (
		tenants = 8
		slots   = 2
		service = sim.Duration(1 * sim.Millisecond)
		quantum = sim.Duration(300 * sim.Microsecond)
	)
	run := func(cfg sched.VirtualConfig) (*sched.VirtualAdmission, sim.Duration) {
		eng := &sim.Engine{}
		va := sched.NewVirtualAdmission(eng, cfg)
		for i := 0; i < tenants; i++ {
			name := fmt.Sprintf("tenant-%d", i)
			var tk *sim.Ticket
			tk = va.Submit(0, name, sched.PriorityNormal, func(granted sim.Time) {
				eng.At(granted+service, func(now sim.Time) { va.Release(tk, now) })
			})
		}
		eng.Run()
		return va, va.Waited()
	}
	_, perRelease := run(sched.VirtualConfig{MaxInFlight: slots})
	batched, batchedWait := run(sched.VirtualConfig{
		MaxInFlight: slots, GrantQuantum: quantum, GrantBatch: slots,
	})
	return queueingResults{
		Tenants:           tenants,
		Slots:             slots,
		ServiceNs:         int64(service),
		TotalWaitNs:       int64(perRelease),
		MeanWaitNs:        int64(perRelease) / tenants,
		BatchedQuantumNs:  int64(quantum),
		BatchedMeanWaitNs: int64(batchedWait) / tenants,
		BatchedTicks:      batched.Ticks(),
	}
}

// meeTrafficResults records the memory-traffic hot-path microbenchmark:
// the same access streams driven per-line through mee.TrafficReference
// (the pre-batching implementation, one Access call + map lookups per
// 64-byte line) and in bulk through mee.TrafficModel (AccessSeq/
// AccessMany over dense state). Two stream shapes are measured: "scan" is
// the streaming input-page read (the sequential-run fast path's home
// turf, gated at >= 3x in make bench-compare), and "mixed" is the
// chargeMEE shape (sampled scan + skewed writable-heap batch). Both
// models must land on identical TrafficStats and counter-cache stats —
// the bulk APIs may not change a single reported statistic.
type meeTrafficResults struct {
	ScanAccesses   int64   `json:"scan_accesses"`
	ScanPerLineNs  float64 `json:"scan_per_line_ns_per_access"`
	ScanBatchedNs  float64 `json:"scan_batched_ns_per_access"`
	ScanSpeedup    float64 `json:"scan_speedup"`
	ScanMAccPerS   float64 `json:"scan_batched_maccesses_per_s"`
	MixedAccesses  int64   `json:"mixed_accesses"`
	MixedPerLineNs float64 `json:"mixed_per_line_ns_per_access"`
	MixedBatchedNs float64 `json:"mixed_batched_ns_per_access"`
	MixedSpeedup   float64 `json:"mixed_speedup"`
	GateFloor      float64 `json:"scan_gate_floor"`
	StatsIdentical bool    `json:"stats_identical"`
}

// meeScanGate is the bench-compare floor for the streaming-scan speedup.
const meeScanGate = 3.0

// benchMEETraffic times the two stream shapes on both implementations.
// The per-line and batched passes consume byte-identical access streams
// (same addresses, same order, same RNG draws), so any stats divergence
// is a correctness bug, not noise.
func benchMEETraffic() meeTrafficResults {
	cfg := mee.TrafficConfig{Mode: mee.ModeHybrid, SampleWeight: 1}

	// Scan: sequential read-only line scans over a 2048-page input, the
	// stream every replayed read step feeds the model.
	const scanPages = 2048
	const scanPasses = 4
	scanAccesses := int64(scanPages) * mee.LinesPerPage * scanPasses
	ref := mee.NewTrafficReference(cfg)
	t0 := time.Now()
	for pass := 0; pass < scanPasses; pass++ {
		for p := uint64(0); p < scanPages; p++ {
			base := p * mee.PageSize
			for l := uint64(0); l < mee.LinesPerPage; l++ {
				ref.Access(base+l*mee.LineSize, false)
			}
		}
	}
	perLineScan := time.Since(t0)

	model := mee.NewTrafficModel(cfg)
	t1 := time.Now()
	for pass := 0; pass < scanPasses; pass++ {
		for p := uint64(0); p < scanPages; p++ {
			model.AccessSeq(p*mee.PageSize, mee.LinesPerPage, false, mee.LineSize)
		}
	}
	batchedScan := time.Since(t1)
	identical := ref.Stats() == model.Stats() &&
		ref.CounterCacheStats() == model.CounterCacheStats()

	// Mixed: the chargeMEE step shape — a sampled input scan (weight 8,
	// stride 8 lines) plus a skewed batch into the writable heap.
	mixCfg := mee.TrafficConfig{Mode: mee.ModeHybrid, SampleWeight: 8}
	const heapBase = uint64(1) << 22
	const heapPages = 1024
	const steps = 40000
	const seqN, heapReads, heapWrites = 8, 14, 4
	mixedAccesses := int64(steps) * (seqN + heapReads + heapWrites)

	runMixed := func(perLine bool) (time.Duration, mee.TrafficStats) {
		rng := sim.NewRNG(99)
		var model *mee.TrafficModel
		var ref *mee.TrafficReference
		if perLine {
			ref = mee.NewTrafficReference(mixCfg)
			for p := uint64(0); p < heapPages; p++ {
				ref.SetPageWritable(heapBase+p, true)
			}
		} else {
			model = mee.NewTrafficModel(mixCfg)
			for p := uint64(0); p < heapPages; p++ {
				model.SetPageWritable(heapBase+p, true)
			}
		}
		addrs := make([]uint64, heapReads+heapWrites)
		start := time.Now()
		for s := 0; s < steps; s++ {
			base := uint64(s%scanPages) * mee.PageSize
			for i := range addrs {
				page := heapBase + uint64(rng.Zipf(heapPages, 0.85, 0.05))
				addrs[i] = page*mee.PageSize + uint64(rng.Intn(mee.LinesPerPage))*mee.LineSize
			}
			if perLine {
				for j := int64(0); j < seqN; j++ {
					ref.Access(base+uint64(j)*8*mee.LineSize, false)
				}
				for _, a := range addrs[:heapReads] {
					ref.Access(a, false)
				}
				for _, a := range addrs[heapReads:] {
					ref.Access(a, true)
				}
			} else {
				model.AccessSeq(base, seqN, false, 8*mee.LineSize)
				model.AccessMany(addrs[:heapReads], false)
				model.AccessMany(addrs[heapReads:], true)
			}
		}
		elapsed := time.Since(start)
		if perLine {
			return elapsed, ref.Stats()
		}
		return elapsed, model.Stats()
	}
	perLineMixed, perStats := runMixed(true)
	batchedMixed, batchStats := runMixed(false)
	identical = identical && perStats == batchStats

	return meeTrafficResults{
		ScanAccesses:   scanAccesses,
		ScanPerLineNs:  float64(perLineScan.Nanoseconds()) / float64(scanAccesses),
		ScanBatchedNs:  float64(batchedScan.Nanoseconds()) / float64(scanAccesses),
		ScanSpeedup:    float64(perLineScan) / float64(batchedScan),
		ScanMAccPerS:   float64(scanAccesses) / batchedScan.Seconds() / 1e6,
		MixedAccesses:  mixedAccesses,
		MixedPerLineNs: float64(perLineMixed.Nanoseconds()) / float64(mixedAccesses),
		MixedBatchedNs: float64(batchedMixed.Nanoseconds()) / float64(mixedAccesses),
		MixedSpeedup:   float64(perLineMixed) / float64(batchedMixed),
		GateFloor:      meeScanGate,
		StatsIdentical: identical,
	}
}

// traceBandResults is one priority band of the trace-replay record.
type traceBandResults struct {
	Band          string `json:"band"`
	Tenants       int    `json:"tenants"`
	MeanQueueNs   int64  `json:"mean_queue_ns"`
	MaxQueueNs    int64  `json:"max_queue_ns"`
	MeanSojournNs int64  `json:"mean_sojourn_ns"`
	MaxSojournNs  int64  `json:"max_sojourn_ns"`
	T0MeanQueueNs int64  `json:"t0_mean_queue_ns"`
}

// traceReplayResults records the trace-driven open-loop replay scenario:
// the committed bursty fixture's arrival schedule driven through the
// admission gate, with per-band queue-delay and sojourn statistics in
// SIMULATED time against the same work submitted at t=0. Identical is the
// differential gate bench-compare checks: the memoized rerun and a fresh
// suite (which re-parses the fixture into a new schedule instance) must
// emit byte-identical Timing 2 tables.
type traceReplayResults struct {
	Fixture         string             `json:"fixture"`
	Tenants         int                `json:"tenants"`
	Slots           int                `json:"slots"`
	SpanNs          int64              `json:"span_ns"`
	OpenMeanQueueNs int64              `json:"open_mean_queue_ns"`
	T0MeanQueueNs   int64              `json:"t0_mean_queue_ns"`
	Bands           []traceBandResults `json:"bands"`
	Identical       bool               `json:"identical"`
}

// benchTraceReplay runs the Timing 2 scenario three ways — cold, memoized
// rerun on the same suite, and cold again on a fresh suite with
// memoization off — and verifies all three render byte-identically. The
// fresh suite parses its own copy of the fixture, so the comparison also
// pins that replay timing depends on schedule contents, not instance
// identity. Virtual-time statistics, deterministic by construction.
func benchTraceReplay() (traceReplayResults, error) {
	sc := workload.TinyScale()
	s1 := experiments.NewSuite(sc, core.DefaultConfig())
	cold, err := s1.TraceTiming()
	if err != nil {
		return traceReplayResults{}, err
	}
	memo, err := s1.TraceTiming()
	if err != nil {
		return traceReplayResults{}, err
	}
	s2 := experiments.NewSuite(sc, core.DefaultConfig()).SetMemoize(false)
	fresh, err := s2.TraceTiming()
	if err != nil {
		return traceReplayResults{}, err
	}
	identical := cold.String() == memo.String() && cold.String() == fresh.String()

	sum, err := s1.TraceReplaySummary()
	if err != nil {
		return traceReplayResults{}, err
	}
	out := traceReplayResults{
		Fixture:   sum.Fixture,
		Tenants:   sum.Tenants,
		Slots:     sum.Slots,
		SpanNs:    int64(sum.Span),
		Identical: identical,
	}
	var open, t0 int64
	for _, b := range sum.Bands {
		out.Bands = append(out.Bands, traceBandResults{
			Band:          b.Band,
			Tenants:       b.Tenants,
			MeanQueueNs:   int64(b.MeanQueue),
			MaxQueueNs:    int64(b.MaxQueue),
			MeanSojournNs: int64(b.MeanSojourn),
			MaxSojournNs:  int64(b.MaxSojourn),
			T0MeanQueueNs: int64(b.T0MeanQueue),
		})
		open += int64(b.MeanQueue) * int64(b.Tenants)
		t0 += int64(b.T0MeanQueue) * int64(b.Tenants)
	}
	if sum.Tenants > 0 {
		out.OpenMeanQueueNs = open / int64(sum.Tenants)
		out.T0MeanQueueNs = t0 / int64(sum.Tenants)
	}
	return out, nil
}

// faultScenarioResults is one scenario of the fault-replay record.
type faultScenarioResults struct {
	Scenario      string  `json:"scenario"`
	Tenants       int     `json:"tenants"`
	Completed     int     `json:"completed"`
	GoodputPerSec float64 `json:"goodput_pages_per_sec"`
	MeanSojournNs int64   `json:"mean_sojourn_ns"`
	P99SojournNs  int64   `json:"p99_sojourn_ns"`
	MaxSojournNs  int64   `json:"max_sojourn_ns"`
	Retries       int     `json:"retries"`
	BreakerTrips  int     `json:"breaker_trips"`
	ReadRetries   int64   `json:"ftl_read_retries"`
	BadBlocks     int64   `json:"bad_blocks"`
	DeadDies      int64   `json:"dead_dies"`
	ReadFaults    int64   `json:"injected_read_faults"`
	ProgramFaults int64   `json:"injected_program_faults"`
}

// faultReplayResults records the deterministic fault-injection sweep: the
// same multi-tenant mix replayed under seeded fault plans of rising
// hostility plus a scripted die-death run, in SIMULATED time.
// ZeroFaultIdentical is the differential gate bench-compare checks: a
// replay under a plan whose rates are all zero must produce Results
// struct-identical to a replay with no plan at all — injection may cost
// nothing when it injects nothing.
type faultReplayResults struct {
	Tenants            int                    `json:"tenants"`
	Slots              int                    `json:"slots"`
	Scenarios          []faultScenarioResults `json:"scenarios"`
	ZeroFaultIdentical bool                   `json:"zero_fault_identical"`
}

// benchFaultReplay runs the Fault-table sweep on a tiny-scale suite and
// then pins the zero-fault differential: the same mix replayed with a
// nil fault plan and with an all-zero plan must emit identical Results.
func benchFaultReplay() (faultReplayResults, error) {
	s := experiments.NewSuite(workload.TinyScale(), core.DefaultConfig())
	sum, err := s.FaultReplaySummary()
	if err != nil {
		return faultReplayResults{}, err
	}
	out := faultReplayResults{Tenants: len(sum.Mix), Slots: sum.Slots}
	for _, sc := range sum.Scenarios {
		out.Scenarios = append(out.Scenarios, faultScenarioResults{
			Scenario:      sc.Scenario,
			Tenants:       sc.Tenants,
			Completed:     sc.Completed,
			GoodputPerSec: sc.GoodputPerSec,
			MeanSojournNs: int64(sc.MeanSojourn),
			P99SojournNs:  int64(sc.P99Sojourn),
			MaxSojournNs:  int64(sc.MaxSojourn),
			Retries:       sc.Retries,
			BreakerTrips:  sc.BreakerTrips,
			ReadRetries:   sc.ReadRetries,
			BadBlocks:     sc.BadBlocks,
			DeadDies:      sc.DeadDies,
			ReadFaults:    sc.ReadFaults,
			ProgramFaults: sc.ProgramFaults,
		})
	}

	names := []string{"TPC-H Q1", "TPC-B", "Filter"}
	traces := make([]*workload.Trace, len(names))
	for i, name := range names {
		w, err := workload.ByName(name)
		if err != nil {
			return faultReplayResults{}, err
		}
		if traces[i], err = workload.Record(w, workload.TinyScale(), 4096); err != nil {
			return faultReplayResults{}, err
		}
	}
	cfg := core.DefaultConfig()
	cfg.AdmissionSlots = 2
	nilPlan, err := core.RunMulti(traces, core.ModeIceClave, cfg)
	if err != nil {
		return faultReplayResults{}, err
	}
	cfg.FaultPlan = &fault.Plan{Seed: 123} // rates all zero, no deaths
	zeroPlan, err := core.RunMulti(traces, core.ModeIceClave, cfg)
	if err != nil {
		return faultReplayResults{}, err
	}
	identical := len(nilPlan) == len(zeroPlan)
	if identical {
		for i := range nilPlan {
			if nilPlan[i] != zeroPlan[i] {
				identical = false
				break
			}
		}
	}
	out.ZeroFaultIdentical = identical
	return out, nil
}

// fleetScenarioResults is one scenario of the fleet-replay record.
type fleetScenarioResults struct {
	Scenario        string  `json:"scenario"`
	Tenants         int     `json:"tenants"`
	Failovers       int     `json:"failovers"`
	Recovered       int     `json:"recovered"`
	Lost            int     `json:"lost"`
	GoodputPerSec   float64 `json:"goodput_pages_per_sec"`
	UtilizationSkew float64 `json:"utilization_skew"`
	MigrationMeanNs int64   `json:"migration_mean_ns"`
	MigrationMaxNs  int64   `json:"migration_max_ns"`
	MakespanNs      int64   `json:"makespan_ns"`
}

// fleetReplayResults records the rack-scale fleet sweep: the same
// multi-tenant mix placed across devices by rendezvous hashing, replayed
// healthy and under a scripted whole-device death with health-aware
// failover and modeled live migration, in SIMULATED time.
// OneDeviceIdentical and Recovered-vs-RecoveryFloor are the two
// differential gates bench-compare checks: a 1-device fleet must be
// results-identical to the bare SSD, and the death sweep must recover at
// least the committed tenant floor.
type fleetReplayResults struct {
	Tenants            int                    `json:"tenants"`
	Devices            int                    `json:"devices"`
	RecoveryFloor      int                    `json:"recovery_floor"`
	Scenarios          []fleetScenarioResults `json:"scenarios"`
	OneDeviceIdentical bool                   `json:"one_device_identical"`
}

// benchFleetReplay runs the Fleet-table sweep on a tiny-scale suite; the
// summary carries both gate verdicts (the degeneracy check inside it
// deliberately bypasses the suite's memo cache).
func benchFleetReplay() (fleetReplayResults, error) {
	s := experiments.NewSuite(workload.TinyScale(), core.DefaultConfig())
	sum, err := s.FleetReplaySummary()
	if err != nil {
		return fleetReplayResults{}, err
	}
	out := fleetReplayResults{
		Tenants:            len(sum.Mix),
		Devices:            sum.Devices,
		RecoveryFloor:      sum.RecoveryFloor,
		OneDeviceIdentical: sum.OneDeviceIdentical,
	}
	for _, sc := range sum.Scenarios {
		out.Scenarios = append(out.Scenarios, fleetScenarioResults{
			Scenario:        sc.Scenario,
			Tenants:         sc.Tenants,
			Failovers:       sc.Failovers,
			Recovered:       sc.Recovered,
			Lost:            sc.Lost,
			GoodputPerSec:   sc.GoodputPerSec,
			UtilizationSkew: sc.UtilizationSkew,
			MigrationMeanNs: int64(sc.MigrationMean),
			MigrationMaxNs:  int64(sc.MigrationMax),
			MakespanNs:      int64(sc.Makespan),
		})
	}
	return out, nil
}

// replaySetupResults records the resource-pool microbenchmark: the same
// replay run repeated with pooling off (every setup allocates a device,
// FTL, CMT, and page cache from scratch) and with pooling on (every setup
// after the first recycles a reset stack). Setup time is what the core
// pool accounts per run — acquire/build, reset, and prepopulation — so
// the speedup isolates exactly the cost the pool exists to remove.
// StatsIdentical compares the full Result structs of the two legs; the
// pool may be fast only if it changes nothing.
type replaySetupResults struct {
	Runs           int     `json:"runs_per_leg"`
	FreshNsPerRun  int64   `json:"fresh_setup_ns_per_run"`
	PooledNsPerRun int64   `json:"pooled_setup_ns_per_run"`
	SetupSpeedup   float64 `json:"setup_speedup"`
	PoolHits       int64   `json:"pool_hits"`
	PoolMisses     int64   `json:"pool_misses"`
	StatsIdentical bool    `json:"stats_identical"`
	GateFloor      float64 `json:"gate_floor"`
}

// replaySetupGate is the bench-compare floor for the pooled-setup
// speedup on memo-miss-heavy runs.
const replaySetupGate = 2.0

// benchReplaySetup records one trace, then times the per-run setup cost
// of repeated replays with the resource pool disabled and enabled. The
// pooled leg performs one unmeasured warm run first, so every measured
// setup travels the recycle-and-reset path.
func benchReplaySetup() (replaySetupResults, error) {
	const runs = 6
	w, err := workload.ByName("Filter")
	if err != nil {
		return replaySetupResults{}, err
	}
	tr, err := workload.Record(w, workload.TinyScale(), 4096)
	if err != nil {
		return replaySetupResults{}, err
	}
	cfg := core.DefaultConfig()
	defer func() {
		core.SetPooling(true)
		core.ResetPool()
	}()

	leg := func(pooled bool) (nsPerRun int64, st core.PoolStats, last core.Result, err error) {
		core.SetPooling(pooled)
		core.ResetPool()
		if pooled {
			// Warm run: builds the stack the measured runs recycle.
			if _, err = core.Run(tr, core.ModeIceClave, cfg); err != nil {
				return
			}
		}
		before := core.PoolSnapshot()
		for i := 0; i < runs; i++ {
			if last, err = core.Run(tr, core.ModeIceClave, cfg); err != nil {
				return
			}
		}
		st = core.PoolSnapshot()
		nsPerRun = (st.SetupNs - before.SetupNs) / runs
		return
	}
	freshNs, _, freshRes, err := leg(false)
	if err != nil {
		return replaySetupResults{}, err
	}
	pooledNs, st, pooledRes, err := leg(true)
	if err != nil {
		return replaySetupResults{}, err
	}
	return replaySetupResults{
		Runs:           runs,
		FreshNsPerRun:  freshNs,
		PooledNsPerRun: pooledNs,
		SetupSpeedup:   float64(freshNs) / float64(pooledNs),
		PoolHits:       st.Hits,
		PoolMisses:     st.Misses,
		StatsIdentical: pooledRes == freshRes,
		GateFloor:      replaySetupGate,
	}, nil
}

// parallelReplayResults records the sharded-engine microbenchmark: the
// same multi-tenant RunMulti replay through the serial event loop
// (EngineWorkers=0) and through the sharded engine with one worker per
// available core. Results must be struct-identical — the sharded engine
// exists to spend cores, never to change a bit. The speedup is wall
// clock, so on a 1-CPU container it sits near 1x and the gate floor
// adapts to GOMAXPROCS the same way the write-storm gate does; on a
// multi-core box the prepare pipeline overlaps per-tenant MEE charge
// computation with the coordinator and the floor rises (see
// docs/BENCHMARKS.md, "parallel_replay").
type parallelReplayResults struct {
	Tenants          int     `json:"tenants"`
	EngineWorkers    int     `json:"engine_workers"`
	Runs             int     `json:"runs_per_leg"`
	SerialNsPerRun   int64   `json:"serial_ns_per_run"`
	ShardedNsPerRun  int64   `json:"sharded_ns_per_run"`
	Speedup          float64 `json:"speedup"`
	GateFloor        float64 `json:"gate_floor"`
	GOMAXPROCS       int     `json:"gomaxprocs"`
	ResultsIdentical bool    `json:"results_identical"`
}

// parallelReplayGate returns the bench-compare floor for the sharded
// replay speedup: with >= 4 cores the prepare pipeline must buy at least
// 1.5x; with fewer cores wall-clock parallelism is unavailable and the
// gate only rejects the sharded engine regressing well below serial —
// the signature of dispatch overhead or a barrier stall swamping the
// event loop.
func parallelReplayGate(procs int) float64 {
	if procs >= 4 {
		return 1.5
	}
	return 0.9
}

// benchParallelReplay replays a four-tenant IceClave-mode mix through
// RunMulti with the serial engine and with the sharded engine, checks
// the Result slices are struct-identical, and times both legs.
func benchParallelReplay() (parallelReplayResults, error) {
	const runs = 10
	names := []string{"TPC-H Q1", "Aggregate", "TPC-B", "Filter"}
	traces := make([]*workload.Trace, len(names))
	for i, name := range names {
		w, err := workload.ByName(name)
		if err != nil {
			return parallelReplayResults{}, err
		}
		if traces[i], err = workload.Record(w, workload.TinyScale(), 4096); err != nil {
			return parallelReplayResults{}, err
		}
	}
	cfg := core.DefaultConfig()
	cfg.AdmissionSlots = 2 // queueing keeps the admission path in the loop
	workers := runtime.GOMAXPROCS(0)
	if workers < 2 {
		workers = 2
	}

	serialCfg, shardedCfg := cfg, cfg
	shardedCfg.EngineWorkers = workers
	// Warm runs: pool and trace caches settle before the timed reps, and
	// these are also the Result slices the identity gate compares.
	serialRes, err := core.RunMulti(traces, core.ModeIceClave, serialCfg)
	if err != nil {
		return parallelReplayResults{}, err
	}
	shardedRes, err := core.RunMulti(traces, core.ModeIceClave, shardedCfg)
	if err != nil {
		return parallelReplayResults{}, err
	}
	// The reps interleave the two legs and each leg reports its fastest:
	// min-of-N from alternating samples discards GC pauses and container
	// scheduling noise (which on a 1-CPU box dwarf the ~1ms runs being
	// compared) without letting a drifting environment bias one leg. The
	// forced GC starts the reps from a clean heap — -bench-json runs this
	// right after the full suite passes, which leave collection debt
	// behind.
	runtime.GC()
	rep := func(c core.Config, best *int64) error {
		start := time.Now()
		if _, err := core.RunMulti(traces, core.ModeIceClave, c); err != nil {
			return err
		}
		if ns := time.Since(start).Nanoseconds(); *best == 0 || ns < *best {
			*best = ns
		}
		return nil
	}
	var serialNs, shardedNs int64
	for i := 0; i < runs; i++ {
		if err := rep(serialCfg, &serialNs); err != nil {
			return parallelReplayResults{}, err
		}
		if err := rep(shardedCfg, &shardedNs); err != nil {
			return parallelReplayResults{}, err
		}
	}
	identical := len(serialRes) == len(shardedRes)
	if identical {
		for i := range serialRes {
			if serialRes[i] != shardedRes[i] {
				identical = false
				break
			}
		}
	}
	return parallelReplayResults{
		Tenants:          len(traces),
		EngineWorkers:    workers,
		Runs:             runs,
		SerialNsPerRun:   serialNs,
		ShardedNsPerRun:  shardedNs,
		Speedup:          float64(serialNs) / float64(shardedNs),
		GateFloor:        parallelReplayGate(runtime.GOMAXPROCS(0)),
		GOMAXPROCS:       runtime.GOMAXPROCS(0),
		ResultsIdentical: identical,
	}, nil
}

// microResults bundles the microbenchmark sections that -micro prints and
// -bench-json embeds in the JSON record.
type microResults struct {
	Trivium     triviumResults
	FTL         ftlResults
	DieOverlap  dieOverlapResults
	Queueing    queueingResults
	WriteStorm  writeStormResults
	MEETraffic  meeTrafficResults
	TraceReplay traceReplayResults
	FaultReplay faultReplayResults
	FleetReplay fleetReplayResults
	ReplaySetup replaySetupResults
	Parallel    parallelReplayResults
}

// runMicro executes the cipher, FTL lock-sharding, die-pipelining,
// admission-queueing, and device write-storm microbenchmarks and prints a
// human summary; -bench-json embeds the same numbers in the JSON record.
func runMicro() (microResults, error) {
	var mr microResults
	var err error
	mr.Trivium = benchTrivium()
	if mr.FTL, err = benchFTL(); err != nil {
		return mr, err
	}
	if mr.DieOverlap, err = benchDieOverlap(); err != nil {
		return mr, err
	}
	mr.Queueing = benchQueueing()
	if mr.WriteStorm, err = benchWriteStorm(); err != nil {
		return mr, err
	}
	mr.MEETraffic = benchMEETraffic()
	if mr.TraceReplay, err = benchTraceReplay(); err != nil {
		return mr, err
	}
	if mr.FaultReplay, err = benchFaultReplay(); err != nil {
		return mr, err
	}
	if mr.FleetReplay, err = benchFleetReplay(); err != nil {
		return mr, err
	}
	if mr.ReplaySetup, err = benchReplaySetup(); err != nil {
		return mr, err
	}
	if mr.Parallel, err = benchParallelReplay(); err != nil {
		return mr, err
	}
	tr, fr, dr, qr, wr := mr.Trivium, mr.FTL, mr.DieOverlap, mr.Queueing, mr.WriteStorm
	fmt.Printf("trivium: bit-serial %s/page, word64 %s/page (%.1fx, %.0f MB/s)\n",
		time.Duration(tr.BitserialNsPerPage), time.Duration(tr.Word64NsPerPage),
		tr.Speedup, tr.Word64MBPerS)
	fmt.Printf("ftl: serial %.0f pages/s, %d-channel sharded %.0f pages/s (%.2fx on GOMAXPROCS=%d)\n",
		fr.SerialPagesPerSec, fr.Channels, fr.ShardedPagesPerSec,
		fr.ParallelSpeedup, runtime.GOMAXPROCS(0))
	fmt.Printf("die pipelining: %d programs on one channel, 1 die %s vs %d dies %s (%.2fx overlap)\n",
		dr.Programs, time.Duration(dr.SerializedNs), dr.DiesPerChannel,
		time.Duration(dr.PipelinedNs), dr.OverlapSpeedup)
	fmt.Printf("queueing: %d tenants / %d slots, mean admission wait %s of simulated time\n",
		qr.Tenants, qr.Slots, time.Duration(qr.MeanWaitNs))
	fmt.Printf("queueing (batched): %s ticks, %d grant passes, mean wait %s (vs %s per-release)\n",
		time.Duration(qr.BatchedQuantumNs), qr.BatchedTicks,
		time.Duration(qr.BatchedMeanWaitNs), time.Duration(qr.MeanWaitNs))
	fmt.Printf("write storm: serial %.0f pages/s, %d-channel parallel %.0f pages/s\n",
		wr.SerialPagesPerSec, wr.Channels, wr.ParallelPagesPerSec)
	fmt.Printf("write-storm speedup %.3f gate %.2f (GOMAXPROCS=%d, wall-clock; see docs/BENCHMARKS.md)\n",
		wr.ParallelSpeedup, wr.GateFloor, wr.GOMAXPROCS)
	mt := mr.MEETraffic
	fmt.Printf("mee traffic scan: per-line %.1f ns/acc, batched %.1f ns/acc, %.1f M acc/s, speedup %.2f\n",
		mt.ScanPerLineNs, mt.ScanBatchedNs, mt.ScanMAccPerS, mt.ScanSpeedup)
	fmt.Printf("mee traffic mixed: per-line %.1f ns/acc, batched %.1f ns/acc, speedup %.2f\n",
		mt.MixedPerLineNs, mt.MixedBatchedNs, mt.MixedSpeedup)
	fmt.Printf("mee traffic gate %.2f stats-identical %v\n", mt.GateFloor, mt.StatsIdentical)
	rr := mr.TraceReplay
	fmt.Printf("trace replay: %d tenants / %d slots over %s of arrivals, open-loop mean queue %s vs %s at t=0\n",
		rr.Tenants, rr.Slots, time.Duration(rr.SpanNs),
		time.Duration(rr.OpenMeanQueueNs), time.Duration(rr.T0MeanQueueNs))
	fmt.Printf("trace replay identical: %v\n", rr.Identical)
	fr2 := mr.FaultReplay
	for _, sc := range fr2.Scenarios {
		fmt.Printf("fault replay [%s]: %d/%d completed, goodput %.0f pages/s, p99 sojourn %s, "+
			"%d retries, %d breaker trips, %d bad blocks, %d dead dies\n",
			sc.Scenario, sc.Completed, sc.Tenants, sc.GoodputPerSec,
			time.Duration(sc.P99SojournNs), sc.Retries, sc.BreakerTrips, sc.BadBlocks, sc.DeadDies)
	}
	fmt.Printf("fault replay zero-fault identical: %v\n", fr2.ZeroFaultIdentical)
	fl := mr.FleetReplay
	for _, sc := range fl.Scenarios {
		fmt.Printf("fleet replay [%s]: %d failovers, goodput %.0f pages/s, util skew %.2f, "+
			"migration mean %s max %s, makespan %s\n",
			sc.Scenario, sc.Failovers, sc.GoodputPerSec, sc.UtilizationSkew,
			time.Duration(sc.MigrationMeanNs), time.Duration(sc.MigrationMaxNs),
			time.Duration(sc.MakespanNs))
	}
	death := fl.Scenarios[len(fl.Scenarios)-1]
	fmt.Printf("fleet recovered: %d/%d tenants, floor %d\n",
		death.Recovered, death.Recovered+death.Lost, fl.RecoveryFloor)
	fmt.Printf("fleet replay identical: %v\n", fl.OneDeviceIdentical)
	rs := mr.ReplaySetup
	fmt.Printf("replay setup: fresh %s/run, pooled %s/run over %d runs (pool hits %d, misses %d)\n",
		time.Duration(rs.FreshNsPerRun), time.Duration(rs.PooledNsPerRun),
		rs.Runs, rs.PoolHits, rs.PoolMisses)
	fmt.Printf("replay setup gate %.2f speedup %.2f stats-identical %v\n",
		rs.GateFloor, rs.SetupSpeedup, rs.StatsIdentical)
	pr := mr.Parallel
	fmt.Printf("parallel replay: serial %s/run, sharded (%d workers) %s/run over %d runs x %d tenants\n",
		time.Duration(pr.SerialNsPerRun), pr.EngineWorkers,
		time.Duration(pr.ShardedNsPerRun), pr.Runs, pr.Tenants)
	fmt.Printf("parallel replay speedup %.3f gate %.2f (GOMAXPROCS=%d, wall-clock; see docs/BENCHMARKS.md)\n",
		pr.Speedup, pr.GateFloor, pr.GOMAXPROCS)
	fmt.Printf("parallel replay identical: %v\n", pr.ResultsIdentical)
	return mr, nil
}
