package main

import (
	"fmt"
	"runtime"
	"sync"
	"time"

	"iceclave/internal/flash"
	"iceclave/internal/ftl"
	"iceclave/internal/sim"
	"iceclave/internal/trivium"
)

// triviumResults records the cipher microbenchmark: one encrypted-page
// unit of work (key schedule + 4 KB keystream) for the bit-serial
// reference and the word-parallel production engine. The speedup is the
// number `make bench-compare` checks against the >= 10x floor.
type triviumResults struct {
	PageBytes          int     `json:"page_bytes"`
	BitserialNsPerPage int64   `json:"bitserial_ns_per_page"`
	Word64NsPerPage    int64   `json:"word64_ns_per_page"`
	Speedup            float64 `json:"speedup"`
	Word64MBPerS       float64 `json:"word64_mb_per_s"`
}

// ftlResults records the lock-sharding microbenchmark: write+read round
// trips through the FTL with all tenants on one goroutine vs one goroutine
// per channel (each pinned to its own channel's LPAs, so the sharded locks
// never collide). On a 1-CPU container parallel_speedup sits near 1x; see
// docs/BENCHMARKS.md.
type ftlResults struct {
	Channels           int     `json:"channels"`
	Stripes            int     `json:"mapping_stripes"`
	OpsPerTenant       int     `json:"ops_per_tenant"`
	SerialPagesPerSec  float64 `json:"serial_pages_per_sec"`
	ShardedPagesPerSec float64 `json:"sharded_parallel_pages_per_sec"`
	ParallelSpeedup    float64 `json:"parallel_speedup"`
}

// benchTrivium times Reset+Keystream over a flash page for both cipher
// implementations. The bit-serial oracle is ~100x slower, so it gets a
// smaller iteration budget at equal statistical weight.
func benchTrivium() triviumResults {
	const pageBytes = 4096
	key := []byte("iceclave-k")
	iv := make([]byte, trivium.IVSize)
	page := make([]byte, pageBytes)

	var ref trivium.Reference
	const refIters = 64
	t0 := time.Now()
	for i := 0; i < refIters; i++ {
		iv[9] = byte(i)
		ref.Reset(key, iv)
		ref.Keystream(page)
	}
	bitNs := time.Since(t0).Nanoseconds() / refIters

	var word trivium.Cipher
	const wordIters = 8192
	t1 := time.Now()
	for i := 0; i < wordIters; i++ {
		iv[9] = byte(i)
		word.Reset(key, iv)
		word.Keystream(page)
	}
	wordNs := time.Since(t1).Nanoseconds() / wordIters

	return triviumResults{
		PageBytes:          pageBytes,
		BitserialNsPerPage: bitNs,
		Word64NsPerPage:    wordNs,
		Speedup:            float64(bitNs) / float64(wordNs),
		Word64MBPerS:       float64(pageBytes) / (float64(wordNs) / 1e9) / (1 << 20),
	}
}

// benchFTL measures cross-channel scaling of the sharded FTL: the same
// per-tenant op sequence (out-of-place write + fused translate/read, with
// enough rewrites to trigger GC) run serially and then with one goroutine
// per channel.
func benchFTL() (ftlResults, error) {
	const opsPerTenant = 2000
	geo := flash.Geometry{
		Channels:        4,
		ChipsPerChannel: 1,
		DiesPerChip:     1,
		PlanesPerDie:    1,
		BlocksPerPlane:  16,
		PagesPerBlock:   16,
		PageSize:        4096,
	}
	build := func() (*ftl.FTL, error) {
		dev, err := flash.NewDevice(geo, flash.DefaultTiming())
		if err != nil {
			return nil, err
		}
		return ftl.New(dev, ftl.Config{}), nil
	}
	payload := make([]byte, 64)
	tenant := func(f *ftl.FTL, ch int) error {
		lpas := [4]ftl.LPA{}
		for i := range lpas {
			lpas[i] = ftl.LPA(ch + i*geo.Channels) // pinned to channel ch
		}
		at := sim.Time(0)
		for r := 0; r < opsPerTenant; r++ {
			l := lpas[r%len(lpas)]
			done, err := f.Write(at, l, payload)
			if err != nil {
				return err
			}
			if _, _, err := f.Read(done, l); err != nil {
				return err
			}
			at = done
		}
		return nil
	}

	fSerial, err := build()
	if err != nil {
		return ftlResults{}, err
	}
	t0 := time.Now()
	for ch := 0; ch < geo.Channels; ch++ {
		if err := tenant(fSerial, ch); err != nil {
			return ftlResults{}, err
		}
	}
	serialSec := time.Since(t0).Seconds()

	fPar, err := build()
	if err != nil {
		return ftlResults{}, err
	}
	var wg sync.WaitGroup
	errCh := make(chan error, geo.Channels)
	t1 := time.Now()
	for ch := 0; ch < geo.Channels; ch++ {
		wg.Add(1)
		go func(ch int) {
			defer wg.Done()
			if err := tenant(fPar, ch); err != nil {
				errCh <- err
			}
		}(ch)
	}
	wg.Wait()
	parSec := time.Since(t1).Seconds()
	close(errCh)
	for err := range errCh {
		return ftlResults{}, err
	}

	pages := float64(geo.Channels * opsPerTenant * 2) // one write + one read per op
	return ftlResults{
		Channels:           geo.Channels,
		Stripes:            fPar.Stripes(),
		OpsPerTenant:       opsPerTenant,
		SerialPagesPerSec:  pages / serialSec,
		ShardedPagesPerSec: pages / parSec,
		ParallelSpeedup:    serialSec / parSec,
	}, nil
}

// runMicro executes just the cipher and FTL microbenchmarks and prints a
// human summary; -bench-json embeds the same numbers in the JSON record.
func runMicro() (triviumResults, ftlResults, error) {
	tr := benchTrivium()
	fr, err := benchFTL()
	if err != nil {
		return tr, fr, err
	}
	fmt.Printf("trivium: bit-serial %s/page, word64 %s/page (%.1fx, %.0f MB/s)\n",
		time.Duration(tr.BitserialNsPerPage), time.Duration(tr.Word64NsPerPage),
		tr.Speedup, tr.Word64MBPerS)
	fmt.Printf("ftl: serial %.0f pages/s, %d-channel sharded %.0f pages/s (%.2fx on GOMAXPROCS=%d)\n",
		fr.SerialPagesPerSec, fr.Channels, fr.ShardedPagesPerSec,
		fr.ParallelSpeedup, runtime.GOMAXPROCS(0))
	return tr, fr, nil
}
