// iceclave-bench regenerates every table and figure of the paper's
// evaluation section and prints them as text tables (optionally CSV).
//
// The harness can run serially (the seed behaviour), spread each
// experiment's independent replays across worker goroutines, and memoize
// results by (workload, mode, config); all modes emit byte-identical
// tables. With -bench-json it times serial, memoized, and parallel
// passes, drives a multi-tenant offload storm through the internal/sched
// worker pool, and writes a machine-readable BENCH_results.json so the
// performance trajectory is trackable across PRs.
//
// With -micro it runs just the Trivium cipher, FTL lock-sharding,
// die-pipelining, admission-queueing, write-storm, mee-traffic,
// trace-replay, fault-replay, fleet-replay, replay-setup, and
// parallel-replay microbenchmarks (methodology in docs/BENCHMARKS.md).
//
// Usage:
//
//	iceclave-bench [-experiment "Figure 11"] [-csv] [-rows N]
//	               [-parallel] [-workers N] [-engine-workers N] [-micro]
//	               [-bench-json BENCH_results.json] [-tenants N] [-jobs N]
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
	"runtime"
	"runtime/pprof"
	"strings"
	"time"

	"iceclave"
	"iceclave/internal/core"
	"iceclave/internal/experiments"
	"iceclave/internal/host"
	"iceclave/internal/query"
	"iceclave/internal/sched"
	"iceclave/internal/stats"
	"iceclave/internal/workload"
)

func main() {
	var (
		exp      = flag.String("experiment", "", "regenerate only the named experiment (e.g. \"Figure 11\", \"Table 6\")")
		csv      = flag.Bool("csv", false, "emit CSV instead of aligned tables")
		rows     = flag.Int("rows", 0, "override lineitem row count (dataset scale)")
		parallel = flag.Bool("parallel", false, "spread experiment replays across -workers goroutines")
		workers  = flag.Int("workers", runtime.NumCPU(), "replay parallelism for -parallel and -bench-json")
		benchOut = flag.String("bench-json", "", "time the serial, memoized, and parallel suite plus a scheduler offload storm and the microbenchmarks; write results to this file")
		tenants  = flag.Int("tenants", 32, "concurrent tenants in the -bench-json scheduler storm")
		jobs     = flag.Int("jobs", 4, "offloads per tenant in the -bench-json scheduler storm")
		micro    = flag.Bool("micro", false, "run only the Trivium/FTL/die-pipelining/queueing/mee-traffic microbenchmarks and print a summary")
		cpuprof  = flag.String("cpuprofile", "", "profile the serial evaluation suite: write a CPU pprof of one full All() pass to this file (make profile)")
		engineW  = flag.Int("engine-workers", 0, "replay every experiment on the sharded virtual-time engine with this many shard workers (0/1 = serial engine; output is bit-identical either way)")
	)
	flag.Parse()

	if *cpuprof != "" {
		if err := runProfile(*rows, *cpuprof); err != nil {
			log.Fatal(err)
		}
		return
	}

	if *micro {
		if _, err := runMicro(); err != nil {
			log.Fatal(err)
		}
		return
	}

	sc := workload.SmallScale()
	if *rows > 0 {
		sc.LineitemRows = *rows
	}
	suite := experiments.NewSuite(sc, core.DefaultConfig())
	if *parallel {
		suite.SetWorkers(*workers)
	}
	if *engineW > 1 {
		suite.SetEngineWorkers(*engineW)
	}

	if *benchOut != "" {
		if err := runBench(sc, *workers, *tenants, *jobs, *benchOut); err != nil {
			log.Fatal(err)
		}
		return
	}

	var tables []*stats.Table
	if *exp == "" {
		all, err := suite.All()
		if err != nil {
			log.Fatal(err)
		}
		tables = all
	} else {
		tb, err := one(suite, *exp)
		if err != nil {
			log.Fatal(err)
		}
		tables = []*stats.Table{tb}
	}
	for _, tb := range tables {
		if *csv {
			fmt.Fprint(os.Stdout, tb.CSV())
		} else {
			fmt.Println(tb.String())
		}
	}
}

// runProfile records a CPU pprof of the serial evaluation suite: traces
// are warmed first (so the profile measures replay, not trace recording),
// then one full All() pass runs under the profiler — the ground truth
// behind any hot-path claim (see make profile).
func runProfile(rows int, outPath string) error {
	sc := workload.SmallScale()
	if rows > 0 {
		sc.LineitemRows = rows
	}
	suite := experiments.NewSuite(sc, core.DefaultConfig()).SetMemoize(false)
	fmt.Fprintf(os.Stderr, "recording workload traces...\n")
	for _, name := range workload.Names() {
		if _, err := suite.Trace(name); err != nil {
			return err
		}
	}
	f, err := os.Create(outPath)
	if err != nil {
		return err
	}
	defer f.Close()
	fmt.Fprintf(os.Stderr, "profiling one serial suite pass...\n")
	start := time.Now()
	if err := pprof.StartCPUProfile(f); err != nil {
		return err
	}
	_, err = suite.All()
	pprof.StopCPUProfile()
	if err != nil {
		return err
	}
	fmt.Printf("profiled %.1fs of serial suite into %s\n", time.Since(start).Seconds(), outPath)
	return nil
}

// benchResults is the machine-readable performance record. Methodology —
// what each section measures, and why suite/FTL speedups sit near 1x on a
// 1-CPU container — is documented in docs/BENCHMARKS.md.
type benchResults struct {
	GeneratedAt  string `json:"generated_at"`
	Methodology  string `json:"methodology"`
	NumCPU       int    `json:"num_cpu"`
	GOMAXPROCS   int    `json:"gomaxprocs"`
	Workers      int    `json:"workers"`
	LineitemRows int    `json:"lineitem_rows"`

	// Suite timings: one All() pass over warmed traces, ns/op. Serial and
	// parallel passes run with result memoization off so they time the
	// replay engine itself; the memoized pass is the same serial pass with
	// the (workload, mode, config) result cache on, and its delta is the
	// suite-time saving from figures sharing configurations.
	SuiteSerialNs   int64   `json:"suite_serial_ns_per_op"`
	SuiteMemoizedNs int64   `json:"suite_memoized_ns_per_op"`
	MemoSpeedup     float64 `json:"memo_speedup"`
	MemoHits        int64   `json:"memo_hits"`
	MemoMisses      int64   `json:"memo_misses"`
	SuiteParallelNs int64   `json:"suite_parallel_ns_per_op"`
	SuiteSpeedup    float64 `json:"suite_speedup"`
	OutputIdentical bool    `json:"output_identical"`

	Scheduler      schedResults          `json:"scheduler"`
	Trivium        triviumResults        `json:"trivium_keystream"`
	FTL            ftlResults            `json:"ftl_sharded_locks"`
	DieOverlap     dieOverlapResults     `json:"die_pipelining"`
	Queueing       queueingResults       `json:"admission_queueing"`
	WriteStorm     writeStormResults     `json:"write_storm"`
	MEETraffic     meeTrafficResults     `json:"mee_traffic"`
	TraceReplay    traceReplayResults    `json:"trace_replay"`
	ResourcePool   resourcePoolResults   `json:"resource_pool"`
	ParallelReplay parallelReplayResults `json:"parallel_replay"`
	FaultReplay    faultReplayResults    `json:"fault_replay"`
	FleetReplay    fleetReplayResults    `json:"fleet_replay"`
}

// resourcePoolResults records the replay-stack pool's activity across the
// timed suite passes — how many replay setups recycled a pooled stack
// versus allocated fresh, and the total wall time spent in setup — plus
// the controlled fresh-vs-pooled setup microbenchmark from -micro.
type resourcePoolResults struct {
	SuiteHits    int64              `json:"suite_hits"`
	SuiteMisses  int64              `json:"suite_misses"`
	SuiteSetupNs int64              `json:"suite_setup_ns"`
	ReplaySetup  replaySetupResults `json:"replay_setup"`
}

// schedResults records the multi-tenant offload storm.
type schedResults struct {
	Tenants        int     `json:"tenants"`
	JobsPerTenant  int     `json:"jobs_per_tenant"`
	Workers        int     `json:"workers"`
	Completed      int64   `json:"completed"`
	Failed         int64   `json:"failed"`
	WallNs         int64   `json:"wall_ns"`
	OffloadsPerSec float64 `json:"offloads_per_sec"`
}

// runBench times the serial (memo off), memoized, and parallel evaluation
// harness over the same warmed traces, verifies all three emit identical
// output, storms the scheduler with concurrent tenants, and writes the
// JSON record.
func runBench(sc workload.Scale, workers, tenants, jobs int, outPath string) error {
	suite := experiments.NewSuite(sc, core.DefaultConfig()).SetMemoize(false)
	// Warm the trace cache so the timed passes measure replay work only.
	fmt.Fprintf(os.Stderr, "recording workload traces...\n")
	for _, name := range workload.Names() {
		if _, err := suite.Trace(name); err != nil {
			return err
		}
	}
	core.ResetPool() // count only the timed passes' pool traffic
	fmt.Fprintf(os.Stderr, "timing serial suite (memoization off)...\n")
	t0 := time.Now()
	serialTables, err := suite.All()
	if err != nil {
		return err
	}
	serialNs := time.Since(t0).Nanoseconds()

	fmt.Fprintf(os.Stderr, "timing memoized suite...\n")
	suite.SetMemoize(true)
	suite.ResetMemo()
	t1 := time.Now()
	memoTables, err := suite.All()
	if err != nil {
		return err
	}
	memoNs := time.Since(t1).Nanoseconds()
	memoHits, memoMisses := suite.MemoStats()
	suite.SetMemoize(false)

	fmt.Fprintf(os.Stderr, "timing parallel suite (%d workers, memoization off)...\n", workers)
	t2 := time.Now()
	parallelTables, err := suite.AllParallel(workers)
	if err != nil {
		return err
	}
	parallelNs := time.Since(t2).Nanoseconds()

	identical := len(serialTables) == len(parallelTables) && len(serialTables) == len(memoTables)
	if identical {
		for i := range serialTables {
			if serialTables[i].String() != parallelTables[i].String() ||
				serialTables[i].String() != memoTables[i].String() {
				identical = false
				break
			}
		}
	}

	// Snapshot the suite passes' pool traffic before the microbenchmarks
	// reset the counters for their own controlled legs.
	suitePool := core.PoolSnapshot()

	st, err := runSchedulerStorm(tenants, jobs, workers)
	if err != nil {
		return err
	}

	mr, err := runMicro()
	if err != nil {
		return err
	}

	res := benchResults{
		GeneratedAt:     time.Now().UTC().Format(time.RFC3339),
		Methodology:     "docs/BENCHMARKS.md",
		NumCPU:          runtime.NumCPU(),
		GOMAXPROCS:      runtime.GOMAXPROCS(0),
		Workers:         workers,
		LineitemRows:    sc.LineitemRows,
		SuiteSerialNs:   serialNs,
		SuiteMemoizedNs: memoNs,
		MemoSpeedup:     float64(serialNs) / float64(memoNs),
		MemoHits:        memoHits,
		MemoMisses:      memoMisses,
		SuiteParallelNs: parallelNs,
		SuiteSpeedup:    float64(serialNs) / float64(parallelNs),
		OutputIdentical: identical,
		Scheduler:       st,
		Trivium:         mr.Trivium,
		FTL:             mr.FTL,
		DieOverlap:      mr.DieOverlap,
		Queueing:        mr.Queueing,
		WriteStorm:      mr.WriteStorm,
		MEETraffic:      mr.MEETraffic,
		TraceReplay:     mr.TraceReplay,
		ParallelReplay:  mr.Parallel,
		FaultReplay:     mr.FaultReplay,
		FleetReplay:     mr.FleetReplay,
		ResourcePool: resourcePoolResults{
			SuiteHits:    suitePool.Hits,
			SuiteMisses:  suitePool.Misses,
			SuiteSetupNs: suitePool.SetupNs,
			ReplaySetup:  mr.ReplaySetup,
		},
	}
	data, err := json.MarshalIndent(res, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	if err := os.WriteFile(outPath, data, 0o644); err != nil {
		return err
	}
	fmt.Printf("suite: serial %.2fs, memoized %.2fs (%.2fx, %d hits), parallel %.2fs (%.2fx, %d workers, identical=%v)\n",
		float64(serialNs)/1e9, float64(memoNs)/1e9, res.MemoSpeedup, memoHits,
		float64(parallelNs)/1e9, res.SuiteSpeedup, workers, identical)
	fmt.Printf("scheduler: %d tenants x %d offloads in %.2fs (%.1f offloads/s, %d failed)\n",
		tenants, jobs, float64(st.WallNs)/1e9, st.OffloadsPerSec, st.Failed)
	fmt.Printf("resource pool: %d hits, %d misses across timed passes (%.2fs in setup)\n",
		suitePool.Hits, suitePool.Misses, float64(suitePool.SetupNs)/1e9)
	fmt.Printf("wrote %s\n", outPath)
	return nil
}

// runSchedulerStorm drives tenants*jobs full offload round trips (create
// TEE, encrypted reads, intermediate write, terminate) through the
// admission-controlled worker pool.
func runSchedulerStorm(tenants, jobs, workers int) (schedResults, error) {
	ssd, err := iceclave.Open(iceclave.Options{Channels: 2, BlocksPerPlane: 8})
	if err != nil {
		return schedResults{}, err
	}
	const pagesPerTenant = 4
	lpas := make([][]uint32, tenants)
	for ti := 0; ti < tenants; ti++ {
		for p := 0; p < pagesPerTenant; p++ {
			lpa := uint32(ti*pagesPerTenant + p)
			if err := ssd.HostWrite(lpa, []byte{byte(ti), byte(p)}); err != nil {
				return schedResults{}, err
			}
			lpas[ti] = append(lpas[ti], lpa)
		}
	}
	interBase := uint32(tenants * pagesPerTenant)
	if workers > 12 {
		workers = 12 // stay under the 15 live TEE IDs with headroom
	}
	s := sched.New(sched.Config{
		Workers:           workers,
		TenantMaxInFlight: 1,
		MaxInFlight:       12,
		QueueDepth:        tenants * jobs,
	})
	start := time.Now()
	for ti := 0; ti < tenants; ti++ {
		ti := ti
		for j := 0; j < jobs; j++ {
			j := j
			_, err := s.Submit(fmt.Sprintf("tenant-%02d", ti), sched.Priority(j%3), func(context.Context) error {
				own := lpas[ti]
				inter := interBase + uint32(ti)
				_, err := ssd.Execute(host.Offload{
					TaskID: uint32(ti*jobs + j),
					Binary: make([]byte, 32<<10),
					LPAs:   append(append([]uint32(nil), own...), inter),
				}, func(st query.Store, m *query.Meter) ([]byte, error) {
					for _, lpa := range own {
						if _, err := st.ReadPage(lpa); err != nil {
							return nil, err
						}
					}
					return []byte{byte(ti), byte(j)}, st.WritePage(inter, []byte{byte(ti), byte(j)})
				})
				return err
			})
			if err != nil {
				return schedResults{}, err
			}
		}
	}
	if err := s.Close(context.Background()); err != nil {
		return schedResults{}, err
	}
	wall := time.Since(start)
	st := s.Stats()
	return schedResults{
		Tenants:        tenants,
		JobsPerTenant:  jobs,
		Workers:        workers,
		Completed:      st.Completed,
		Failed:         st.Failed,
		WallNs:         wall.Nanoseconds(),
		OffloadsPerSec: float64(st.Completed) / wall.Seconds(),
	}, nil
}

func one(s *experiments.Suite, name string) (*stats.Table, error) {
	switch strings.ToLower(strings.TrimSpace(name)) {
	case "table 1":
		return s.Table1()
	case "table 3":
		return s.Table3(), nil
	case "table 5":
		return s.Table5()
	case "table 6":
		return s.Table6()
	case "figure 5":
		return s.Figure5()
	case "figure 8":
		return s.Figure8()
	case "figure 11":
		return s.Figure11()
	case "figure 12":
		return s.Figure12()
	case "figure 13":
		return s.Figure13()
	case "figure 14":
		return s.Figure14()
	case "figure 15":
		return s.Figure15()
	case "figure 16":
		return s.Figure16()
	case "figure 17":
		return s.Figure17()
	case "figure 18":
		return s.Figure18()
	case "timing", "timing 1":
		return s.AdmissionTiming()
	case "trace", "timing 2":
		return s.TraceTiming()
	case "fault":
		return s.FaultTiming()
	case "fleet":
		return s.FleetTiming()
	}
	return nil, fmt.Errorf("unknown experiment %q", name)
}
