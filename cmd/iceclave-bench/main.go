// iceclave-bench regenerates every table and figure of the paper's
// evaluation section and prints them as text tables (optionally CSV).
//
// Usage:
//
//	iceclave-bench [-experiment "Figure 11"] [-csv] [-rows N]
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"strings"

	"iceclave/internal/core"
	"iceclave/internal/experiments"
	"iceclave/internal/stats"
	"iceclave/internal/workload"
)

func main() {
	var (
		exp  = flag.String("experiment", "", "regenerate only the named experiment (e.g. \"Figure 11\", \"Table 6\")")
		csv  = flag.Bool("csv", false, "emit CSV instead of aligned tables")
		rows = flag.Int("rows", 0, "override lineitem row count (dataset scale)")
	)
	flag.Parse()

	sc := workload.SmallScale()
	if *rows > 0 {
		sc.LineitemRows = *rows
	}
	suite := experiments.NewSuite(sc, core.DefaultConfig())

	var tables []*stats.Table
	if *exp == "" {
		all, err := suite.All()
		if err != nil {
			log.Fatal(err)
		}
		tables = all
	} else {
		tb, err := one(suite, *exp)
		if err != nil {
			log.Fatal(err)
		}
		tables = []*stats.Table{tb}
	}
	for _, tb := range tables {
		if *csv {
			fmt.Fprint(os.Stdout, tb.CSV())
		} else {
			fmt.Println(tb.String())
		}
	}
}

func one(s *experiments.Suite, name string) (*stats.Table, error) {
	switch strings.ToLower(strings.TrimSpace(name)) {
	case "table 1":
		return s.Table1()
	case "table 3":
		return s.Table3(), nil
	case "table 5":
		return s.Table5()
	case "table 6":
		return s.Table6()
	case "figure 5":
		return s.Figure5()
	case "figure 8":
		return s.Figure8()
	case "figure 11":
		return s.Figure11()
	case "figure 12":
		return s.Figure12()
	case "figure 13":
		return s.Figure13()
	case "figure 14":
		return s.Figure14()
	case "figure 15":
		return s.Figure15()
	case "figure 16":
		return s.Figure16()
	case "figure 17":
		return s.Figure17()
	case "figure 18":
		return s.Figure18()
	}
	return nil, fmt.Errorf("unknown experiment %q", name)
}
