module iceclave

go 1.24
