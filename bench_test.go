// Package iceclave's root benchmarks regenerate every evaluation artifact
// of the paper: one benchmark per table and figure (DESIGN.md maps each to
// its experiment), plus micro-benchmarks for the security primitives.
// Run with: go test -bench=. -benchmem
package iceclave_test

import (
	"testing"

	"iceclave"

	"iceclave/internal/core"
	"iceclave/internal/experiments"
	"iceclave/internal/host"
	"iceclave/internal/stats"
	"iceclave/internal/workload"
)

// benchScale keeps benchmark runtime moderate while exercising the full
// experiment matrix; cmd/iceclave-bench runs the larger default scale.
func benchScale() workload.Scale {
	sc := workload.TinyScale()
	sc.LineitemRows = 20_000
	sc.Accounts = 8_000
	sc.TPCBTxns = 2_000
	sc.StockRows = 8_000
	sc.TPCCTxns = 800
	sc.TextPages = 512
	return sc
}

func benchSuite() *experiments.Suite {
	return experiments.NewSuite(benchScale(), core.DefaultConfig())
}

// runExperiment is the common shape of the per-artifact benchmarks.
func runExperiment(b *testing.B, fn func(*experiments.Suite) (*stats.Table, error)) {
	b.Helper()
	for i := 0; i < b.N; i++ {
		s := benchSuite()
		tb, err := fn(s)
		if err != nil {
			b.Fatal(err)
		}
		if len(tb.Rows) == 0 {
			b.Fatal("empty result")
		}
		if i == 0 {
			b.Log("\n" + tb.String())
		}
	}
}

func BenchmarkTable1WriteRatios(b *testing.B) {
	runExperiment(b, func(s *experiments.Suite) (*stats.Table, error) { return s.Table1() })
}

func BenchmarkTable5OverheadSources(b *testing.B) {
	runExperiment(b, func(s *experiments.Suite) (*stats.Table, error) { return s.Table5() })
}

func BenchmarkTable6ExtraTraffic(b *testing.B) {
	runExperiment(b, func(s *experiments.Suite) (*stats.Table, error) { return s.Table6() })
}

func BenchmarkFigure5MappingTablePlacement(b *testing.B) {
	runExperiment(b, func(s *experiments.Suite) (*stats.Table, error) { return s.Figure5() })
}

func BenchmarkFigure8CounterSchemes(b *testing.B) {
	runExperiment(b, func(s *experiments.Suite) (*stats.Table, error) { return s.Figure8() })
}

func BenchmarkFigure11ModeComparison(b *testing.B) {
	runExperiment(b, func(s *experiments.Suite) (*stats.Table, error) { return s.Figure11() })
}

func BenchmarkFigure12ChannelScalingVsHost(b *testing.B) {
	runExperiment(b, func(s *experiments.Suite) (*stats.Table, error) { return s.Figure12() })
}

func BenchmarkFigure13ChannelScalingVsISC(b *testing.B) {
	runExperiment(b, func(s *experiments.Suite) (*stats.Table, error) { return s.Figure13() })
}

func BenchmarkFigure14FlashLatency(b *testing.B) {
	runExperiment(b, func(s *experiments.Suite) (*stats.Table, error) { return s.Figure14() })
}

func BenchmarkFigure15CPUCapability(b *testing.B) {
	runExperiment(b, func(s *experiments.Suite) (*stats.Table, error) { return s.Figure15() })
}

func BenchmarkFigure16DRAMCapacity(b *testing.B) {
	runExperiment(b, func(s *experiments.Suite) (*stats.Table, error) { return s.Figure16() })
}

func BenchmarkFigure17TwoTenants(b *testing.B) {
	runExperiment(b, func(s *experiments.Suite) (*stats.Table, error) { return s.Figure17() })
}

func BenchmarkFigure18FourTenants(b *testing.B) {
	runExperiment(b, func(s *experiments.Suite) (*stats.Table, error) { return s.Figure18() })
}

// BenchmarkOffloadRoundTrip measures the functional offload path: TEE
// creation, a permission-checked encrypted page read, and termination.
func BenchmarkOffloadRoundTrip(b *testing.B) {
	ssd, err := iceclave.Open(iceclave.Options{Channels: 2, BlocksPerPlane: 8})
	if err != nil {
		b.Fatal(err)
	}
	if err := ssd.HostWrite(0, []byte("bench")); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		task, err := ssd.OffloadCode(hostOffload())
		if err != nil {
			b.Fatal(err)
		}
		if _, err := task.Store().ReadPage(0); err != nil {
			b.Fatal(err)
		}
		if err := task.Finish(nil); err != nil {
			b.Fatal(err)
		}
	}
}

func hostOffload() (o host.Offload) {
	o.TaskID = 1
	o.Binary = []byte{1}
	o.LPAs = []uint32{0}
	return o
}

// Ablation benchmarks for the design choices DESIGN.md calls out.

func BenchmarkAblationCounterCache(b *testing.B) {
	runExperiment(b, func(s *experiments.Suite) (*stats.Table, error) { return s.AblationCounterCache() })
}

func BenchmarkAblationCMTSize(b *testing.B) {
	runExperiment(b, func(s *experiments.Suite) (*stats.Table, error) { return s.AblationCMTSize() })
}

func BenchmarkAblationPrefetchWindow(b *testing.B) {
	runExperiment(b, func(s *experiments.Suite) (*stats.Table, error) { return s.AblationPrefetch() })
}
