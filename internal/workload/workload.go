// Package workload adapts the query engine's programs into the form the
// timing layer consumes: each workload is set up and executed once,
// functionally, while a recording store captures its I/O-and-compute trace
// (page reads/writes interleaved with metered instruction and memory-access
// deltas). The timing layer then replays that trace under any execution
// mode — Host, Host+SGX, ISC, IceClave — and any device configuration,
// without re-running the query.
//
// Concurrency contract: recording a Workload is a single-goroutine
// affair, but a recorded Trace is immutable and safe to replay from many
// goroutines at once — that sharing is what lets experiments.Suite fan
// replays of one trace across workers.
package workload

import (
	"fmt"
	"hash/fnv"

	"iceclave/internal/query"
)

// Scale sets the generated dataset sizes. The paper populates 32 GB per
// workload (§6.1); simulations scale this down and EXPERIMENTS.md records
// the substitution. Ratios between tables follow TPC conventions.
type Scale struct {
	LineitemRows int // TPC-H and synthetic operators
	Accounts     int // TPC-B
	TPCBTxns     int
	StockRows    int // TPC-C
	TPCCTxns     int
	TextPages    int // Wordcount
	Seed         uint64
}

// TinyScale is for unit tests: a few thousand rows.
func TinyScale() Scale {
	return Scale{LineitemRows: 4000, Accounts: 2000, TPCBTxns: 800,
		StockRows: 2000, TPCCTxns: 400, TextPages: 64, Seed: 42}
}

// SmallScale is the default experiment scale (~20-40 MB of input per
// workload), large enough that load/compute ratios stabilize.
func SmallScale() Scale {
	return Scale{LineitemRows: 120_000, Accounts: 50_000, TPCBTxns: 20_000,
		StockRows: 50_000, TPCCTxns: 8_000, TextPages: 4_096, Seed: 42}
}

// Workload is one of the eleven Table 4 programs, bound to its setup.
type Workload struct {
	// Name as the paper spells it in figures.
	Name string
	// WriteIntensive marks the three workloads the paper calls out as
	// write-heavy (TPC-B, TPC-C, Wordcount).
	WriteIntensive bool
	// PaperWriteRatio is the Table 1 characterization, kept for
	// paper-vs-measured reporting.
	PaperWriteRatio float64

	setup func(store query.Store, sc Scale) (run func(m *query.Meter) (string, error), err error)
}

// Setup generates and stores the workload's dataset on store, returning a
// closure that executes the program.
func (w *Workload) Setup(store query.Store, sc Scale) (func(m *query.Meter) (string, error), error) {
	return w.setup(store, sc)
}

// tpchWorkload wires one TPC-H style program.
func tpchWorkload(name string, paperWR float64, p query.Program) *Workload {
	return &Workload{
		Name:            name,
		PaperWriteRatio: paperWR,
		setup: func(store query.Store, sc Scale) (func(m *query.Meter) (string, error), error) {
			ds := query.GenerateTPCH(sc.LineitemRows, sc.Seed)
			sd, err := ds.Store(store, 0)
			if err != nil {
				return nil, err
			}
			return func(m *query.Meter) (string, error) { return p(store, sd, m) }, nil
		},
	}
}

// Standard returns the eleven evaluation workloads of Table 4, with the
// Table 1 write ratios attached.
func Standard() []*Workload {
	return []*Workload{
		tpchWorkload("Arithmetic", 2.02e-4, query.Arithmetic),
		tpchWorkload("Aggregate", 2.08e-4, query.Aggregate),
		tpchWorkload("Filter", 1.71e-4, query.Filter),
		tpchWorkload("TPC-H Q1", 6.40e-6, query.Q1),
		tpchWorkload("TPC-H Q3", 3.96e-3, query.Q3),
		tpchWorkload("TPC-H Q12", 2.99e-5, query.Q12),
		tpchWorkload("TPC-H Q14", 3.94e-6, query.Q14),
		tpchWorkload("TPC-H Q19", 9.92e-7, query.Q19),
		{
			Name: "TPC-B", WriteIntensive: true, PaperWriteRatio: 5.19e-2,
			setup: func(store query.Store, sc Scale) (func(m *query.Meter) (string, error), error) {
				ref, err := query.SetupAccounts(store, sc.Accounts, 0, sc.Seed)
				if err != nil {
					return nil, err
				}
				histBase := uint32(query.PageCount(query.AccountSchema, sc.Accounts, store.PageSize()) + 16)
				return func(m *query.Meter) (string, error) {
					return query.TPCB(store, ref, histBase, sc.TPCBTxns, sc.Seed+1, m)
				}, nil
			},
		},
		{
			Name: "TPC-C", WriteIntensive: true, PaperWriteRatio: 9.05e-2,
			setup: func(store query.Store, sc Scale) (func(m *query.Meter) (string, error), error) {
				ref, err := query.SetupStock(store, sc.StockRows, 0, sc.Seed)
				if err != nil {
					return nil, err
				}
				olBase := uint32(query.PageCount(query.StockSchema, sc.StockRows, store.PageSize()) + 16)
				return func(m *query.Meter) (string, error) {
					return query.TPCC(store, ref, olBase, sc.TPCCTxns, sc.Seed+2, m)
				}, nil
			},
		},
		{
			Name: "Wordcount", WriteIntensive: true, PaperWriteRatio: 4.61e-1,
			setup: func(store query.Store, sc Scale) (func(m *query.Meter) (string, error), error) {
				if err := query.SetupText(store, sc.TextPages, 0, sc.Seed); err != nil {
					return nil, err
				}
				return func(m *query.Meter) (string, error) {
					return query.Wordcount(store, 0, sc.TextPages, m)
				}, nil
			},
		},
	}
}

// ByName returns the standard workload with the given name.
func ByName(name string) (*Workload, error) {
	for _, w := range Standard() {
		if w.Name == name {
			return w, nil
		}
	}
	return nil, fmt.Errorf("workload: unknown workload %q", name)
}

// ByTraceKey deterministically maps an opaque trace identifier — an Azure
// function hash, a block-trace stream ID — onto one of the standard
// workloads via FNV-1a, so a real trace whose entries don't name repo
// workloads still replays a stable, reproducible program mix: the same
// trace always maps to the same workloads, on any machine.
func ByTraceKey(key string) *Workload {
	ws := Standard()
	h := fnv.New32a()
	h.Write([]byte(key))
	return ws[int(h.Sum32()%uint32(len(ws)))]
}

// Names lists the standard workload names in figure order.
func Names() []string {
	ws := Standard()
	out := make([]string, len(ws))
	for i, w := range ws {
		out[i] = w.Name
	}
	return out
}
