package workload

import (
	"testing"

	"iceclave/internal/query"
)

func TestStandardHasElevenWorkloads(t *testing.T) {
	ws := Standard()
	if len(ws) != 11 {
		t.Fatalf("standard workloads = %d, want 11 (Table 4)", len(ws))
	}
	names := map[string]bool{}
	for _, w := range ws {
		if names[w.Name] {
			t.Fatalf("duplicate workload %q", w.Name)
		}
		names[w.Name] = true
	}
	for _, want := range []string{"TPC-H Q1", "TPC-B", "TPC-C", "Wordcount"} {
		if !names[want] {
			t.Fatalf("missing workload %q", want)
		}
	}
}

func TestByName(t *testing.T) {
	w, err := ByName("TPC-H Q19")
	if err != nil || w.Name != "TPC-H Q19" {
		t.Fatalf("ByName: %v %v", w, err)
	}
	if _, err := ByName("nope"); err == nil {
		t.Fatal("unknown workload found")
	}
}

func TestRecordProducesTrace(t *testing.T) {
	w, _ := ByName("TPC-H Q1")
	tr, err := Record(w, TinyScale(), 4096)
	if err != nil {
		t.Fatal(err)
	}
	if len(tr.Steps) == 0 {
		t.Fatal("empty trace")
	}
	if tr.Result == "" {
		t.Fatal("no result")
	}
	if tr.Meter.PagesRead == 0 {
		t.Fatal("no pages read")
	}
	// Every step in a scan workload is a read.
	for _, s := range tr.Steps {
		if s.Op != OpRead {
			t.Fatal("Q1 trace contains writes")
		}
	}
	// Step meters must sum to the whole-run meter.
	var instr int64
	for _, s := range tr.Steps {
		instr += s.PreInstr
	}
	instr += tr.Tail.PreInstr
	if instr != tr.Meter.Instructions {
		t.Fatalf("step instr sum %d != meter %d", instr, tr.Meter.Instructions)
	}
}

func TestRecordDeterministic(t *testing.T) {
	w, _ := ByName("TPC-H Q3")
	a, err := Record(w, TinyScale(), 4096)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Record(w, TinyScale(), 4096)
	if err != nil {
		t.Fatal(err)
	}
	if a.Result != b.Result || len(a.Steps) != len(b.Steps) {
		t.Fatal("recording nondeterministic")
	}
}

func TestRecordAllWorkloads(t *testing.T) {
	traces, err := RecordAll(TinyScale(), 4096)
	if err != nil {
		t.Fatal(err)
	}
	if len(traces) != 11 {
		t.Fatalf("recorded %d traces", len(traces))
	}
	for _, tr := range traces {
		if len(tr.Steps) == 0 && tr.Tail.PreInstr == 0 {
			t.Errorf("%s: empty trace", tr.Name)
		}
	}
}

func TestWriteIntensiveWorkloadsWrite(t *testing.T) {
	for _, name := range []string{"TPC-B", "TPC-C"} {
		w, _ := ByName(name)
		tr, err := Record(w, TinyScale(), 4096)
		if err != nil {
			t.Fatal(err)
		}
		writes := 0
		for _, s := range tr.Steps {
			if s.Op == OpWrite {
				writes++
			}
		}
		if writes == 0 {
			t.Errorf("%s trace has no write steps", name)
		}
	}
}

func TestMeasuredWriteRatiosOrderLikeTable1(t *testing.T) {
	// The measured memory write ratios must preserve Table 1's qualitative
	// ordering: TPC-H scans < TPC-B < TPC-C < Wordcount... the paper's
	// TPC-B/TPC-C gap is small, so only the coarse ordering is asserted.
	get := func(name string) float64 {
		w, _ := ByName(name)
		tr, err := Record(w, TinyScale(), 4096)
		if err != nil {
			t.Fatal(err)
		}
		return tr.Meter.WriteRatio()
	}
	q1 := get("TPC-H Q1")
	tpcb := get("TPC-B")
	wc := get("Wordcount")
	if !(q1 < tpcb && tpcb < wc) {
		t.Fatalf("write ratio ordering: Q1=%v TPC-B=%v WC=%v", q1, tpcb, wc)
	}
	if q1 > 0.01 {
		t.Fatalf("Q1 write ratio %v too high", q1)
	}
	if wc < 0.2 {
		t.Fatalf("Wordcount write ratio %v too low", wc)
	}
}

func TestTraceByteAccessors(t *testing.T) {
	w, _ := ByName("Filter")
	tr, err := Record(w, TinyScale(), 4096)
	if err != nil {
		t.Fatal(err)
	}
	if tr.InputBytes() != tr.Meter.PagesRead*4096 {
		t.Fatal("InputBytes mismatch")
	}
	if tr.WrittenBytes() != tr.Meter.PagesWritten*4096 {
		t.Fatal("WrittenBytes mismatch")
	}
	_ = query.Meter{} // keep the query import meaningful if assertions change
}
