package workload

import (
	"fmt"

	"iceclave/internal/query"
)

// Op is a traced storage operation kind.
type Op uint8

// Trace operation kinds.
const (
	OpRead Op = iota
	OpWrite
)

// Step is one storage operation plus the compute the program performed
// since the previous operation: the unit the timing layer replays.
type Step struct {
	Op  Op
	LPA uint32
	// PreInstr is the instruction count retired between the previous
	// storage operation and this one.
	PreInstr int64
	// PreMemReads/PreMemWrites are the 64-byte memory accesses performed
	// in that compute window (DRAM-level, after cache absorption).
	PreMemReads  int64
	PreMemWrites int64
}

// Trace is a recorded workload execution.
type Trace struct {
	Name string
	// Steps in execution order.
	Steps []Step
	// Tail is the compute performed after the last storage operation.
	Tail Step
	// Result is the program's verified output.
	Result string
	// Meter is the whole-run accounting.
	Meter query.Meter
	// SetupPages is the number of distinct pages the dataset occupies.
	SetupPages int
	// PageSize is the page granularity the trace was recorded at.
	PageSize int
}

// InputBytes returns the flash bytes the program read.
func (t *Trace) InputBytes() int64 { return t.Meter.PagesRead * int64(t.PageSize) }

// WrittenBytes returns the flash bytes the program wrote.
func (t *Trace) WrittenBytes() int64 { return t.Meter.PagesWritten * int64(t.PageSize) }

// recordingStore wraps a MemStore, snapshotting meter deltas at each I/O.
type recordingStore struct {
	inner *query.MemStore
	meter *query.Meter
	steps []Step

	lastInstr, lastR, lastW int64
}

func (r *recordingStore) PageSize() int { return r.inner.PageSize() }

func (r *recordingStore) snap(op Op, lpa uint32) {
	r.steps = append(r.steps, Step{
		Op:           op,
		LPA:          lpa,
		PreInstr:     r.meter.Instructions - r.lastInstr,
		PreMemReads:  r.meter.MemReads - r.lastR,
		PreMemWrites: r.meter.MemWrites - r.lastW,
	})
	r.lastInstr, r.lastR, r.lastW = r.meter.Instructions, r.meter.MemReads, r.meter.MemWrites
}

func (r *recordingStore) ReadPage(lpa uint32) ([]byte, error) {
	r.snap(OpRead, lpa)
	return r.inner.ReadPage(lpa)
}

func (r *recordingStore) WritePage(lpa uint32, data []byte) error {
	r.snap(OpWrite, lpa)
	return r.inner.WritePage(lpa, data)
}

// Record sets up w at scale sc and executes it once against an in-memory
// store, recording the trace the timing layer replays. Setup I/O (dataset
// generation) is excluded from the trace.
func Record(w *Workload, sc Scale, pageSize int) (*Trace, error) {
	var m query.Meter
	rec := &recordingStore{inner: query.NewMemStore(pageSize), meter: &m}
	run, err := w.Setup(rec, sc)
	if err != nil {
		return nil, fmt.Errorf("workload %s: setup: %w", w.Name, err)
	}
	setupPages := rec.inner.Pages()
	rec.steps = nil // drop setup writes from the trace
	rec.lastInstr, rec.lastR, rec.lastW = m.Instructions, m.MemReads, m.MemWrites
	result, err := run(&m)
	if err != nil {
		return nil, fmt.Errorf("workload %s: run: %w", w.Name, err)
	}
	tail := Step{
		PreInstr:     m.Instructions - rec.lastInstr,
		PreMemReads:  m.MemReads - rec.lastR,
		PreMemWrites: m.MemWrites - rec.lastW,
	}
	return &Trace{
		Name:       w.Name,
		Steps:      rec.steps,
		Tail:       tail,
		Result:     result,
		Meter:      m,
		SetupPages: setupPages,
		PageSize:   pageSize,
	}, nil
}

// RecordAll records every standard workload at the given scale.
func RecordAll(sc Scale, pageSize int) ([]*Trace, error) {
	var out []*Trace
	for _, w := range Standard() {
		tr, err := Record(w, sc, pageSize)
		if err != nil {
			return nil, err
		}
		out = append(out, tr)
	}
	return out, nil
}
