// Package fault provides seeded, deterministic fault plans for the
// simulated SSD stack. A Plan describes per-operation probabilistic
// faults (transient read errors, program failures, MAC-verification
// failures) plus scripted one-shot faults (a die dying at a given
// virtual time). Decisions are pure functions of (seed, site, ordinal):
// the plan keeps no mutable state, so the same plan replays identically
// across fresh and pooled stacks and across EngineWorkers settings, and
// a *Plan can live inside core.Config without breaking comparability.
package fault

import (
	"errors"
	"fmt"
	"sync"

	"iceclave/internal/flash"
	"iceclave/internal/sim"
)

// Kind names an injection site class. It is folded into the decision
// hash so read, program, and MAC streams with the same ordinal do not
// correlate.
type Kind uint8

const (
	// KindRead is the per-read transient-fault stream.
	KindRead Kind = iota
	// KindProgram is the per-program failure stream.
	KindProgram
	// KindErase is reserved for per-erase faults (currently only die
	// deaths affect erases).
	KindErase
	// KindMAC is the per-tenant MAC-verification failure stream.
	KindMAC
)

// DieDeath scripts a one-shot permanent failure: all operations on
// (Channel, Die) at or after virtual time At fail with
// flash.ErrDieDead.
type DieDeath struct {
	Channel int
	Die     int
	At      sim.Time
}

// Plan is a complete fault scenario. The zero value injects nothing.
// Probabilities are per-operation in [0, 1]. Plans are immutable after
// construction; share one pointer across runs so config memoization
// keys stay identical.
type Plan struct {
	// Seed keys every probabilistic decision. Two plans with the same
	// rates but different seeds produce different (but individually
	// reproducible) fault sequences.
	Seed uint64
	// ReadTransient is the probability that a flash read fails with
	// flash.ErrTransientRead (retryable; the page data is intact).
	ReadTransient float64
	// ProgramFail is the probability that a flash program fails with
	// flash.ErrProgramFail (the block must be retired).
	ProgramFail float64
	// MACFail is the probability that a MAC-verified page read fails
	// integrity verification (surfaced as a mee.ErrIntegrity wrap).
	MACFail float64
	// DieDeaths scripts permanent die failures on the virtual clock.
	DieDeaths []DieDeath
}

// Zero reports whether the plan injects no faults at all. A nil plan
// is zero.
func (p *Plan) Zero() bool {
	if p == nil {
		return true
	}
	return p.ReadTransient <= 0 && p.ProgramFail <= 0 && p.MACFail <= 0 &&
		len(p.DieDeaths) == 0
}

// hash mixes (Seed, kind, shard, n) with the splitmix64 finalizer.
// Each (kind, shard) pair gets an independent stream indexed by n.
func (p *Plan) hash(kind Kind, shard int, n uint64) uint64 {
	x := p.Seed
	x ^= (uint64(kind) + 1) * 0x9E3779B97F4A7C15
	x ^= uint64(shard+1) * 0xBF58476D1CE4E5B9
	x ^= (n + 1) * 0x94D049BB133111EB
	x ^= x >> 30
	x *= 0xBF58476D1CE4E5B9
	x ^= x >> 27
	x *= 0x94D049BB133111EB
	x ^= x >> 31
	return x
}

// Fires reports whether the n-th operation of the (kind, shard) stream
// faults at probability prob. It is a pure function: identical inputs
// always agree, regardless of call order or goroutine.
func (p *Plan) Fires(kind Kind, shard int, n uint64, prob float64) bool {
	if p == nil || prob <= 0 {
		return false
	}
	if prob >= 1 {
		return true
	}
	// Take the top 53 bits for an unbiased uniform in [0, 1).
	return float64(p.hash(kind, shard, n)>>11)*(1.0/(1<<53)) < prob
}

// DieDead reports whether (ch, die) is scripted dead at virtual time at.
func (p *Plan) DieDead(at sim.Time, ch, die int) bool {
	if p == nil {
		return false
	}
	for _, d := range p.DieDeaths {
		if d.Channel == ch && d.Die == die && at >= d.At {
			return true
		}
	}
	return false
}

// ErrInvalidPlan is the sentinel carried by every *PlanError, so callers
// can dispatch on "the plan itself is malformed" without inspecting the
// concrete coordinates.
var ErrInvalidPlan = errors.New("fault: invalid plan")

// PlanError reports a fault plan rejected at injector-install time: a
// scripted DieDeath whose channel or die coordinate falls outside the
// device geometry it is being installed on. Before validation existed,
// such entries silently never fired — a scenario that claimed to kill a
// die while injecting nothing. It unwraps to ErrInvalidPlan.
type PlanError struct {
	// Index is the offending entry's position in Plan.DieDeaths.
	Index int
	// Field names the out-of-range coordinate ("Channel" or "Die").
	Field string
	// Value is the coordinate's value; Limit the exclusive upper bound
	// the geometry allows (valid values are [0, Limit)).
	Value, Limit int
}

func (e *PlanError) Error() string {
	return fmt.Sprintf("fault: DieDeaths[%d].%s = %d out of range [0, %d)",
		e.Index, e.Field, e.Value, e.Limit)
}

// Unwrap lets errors.Is(err, ErrInvalidPlan) match a *PlanError.
func (e *PlanError) Unwrap() error { return ErrInvalidPlan }

// Validate checks the plan's scripted coordinates against a device
// geometry: every DieDeath must name a channel in [0, channels) and a
// channel-local die in [0, diesPerChannel). A nil plan is valid. The
// first offending entry is returned as a *PlanError.
func (p *Plan) Validate(channels, diesPerChannel int) error {
	if p == nil {
		return nil
	}
	for i, d := range p.DieDeaths {
		if d.Channel < 0 || d.Channel >= channels {
			return &PlanError{Index: i, Field: "Channel", Value: d.Channel, Limit: channels}
		}
		if d.Die < 0 || d.Die >= diesPerChannel {
			return &PlanError{Index: i, Field: "Die", Value: d.Die, Limit: diesPerChannel}
		}
	}
	return nil
}

// MACFault reports whether the n-th MAC-verified page read of the given
// tenant fails verification.
func (p *Plan) MACFault(tenant int, n uint64) bool {
	if p == nil {
		return false
	}
	return p.Fires(KindMAC, tenant, n, p.MACFail)
}

// Injector adapts a Plan to the flash.Device injection seam. The
// device supplies the per-channel operation ordinal n; the injector
// turns it into a deterministic verdict. Construct with NewInjector.
type Injector struct {
	plan *Plan
}

var _ flash.Injector = (*Injector)(nil)

// NewInjector wraps plan for flash.Device.SetInjector. A nil or zero
// plan yields a nil interface, which the device treats as "no
// injection" — returning the interface type (not *Injector) is what
// keeps the nil from turning into a typed-nil at the SetInjector call.
func NewInjector(plan *Plan) flash.Injector {
	if plan.Zero() {
		return nil
	}
	return &Injector{plan: plan}
}

// Read decides the fate of the n-th read on channel ch targeting die.
func (in *Injector) Read(at sim.Time, ch, die int, n uint64) error {
	if in.plan.DieDead(at, ch, die) {
		return fmt.Errorf("fault: read on dead die (ch=%d,die=%d): %w", ch, die, flash.ErrDieDead)
	}
	if in.plan.Fires(KindRead, ch, n, in.plan.ReadTransient) {
		return fmt.Errorf("fault: transient read (ch=%d,die=%d,n=%d): %w", ch, die, n, flash.ErrTransientRead)
	}
	return nil
}

// Program decides the fate of the n-th program on channel ch targeting die.
func (in *Injector) Program(at sim.Time, ch, die int, n uint64) error {
	if in.plan.DieDead(at, ch, die) {
		return fmt.Errorf("fault: program on dead die (ch=%d,die=%d): %w", ch, die, flash.ErrDieDead)
	}
	if in.plan.Fires(KindProgram, ch, n, in.plan.ProgramFail) {
		return fmt.Errorf("fault: program failure (ch=%d,die=%d,n=%d): %w", ch, die, n, flash.ErrProgramFail)
	}
	return nil
}

// Erase decides the fate of the n-th erase on channel ch targeting die.
// Only scripted die deaths affect erases.
func (in *Injector) Erase(at sim.Time, ch, die int, n uint64) error {
	if in.plan.DieDead(at, ch, die) {
		return fmt.Errorf("fault: erase on dead die (ch=%d,die=%d): %w", ch, die, flash.ErrDieDead)
	}
	return nil
}

// NewInjectorFor is the validating form of NewInjector: the injector is
// built only after the plan's scripted coordinates check out against the
// target device's geometry (channels × diesPerChannel). An out-of-range
// DieDeath yields a *PlanError instead of an injector that silently
// never fires. A nil or zero plan yields (nil, nil).
func NewInjectorFor(plan *Plan, channels, diesPerChannel int) (flash.Injector, error) {
	if err := plan.Validate(channels, diesPerChannel); err != nil {
		return nil, err
	}
	return NewInjector(plan), nil
}

// DeviceDeath scripts a die death on one device of a fleet: the named
// device suffers Death; every other device's plan omits it.
type DeviceDeath struct {
	Device int
	Death  DieDeath
}

// KillDevice scripts the total death of one device: every
// (channel, die) of a channels × diesPerChannel geometry dies at virtual
// time at. Installing the derived plan retires the whole device — the
// fleet-failover sweep's way of taking a device out from under its
// tenants.
func KillDevice(device int, at sim.Time, channels, diesPerChannel int) []DeviceDeath {
	out := make([]DeviceDeath, 0, channels*diesPerChannel)
	for ch := 0; ch < channels; ch++ {
		for die := 0; die < diesPerChannel; die++ {
			out = append(out, DeviceDeath{Device: device,
				Death: DieDeath{Channel: ch, Die: die, At: at}})
		}
	}
	return out
}

// FleetPlan is a fault scenario for a fleet of devices: background
// probabilistic rates applied to every device through decorrelated
// per-device streams, plus die deaths scripted against specific devices
// — so one device can be scripted to die while its neighbours stay
// clean. Derive each device's member with ForDevice.
//
// Like Plan, a FleetPlan is immutable after construction; share one
// pointer across runs. ForDevice caches the derived plans, so the same
// (fleet plan, device) pair always yields the same *Plan instance —
// which is what lets derived plans participate in config memo keys that
// compare pointers by identity.
type FleetPlan struct {
	// Seed keys every device's probabilistic streams; device d runs under
	// a seed mixed from (Seed, d), so fleet-wide rates never produce
	// correlated fault patterns across devices.
	Seed uint64
	// ReadTransient, ProgramFail, and MACFail are fleet-wide background
	// rates, applied to every device (see Plan for their semantics).
	ReadTransient float64
	ProgramFail   float64
	MACFail       float64
	// Deaths scripts die deaths on specific devices.
	Deaths []DeviceDeath

	mu      sync.Mutex
	derived map[int]*Plan
}

// deviceSeed decorrelates device d's streams from its neighbours' with
// the same splitmix64 finalizer the per-plan hash uses.
func (fp *FleetPlan) deviceSeed(device int) uint64 {
	x := fp.Seed ^ uint64(device+1)*0xD1B54A32D192ED03
	x ^= x >> 30
	x *= 0xBF58476D1CE4E5B9
	x ^= x >> 27
	x *= 0x94D049BB133111EB
	x ^= x >> 31
	return x
}

// ForDevice returns device's member of the fleet scenario: the
// background rates under a device-mixed seed, plus only the die deaths
// scripted for that device. A device the scenario leaves entirely clean
// gets nil, so it replays the exact fault-free path bit for bit. The
// result is cached: repeated calls return the same pointer.
func (fp *FleetPlan) ForDevice(device int) *Plan {
	if fp == nil {
		return nil
	}
	fp.mu.Lock()
	defer fp.mu.Unlock()
	if p, ok := fp.derived[device]; ok {
		return p
	}
	var deaths []DieDeath
	for _, d := range fp.Deaths {
		if d.Device == device {
			deaths = append(deaths, d.Death)
		}
	}
	var p *Plan
	if fp.ReadTransient > 0 || fp.ProgramFail > 0 || fp.MACFail > 0 || len(deaths) > 0 {
		p = &Plan{
			Seed:          fp.deviceSeed(device),
			ReadTransient: fp.ReadTransient,
			ProgramFail:   fp.ProgramFail,
			MACFail:       fp.MACFail,
			DieDeaths:     deaths,
		}
	}
	if fp.derived == nil {
		fp.derived = make(map[int]*Plan)
	}
	fp.derived[device] = p
	return p
}
