// Package fault provides seeded, deterministic fault plans for the
// simulated SSD stack. A Plan describes per-operation probabilistic
// faults (transient read errors, program failures, MAC-verification
// failures) plus scripted one-shot faults (a die dying at a given
// virtual time). Decisions are pure functions of (seed, site, ordinal):
// the plan keeps no mutable state, so the same plan replays identically
// across fresh and pooled stacks and across EngineWorkers settings, and
// a *Plan can live inside core.Config without breaking comparability.
package fault

import (
	"fmt"

	"iceclave/internal/flash"
	"iceclave/internal/sim"
)

// Kind names an injection site class. It is folded into the decision
// hash so read, program, and MAC streams with the same ordinal do not
// correlate.
type Kind uint8

const (
	// KindRead is the per-read transient-fault stream.
	KindRead Kind = iota
	// KindProgram is the per-program failure stream.
	KindProgram
	// KindErase is reserved for per-erase faults (currently only die
	// deaths affect erases).
	KindErase
	// KindMAC is the per-tenant MAC-verification failure stream.
	KindMAC
)

// DieDeath scripts a one-shot permanent failure: all operations on
// (Channel, Die) at or after virtual time At fail with
// flash.ErrDieDead.
type DieDeath struct {
	Channel int
	Die     int
	At      sim.Time
}

// Plan is a complete fault scenario. The zero value injects nothing.
// Probabilities are per-operation in [0, 1]. Plans are immutable after
// construction; share one pointer across runs so config memoization
// keys stay identical.
type Plan struct {
	// Seed keys every probabilistic decision. Two plans with the same
	// rates but different seeds produce different (but individually
	// reproducible) fault sequences.
	Seed uint64
	// ReadTransient is the probability that a flash read fails with
	// flash.ErrTransientRead (retryable; the page data is intact).
	ReadTransient float64
	// ProgramFail is the probability that a flash program fails with
	// flash.ErrProgramFail (the block must be retired).
	ProgramFail float64
	// MACFail is the probability that a MAC-verified page read fails
	// integrity verification (surfaced as a mee.ErrIntegrity wrap).
	MACFail float64
	// DieDeaths scripts permanent die failures on the virtual clock.
	DieDeaths []DieDeath
}

// Zero reports whether the plan injects no faults at all. A nil plan
// is zero.
func (p *Plan) Zero() bool {
	if p == nil {
		return true
	}
	return p.ReadTransient <= 0 && p.ProgramFail <= 0 && p.MACFail <= 0 &&
		len(p.DieDeaths) == 0
}

// hash mixes (Seed, kind, shard, n) with the splitmix64 finalizer.
// Each (kind, shard) pair gets an independent stream indexed by n.
func (p *Plan) hash(kind Kind, shard int, n uint64) uint64 {
	x := p.Seed
	x ^= (uint64(kind) + 1) * 0x9E3779B97F4A7C15
	x ^= uint64(shard+1) * 0xBF58476D1CE4E5B9
	x ^= (n + 1) * 0x94D049BB133111EB
	x ^= x >> 30
	x *= 0xBF58476D1CE4E5B9
	x ^= x >> 27
	x *= 0x94D049BB133111EB
	x ^= x >> 31
	return x
}

// Fires reports whether the n-th operation of the (kind, shard) stream
// faults at probability prob. It is a pure function: identical inputs
// always agree, regardless of call order or goroutine.
func (p *Plan) Fires(kind Kind, shard int, n uint64, prob float64) bool {
	if p == nil || prob <= 0 {
		return false
	}
	if prob >= 1 {
		return true
	}
	// Take the top 53 bits for an unbiased uniform in [0, 1).
	return float64(p.hash(kind, shard, n)>>11)*(1.0/(1<<53)) < prob
}

// DieDead reports whether (ch, die) is scripted dead at virtual time at.
func (p *Plan) DieDead(at sim.Time, ch, die int) bool {
	if p == nil {
		return false
	}
	for _, d := range p.DieDeaths {
		if d.Channel == ch && d.Die == die && at >= d.At {
			return true
		}
	}
	return false
}

// MACFault reports whether the n-th MAC-verified page read of the given
// tenant fails verification.
func (p *Plan) MACFault(tenant int, n uint64) bool {
	if p == nil {
		return false
	}
	return p.Fires(KindMAC, tenant, n, p.MACFail)
}

// Injector adapts a Plan to the flash.Device injection seam. The
// device supplies the per-channel operation ordinal n; the injector
// turns it into a deterministic verdict. Construct with NewInjector.
type Injector struct {
	plan *Plan
}

var _ flash.Injector = (*Injector)(nil)

// NewInjector wraps plan for flash.Device.SetInjector. A nil or zero
// plan yields a nil interface, which the device treats as "no
// injection" — returning the interface type (not *Injector) is what
// keeps the nil from turning into a typed-nil at the SetInjector call.
func NewInjector(plan *Plan) flash.Injector {
	if plan.Zero() {
		return nil
	}
	return &Injector{plan: plan}
}

// Read decides the fate of the n-th read on channel ch targeting die.
func (in *Injector) Read(at sim.Time, ch, die int, n uint64) error {
	if in.plan.DieDead(at, ch, die) {
		return fmt.Errorf("fault: read on dead die (ch=%d,die=%d): %w", ch, die, flash.ErrDieDead)
	}
	if in.plan.Fires(KindRead, ch, n, in.plan.ReadTransient) {
		return fmt.Errorf("fault: transient read (ch=%d,die=%d,n=%d): %w", ch, die, n, flash.ErrTransientRead)
	}
	return nil
}

// Program decides the fate of the n-th program on channel ch targeting die.
func (in *Injector) Program(at sim.Time, ch, die int, n uint64) error {
	if in.plan.DieDead(at, ch, die) {
		return fmt.Errorf("fault: program on dead die (ch=%d,die=%d): %w", ch, die, flash.ErrDieDead)
	}
	if in.plan.Fires(KindProgram, ch, n, in.plan.ProgramFail) {
		return fmt.Errorf("fault: program failure (ch=%d,die=%d,n=%d): %w", ch, die, n, flash.ErrProgramFail)
	}
	return nil
}

// Erase decides the fate of the n-th erase on channel ch targeting die.
// Only scripted die deaths affect erases.
func (in *Injector) Erase(at sim.Time, ch, die int, n uint64) error {
	if in.plan.DieDead(at, ch, die) {
		return fmt.Errorf("fault: erase on dead die (ch=%d,die=%d): %w", ch, die, flash.ErrDieDead)
	}
	return nil
}
