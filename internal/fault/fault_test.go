package fault

import (
	"errors"
	"math"
	"testing"

	"iceclave/internal/flash"
	"iceclave/internal/sim"
)

func TestZero(t *testing.T) {
	var nilPlan *Plan
	if !nilPlan.Zero() {
		t.Fatal("nil plan must be zero")
	}
	if !(&Plan{Seed: 42}).Zero() {
		t.Fatal("seed alone does not make a plan inject")
	}
	cases := []Plan{
		{ReadTransient: 0.1},
		{ProgramFail: 0.1},
		{MACFail: 0.1},
		{DieDeaths: []DieDeath{{Channel: 1, Die: 2, At: 5}}},
	}
	for i, p := range cases {
		if p.Zero() {
			t.Errorf("case %d: plan with faults reported Zero", i)
		}
	}
}

func TestFiresDeterministic(t *testing.T) {
	p := &Plan{Seed: 7, ReadTransient: 0.3}
	for n := uint64(0); n < 1000; n++ {
		a := p.Fires(KindRead, 3, n, 0.3)
		b := p.Fires(KindRead, 3, n, 0.3)
		if a != b {
			t.Fatalf("n=%d: decision not deterministic", n)
		}
	}
}

func TestFiresBounds(t *testing.T) {
	p := &Plan{Seed: 1}
	for n := uint64(0); n < 1000; n++ {
		if p.Fires(KindRead, 0, n, 0) {
			t.Fatal("prob 0 fired")
		}
		if !p.Fires(KindRead, 0, n, 1) {
			t.Fatal("prob 1 did not fire")
		}
	}
	var nilPlan *Plan
	if nilPlan.Fires(KindRead, 0, 0, 1) {
		t.Fatal("nil plan fired")
	}
}

func TestFiresRate(t *testing.T) {
	p := &Plan{Seed: 99}
	for _, prob := range []float64{0.01, 0.1, 0.5} {
		hits := 0
		const N = 200000
		for n := uint64(0); n < N; n++ {
			if p.Fires(KindRead, 2, n, prob) {
				hits++
			}
		}
		got := float64(hits) / N
		if math.Abs(got-prob) > 0.01 {
			t.Errorf("prob %.2f: observed rate %.4f", prob, got)
		}
	}
}

// Streams for different kinds, shards, and seeds must not correlate:
// over a window, the decisions differ somewhere.
func TestStreamIndependence(t *testing.T) {
	base := &Plan{Seed: 5}
	seed := &Plan{Seed: 6}
	same := func(a, b func(uint64) bool) bool {
		for n := uint64(0); n < 4096; n++ {
			if a(n) != b(n) {
				return false
			}
		}
		return true
	}
	if same(
		func(n uint64) bool { return base.Fires(KindRead, 0, n, 0.5) },
		func(n uint64) bool { return base.Fires(KindProgram, 0, n, 0.5) },
	) {
		t.Error("read and program streams identical")
	}
	if same(
		func(n uint64) bool { return base.Fires(KindRead, 0, n, 0.5) },
		func(n uint64) bool { return base.Fires(KindRead, 1, n, 0.5) },
	) {
		t.Error("shard 0 and shard 1 streams identical")
	}
	if same(
		func(n uint64) bool { return base.Fires(KindRead, 0, n, 0.5) },
		func(n uint64) bool { return seed.Fires(KindRead, 0, n, 0.5) },
	) {
		t.Error("seed 5 and seed 6 streams identical")
	}
}

func TestDieDead(t *testing.T) {
	p := &Plan{DieDeaths: []DieDeath{{Channel: 2, Die: 1, At: 100}}}
	if p.DieDead(99, 2, 1) {
		t.Fatal("die dead before its death time")
	}
	if !p.DieDead(100, 2, 1) {
		t.Fatal("die alive at its death time")
	}
	if !p.DieDead(5000, 2, 1) {
		t.Fatal("die alive after its death time")
	}
	if p.DieDead(5000, 2, 0) || p.DieDead(5000, 1, 1) {
		t.Fatal("wrong die reported dead")
	}
	var nilPlan *Plan
	if nilPlan.DieDead(0, 0, 0) {
		t.Fatal("nil plan killed a die")
	}
}

func TestNewInjectorZeroPlan(t *testing.T) {
	if inj := NewInjector(nil); inj != nil {
		t.Fatal("nil plan produced an injector")
	}
	if inj := NewInjector(&Plan{Seed: 3}); inj != nil {
		t.Fatal("zero plan produced an injector")
	}
	if inj := NewInjector(&Plan{ReadTransient: 0.5}); inj == nil {
		t.Fatal("non-zero plan produced no injector")
	}
}

func TestInjectorVerdicts(t *testing.T) {
	inj := NewInjector(&Plan{
		Seed:          11,
		ReadTransient: 1,
		ProgramFail:   1,
		DieDeaths:     []DieDeath{{Channel: 0, Die: 0, At: 50}},
	})
	if err := inj.Read(0, 1, 0, 0); !errors.Is(err, flash.ErrTransientRead) {
		t.Fatalf("read verdict = %v, want ErrTransientRead", err)
	}
	if err := inj.Program(0, 1, 0, 0); !errors.Is(err, flash.ErrProgramFail) {
		t.Fatalf("program verdict = %v, want ErrProgramFail", err)
	}
	// Die death takes precedence over probabilistic faults.
	for _, err := range []error{
		inj.Read(50, 0, 0, 0),
		inj.Program(50, 0, 0, 0),
		inj.Erase(50, 0, 0, 0),
	} {
		if !errors.Is(err, flash.ErrDieDead) {
			t.Fatalf("dead-die verdict = %v, want ErrDieDead", err)
		}
	}
	if err := inj.Erase(0, 1, 0, 0); err != nil {
		t.Fatalf("erase on healthy die = %v", err)
	}
}

// FuzzFaultPlan checks the plan invariants hold for arbitrary inputs:
// decisions are pure (repeatable), bounded probabilities behave, and
// the injector never panics.
func FuzzFaultPlan(f *testing.F) {
	f.Add(uint64(1), 0.1, 0.05, 0.01, 3, uint64(7), int64(1000))
	f.Add(uint64(0), 0.0, 0.0, 0.0, 0, uint64(0), int64(0))
	f.Add(^uint64(0), 1.0, 1.0, 1.0, -1, ^uint64(0), int64(-5))
	f.Add(uint64(123), -0.5, 2.0, 0.999, 255, uint64(1)<<63, int64(1)<<40)
	f.Fuzz(func(t *testing.T, seed uint64, pr, pp, pm float64, shard int, n uint64, at int64) {
		p := &Plan{
			Seed:          seed,
			ReadTransient: pr,
			ProgramFail:   pp,
			MACFail:       pm,
			DieDeaths:     []DieDeath{{Channel: shard, Die: 0, At: sim.Time(at)}},
		}
		for _, k := range []Kind{KindRead, KindProgram, KindErase, KindMAC} {
			for _, prob := range []float64{pr, pp, pm} {
				a := p.Fires(k, shard, n, prob)
				if b := p.Fires(k, shard, n, prob); a != b {
					t.Fatalf("Fires(%d,%d,%d,%v) not repeatable", k, shard, n, prob)
				}
				if prob <= 0 && a {
					t.Fatalf("prob %v fired", prob)
				}
				if prob >= 1 && !a {
					t.Fatalf("prob %v did not fire", prob)
				}
			}
		}
		if a, b := p.MACFault(shard, n), p.MACFault(shard, n); a != b {
			t.Fatal("MACFault not repeatable")
		}
		if a, b := p.DieDead(sim.Time(at), shard, 0), p.DieDead(sim.Time(at), shard, 0); a != b {
			t.Fatal("DieDead not repeatable")
		}
		if inj := NewInjector(p); inj != nil {
			// Must never panic, and must agree with itself.
			for _, call := range []func() error{
				func() error { return inj.Read(sim.Time(at), shard, 0, n) },
				func() error { return inj.Program(sim.Time(at), shard, 0, n) },
				func() error { return inj.Erase(sim.Time(at), shard, 0, n) },
			} {
				e1, e2 := call(), call()
				if (e1 == nil) != (e2 == nil) {
					t.Fatal("injector verdict not repeatable")
				}
			}
		} else if !p.Zero() {
			t.Fatal("non-zero plan produced no injector")
		}
	})
}
