package fault

import (
	"errors"
	"math"
	"testing"

	"iceclave/internal/flash"
	"iceclave/internal/sim"
)

func TestZero(t *testing.T) {
	var nilPlan *Plan
	if !nilPlan.Zero() {
		t.Fatal("nil plan must be zero")
	}
	if !(&Plan{Seed: 42}).Zero() {
		t.Fatal("seed alone does not make a plan inject")
	}
	cases := []Plan{
		{ReadTransient: 0.1},
		{ProgramFail: 0.1},
		{MACFail: 0.1},
		{DieDeaths: []DieDeath{{Channel: 1, Die: 2, At: 5}}},
	}
	for i, p := range cases {
		if p.Zero() {
			t.Errorf("case %d: plan with faults reported Zero", i)
		}
	}
}

func TestFiresDeterministic(t *testing.T) {
	p := &Plan{Seed: 7, ReadTransient: 0.3}
	for n := uint64(0); n < 1000; n++ {
		a := p.Fires(KindRead, 3, n, 0.3)
		b := p.Fires(KindRead, 3, n, 0.3)
		if a != b {
			t.Fatalf("n=%d: decision not deterministic", n)
		}
	}
}

func TestFiresBounds(t *testing.T) {
	p := &Plan{Seed: 1}
	for n := uint64(0); n < 1000; n++ {
		if p.Fires(KindRead, 0, n, 0) {
			t.Fatal("prob 0 fired")
		}
		if !p.Fires(KindRead, 0, n, 1) {
			t.Fatal("prob 1 did not fire")
		}
	}
	var nilPlan *Plan
	if nilPlan.Fires(KindRead, 0, 0, 1) {
		t.Fatal("nil plan fired")
	}
}

func TestFiresRate(t *testing.T) {
	p := &Plan{Seed: 99}
	for _, prob := range []float64{0.01, 0.1, 0.5} {
		hits := 0
		const N = 200000
		for n := uint64(0); n < N; n++ {
			if p.Fires(KindRead, 2, n, prob) {
				hits++
			}
		}
		got := float64(hits) / N
		if math.Abs(got-prob) > 0.01 {
			t.Errorf("prob %.2f: observed rate %.4f", prob, got)
		}
	}
}

// Streams for different kinds, shards, and seeds must not correlate:
// over a window, the decisions differ somewhere.
func TestStreamIndependence(t *testing.T) {
	base := &Plan{Seed: 5}
	seed := &Plan{Seed: 6}
	same := func(a, b func(uint64) bool) bool {
		for n := uint64(0); n < 4096; n++ {
			if a(n) != b(n) {
				return false
			}
		}
		return true
	}
	if same(
		func(n uint64) bool { return base.Fires(KindRead, 0, n, 0.5) },
		func(n uint64) bool { return base.Fires(KindProgram, 0, n, 0.5) },
	) {
		t.Error("read and program streams identical")
	}
	if same(
		func(n uint64) bool { return base.Fires(KindRead, 0, n, 0.5) },
		func(n uint64) bool { return base.Fires(KindRead, 1, n, 0.5) },
	) {
		t.Error("shard 0 and shard 1 streams identical")
	}
	if same(
		func(n uint64) bool { return base.Fires(KindRead, 0, n, 0.5) },
		func(n uint64) bool { return seed.Fires(KindRead, 0, n, 0.5) },
	) {
		t.Error("seed 5 and seed 6 streams identical")
	}
}

func TestDieDead(t *testing.T) {
	p := &Plan{DieDeaths: []DieDeath{{Channel: 2, Die: 1, At: 100}}}
	if p.DieDead(99, 2, 1) {
		t.Fatal("die dead before its death time")
	}
	if !p.DieDead(100, 2, 1) {
		t.Fatal("die alive at its death time")
	}
	if !p.DieDead(5000, 2, 1) {
		t.Fatal("die alive after its death time")
	}
	if p.DieDead(5000, 2, 0) || p.DieDead(5000, 1, 1) {
		t.Fatal("wrong die reported dead")
	}
	var nilPlan *Plan
	if nilPlan.DieDead(0, 0, 0) {
		t.Fatal("nil plan killed a die")
	}
}

func TestNewInjectorZeroPlan(t *testing.T) {
	if inj := NewInjector(nil); inj != nil {
		t.Fatal("nil plan produced an injector")
	}
	if inj := NewInjector(&Plan{Seed: 3}); inj != nil {
		t.Fatal("zero plan produced an injector")
	}
	if inj := NewInjector(&Plan{ReadTransient: 0.5}); inj == nil {
		t.Fatal("non-zero plan produced no injector")
	}
}

func TestInjectorVerdicts(t *testing.T) {
	inj := NewInjector(&Plan{
		Seed:          11,
		ReadTransient: 1,
		ProgramFail:   1,
		DieDeaths:     []DieDeath{{Channel: 0, Die: 0, At: 50}},
	})
	if err := inj.Read(0, 1, 0, 0); !errors.Is(err, flash.ErrTransientRead) {
		t.Fatalf("read verdict = %v, want ErrTransientRead", err)
	}
	if err := inj.Program(0, 1, 0, 0); !errors.Is(err, flash.ErrProgramFail) {
		t.Fatalf("program verdict = %v, want ErrProgramFail", err)
	}
	// Die death takes precedence over probabilistic faults.
	for _, err := range []error{
		inj.Read(50, 0, 0, 0),
		inj.Program(50, 0, 0, 0),
		inj.Erase(50, 0, 0, 0),
	} {
		if !errors.Is(err, flash.ErrDieDead) {
			t.Fatalf("dead-die verdict = %v, want ErrDieDead", err)
		}
	}
	if err := inj.Erase(0, 1, 0, 0); err != nil {
		t.Fatalf("erase on healthy die = %v", err)
	}
}

func TestPlanValidate(t *testing.T) {
	var nilPlan *Plan
	if err := nilPlan.Validate(4, 16); err != nil {
		t.Fatalf("nil plan invalid: %v", err)
	}
	ok := &Plan{DieDeaths: []DieDeath{{Channel: 0, Die: 0}, {Channel: 3, Die: 15}}}
	if err := ok.Validate(4, 16); err != nil {
		t.Fatalf("in-range plan invalid: %v", err)
	}
	cases := []struct {
		death DieDeath
		field string
	}{
		{DieDeath{Channel: 4, Die: 0}, "Channel"},
		{DieDeath{Channel: -1, Die: 0}, "Channel"},
		{DieDeath{Channel: 0, Die: 16}, "Die"},
		{DieDeath{Channel: 0, Die: -1}, "Die"},
	}
	for _, c := range cases {
		p := &Plan{DieDeaths: []DieDeath{{Channel: 1, Die: 1}, c.death}}
		err := p.Validate(4, 16)
		if err == nil {
			t.Fatalf("death %+v passed validation", c.death)
		}
		if !errors.Is(err, ErrInvalidPlan) {
			t.Fatalf("death %+v: error %v does not wrap ErrInvalidPlan", c.death, err)
		}
		var pe *PlanError
		if !errors.As(err, &pe) {
			t.Fatalf("death %+v: error %v is not a *PlanError", c.death, err)
		}
		if pe.Index != 1 || pe.Field != c.field {
			t.Fatalf("death %+v: got PlanError{Index: %d, Field: %q}, want index 1 field %q",
				c.death, pe.Index, pe.Field, c.field)
		}
	}
}

func TestNewInjectorForInvalidPlan(t *testing.T) {
	bad := &Plan{DieDeaths: []DieDeath{{Channel: 9, Die: 0, At: 5}}}
	inj, err := NewInjectorFor(bad, 4, 16)
	if err == nil || inj != nil {
		t.Fatalf("out-of-range plan installed: inj=%v err=%v", inj, err)
	}
	if !errors.Is(err, ErrInvalidPlan) {
		t.Fatalf("install error %v does not wrap ErrInvalidPlan", err)
	}
	if inj, err := NewInjectorFor(nil, 4, 16); inj != nil || err != nil {
		t.Fatalf("nil plan: inj=%v err=%v", inj, err)
	}
	good := &Plan{ReadTransient: 0.5, DieDeaths: []DieDeath{{Channel: 3, Die: 15, At: 5}}}
	if inj, err := NewInjectorFor(good, 4, 16); inj == nil || err != nil {
		t.Fatalf("valid plan rejected: inj=%v err=%v", inj, err)
	}
}

func TestFleetPlanForDevice(t *testing.T) {
	fp := &FleetPlan{
		Seed:          9,
		ReadTransient: 0.1,
		Deaths: append(KillDevice(1, sim.Time(100), 2, 3),
			DeviceDeath{Device: 0, Death: DieDeath{Channel: 1, Die: 2, At: 7}}),
	}
	p0, p1, p2 := fp.ForDevice(0), fp.ForDevice(1), fp.ForDevice(2)
	if p0 == nil || p1 == nil || p2 == nil {
		t.Fatal("devices with rates must derive plans")
	}
	if len(p0.DieDeaths) != 1 || p0.DieDeaths[0] != (DieDeath{Channel: 1, Die: 2, At: 7}) {
		t.Fatalf("device 0 deaths = %+v", p0.DieDeaths)
	}
	if len(p1.DieDeaths) != 6 {
		t.Fatalf("killed device has %d deaths, want 6", len(p1.DieDeaths))
	}
	if len(p2.DieDeaths) != 0 {
		t.Fatalf("clean device has deaths: %+v", p2.DieDeaths)
	}
	if p0.Seed == p1.Seed || p1.Seed == p2.Seed {
		t.Fatal("device seeds not decorrelated")
	}
	if fp.ForDevice(0) != p0 || fp.ForDevice(1) != p1 {
		t.Fatal("ForDevice must return cached pointers for memo-key identity")
	}
	// Probabilistic streams of different devices must diverge somewhere.
	sameStream := true
	for n := uint64(0); n < 4096 && sameStream; n++ {
		if p0.Fires(KindRead, 0, n, 0.5) != p2.Fires(KindRead, 0, n, 0.5) {
			sameStream = false
		}
	}
	if sameStream {
		t.Fatal("device 0 and device 2 read streams identical")
	}

	// A fleet plan with no rates leaves undamaged devices on the nil
	// (exact fault-free) path.
	quiet := &FleetPlan{Seed: 3, Deaths: KillDevice(1, sim.Time(50), 2, 3)}
	if p := quiet.ForDevice(0); p != nil {
		t.Fatalf("clean device of a rate-free plan derived %+v, want nil", p)
	}
	if p := quiet.ForDevice(1); p == nil || len(p.DieDeaths) != 6 {
		t.Fatalf("killed device of a rate-free plan derived %+v", p)
	}
	var nilFleet *FleetPlan
	if nilFleet.ForDevice(0) != nil {
		t.Fatal("nil fleet plan derived a device plan")
	}
}

// FuzzFaultPlan checks the plan invariants hold for arbitrary inputs:
// decisions are pure (repeatable), bounded probabilities behave,
// validation agrees with the geometry bounds, and the injector never
// panics.
func FuzzFaultPlan(f *testing.F) {
	f.Add(uint64(1), 0.1, 0.05, 0.01, 3, uint64(7), int64(1000))
	f.Add(uint64(0), 0.0, 0.0, 0.0, 0, uint64(0), int64(0))
	f.Add(^uint64(0), 1.0, 1.0, 1.0, -1, ^uint64(0), int64(-5))
	f.Add(uint64(123), -0.5, 2.0, 0.999, 255, uint64(1)<<63, int64(1)<<40)
	// Out-of-range DieDeaths coordinates: install-time validation must
	// reject shard 99 (and the negative-channel seed above) against the
	// 8 x 16 geometry the fuzz body checks.
	f.Add(uint64(9), 0.1, 0.0, 0.0, 99, uint64(3), int64(10))
	f.Fuzz(func(t *testing.T, seed uint64, pr, pp, pm float64, shard int, n uint64, at int64) {
		p := &Plan{
			Seed:          seed,
			ReadTransient: pr,
			ProgramFail:   pp,
			MACFail:       pm,
			DieDeaths:     []DieDeath{{Channel: shard, Die: 0, At: sim.Time(at)}},
		}
		for _, k := range []Kind{KindRead, KindProgram, KindErase, KindMAC} {
			for _, prob := range []float64{pr, pp, pm} {
				a := p.Fires(k, shard, n, prob)
				if b := p.Fires(k, shard, n, prob); a != b {
					t.Fatalf("Fires(%d,%d,%d,%v) not repeatable", k, shard, n, prob)
				}
				if prob <= 0 && a {
					t.Fatalf("prob %v fired", prob)
				}
				if prob >= 1 && !a {
					t.Fatalf("prob %v did not fire", prob)
				}
			}
		}
		if a, b := p.MACFault(shard, n), p.MACFault(shard, n); a != b {
			t.Fatal("MACFault not repeatable")
		}
		if a, b := p.DieDead(sim.Time(at), shard, 0), p.DieDead(sim.Time(at), shard, 0); a != b {
			t.Fatal("DieDead not repeatable")
		}
		// Validation must agree exactly with the coordinate bounds: the
		// single scripted death is in range for an 8 x 16 geometry iff
		// shard is, and NewInjectorFor's verdict must match Validate's.
		const vCh, vDie = 8, 16
		verr := p.Validate(vCh, vDie)
		if inRange := shard >= 0 && shard < vCh; inRange != (verr == nil) {
			t.Fatalf("Validate(%d, %d) = %v with shard %d", vCh, vDie, verr, shard)
		}
		if verr != nil && !errors.Is(verr, ErrInvalidPlan) {
			t.Fatalf("Validate error %v does not wrap ErrInvalidPlan", verr)
		}
		vinj, vierr := NewInjectorFor(p, vCh, vDie)
		if (vierr == nil) != (verr == nil) {
			t.Fatalf("NewInjectorFor error %v disagrees with Validate %v", vierr, verr)
		}
		if vierr == nil && (vinj == nil) != p.Zero() {
			t.Fatalf("NewInjectorFor returned injector=%v for Zero=%v", vinj != nil, p.Zero())
		}
		if inj := NewInjector(p); inj != nil {
			// Must never panic, and must agree with itself.
			for _, call := range []func() error{
				func() error { return inj.Read(sim.Time(at), shard, 0, n) },
				func() error { return inj.Program(sim.Time(at), shard, 0, n) },
				func() error { return inj.Erase(sim.Time(at), shard, 0, n) },
			} {
				e1, e2 := call(), call()
				if (e1 == nil) != (e2 == nil) {
					t.Fatal("injector verdict not repeatable")
				}
			}
		} else if !p.Zero() {
			t.Fatal("non-zero plan produced no injector")
		}
	})
}
