// Package mee implements IceClave's memory encryption engine for SSD DRAM
// (paper §4.4): counter-mode encryption with the hybrid-counter scheme
// (major-only counters for read-only pages, split counters for writable
// pages), two Bonsai Merkle Trees for integrity, and a counter-cache
// traffic model that quantifies the extra DRAM accesses encryption and
// verification cost (Table 6, Figure 8).
//
// The package has two faces:
//
//   - Engine is a functional encrypted memory: it really encrypts 64-byte
//     lines with an AES-CTR one-time pad, really MACs them with SHA-256,
//     and really detects tampering, replay, and counter corruption.
//   - TrafficModel is the statistical counter-cache simulation the timing
//     experiments drive with millions of accesses.
//
// Concurrency contract: Engine is safe for concurrent use (one mutex
// serializes page-state and root updates; the AES key schedule is
// expanded once and read-only after construction). TrafficModel is not —
// each replay drives a private instance.
package mee

import (
	"crypto/aes"
	"crypto/cipher"
	"crypto/sha256"
	"encoding/binary"
	"errors"
	"fmt"
	"sync"
)

// LineSize is the protected-memory granularity: one 64-byte cache line.
const LineSize = 64

// PageSize is the protection page granularity (4 KB base pages, Figure 7).
const PageSize = 4096

// LinesPerPage is the number of cache lines per page.
const LinesPerPage = PageSize / LineSize

// MinorLimit is the capacity of a 6-bit minor counter; the 64th write to a
// line within one major epoch overflows it, forcing a page re-encryption
// (major bump + minor reset).
const MinorLimit = 64

// ErrIntegrity is returned when a MAC or tree verification fails: the
// memory returned different bytes than the processor last wrote.
var ErrIntegrity = errors.New("mee: integrity verification failed")

// ErrReadOnly is returned when writing a line of a page currently marked
// read-only.
var ErrReadOnly = errors.New("mee: write to read-only page")

// counterSet is the split counter state of one writable page: a 64-bit
// major counter plus one 6-bit minor counter per line.
type counterSet struct {
	major  uint64
	minors [LinesPerPage]uint8
}

// pageState is the DRAM-side state of one protected page: ciphertext
// lines, their MACs, and the in-memory copy of the page's counters. An
// adversary with physical access can rewrite any of it — that is what the
// tamper/replay methods simulate.
//
// Ciphertext and MACs live in dense per-page arrays (one contiguous 4 KB
// ciphertext image plus a presence bitmap) rather than per-line maps:
// page-granular operations touch all 64 lines, so the map probes were
// pure overhead on the bulk path.
type pageState struct {
	readonly bool
	ctr      counterSet
	present  [LinesPerPage]bool     // line written at least once
	ct       [PageSize]byte         // dense ciphertext image
	macs     [LinesPerPage][32]byte // MAC over (ciphertext, counter, address)
}

// lineCT returns the ciphertext of one line of the dense image.
func (ps *pageState) lineCT(line int) []byte {
	return ps.ct[line*LineSize : (line+1)*LineSize]
}

// Engine is the functional encrypted memory. It stores only ciphertext;
// plaintext exists solely in the (simulated) processor.
//
// Integrity follows the Bonsai Merkle Tree argument: MACs bind data to
// counters, and counters are authenticated up to an on-chip root. The
// engine maintains that chain as a per-page counter digest held in the
// verified counter cache (trusted, on-chip in real MEEs) plus two root
// accumulators — one per tree of Figure 7 — updated incrementally on every
// legitimate counter change. Replaying DRAM-side state rolls back the
// counters but cannot touch the verified digests, so reads detect it. The
// log-depth traffic of a real 8-ary BMT walk is charged by TrafficModel.
//
// Engine is safe for concurrent use: one mutex serializes all page-state
// and root-accumulator updates, so concurrent TEE heaps sharing one MEE
// cannot tear a counter/MAC/root triple.
type Engine struct {
	mu     sync.Mutex
	aesKey [16]byte
	block  cipher.Block // AES key schedule, expanded once at construction
	macKey [32]byte
	pages  map[uint64]*pageState // DRAM-side state
	// trusted is the verified counter digest per page (on-chip perimeter).
	trusted map[uint64][32]byte
	roRoot  [32]byte // XOR-accumulated root over read-only page digests
	rwRoot  [32]byte // XOR-accumulated root over writable page digests
}

// NewEngine returns a functional engine with the given device secrets.
func NewEngine(aesKey [16]byte, macKey [32]byte) *Engine {
	block, err := aes.NewCipher(aesKey[:])
	if err != nil {
		panic(err) // 16-byte key cannot fail
	}
	return &Engine{
		aesKey:  aesKey,
		block:   block,
		macKey:  macKey,
		pages:   make(map[uint64]*pageState),
		trusted: make(map[uint64][32]byte),
	}
}

// pad derives the one-time pad for (page, line, counter) — split-counter
// encryption: AES(k, page ⧺ line ⧺ major ⧺ minor) (paper §4.4). The key
// schedule is expanded once in NewEngine — a real MEE holds it in hardware
// registers — so a page operation costs 4 AES block encryptions per line,
// not 4 key expansions.
func (e *Engine) pad(page uint64, line int, major uint64, minor uint8) [LineSize]byte {
	block := e.block
	var pad [LineSize]byte
	for i := 0; i < LineSize/16; i++ {
		var ctr [16]byte
		binary.LittleEndian.PutUint64(ctr[0:], page)
		binary.LittleEndian.PutUint16(ctr[8:], uint16(line))
		ctr[10] = minor
		ctr[11] = byte(i) // AES block index within the line
		binary.LittleEndian.PutUint32(ctr[12:], uint32(major)^uint32(major>>32))
		var out [16]byte
		block.Encrypt(out[:], ctr[:])
		copy(pad[i*16:], out[:])
	}
	return pad
}

// mac computes the Bonsai-style line MAC over ciphertext, counters, and
// address, keyed with the device MAC key.
func (e *Engine) mac(page uint64, line int, major uint64, minor uint8, ct []byte) [32]byte {
	h := sha256.New()
	h.Write(e.macKey[:])
	var hdr [24]byte
	binary.LittleEndian.PutUint64(hdr[0:], page)
	binary.LittleEndian.PutUint32(hdr[8:], uint32(line))
	binary.LittleEndian.PutUint64(hdr[12:], major)
	hdr[20] = minor
	h.Write(hdr[:])
	h.Write(ct)
	var out [32]byte
	h.Sum(out[:0])
	return out
}

// digest hashes a page's protection state (mode + counters): the quantity
// the integrity tree authenticates.
func (e *Engine) digest(p uint64, ps *pageState) [32]byte {
	h := sha256.New()
	h.Write(e.macKey[:])
	var buf [17]byte
	binary.LittleEndian.PutUint64(buf[0:], p)
	binary.LittleEndian.PutUint64(buf[8:], ps.ctr.major)
	if ps.readonly {
		buf[16] = 1
	}
	h.Write(buf[:])
	if !ps.readonly {
		h.Write(ps.ctr.minors[:])
	}
	var out [32]byte
	h.Sum(out[:0])
	return out
}

func xorInto(dst *[32]byte, src [32]byte) {
	for i := range dst {
		dst[i] ^= src[i]
	}
}

// commitCounters refreshes the verified digest and root accumulators after
// a legitimate counter change. wasRO tells which tree held the old digest.
func (e *Engine) commitCounters(p uint64, ps *pageState, old [32]byte, wasRO bool) {
	if wasRO {
		xorInto(&e.roRoot, old)
	} else {
		xorInto(&e.rwRoot, old)
	}
	d := e.digest(p, ps)
	e.trusted[p] = d
	if ps.readonly {
		xorInto(&e.roRoot, d)
	} else {
		xorInto(&e.rwRoot, d)
	}
}

// verifyCounters checks the DRAM-side counters of p against the verified
// digest — the tree walk that defeats replay.
func (e *Engine) verifyCounters(p uint64, ps *pageState) error {
	if e.digest(p, ps) != e.trusted[p] {
		return fmt.Errorf("%w: counter tree mismatch on page %d", ErrIntegrity, p)
	}
	return nil
}

// Roots returns the two tree root registers (read-only tree, writable
// tree) for inspection by tests and attestation flows.
func (e *Engine) Roots() (ro, rw [32]byte) {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.roRoot, e.rwRoot
}

func (e *Engine) page(p uint64) *pageState {
	ps, ok := e.pages[p]
	if !ok {
		ps = new(pageState)
		e.pages[p] = ps
		e.commitCounters(p, ps, [32]byte{}, false)
	}
	return ps
}

func checkLine(line int) error {
	if line < 0 || line >= LinesPerPage {
		return fmt.Errorf("mee: line %d out of page range", line)
	}
	return nil
}

// Write encrypts and stores one 64-byte line of page p. The minor counter
// is bumped first for temporal pad uniqueness; overflow triggers the page
// re-encryption path (major bump, minors reset), exactly the split-counter
// behaviour whose cost the hybrid scheme avoids for read-only pages.
func (e *Engine) Write(p uint64, line int, data []byte) error {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.write(p, line, data)
}

// write is the Write body, e.mu held.
func (e *Engine) write(p uint64, line int, data []byte) error {
	if err := checkLine(line); err != nil {
		return err
	}
	if len(data) != LineSize {
		return fmt.Errorf("mee: write of %d bytes, want %d", len(data), LineSize)
	}
	ps := e.page(p)
	if ps.readonly {
		return fmt.Errorf("%w: page %d", ErrReadOnly, p)
	}
	old := e.trusted[p]
	if ps.ctr.minors[line] >= MinorLimit-1 {
		if err := e.reencryptPage(p, ps); err != nil {
			return err
		}
		old = e.trusted[p]
	}
	ps.ctr.minors[line]++
	e.sealLine(p, ps, line, data)
	e.commitCounters(p, ps, old, false)
	return nil
}

// sealLine encrypts data under the line's current counters into the dense
// ciphertext image and refreshes its MAC.
func (e *Engine) sealLine(p uint64, ps *pageState, line int, data []byte) {
	minor := ps.ctr.minors[line]
	if ps.readonly {
		minor = 0
	}
	pad := e.pad(p, line, ps.ctr.major, minor)
	ct := ps.lineCT(line)
	for i := range ct {
		ct[i] = data[i] ^ pad[i]
	}
	ps.present[line] = true
	ps.macs[line] = e.mac(p, line, ps.ctr.major, minor, ct)
}

// reencryptPage handles minor-counter overflow: bump the major counter,
// reset the minors, and re-encrypt every resident line under the new
// counters.
func (e *Engine) reencryptPage(p uint64, ps *pageState) error {
	var plain [PageSize]byte
	for line := 0; line < LinesPerPage; line++ {
		if !ps.present[line] {
			continue
		}
		data, err := e.readLine(p, ps, line)
		if err != nil {
			return err
		}
		copy(plain[line*LineSize:], data)
	}
	old := e.trusted[p]
	wasRO := ps.readonly
	ps.ctr.major++
	ps.ctr.minors = [LinesPerPage]uint8{}
	for line := 0; line < LinesPerPage; line++ {
		if ps.present[line] {
			e.sealLine(p, ps, line, plain[line*LineSize:(line+1)*LineSize])
		}
	}
	e.commitCounters(p, ps, old, wasRO)
	return nil
}

// readLine decrypts and verifies one line's MAC (the caller verifies the
// counter tree once per operation).
func (e *Engine) readLine(p uint64, ps *pageState, line int) ([]byte, error) {
	out := make([]byte, LineSize)
	if err := e.readLineInto(p, ps, line, out); err != nil {
		return nil, err
	}
	return out, nil
}

// readLineInto is readLine decrypting into a caller-owned buffer, the
// allocation-free core ReadPage loops over.
func (e *Engine) readLineInto(p uint64, ps *pageState, line int, out []byte) error {
	if !ps.present[line] {
		return fmt.Errorf("mee: read of unwritten line %d of page %d", line, p)
	}
	ct := ps.lineCT(line)
	minor := ps.ctr.minors[line]
	if ps.readonly {
		minor = 0
	}
	want := e.mac(p, line, ps.ctr.major, minor, ct)
	if want != ps.macs[line] {
		return fmt.Errorf("%w: MAC mismatch on page %d line %d", ErrIntegrity, p, line)
	}
	pad := e.pad(p, line, ps.ctr.major, minor)
	for i := range out[:LineSize] {
		out[i] = ct[i] ^ pad[i]
	}
	return nil
}

// Read verifies and decrypts one line of page p: counter-tree check (which
// defeats replay of an old ciphertext/MAC/counter triple), then MAC check,
// then decryption.
func (e *Engine) Read(p uint64, line int) ([]byte, error) {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.read(p, line)
}

// read is the Read body, e.mu held.
func (e *Engine) read(p uint64, line int) ([]byte, error) {
	if err := checkLine(line); err != nil {
		return nil, err
	}
	ps, ok := e.pages[p]
	if !ok {
		return nil, fmt.Errorf("mee: read of unmapped page %d", p)
	}
	if err := e.verifyCounters(p, ps); err != nil {
		return nil, err
	}
	return e.readLine(p, ps, line)
}

// SetReadOnly transitions a page between writable and read-only. Following
// §4.4: writable→read-only copies the (incremented) major counter into the
// major-counter tree and drops the minors; read-only→writable seeds a
// split-counter entry with a bumped major and zero minors. Both directions
// re-encrypt resident lines under the new counter so later reads use the
// right pad.
func (e *Engine) SetReadOnly(p uint64, ro bool) error {
	e.mu.Lock()
	defer e.mu.Unlock()
	ps := e.page(p)
	if ps.readonly == ro {
		return nil
	}
	if err := e.verifyCounters(p, ps); err != nil {
		return err
	}
	var plain [PageSize]byte
	for line := 0; line < LinesPerPage; line++ {
		if !ps.present[line] {
			continue
		}
		data, err := e.readLine(p, ps, line)
		if err != nil {
			return err
		}
		copy(plain[line*LineSize:], data)
	}
	old := e.trusted[p]
	wasRO := ps.readonly
	ps.ctr.major++
	ps.ctr.minors = [LinesPerPage]uint8{}
	ps.readonly = ro
	for line := 0; line < LinesPerPage; line++ {
		if ps.present[line] {
			e.sealLine(p, ps, line, plain[line*LineSize:(line+1)*LineSize])
		}
	}
	e.commitCounters(p, ps, old, wasRO)
	return nil
}

// WritePage writes a whole 4 KB page (used when loading decrypted flash
// data into protected DRAM). The page must be writable.
//
// This is a true bulk operation: the engine mutex is taken once, every
// line's minor is bumped and its ciphertext/MAC refreshed, and the page's
// counter digest is committed to the verified tree once — not once per
// line, which made the per-line loop pay 64 SHA-256 page digests. When
// any line's minor counter is about to overflow, the page falls back to
// the per-line path so the re-encryption sequence stays exactly the
// 64-single-line-writes one (the equivalence test pins bulk == 64 x
// Write in both regimes).
func (e *Engine) WritePage(p uint64, data []byte) error {
	if len(data) != PageSize {
		return fmt.Errorf("mee: page write of %d bytes", len(data))
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	ps := e.page(p)
	if ps.readonly {
		return fmt.Errorf("%w: page %d", ErrReadOnly, p)
	}
	for line := 0; line < LinesPerPage; line++ {
		if ps.ctr.minors[line] >= MinorLimit-1 {
			// Overflow mid-page: replay the per-line sequence exactly.
			for l := 0; l < LinesPerPage; l++ {
				if err := e.write(p, l, data[l*LineSize:(l+1)*LineSize]); err != nil {
					return err
				}
			}
			return nil
		}
	}
	old := e.trusted[p]
	for line := 0; line < LinesPerPage; line++ {
		ps.ctr.minors[line]++
		e.sealLine(p, ps, line, data[line*LineSize:(line+1)*LineSize])
	}
	// One digest commit covers all 64 counter bumps: the intermediate
	// digests of the per-line sequence telescope out of the XOR roots.
	e.commitCounters(p, ps, old, false)
	return nil
}

// ReadPage reads a whole page; every line must verify. The counter tree
// is walked once for the page — the per-line loop re-verified the same
// unchanged counters 64 times — and the 64 MAC checks and decryptions
// write straight into the returned buffer.
func (e *Engine) ReadPage(p uint64) ([]byte, error) {
	e.mu.Lock()
	defer e.mu.Unlock()
	ps, ok := e.pages[p]
	if !ok {
		return nil, fmt.Errorf("mee: read of unmapped page %d", p)
	}
	if err := e.verifyCounters(p, ps); err != nil {
		return nil, err
	}
	out := make([]byte, PageSize)
	for line := 0; line < LinesPerPage; line++ {
		if err := e.readLineInto(p, ps, line, out[line*LineSize:(line+1)*LineSize]); err != nil {
			return nil, err
		}
	}
	return out, nil
}

// Major returns the major counter of page p (0 if untouched).
func (e *Engine) Major(p uint64) uint64 {
	e.mu.Lock()
	defer e.mu.Unlock()
	if ps, ok := e.pages[p]; ok {
		return ps.ctr.major
	}
	return 0
}

// IsReadOnly reports the protection state of page p.
func (e *Engine) IsReadOnly(p uint64) bool {
	e.mu.Lock()
	defer e.mu.Unlock()
	if ps, ok := e.pages[p]; ok {
		return ps.readonly
	}
	return false
}

// --- Adversary interface (tests and attack demos) ---

// TamperCiphertext flips a bit of the stored ciphertext, modelling a
// physical write to DRAM. A subsequent Read must fail.
func (e *Engine) TamperCiphertext(p uint64, line int) error {
	e.mu.Lock()
	defer e.mu.Unlock()
	ps, ok := e.pages[p]
	if !ok || line < 0 || line >= LinesPerPage || !ps.present[line] {
		return fmt.Errorf("mee: nothing to tamper at page %d line %d", p, line)
	}
	ps.ct[line*LineSize] ^= 0x80
	return nil
}

// TamperCounter corrupts the DRAM-side counter copy of a page.
func (e *Engine) TamperCounter(p uint64) error {
	e.mu.Lock()
	defer e.mu.Unlock()
	ps, ok := e.pages[p]
	if !ok {
		return fmt.Errorf("mee: nothing to tamper at page %d", p)
	}
	ps.ctr.major ^= 1
	return nil
}

// Snapshot captures the full DRAM-side state of a line (ciphertext, MAC,
// counters) for a later replay.
type Snapshot struct {
	page  uint64
	line  int
	ct    []byte
	mac   [32]byte
	major uint64
	minor uint8
}

// Snapshot records the current DRAM-side state of a line.
func (e *Engine) Snapshot(p uint64, line int) (Snapshot, error) {
	e.mu.Lock()
	defer e.mu.Unlock()
	ps, ok := e.pages[p]
	if !ok || line < 0 || line >= LinesPerPage || !ps.present[line] {
		return Snapshot{}, fmt.Errorf("mee: nothing to snapshot at page %d line %d", p, line)
	}
	return Snapshot{
		page:  p,
		line:  line,
		ct:    append([]byte(nil), ps.lineCT(line)...),
		mac:   ps.macs[line],
		major: ps.ctr.major,
		minor: ps.ctr.minors[line],
	}, nil
}

// Replay rolls the DRAM-side state of a line back to a snapshot —
// ciphertext, MAC, and the in-memory counter copy together, which defeats
// MAC-only schemes. The verified counter tree (rooted on-chip) must catch
// it.
func (e *Engine) Replay(s Snapshot) error {
	e.mu.Lock()
	defer e.mu.Unlock()
	ps, ok := e.pages[s.page]
	if !ok {
		return fmt.Errorf("mee: replay of unmapped page %d", s.page)
	}
	copy(ps.lineCT(s.line), s.ct)
	ps.present[s.line] = true
	ps.macs[s.line] = s.mac
	ps.ctr.major = s.major
	ps.ctr.minors[s.line] = s.minor
	return nil
}
