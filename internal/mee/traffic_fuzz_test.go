package mee

import (
	"encoding/binary"
	"testing"
)

// FuzzTrafficBatchedVsReference is the trivium.Reference pattern applied
// to the traffic model: an arbitrary op stream — permission flips, strided
// AccessSeq scans, AccessMany batches, single Accesses, mixed RO/RW pages
// — is replayed against both the batched TrafficModel and the per-line
// TrafficReference oracle across the mode x sample-weight x cache-size
// matrix, asserting identical TrafficStats, counter-cache statistics, and
// latency sums after every op. The 512-byte cache selection forces the
// degenerate-geometry fallback of the group fast path. Seeds live in
// testdata/fuzz as the committed regression corpus.
func FuzzTrafficBatchedVsReference(f *testing.F) {
	// Mode x weight matrix over a scan-then-heap stream (the chargeMEE
	// shape), plus a degenerate-cache seed and a permission-flip seed.
	scanHeap := []byte{}
	scanHeap = appendOp(scanHeap, 0, 1024|1<<40)          // set page 1024 writable
	scanHeap = appendOp(scanHeap, 1, 0)                   // RO seq scan
	scanHeap = appendOp(scanHeap, 1, 1024*PageSize|3<<32) // writable seq scan
	scanHeap = appendOp(scanHeap, 2, 0x9E3779B97F4A7C15)  // heap batch
	scanHeap = appendOp(scanHeap, 3, 1024*PageSize+7)     // single access
	for _, mode := range []uint8{0, 1, 2} {
		for _, w := range []uint8{0, 7, 255} {
			f.Add(mode, w, uint8(0), scanHeap)
		}
	}
	f.Add(uint8(1), uint8(0), uint8(2), scanHeap) // 512 B cache: fallback path
	flip := appendOp(appendOp(appendOp([]byte{}, 1, 0), 0, 0|1<<40), 1, 1<<33)
	f.Add(uint8(2), uint8(3), uint8(1), flip)

	f.Fuzz(func(t *testing.T, modeB, weightB, cacheB uint8, ops []byte) {
		caches := []uint64{128 << 10, 4 << 10, 512}
		cfg := TrafficConfig{
			Mode:              Mode(modeB % 3),
			SampleWeight:      int(weightB%16) + 1,
			CounterCacheBytes: caches[int(cacheB)%len(caches)],
		}
		p := newPair(cfg)
		for len(ops) >= 9 {
			kind := ops[0]
			u := binary.LittleEndian.Uint64(ops[1:9])
			ops = ops[9:]
			switch kind % 4 {
			case 0: // permission flip on a page near the op's address
				p.setWritable(u%(1<<22), u>>40&1 == 1)
			case 1: // strided scan; strides cross MAC lines and pages
				base := u % (1 << 34)
				n := int64(u>>34%200) + 1
				strides := []uint64{LineSize, 8 * LineSize, PageSize, 3 * LineSize / 2, 1}
				p.seq(base, n, u>>60&1 == 1, strides[int(u>>44)%len(strides)])
			case 2: // scattered batch seeded from the op word
				x := u | 1
				addrs := make([]uint64, int(u>>58%31)+1)
				for i := range addrs {
					x ^= x >> 12
					x ^= x << 25
					x ^= x >> 27
					addrs[i] = (x * 0x2545F4914F6CDD1D) % (1 << 34)
				}
				p.many(addrs, u>>59&1 == 1)
			case 3: // single access
				p.access(u%(1<<34), u>>60&1 == 1)
			}
			p.check(t, "fuzz op")
		}
	})
}

// appendOp encodes one fuzz op record: a kind byte plus a 64-bit operand.
func appendOp(b []byte, kind uint8, operand uint64) []byte {
	b = append(b, kind)
	return binary.LittleEndian.AppendUint64(b, operand)
}
