package mee

import (
	"bytes"
	"errors"
	"testing"
	"testing/quick"

	"iceclave/internal/sim"
)

func testEngine() *Engine {
	var aesKey [16]byte
	var macKey [32]byte
	copy(aesKey[:], "0123456789abcdef")
	copy(macKey[:], "mac-key-mac-key-mac-key-mac-key-")
	return NewEngine(aesKey, macKey)
}

func line(fill byte) []byte { return bytes.Repeat([]byte{fill}, LineSize) }

func TestWriteReadRoundTrip(t *testing.T) {
	e := testEngine()
	if err := e.Write(3, 5, line(0xAB)); err != nil {
		t.Fatal(err)
	}
	got, err := e.Read(3, 5)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, line(0xAB)) {
		t.Fatal("round trip failed")
	}
}

func TestCiphertextDiffersFromPlaintext(t *testing.T) {
	e := testEngine()
	e.Write(0, 0, line(0x00))
	ct := e.pages[0].lineCT(0)
	if bytes.Equal(ct, line(0x00)) {
		t.Fatal("memory stores plaintext")
	}
	// Zero plaintext means the ciphertext IS the pad; it must not be zero.
	if bytes.Equal(ct, line(0)) {
		t.Fatal("pad is zero")
	}
}

func TestSameDataDifferentLinesDifferentCiphertext(t *testing.T) {
	e := testEngine()
	e.Write(0, 0, line(0x77))
	e.Write(0, 1, line(0x77))
	e.Write(1, 0, line(0x77))
	ct00 := e.pages[0].lineCT(0)
	ct01 := e.pages[0].lineCT(1)
	ct10 := e.pages[1].lineCT(0)
	if bytes.Equal(ct00, ct01) || bytes.Equal(ct00, ct10) {
		t.Fatal("spatially distinct lines share ciphertext (pad reuse)")
	}
}

func TestRewriteChangesCiphertext(t *testing.T) {
	e := testEngine()
	e.Write(0, 0, line(0x42))
	ct1 := append([]byte(nil), e.pages[0].lineCT(0)...)
	e.Write(0, 0, line(0x42)) // same plaintext again
	ct2 := e.pages[0].lineCT(0)
	if bytes.Equal(ct1, ct2) {
		t.Fatal("temporal pad reuse: rewrite of same data produced same ciphertext")
	}
}

func TestTamperDetected(t *testing.T) {
	e := testEngine()
	e.Write(2, 7, line(0x10))
	if err := e.TamperCiphertext(2, 7); err != nil {
		t.Fatal(err)
	}
	if _, err := e.Read(2, 7); !errors.Is(err, ErrIntegrity) {
		t.Fatalf("tampered read returned %v, want ErrIntegrity", err)
	}
}

func TestCounterTamperDetected(t *testing.T) {
	e := testEngine()
	e.Write(2, 0, line(0x10))
	if err := e.TamperCounter(2); err != nil {
		t.Fatal(err)
	}
	if _, err := e.Read(2, 0); !errors.Is(err, ErrIntegrity) {
		t.Fatalf("counter-tampered read returned %v, want ErrIntegrity", err)
	}
}

func TestReplayDetected(t *testing.T) {
	e := testEngine()
	e.Write(0, 0, line(0x01))
	snap, err := e.Snapshot(0, 0)
	if err != nil {
		t.Fatal(err)
	}
	e.Write(0, 0, line(0x02)) // legitimate update
	// Adversary rolls ciphertext, MAC, AND the in-memory counters back.
	if err := e.Replay(snap); err != nil {
		t.Fatal(err)
	}
	if _, err := e.Read(0, 0); !errors.Is(err, ErrIntegrity) {
		t.Fatalf("replayed read returned %v, want ErrIntegrity", err)
	}
}

func TestMinorOverflowReencryptsPage(t *testing.T) {
	e := testEngine()
	e.Write(0, 0, line(0x01))
	e.Write(0, 1, line(0x02))
	majorBefore := e.Major(0)
	// Hammer line 0 past the 6-bit minor limit.
	for i := 0; i < MinorLimit+4; i++ {
		if err := e.Write(0, 0, line(byte(i))); err != nil {
			t.Fatal(err)
		}
	}
	if e.Major(0) <= majorBefore {
		t.Fatal("major counter did not advance on minor overflow")
	}
	// Untouched line 1 must still decrypt (it was re-encrypted).
	got, err := e.Read(0, 1)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, line(0x02)) {
		t.Fatal("sibling line corrupted by re-encryption")
	}
	got, err = e.Read(0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, line(byte(MinorLimit+3))) {
		t.Fatal("hammered line lost its last value")
	}
}

func TestReadOnlyTransitions(t *testing.T) {
	e := testEngine()
	e.Write(5, 0, line(0x33))
	if err := e.SetReadOnly(5, true); err != nil {
		t.Fatal(err)
	}
	if !e.IsReadOnly(5) {
		t.Fatal("page not read-only")
	}
	// Reads still work, writes fail.
	got, err := e.Read(5, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, line(0x33)) {
		t.Fatal("read-only page lost data across transition")
	}
	if err := e.Write(5, 0, line(0x44)); !errors.Is(err, ErrReadOnly) {
		t.Fatalf("write to read-only page returned %v", err)
	}
	// Back to writable: major bumped, writes work again.
	if err := e.SetReadOnly(5, false); err != nil {
		t.Fatal(err)
	}
	if err := e.Write(5, 0, line(0x44)); err != nil {
		t.Fatal(err)
	}
	got, _ = e.Read(5, 0)
	if !bytes.Equal(got, line(0x44)) {
		t.Fatal("write after RW transition lost")
	}
}

func TestRootsTrackTreeMembership(t *testing.T) {
	e := testEngine()
	ro0, rw0 := e.Roots()
	e.Write(1, 0, line(0x01))
	_, rw1 := e.Roots()
	if rw1 == rw0 {
		t.Fatal("writable-tree root unchanged by write")
	}
	e.SetReadOnly(1, true)
	ro2, _ := e.Roots()
	if ro2 == ro0 {
		t.Fatal("read-only-tree root unchanged by RO transition")
	}
}

func TestPageRoundTrip(t *testing.T) {
	e := testEngine()
	data := make([]byte, PageSize)
	for i := range data {
		data[i] = byte(i * 7)
	}
	if err := e.WritePage(9, data); err != nil {
		t.Fatal(err)
	}
	got, err := e.ReadPage(9)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("page round trip failed")
	}
}

func TestValidationErrors(t *testing.T) {
	e := testEngine()
	if err := e.Write(0, LinesPerPage, line(0)); err == nil {
		t.Fatal("out-of-range line accepted")
	}
	if err := e.Write(0, 0, []byte("short")); err == nil {
		t.Fatal("short line accepted")
	}
	if _, err := e.Read(99, 0); err == nil {
		t.Fatal("read of unmapped page accepted")
	}
	if err := e.WritePage(0, []byte("short")); err == nil {
		t.Fatal("short page accepted")
	}
}

func TestEngineRoundTripProperty(t *testing.T) {
	// Property: any interleaving of writes across pages/lines reads back
	// the last value written.
	f := func(seed uint64) bool {
		e := testEngine()
		rng := sim.NewRNG(seed)
		type key struct {
			page uint64
			line int
		}
		shadow := make(map[key]byte)
		for i := 0; i < 300; i++ {
			k := key{uint64(rng.Intn(4)), rng.Intn(LinesPerPage)}
			v := byte(rng.Uint32())
			if err := e.Write(k.page, k.line, line(v)); err != nil {
				return false
			}
			shadow[k] = v
		}
		for k, v := range shadow {
			got, err := e.Read(k.page, k.line)
			if err != nil || !bytes.Equal(got, line(v)) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 10}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkEngineWrite(b *testing.B) {
	e := testEngine()
	data := line(0x5A)
	b.SetBytes(LineSize)
	for i := 0; i < b.N; i++ {
		e.Write(uint64(i%64), i%LinesPerPage, data)
	}
}

func BenchmarkEngineRead(b *testing.B) {
	e := testEngine()
	data := line(0x5A)
	for p := uint64(0); p < 64; p++ {
		for l := 0; l < LinesPerPage; l++ {
			e.Write(p, l, data)
		}
	}
	b.SetBytes(LineSize)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := e.Read(uint64(i%64), i%LinesPerPage); err != nil {
			b.Fatal(err)
		}
	}
}
