package mee

import (
	"testing"

	"iceclave/internal/sim"
)

// pair is a TrafficModel and its TrafficReference oracle driven in
// lockstep; every helper asserts full observable-state parity: traffic
// stats, counter-cache stats, and accumulated latency.
type pair struct {
	m      *TrafficModel
	r      *TrafficReference
	mExtra sim.Duration
	rExtra sim.Duration
}

func newPair(cfg TrafficConfig) *pair {
	return &pair{m: NewTrafficModel(cfg), r: NewTrafficReference(cfg)}
}

func (p *pair) setWritable(page uint64, v bool) {
	p.m.SetPageWritable(page, v)
	p.r.SetPageWritable(page, v)
}

func (p *pair) access(addr uint64, write bool) {
	p.mExtra += p.m.Access(addr, write)
	p.rExtra += p.r.Access(addr, write)
}

// seq drives the batched AccessSeq against the oracle's per-line loop.
func (p *pair) seq(base uint64, n int64, write bool, stride uint64) {
	p.mExtra += p.m.AccessSeq(base, n, write, stride)
	s := stride
	if s == 0 {
		s = LineSize
	}
	for j := int64(0); j < n; j++ {
		p.rExtra += p.r.Access(base+uint64(j)*s, write)
	}
}

// many drives the batched AccessMany against the oracle's per-line loop.
func (p *pair) many(addrs []uint64, write bool) {
	p.mExtra += p.m.AccessMany(addrs, write)
	for _, a := range addrs {
		p.rExtra += p.r.Access(a, write)
	}
}

func (p *pair) check(t *testing.T, ctx string) {
	t.Helper()
	if ms, rs := p.m.Stats(), p.r.Stats(); ms != rs {
		t.Fatalf("%s: traffic stats diverge:\nbatched: %+v\noracle:  %+v", ctx, ms, rs)
	}
	if mc, rc := p.m.CounterCacheStats(), p.r.CounterCacheStats(); mc != rc {
		t.Fatalf("%s: counter-cache stats diverge:\nbatched: %+v\noracle:  %+v", ctx, mc, rc)
	}
	if p.mExtra != p.rExtra {
		t.Fatalf("%s: latency sums diverge: batched %v, oracle %v", ctx, p.mExtra, p.rExtra)
	}
}

// allConfigs is the mode x sample-weight matrix every differential test
// runs under.
func allConfigs() []TrafficConfig {
	var cfgs []TrafficConfig
	for _, mode := range []Mode{ModeNone, ModeSplit64, ModeHybrid} {
		for _, w := range []int{1, 8} {
			cfgs = append(cfgs, TrafficConfig{Mode: mode, SampleWeight: w})
		}
	}
	return cfgs
}

// TestSeqMatchesPerLine pins the tentpole contract on the streaming path:
// AccessSeq over read-only and writable regions, with the suite's sampled
// stride and with page-crossing runs, is bit-identical to the per-line
// loop in every mode and sample weight.
func TestSeqMatchesPerLine(t *testing.T) {
	for _, cfg := range allConfigs() {
		t.Run(cfg.Mode.String(), func(t *testing.T) {
			p := newPair(cfg)
			// Writable intermediate region, pages 1024..1087.
			for pg := uint64(1024); pg < 1088; pg++ {
				p.setWritable(pg, true)
			}
			// Read-only input scan: 16 pages, line stride.
			p.seq(0, 16*LinesPerPage, false, LineSize)
			p.check(t, "ro scan")
			// Sampled scan (the chargeMEE shape): stride 8 lines.
			p.seq(64*PageSize, 64, false, 8*LineSize)
			p.check(t, "sampled ro scan")
			// Writable-region scan: reads then writes (writes advance
			// minors and, over repeats, overflow into re-encryption).
			for rep := 0; rep < 12; rep++ {
				p.seq(1024*PageSize, 8*LinesPerPage, true, LineSize)
			}
			p.check(t, "writable write scan")
			p.seq(1024*PageSize, 8*LinesPerPage, false, LineSize)
			p.check(t, "writable read scan")
			// Unaligned base, odd stride, crossing pages and MAC lines.
			p.seq(1000*PageSize+40, 300, true, 3*LineSize/2)
			p.check(t, "unaligned odd stride")
			// Stride wider than a page: every access its own group.
			p.seq(0, 32, false, PageSize+LineSize)
			p.check(t, "page stride")
		})
	}
}

// TestManyMatchesPerLine pins AccessMany on skewed heap-like batches.
func TestManyMatchesPerLine(t *testing.T) {
	for _, cfg := range allConfigs() {
		t.Run(cfg.Mode.String(), func(t *testing.T) {
			p := newPair(cfg)
			const heapBase = uint64(1) << 22
			const heapPages = 64
			for pg := uint64(0); pg < heapPages; pg++ {
				p.setWritable(heapBase+pg, true)
			}
			rng := sim.NewRNG(7)
			addrs := make([]uint64, 256)
			for round := 0; round < 8; round++ {
				for i := range addrs {
					page := heapBase + uint64(rng.Zipf(heapPages, 0.85, 0.05))
					addrs[i] = page*PageSize + uint64(rng.Intn(LinesPerPage))*LineSize
				}
				p.many(addrs[:128], false)
				p.many(addrs[128:], true)
			}
			p.check(t, "skewed heap")
		})
	}
}

// TestBatchBoundariesInvisible pins the documented contract directly: the
// same access stream sliced three ways — per-line, one big AccessSeq, and
// ragged AccessSeq/AccessMany pieces — lands on identical observable
// state.
func TestBatchBoundariesInvisible(t *testing.T) {
	cfg := TrafficConfig{Mode: ModeHybrid, SampleWeight: 4}
	const n = 6 * LinesPerPage
	build := func() *TrafficModel {
		m := NewTrafficModel(cfg)
		m.SetPageWritable(2, true)
		m.SetPageWritable(3, true)
		return m
	}
	perLine := build()
	var perExtra sim.Duration
	for j := int64(0); j < n; j++ {
		perExtra += perLine.Access(uint64(j)*LineSize, true)
	}
	oneSeq := build()
	seqExtra := oneSeq.AccessSeq(0, n, true, LineSize)
	ragged := build()
	var ragExtra sim.Duration
	ragExtra += ragged.AccessSeq(0, 37, true, LineSize)
	addrs := make([]uint64, 0, 64)
	for j := int64(37); j < 90; j++ {
		addrs = append(addrs, uint64(j)*LineSize)
	}
	ragExtra += ragged.AccessMany(addrs, true)
	ragExtra += ragged.AccessSeq(90*LineSize, n-90, true, LineSize)

	for _, other := range []struct {
		name  string
		m     *TrafficModel
		extra sim.Duration
	}{{"one-seq", oneSeq, seqExtra}, {"ragged", ragged, ragExtra}} {
		if perLine.Stats() != other.m.Stats() {
			t.Fatalf("%s: stats diverge from per-line:\n%+v\n%+v",
				other.name, perLine.Stats(), other.m.Stats())
		}
		if perLine.CounterCacheStats() != other.m.CounterCacheStats() {
			t.Fatalf("%s: cache stats diverge from per-line", other.name)
		}
		if perExtra != other.extra {
			t.Fatalf("%s: latency diverges: %v vs %v", other.name, perExtra, other.extra)
		}
	}
}

// TestSeqFallbackOnDegenerateCache drives AccessSeq on the smallest legal
// counter cache (one 8-way set), where a single write's metadata touches
// can exceed the set and evict each other — the group fast path must
// detect the self-eviction and fall back to the per-line loop, staying
// bit-identical to the oracle.
func TestSeqFallbackOnDegenerateCache(t *testing.T) {
	cfg := TrafficConfig{Mode: ModeSplit64, CounterCacheBytes: 512, SampleWeight: 1}
	p := newPair(cfg)
	// Large page index gives the deepest tree path (most steady lines).
	const base = uint64(1<<30) * PageSize
	p.seq(base, 4*LinesPerPage, true, LineSize)
	p.check(t, "degenerate write scan")
	p.seq(base, 4*LinesPerPage, false, LineSize)
	p.check(t, "degenerate read scan")
}

// TestSeqEdgeCases pins the trivial boundaries: empty runs, zero stride
// defaulting, and ModeNone bulk accounting.
func TestSeqEdgeCases(t *testing.T) {
	m := NewTrafficModel(TrafficConfig{Mode: ModeHybrid})
	if extra := m.AccessSeq(0, 0, false, LineSize); extra != 0 {
		t.Fatal("empty AccessSeq charged latency")
	}
	if extra := m.AccessMany(nil, true); extra != 0 {
		t.Fatal("empty AccessMany charged latency")
	}
	if m.Stats().DataAccesses() != 0 {
		t.Fatal("empty bulk calls counted accesses")
	}
	p := newPair(TrafficConfig{Mode: ModeHybrid, SampleWeight: 3})
	p.seq(5*PageSize, 10, false, 0) // zero stride = LineSize
	p.check(t, "zero stride")
	none := NewTrafficModel(TrafficConfig{Mode: ModeNone, SampleWeight: 5})
	none.AccessSeq(0, 100, false, LineSize)
	none.AccessSeq(0, 50, true, LineSize)
	if s := none.Stats(); s.DataReads != 500 || s.DataWrites != 250 {
		t.Fatalf("ModeNone bulk counts = %+v", s)
	}
}

// TestDynamicPermissionChangeBatched pins that SetPageWritable between
// batches lands on the same path the oracle takes — the group key (page
// writability) is resolved per call, never cached across batches.
func TestDynamicPermissionChangeBatched(t *testing.T) {
	p := newPair(TrafficConfig{Mode: ModeHybrid})
	p.seq(0, LinesPerPage, false, LineSize)
	p.setWritable(0, true)
	p.seq(0, LinesPerPage, true, LineSize)
	p.setWritable(0, false)
	p.seq(0, LinesPerPage, false, LineSize)
	p.check(t, "permission flip")
}
