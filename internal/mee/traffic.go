package mee

import (
	"iceclave/internal/cache"
	"iceclave/internal/sim"
)

// Mode selects the DRAM protection scheme for the traffic model, matching
// the three bars of Figure 8.
type Mode int

// Protection modes.
const (
	// ModeNone disables memory encryption and verification (the
	// "Non-Encryption" baseline, also what plain ISC runs).
	ModeNone Mode = iota
	// ModeSplit64 applies the state-of-the-art split-counter scheme
	// (SC-64) to every page.
	ModeSplit64
	// ModeHybrid is IceClave's scheme: major-only counters for read-only
	// pages, split counters for writable pages (paper §4.4).
	ModeHybrid
)

// String names the mode as the paper does.
func (m Mode) String() string {
	switch m {
	case ModeNone:
		return "Non-Encryption"
	case ModeSplit64:
		return "SC-64"
	default:
		return "IceClave"
	}
}

// Metadata address-space bases. Counter blocks, line MACs, and tree nodes
// live in disjoint regions of a virtual metadata space so they contend for
// the counter cache realistically.
const (
	ctrBase  = uint64(1) << 40
	macBase  = uint64(1) << 41
	treeBase = uint64(1) << 42
)

// roPagesPerCounterLine is the Figure 7(a) packing: a 64-byte counter line
// holds eight 64-bit major counters, each covering one read-only 4 KB page.
const roPagesPerCounterLine = 8

// macsPerLine is the packing of 8-byte line MACs into a 64-byte line.
const macsPerLine = 8

// treeFanout is the arity of the Bonsai Merkle Tree over counter lines.
const treeFanout = 8

// TrafficConfig parameterizes the traffic model.
type TrafficConfig struct {
	Mode              Mode
	CounterCacheBytes uint64       // default 128 KB (paper §5)
	DRAMLatency       sim.Duration // cost charged per extra metadata access
	EncryptLatency    sim.Duration // pipeline latency per protected write (Table 5: 102.6 ns)
	VerifyLatency     sim.Duration // pipeline latency per protected read (Table 5: 151.2 ns)
	// SampleWeight declares that each Access call stands for this many
	// real accesses (trace sampling). Data counts and minor-counter
	// advancement scale by it; metadata miss events do not, because a
	// sampled-but-sparser stream still misses each metadata line once.
	SampleWeight int
}

// DefaultTrafficConfig returns the paper's parameters for the given mode.
func DefaultTrafficConfig(mode Mode) TrafficConfig {
	return TrafficConfig{
		Mode:              mode,
		CounterCacheBytes: 128 << 10,
		DRAMLatency:       30 * sim.Nanosecond,
		EncryptLatency:    103 * sim.Nanosecond, // Table 5: 102.6 ns, rounded to the ns tick
		VerifyLatency:     151 * sim.Nanosecond, // Table 5: 151.2 ns
	}
}

// TrafficStats separates regular DRAM traffic from the extra accesses
// caused by encryption counters and by integrity metadata — the two
// columns of Table 6.
type TrafficStats struct {
	DataReads  int64
	DataWrites int64

	EncExtraReads  int64 // counter-block fetches
	EncExtraWrites int64 // counter writebacks + re-encryption traffic
	VerExtraReads  int64 // MAC and tree-node fetches
	VerExtraWrites int64 // MAC and tree-node writebacks

	Reencryptions int64 // minor-counter overflow events
}

// DataAccesses returns the regular traffic volume.
func (s TrafficStats) DataAccesses() int64 { return s.DataReads + s.DataWrites }

// EncryptionOverhead returns extra encryption traffic as a fraction of
// regular traffic (Table 6 "Encryption" column).
func (s TrafficStats) EncryptionOverhead() float64 {
	if s.DataAccesses() == 0 {
		return 0
	}
	return float64(s.EncExtraReads+s.EncExtraWrites) / float64(s.DataAccesses())
}

// VerificationOverhead returns extra integrity traffic as a fraction of
// regular traffic (Table 6 "Integrity Verification" column).
func (s TrafficStats) VerificationOverhead() float64 {
	if s.DataAccesses() == 0 {
		return 0
	}
	return float64(s.VerExtraReads+s.VerExtraWrites) / float64(s.DataAccesses())
}

// TrafficModel is the statistical counter-cache simulation driven by the
// timing experiments. Feed it the stream of DRAM accesses an in-storage
// program makes; it simulates the 128 KB counter cache over counter
// blocks, line MACs, and tree nodes, and reports the extra traffic and
// latency the protection scheme costs.
type TrafficModel struct {
	cfg      TrafficConfig
	meta     *cache.Cache     // shared metadata cache (counters, MACs, tree nodes)
	writable map[uint64]bool  // page index -> writable (default read-only)
	minors   map[uint64]uint8 // data line index -> write count within major epoch
	stats    TrafficStats
}

// NewTrafficModel builds a model from cfg, applying defaults for zero
// fields.
func NewTrafficModel(cfg TrafficConfig) *TrafficModel {
	def := DefaultTrafficConfig(cfg.Mode)
	if cfg.CounterCacheBytes == 0 {
		cfg.CounterCacheBytes = def.CounterCacheBytes
	}
	if cfg.DRAMLatency == 0 {
		cfg.DRAMLatency = def.DRAMLatency
	}
	if cfg.EncryptLatency == 0 {
		cfg.EncryptLatency = def.EncryptLatency
	}
	if cfg.VerifyLatency == 0 {
		cfg.VerifyLatency = def.VerifyLatency
	}
	if cfg.SampleWeight < 1 {
		cfg.SampleWeight = 1
	}
	return &TrafficModel{
		cfg:      cfg,
		meta:     cache.New("counter-cache", cfg.CounterCacheBytes, LineSize, 8),
		writable: make(map[uint64]bool),
		minors:   make(map[uint64]uint8),
	}
}

// Mode returns the protection scheme in effect.
func (t *TrafficModel) Mode() Mode { return t.cfg.Mode }

// Stats returns a copy of the traffic counters.
func (t *TrafficModel) Stats() TrafficStats { return t.stats }

// CounterCacheStats exposes the metadata cache's hit statistics.
func (t *TrafficModel) CounterCacheStats() cache.Stats { return t.meta.Stats() }

// SetPageWritable marks a page writable (true) or read-only (false). The
// paper's runtime marks input regions read-only and intermediate-data
// regions writable; transitions mid-run are allowed (§4.4 dynamic
// permission changes).
func (t *TrafficModel) SetPageWritable(page uint64, w bool) {
	if w {
		t.writable[page] = true
	} else {
		delete(t.writable, page)
	}
}

// pageWritable reports whether a page currently takes the split-counter
// path. Under SC-64 every page does.
func (t *TrafficModel) pageWritable(page uint64) bool {
	if t.cfg.Mode == ModeSplit64 {
		return true
	}
	return t.writable[page]
}

// touchMeta accesses one metadata line through the counter cache and
// charges the extra traffic to enc (true) or ver (false) accounting.
func (t *TrafficModel) touchMeta(addr uint64, write, enc bool) (extra sim.Duration) {
	hit, ev, evicted := t.meta.Access(addr, write)
	if !hit {
		if enc {
			t.stats.EncExtraReads++
		} else {
			t.stats.VerExtraReads++
		}
		extra += t.cfg.DRAMLatency
	}
	if evicted && ev.Dirty {
		// Dirty metadata writeback: attribute by the evicted line's space.
		if ev.Addr >= macBase {
			t.stats.VerExtraWrites++
		} else {
			t.stats.EncExtraWrites++
		}
		extra += t.cfg.DRAMLatency
	}
	return extra
}

// counterLine returns the metadata address of the counter block covering
// page under the current scheme.
func (t *TrafficModel) counterLine(page uint64) uint64 {
	if t.cfg.Mode == ModeHybrid && !t.pageWritable(page) {
		// Major-only: 8 read-only pages share one counter line.
		return ctrBase + page/roPagesPerCounterLine*LineSize
	}
	// Split counters: one 64-byte counter line per 4 KB page.
	return ctrBase + page*LineSize
}

// treeWalk touches the BMT path above a counter line, stopping early on a
// cache hit the way a real verifier stops at a verified ancestor.
func (t *TrafficModel) treeWalk(ctrAddr uint64, write bool) (extra sim.Duration) {
	idx := (ctrAddr - ctrBase) / LineSize
	for level := 0; idx > 0 && level < 8; level++ {
		idx /= treeFanout
		nodeAddr := treeBase + uint64(level)<<36 + idx*LineSize
		hit, ev, evicted := t.meta.Access(nodeAddr, write)
		if evicted && ev.Dirty {
			t.stats.VerExtraWrites++
			extra += t.cfg.DRAMLatency
		}
		if hit && !write {
			break // verified ancestor found
		}
		if !hit {
			t.stats.VerExtraReads++
			extra += t.cfg.DRAMLatency
		}
	}
	return extra
}

// Access records one 64-byte data access by the protected program and
// returns the extra latency the protection scheme adds to it. addr is the
// data address; write selects the encrypt (write-back) or verify (fill)
// path.
func (t *TrafficModel) Access(addr uint64, write bool) (extra sim.Duration) {
	w := uint8(t.cfg.SampleWeight)
	if write {
		t.stats.DataWrites += int64(w)
	} else {
		t.stats.DataReads += int64(w)
	}
	if t.cfg.Mode == ModeNone {
		return 0
	}
	page := addr / PageSize
	line := addr / LineSize
	wrPage := t.pageWritable(page)

	// Counter fetch (encryption metadata).
	ctrAddr := t.counterLine(page)
	extra += t.touchMeta(ctrAddr, write, true)

	// Integrity tree walk over the counter space.
	extra += t.treeWalk(ctrAddr, write)

	// Line MACs: writable pages carry one 8-byte MAC per line (packed 8
	// per metadata line). Read-only pages under the hybrid scheme fold
	// verification into the counter tree at page granularity (Figure 7a),
	// so they need no per-line MAC fetch.
	if wrPage {
		macAddr := macBase + line/macsPerLine*LineSize
		extra += t.touchMeta(macAddr, write, false)
	}

	// Minor-counter overflow on writes: the 6-bit counter wraps after 63
	// bumps, forcing a page re-encryption (read+write every line).
	if write && wrPage {
		m := int(t.minors[line]) + int(w)
		for m >= MinorLimit-1 {
			m -= MinorLimit - 1
			t.stats.Reencryptions++
			t.stats.EncExtraReads += LinesPerPage
			t.stats.EncExtraWrites += LinesPerPage
			extra += sim.Duration(2*LinesPerPage) * t.cfg.DRAMLatency
			// Reset the page's minors.
			base := page * LinesPerPage
			for i := uint64(0); i < LinesPerPage; i++ {
				delete(t.minors, base+i)
			}
		}
		t.minors[line] = uint8(m)
	}

	// Exposed latency of the crypto units: the AES pad generation and MAC
	// check pipeline under DRAM access latency and stay hidden on
	// metadata hits; only accesses that had to fetch metadata expose the
	// Table 5 per-operation latency.
	if extra > 0 {
		if write {
			extra += t.cfg.EncryptLatency
		} else {
			extra += t.cfg.VerifyLatency
		}
	}
	return extra
}

// Reset clears all model state and statistics.
func (t *TrafficModel) Reset() {
	t.meta = cache.New("counter-cache", t.cfg.CounterCacheBytes, LineSize, 8)
	t.writable = make(map[uint64]bool)
	t.minors = make(map[uint64]uint8)
	t.stats = TrafficStats{}
}
