package mee

import (
	"iceclave/internal/cache"
	"iceclave/internal/sim"
)

// Mode selects the DRAM protection scheme for the traffic model, matching
// the three bars of Figure 8.
type Mode int

// Protection modes.
const (
	// ModeNone disables memory encryption and verification (the
	// "Non-Encryption" baseline, also what plain ISC runs).
	ModeNone Mode = iota
	// ModeSplit64 applies the state-of-the-art split-counter scheme
	// (SC-64) to every page.
	ModeSplit64
	// ModeHybrid is IceClave's scheme: major-only counters for read-only
	// pages, split counters for writable pages (paper §4.4).
	ModeHybrid
)

// String names the mode as the paper does.
func (m Mode) String() string {
	switch m {
	case ModeNone:
		return "Non-Encryption"
	case ModeSplit64:
		return "SC-64"
	default:
		return "IceClave"
	}
}

// Metadata address-space bases. Counter blocks, line MACs, and tree nodes
// live in disjoint regions of a virtual metadata space so they contend for
// the counter cache realistically.
const (
	ctrBase  = uint64(1) << 40
	macBase  = uint64(1) << 41
	treeBase = uint64(1) << 42
)

// roPagesPerCounterLine is the Figure 7(a) packing: a 64-byte counter line
// holds eight 64-bit major counters, each covering one read-only 4 KB page.
const roPagesPerCounterLine = 8

// macsPerLine is the packing of 8-byte line MACs into a 64-byte line.
const macsPerLine = 8

// treeFanout is the arity of the Bonsai Merkle Tree over counter lines.
const treeFanout = 8

// TrafficConfig parameterizes the traffic model.
type TrafficConfig struct {
	Mode              Mode
	CounterCacheBytes uint64       // default 128 KB (paper §5)
	DRAMLatency       sim.Duration // cost charged per extra metadata access
	EncryptLatency    sim.Duration // pipeline latency per protected write (Table 5: 102.6 ns)
	VerifyLatency     sim.Duration // pipeline latency per protected read (Table 5: 151.2 ns)
	// SampleWeight declares that each Access call stands for this many
	// real accesses (trace sampling). Data counts and minor-counter
	// advancement scale by it; metadata miss events do not, because a
	// sampled-but-sparser stream still misses each metadata line once.
	SampleWeight int
}

// DefaultTrafficConfig returns the paper's parameters for the given mode.
func DefaultTrafficConfig(mode Mode) TrafficConfig {
	return TrafficConfig{
		Mode:              mode,
		CounterCacheBytes: 128 << 10,
		DRAMLatency:       30 * sim.Nanosecond,
		EncryptLatency:    103 * sim.Nanosecond, // Table 5: 102.6 ns, rounded to the ns tick
		VerifyLatency:     151 * sim.Nanosecond, // Table 5: 151.2 ns
	}
}

// withDefaults fills zero fields with the paper parameters for cfg.Mode.
func (cfg TrafficConfig) withDefaults() TrafficConfig {
	def := DefaultTrafficConfig(cfg.Mode)
	if cfg.CounterCacheBytes == 0 {
		cfg.CounterCacheBytes = def.CounterCacheBytes
	}
	if cfg.DRAMLatency == 0 {
		cfg.DRAMLatency = def.DRAMLatency
	}
	if cfg.EncryptLatency == 0 {
		cfg.EncryptLatency = def.EncryptLatency
	}
	if cfg.VerifyLatency == 0 {
		cfg.VerifyLatency = def.VerifyLatency
	}
	if cfg.SampleWeight < 1 {
		cfg.SampleWeight = 1
	}
	return cfg
}

// TrafficStats separates regular DRAM traffic from the extra accesses
// caused by encryption counters and by integrity metadata — the two
// columns of Table 6.
type TrafficStats struct {
	DataReads  int64
	DataWrites int64

	EncExtraReads  int64 // counter-block fetches
	EncExtraWrites int64 // counter writebacks + re-encryption traffic
	VerExtraReads  int64 // MAC and tree-node fetches
	VerExtraWrites int64 // MAC and tree-node writebacks

	Reencryptions int64 // minor-counter overflow events
}

// DataAccesses returns the regular traffic volume.
func (s TrafficStats) DataAccesses() int64 { return s.DataReads + s.DataWrites }

// EncryptionOverhead returns extra encryption traffic as a fraction of
// regular traffic (Table 6 "Encryption" column).
func (s TrafficStats) EncryptionOverhead() float64 {
	if s.DataAccesses() == 0 {
		return 0
	}
	return float64(s.EncExtraReads+s.EncExtraWrites) / float64(s.DataAccesses())
}

// VerificationOverhead returns extra integrity traffic as a fraction of
// regular traffic (Table 6 "Integrity Verification" column).
func (s TrafficStats) VerificationOverhead() float64 {
	if s.DataAccesses() == 0 {
		return 0
	}
	return float64(s.VerExtraReads+s.VerExtraWrites) / float64(s.DataAccesses())
}

// wrChunkPages is the page span of one writable-bitmap chunk: 1<<15 pages
// (128 MB of protected address space) per 4 KB chunk. The TEE heap and any
// one workload's input region each fit in one or two chunks, so the
// hot-path lookup is a memoized pointer chase, not a map probe.
const wrChunkPages = 1 << 15

type wrChunk [wrChunkPages / 64]uint64

// pageBitmap is the page-granular writability store: a sparse directory of
// dense bitmap chunks with a last-chunk memo. It replaces the
// map[uint64]bool of TrafficReference on the hot path.
type pageBitmap struct {
	chunks  map[uint64]*wrChunk
	lastIdx uint64
	last    *wrChunk // nil = chunk known absent (memoized negative)
	lastOk  bool
}

func (b *pageBitmap) init() {
	b.chunks = make(map[uint64]*wrChunk)
	b.lastOk = false
}

func (b *pageBitmap) lookup(page uint64) *wrChunk {
	ci := page / wrChunkPages
	if b.lastOk && ci == b.lastIdx {
		return b.last
	}
	c := b.chunks[ci]
	b.lastIdx, b.last, b.lastOk = ci, c, true
	return c
}

func (b *pageBitmap) get(page uint64) bool {
	c := b.lookup(page)
	if c == nil {
		return false
	}
	off := page % wrChunkPages
	return c[off/64]>>(off%64)&1 != 0
}

func (b *pageBitmap) set(page uint64, v bool) {
	c := b.lookup(page)
	if c == nil {
		if !v {
			return // clearing an absent page is a no-op
		}
		c = new(wrChunk)
		b.chunks[page/wrChunkPages] = c
		b.lastIdx, b.last, b.lastOk = page/wrChunkPages, c, true
	}
	off := page % wrChunkPages
	if v {
		c[off/64] |= 1 << (off % 64)
	} else {
		c[off/64] &^= 1 << (off % 64)
	}
}

// minorPage is the dense minor-counter store of one 4 KB page.
type minorPage [LinesPerPage]uint8

// minorStore maps pages to their minor-counter arrays with a last-page
// memo; a page re-encryption resets the whole array in one assignment
// instead of 64 map deletes.
type minorStore struct {
	pages   map[uint64]*minorPage
	lastIdx uint64
	last    *minorPage
}

func (m *minorStore) init() {
	m.pages = make(map[uint64]*minorPage)
	m.last = nil
}

// page returns page's minor array, creating it on first use.
func (m *minorStore) page(page uint64) *minorPage {
	if m.last != nil && m.lastIdx == page {
		return m.last
	}
	p := m.pages[page]
	if p == nil {
		p = new(minorPage)
		m.pages[page] = p
	}
	m.lastIdx, m.last = page, p
	return p
}

// TrafficModel is the statistical counter-cache simulation driven by the
// timing experiments. Feed it the stream of DRAM accesses an in-storage
// program makes; it simulates the 128 KB counter cache over counter
// blocks, line MACs, and tree nodes, and reports the extra traffic and
// latency the protection scheme costs.
//
// This is the batched production engine: page permissions live in a
// chunked bitmap, minor counters in dense per-page arrays, and the bulk
// entry points (AccessSeq for streaming scans, AccessMany for address
// batches) collapse the per-call overhead the per-line loop pays. Batch
// boundaries are invisible in the results: any way of slicing an access
// stream across Access/AccessSeq/AccessMany calls yields bit-identical
// TrafficStats, counter-cache statistics, and latency sums to the per-line
// TrafficReference oracle, pinned by the differential fuzz in this
// package.
type TrafficModel struct {
	cfg    TrafficConfig
	meta   *cache.Cache // shared metadata cache (counters, MACs, tree nodes)
	wr     pageBitmap   // page index -> writable (default read-only)
	minors minorStore   // page index -> per-line write counts within major epoch
	stats  TrafficStats
	steady [10]uint64 // scratch for the group fast path's metadata-line list
}

// NewTrafficModel builds a model from cfg, applying defaults for zero
// fields.
func NewTrafficModel(cfg TrafficConfig) *TrafficModel {
	cfg = cfg.withDefaults()
	t := &TrafficModel{
		cfg:  cfg,
		meta: cache.New("counter-cache", cfg.CounterCacheBytes, LineSize, 8),
	}
	t.wr.init()
	t.minors.init()
	return t
}

// Mode returns the protection scheme in effect.
func (t *TrafficModel) Mode() Mode { return t.cfg.Mode }

// Stats returns a copy of the traffic counters.
func (t *TrafficModel) Stats() TrafficStats { return t.stats }

// CounterCacheStats exposes the metadata cache's hit statistics.
func (t *TrafficModel) CounterCacheStats() cache.Stats { return t.meta.Stats() }

// SetPageWritable marks a page writable (true) or read-only (false). The
// paper's runtime marks input regions read-only and intermediate-data
// regions writable; transitions mid-run are allowed (§4.4 dynamic
// permission changes).
func (t *TrafficModel) SetPageWritable(page uint64, w bool) {
	t.wr.set(page, w)
}

// pageWritable reports whether a page currently takes the split-counter
// path. Under SC-64 every page does.
func (t *TrafficModel) pageWritable(page uint64) bool {
	if t.cfg.Mode == ModeSplit64 {
		return true
	}
	return t.wr.get(page)
}

// touchMeta accesses one metadata line through the counter cache and
// charges the extra traffic to enc (true) or ver (false) accounting.
func (t *TrafficModel) touchMeta(addr uint64, write, enc bool) (extra sim.Duration) {
	hit, ev, evicted := t.meta.Access(addr, write)
	if !hit {
		if enc {
			t.stats.EncExtraReads++
		} else {
			t.stats.VerExtraReads++
		}
		extra += t.cfg.DRAMLatency
	}
	if evicted && ev.Dirty {
		// Dirty metadata writeback: attribute by the evicted line's space.
		if ev.Addr >= macBase {
			t.stats.VerExtraWrites++
		} else {
			t.stats.EncExtraWrites++
		}
		extra += t.cfg.DRAMLatency
	}
	return extra
}

// counterLineFor returns the metadata address of the counter block
// covering page, given its already-resolved writability.
func (t *TrafficModel) counterLineFor(page uint64, wrPage bool) uint64 {
	if t.cfg.Mode == ModeHybrid && !wrPage {
		// Major-only: 8 read-only pages share one counter line.
		return ctrBase + page/roPagesPerCounterLine*LineSize
	}
	// Split counters: one 64-byte counter line per 4 KB page.
	return ctrBase + page*LineSize
}

// treePath appends the BMT node addresses above ctrAddr — the full
// write-path walk, innermost level first. It is the single source of the
// tree geometry for both treeWalk (which may stop early on reads) and
// accessGroup's steady-set builder. buf should have capacity 8 (the level
// cap) so the append never escapes to the heap.
func treePath(ctrAddr uint64, buf []uint64) []uint64 {
	idx := (ctrAddr - ctrBase) / LineSize
	for level := 0; idx > 0 && level < 8; level++ {
		idx /= treeFanout
		buf = append(buf, treeBase+uint64(level)<<36+idx*LineSize)
	}
	return buf
}

// treeWalk touches the BMT path above a counter line, stopping early on a
// cache hit the way a real verifier stops at a verified ancestor.
func (t *TrafficModel) treeWalk(ctrAddr uint64, write bool) (extra sim.Duration) {
	var nodes [8]uint64
	for _, nodeAddr := range treePath(ctrAddr, nodes[:0]) {
		hit, ev, evicted := t.meta.Access(nodeAddr, write)
		if evicted && ev.Dirty {
			t.stats.VerExtraWrites++
			extra += t.cfg.DRAMLatency
		}
		if hit && !write {
			break // verified ancestor found
		}
		if !hit {
			t.stats.VerExtraReads++
			extra += t.cfg.DRAMLatency
		}
	}
	return extra
}

// bumpMinor advances one line's minor counter by the sample weight and
// charges any re-encryption events (minor overflow: read+write every line
// of the page). The returned latency excludes the per-access crypto
// pipeline charge, which the caller adds once per access.
func (t *TrafficModel) bumpMinor(mp *minorPage, li uint64, w uint8) (extra sim.Duration) {
	m := int(mp[li]) + int(w)
	for m >= MinorLimit-1 {
		m -= MinorLimit - 1
		t.stats.Reencryptions++
		t.stats.EncExtraReads += LinesPerPage
		t.stats.EncExtraWrites += LinesPerPage
		extra += sim.Duration(2*LinesPerPage) * t.cfg.DRAMLatency
		*mp = minorPage{} // reset the page's minors
	}
	mp[li] = uint8(m)
	return extra
}

// Access records one 64-byte data access by the protected program and
// returns the extra latency the protection scheme adds to it. addr is the
// data address; write selects the encrypt (write-back) or verify (fill)
// path. Access is the single-probe form of the bulk APIs below.
func (t *TrafficModel) Access(addr uint64, write bool) sim.Duration {
	return t.accessOne(addr, write)
}

// accessOne is the full per-line path shared by Access, AccessMany, and
// the first probe of every AccessSeq group.
func (t *TrafficModel) accessOne(addr uint64, write bool) (extra sim.Duration) {
	w := uint8(t.cfg.SampleWeight)
	if write {
		t.stats.DataWrites += int64(w)
	} else {
		t.stats.DataReads += int64(w)
	}
	if t.cfg.Mode == ModeNone {
		return 0
	}
	page := addr / PageSize
	wrPage := t.pageWritable(page)

	// Counter fetch (encryption metadata).
	ctrAddr := t.counterLineFor(page, wrPage)
	extra += t.touchMeta(ctrAddr, write, true)

	// Integrity tree walk over the counter space.
	extra += t.treeWalk(ctrAddr, write)

	// Line MACs: writable pages carry one 8-byte MAC per line (packed 8
	// per metadata line). Read-only pages under the hybrid scheme fold
	// verification into the counter tree at page granularity (Figure 7a),
	// so they need no per-line MAC fetch.
	line := addr / LineSize
	if wrPage {
		macAddr := macBase + line/macsPerLine*LineSize
		extra += t.touchMeta(macAddr, write, false)
	}

	if write && wrPage {
		extra += t.bumpMinor(t.minors.page(page), line%LinesPerPage, w)
	}

	// Exposed latency of the crypto units: the AES pad generation and MAC
	// check pipeline under DRAM access latency and stay hidden on
	// metadata hits; only accesses that had to fetch metadata expose the
	// Table 5 per-operation latency.
	if extra > 0 {
		if write {
			extra += t.cfg.EncryptLatency
		} else {
			extra += t.cfg.VerifyLatency
		}
	}
	return extra
}

// AccessSeq records n data accesses at base, base+stride, base+2*stride,
// ... — the streaming-scan bulk entry point (an input-page scan is
// AccessSeq(pageAddr, lines, false, LineSize); a sampled scan passes the
// sampling stride). A zero stride defaults to LineSize. The result is
// bit-identical to n Access calls: consecutive accesses that share one
// steady metadata-line set (same page, and same packed MAC line when the
// page takes the split-counter path) are settled as one full probe plus
// bulk cache.AccessRun touches for the guaranteed hits.
func (t *TrafficModel) AccessSeq(base uint64, n int64, write bool, stride uint64) sim.Duration {
	if n <= 0 {
		return 0
	}
	if stride == 0 {
		stride = LineSize
	}
	if t.cfg.Mode == ModeNone {
		w := int64(uint8(t.cfg.SampleWeight))
		if write {
			t.stats.DataWrites += n * w
		} else {
			t.stats.DataReads += n * w
		}
		return 0
	}
	var extra sim.Duration
	addr := base
	for n > 0 {
		k := t.groupLen(addr, stride, n)
		extra += t.accessGroup(addr, write, stride, k)
		addr += uint64(k) * stride
		n -= k
	}
	return extra
}

// AccessMany records one data access per address in addrs — the bulk
// entry point for scattered (heap) traffic. Equivalent to one Access call
// per element, in order.
func (t *TrafficModel) AccessMany(addrs []uint64, write bool) sim.Duration {
	var extra sim.Duration
	for _, a := range addrs {
		extra += t.accessOne(a, write)
	}
	return extra
}

// groupLen returns how many accesses of the strided stream starting at
// addr share one steady metadata-line set: they stay within one page, and
// — when the page takes the split-counter path — within one packed MAC
// line (8 data lines).
func (t *TrafficModel) groupLen(addr, stride uint64, n int64) int64 {
	span := uint64(PageSize) - addr%PageSize
	if t.pageWritable(addr / PageSize) {
		const macSpan = macsPerLine * LineSize
		if s := uint64(macSpan) - addr%macSpan; s < span {
			span = s
		}
	}
	k := int64((span + stride - 1) / stride)
	if k < 1 {
		k = 1
	}
	if k > n {
		k = n
	}
	return k
}

// accessGroup replays k accesses sharing one steady metadata-line set.
// The first access runs the full per-line path. Every steady line is then
// resident (the first access just touched them, and hits never evict), so
// accesses 2..k are pure metadata hits: they are settled with one bulk
// AccessRun per steady line — in per-access touch order, so relative LRU
// order matches the interleaved per-line loop — plus the per-line
// minor-counter work for writes. If the first access evicted one of its
// own metadata lines (possible only on degenerate cache geometries where
// one access touches more lines than a set holds), the group falls back
// to the per-line loop.
func (t *TrafficModel) accessGroup(addr uint64, write bool, stride uint64, k int64) (extra sim.Duration) {
	extra = t.accessOne(addr, write)
	if k <= 1 {
		return extra
	}
	page := addr / PageSize
	wrPage := t.pageWritable(page)
	ctrAddr := t.counterLineFor(page, wrPage)

	// The steady metadata lines, in per-access touch order: counter line,
	// tree path (reads stop at the first — now verified — ancestor; writes
	// walk the full path), then the MAC line for split-counter pages.
	steady := t.steady[:0]
	steady = append(steady, ctrAddr)
	if write {
		steady = treePath(ctrAddr, steady)
	} else if path := treePath(ctrAddr, steady[1:]); len(path) > 0 {
		steady = steady[:2] // reads stop at the first (verified) ancestor
	}
	if wrPage {
		line := addr / LineSize
		steady = append(steady, macBase+line/macsPerLine*LineSize)
	}
	for _, a := range steady {
		if !t.meta.Contains(a) {
			for j := int64(1); j < k; j++ {
				extra += t.accessOne(addr+uint64(j)*stride, write)
			}
			return extra
		}
	}

	// Accesses 2..k: guaranteed hits on every steady line, charged in
	// bulk. Hits add no latency, so only write minors can add charges.
	for _, a := range steady {
		t.meta.AccessRun(a, write, k-1)
	}
	w := uint8(t.cfg.SampleWeight)
	if write {
		t.stats.DataWrites += (k - 1) * int64(w)
	} else {
		t.stats.DataReads += (k - 1) * int64(w)
	}
	if write && wrPage {
		mp := t.minors.page(page)
		for j := int64(1); j < k; j++ {
			li := ((addr + uint64(j)*stride) / LineSize) % LinesPerPage
			if e := t.bumpMinor(mp, li, w); e > 0 {
				extra += e + t.cfg.EncryptLatency
			}
		}
	}
	return extra
}

// Reset clears all model state and statistics.
func (t *TrafficModel) Reset() {
	t.meta = cache.New("counter-cache", t.cfg.CounterCacheBytes, LineSize, 8)
	t.wr.init()
	t.minors.init()
	t.stats = TrafficStats{}
}
