package mee

import (
	"iceclave/internal/cache"
	"iceclave/internal/sim"
)

// TrafficReference is the per-line, map-backed traffic model retained as
// the differential oracle for TrafficModel — the trivium.Reference pattern
// applied to the counter-cache simulation. It is the pre-batching
// implementation verbatim: one Access call per 64-byte line, Go maps for
// page permissions and minor counters, no run collapsing. TrafficModel's
// bulk APIs (AccessSeq, AccessMany) and its dense state must produce
// bit-identical TrafficStats, counter-cache statistics, and latency sums
// to this model on any access stream; the differential and fuzz tests in
// this package pin that contract. Keep this implementation boring: its
// value is that its correctness is obvious.
type TrafficReference struct {
	cfg      TrafficConfig
	meta     *cache.Cache     // shared metadata cache (counters, MACs, tree nodes)
	writable map[uint64]bool  // page index -> writable (default read-only)
	minors   map[uint64]uint8 // data line index -> write count within major epoch
	stats    TrafficStats
}

// NewTrafficReference builds the oracle from cfg, applying the same
// defaults NewTrafficModel does.
func NewTrafficReference(cfg TrafficConfig) *TrafficReference {
	cfg = cfg.withDefaults()
	return &TrafficReference{
		cfg:      cfg,
		meta:     cache.New("counter-cache", cfg.CounterCacheBytes, LineSize, 8),
		writable: make(map[uint64]bool),
		minors:   make(map[uint64]uint8),
	}
}

// Mode returns the protection scheme in effect.
func (t *TrafficReference) Mode() Mode { return t.cfg.Mode }

// Stats returns a copy of the traffic counters.
func (t *TrafficReference) Stats() TrafficStats { return t.stats }

// CounterCacheStats exposes the metadata cache's hit statistics.
func (t *TrafficReference) CounterCacheStats() cache.Stats { return t.meta.Stats() }

// SetPageWritable marks a page writable (true) or read-only (false).
func (t *TrafficReference) SetPageWritable(page uint64, w bool) {
	if w {
		t.writable[page] = true
	} else {
		delete(t.writable, page)
	}
}

// pageWritable reports whether a page currently takes the split-counter
// path. Under SC-64 every page does.
func (t *TrafficReference) pageWritable(page uint64) bool {
	if t.cfg.Mode == ModeSplit64 {
		return true
	}
	return t.writable[page]
}

// touchMeta accesses one metadata line through the counter cache and
// charges the extra traffic to enc (true) or ver (false) accounting.
func (t *TrafficReference) touchMeta(addr uint64, write, enc bool) (extra sim.Duration) {
	hit, ev, evicted := t.meta.Access(addr, write)
	if !hit {
		if enc {
			t.stats.EncExtraReads++
		} else {
			t.stats.VerExtraReads++
		}
		extra += t.cfg.DRAMLatency
	}
	if evicted && ev.Dirty {
		// Dirty metadata writeback: attribute by the evicted line's space.
		if ev.Addr >= macBase {
			t.stats.VerExtraWrites++
		} else {
			t.stats.EncExtraWrites++
		}
		extra += t.cfg.DRAMLatency
	}
	return extra
}

// counterLine returns the metadata address of the counter block covering
// page under the current scheme.
func (t *TrafficReference) counterLine(page uint64) uint64 {
	if t.cfg.Mode == ModeHybrid && !t.pageWritable(page) {
		// Major-only: 8 read-only pages share one counter line.
		return ctrBase + page/roPagesPerCounterLine*LineSize
	}
	// Split counters: one 64-byte counter line per 4 KB page.
	return ctrBase + page*LineSize
}

// treeWalk touches the BMT path above a counter line, stopping early on a
// cache hit the way a real verifier stops at a verified ancestor.
func (t *TrafficReference) treeWalk(ctrAddr uint64, write bool) (extra sim.Duration) {
	idx := (ctrAddr - ctrBase) / LineSize
	for level := 0; idx > 0 && level < 8; level++ {
		idx /= treeFanout
		nodeAddr := treeBase + uint64(level)<<36 + idx*LineSize
		hit, ev, evicted := t.meta.Access(nodeAddr, write)
		if evicted && ev.Dirty {
			t.stats.VerExtraWrites++
			extra += t.cfg.DRAMLatency
		}
		if hit && !write {
			break // verified ancestor found
		}
		if !hit {
			t.stats.VerExtraReads++
			extra += t.cfg.DRAMLatency
		}
	}
	return extra
}

// Access records one 64-byte data access and returns the extra latency the
// protection scheme adds to it — the per-line loop TrafficModel's bulk
// APIs are measured against.
func (t *TrafficReference) Access(addr uint64, write bool) (extra sim.Duration) {
	w := uint8(t.cfg.SampleWeight)
	if write {
		t.stats.DataWrites += int64(w)
	} else {
		t.stats.DataReads += int64(w)
	}
	if t.cfg.Mode == ModeNone {
		return 0
	}
	page := addr / PageSize
	line := addr / LineSize
	wrPage := t.pageWritable(page)

	// Counter fetch (encryption metadata).
	ctrAddr := t.counterLine(page)
	extra += t.touchMeta(ctrAddr, write, true)

	// Integrity tree walk over the counter space.
	extra += t.treeWalk(ctrAddr, write)

	// Line MACs: writable pages carry one 8-byte MAC per line (packed 8
	// per metadata line). Read-only pages under the hybrid scheme fold
	// verification into the counter tree at page granularity (Figure 7a),
	// so they need no per-line MAC fetch.
	if wrPage {
		macAddr := macBase + line/macsPerLine*LineSize
		extra += t.touchMeta(macAddr, write, false)
	}

	// Minor-counter overflow on writes: the 6-bit counter wraps after 63
	// bumps, forcing a page re-encryption (read+write every line).
	if write && wrPage {
		m := int(t.minors[line]) + int(w)
		for m >= MinorLimit-1 {
			m -= MinorLimit - 1
			t.stats.Reencryptions++
			t.stats.EncExtraReads += LinesPerPage
			t.stats.EncExtraWrites += LinesPerPage
			extra += sim.Duration(2*LinesPerPage) * t.cfg.DRAMLatency
			// Reset the page's minors.
			base := page * LinesPerPage
			for i := uint64(0); i < LinesPerPage; i++ {
				delete(t.minors, base+i)
			}
		}
		t.minors[line] = uint8(m)
	}

	// Exposed latency of the crypto units: the AES pad generation and MAC
	// check pipeline under DRAM access latency and stay hidden on
	// metadata hits; only accesses that had to fetch metadata expose the
	// Table 5 per-operation latency.
	if extra > 0 {
		if write {
			extra += t.cfg.EncryptLatency
		} else {
			extra += t.cfg.VerifyLatency
		}
	}
	return extra
}

// Reset clears all model state and statistics.
func (t *TrafficReference) Reset() {
	t.meta = cache.New("counter-cache", t.cfg.CounterCacheBytes, LineSize, 8)
	t.writable = make(map[uint64]bool)
	t.minors = make(map[uint64]uint8)
	t.stats = TrafficStats{}
}
