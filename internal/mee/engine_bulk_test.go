package mee

import (
	"bytes"
	"errors"
	"testing"
)

// pageData builds a distinctive 4 KB payload.
func pageData(seed byte) []byte {
	data := make([]byte, PageSize)
	for i := range data {
		data[i] = byte(i)*3 + seed
	}
	return data
}

// sameEngineState asserts two engines that consumed equivalent operation
// sequences are observably identical on page p: roots, trusted digest,
// major counter, per-line ciphertext and MACs, and read-backs.
func sameEngineState(t *testing.T, bulk, ref *Engine, p uint64, ctx string) {
	t.Helper()
	bro, brw := bulk.Roots()
	rro, rrw := ref.Roots()
	if bro != rro || brw != rrw {
		t.Fatalf("%s: tree roots diverge", ctx)
	}
	if bulk.trusted[p] != ref.trusted[p] {
		t.Fatalf("%s: verified digests diverge", ctx)
	}
	if bulk.Major(p) != ref.Major(p) {
		t.Fatalf("%s: major counters diverge: %d vs %d", ctx, bulk.Major(p), ref.Major(p))
	}
	bp, rp := bulk.pages[p], ref.pages[p]
	if bp.ctr.minors != rp.ctr.minors {
		t.Fatalf("%s: minor counters diverge", ctx)
	}
	if bp.present != rp.present || bp.ct != rp.ct || bp.macs != rp.macs {
		t.Fatalf("%s: DRAM-side page images diverge", ctx)
	}
	bg, err := bulk.ReadPage(p)
	if err != nil {
		t.Fatalf("%s: bulk read back: %v", ctx, err)
	}
	rg, err := ref.ReadPage(p)
	if err != nil {
		t.Fatalf("%s: ref read back: %v", ctx, err)
	}
	if !bytes.Equal(bg, rg) {
		t.Fatalf("%s: plaintext read-backs diverge", ctx)
	}
}

// TestWritePageMatchesPerLineWrites pins the bulk contract on the fast
// path: one WritePage (one digest commit) leaves the engine bit-identical
// to 64 single-line Writes (64 digest commits).
func TestWritePageMatchesPerLineWrites(t *testing.T) {
	bulk, ref := testEngine(), testEngine()
	const p = uint64(7)
	for round := 0; round < 3; round++ {
		data := pageData(byte(round))
		if err := bulk.WritePage(p, data); err != nil {
			t.Fatal(err)
		}
		for l := 0; l < LinesPerPage; l++ {
			if err := ref.Write(p, l, data[l*LineSize:(l+1)*LineSize]); err != nil {
				t.Fatal(err)
			}
		}
		sameEngineState(t, bulk, ref, p, "round")
	}
}

// TestWritePageMatchesPerLineWritesOnOverflow drives both engines to the
// minor-counter overflow boundary and pins that WritePage's re-encryption
// fallback replays the exact per-line sequence: major bump, minors reset,
// all lines re-sealed.
func TestWritePageMatchesPerLineWritesOnOverflow(t *testing.T) {
	bulk, ref := testEngine(), testEngine()
	const p = uint64(3)
	// Push one line to the boundary on both engines: after MinorLimit-1
	// writes its minor sits at the limit, so the next write re-encrypts.
	for i := 0; i < MinorLimit-1; i++ {
		for _, e := range []*Engine{bulk, ref} {
			if err := e.Write(p, 5, line(byte(i))); err != nil {
				t.Fatal(err)
			}
		}
	}
	data := pageData(0x5A)
	if err := bulk.WritePage(p, data); err != nil {
		t.Fatal(err)
	}
	for l := 0; l < LinesPerPage; l++ {
		if err := ref.Write(p, l, data[l*LineSize:(l+1)*LineSize]); err != nil {
			t.Fatal(err)
		}
	}
	if bulk.Major(p) == 0 {
		t.Fatal("overflow path never re-encrypted the page")
	}
	sameEngineState(t, bulk, ref, p, "overflow")
}

// TestReadPageMatchesPerLineReads pins that bulk ReadPage (one counter
// verification) returns what 64 single-line Reads (64 verifications) do,
// and that both reject the same tampering.
func TestReadPageMatchesPerLineReads(t *testing.T) {
	e := testEngine()
	const p = uint64(11)
	data := pageData(0x21)
	if err := e.WritePage(p, data); err != nil {
		t.Fatal(err)
	}
	got, err := e.ReadPage(p)
	if err != nil {
		t.Fatal(err)
	}
	perLine := make([]byte, 0, PageSize)
	for l := 0; l < LinesPerPage; l++ {
		d, err := e.Read(p, l)
		if err != nil {
			t.Fatal(err)
		}
		perLine = append(perLine, d...)
	}
	if !bytes.Equal(got, perLine) || !bytes.Equal(got, data) {
		t.Fatal("bulk and per-line reads diverge")
	}
	// Tamper parity: both paths must reject the same corruption.
	if err := e.TamperCiphertext(p, 17); err != nil {
		t.Fatal(err)
	}
	if _, err := e.ReadPage(p); !errors.Is(err, ErrIntegrity) {
		t.Fatalf("bulk read of tampered page returned %v", err)
	}
	if _, err := e.Read(p, 17); !errors.Is(err, ErrIntegrity) {
		t.Fatalf("per-line read of tampered line returned %v", err)
	}
	// Counter tamper is caught by the single bulk verification too.
	e2 := testEngine()
	if err := e2.WritePage(p, data); err != nil {
		t.Fatal(err)
	}
	if err := e2.TamperCounter(p); err != nil {
		t.Fatal(err)
	}
	if _, err := e2.ReadPage(p); !errors.Is(err, ErrIntegrity) {
		t.Fatalf("bulk read of counter-tampered page returned %v", err)
	}
}

// TestReadPageUnwrittenLine pins the partial-page behaviour: a page with
// holes fails ReadPage exactly like the per-line loop did.
func TestReadPageUnwrittenLine(t *testing.T) {
	e := testEngine()
	if err := e.Write(4, 0, line(1)); err != nil {
		t.Fatal(err)
	}
	if _, err := e.ReadPage(4); err == nil {
		t.Fatal("ReadPage of partially written page succeeded")
	}
	if _, err := e.ReadPage(99); err == nil {
		t.Fatal("ReadPage of unmapped page succeeded")
	}
}

// BenchmarkPageOps quantifies the satellite's claim: bulk page ops commit
// the counter digest once instead of 64 times.
func BenchmarkPageOps(b *testing.B) {
	b.Run("write-bulk", func(b *testing.B) {
		e := testEngine()
		data := pageData(1)
		b.SetBytes(PageSize)
		for i := 0; i < b.N; i++ {
			if err := e.WritePage(uint64(i%32), data); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("write-perline", func(b *testing.B) {
		e := testEngine()
		data := pageData(1)
		b.SetBytes(PageSize)
		for i := 0; i < b.N; i++ {
			p := uint64(i % 32)
			for l := 0; l < LinesPerPage; l++ {
				if err := e.Write(p, l, data[l*LineSize:(l+1)*LineSize]); err != nil {
					b.Fatal(err)
				}
			}
		}
	})
	b.Run("read-bulk", func(b *testing.B) {
		e := testEngine()
		data := pageData(1)
		if err := e.WritePage(0, data); err != nil {
			b.Fatal(err)
		}
		b.SetBytes(PageSize)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := e.ReadPage(0); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("read-perline", func(b *testing.B) {
		e := testEngine()
		data := pageData(1)
		if err := e.WritePage(0, data); err != nil {
			b.Fatal(err)
		}
		b.SetBytes(PageSize)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			for l := 0; l < LinesPerPage; l++ {
				if _, err := e.Read(0, l); err != nil {
					b.Fatal(err)
				}
			}
		}
	})
}
