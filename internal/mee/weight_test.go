package mee

import "testing"

func TestSampleWeightScalesDataCounts(t *testing.T) {
	m := NewTrafficModel(TrafficConfig{Mode: ModeHybrid, SampleWeight: 8})
	for i := uint64(0); i < 100; i++ {
		m.Access(i*LineSize, false)
	}
	if got := m.Stats().DataReads; got != 800 {
		t.Fatalf("weighted data reads = %d, want 800", got)
	}
}

func TestSampleWeightPreservesMissCounts(t *testing.T) {
	// A sampled sequential stream touches the same counter lines as the
	// full stream, so metadata miss counts must match between weight=1
	// (full) and weight=8 (every 8th access).
	full := NewTrafficModel(TrafficConfig{Mode: ModeHybrid, SampleWeight: 1})
	const lines = 8192
	for i := uint64(0); i < lines; i++ {
		full.Access(i*LineSize, false)
	}
	sampled := NewTrafficModel(TrafficConfig{Mode: ModeHybrid, SampleWeight: 8})
	for i := uint64(0); i < lines; i += 8 {
		sampled.Access(i*LineSize, false)
	}
	f, s := full.Stats(), sampled.Stats()
	if f.EncExtraReads != s.EncExtraReads {
		t.Fatalf("counter fetches diverge: full=%d sampled=%d", f.EncExtraReads, s.EncExtraReads)
	}
	if f.DataReads != s.DataReads {
		t.Fatalf("weighted data counts diverge: full=%d sampled=%d", f.DataReads, s.DataReads)
	}
}

func TestSampleWeightAdvancesMinors(t *testing.T) {
	// A weight-8 model hammering one line must overflow the 6-bit minor
	// counter at (approximately) the same real write count as weight-1.
	full := NewTrafficModel(TrafficConfig{Mode: ModeHybrid, SampleWeight: 1})
	full.SetPageWritable(0, true)
	for i := 0; i < 256; i++ {
		full.Access(0, true)
	}
	sampled := NewTrafficModel(TrafficConfig{Mode: ModeHybrid, SampleWeight: 8})
	sampled.SetPageWritable(0, true)
	for i := 0; i < 256/8; i++ {
		sampled.Access(0, true)
	}
	f, s := full.Stats().Reencryptions, sampled.Stats().Reencryptions
	if f == 0 || s == 0 {
		t.Fatalf("no overflows observed: full=%d sampled=%d", f, s)
	}
	if diff := f - s; diff < -1 || diff > 1 {
		t.Fatalf("re-encryption counts diverge: full=%d sampled=%d", f, s)
	}
}
