package mee

import (
	"bytes"
	"errors"
	"testing"
)

func fuzzEngine() *Engine {
	var aesKey [16]byte
	var macKey [32]byte
	copy(aesKey[:], "fuzz-mee-aes-key")
	copy(macKey[:], "fuzz-mee-mac-key")
	return NewEngine(aesKey, macKey)
}

// FuzzEngineWriteReadMAC exercises the encrypt/decrypt/MAC cycle with
// arbitrary pages, line indices, payloads, and rewrite counts: the last
// write must read back exactly, and a tampered ciphertext must fail the
// MAC. High rewrite counts push lines through the minor-counter overflow
// re-encryption path. Seeds live in testdata/fuzz as the regression
// corpus.
func FuzzEngineWriteReadMAC(f *testing.F) {
	f.Add(uint64(0), uint16(0), []byte("line payload"), uint8(1))
	f.Add(uint64(1<<40), uint16(63), []byte{}, uint8(7))
	f.Add(uint64(42), uint16(7), bytes.Repeat([]byte{0xA5}, LineSize), uint8(130))
	f.Fuzz(func(t *testing.T, page uint64, lineIdx uint16, payload []byte, rewrites uint8) {
		line := int(lineIdx) % LinesPerPage
		e := fuzzEngine()
		data := make([]byte, LineSize)
		copy(data, payload)

		n := int(rewrites)%(MinorLimit+4) + 1 // cross the overflow boundary sometimes
		for i := 0; i < n; i++ {
			data[0] = byte(i)
			if err := e.Write(page, line, data); err != nil {
				t.Fatalf("write %d: %v", i, err)
			}
		}
		got, err := e.Read(page, line)
		if err != nil {
			t.Fatalf("read back: %v", err)
		}
		if !bytes.Equal(got, data) {
			t.Fatalf("read %x, want %x", got[:4], data[:4])
		}
		// The stored image must be ciphertext, and tampering with it must
		// be caught by the MAC.
		if err := e.TamperCiphertext(page, line); err != nil {
			t.Fatal(err)
		}
		if _, err := e.Read(page, line); !errors.Is(err, ErrIntegrity) {
			t.Fatalf("tampered read returned %v, want integrity failure", err)
		}
	})
}

// FuzzEngineCounterReplay snapshots a line, advances it, rolls the
// DRAM-side state back, and requires the verified counter tree to detect
// the replay — for arbitrary addresses and payloads.
func FuzzEngineCounterReplay(f *testing.F) {
	f.Add(uint64(7), []byte("v1"), []byte("v2"))
	f.Add(uint64(1)<<33, bytes.Repeat([]byte{1}, LineSize), []byte{})
	f.Fuzz(func(t *testing.T, page uint64, v1, v2 []byte) {
		e := fuzzEngine()
		a := make([]byte, LineSize)
		copy(a, v1)
		b := make([]byte, LineSize)
		copy(b, v2)
		if err := e.Write(page, 0, a); err != nil {
			t.Fatal(err)
		}
		snap, err := e.Snapshot(page, 0)
		if err != nil {
			t.Fatal(err)
		}
		if err := e.Write(page, 0, b); err != nil {
			t.Fatal(err)
		}
		if err := e.Replay(snap); err != nil {
			t.Fatal(err)
		}
		if _, err := e.Read(page, 0); !errors.Is(err, ErrIntegrity) {
			t.Fatalf("replayed read returned %v, want integrity failure", err)
		}
	})
}
