package mee

import (
	"testing"

	"iceclave/internal/sim"
)

func TestModeNoneNoOverhead(t *testing.T) {
	m := NewTrafficModel(TrafficConfig{Mode: ModeNone})
	for i := uint64(0); i < 1000; i++ {
		if extra := m.Access(i*LineSize, i%4 == 0); extra != 0 {
			t.Fatal("ModeNone charged extra latency")
		}
	}
	s := m.Stats()
	if s.EncryptionOverhead() != 0 || s.VerificationOverhead() != 0 {
		t.Fatalf("ModeNone has overhead: %+v", s)
	}
	if s.DataAccesses() != 1000 {
		t.Fatalf("data accesses = %d", s.DataAccesses())
	}
}

// scanStream models a sequential read of n bytes of read-only input.
func scanStream(m *TrafficModel, n uint64) {
	for addr := uint64(0); addr < n; addr += LineSize {
		m.Access(addr, false)
	}
}

func TestHybridBeatsSplitOnReadOnlyScan(t *testing.T) {
	// The Figure 8 mechanism: for read-intensive workloads the hybrid
	// scheme packs 8x more counters per cache line and skips per-line MAC
	// fetches on read-only pages, so its extra traffic must be well below
	// SC-64's.
	const bytes = 64 << 20
	hy := NewTrafficModel(TrafficConfig{Mode: ModeHybrid})
	sc := NewTrafficModel(TrafficConfig{Mode: ModeSplit64})
	scanStream(hy, bytes)
	scanStream(sc, bytes)
	h, s := hy.Stats(), sc.Stats()
	if h.EncryptionOverhead() >= s.EncryptionOverhead() {
		t.Fatalf("hybrid enc overhead %v not below SC-64 %v",
			h.EncryptionOverhead(), s.EncryptionOverhead())
	}
	if h.VerificationOverhead() >= s.VerificationOverhead() {
		t.Fatalf("hybrid ver overhead %v not below SC-64 %v",
			h.VerificationOverhead(), s.VerificationOverhead())
	}
}

func TestReadOnlyScanOverheadSmall(t *testing.T) {
	// Sequential read-only scans in hybrid mode should stay in the
	// low-single-digit percent range, the order of Table 6's TPC-H rows.
	m := NewTrafficModel(TrafficConfig{Mode: ModeHybrid})
	scanStream(m, 64<<20)
	s := m.Stats()
	if ov := s.EncryptionOverhead(); ov > 0.05 {
		t.Fatalf("read-only scan encryption overhead = %v, want < 5%%", ov)
	}
	if ov := s.VerificationOverhead(); ov > 0.05 {
		t.Fatalf("read-only scan verification overhead = %v, want < 5%%", ov)
	}
}

func TestWriteHeavyCostsMore(t *testing.T) {
	// Write-intensive streams (Wordcount-like) must show much higher
	// overhead than read-only scans — the Table 6 spread.
	ro := NewTrafficModel(TrafficConfig{Mode: ModeHybrid})
	scanStream(ro, 8<<20)
	wr := NewTrafficModel(TrafficConfig{Mode: ModeHybrid})
	rng := sim.NewRNG(3)
	const pages = 512
	for p := uint64(0); p < pages; p++ {
		wr.SetPageWritable(p, true)
	}
	for i := 0; i < (8<<20)/LineSize; i++ {
		addr := uint64(rng.Int63n(pages * PageSize))
		wr.Access(addr, rng.Bool(0.5))
	}
	roS, wrS := ro.Stats(), wr.Stats()
	if wrS.EncryptionOverhead() <= 2*roS.EncryptionOverhead() {
		t.Fatalf("write-heavy enc overhead %v not >> read-only %v",
			wrS.EncryptionOverhead(), roS.EncryptionOverhead())
	}
}

func TestMinorOverflowTriggersReencryption(t *testing.T) {
	m := NewTrafficModel(TrafficConfig{Mode: ModeHybrid})
	m.SetPageWritable(0, true)
	for i := 0; i < MinorLimit+8; i++ {
		m.Access(0, true) // hammer one line
	}
	if m.Stats().Reencryptions == 0 {
		t.Fatal("minor-counter overflow never re-encrypted")
	}
}

func TestExtraLatencyCharged(t *testing.T) {
	m := NewTrafficModel(TrafficConfig{Mode: ModeHybrid})
	extra := m.Access(0, false) // cold: counter miss + tree walk
	if extra < m.cfg.VerifyLatency {
		t.Fatalf("cold read extra = %v, below verify latency", extra)
	}
	extra2 := m.Access(64, false) // warm: same counter line
	if extra2 >= extra {
		t.Fatalf("warm read extra %v not below cold %v", extra2, extra)
	}
}

func TestSC64TreatsAllPagesWritable(t *testing.T) {
	m := NewTrafficModel(TrafficConfig{Mode: ModeSplit64})
	// Never marked writable, but SC-64 still uses split counters: a
	// per-page counter line, so two pages need two counter lines.
	m.Access(0, false)
	m.Access(PageSize, false)
	if m.Stats().EncExtraReads < 2 {
		t.Fatalf("SC-64 shared counter lines across pages: %+v", m.Stats())
	}
}

func TestHybridSharesROCounterLines(t *testing.T) {
	m := NewTrafficModel(TrafficConfig{Mode: ModeHybrid})
	// 8 read-only pages share one counter line: first access misses, the
	// other seven hit.
	for p := uint64(0); p < 8; p++ {
		m.Access(p*PageSize, false)
	}
	if got := m.Stats().EncExtraReads; got != 1 {
		t.Fatalf("counter fetches for 8 RO pages = %d, want 1", got)
	}
}

func TestDynamicPermissionChange(t *testing.T) {
	m := NewTrafficModel(TrafficConfig{Mode: ModeHybrid})
	m.Access(0, false) // read-only path
	m.SetPageWritable(0, true)
	if extra := m.Access(0, true); extra == 0 {
		t.Fatal("write to now-writable page charged nothing")
	}
	m.SetPageWritable(0, false)
	m.Access(0, false) // back on the read-only path; must not panic
}

func TestReset(t *testing.T) {
	m := NewTrafficModel(TrafficConfig{Mode: ModeHybrid})
	m.SetPageWritable(0, true)
	m.Access(0, true)
	m.Reset()
	if m.Stats().DataAccesses() != 0 {
		t.Fatal("stats survived reset")
	}
}

func TestOverheadAccessorsEmpty(t *testing.T) {
	var s TrafficStats
	if s.EncryptionOverhead() != 0 || s.VerificationOverhead() != 0 {
		t.Fatal("empty stats report overhead")
	}
}
