package trivium

import (
	"bytes"
	"math/rand"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"testing"
)

// corpusArgs parses one committed go-fuzz corpus file (the "go test fuzz v1"
// format: one Go literal per line) into its raw argument list. Only the
// literal forms our fuzz targets use — []byte, uint32, uint64 — appear in
// testdata/fuzz.
func corpusArgs(t *testing.T, path string) []interface{} {
	t.Helper()
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("read corpus file: %v", err)
	}
	var args []interface{}
	for _, line := range strings.Split(string(raw), "\n")[1:] {
		line = strings.TrimSpace(line)
		switch {
		case strings.HasPrefix(line, "[]byte("):
			s, err := strconv.Unquote(strings.TrimSuffix(strings.TrimPrefix(line, "[]byte("), ")"))
			if err != nil {
				t.Fatalf("%s: bad []byte literal %q: %v", path, line, err)
			}
			args = append(args, []byte(s))
		case strings.HasPrefix(line, "uint32("):
			v, err := strconv.ParseUint(strings.TrimSuffix(strings.TrimPrefix(line, "uint32("), ")"), 0, 32)
			if err != nil {
				t.Fatalf("%s: bad uint32 literal %q: %v", path, line, err)
			}
			args = append(args, uint32(v))
		case strings.HasPrefix(line, "uint64("):
			v, err := strconv.ParseUint(strings.TrimSuffix(strings.TrimPrefix(line, "uint64("), ")"), 0, 64)
			if err != nil {
				t.Fatalf("%s: bad uint64 literal %q: %v", path, line, err)
			}
			args = append(args, uint64(v))
		case line == "":
		default:
			t.Fatalf("%s: unhandled corpus literal %q", path, line)
		}
	}
	return args
}

func corpusFiles(t *testing.T, target string) []string {
	t.Helper()
	files, err := filepath.Glob(filepath.Join("testdata", "fuzz", target, "*"))
	if err != nil || len(files) == 0 {
		t.Fatalf("no committed corpus for %s (err=%v)", target, err)
	}
	return files
}

// TestDifferentialCorpusKeystream proves the word-parallel Cipher
// keystream-identical to the bit-serial Reference on every committed
// FuzzKeystreamRoundTrip corpus entry.
func TestDifferentialCorpusKeystream(t *testing.T) {
	checked := 0
	for _, path := range corpusFiles(t, "FuzzKeystreamRoundTrip") {
		args := corpusArgs(t, path)
		if len(args) != 3 {
			t.Fatalf("%s: want 3 args, got %d", path, len(args))
		}
		key, _ := args[0].([]byte)
		iv, _ := args[1].([]byte)
		data, _ := args[2].([]byte)
		if len(key) != KeySize || len(iv) != IVSize {
			continue // the fuzz target skips these too
		}
		n := len(data) + 64 // cover the payload length plus extra batches
		want := make([]byte, n)
		NewReference(key, iv).Keystream(want)
		got := make([]byte, n)
		New(key, iv).Keystream(got)
		if !bytes.Equal(got, want) {
			t.Fatalf("%s: keystream diverged\nword: %x\nref:  %x", path, got, want)
		}
		checked++
	}
	if checked == 0 {
		t.Fatal("corpus contained no valid key/IV pairs")
	}
}

// TestDifferentialCorpusEngine replays the committed FuzzEnginePageRoundTrip
// corpus (PPA, IV base, page payload) through the word-parallel Engine and
// checks the ciphertext against a bit-serial encryption under the same
// PPA-bound IV.
func TestDifferentialCorpusEngine(t *testing.T) {
	key := []byte("iceclave-k")
	for _, path := range corpusFiles(t, "FuzzEnginePageRoundTrip") {
		args := corpusArgs(t, path)
		if len(args) != 3 {
			t.Fatalf("%s: want 3 args, got %d", path, len(args))
		}
		ppa, _ := args[0].(uint32)
		ivBase, _ := args[1].(uint64)
		data, _ := args[2].([]byte)
		e := NewEngine(key, ivBase)
		got := append([]byte(nil), data...)
		e.EncryptPage(ppa, got)
		iv := e.IVFor(ppa)
		want := make([]byte, len(data))
		NewReference(key, iv[:]).XORKeyStream(want, data)
		if !bytes.Equal(got, want) {
			t.Fatalf("%s: engine ciphertext diverged from bit-serial", path)
		}
	}
}

// TestDifferentialRandom hammers the two implementations with random keys,
// IVs, and lengths, consuming the word engine through randomly interleaved
// API calls (KeystreamByte, Keystream, XORKeyStream in odd-sized chunks) so
// the batch buffering across unaligned boundaries is exercised, not just
// whole-page calls.
func TestDifferentialRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(0x1CEC1A7E))
	for trial := 0; trial < 200; trial++ {
		key := make([]byte, KeySize)
		iv := make([]byte, IVSize)
		rng.Read(key)
		rng.Read(iv)
		n := rng.Intn(1024)
		want := make([]byte, n)
		NewReference(key, iv).Keystream(want)

		got := make([]byte, 0, n)
		c := New(key, iv)
		for len(got) < n {
			switch remain := n - len(got); rng.Intn(3) {
			case 0: // single byte
				got = append(got, c.KeystreamByte())
			case 1: // bulk keystream of random size
				chunk := make([]byte, 1+rng.Intn(remain))
				c.Keystream(chunk)
				got = append(got, chunk...)
			default: // XOR path: recover the keystream by XORing zeros
				chunk := make([]byte, 1+rng.Intn(remain))
				c.XORKeyStream(chunk, chunk)
				got = append(got, chunk...)
			}
		}
		if !bytes.Equal(got, want) {
			t.Fatalf("trial %d (key=%x iv=%x n=%d): keystream diverged", trial, key, iv, n)
		}
	}
}

// BenchmarkKeystream measures one encrypted-page unit of cipher work — key
// schedule (1152-round warm-up) plus a 4 KB keystream — for the bit-serial
// reference and the word-parallel production engine. The word/bitserial
// ratio is the speedup `make bench-compare` checks (must be >= 10x; it is
// ~2 orders of magnitude in practice).
func BenchmarkKeystream(b *testing.B) {
	key := []byte("0123456789")
	iv := []byte("abcdefghij")
	page := make([]byte, 4096)
	b.Run("bitserial", func(b *testing.B) {
		b.SetBytes(int64(len(page)))
		var c Reference
		for i := 0; i < b.N; i++ {
			c.Reset(key, iv)
			c.Keystream(page)
		}
	})
	b.Run("word64", func(b *testing.B) {
		b.SetBytes(int64(len(page)))
		var c Cipher
		for i := 0; i < b.N; i++ {
			c.Reset(key, iv)
			c.Keystream(page)
		}
	})
}
