package trivium

import (
	"bytes"
	"testing"
)

// FuzzKeystreamRoundTrip checks, for arbitrary key/IV/payload, that
// encrypt-then-decrypt is the identity, that two ciphers initialized
// identically emit the same keystream (the property the flash-side and
// DRAM-side engine halves rely on), and that the word-parallel Cipher is
// keystream-identical to the bit-serial Reference. Seeds live in
// testdata/fuzz as the regression corpus.
func FuzzKeystreamRoundTrip(f *testing.F) {
	f.Add([]byte("0123456789"), []byte("abcdefghij"), []byte("in-storage page payload"))
	f.Add([]byte("iceclave-k"), []byte{0, 0, 0, 0, 0, 0, 0, 0, 0, 0}, []byte{})
	f.Add(bytes.Repeat([]byte{0xFF}, KeySize), bytes.Repeat([]byte{0xAA}, IVSize),
		bytes.Repeat([]byte{0x00}, 128))
	f.Fuzz(func(t *testing.T, key, iv, data []byte) {
		if len(key) != KeySize || len(iv) != IVSize {
			t.Skip("trivium parameters are exactly 10 bytes")
		}
		enc := New(key, iv)
		ct := make([]byte, len(data))
		enc.XORKeyStream(ct, data)

		dec := New(key, iv)
		pt := make([]byte, len(ct))
		dec.XORKeyStream(pt, ct)
		if !bytes.Equal(pt, data) {
			t.Fatalf("round trip lost data: %x -> %x", data, pt)
		}

		// Keystream determinism: a reset cipher replays the same stream.
		a, b := New(key, iv), New(key, iv)
		for i := 0; i < 16; i++ {
			if a.KeystreamByte() != b.KeystreamByte() {
				t.Fatalf("identical ciphers diverged at byte %d", i)
			}
		}

		// Differential: the word-parallel engine against the bit-serial
		// reference, over the payload length plus a batch boundary.
		n := len(data) + 72
		want := make([]byte, n)
		NewReference(key, iv).Keystream(want)
		got := make([]byte, n)
		New(key, iv).Keystream(got)
		if !bytes.Equal(got, want) {
			t.Fatalf("word64 diverged from bit-serial reference:\nword: %x\nref:  %x", got, want)
		}
	})
}

// FuzzEnginePageRoundTrip drives the flash-controller engine with
// arbitrary PPAs, IV bases, and page contents: DecryptPage must invert
// EncryptPage, and the PPA-bound IV must differ across pages.
func FuzzEnginePageRoundTrip(f *testing.F) {
	f.Add(uint32(0), uint64(0x1CEC1A7E0001), []byte("page zero"))
	f.Add(uint32(0xFFFFFFFF), uint64(0), []byte{0x00, 0xFF, 0x55})
	f.Add(uint32(4096), uint64(1)<<47, bytes.Repeat([]byte{0x5A}, 256))
	f.Fuzz(func(t *testing.T, ppa uint32, ivBase uint64, data []byte) {
		e := NewEngine([]byte("iceclave-k"), ivBase)
		page := append([]byte(nil), data...)
		e.EncryptPage(ppa, page)
		e.DecryptPage(ppa, page)
		if !bytes.Equal(page, data) {
			t.Fatalf("page round trip lost data at PPA %d", ppa)
		}
		// Spatial uniqueness: the IV embeds the PPA, so a neighbouring
		// page must get a different IV (and hence keystream).
		if e.IVFor(ppa) == e.IVFor(ppa+1) {
			t.Fatalf("IV collision between PPA %d and %d", ppa, ppa+1)
		}
	})
}
