package trivium

// Reference is the spec-literal, bit-at-a-time Trivium implementation: a
// one-bit-per-clock feedback shift register network with three registers of
// 93, 84, and 111 bits, exactly as written in the De Cannière & Preneel
// submission. It produces one keystream bit per clock and shifts the whole
// 288-bit state by one position each time.
//
// Reference exists as the differential oracle for the word-parallel Cipher:
// the two implementations must be keystream-identical on every input (see
// the TestDifferentialCorpus*/TestDifferentialRandom tests and the fuzz
// corpus under testdata/fuzz). It is deliberately slow — do not use it on
// a data path.
//
// Reference is not safe for concurrent use.
type Reference struct {
	// state holds bits s1..s288 in state[0]..state[287].
	state [288]byte
}

// NewReference returns a bit-serial cipher initialized with the given
// 80-bit key and IV. It panics if either slice is not exactly 10 bytes:
// key sizing is a programming error, not a runtime condition.
func NewReference(key, iv []byte) *Reference {
	if len(key) != KeySize || len(iv) != IVSize {
		panic("trivium: key and IV must be 10 bytes")
	}
	c := new(Reference)
	c.Reset(key, iv)
	return c
}

// Reset re-initializes the cipher with a new key and IV, performing the
// 1152-round warm-up. The bit-loading order follows the Trivium
// specification: key bit i goes to state position i, IV bit i to position
// 93+i, and the last three state bits are set to one.
func (c *Reference) Reset(key, iv []byte) {
	if len(key) != KeySize || len(iv) != IVSize {
		panic("trivium: key and IV must be 10 bytes")
	}
	for i := range c.state {
		c.state[i] = 0
	}
	for i := 0; i < 80; i++ {
		c.state[i] = bit(key, i)
		c.state[93+i] = bit(iv, i)
	}
	c.state[285], c.state[286], c.state[287] = 1, 1, 1
	for i := 0; i < warmupRounds; i++ {
		c.clock()
	}
}

// bit extracts bit i from a byte slice, MSB-first within each byte, which
// matches the conventional Trivium test-vector byte ordering.
func bit(b []byte, i int) byte {
	return (b[i/8] >> (7 - uint(i%8))) & 1
}

// clock advances the state one step and returns the keystream bit.
func (c *Reference) clock() byte {
	s := &c.state
	t1 := s[65] ^ s[92]
	t2 := s[161] ^ s[176]
	t3 := s[242] ^ s[287]
	z := t1 ^ t2 ^ t3
	t1 ^= (s[90] & s[91]) ^ s[170]
	t2 ^= (s[174] & s[175]) ^ s[263]
	t3 ^= (s[285] & s[286]) ^ s[68]
	// Shift the three registers: A = s1..s93, B = s94..s177, C = s178..s288.
	copy(s[1:93], s[0:92])
	copy(s[94:177], s[93:176])
	copy(s[178:288], s[177:287])
	s[0] = t3
	s[93] = t1
	s[177] = t2
	return z
}

// KeystreamByte produces the next 8 keystream bits packed MSB-first.
func (c *Reference) KeystreamByte() byte {
	var b byte
	for i := 0; i < 8; i++ {
		b = b<<1 | c.clock()
	}
	return b
}

// Keystream fills dst with keystream bytes.
func (c *Reference) Keystream(dst []byte) {
	for i := range dst {
		dst[i] = c.KeystreamByte()
	}
}

// XORKeyStream sets dst = src XOR keystream. dst and src may be the same
// slice; it panics if dst is shorter than src, matching crypto/cipher
// conventions.
func (c *Reference) XORKeyStream(dst, src []byte) {
	if len(dst) < len(src) {
		panic("trivium: output smaller than input")
	}
	for i, v := range src {
		dst[i] = v ^ c.KeystreamByte()
	}
}
