package trivium

import (
	"encoding/binary"
	"sync/atomic"
)

// Engine models the IceClave stream cipher engine placed in the flash
// controller (paper Figure 10). It holds the device key in a register that
// is architecturally invisible to in-storage programs, and derives a fresh
// 80-bit IV per flash page from a pseudo-random 48-bit base concatenated
// with the page's 32-bit physical page address (PPA).
//
// The same engine and IV decrypt the data on the DRAM side, so only
// ciphertext ever crosses the internal bus. The hardware produces 64
// keystream bits per cycle; the cycle cost model lives in the timing layer,
// this type provides the functional transformation.
//
// Engine is safe for concurrent use: the key is immutable, the IV base is
// atomic, and each page operation keys its own cipher state — mirroring
// the hardware, where per-channel cipher units run in parallel off one
// key register.
type Engine struct {
	key    [KeySize]byte
	ivBase atomic.Uint64 // 48-bit temporally-unique base, advanced per epoch
}

// NewEngine returns an engine keyed with key (10 bytes) and an initial IV
// base. Only the low 48 bits of ivBase are used.
func NewEngine(key []byte, ivBase uint64) *Engine {
	if len(key) != KeySize {
		panic("trivium: engine key must be 10 bytes")
	}
	e := &Engine{}
	e.ivBase.Store(ivBase & (1<<48 - 1))
	copy(e.key[:], key)
	return e
}

// IVBase returns the current 48-bit IV base.
func (e *Engine) IVBase() uint64 { return e.ivBase.Load() }

// AdvanceEpoch replaces the IV base, e.g. after a key-rotation epoch. The
// paper constructs temporal uniqueness from a PRNG; the device feeds a new
// base in here.
func (e *Engine) AdvanceEpoch(newBase uint64) { e.ivBase.Store(newBase & (1<<48 - 1)) }

// IVFor builds the 80-bit IV for a physical page address: 48 bits of the
// epoch base followed by the 32-bit PPA. Spatial uniqueness comes from the
// PPA, temporal uniqueness from the base.
func (e *Engine) IVFor(ppa uint32) [IVSize]byte {
	base := e.ivBase.Load()
	var iv [IVSize]byte
	iv[0] = byte(base >> 40)
	iv[1] = byte(base >> 32)
	iv[2] = byte(base >> 24)
	iv[3] = byte(base >> 16)
	iv[4] = byte(base >> 8)
	iv[5] = byte(base)
	binary.BigEndian.PutUint32(iv[6:], ppa)
	return iv
}

// EncryptPage XORs the page in place with the keystream derived from the
// device key and the page's PPA-bound IV. Decryption is the same
// operation, so DecryptPage is an alias kept for readable call sites.
func (e *Engine) EncryptPage(ppa uint32, page []byte) {
	iv := e.IVFor(ppa)
	var c Cipher
	c.Reset(e.key[:], iv[:])
	c.XORKeyStream(page, page)
}

// KeystreamPage fills dst with the keystream EncryptPage would XOR into a
// page at ppa. Callers that need both the bus ciphertext and the plaintext
// of the same page (the §4.6 read path encrypts at the flash side and
// decrypts at the DRAM side with the same IV) generate the keystream once
// through this bulk API and apply it twice, instead of running the cipher
// warm-up and keystream twice per page.
func (e *Engine) KeystreamPage(ppa uint32, dst []byte) {
	iv := e.IVFor(ppa)
	var c Cipher
	c.Reset(e.key[:], iv[:])
	c.Keystream(dst)
}

// DecryptPage reverses EncryptPage for the same PPA and epoch.
func (e *Engine) DecryptPage(ppa uint32, page []byte) { e.EncryptPage(ppa, page) }
