package trivium

import (
	"bytes"
	"testing"
)

func testEngine() *Engine {
	return NewEngine([]byte("devicekey!"), 0x123456789ABC)
}

func TestEnginePageRoundTrip(t *testing.T) {
	e := testEngine()
	page := bytes.Repeat([]byte("flash-page-data "), 256) // 4KB
	orig := append([]byte(nil), page...)
	e.EncryptPage(42, page)
	if bytes.Equal(page, orig) {
		t.Fatal("page not encrypted")
	}
	e.DecryptPage(42, page)
	if !bytes.Equal(page, orig) {
		t.Fatal("decrypt did not restore page")
	}
}

func TestEngineWrongPPAFails(t *testing.T) {
	e := testEngine()
	page := bytes.Repeat([]byte{0xAB}, 64)
	orig := append([]byte(nil), page...)
	e.EncryptPage(1, page)
	e.DecryptPage(2, page) // wrong spatial IV component
	if bytes.Equal(page, orig) {
		t.Fatal("decryption with wrong PPA should not recover plaintext")
	}
}

func TestEngineEpochChangesStream(t *testing.T) {
	e := testEngine()
	a := bytes.Repeat([]byte{0}, 64)
	b := bytes.Repeat([]byte{0}, 64)
	e.EncryptPage(7, a)
	e.AdvanceEpoch(0xFEDCBA987654)
	e.EncryptPage(7, b)
	if bytes.Equal(a, b) {
		t.Fatal("epoch advance did not change the keystream")
	}
}

func TestEngineDistinctPPAsDistinctStreams(t *testing.T) {
	e := testEngine()
	a := make([]byte, 64)
	b := make([]byte, 64)
	e.EncryptPage(100, a)
	e.EncryptPage(101, b)
	if bytes.Equal(a, b) {
		t.Fatal("adjacent PPAs produced identical keystreams")
	}
}

func TestIVConstruction(t *testing.T) {
	e := NewEngine(make([]byte, KeySize), 0x0000AABBCCDD)
	iv := e.IVFor(0x01020304)
	want := []byte{0x00, 0x00, 0xAA, 0xBB, 0xCC, 0xDD, 0x01, 0x02, 0x03, 0x04}
	if !bytes.Equal(iv[:], want) {
		t.Fatalf("IV = %x, want %x", iv, want)
	}
}

func TestIVBaseMasked(t *testing.T) {
	e := NewEngine(make([]byte, KeySize), ^uint64(0))
	if e.IVBase() != 1<<48-1 {
		t.Fatalf("IV base not masked to 48 bits: %x", e.IVBase())
	}
}

func BenchmarkEncryptPage4K(b *testing.B) {
	e := testEngine()
	page := make([]byte, 4096)
	b.SetBytes(4096)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.EncryptPage(uint32(i), page)
	}
}
