package trivium

import (
	"bytes"
	"encoding/hex"
	"testing"
	"testing/quick"
)

// TestSpecVector checks the first keystream bytes against the published
// eSTREAM reference output for the all-zero key and IV (set 6, vector 0 of
// the Trivium submission: keystream begins DF07FD641A9AA0D8...).
func TestSpecVector(t *testing.T) {
	key := make([]byte, KeySize)
	iv := make([]byte, IVSize)
	c := New(key, iv)
	got := make([]byte, 8)
	c.Keystream(got)
	want, _ := hex.DecodeString("df07fd641a9aa0d8")
	if !bytes.Equal(got, want) {
		t.Fatalf("keystream = %x, want %x", got, want)
	}
}

func TestRoundTrip(t *testing.T) {
	key := []byte("0123456789")
	iv := []byte("abcdefghij")
	msg := []byte("in-storage computing needs a TEE")
	ct := make([]byte, len(msg))
	New(key, iv).XORKeyStream(ct, msg)
	if bytes.Equal(ct, msg) {
		t.Fatal("ciphertext equals plaintext")
	}
	pt := make([]byte, len(ct))
	New(key, iv).XORKeyStream(pt, ct)
	if !bytes.Equal(pt, msg) {
		t.Fatalf("round trip failed: %q", pt)
	}
}

func TestKeystreamDeterminism(t *testing.T) {
	key := []byte("kkkkkkkkkk")
	iv := []byte("vvvvvvvvvv")
	a, b := make([]byte, 256), make([]byte, 256)
	New(key, iv).Keystream(a)
	New(key, iv).Keystream(b)
	if !bytes.Equal(a, b) {
		t.Fatal("same key/IV produced different keystreams")
	}
}

func TestDifferentIVDifferentStream(t *testing.T) {
	key := []byte("kkkkkkkkkk")
	a, b := make([]byte, 64), make([]byte, 64)
	New(key, []byte("0000000000")).Keystream(a)
	New(key, []byte("0000000001")).Keystream(b)
	if bytes.Equal(a, b) {
		t.Fatal("different IVs produced identical keystreams")
	}
}

func TestDifferentKeyDifferentStream(t *testing.T) {
	iv := []byte("vvvvvvvvvv")
	a, b := make([]byte, 64), make([]byte, 64)
	New([]byte("0000000000"), iv).Keystream(a)
	New([]byte("1000000000"), iv).Keystream(b)
	if bytes.Equal(a, b) {
		t.Fatal("different keys produced identical keystreams")
	}
}

func TestResetMatchesNew(t *testing.T) {
	key := []byte("0123456789")
	iv := []byte("abcdefghij")
	c := New([]byte("zzzzzzzzzz"), []byte("yyyyyyyyyy"))
	c.Reset(key, iv)
	a, b := make([]byte, 32), make([]byte, 32)
	c.Keystream(a)
	New(key, iv).Keystream(b)
	if !bytes.Equal(a, b) {
		t.Fatal("Reset did not reproduce a fresh cipher")
	}
}

func TestSizeValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("short key did not panic")
		}
	}()
	New([]byte("short"), make([]byte, IVSize))
}

func TestRoundTripProperty(t *testing.T) {
	f := func(key, iv [10]byte, msg []byte) bool {
		ct := make([]byte, len(msg))
		New(key[:], iv[:]).XORKeyStream(ct, msg)
		pt := make([]byte, len(ct))
		New(key[:], iv[:]).XORKeyStream(pt, ct)
		return bytes.Equal(pt, msg)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// BenchmarkKeystream (bit-serial vs word-parallel) lives in
// differential_test.go next to the equivalence tests.
