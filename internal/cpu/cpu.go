// Package cpu provides analytic processor models for the IceClave
// simulator: embedded storage cores (the ARM Cortex family in SSD
// controllers) and the host CPU baseline. The paper models an out-of-order
// A72 in gem5 (Table 3); figures depend on *relative* compute capability
// across A77/A72/A53 and the host i7 (Figure 15), which a calibrated
// throughput model preserves.
//
// Concurrency contract: Core and Complex carry per-replay cache and
// accounting state and are not safe for concurrent use; each replay
// builds its own. Parallel experiments give every goroutine a private
// instance rather than locking a shared one.
package cpu

import (
	"fmt"

	"iceclave/internal/sim"
)

// Core is a processor core model: sustained instruction throughput is
// FreqHz x IPC. IPC values are calibration constants for data-processing
// kernels (hash joins, scans, aggregation), not peak issue width.
type Core struct {
	Name   string
	FreqHz float64
	IPC    float64
	// OutOfOrder is informational: OoO cores hold higher effective IPC on
	// the same workloads, which is already folded into IPC.
	OutOfOrder bool
}

// Preset cores used across the evaluation (§6.1 and Figure 15).
var (
	// CortexA72 at 1.6 GHz is the default in-storage processor (Table 3).
	CortexA72 = Core{Name: "A72 @1.6GHz", FreqHz: 1.6e9, IPC: 1.5, OutOfOrder: true}
	// CortexA72Slow is the 0.8 GHz variant of Figure 15.
	CortexA72Slow = Core{Name: "A72 @0.8GHz", FreqHz: 0.8e9, IPC: 1.5, OutOfOrder: true}
	// CortexA77 at 2.8 GHz is the high-end variant of Figure 15.
	CortexA77 = Core{Name: "A77 @2.8GHz", FreqHz: 2.8e9, IPC: 1.9, OutOfOrder: true}
	// CortexA53 at 1.6 GHz is the in-order variant of Figure 15.
	CortexA53 = Core{Name: "A53 @1.6GHz", FreqHz: 1.6e9, IPC: 0.9, OutOfOrder: false}
	// HostI7 is the evaluation server's Intel i7-7700K at 4.2 GHz (§6.1).
	HostI7 = Core{Name: "i7-7700K @4.2GHz", FreqHz: 4.2e9, IPC: 1.6, OutOfOrder: true}
)

// Validate reports an error for non-positive parameters.
func (c Core) Validate() error {
	if c.FreqHz <= 0 || c.IPC <= 0 {
		return fmt.Errorf("cpu: core %q has non-positive freq/IPC", c.Name)
	}
	return nil
}

// InstructionsPerSecond returns the sustained throughput.
func (c Core) InstructionsPerSecond() float64 { return c.FreqHz * c.IPC }

// ComputeTime returns the time to retire n instructions.
func (c Core) ComputeTime(n int64) sim.Duration {
	if n <= 0 {
		return 0
	}
	d := sim.Duration(float64(n) / c.InstructionsPerSecond() * float64(sim.Second))
	if d == 0 {
		d = 1
	}
	return d
}

// Relative returns how much slower (>1) or faster (<1) this core is than
// other for the same instruction stream.
func (c Core) Relative(other Core) float64 {
	return other.InstructionsPerSecond() / c.InstructionsPerSecond()
}

// Complex is a small multiprocessor: the SSD controller's core cluster.
// Multi-tenant experiments (Figures 17–18) schedule one TEE per core and
// share the cluster when instances outnumber cores.
type Complex struct {
	Core  Core
	Cores int

	srv *sim.Server
}

// NewComplex returns a cluster of n identical cores.
func NewComplex(core Core, n int) *Complex {
	if n < 1 {
		panic("cpu: complex needs at least one core")
	}
	return &Complex{Core: core, Cores: n, srv: sim.NewServer("cpu:"+core.Name, n)}
}

// Run reserves one core for the time needed to retire n instructions
// starting no earlier than at, returning start and completion times.
func (c *Complex) Run(at sim.Time, n int64) (start, done sim.Time) {
	return c.srv.Acquire(at, c.Core.ComputeTime(n))
}

// RunFor reserves one core for an explicit duration.
func (c *Complex) RunFor(at sim.Time, d sim.Duration) (start, done sim.Time) {
	return c.srv.Acquire(at, d)
}

// Reset clears reservations.
func (c *Complex) Reset() { c.srv.Reset() }
