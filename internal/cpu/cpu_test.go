package cpu

import (
	"testing"

	"iceclave/internal/sim"
)

func TestComputeTimeScalesWithFrequency(t *testing.T) {
	fast := CortexA72
	slow := CortexA72Slow
	n := int64(1_000_000)
	diff := slow.ComputeTime(n) - fast.ComputeTime(n)*2
	if diff < -2 || diff > 2 { // float->ns rounding tolerance
		t.Fatalf("half frequency should double time: %v vs %v",
			fast.ComputeTime(n), slow.ComputeTime(n))
	}
}

func TestCoreOrdering(t *testing.T) {
	// The Figure 15 ordering: A77@2.8 > A72@1.6 > A53@1.6 > A72@0.8 on
	// throughput... A53@1.6 vs A72@0.8: the OoO core at half clock still
	// wins or loses depending on IPC; assert the paper's qualitative
	// claims instead: A77 fastest, and A72 beats A53 at equal frequency.
	if CortexA77.InstructionsPerSecond() <= CortexA72.InstructionsPerSecond() {
		t.Fatal("A77 not faster than A72")
	}
	if CortexA72.InstructionsPerSecond() <= CortexA53.InstructionsPerSecond() {
		t.Fatal("OoO A72 not faster than in-order A53 at the same frequency")
	}
	if HostI7.InstructionsPerSecond() <= CortexA72.InstructionsPerSecond() {
		t.Fatal("host i7 not faster than the storage A72")
	}
}

func TestRelative(t *testing.T) {
	r := CortexA72.Relative(HostI7)
	if r <= 1 {
		t.Fatalf("A72 relative to i7 = %v, want > 1 (slower)", r)
	}
	// The §6.2 breakdown reports ~2.47x longer in-storage compute; the
	// calibrated model should land in that neighbourhood.
	if r < 1.8 || r > 3.5 {
		t.Fatalf("A72/i7 ratio = %v, outside the calibrated 1.8-3.5 band", r)
	}
}

func TestComputeTimeEdges(t *testing.T) {
	if CortexA72.ComputeTime(0) != 0 {
		t.Fatal("zero instructions took time")
	}
	if CortexA72.ComputeTime(-5) != 0 {
		t.Fatal("negative instructions took time")
	}
	if CortexA72.ComputeTime(1) == 0 {
		t.Fatal("one instruction took zero time")
	}
}

func TestValidate(t *testing.T) {
	if err := CortexA72.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := Core{Name: "bad"}
	if err := bad.Validate(); err == nil {
		t.Fatal("zero core validated")
	}
}

func TestComplexParallelism(t *testing.T) {
	c := NewComplex(CortexA72, 2)
	n := int64(1_000_000)
	_, d1 := c.Run(0, n)
	_, d2 := c.Run(0, n)
	if d1 != d2 {
		t.Fatalf("two cores should run two tasks in parallel: %v vs %v", d1, d2)
	}
	start3, _ := c.Run(0, n)
	if start3 == 0 {
		t.Fatal("third task should queue behind the two cores")
	}
}

func TestComplexRunFor(t *testing.T) {
	c := NewComplex(CortexA72, 1)
	_, done := c.RunFor(0, 100*sim.Microsecond)
	if done != 100*sim.Microsecond {
		t.Fatalf("done = %v", done)
	}
	c.Reset()
	_, done = c.RunFor(0, sim.Microsecond)
	if done != sim.Microsecond {
		t.Fatal("reset did not clear reservations")
	}
}

func TestComplexValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("zero-core complex did not panic")
		}
	}()
	NewComplex(CortexA72, 0)
}
