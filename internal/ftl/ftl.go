// Package ftl implements the flash translation layer of the IceClave SSD
// model: page-level logical-to-physical mapping with per-entry TEE ID bits
// (paper §4.3), out-of-place writes striped across channels, greedy garbage
// collection, wear-aware block allocation, and a demand-cached mapping
// table (CMT) in the DFTL style that IceClave places in the protected
// memory region (paper §4.2).
//
// Concurrency contract: FTL is safe for concurrent use under a sharded,
// two-level lock hierarchy (see the FTL type comment and ARCHITECTURE.md);
// tenants writing to different channels do not contend on any shared lock
// — and since the flash.Device leaf is itself channel-sharded, that
// isolation extends through the device: GC or a write storm on one
// channel takes no lock an operation on another channel can touch.
// MappingCache is not safe for concurrent use and is serialized by its
// owner (the tee.Runtime lock).
package ftl

import (
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"

	"iceclave/internal/flash"
	"iceclave/internal/sim"
)

// LPA is a logical page address: the page index in the linear logical
// space exposed to hosts and in-storage programs.
type LPA uint32

// TEEID identifies the in-storage TEE owning a mapping entry. The paper
// uses 4 ID bits per 8-byte entry (6.25% table overhead); IDNone marks
// entries not owned by any TEE.
type TEEID uint8

// MaxTEEID is the largest representable owner ID (4 bits).
const MaxTEEID TEEID = 15

// IDNone marks an entry with no TEE owner; such pages are accessible only
// through the secure world (host I/O path).
const IDNone TEEID = 0

// entry packs a mapping-table entry the way the paper describes its 8-byte
// entries: physical page address, 4 ID bits, and a valid bit. dirty is
// bookkeeping outside the paper's format: it marks entries that have
// diverged from the zero value since construction (mapping, ID bits, or
// both), so Reset clears only those instead of sweeping the whole table.
type entry struct {
	ppa   flash.PPA
	id    TEEID
	valid bool
	dirty bool
}

// ErrUnmapped is returned when reading an LPA that was never written.
var ErrUnmapped = errors.New("ftl: unmapped LPA")

// ErrAccessDenied is returned when a TEE touches an entry it does not own.
var ErrAccessDenied = errors.New("ftl: mapping entry access denied")

// ErrDeviceFull is returned when no free page can be found even after GC.
var ErrDeviceFull = errors.New("ftl: device full")

// ErrOwned is returned by ClaimID when the entry already carries a
// different TEE's ID bits — the ownership-aware creation path refuses to
// re-stamp a live owner.
var ErrOwned = errors.New("ftl: mapping entry already owned")

// Config tunes FTL policy.
type Config struct {
	// OverProvision is the fraction of raw capacity hidden from the
	// logical space and kept for GC headroom. Default 0.125.
	OverProvision float64
	// GCFreeBlockLow is the per-channel free-block threshold that triggers
	// garbage collection. Default 2.
	GCFreeBlockLow int
	// WearDelta is the max allowed spread between block erase counts
	// before allocation steers to the least-worn candidates. Default 8.
	WearDelta int
	// StripesPerChannel is the number of mapping-table lock stripes per
	// channel. More stripes mean less contention between readers of
	// nearby LPAs at the cost of lock-array footprint. Default 8.
	StripesPerChannel int
	// ReadRetries bounds how many times a read failing with
	// flash.ErrTransientRead is reissued before the error surfaces.
	// Default 3.
	ReadRetries int
	// ProgramRetries bounds how many times a failed program is re-staged
	// to a fresh block (after retiring the bad block or dead die) before
	// the error surfaces. Default 3.
	ProgramRetries int
}

func (c *Config) applyDefaults() {
	if c.OverProvision <= 0 || c.OverProvision >= 1 {
		c.OverProvision = 0.125
	}
	if c.GCFreeBlockLow <= 0 {
		c.GCFreeBlockLow = 2
	}
	if c.WearDelta <= 0 {
		c.WearDelta = 8
	}
	if c.StripesPerChannel <= 0 {
		c.StripesPerChannel = 8
	}
	if c.ReadRetries <= 0 {
		c.ReadRetries = 3
	}
	if c.ProgramRetries <= 0 {
		c.ProgramRetries = 3
	}
}

// Stats aggregates FTL activity.
type Stats struct {
	HostWrites   int64 // pages written by callers
	GCWrites     int64 // pages moved by garbage collection
	GCRuns       int64
	Erases       int64
	Translations int64
	ReadRetries  int64 // transient read failures reissued
	ProgramFails int64 // program failures recovered by re-staging
	BadBlocks    int64 // blocks retired since construction or Reset
	DeadDies     int64 // dies marked dead since construction or Reset
}

// WriteAmplification returns (host + GC writes) / host writes.
func (s Stats) WriteAmplification() float64 {
	if s.HostWrites == 0 {
		return 0
	}
	return float64(s.HostWrites+s.GCWrites) / float64(s.HostWrites)
}

// counters is the internal, atomically updated form of Stats, so hot-path
// accounting needs no lock at all and never extends a critical section.
type counters struct {
	hostWrites   atomic.Int64
	gcWrites     atomic.Int64
	gcRuns       atomic.Int64
	erases       atomic.Int64
	translations atomic.Int64
	readRetries  atomic.Int64
	programFails atomic.Int64
	badBlocks    atomic.Int64
	deadDies     atomic.Int64
}

// dieState tracks one die's free-block pool and active (partially
// programmed) block within a channel.
type dieState struct {
	freeBlocks  []flash.BlockID
	activeBlock flash.BlockID
	nextPage    int // next free page index within activeBlock
	hasActive   bool
	// dead marks a die that failed permanently (flash.ErrDieDead): the
	// allocator skips it and GC never picks its blocks, so the channel
	// degrades to its surviving dies instead of erroring out.
	dead bool
}

// channelShard is the per-channel lock domain: the die allocators, the
// round-robin cursor, the per-block in-flight program counts, and (by
// convention, see FTL) the reverse-map entries of every physical page on
// the channel. Striping consecutive writes across dies is what lets both
// reads and programs exploit die-level parallelism behind one channel
// bus. The shard is deliberately NOT held across the device's
// Program/Erase calls: the bus transfer and the die-local cell-program
// occupy the device's own sim.Servers, so programs to different dies of
// one channel overlap in simulated time and concurrent writers overlap in
// wall-clock time (see Write).
type channelShard struct {
	mu       sync.Mutex
	dies     []dieState
	rr       int
	inflight int // programs staged on this channel, not yet committed
	// usedList holds this channel's blocks ever taken from a free pool
	// (see FTL.usedBlocks), in first-use order.
	usedList []flash.BlockID
	// badList holds this channel's retired blocks (see FTL.bad), in
	// retirement order — the bad-block table's Reset journal.
	badList []flash.BlockID
}

// freeTotal counts the pooled free blocks the allocator can actually
// use: dead dies' pools are unreachable, so they do not count.
func (cs *channelShard) freeTotal() int {
	n := 0
	for i := range cs.dies {
		if cs.dies[i].dead {
			continue
		}
		n += len(cs.dies[i].freeBlocks)
	}
	return n
}

// mappingStripe is one lock stripe of the mapping table, padded out so
// adjacent stripes do not share a cache line (the striped-lock layout
// conventional in sharded stores). dirty lists the stripe's table entries
// that have diverged from the zero value, in first-dirty order; Reset
// walks it so a reset costs O(entries written), not O(logical pages).
type mappingStripe struct {
	mu    sync.Mutex
	dirty []LPA
	_     [32]byte
}

// FTL is the flash translation layer. It owns the device's block
// allocation, the logical-to-physical mapping table, and the TEE ID bits.
//
// FTL is safe for concurrent use under a sharded, two-level lock
// hierarchy (PR 1's single coarse mutex is gone):
//
//   - A mapping stripe (stripes[l % S], S = Channels*StripesPerChannel)
//     guards the table entry of LPA l: its PPA, ID bits, and valid bit.
//     Translations, permission checks, and the fused translate+read
//     critical sections hold only the stripe.
//   - A channel shard (chans[ch]) guards the channel's allocator state,
//     its garbage collection, and the reverse-map entries of its physical
//     pages. Writes and GC hold the shard of the one channel involved.
//
// Because pickChannel is static (l mod Channels) and S is a multiple of
// Channels, every stripe's LPAs live on exactly one channel, and an LPA's
// pages never migrate across channels — so each operation touches one
// shard and one stripe, and tenants pinned to different channels share no
// FTL lock. The flash.Device below is sharded by channel the same way,
// so cross-channel tenants share no lock at ANY layer of the stack: an
// operation's whole lock footprint (shard, stripe, device channel) lives
// on its one channel.
//
// Lock order: channel shard first, then mapping stripe; stripe holders
// never acquire a shard. The write path is pipelined in three phases
// (stage / program / commit): stage holds the shard to run GC and
// allocate a page, marking the page's block as carrying an in-flight
// program; the device Program then runs with NO FTL lock held, so
// programs to different dies of one channel overlap in simulated time
// and concurrent writers to one channel overlap in wall-clock time;
// commit re-takes the shard (retiring the in-flight marker and updating
// the reverse map) and then the stripe for the mapping update. GC takes
// the stripes of relocated LPAs one at a time — only readers can hold
// those, and readers never wait on a shard, so the hierarchy is acyclic —
// and skips any block with an in-flight program. Readers take only their
// stripe, which excludes GC from relocating that page mid-read and pins
// the PPA the stream-cipher IV binds to.
type FTL struct {
	dev *flash.Device
	geo flash.Geometry
	cfg Config

	stripes []mappingStripe
	table   []entry // entry l guarded by stripes[l % len(stripes)]
	reverse []LPA   // PPA -> LPA for GC; entry guarded by its channel's shard
	chans   []channelShard
	// pending[b] counts programs staged on block b whose device call is
	// still in flight outside the shard; GC must not pick such a block as
	// a victim (its pages look free or lack reverse mappings until the
	// writer commits). Guarded by the block's channel shard.
	pending []int32
	// usedBlocks[b] marks blocks ever taken from a free pool — only their
	// reverse-map slots and pending counts can have diverged from fresh.
	// Guarded by the block's channel shard, like reverse and pending; the
	// per-shard usedList drives Reset.
	usedBlocks []bool
	// bad[b] marks retired blocks: a program on b failed permanently, so
	// the allocator never re-activates it and GC never erases it. Valid
	// pages already on a bad block stay readable (read-only retirement).
	// Guarded by the block's channel shard; the per-shard badList drives
	// Reset.
	bad []bool

	logicalPages int64
	stats        counters
}

// programHook, when non-nil, runs immediately before each write-path
// device program, after every FTL lock has been released. Tests use it to
// pin the pipelining contract that no shard is held across device calls.
var programHook func(ch int)

// invalidLPA marks an unused reverse-map slot.
const invalidLPA = ^LPA(0)

// New builds an FTL over dev. Every block starts free.
func New(dev *flash.Device, cfg Config) *FTL {
	cfg.applyDefaults()
	geo := dev.Geometry()
	logical := int64(float64(geo.TotalPages()) * (1 - cfg.OverProvision))
	f := &FTL{
		dev:          dev,
		geo:          geo,
		cfg:          cfg,
		stripes:      make([]mappingStripe, geo.Channels*cfg.StripesPerChannel),
		table:        make([]entry, logical),
		reverse:      make([]LPA, geo.TotalPages()),
		chans:        make([]channelShard, geo.Channels),
		pending:      make([]int32, geo.TotalBlocks()),
		usedBlocks:   make([]bool, geo.TotalBlocks()),
		bad:          make([]bool, geo.TotalBlocks()),
		logicalPages: logical,
	}
	for i := range f.reverse {
		f.reverse[i] = invalidLPA
	}
	diesPerChannel := geo.ChipsPerChannel * geo.DiesPerChip
	for ch := range f.chans {
		f.chans[ch].dies = make([]dieState, diesPerChannel)
	}
	f.distributeBlocks()
	return f
}

// distributeBlocks fills every die's free-block pool with the full block
// population in ascending BlockID order — the allocation order New
// establishes, reproduced exactly on Reset so a recycled FTL allocates
// block-for-block like a fresh one. Pool slices are reused in place.
// Caller must own the FTL exclusively (construction or a quiesced Reset).
func (f *FTL) distributeBlocks() {
	for ch := range f.chans {
		cs := &f.chans[ch]
		for i := range cs.dies {
			cs.dies[i].freeBlocks = cs.dies[i].freeBlocks[:0]
		}
	}
	diesPerChannel := f.geo.ChipsPerChannel * f.geo.DiesPerChip
	for b := flash.BlockID(0); int64(b) < f.geo.TotalBlocks(); b++ {
		first := f.geo.FirstPage(b)
		ch := f.geo.ChannelOf(first)
		die := f.geo.DieIndex(first) % diesPerChannel
		ds := &f.chans[ch].dies[die]
		ds.freeBlocks = append(ds.freeBlocks, b)
	}
}

// LogicalPages returns the number of LPAs exposed.
func (f *FTL) LogicalPages() int64 { return f.logicalPages }

// LogicalBytes returns the logical capacity in bytes.
func (f *FTL) LogicalBytes() int64 { return f.logicalPages * int64(f.geo.PageSize) }

// Device returns the underlying flash device.
func (f *FTL) Device() *flash.Device { return f.dev }

// Stripes returns the number of mapping-table lock stripes.
func (f *FTL) Stripes() int { return len(f.stripes) }

// ChannelOf returns the flash channel every access to l lands on — the
// write-path channel (pickChannel) and, because a mapping stripe never
// spans channels, the stripe's channel too. It is the shard-affinity tag
// for l: events confined to one LPA range with one ChannelOf value touch
// channel-local device and mapping state only, so the parallel replay
// engine may place them on that channel's event shard.
func (f *FTL) ChannelOf(l LPA) int { return f.pickChannel(l) }

// Stats returns a consistent-enough snapshot of the activity counters
// (each counter is atomic; the snapshot is not a cross-counter barrier).
func (f *FTL) Stats() Stats {
	return Stats{
		HostWrites:   f.stats.hostWrites.Load(),
		GCWrites:     f.stats.gcWrites.Load(),
		GCRuns:       f.stats.gcRuns.Load(),
		Erases:       f.stats.erases.Load(),
		Translations: f.stats.translations.Load(),
		ReadRetries:  f.stats.readRetries.Load(),
		ProgramFails: f.stats.programFails.Load(),
		BadBlocks:    f.stats.badBlocks.Load(),
		DeadDies:     f.stats.deadDies.Load(),
	}
}

func (f *FTL) checkLPA(l LPA) error {
	if int64(l) >= f.logicalPages {
		return fmt.Errorf("ftl: LPA %d out of range (%d logical pages)", l, f.logicalPages)
	}
	return nil
}

// stripeOf maps an LPA to its mapping-table lock stripe. len(f.stripes) is
// a multiple of the channel count, so stripeOf(l) % Channels ==
// pickChannel(l): a stripe never spans channels.
func (f *FTL) stripeOf(l LPA) *mappingStripe {
	return &f.stripes[uint32(l)%uint32(len(f.stripes))]
}

// Translate returns the physical page backing l. It does not check ID
// bits; use TranslateFor on the TEE path.
func (f *FTL) Translate(l LPA) (flash.PPA, error) {
	if err := f.checkLPA(l); err != nil {
		return flash.InvalidPPA, err
	}
	st := f.stripeOf(l)
	st.mu.Lock()
	defer st.mu.Unlock()
	f.stats.translations.Add(1)
	e := f.table[l]
	if !e.valid {
		return flash.InvalidPPA, ErrUnmapped
	}
	return e.ppa, nil
}

// TranslateFor is the permission-checked translation used by in-storage
// TEEs reading the shared mapping table: the entry's ID bits must match the
// caller's TEE ID (paper §4.3).
func (f *FTL) TranslateFor(l LPA, id TEEID) (flash.PPA, error) {
	if err := f.checkLPA(l); err != nil {
		return flash.InvalidPPA, err
	}
	st := f.stripeOf(l)
	st.mu.Lock()
	defer st.mu.Unlock()
	f.stats.translations.Add(1)
	e := f.table[l]
	if !e.valid {
		return flash.InvalidPPA, ErrUnmapped
	}
	if e.id != id {
		return flash.InvalidPPA, fmt.Errorf("%w: LPA %d owned by ID %d, caller ID %d", ErrAccessDenied, l, e.id, id)
	}
	return e.ppa, nil
}

// IDOf returns the TEE ID bits of l's entry.
func (f *FTL) IDOf(l LPA) (TEEID, error) {
	if err := f.checkLPA(l); err != nil {
		return IDNone, err
	}
	st := f.stripeOf(l)
	st.mu.Lock()
	defer st.mu.Unlock()
	return f.table[l].id, nil
}

// SetID sets the ID bits of l's entry. This is the FTL half of the
// runtime's SetIDBits API and runs in the secure world.
func (f *FTL) SetID(l LPA, id TEEID) error {
	if err := f.checkLPA(l); err != nil {
		return err
	}
	if id > MaxTEEID {
		return fmt.Errorf("ftl: TEE ID %d exceeds 4 bits", id)
	}
	st := f.stripeOf(l)
	st.mu.Lock()
	defer st.mu.Unlock()
	f.markDirty(st, l)
	f.table[l].id = id
	return nil
}

// ClaimID stamps id into l's entry only if the entry is unowned (or
// already carries id) — the check and the stamp are atomic under l's
// stripe, so two TEEs racing to claim one LPA cannot both win. SetID
// remains the unconditional secure-world override.
func (f *FTL) ClaimID(l LPA, id TEEID) error {
	if err := f.checkLPA(l); err != nil {
		return err
	}
	if id > MaxTEEID {
		return fmt.Errorf("ftl: TEE ID %d exceeds 4 bits", id)
	}
	st := f.stripeOf(l)
	st.mu.Lock()
	defer st.mu.Unlock()
	if cur := f.table[l].id; cur != IDNone && cur != id {
		return fmt.Errorf("%w: LPA %d held by ID %d", ErrOwned, l, cur)
	}
	f.markDirty(st, l)
	f.table[l].id = id
	return nil
}

// ClearIDs resets the ID bits of every entry owned by id back to IDNone,
// used when a TEE terminates and its ID is recycled. It sweeps the table
// one stripe at a time, so concurrent tenants on other stripes keep
// translating while a neighbour is torn down.
func (f *FTL) ClearIDs(id TEEID) {
	stripeCount := LPA(len(f.stripes))
	for s := range f.stripes {
		st := &f.stripes[s]
		st.mu.Lock()
		for l := LPA(s); int64(l) < f.logicalPages; l += stripeCount {
			if f.table[l].id == id {
				f.table[l].id = IDNone
			}
		}
		st.mu.Unlock()
	}
}

// readRetry issues a device read, reissuing up to ReadRetries times on
// flash.ErrTransientRead; each retry starts at the failed attempt's
// completion time, so the retry latency lands on the virtual clock. Any
// other error (including flash.ErrDieDead) surfaces immediately.
func (f *FTL) readRetry(at sim.Time, ppa flash.PPA) (done sim.Time, data []byte, err error) {
	done, data, err = f.dev.Read(at, ppa)
	for r := 0; r < f.cfg.ReadRetries && errors.Is(err, flash.ErrTransientRead); r++ {
		f.stats.readRetries.Add(1)
		done, data, err = f.dev.Read(done, ppa)
	}
	return done, data, err
}

// Read translates and reads l, returning the completion time and payload.
// Translation and the device read happen under l's mapping stripe, so a
// concurrent GC pass (which takes the stripe before relocating a page)
// cannot move the page between the two. Transient read faults are
// retried up to Config.ReadRetries times before surfacing.
func (f *FTL) Read(at sim.Time, l LPA) (done sim.Time, data []byte, err error) {
	if err := f.checkLPA(l); err != nil {
		return at, nil, err
	}
	st := f.stripeOf(l)
	st.mu.Lock()
	defer st.mu.Unlock()
	f.stats.translations.Add(1)
	e := f.table[l]
	if !e.valid {
		return at, nil, ErrUnmapped
	}
	return f.readRetry(at, e.ppa)
}

// ReadFor is the TEE data-path read: the permission-checked translation of
// TranslateFor fused with the device read under l's mapping stripe, so the
// returned payload and PPA (which binds the stream-cipher IV) are
// consistent even while other tenants write and trigger GC relocation.
// The ownership re-check does not count as a translation — the runtime
// already charged one through ReadMappingEntry; this is the same lookup
// revalidated at use time.
func (f *FTL) ReadFor(at sim.Time, l LPA, id TEEID) (done sim.Time, ppa flash.PPA, data []byte, err error) {
	if err := f.checkLPA(l); err != nil {
		return at, flash.InvalidPPA, nil, err
	}
	st := f.stripeOf(l)
	st.mu.Lock()
	defer st.mu.Unlock()
	e := f.table[l]
	if !e.valid {
		return at, flash.InvalidPPA, nil, ErrUnmapped
	}
	if e.id != id {
		return at, flash.InvalidPPA, nil,
			fmt.Errorf("%w: LPA %d owned by ID %d, caller ID %d", ErrAccessDenied, l, e.id, id)
	}
	done, data, err = f.readRetry(at, e.ppa)
	return done, e.ppa, data, err
}

// Write performs an out-of-place write of l: it allocates a fresh page
// (running GC first if the target channel is short on free blocks),
// programs it, invalidates the old page, and updates the mapping. The ID
// bits of the entry are preserved across rewrites.
//
// Locking: the write is pipelined — stage under the channel shard,
// device program with no FTL lock, commit under shard then stripe — so
// the die-local cell-program time never extends any FTL critical section.
//
// A program failing with flash.ErrProgramFail retires the block to the
// bad-block table and re-stages the write to a fresh block (up to
// Config.ProgramRetries times, each attempt starting at the failed one's
// completion time); flash.ErrDieDead retires the whole die the same way.
func (f *FTL) Write(at sim.Time, l LPA, data []byte) (done sim.Time, err error) {
	if err := f.checkLPA(l); err != nil {
		return at, err
	}
	ch := f.pickChannel(l)
	for attempt := 0; ; attempt++ {
		ppa, issueAt, err := f.stage(at, ch)
		if err != nil {
			return at, err
		}
		if programHook != nil {
			programHook(ch)
		}
		done, err = f.dev.Program(issueAt, ppa, data)
		if err != nil {
			f.abandon(ch, ppa)
			next, retry := f.recoverProgram(err, ch, ppa, done, attempt)
			if !retry {
				return at, err
			}
			at = next
			continue
		}
		if err := f.commit(l, ch, ppa); err != nil {
			return done, err
		}
		return done, nil
	}
}

// WriteFor is the TEE data-path write: the §4.3 ownership check, the
// mapping update, and the ID stamping of a newly adopted page happen
// under l's mapping stripe at commit time, so two TEEs racing on an
// unowned LPA cannot both claim it. owner reports the entry's pre-commit
// owner; adopted reports whether the entry was unowned and has been
// stamped with id.
//
// A denied write is rejected on a stripe-only fast path before the
// channel shard (and any GC it would imply) is touched; ownership is
// re-verified under the stripe at commit, because it can change while the
// program is in flight. In that rare race the page is already on the die,
// so it is invalidated for GC to reclaim and the write is denied — the
// pipelined analogue of the old inside-the-lock denial.
func (f *FTL) WriteFor(at sim.Time, l LPA, data []byte, id TEEID) (done sim.Time, owner TEEID, adopted bool, err error) {
	if err := f.checkLPA(l); err != nil {
		return at, IDNone, false, err
	}
	st := f.stripeOf(l)
	st.mu.Lock()
	owner = f.table[l].id
	st.mu.Unlock()
	if owner != id && owner != IDNone {
		return at, owner, false, fmt.Errorf("%w: LPA %d owned by %d", ErrAccessDenied, l, owner)
	}
	ch := f.pickChannel(l)
	for attempt := 0; ; attempt++ {
		ppa, issueAt, err := f.stage(at, ch)
		if err != nil {
			return at, owner, false, err
		}
		if programHook != nil {
			programHook(ch)
		}
		done, err = f.dev.Program(issueAt, ppa, data)
		if err != nil {
			f.abandon(ch, ppa)
			next, retry := f.recoverProgram(err, ch, ppa, done, attempt)
			if !retry {
				return at, owner, false, err
			}
			at = next
			continue
		}
		owner, adopted, err = f.commitFor(l, ch, ppa, id)
		if err != nil {
			return done, owner, false, err
		}
		return done, owner, adopted, nil
	}
}

// stage reserves a write's physical page under ch's shard: run GC if the
// channel is short on free blocks, allocate the next page, and mark its
// block as carrying an in-flight program so GC leaves the block alone
// while the device call proceeds outside the shard. It returns the issue
// time, delayed past any GC the allocation forced.
//
// A full-device verdict while the channel has in-flight programs is not
// final: the blocks GC had to skip become victims as soon as their
// writers commit, so stage yields and retries instead of surfacing a
// spurious ErrDeviceFull. Single-goroutine callers never see a retry —
// with no concurrent writer, inflight is always zero here.
func (f *FTL) stage(at sim.Time, ch int) (flash.PPA, sim.Time, error) {
	cs := &f.chans[ch]
	for {
		cs.mu.Lock()
		newAt, err := f.ensureFree(at, ch)
		if err == nil {
			var ppa flash.PPA
			ppa, err = f.allocate(ch)
			if err == nil {
				f.pending[f.geo.BlockOf(ppa)]++
				cs.inflight++
				cs.mu.Unlock()
				return ppa, newAt, nil
			}
		}
		retry := errors.Is(err, ErrDeviceFull) && cs.inflight > 0
		cs.mu.Unlock()
		if !retry {
			return flash.InvalidPPA, at, err
		}
		runtime.Gosched()
	}
}

// abandon retires the in-flight marker of a staged program the device
// rejected. The allocated page stays unprogrammed; GC reclaims it with
// the rest of its block.
func (f *FTL) abandon(ch int, ppa flash.PPA) {
	cs := &f.chans[ch]
	cs.mu.Lock()
	f.pending[f.geo.BlockOf(ppa)]--
	cs.inflight--
	cs.mu.Unlock()
}

// recoverProgram classifies a write-path program failure. For the two
// recoverable fault classes it retires the faulty unit (the block for a
// program failure, the whole die for a die death) and reports the
// virtual time the next staging attempt should start at; any other
// error, or an exhausted retry budget, surfaces to the caller.
func (f *FTL) recoverProgram(err error, ch int, ppa flash.PPA, failDone sim.Time, attempt int) (sim.Time, bool) {
	if attempt >= f.cfg.ProgramRetries {
		return 0, false
	}
	b := f.geo.BlockOf(ppa)
	switch {
	case errors.Is(err, flash.ErrProgramFail):
		f.stats.programFails.Add(1)
		cs := &f.chans[ch]
		cs.mu.Lock()
		f.retireLocked(cs, b)
		cs.mu.Unlock()
		return failDone, true
	case errors.Is(err, flash.ErrDieDead):
		cs := &f.chans[ch]
		cs.mu.Lock()
		f.killDieLocked(cs, f.dieOf(b))
		cs.mu.Unlock()
		return failDone, true
	}
	return 0, false
}

// retireLocked moves b to the bad-block table: the allocator drops it as
// an active block and GC never selects it again. Valid pages already on
// b remain mapped and readable. Caller holds cs, b's channel shard.
func (f *FTL) retireLocked(cs *channelShard, b flash.BlockID) {
	if f.bad[b] {
		return
	}
	f.bad[b] = true
	cs.badList = append(cs.badList, b)
	f.stats.badBlocks.Add(1)
	ds := &cs.dies[f.dieOf(b)]
	if ds.hasActive && ds.activeBlock == b {
		ds.hasActive = false
	}
}

// killDieLocked marks a die permanently dead: the allocator skips it,
// its free pool stops counting toward freeTotal, and GC never picks its
// blocks. Caller holds cs, the die's channel shard.
func (f *FTL) killDieLocked(cs *channelShard, die int) {
	ds := &cs.dies[die]
	if ds.dead {
		return
	}
	ds.dead = true
	ds.hasActive = false
	f.stats.deadDies.Add(1)
}

// commit publishes a programmed page: under the shard it retires the
// in-flight marker and the old page's reverse mapping, under l's stripe
// it swaps the mapping entry (preserving the ID bits) and invalidates the
// superseded page. Lock order shard -> stripe, the one place both levels
// are held together.
func (f *FTL) commit(l LPA, ch int, ppa flash.PPA) error {
	cs := &f.chans[ch]
	cs.mu.Lock()
	defer cs.mu.Unlock()
	f.pending[f.geo.BlockOf(ppa)]--
	cs.inflight--
	st := f.stripeOf(l)
	st.mu.Lock()
	defer st.mu.Unlock()
	return f.remap(l, ppa)
}

// commitFor is commit with the §4.3 ownership re-check and adoption
// stamp. A denial discovered here (the entry changed hands mid-program)
// invalidates the freshly programmed page so GC can reclaim it.
func (f *FTL) commitFor(l LPA, ch int, ppa flash.PPA, id TEEID) (owner TEEID, adopted bool, err error) {
	cs := &f.chans[ch]
	cs.mu.Lock()
	defer cs.mu.Unlock()
	f.pending[f.geo.BlockOf(ppa)]--
	cs.inflight--
	st := f.stripeOf(l)
	st.mu.Lock()
	defer st.mu.Unlock()
	owner = f.table[l].id
	if owner != id && owner != IDNone {
		if ierr := f.dev.Invalidate(ppa); ierr != nil {
			return owner, false, ierr
		}
		return owner, false, fmt.Errorf("%w: LPA %d owned by %d", ErrAccessDenied, l, owner)
	}
	if err := f.remap(l, ppa); err != nil {
		return owner, false, err
	}
	if owner == IDNone {
		f.table[l].id = id
		adopted = true
	}
	return owner, adopted, nil
}

// markDirty records that l's table entry has diverged from the zero
// value, entering it in its stripe's reset list once. Caller holds st,
// which must be l's stripe.
func (f *FTL) markDirty(st *mappingStripe, l LPA) {
	if !f.table[l].dirty {
		f.table[l].dirty = true
		st.dirty = append(st.dirty, l)
	}
}

// remap points l at its freshly programmed page and retires the old one.
// Caller holds ch's shard and l's stripe.
func (f *FTL) remap(l LPA, ppa flash.PPA) error {
	old := f.table[l]
	if old.valid {
		if err := f.dev.Invalidate(old.ppa); err != nil {
			return err
		}
		f.reverse[old.ppa] = invalidLPA
	}
	f.markDirty(f.stripeOf(l), l)
	f.table[l] = entry{ppa: ppa, id: old.id, valid: true, dirty: true}
	f.reverse[ppa] = l
	f.stats.hostWrites.Add(1)
	return nil
}

// pickChannel stripes logical pages across channels for parallelism. It
// is static on purpose: an LPA's pages live on one channel forever, which
// is what keeps the stripe and shard lock domains disjoint per operation.
func (f *FTL) pickChannel(l LPA) int { return int(uint32(l) % uint32(f.geo.Channels)) }

// allocate hands out the next free page in ch, round-robining across the
// channel's dies so consecutive writes stripe over die-level parallelism.
// Within a die, allocation prefers the least-worn free block once wear
// spread exceeds WearDelta. Caller holds the channel shard.
func (f *FTL) allocate(ch int) (flash.PPA, error) {
	cs := &f.chans[ch]
	n := len(cs.dies)
	for tries := 0; tries < n; tries++ {
		ds := &cs.dies[cs.rr%n]
		cs.rr++
		if ds.dead {
			continue
		}
		if !ds.hasActive || ds.nextPage >= f.geo.PagesPerBlock {
			if len(ds.freeBlocks) == 0 {
				continue // die exhausted; try the next one
			}
			idx := f.pickFreeBlock(ds)
			ds.activeBlock = ds.freeBlocks[idx]
			ds.freeBlocks = append(ds.freeBlocks[:idx], ds.freeBlocks[idx+1:]...)
			ds.nextPage = 0
			ds.hasActive = true
			if !f.usedBlocks[ds.activeBlock] {
				f.usedBlocks[ds.activeBlock] = true
				cs.usedList = append(cs.usedList, ds.activeBlock)
			}
		}
		ppa := f.geo.FirstPage(ds.activeBlock) + flash.PPA(ds.nextPage)
		ds.nextPage++
		return ppa, nil
	}
	return flash.InvalidPPA, ErrDeviceFull
}

// pickFreeBlock implements the wear-leveling allocation policy: normally
// FIFO, but when the erase-count spread across the die's free pool
// exceeds WearDelta, pick the least-worn block so cold blocks absorb new
// writes. Caller holds the channel shard.
func (f *FTL) pickFreeBlock(ds *dieState) int {
	minIdx, minE, maxE := 0, int(^uint(0)>>1), 0
	for i, b := range ds.freeBlocks {
		e := f.dev.EraseCount(b)
		if e < minE {
			minE, minIdx = e, i
		}
		if e > maxE {
			maxE = e
		}
	}
	if maxE-minE > f.cfg.WearDelta {
		return minIdx
	}
	return 0
}

// ensureFree runs garbage collection on ch until its free pool is above
// the low-water mark or no further space can be reclaimed. Caller holds
// the channel shard but no mapping stripe (GC takes stripes itself).
func (f *FTL) ensureFree(at sim.Time, ch int) (sim.Time, error) {
	for f.chans[ch].freeTotal() < f.cfg.GCFreeBlockLow {
		done, reclaimed, err := f.collectChannel(at, ch)
		if err != nil {
			return at, err
		}
		if !reclaimed {
			if f.chans[ch].freeTotal() == 0 {
				return at, ErrDeviceFull
			}
			break
		}
		at = done
	}
	return at, nil
}

// collectChannel performs one greedy GC pass on ch: pick the non-free,
// non-active block with the fewest valid pages, relocate them, erase it.
// Caller holds the channel shard; each live page's relocation takes that
// page's mapping stripe, so a concurrent reader of the same LPA either
// completes its device read before the move or observes the new PPA.
func (f *FTL) collectChannel(at sim.Time, ch int) (done sim.Time, reclaimed bool, err error) {
	victim, ok := f.pickVictim(ch)
	if !ok {
		return at, false, nil
	}
	f.stats.gcRuns.Add(1)
	// Relocate live pages.
	first := f.geo.FirstPage(victim)
	for i := 0; i < f.geo.PagesPerBlock; i++ {
		src := first + flash.PPA(i)
		if f.dev.State(src) != flash.PageValid {
			continue
		}
		l := f.reverse[src]
		if l == invalidLPA {
			return at, false, fmt.Errorf("ftl: valid page %d with no reverse mapping", src)
		}
		at, err = f.relocate(at, src, l, ch)
		if err != nil {
			return at, false, err
		}
	}
	done, err = f.dev.Erase(at, victim)
	if err != nil {
		if errors.Is(err, flash.ErrDieDead) {
			// The die died under the erase: retire it and report "nothing
			// reclaimed" instead of failing the write that triggered GC —
			// the caller degrades to the surviving dies.
			f.killDieLocked(&f.chans[ch], f.dieOf(victim))
			return at, false, nil
		}
		return at, false, err
	}
	f.stats.erases.Add(1)
	die := f.dieOf(victim)
	ds := &f.chans[ch].dies[die]
	ds.freeBlocks = append(ds.freeBlocks, victim)
	return done, true, nil
}

// relocate moves one live page (src, mapped by l) to a fresh page on the
// same channel, under l's mapping stripe. Caller holds the channel shard.
// Unlike the pipelined write path, GC keeps the shard across its device
// calls on purpose: it is the allocator's own maintenance pass, it must
// see a frozen allocator while it rewrites reverse mappings, and its
// programs target the active block, which concurrent writers on this
// channel are blocked from staging into anyway.
func (f *FTL) relocate(at sim.Time, src flash.PPA, l LPA, ch int) (sim.Time, error) {
	st := f.stripeOf(l)
	st.mu.Lock()
	defer st.mu.Unlock()
	readDone, data, err := f.readRetry(at, src)
	if err != nil {
		return at, err
	}
	cs := &f.chans[ch]
	for attempt := 0; ; attempt++ {
		dst, err := f.allocate(ch)
		if err != nil {
			return at, err
		}
		progDone, err := f.dev.Program(readDone, dst, data)
		if err != nil {
			// Same recovery as the write path, but the shard is already
			// held, so retire/kill in place and re-allocate.
			if attempt < f.cfg.ProgramRetries {
				switch {
				case errors.Is(err, flash.ErrProgramFail):
					f.stats.programFails.Add(1)
					f.retireLocked(cs, f.geo.BlockOf(dst))
					readDone = progDone
					continue
				case errors.Is(err, flash.ErrDieDead):
					f.killDieLocked(cs, f.dieOf(f.geo.BlockOf(dst)))
					continue
				}
			}
			return at, err
		}
		if err := f.dev.Invalidate(src); err != nil {
			return at, err
		}
		f.reverse[src] = invalidLPA
		f.reverse[dst] = l
		f.table[l].ppa = dst
		f.stats.gcWrites.Add(1)
		return progDone, nil
	}
}

// dieOf returns the channel-local die index of a block.
func (f *FTL) dieOf(b flash.BlockID) int {
	return f.geo.DieIndex(f.geo.FirstPage(b)) % (f.geo.ChipsPerChannel * f.geo.DiesPerChip)
}

// pickVictim selects the channel's fullest-of-invalid block: the non-free,
// non-active block with the fewest valid pages, requiring at least one
// invalid page so the erase reclaims space. Blocks with in-flight programs
// (staged by a writer that has released the shard) are skipped — their
// pages look free or lack reverse mappings until the writer commits. Ties
// break toward the least-erased block, which rotates erases evenly across
// the channel instead of hammering the lowest-numbered fully-invalid
// block. Caller holds the channel shard.
func (f *FTL) pickVictim(ch int) (flash.BlockID, bool) {
	cs := &f.chans[ch]
	skip := make(map[flash.BlockID]bool)
	for i := range cs.dies {
		ds := &cs.dies[i]
		for _, b := range ds.freeBlocks {
			skip[b] = true
		}
		if ds.hasActive {
			skip[ds.activeBlock] = true
		}
	}
	best := flash.BlockID(-1)
	bestValid := f.geo.PagesPerBlock + 1
	bestErase := int(^uint(0) >> 1)
	for b := flash.BlockID(0); int64(b) < f.geo.TotalBlocks(); b++ {
		if f.geo.ChannelOf(f.geo.FirstPage(b)) != ch {
			continue
		}
		if skip[b] || f.pending[b] > 0 || f.bad[b] || cs.dies[f.dieOf(b)].dead {
			continue
		}
		valid := f.dev.ValidPages(b)
		if valid >= f.geo.PagesPerBlock { // nothing reclaimable
			continue
		}
		erase := f.dev.EraseCount(b)
		if valid < bestValid || (valid == bestValid && erase < bestErase) {
			best, bestValid, bestErase = b, valid, erase
		}
	}
	return best, best >= 0
}

// FreeBlocks returns the number of free blocks pooled on channel ch.
func (f *FTL) FreeBlocks(ch int) int {
	cs := &f.chans[ch]
	cs.mu.Lock()
	defer cs.mu.Unlock()
	return cs.freeTotal()
}

// ResetStats zeroes the activity counters while keeping all mapping and
// allocator state — the FTL half of the replay engine's post-setup seal,
// paired with flash.Device.ResetTiming so prepopulation writes leak into
// neither layer's measured statistics.
// BadBlocks and DeadDies mirror persistent retirement state, so only
// Reset (which clears that state) zeroes them.
func (f *FTL) ResetStats() {
	f.stats.hostWrites.Store(0)
	f.stats.gcWrites.Store(0)
	f.stats.gcRuns.Store(0)
	f.stats.erases.Store(0)
	f.stats.translations.Store(0)
	f.stats.readRetries.Store(0)
	f.stats.programFails.Store(0)
}

// Reset returns the FTL to its post-New state: an empty mapping table,
// full per-die free pools in construction order, no reverse mappings, no
// in-flight program markers, zero stats. The cost is proportional to the
// entries written and blocks used since construction (or the last Reset),
// not to the logical or physical capacity. The device below is NOT reset
// — pair with flash.Device.Reset, as the pool's recycle path does.
//
// Reset takes each stripe and shard lock in turn, but a concurrent
// operation could still observe a half-reset FTL, so the caller must own
// the FTL exclusively (quiesced); on the replay path the pool's
// exclusive resource handoff guarantees that.
func (f *FTL) Reset() {
	for s := range f.stripes {
		st := &f.stripes[s]
		st.mu.Lock()
		for _, l := range st.dirty {
			f.table[l] = entry{}
		}
		st.dirty = st.dirty[:0]
		st.mu.Unlock()
	}
	ppb := flash.PPA(f.geo.PagesPerBlock)
	for ch := range f.chans {
		cs := &f.chans[ch]
		cs.mu.Lock()
		for _, b := range cs.usedList {
			first := f.geo.FirstPage(b)
			for p := first; p < first+ppb; p++ {
				f.reverse[p] = invalidLPA
			}
			f.pending[b] = 0
			f.usedBlocks[b] = false
		}
		cs.usedList = cs.usedList[:0]
		for _, b := range cs.badList {
			f.bad[b] = false
		}
		cs.badList = cs.badList[:0]
		for i := range cs.dies {
			ds := &cs.dies[i]
			ds.activeBlock = 0
			ds.nextPage = 0
			ds.hasActive = false
			ds.dead = false
		}
		cs.rr = 0
		cs.inflight = 0
		cs.mu.Unlock()
	}
	f.distributeBlocks()
	f.ResetStats()
	f.stats.badBlocks.Store(0)
	f.stats.deadDies.Store(0)
}

// MaxEraseSpread returns max-min block erase counts, a wear-leveling
// quality metric.
func (f *FTL) MaxEraseSpread() int {
	minE, maxE := int(^uint(0)>>1), 0
	for b := flash.BlockID(0); int64(b) < f.geo.TotalBlocks(); b++ {
		e := f.dev.EraseCount(b)
		if e < minE {
			minE = e
		}
		if e > maxE {
			maxE = e
		}
	}
	return maxE - minE
}
