package ftl

import (
	"testing"

	"iceclave/internal/sim"
)

func TestMappingCacheSequentialScanMissRate(t *testing.T) {
	// A sequential scan should miss once per mapping page: with 512
	// entries per 4KB page the miss rate is ~1/512 = 0.195%, the order of
	// the 0.17% figure in paper §6.3.
	m := NewMappingCache(1<<20, 4096)
	if m.EntriesPerPage() != 512 {
		t.Fatalf("entries per page = %d, want 512", m.EntriesPerPage())
	}
	for l := LPA(0); l < 100_000; l++ {
		m.Lookup(l)
	}
	s := m.Stats()
	missRate := 1 - s.HitRate()
	if missRate < 0.001 || missRate > 0.003 {
		t.Fatalf("sequential scan miss rate = %v, want ~0.002", missRate)
	}
}

func TestMappingCacheThrashingWhenSmall(t *testing.T) {
	// Random lookups over a space far larger than the CMT must mostly miss.
	m := NewMappingCache(64*1024, 4096) // 16 mapping pages resident
	rng := sim.NewRNG(1)
	for i := 0; i < 50_000; i++ {
		m.Lookup(LPA(rng.Intn(1 << 22)))
	}
	if hr := m.Stats().HitRate(); hr > 0.1 {
		t.Fatalf("thrashing CMT hit rate = %v, want < 0.1", hr)
	}
}

func TestMappingCacheUpdateDirties(t *testing.T) {
	m := NewMappingCache(64*1024, 4096)
	m.Update(0)
	if hit := m.Lookup(0); !hit {
		t.Fatal("updated mapping page not resident")
	}
}

func TestMappingCacheResetStats(t *testing.T) {
	m := NewMappingCache(64*1024, 4096)
	m.Lookup(0)
	m.ResetStats()
	s := m.Stats()
	if s.Hits+s.Misses != 0 {
		t.Fatal("stats not cleared")
	}
	if !m.Lookup(0) {
		t.Fatal("residency lost on stats reset")
	}
}

func TestMissCostTotal(t *testing.T) {
	c := MissCost{WorldSwitch: 3800 * sim.Nanosecond, FlashFetch: 50 * sim.Microsecond}
	if c.Total() != 53800*sim.Nanosecond {
		t.Fatalf("total = %v", c.Total())
	}
}
