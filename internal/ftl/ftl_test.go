package ftl

import (
	"encoding/binary"
	"errors"
	"testing"
	"testing/quick"

	"iceclave/internal/flash"
	"iceclave/internal/sim"
)

func smallGeometry() flash.Geometry {
	return flash.Geometry{
		Channels:        2,
		ChipsPerChannel: 1,
		DiesPerChip:     1,
		PlanesPerDie:    1,
		BlocksPerPlane:  16,
		PagesPerBlock:   8,
		PageSize:        4096,
	}
}

func newTestFTL(t *testing.T) *FTL {
	t.Helper()
	dev, err := flash.NewDevice(smallGeometry(), flash.DefaultTiming())
	if err != nil {
		t.Fatal(err)
	}
	return New(dev, Config{})
}

func TestWriteReadRoundTrip(t *testing.T) {
	f := newTestFTL(t)
	data := make([]byte, 4096)
	copy(data, "hello flash")
	done, err := f.Write(0, 7, data)
	if err != nil {
		t.Fatal(err)
	}
	_, got, err := f.Read(done, 7)
	if err != nil {
		t.Fatal(err)
	}
	if string(got[:11]) != "hello flash" {
		t.Fatalf("read back %q", got[:11])
	}
}

func TestUnmappedRead(t *testing.T) {
	f := newTestFTL(t)
	if _, _, err := f.Read(0, 0); !errors.Is(err, ErrUnmapped) {
		t.Fatalf("err = %v, want ErrUnmapped", err)
	}
}

func TestRewriteInvalidatesOldPage(t *testing.T) {
	f := newTestFTL(t)
	f.Write(0, 3, []byte("v1"))
	p1, _ := f.Translate(3)
	f.Write(0, 3, []byte("v2"))
	p2, _ := f.Translate(3)
	if p1 == p2 {
		t.Fatal("rewrite did not move the page (out-of-place violated)")
	}
	if f.Device().State(p1) != flash.PageInvalid {
		t.Fatal("old page not invalidated")
	}
	_, got, err := f.Read(0, 3)
	if err != nil {
		t.Fatal(err)
	}
	if string(got[:2]) != "v2" {
		t.Fatalf("read back %q, want v2", got[:2])
	}
}

func TestIDBitsEnforced(t *testing.T) {
	f := newTestFTL(t)
	f.Write(0, 5, nil)
	if err := f.SetID(5, 3); err != nil {
		t.Fatal(err)
	}
	if _, err := f.TranslateFor(5, 3); err != nil {
		t.Fatalf("owner denied: %v", err)
	}
	if _, err := f.TranslateFor(5, 4); !errors.Is(err, ErrAccessDenied) {
		t.Fatalf("non-owner allowed: %v", err)
	}
	if _, err := f.TranslateFor(5, IDNone); !errors.Is(err, ErrAccessDenied) {
		t.Fatalf("unowned caller allowed: %v", err)
	}
}

func TestIDSurvivesRewriteAndGC(t *testing.T) {
	f := newTestFTL(t)
	f.Write(0, 2, nil)
	f.SetID(2, 7)
	f.Write(0, 2, nil) // rewrite
	if id, _ := f.IDOf(2); id != 7 {
		t.Fatalf("ID after rewrite = %d, want 7", id)
	}
}

func TestClearIDs(t *testing.T) {
	f := newTestFTL(t)
	f.Write(0, 1, nil)
	f.Write(0, 3, nil)
	f.SetID(1, 5)
	f.SetID(3, 5)
	f.ClearIDs(5)
	for _, l := range []LPA{1, 3} {
		if id, _ := f.IDOf(l); id != IDNone {
			t.Fatalf("LPA %d ID = %d after clear", l, id)
		}
	}
}

func TestSetIDValidation(t *testing.T) {
	f := newTestFTL(t)
	if err := f.SetID(0, 16); err == nil {
		t.Fatal("5-bit ID accepted")
	}
	if err := f.SetID(LPA(f.LogicalPages()), 1); err == nil {
		t.Fatal("out-of-range LPA accepted")
	}
}

func TestGCReclaimsSpace(t *testing.T) {
	f := newTestFTL(t)
	// Hammer a small set of LPAs far beyond one block's worth of pages so
	// GC must run.
	var at sim.Time
	for i := 0; i < 500; i++ {
		l := LPA(i % 4)
		done, err := f.Write(at, l, nil)
		if err != nil {
			t.Fatalf("write %d: %v", i, err)
		}
		at = done
	}
	if f.Stats().GCRuns == 0 {
		t.Fatal("GC never ran")
	}
	if f.Stats().Erases == 0 {
		t.Fatal("GC never erased")
	}
}

func TestReadYourWritesUnderGCProperty(t *testing.T) {
	// Property: for any random write workload (heavy overwrites forcing
	// GC), every LPA reads back the last value written to it.
	f := func(seed uint64) bool {
		dev, err := flash.NewDevice(smallGeometry(), flash.DefaultTiming())
		if err != nil {
			return false
		}
		fl := New(dev, Config{})
		rng := sim.NewRNG(seed)
		const lpas = 24
		shadow := make(map[LPA]uint64)
		var at sim.Time
		for i := 0; i < 400; i++ {
			l := LPA(rng.Intn(lpas))
			v := rng.Uint64()
			buf := make([]byte, 16)
			binary.LittleEndian.PutUint64(buf, v)
			done, err := fl.Write(at, l, buf)
			if err != nil {
				return false
			}
			at = done
			shadow[l] = v
			// Occasionally verify a random written LPA mid-stream.
			if i%17 == 0 {
				for probe, want := range shadow {
					_, got, err := fl.Read(at, probe)
					if err != nil || binary.LittleEndian.Uint64(got) != want {
						return false
					}
					break
				}
			}
		}
		for l, want := range shadow {
			_, got, err := fl.Read(at, l)
			if err != nil || binary.LittleEndian.Uint64(got) != want {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 10}); err != nil {
		t.Fatal(err)
	}
}

func TestWearLevelingBoundsSpread(t *testing.T) {
	f := newTestFTL(t)
	var at sim.Time
	for i := 0; i < 3000; i++ {
		done, err := f.Write(at, LPA(i%8), nil)
		if err != nil {
			t.Fatal(err)
		}
		at = done
	}
	// With wear-aware allocation the spread should stay well below the
	// total erase count of the hottest blocks.
	if spread := f.MaxEraseSpread(); spread > 40 {
		t.Fatalf("erase-count spread = %d, wear leveling ineffective", spread)
	}
}

func TestWriteAmplificationReported(t *testing.T) {
	f := newTestFTL(t)
	var at sim.Time
	for i := 0; i < 600; i++ {
		done, err := f.Write(at, LPA(i%6), nil)
		if err != nil {
			t.Fatal(err)
		}
		at = done
	}
	wa := f.Stats().WriteAmplification()
	if wa < 1.0 {
		t.Fatalf("write amplification = %v, must be >= 1", wa)
	}
}

func TestDeviceFillsToLogicalCapacity(t *testing.T) {
	f := newTestFTL(t)
	var at sim.Time
	for l := LPA(0); int64(l) < f.LogicalPages(); l++ {
		done, err := f.Write(at, l, nil)
		if err != nil {
			t.Fatalf("write of LPA %d within logical capacity failed: %v", l, err)
		}
		at = done
	}
	// All logical pages written once: every LPA still readable.
	for l := LPA(0); int64(l) < f.LogicalPages(); l += 13 {
		if _, err := f.Translate(l); err != nil {
			t.Fatalf("translate %d: %v", l, err)
		}
	}
}

func TestOverProvisionReservesSpace(t *testing.T) {
	f := newTestFTL(t)
	geo := smallGeometry()
	if f.LogicalPages() >= geo.TotalPages() {
		t.Fatal("no over-provisioning reserved")
	}
}
