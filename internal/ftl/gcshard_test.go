package ftl

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"iceclave/internal/flash"
	"iceclave/internal/sim"
)

// gcStormGeometry is small enough that a few rewrites per LPA force GC on
// every channel touched.
func gcStormGeometry(channels int) flash.Geometry {
	return flash.Geometry{
		Channels:        channels,
		ChipsPerChannel: 1,
		DiesPerChip:     1,
		PlanesPerDie:    1,
		BlocksPerPlane:  8,
		PagesPerBlock:   8,
		PageSize:        4096,
	}
}

// TestGCChannelIsolationUnderWriteStorm pins GC against the per-channel
// device sharding: one tenant hammers channel 0 with enough rewrite
// volume to run garbage collection continuously while writers storm every
// other channel. GC holds channel 0's FTL shard across its device reads,
// programs, and erases — with the device itself sharded per channel, none
// of that couples to the other channels' locks. Run under -race this
// exercises the FTL-shard → device-channel lock pairing from concurrent
// goroutines; the read-back and stats checks catch torn functional state.
func TestGCChannelIsolationUnderWriteStorm(t *testing.T) {
	geo := gcStormGeometry(4)
	dev, err := flash.NewDevice(geo, flash.DefaultTiming())
	if err != nil {
		t.Fatal(err)
	}
	f := New(dev, Config{})

	const rounds = 300
	var wg sync.WaitGroup
	errs := make(chan error, geo.Channels)
	for ch := 0; ch < geo.Channels; ch++ {
		wg.Add(1)
		go func(ch int) {
			defer wg.Done()
			// LPAs congruent to ch mod Channels all live on channel ch;
			// four live LPAs against an 8-block channel forces steady GC.
			lpas := [4]LPA{}
			for i := range lpas {
				lpas[i] = LPA(ch + i*geo.Channels)
			}
			at := sim.Time(0)
			for r := 0; r < rounds; r++ {
				l := lpas[r%len(lpas)]
				payload := []byte(fmt.Sprintf("ch%d r%d", ch, r))
				done, err := f.Write(at, l, payload)
				if err != nil {
					errs <- fmt.Errorf("ch %d write round %d: %w", ch, r, err)
					return
				}
				_, got, err := f.Read(done, l)
				if err != nil {
					errs <- fmt.Errorf("ch %d read round %d: %w", ch, r, err)
					return
				}
				if string(got[:len(payload)]) != string(payload) {
					errs <- fmt.Errorf("ch %d round %d: read %q, want %q", ch, r, got[:len(payload)], payload)
					return
				}
				at = done
			}
		}(ch)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}

	st := f.Stats()
	if st.GCRuns == 0 {
		t.Fatal("storm never triggered GC; shrink the geometry or grow rounds")
	}
	if want := int64(geo.Channels * rounds); st.HostWrites != want {
		t.Fatalf("host writes = %d, want %d", st.HostWrites, want)
	}
	// Functional state unchanged by the concurrency: every tenant's last
	// payload survives, and the device-side per-channel state agrees with
	// the mapping table (each channel holds exactly its live pages).
	for ch := 0; ch < geo.Channels; ch++ {
		for i := 0; i < 4; i++ {
			l := LPA(ch + i*geo.Channels)
			lastRound := rounds - 1 - (rounds-1-i)%4 // last r with r%4 == i
			want := fmt.Sprintf("ch%d r%d", ch, lastRound)
			_, got, err := f.Read(0, l)
			if err != nil {
				t.Fatalf("final read ch %d lpa %d: %v", ch, l, err)
			}
			if string(got[:len(want)]) != want {
				t.Fatalf("final read ch %d lpa %d = %q, want %q", ch, l, got[:len(want)], want)
			}
			ppa, err := f.Translate(l)
			if err != nil {
				t.Fatal(err)
			}
			if got := geo.ChannelOf(ppa); got != ch {
				t.Fatalf("LPA %d migrated to channel %d, want %d", l, got, ch)
			}
		}
	}
	for b, p := range f.pending {
		if p != 0 {
			t.Fatalf("block %d still has %d pending programs after quiescence", b, p)
		}
	}
}

// TestGCOnHostageChannelDoesNotBlockOthers wedges channel 0 — its FTL
// shard AND all its mapping stripes held hostage, which is exactly the
// lock footprint a channel-0 GC pass owns mid-relocation — and requires
// GC-forcing write storms on the other channels to run to completion.
// Before the device was sharded per channel, those storms' device calls
// (every program, erase, and GC read) would have queued behind anything
// channel 0 did at the device mutex; now they must not touch any
// channel-0 lock at any layer.
func TestGCOnHostageChannelDoesNotBlockOthers(t *testing.T) {
	geo := gcStormGeometry(2)
	dev, err := flash.NewDevice(geo, flash.DefaultTiming())
	if err != nil {
		t.Fatal(err)
	}
	f := New(dev, Config{})

	f.chans[0].mu.Lock()
	for s := range f.stripes {
		if s%geo.Channels == 0 {
			f.stripes[s].mu.Lock()
		}
	}
	release := func() {
		for s := range f.stripes {
			if s%geo.Channels == 0 {
				f.stripes[s].mu.Unlock()
			}
		}
		f.chans[0].mu.Unlock()
	}
	defer release()

	done := make(chan error, 1)
	go func() {
		// Enough channel-1 rewrites to force several GC passes while
		// channel 0 is wedged.
		at := sim.Time(0)
		for r := 0; r < 200; r++ {
			l := LPA(1 + (r%4)*geo.Channels)
			d, err := f.Write(at, l, []byte{byte(r)})
			if err != nil {
				done <- fmt.Errorf("round %d: %w", r, err)
				return
			}
			at = d
		}
		if f.Stats().GCRuns == 0 {
			done <- fmt.Errorf("channel-1 storm never ran GC; the hostage proves nothing")
			return
		}
		done <- nil
	}()

	select {
	case err := <-done:
		if err != nil {
			t.Fatal(err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("channel-1 writers (and their GC) blocked while channel 0 was held: cross-channel lock coupling")
	}
}
