package ftl

import (
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"iceclave/internal/flash"
	"iceclave/internal/sim"
)

// TestStripeChannelAlignment pins the invariant the whole lock hierarchy
// rests on: the stripe count is a multiple of the channel count, so every
// stripe's LPAs map to exactly one channel and GC never needs a stripe of
// another channel.
func TestStripeChannelAlignment(t *testing.T) {
	f := newTestFTL(t)
	if f.Stripes()%f.geo.Channels != 0 {
		t.Fatalf("stripes (%d) not a multiple of channels (%d)", f.Stripes(), f.geo.Channels)
	}
	for l := LPA(0); int64(l) < f.logicalPages; l++ {
		stripeIdx := int(uint32(l) % uint32(f.Stripes()))
		if stripeIdx%f.geo.Channels != f.pickChannel(l) {
			t.Fatalf("LPA %d: stripe %d not aligned with channel %d", l, stripeIdx, f.pickChannel(l))
		}
	}
}

// TestCrossChannelNoSharedLock is the contention test the sharding exists
// for: with channel 0's shard AND every channel-0 mapping stripe held
// hostage, a tenant pinned to channel 1 must still complete reads,
// writes, translations, and ID updates — under the old single mutex this
// deadlocks and the test times out.
func TestCrossChannelNoSharedLock(t *testing.T) {
	f := newTestFTL(t)
	channels := f.geo.Channels

	// Seed a channel-1 LPA so the read path has something to return.
	const l1 = LPA(1) // 1 % 2 == channel 1
	if _, err := f.Write(0, l1, []byte("channel one")); err != nil {
		t.Fatal(err)
	}

	// Take channel 0's entire lock footprint and sit on it.
	f.chans[0].mu.Lock()
	for s := range f.stripes {
		if s%channels == 0 {
			f.stripes[s].mu.Lock()
		}
	}
	release := func() {
		for s := range f.stripes {
			if s%channels == 0 {
				f.stripes[s].mu.Unlock()
			}
		}
		f.chans[0].mu.Unlock()
	}
	defer release()

	done := make(chan error, 1)
	go func() {
		if _, _, err := f.Read(0, l1); err != nil {
			done <- fmt.Errorf("read: %w", err)
			return
		}
		if _, err := f.Write(0, l1, []byte("rewrite")); err != nil {
			done <- fmt.Errorf("write: %w", err)
			return
		}
		if _, err := f.Translate(l1); err != nil {
			done <- fmt.Errorf("translate: %w", err)
			return
		}
		if err := f.SetID(l1, 3); err != nil {
			done <- fmt.Errorf("setid: %w", err)
			return
		}
		if _, _, _, err := f.ReadFor(0, l1, 3); err != nil {
			done <- fmt.Errorf("readfor: %w", err)
			return
		}
		done <- nil
	}()

	select {
	case err := <-done:
		if err != nil {
			t.Fatal(err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("channel-1 tenant blocked on a lock while channel 0 was held: locking is not sharded")
	}
}

// TestConcurrentChannelPinnedTenants races one writer+reader per channel,
// each pinned to its own channel's LPAs, with enough rewrite volume to
// force garbage collection mid-flight. Run under -race it checks the
// shard/stripe hierarchy protects the table, reverse map, and allocators;
// the per-LPA payload check catches torn mappings.
func TestConcurrentChannelPinnedTenants(t *testing.T) {
	geo := flash.Geometry{
		Channels:        4,
		ChipsPerChannel: 1,
		DiesPerChip:     1,
		PlanesPerDie:    1,
		BlocksPerPlane:  8,
		PagesPerBlock:   8,
		PageSize:        4096,
	}
	dev, err := flash.NewDevice(geo, flash.DefaultTiming())
	if err != nil {
		t.Fatal(err)
	}
	f := New(dev, Config{})

	const rounds = 200
	lpasPerTenant := 4
	var wg sync.WaitGroup
	errs := make(chan error, geo.Channels)
	for ch := 0; ch < geo.Channels; ch++ {
		wg.Add(1)
		go func(ch int) {
			defer wg.Done()
			// LPAs congruent to ch mod Channels all live on channel ch.
			lpas := make([]LPA, lpasPerTenant)
			for i := range lpas {
				lpas[i] = LPA(ch + i*geo.Channels)
			}
			at := sim.Time(0)
			for r := 0; r < rounds; r++ {
				l := lpas[r%lpasPerTenant]
				payload := []byte(fmt.Sprintf("ch%d r%d", ch, r))
				done, err := f.Write(at, l, payload)
				if err != nil {
					errs <- fmt.Errorf("ch %d write round %d: %w", ch, r, err)
					return
				}
				_, got, err := f.Read(done, l)
				if err != nil {
					errs <- fmt.Errorf("ch %d read round %d: %w", ch, r, err)
					return
				}
				if string(got[:len(payload)]) != string(payload) {
					errs <- fmt.Errorf("ch %d round %d: read %q, want %q", ch, r, got[:len(payload)], payload)
					return
				}
				at = done
			}
		}(ch)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	st := f.Stats()
	if st.GCRuns == 0 {
		t.Fatal("workload never triggered GC; grow rounds so relocation races are exercised")
	}
	if want := int64(geo.Channels * rounds); st.HostWrites != want {
		t.Fatalf("host writes = %d, want %d", st.HostWrites, want)
	}
}

// TestClaimIDAtomicity pins the ownership-aware stamp: a claim on an
// unowned entry wins, an idempotent re-claim by the same ID succeeds, and
// a claim against a live owner fails typed without disturbing the entry.
func TestClaimIDAtomicity(t *testing.T) {
	f := newTestFTL(t)
	const l = LPA(3)
	if _, err := f.Write(0, l, []byte("x")); err != nil {
		t.Fatal(err)
	}
	if err := f.ClaimID(l, 2); err != nil {
		t.Fatalf("claim of unowned entry: %v", err)
	}
	if err := f.ClaimID(l, 2); err != nil {
		t.Fatalf("idempotent re-claim: %v", err)
	}
	if err := f.ClaimID(l, 5); !errors.Is(err, ErrOwned) {
		t.Fatalf("claim against live owner returned %v, want ErrOwned", err)
	}
	if id, _ := f.IDOf(l); id != 2 {
		t.Fatalf("owner = %d after failed claim, want 2", id)
	}
}

// TestConcurrentMixedStripeOwnership races ID sweeps (ClearIDs walks every
// stripe) against per-stripe reads and cross-tenant denied writes, the
// pattern TEE teardown produces while other tenants keep running.
func TestConcurrentMixedStripeOwnership(t *testing.T) {
	f := newTestFTL(t)
	var lpas []LPA
	for l := LPA(0); l < 16; l++ {
		if _, err := f.Write(0, l, []byte{byte(l)}); err != nil {
			t.Fatal(err)
		}
		if err := f.SetID(l, TEEID(1+l%2)); err != nil {
			t.Fatal(err)
		}
		lpas = append(lpas, l)
	}
	// Denied access is a legal race outcome (ownership churns under
	// ClearIDs); anything else — unmapped entries, device-full — means the
	// shard/stripe split tore state and must fail the test.
	okErr := func(err error) bool { return err == nil || errors.Is(err, ErrAccessDenied) }
	var wg sync.WaitGroup
	errCh := make(chan error, 8)
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			id := TEEID(1 + w%2)
			for r := 0; r < 100; r++ {
				l := lpas[(w+r)%len(lpas)]
				if _, err := f.TranslateFor(l, id); !okErr(err) {
					errCh <- fmt.Errorf("worker %d TranslateFor(%d): %w", w, l, err)
					return
				}
				if _, _, _, err := f.WriteFor(0, l, []byte{byte(r)}, id); !okErr(err) {
					errCh <- fmt.Errorf("worker %d WriteFor(%d): %w", w, l, err)
					return
				}
				if r%10 == 0 {
					f.ClearIDs(id)
				}
			}
		}(w)
	}
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Fatal(err)
	}
}
