package ftl

import (
	"bytes"
	"errors"
	"fmt"
	"testing"

	"iceclave/internal/sim"
)

// resetStack resets the FTL and its device together, the way the core
// resource pool recycles a replay stack.
func resetStack(f *FTL) {
	f.Reset()
	f.Device().Reset()
}

// driveFTL runs a GC-heavy rewrite workload and returns a transcript of
// completion times, stats, wear spread, and translations — everything an
// equivalence check needs to tell two FTLs apart.
func driveFTL(t *testing.T, f *FTL) string {
	t.Helper()
	var log bytes.Buffer
	var at sim.Time
	half := LPA(f.LogicalPages() / 2)
	for round := 0; round < 4; round++ {
		for l := LPA(0); l < half; l++ {
			done, err := f.Write(at, l, nil)
			if err != nil {
				t.Fatalf("round %d write %d: %v", round, l, err)
			}
			at = done
		}
	}
	fmt.Fprintf(&log, "t=%d stats=%+v spread=%d\n", at, f.Stats(), f.MaxEraseSpread())
	for l := LPA(0); l < half; l += 3 {
		ppa, err := f.Translate(l)
		if err != nil {
			t.Fatalf("translate %d: %v", l, err)
		}
		fmt.Fprintf(&log, "%d->%d\n", l, ppa)
	}
	return log.String()
}

// TestFTLResetEquivalentToFresh pins the FTL half of the pool reset
// contract: after a GC-heavy churn, ID stamping, and a stack reset, the
// FTL must replay a workload exactly like a fresh one — same virtual
// timings, same physical placements, same stats, same wear spread.
func TestFTLResetEquivalentToFresh(t *testing.T) {
	a := newTestFTL(t)
	driveFTL(t, a)
	if err := a.SetID(3, 7); err != nil {
		t.Fatal(err)
	}
	resetStack(a)

	if s := a.Stats(); s != (Stats{}) {
		t.Fatalf("stats after reset: %+v", s)
	}
	if _, err := a.Translate(0); !errors.Is(err, ErrUnmapped) {
		t.Fatalf("translate after reset: %v, want ErrUnmapped", err)
	}
	if id, err := a.IDOf(3); err != nil || id != IDNone {
		t.Fatalf("IDOf(3) after reset = %d, %v; want IDNone", id, err)
	}
	a.ResetStats() // the probes above counted a translation
	for ch := range a.chans {
		if got := a.FreeBlocks(ch); got != 16 {
			t.Fatalf("channel %d has %d free blocks after reset, want 16", ch, got)
		}
	}

	b := newTestFTL(t)
	if got, want := driveFTL(t, a), driveFTL(t, b); got != want {
		t.Fatalf("reset FTL diverges from fresh:\nreset:\n%s\nfresh:\n%s", got, want)
	}
}

// TestResetClearsInFlightState pins the stale in-flight hazard (satellite
// of the pool work): a program staged but never committed — the state a
// crashed or denied writer leaves behind — must not survive a reset as a
// pending marker that holds GC off its block or inflates the shard's
// in-flight count into spurious full-device retries.
func TestResetClearsInFlightState(t *testing.T) {
	f := newTestFTL(t)
	ppa, _, err := f.stage(0, 0)
	if err != nil {
		t.Fatal(err)
	}
	b := f.geo.BlockOf(ppa)
	if f.pending[b] != 1 || f.chans[0].inflight != 1 {
		t.Fatalf("stage left pending=%d inflight=%d", f.pending[b], f.chans[0].inflight)
	}
	resetStack(f)
	for blk := range f.pending {
		if f.pending[blk] != 0 {
			t.Fatalf("block %d pending=%d after reset", blk, f.pending[blk])
		}
	}
	for ch := range f.chans {
		if f.chans[ch].inflight != 0 {
			t.Fatalf("channel %d inflight=%d after reset", ch, f.chans[ch].inflight)
		}
	}
	fillWholeDevice(t, f)
}

// TestResetClearsOrphanedPages pins the other half of the hazard: a
// WriteFor denied at commit (ownership changed mid-flight, PR 3) orphans
// the freshly programmed page as invalid with no reverse mapping. After a
// reset the reused stack must accept a full logical-space fill — stale
// orphans must not surface as ErrDeviceFull or unreclaimable blocks.
func TestResetClearsOrphanedPages(t *testing.T) {
	f := newTestFTL(t)
	const l = LPA(5)
	programHook = func(int) {
		if err := f.SetID(l, 2); err != nil {
			t.Error(err)
		}
	}
	defer func() { programHook = nil }()
	_, _, _, err := f.WriteFor(0, l, nil, 1)
	if !errors.Is(err, ErrAccessDenied) {
		t.Fatalf("mid-flight ownership flip: err=%v, want ErrAccessDenied", err)
	}
	programHook = nil
	resetStack(f)
	fillWholeDevice(t, f)
}

// fillWholeDevice writes every logical page once — with over-provisioning
// headroom this must always succeed on a fresh (or correctly reset)
// stack, exercising GC along the way.
func fillWholeDevice(t *testing.T, f *FTL) {
	t.Helper()
	var at sim.Time
	for l := LPA(0); int64(l) < f.LogicalPages(); l++ {
		done, err := f.Write(at, l, nil)
		if err != nil {
			t.Fatalf("fill write %d/%d: %v", l, f.LogicalPages(), err)
		}
		at = done
	}
}
