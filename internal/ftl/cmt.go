package ftl

import (
	"iceclave/internal/cache"
	"iceclave/internal/sim"
)

// EntrySize is the size of one mapping-table entry in bytes (paper §4.3:
// 8 bytes, of which 4 bits are the TEE ID).
const EntrySize = 8

// MappingCache models the cached mapping table (CMT) that IceClave keeps in
// the protected memory region of the normal world. In-storage programs read
// it directly for address translation — no world switch — and only fall
// into the secure world when the entry's mapping page is absent, in which
// case the FTL loads the mapping page from flash and refreshes the cache
// (paper §4.2 and Figure 9 steps 3–5).
//
// Translation pages hold PageSize/EntrySize entries; the cache is organized
// in mapping-page granularity like DFTL's CMT.
type MappingCache struct {
	c              *cache.Cache
	entriesPerPage uint64
	pageSize       uint64
}

// NewMappingCache builds a CMT holding capacityBytes of mapping pages of
// the given flash page size.
func NewMappingCache(capacityBytes, pageSize uint64) *MappingCache {
	return &MappingCache{
		c:              cache.New("cmt", capacityBytes, pageSize, 8),
		entriesPerPage: pageSize / EntrySize,
		pageSize:       pageSize,
	}
}

// EntriesPerPage returns the number of mapping entries per mapping page.
func (m *MappingCache) EntriesPerPage() uint64 { return m.entriesPerPage }

// mappingAddr maps an LPA to the byte address of its mapping page within
// the (virtual) translation space.
func (m *MappingCache) mappingAddr(l LPA) uint64 {
	return uint64(l) / m.entriesPerPage * m.pageSize
}

// Lookup touches the mapping page covering l and reports whether it was
// resident. A miss models the need to fetch the mapping page from flash
// through the secure world.
func (m *MappingCache) Lookup(l LPA) (hit bool) {
	hit, _, _ = m.c.Access(m.mappingAddr(l), false)
	return hit
}

// Update touches the mapping page covering l with write intent (an FTL
// write or GC relocation dirties the cached mapping page).
func (m *MappingCache) Update(l LPA) (hit bool) {
	hit, _, _ = m.c.Access(m.mappingAddr(l), true)
	return hit
}

// Stats exposes hit/miss counts; the 0.17% translation-miss figure in
// paper §6.3 corresponds to 1-HitRate here.
func (m *MappingCache) Stats() cache.Stats { return m.c.Stats() }

// ResetStats clears counters while keeping residency.
func (m *MappingCache) ResetStats() { m.c.ResetStats() }

// Reset empties the cache and zeroes its counters in O(1), returning it
// to the post-NewMappingCache state (part of the pool reset contract).
func (m *MappingCache) Reset() { m.c.Reset() }

// MissCost bundles the latency components charged on a CMT miss.
type MissCost struct {
	WorldSwitch sim.Duration // normal->secure->normal round trip (IceClave mode only)
	FlashFetch  sim.Duration // loading the mapping page from flash
}

// Total returns the summed miss penalty.
func (c MissCost) Total() sim.Duration { return c.WorldSwitch + c.FlashFetch }
