package ftl

import (
	"errors"
	"testing"

	"iceclave/internal/flash"
	"iceclave/internal/sim"
)

// countInjector fails the first failN operations of a kind, then passes.
type countInjector struct {
	readErr, progErr     error
	failReads, failProgs uint64
}

func (c *countInjector) Read(at sim.Time, ch, die int, n uint64) error {
	if n < c.failReads {
		return c.readErr
	}
	return nil
}
func (c *countInjector) Program(at sim.Time, ch, die int, n uint64) error {
	if n < c.failProgs {
		return c.progErr
	}
	return nil
}
func (c *countInjector) Erase(at sim.Time, ch, die int, n uint64) error { return nil }

func TestReadRetryRecoversTransient(t *testing.T) {
	f := newTestFTL(t)
	data := make([]byte, 64)
	copy(data, "survives the transient")
	done, err := f.Write(0, 3, data)
	if err != nil {
		t.Fatal(err)
	}
	f.Device().SetInjector(&countInjector{readErr: flash.ErrTransientRead, failReads: 2})
	rdone, got, err := f.Read(done, 3)
	if err != nil {
		t.Fatalf("read with 2 transients and 3 retries failed: %v", err)
	}
	if string(got[:22]) != "survives the transient" {
		t.Fatalf("read back %q", got[:22])
	}
	if rdone <= done {
		t.Fatal("retried read charged no time")
	}
	if got := f.Stats().ReadRetries; got != 2 {
		t.Fatalf("ReadRetries = %d, want 2", got)
	}
}

func TestReadRetryBudgetExhausts(t *testing.T) {
	f := newTestFTL(t)
	done, err := f.Write(0, 3, nil)
	if err != nil {
		t.Fatal(err)
	}
	// More consecutive transients than the default budget of 3 retries.
	f.Device().SetInjector(&countInjector{readErr: flash.ErrTransientRead, failReads: 10})
	if _, _, err := f.Read(done, 3); !errors.Is(err, flash.ErrTransientRead) {
		t.Fatalf("err = %v, want ErrTransientRead after budget exhausted", err)
	}
	if got := f.Stats().ReadRetries; got != 3 {
		t.Fatalf("ReadRetries = %d, want 3", got)
	}
}

func TestProgramFailRetiresBlockAndRestages(t *testing.T) {
	f := newTestFTL(t)
	f.Device().SetInjector(&countInjector{progErr: flash.ErrProgramFail, failProgs: 1})
	done, err := f.Write(0, 5, []byte("made it"))
	if err != nil {
		t.Fatalf("write with one program failure did not recover: %v", err)
	}
	st := f.Stats()
	if st.ProgramFails != 1 || st.BadBlocks != 1 {
		t.Fatalf("stats = %+v, want 1 program fail and 1 bad block", st)
	}
	// The re-staged write landed and reads back.
	if _, got, err := f.Read(done, 5); err != nil || string(got[:7]) != "made it" {
		t.Fatalf("read after recovery: %q, %v", got, err)
	}
	// A retired block never hosts new writes: hammer writes across both
	// channels and confirm nothing beyond the injector's per-channel
	// ordinal-0 failure retires a block (ordinals are per channel, so
	// each of the two channels loses exactly one block).
	at := done
	for i := 0; i < 200; i++ {
		if at, err = f.Write(at, LPA(i%16), nil); err != nil {
			t.Fatalf("write %d after retirement: %v", i, err)
		}
	}
	if got := f.Stats().BadBlocks; got != 2 {
		t.Fatalf("BadBlocks = %d, want 2 (one per channel)", got)
	}
}

func TestDieDeathDegradesToSurvivors(t *testing.T) {
	// Geometry with 2 dies on the channel so one can die.
	geo := smallGeometry()
	geo.DiesPerChip = 2
	dev, err := flash.NewDevice(geo, flash.DefaultTiming())
	if err != nil {
		t.Fatal(err)
	}
	f := New(dev, Config{})
	// Kill every program on die 0 of every channel: allocation must fail
	// over to die 1 and keep succeeding.
	dev.SetInjector(dieKiller{die: 0})
	at := sim.Time(0)
	for i := 0; i < 32; i++ {
		if at, err = f.Write(at, LPA(i), nil); err != nil {
			t.Fatalf("write %d with a dead die: %v", i, err)
		}
	}
	st := f.Stats()
	if st.DeadDies == 0 {
		t.Fatalf("stats = %+v, want dead dies recorded", st)
	}
	// Reads of the survivor pages work (die 1 is alive).
	if _, _, err := f.Read(at, 0); err != nil {
		t.Fatalf("read after die death: %v", err)
	}
}

// dieKiller reports a given channel-local die permanently dead.
type dieKiller struct{ die int }

func (k dieKiller) Read(at sim.Time, ch, die int, n uint64) error {
	if die == k.die {
		return flash.ErrDieDead
	}
	return nil
}
func (k dieKiller) Program(at sim.Time, ch, die int, n uint64) error {
	if die == k.die {
		return flash.ErrDieDead
	}
	return nil
}
func (k dieKiller) Erase(at sim.Time, ch, die int, n uint64) error {
	if die == k.die {
		return flash.ErrDieDead
	}
	return nil
}

func TestRetiredBlockPagesStayReadable(t *testing.T) {
	f := newTestFTL(t)
	// Land a page on each channel first, fault-free.
	var at sim.Time
	var err error
	for i := 0; i < 8; i++ {
		if at, err = f.Write(at, LPA(i), []byte{byte(i)}); err != nil {
			t.Fatal(err)
		}
	}
	// Fail the next program on each channel: the active blocks (holding
	// the pages above) get retired, but their valid pages must remain
	// readable — retirement is write-side only.
	f.Device().SetInjector(&countInjector{progErr: flash.ErrProgramFail, failProgs: 1})
	for i := 8; i < 16; i++ {
		if at, err = f.Write(at, LPA(i), []byte{byte(i)}); err != nil {
			t.Fatal(err)
		}
	}
	if f.Stats().BadBlocks == 0 {
		t.Fatal("no block retired")
	}
	for i := 0; i < 16; i++ {
		_, got, err := f.Read(at, LPA(i))
		if err != nil {
			t.Fatalf("read %d after retirement: %v", i, err)
		}
		if got[0] != byte(i) {
			t.Fatalf("page %d read back %d", i, got[0])
		}
	}
}

func TestResetRestoresFaultState(t *testing.T) {
	f := newTestFTL(t)
	f.Device().SetInjector(&countInjector{progErr: flash.ErrProgramFail, failProgs: 2})
	at, err := f.Write(0, 1, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write(at, 2, nil); err != nil {
		t.Fatal(err)
	}
	if f.Stats().BadBlocks == 0 {
		t.Fatal("setup did not retire any block")
	}
	f.Device().SetInjector(nil)
	f.Device().Reset()
	f.Reset()
	st := f.Stats()
	if st.BadBlocks != 0 || st.DeadDies != 0 || st.ProgramFails != 0 || st.ReadRetries != 0 {
		t.Fatalf("stats after Reset = %+v, want zeroes", st)
	}
	// Full capacity is back: a fresh FTL on this geometry can absorb the
	// same write load without ErrDeviceFull.
	var t2 sim.Time
	for i := 0; i < 64; i++ {
		if t2, err = f.Write(t2, LPA(i%16), nil); err != nil {
			t.Fatalf("write %d after Reset: %v", i, err)
		}
	}
}
