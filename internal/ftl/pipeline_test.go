package ftl

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"iceclave/internal/flash"
	"iceclave/internal/sim"
)

// pipelineGeometry returns a small device with diesPerChannel dies behind
// each of two channels.
func pipelineGeometry(diesPerChannel int) flash.Geometry {
	return flash.Geometry{
		Channels:        2,
		ChipsPerChannel: diesPerChannel,
		DiesPerChip:     1,
		PlanesPerDie:    1,
		BlocksPerPlane:  8,
		PagesPerBlock:   8,
		PageSize:        4096,
	}
}

// TestDiePipeliningOverlap is the acceptance pin for per-die program
// pipelining: two writes issued at the same instant to one channel land on
// different dies (the allocator round-robins), so only their short bus
// transfers serialize and the second completes in under 2x tPROG. The
// same pair forced onto a single die still serializes the full program
// latency.
func TestDiePipeliningOverlap(t *testing.T) {
	timing := flash.DefaultTiming()
	tPROG := timing.ProgramLatency

	// Two dies on channel 0: LPAs 0 and 2 both pick channel 0.
	dev, err := flash.NewDevice(pipelineGeometry(2), timing)
	if err != nil {
		t.Fatal(err)
	}
	f := New(dev, Config{})
	xfer := dev.PageTransferTime()
	if _, err := f.Write(0, 0, nil); err != nil {
		t.Fatal(err)
	}
	done, err := f.Write(0, 2, nil)
	if err != nil {
		t.Fatal(err)
	}
	if done >= 2*tPROG {
		t.Fatalf("two programs to different dies of one channel finished at %v, want < 2x tPROG (%v)",
			done, 2*tPROG)
	}
	if want := 2*xfer + tPROG; done != want {
		t.Fatalf("pipelined completion %v, want bus-serialized %v", done, want)
	}

	// One die per channel: the same pair must serialize on the die.
	dev1, err := flash.NewDevice(pipelineGeometry(1), timing)
	if err != nil {
		t.Fatal(err)
	}
	f1 := New(dev1, Config{})
	if _, err := f1.Write(0, 0, nil); err != nil {
		t.Fatal(err)
	}
	done1, err := f1.Write(0, 2, nil)
	if err != nil {
		t.Fatal(err)
	}
	if done1 < 2*tPROG {
		t.Fatalf("same-die programs finished at %v, want >= 2x tPROG (%v)", done1, 2*tPROG)
	}
}

// TestErasePipelinesAcrossDies pins the erase half: GC-style block erases
// on different dies of one channel overlap in simulated time because the
// erase occupies only the die-local write server.
func TestErasePipelinesAcrossDies(t *testing.T) {
	timing := flash.DefaultTiming()
	geo := pipelineGeometry(2)
	dev, err := flash.NewDevice(geo, timing)
	if err != nil {
		t.Fatal(err)
	}
	// Blocks on channel 0, dies 0 and 1.
	var blocks []flash.BlockID
	for b := flash.BlockID(0); int64(b) < geo.TotalBlocks() && len(blocks) < 2; b++ {
		first := geo.FirstPage(b)
		if geo.ChannelOf(first) == 0 && geo.DieIndex(first) == len(blocks) {
			blocks = append(blocks, b)
		}
	}
	if len(blocks) != 2 {
		t.Fatalf("found %d channel-0 blocks on distinct dies", len(blocks))
	}
	if _, err := dev.Erase(0, blocks[0]); err != nil {
		t.Fatal(err)
	}
	done, err := dev.Erase(0, blocks[1])
	if err != nil {
		t.Fatal(err)
	}
	if done >= 2*timing.EraseLatency {
		t.Fatalf("cross-die erases finished at %v, want < 2x tERS (%v)", done, 2*timing.EraseLatency)
	}
}

// TestShardNotHeldAcrossProgram pins the pipelining lock contract through
// the test seam: when the write path issues its device program, neither
// the channel shard nor the target LPA's mapping stripe may be held.
// TryLock fails if any goroutine (including this one) holds the mutex, so
// the single-goroutine run proves the writer itself dropped both locks.
func TestShardNotHeldAcrossProgram(t *testing.T) {
	f := newTestFTL(t)
	const l = LPA(4)
	checks := 0
	programHook = func(ch int) {
		checks++
		if !f.chans[ch].mu.TryLock() {
			t.Errorf("channel %d shard held across device Program", ch)
		} else {
			f.chans[ch].mu.Unlock()
		}
		st := f.stripeOf(l)
		if !st.mu.TryLock() {
			t.Errorf("mapping stripe held across device Program")
		} else {
			st.mu.Unlock()
		}
	}
	defer func() { programHook = nil }()

	if _, err := f.Write(0, l, []byte("host path")); err != nil {
		t.Fatal(err)
	}
	if _, _, _, err := f.WriteFor(0, l, []byte("tee path"), 0); err != nil {
		t.Fatal(err)
	}
	if checks != 2 {
		t.Fatalf("program hook ran %d times, want 2 (Write and WriteFor)", checks)
	}
}

// TestStageWaitsForInFlightPrograms pins the liveness rule of the
// pipelined write path: when a channel's free pool is empty and the only
// reclaimable block carries an in-flight program, a writer must wait for
// that program's commit (which turns the block into a GC victim) instead
// of failing with a spurious ErrDeviceFull. The in-flight program is
// simulated directly through the shard state, so the scenario is exact.
func TestStageWaitsForInFlightPrograms(t *testing.T) {
	geo := flash.Geometry{
		Channels:        2,
		ChipsPerChannel: 1,
		DiesPerChip:     1,
		PlanesPerDie:    1,
		BlocksPerPlane:  2,
		PagesPerBlock:   2,
		PageSize:        4096,
	}
	dev, err := flash.NewDevice(geo, flash.DefaultTiming())
	if err != nil {
		t.Fatal(err)
	}
	f := New(dev, Config{})

	// Drive channel 0 (blocks 0 and 1) to: block 0 = one valid + one
	// invalid page (the only victim candidate), block 1 = active, free
	// pool empty.
	for _, l := range []LPA{0, 2, 0} {
		if _, err := f.Write(0, l, nil); err != nil {
			t.Fatal(err)
		}
	}
	if got := f.FreeBlocks(0); got != 0 {
		t.Fatalf("free pool = %d, want 0 for the exhaustion scenario", got)
	}

	// Simulate a concurrent writer paused between stage and commit on
	// block 0.
	cs := &f.chans[0]
	cs.mu.Lock()
	f.pending[0]++
	cs.inflight++
	cs.mu.Unlock()

	done := make(chan error, 1)
	go func() {
		_, err := f.Write(0, 2, nil)
		done <- err
	}()

	// The writer must wait, not fail.
	select {
	case err := <-done:
		t.Fatalf("write finished with pending program blocking GC: %v", err)
	case <-time.After(50 * time.Millisecond):
	}

	// The in-flight program commits; block 0 becomes a victim and the
	// stalled writer completes.
	cs.mu.Lock()
	f.pending[0]--
	cs.inflight--
	cs.mu.Unlock()

	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("write after commit: %v", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("writer still stalled after the in-flight program committed")
	}
}

// TestConcurrentSameChannelWriters races many goroutines writing LPAs of
// one channel with enough rewrite volume to force GC. Under -race this
// exercises the narrowed critical sections: stage/commit interleave with
// other writers' device programs and with GC passes, and the per-block
// in-flight guard must keep GC off blocks whose programs have not
// committed. The read-back check catches torn mappings.
func TestConcurrentSameChannelWriters(t *testing.T) {
	geo := flash.Geometry{
		Channels:        2,
		ChipsPerChannel: 2,
		DiesPerChip:     1,
		PlanesPerDie:    1,
		BlocksPerPlane:  8,
		PagesPerBlock:   8,
		PageSize:        4096,
	}
	dev, err := flash.NewDevice(geo, flash.DefaultTiming())
	if err != nil {
		t.Fatal(err)
	}
	f := New(dev, Config{})

	const writers, rounds = 4, 150
	var wg sync.WaitGroup
	errs := make(chan error, writers)
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			// All writers hammer channel 0 (even LPAs), disjoint pages.
			l := LPA(2 * w)
			at := sim.Time(0)
			for r := 0; r < rounds; r++ {
				payload := []byte(fmt.Sprintf("w%d r%d", w, r))
				done, err := f.Write(at, l, payload)
				if err != nil {
					errs <- fmt.Errorf("writer %d round %d: %w", w, r, err)
					return
				}
				_, got, err := f.Read(done, l)
				if err != nil {
					errs <- fmt.Errorf("writer %d read %d: %w", w, r, err)
					return
				}
				if string(got[:len(payload)]) != string(payload) {
					errs <- fmt.Errorf("writer %d round %d: read %q", w, r, got[:len(payload)])
					return
				}
				at = done
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	if st := f.Stats(); st.GCRuns == 0 {
		t.Fatal("workload never triggered GC; grow rounds so in-flight-vs-GC interleavings are exercised")
	}
	// Every in-flight marker must have been retired.
	for b, p := range f.pending {
		if p != 0 {
			t.Fatalf("block %d still has %d pending programs after quiescence", b, p)
		}
	}
	for ch := range f.chans {
		if n := f.chans[ch].inflight; n != 0 {
			t.Fatalf("channel %d still reports %d in-flight programs after quiescence", ch, n)
		}
	}
}
