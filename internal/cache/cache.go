// Package cache implements a set-associative cache simulator with LRU
// replacement and write-back dirty tracking. It is the building block for
// the MEE counter cache, the cached FTL mapping table (CMT), and the CPU
// last-level-cache model in the IceClave simulator.
//
// The cache tracks presence and recency of fixed-size lines identified by a
// 64-bit address; it stores no payload. Callers model data movement by
// acting on the hit/miss/eviction results.
//
// Concurrency contract: Cache carries mutable recency state and is not
// safe for concurrent use. Every instance is serialized by its owner —
// the MEE counter cache under mee.Engine's lock, the CMT under
// tee.Runtime's lock, and the CPU LLC inside a single-goroutine replay.
package cache

import "fmt"

// Eviction describes a line pushed out of the cache by an insertion.
type Eviction struct {
	Addr  uint64 // line-aligned address of the victim
	Dirty bool   // whether the victim must be written back
}

// Stats aggregates cache activity counters.
type Stats struct {
	Hits       int64
	Misses     int64
	Evictions  int64
	Writebacks int64
}

// HitRate returns Hits / (Hits + Misses), or 0 if the cache was never
// accessed.
func (s Stats) HitRate() float64 {
	total := s.Hits + s.Misses
	if total == 0 {
		return 0
	}
	return float64(s.Hits) / float64(total)
}

type line struct {
	tag uint64
	lru uint64 // last-touch tick; larger is more recent
	// gen is the cache generation the line was filled in. The line is
	// resident only while gen matches the cache's current generation; a
	// zero gen (the zero value, or an explicit invalidation) never
	// matches, since the cache generation starts at 1. This is what makes
	// Reset O(1) instead of O(lines).
	gen   uint32
	dirty bool
}

// Cache is a set-associative cache. Create instances with New.
type Cache struct {
	name     string
	lineSize uint64
	sets     int
	ways     int
	lines    []line // sets*ways, set-major
	gen      uint32 // current generation; lines with a different gen are empty
	tick     uint64
	stats    Stats
	// mru is the index into lines of the most recently touched line, or -1.
	// Streaming callers (the MEE counter cache re-probing one counter line
	// per data line) hit it far more often than not, skipping the set scan.
	mru int
}

// New returns a cache with the given total capacity in bytes, line size in
// bytes, and associativity. Capacity must be an exact multiple of
// lineSize*ways and the set count must be a power of two; these are
// configuration errors, so New panics on violation.
func New(name string, capacity, lineSize uint64, ways int) *Cache {
	if lineSize == 0 || ways < 1 || capacity == 0 {
		panic("cache: invalid geometry")
	}
	if capacity%(lineSize*uint64(ways)) != 0 {
		panic(fmt.Sprintf("cache %s: capacity %d not a multiple of lineSize*ways", name, capacity))
	}
	sets := int(capacity / (lineSize * uint64(ways)))
	if sets&(sets-1) != 0 {
		panic(fmt.Sprintf("cache %s: set count %d not a power of two", name, sets))
	}
	return &Cache{
		name:     name,
		lineSize: lineSize,
		sets:     sets,
		ways:     ways,
		lines:    make([]line, sets*ways),
		gen:      1,
		mru:      -1,
	}
}

// Name returns the label given at construction.
func (c *Cache) Name() string { return c.name }

// LineSize returns the line size in bytes.
func (c *Cache) LineSize() uint64 { return c.lineSize }

// Sets returns the number of sets.
func (c *Cache) Sets() int { return c.sets }

// Ways returns the associativity.
func (c *Cache) Ways() int { return c.ways }

// Capacity returns the total capacity in bytes.
func (c *Cache) Capacity() uint64 { return c.lineSize * uint64(c.sets) * uint64(c.ways) }

// Stats returns a copy of the activity counters.
func (c *Cache) Stats() Stats { return c.stats }

// Align returns addr rounded down to its line boundary.
func (c *Cache) Align(addr uint64) uint64 { return addr &^ (c.lineSize - 1) }

func (c *Cache) setFor(addr uint64) int {
	return int((addr / c.lineSize) % uint64(c.sets))
}

func (c *Cache) set(i int) []line { return c.lines[i*c.ways : (i+1)*c.ways] }

// lookup returns the way holding addr's line, or -1.
func (c *Cache) lookup(addr uint64) (setIdx, way int) {
	tag := addr / c.lineSize
	setIdx = c.setFor(addr)
	for w, ln := range c.set(setIdx) {
		if ln.gen == c.gen && ln.tag == tag {
			return setIdx, w
		}
	}
	return setIdx, -1
}

// Contains reports whether addr's line is resident, without touching LRU
// state or statistics.
func (c *Cache) Contains(addr uint64) bool {
	_, way := c.lookup(addr)
	return way >= 0
}

// Access touches addr's line. write marks the line dirty. It returns
// whether the access hit and, on a miss that displaced a valid line, the
// eviction (otherwise ev.Addr is 0 and ev.Dirty is false with hit==false
// meaning a cold fill). Access is the single-probe form of the batched
// core below; AccessRun and AccessBatch amortize its per-call work.
func (c *Cache) Access(addr uint64, write bool) (hit bool, ev Eviction, evicted bool) {
	hit, ev, evicted, _ = c.access(addr, write)
	return hit, ev, evicted
}

// access is the probe core shared by Access, AccessRun, and AccessBatch.
// It additionally returns the touched line's index into c.lines so bulk
// callers can extend the touch without re-resolving the set.
func (c *Cache) access(addr uint64, write bool) (hit bool, ev Eviction, evicted bool, idx int) {
	c.tick++
	tag := addr / c.lineSize
	// MRU shortcut: streaming scans re-probe one metadata line per data
	// line, so the last touched line is the next probe's answer far more
	// often than not. A tag match implies a set match (set = tag mod sets),
	// so this is pure lookup elision — stats and LRU state are identical.
	if c.mru >= 0 {
		if ln := &c.lines[c.mru]; ln.gen == c.gen && ln.tag == tag {
			c.stats.Hits++
			ln.lru = c.tick
			if write {
				ln.dirty = true
			}
			return true, Eviction{}, false, c.mru
		}
	}
	setIdx, way := c.lookup(addr)
	set := c.set(setIdx)
	if way >= 0 {
		c.stats.Hits++
		set[way].lru = c.tick
		if write {
			set[way].dirty = true
		}
		c.mru = setIdx*c.ways + way
		return true, Eviction{}, false, c.mru
	}
	c.stats.Misses++
	// Choose victim: first invalid way, else true-LRU.
	victim := 0
	for w := range set {
		if set[w].gen != c.gen {
			victim = w
			break
		}
		if set[w].lru < set[victim].lru {
			victim = w
		}
	}
	if set[victim].gen == c.gen {
		ev = Eviction{Addr: set[victim].tag * c.lineSize, Dirty: set[victim].dirty}
		evicted = true
		c.stats.Evictions++
		if ev.Dirty {
			c.stats.Writebacks++
		}
	}
	set[victim] = line{tag: tag, gen: c.gen, dirty: write, lru: c.tick}
	c.mru = setIdx*c.ways + victim
	return false, ev, evicted, c.mru
}

// AccessRun performs n back-to-back accesses to addr's line in one call —
// the sequential-run fast path for streaming scans, where one metadata
// line is re-touched once per data line. It is exactly equivalent to
// calling Access(addr, write) n times: after the first probe the line is
// resident, so accesses 2..n are hits by construction (hits never evict),
// and the run is settled with one counter bump and one LRU stamp. The
// first probe's result is returned; n <= 0 touches nothing.
func (c *Cache) AccessRun(addr uint64, write bool, n int64) (hit bool, ev Eviction, evicted bool) {
	if n <= 0 {
		return false, Eviction{}, false
	}
	var idx int
	hit, ev, evicted, idx = c.access(addr, write)
	if n > 1 {
		c.tick += uint64(n - 1)
		c.stats.Hits += n - 1
		c.lines[idx].lru = c.tick // dirty already set by the first probe
	}
	return hit, ev, evicted
}

// AccessResult is one Access outcome within an AccessBatch.
type AccessResult struct {
	Hit     bool
	Ev      Eviction
	Evicted bool
}

// AccessBatch probes every address in addrs in order, appending one result
// per address to out (pass a reused slice to keep the batch
// allocation-free) and returning the extended slice. It is exactly
// equivalent to len(addrs) Access calls; the win is one call boundary and
// a warm probe core across the whole batch.
func (c *Cache) AccessBatch(addrs []uint64, write bool, out []AccessResult) []AccessResult {
	for _, addr := range addrs {
		hit, ev, evicted, _ := c.access(addr, write)
		out = append(out, AccessResult{Hit: hit, Ev: ev, Evicted: evicted})
	}
	return out
}

// Invalidate drops addr's line if resident, returning whether it was dirty.
// Invalidation does not count as an eviction in the statistics.
func (c *Cache) Invalidate(addr uint64) (wasDirty bool) {
	setIdx, way := c.lookup(addr)
	if way < 0 {
		return false
	}
	set := c.set(setIdx)
	wasDirty = set[way].dirty
	set[way] = line{}
	return wasDirty
}

// Flush invalidates every line and returns the dirty lines that would be
// written back, in unspecified order.
func (c *Cache) Flush() []Eviction {
	var dirty []Eviction
	for i := range c.lines {
		if c.lines[i].gen == c.gen && c.lines[i].dirty {
			dirty = append(dirty, Eviction{Addr: c.lines[i].tag * c.lineSize, Dirty: true})
		}
		c.lines[i] = line{}
	}
	return dirty
}

// Resident returns the number of valid lines.
func (c *Cache) Resident() int {
	n := 0
	for i := range c.lines {
		if c.lines[i].gen == c.gen {
			n++
		}
	}
	return n
}

// ResetStats clears the activity counters but keeps cache contents.
func (c *Cache) ResetStats() { c.stats = Stats{} }

// Reset returns the cache to its post-New state — empty, clean, zero
// stats — without touching the line array: advancing the generation stamp
// orphans every resident line at once, so resetting a multi-megabyte
// cache costs the same as resetting a tiny one. Only when the 32-bit
// generation wraps (once per ~4 billion resets) could a stale line alias
// the new generation, and that one reset clears the array for real.
func (c *Cache) Reset() {
	c.gen++
	if c.gen == 0 {
		clear(c.lines)
		c.gen = 1
	}
	c.tick = 0
	c.stats = Stats{}
	c.mru = -1
}
