package cache

import (
	"testing"
	"testing/quick"
)

func TestBasicHitMiss(t *testing.T) {
	c := New("t", 1024, 64, 2) // 8 sets x 2 ways
	hit, _, _ := c.Access(0, false)
	if hit {
		t.Fatal("cold access hit")
	}
	hit, _, _ = c.Access(0, false)
	if !hit {
		t.Fatal("second access missed")
	}
	hit, _, _ = c.Access(63, false) // same line
	if !hit {
		t.Fatal("same-line access missed")
	}
	hit, _, _ = c.Access(64, false) // next line
	if hit {
		t.Fatal("different-line access hit")
	}
	s := c.Stats()
	if s.Hits != 2 || s.Misses != 2 {
		t.Fatalf("stats = %+v, want 2 hits 2 misses", s)
	}
}

func TestLRUReplacement(t *testing.T) {
	c := New("t", 128, 64, 2) // 1 set x 2 ways
	c.Access(0, false)        // A
	c.Access(64, false)       // B
	c.Access(0, false)        // touch A; B is LRU
	_, ev, evicted := c.Access(128, false)
	if !evicted || ev.Addr != 64 {
		t.Fatalf("expected eviction of line 64, got %+v evicted=%v", ev, evicted)
	}
	if !c.Contains(0) || c.Contains(64) || !c.Contains(128) {
		t.Fatal("LRU victim selection wrong")
	}
}

func TestDirtyWriteback(t *testing.T) {
	c := New("t", 128, 64, 1) // 2 sets x 1 way
	c.Access(0, true)
	_, ev, evicted := c.Access(128, false) // maps to same set (stride 128)
	if !evicted || !ev.Dirty || ev.Addr != 0 {
		t.Fatalf("dirty eviction wrong: %+v evicted=%v", ev, evicted)
	}
	if c.Stats().Writebacks != 1 {
		t.Fatalf("writebacks = %d, want 1", c.Stats().Writebacks)
	}
}

func TestWriteHitMarksDirty(t *testing.T) {
	c := New("t", 128, 64, 1)
	c.Access(0, false)
	c.Access(0, true) // write hit
	_, ev, _ := c.Access(128, false)
	if !ev.Dirty {
		t.Fatal("write hit did not mark line dirty")
	}
}

func TestInvalidate(t *testing.T) {
	c := New("t", 128, 64, 2)
	c.Access(0, true)
	if !c.Invalidate(0) {
		t.Fatal("invalidate of dirty line returned clean")
	}
	if c.Contains(0) {
		t.Fatal("line still resident after invalidate")
	}
	if c.Invalidate(0) {
		t.Fatal("invalidate of absent line returned dirty")
	}
}

func TestFlush(t *testing.T) {
	c := New("t", 256, 64, 2)
	c.Access(0, true)
	c.Access(64, false)
	c.Access(128, true)
	dirty := c.Flush()
	if len(dirty) != 2 {
		t.Fatalf("flush returned %d dirty lines, want 2", len(dirty))
	}
	if c.Resident() != 0 {
		t.Fatal("lines resident after flush")
	}
}

func TestAlign(t *testing.T) {
	c := New("t", 128, 64, 1)
	if got := c.Align(130); got != 128 {
		t.Fatalf("Align(130) = %d, want 128", got)
	}
	if got := c.Align(64); got != 64 {
		t.Fatalf("Align(64) = %d, want 64", got)
	}
}

func TestCapacityBound(t *testing.T) {
	c := New("t", 1024, 64, 4)
	for a := uint64(0); a < 1<<16; a += 64 {
		c.Access(a, false)
	}
	if r := c.Resident(); r > 16 {
		t.Fatalf("resident = %d exceeds capacity of 16 lines", r)
	}
}

func TestGeometryValidation(t *testing.T) {
	for name, fn := range map[string]func(){
		"zero line":   func() { New("x", 1024, 0, 1) },
		"zero ways":   func() { New("x", 1024, 64, 0) },
		"not aligned": func() { New("x", 1000, 64, 2) },
		"non pow2":    func() { New("x", 64*3, 64, 1) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("%s: did not panic", name)
				}
			}()
			fn()
		}()
	}
}

func TestResidencyInvariantProperty(t *testing.T) {
	// Property: after any access sequence, every line most recently
	// accessed within the last `ways` distinct lines of its set is still
	// resident, and resident count never exceeds capacity.
	f := func(addrs []uint16, writes []bool) bool {
		c := New("p", 2048, 64, 4)
		maxLines := int(c.Capacity() / c.LineSize())
		for i, a := range addrs {
			w := i < len(writes) && writes[i]
			c.Access(uint64(a), w)
			if c.Resident() > maxLines {
				return false
			}
			// The line just accessed must be resident.
			if !c.Contains(uint64(a)) {
				return false
			}
		}
		s := c.Stats()
		return s.Hits+s.Misses == int64(len(addrs))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestHitRate(t *testing.T) {
	var s Stats
	if s.HitRate() != 0 {
		t.Fatal("empty stats hit rate should be 0")
	}
	s = Stats{Hits: 3, Misses: 1}
	if s.HitRate() != 0.75 {
		t.Fatalf("hit rate = %v, want 0.75", s.HitRate())
	}
}
