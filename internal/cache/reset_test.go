package cache

import "testing"

// TestResetEquivalentToFresh pins the generation-based Reset: a churned
// then Reset cache must behave exactly like a freshly constructed one —
// same hits, misses, evictions, writebacks, and victim choices — under an
// identical access sequence. This is the contract the resource pool's
// recycled page caches and CMTs rely on.
func TestResetEquivalentToFresh(t *testing.T) {
	const lineSize, sets, ways = 64, 16, 4
	footprint := uint64(lineSize * sets * ways * 8) // 8x capacity: plenty of evictions

	a := NewFromGeometry("a", lineSize, sets, ways)
	churn := xorshift(99)
	for i := 0; i < 5000; i++ {
		a.Access(churn.next()%footprint, i%3 == 0)
	}
	a.Flush()
	for i := 0; i < 5000; i++ {
		addr := churn.next() % footprint
		if i%7 == 0 {
			a.Invalidate(a.Align(addr))
			continue
		}
		a.Access(addr, i%2 == 0)
	}
	a.Reset()
	if s := a.Stats(); s != (Stats{}) {
		t.Fatalf("stats after Reset: %+v", s)
	}
	if n := a.Resident(); n != 0 {
		t.Fatalf("%d resident lines after Reset", n)
	}

	b := NewFromGeometry("b", lineSize, sets, ways)
	drive := xorshift(7)
	for i := 0; i < 20000; i++ {
		addr := drive.next() % footprint
		write := i%5 == 0
		ah, aev, aevd := a.Access(addr, write)
		bh, bev, bevd := b.Access(addr, write)
		if ah != bh || aev != bev || aevd != bevd {
			t.Fatalf("step %d: reset cache (%v %+v %v) vs fresh (%v %+v %v)",
				i, ah, aev, aevd, bh, bev, bevd)
		}
	}
	sameState(t, a, b, "after identical drive")
}

// TestResetRepeatable pins that Reset works more than once: each
// generation behaves like a fresh cache.
func TestResetRepeatable(t *testing.T) {
	c := NewFromGeometry("c", 64, 4, 2)
	var want Stats
	for round := 0; round < 5; round++ {
		rng := xorshift(42)
		for i := 0; i < 1000; i++ {
			c.Access(rng.next()%(64*4*2*4), i%2 == 0)
		}
		if round == 0 {
			want = c.Stats()
		} else if got := c.Stats(); got != want {
			t.Fatalf("round %d stats %+v, want %+v", round, got, want)
		}
		c.Reset()
	}
}
