package cache

import (
	"testing"
)

// xorshift keeps the equivalence tests deterministic without importing
// internal/sim (which would cycle).
type xorshift uint64

func (x *xorshift) next() uint64 {
	v := uint64(*x)
	v ^= v >> 12
	v ^= v << 25
	v ^= v >> 27
	*x = xorshift(v)
	return v * 0x2545F4914F6CDD1D
}

// NewFromGeometry builds a cache from (lineSize, sets, ways) directly.
func NewFromGeometry(name string, lineSize uint64, sets, ways int) *Cache {
	return New(name, lineSize*uint64(sets)*uint64(ways), lineSize, ways)
}

// snapshot captures the observable state of a cache: stats plus the
// resident set with dirty bits (LRU order is observed indirectly through
// the eviction streams of the equivalence drivers).
func snapshot(c *Cache) (Stats, map[uint64]bool) {
	resident := make(map[uint64]bool)
	for i := range c.lines {
		if c.lines[i].gen == c.gen {
			resident[c.lines[i].tag*c.lineSize] = c.lines[i].dirty
		}
	}
	return c.Stats(), resident
}

func sameState(t *testing.T, a, b *Cache, ctx string) {
	t.Helper()
	as, ar := snapshot(a)
	bs, br := snapshot(b)
	if as != bs {
		t.Fatalf("%s: stats diverge: %+v vs %+v", ctx, as, bs)
	}
	if len(ar) != len(br) {
		t.Fatalf("%s: resident sets diverge: %d vs %d lines", ctx, len(ar), len(br))
	}
	for addr, dirty := range ar {
		bd, ok := br[addr]
		if !ok || bd != dirty {
			t.Fatalf("%s: line %#x resident=%v dirty=%v vs ok=%v dirty=%v",
				ctx, addr, true, dirty, ok, bd)
		}
	}
}

// TestAccessRunMatchesRepeatedAccess pins the sequential-run contract:
// AccessRun(addr, write, n) leaves the cache in exactly the state n
// Access(addr, write) calls do, returns the first probe's result, and
// both paths keep emitting identical evictions afterwards — across a
// randomized interleaving of runs, single probes, and invalidations, on a
// deliberately tiny cache so evictions are constant.
func TestAccessRunMatchesRepeatedAccess(t *testing.T) {
	const lineSize = 64
	run := NewFromGeometry("run", lineSize, 4, 2)
	ref := NewFromGeometry("ref", lineSize, 4, 2)
	rng := xorshift(42)
	for op := 0; op < 20000; op++ {
		addr := (rng.next() % 64) * lineSize
		write := rng.next()%2 == 0
		n := int64(rng.next()%7) - 1 // includes n <= 0 no-ops
		switch rng.next() % 4 {
		case 0: // bulk vs repeated
			h1, e1, v1 := run.AccessRun(addr, write, n)
			var h2 bool
			var e2 Eviction
			var v2 bool
			for i := int64(0); i < n; i++ {
				h, e, v := ref.Access(addr, write)
				if i == 0 {
					h2, e2, v2 = h, e, v
				}
			}
			if n > 0 && (h1 != h2 || e1 != e2 || v1 != v2) {
				t.Fatalf("op %d: first-probe result diverges: (%v %v %v) vs (%v %v %v)",
					op, h1, e1, v1, h2, e2, v2)
			}
		case 1: // single probes stay aligned
			h1, e1, v1 := run.Access(addr, write)
			h2, e2, v2 := ref.Access(addr, write)
			if h1 != h2 || e1 != e2 || v1 != v2 {
				t.Fatalf("op %d: Access diverges: (%v %v %v) vs (%v %v %v)",
					op, h1, e1, v1, h2, e2, v2)
			}
		case 2: // invalidation (also exercises the MRU self-check)
			d1 := run.Invalidate(addr)
			d2 := ref.Invalidate(addr)
			if d1 != d2 {
				t.Fatalf("op %d: Invalidate diverges: %v vs %v", op, d1, d2)
			}
		case 3: // batch vs loop
			addrs := []uint64{addr, addr + lineSize, addr}
			got := run.AccessBatch(addrs, write, nil)
			for i, a := range addrs {
				h, e, v := ref.Access(a, write)
				if got[i] != (AccessResult{Hit: h, Ev: e, Evicted: v}) {
					t.Fatalf("op %d: batch result %d diverges", op, i)
				}
			}
		}
		if op%500 == 0 {
			sameState(t, run, ref, "periodic")
		}
	}
	sameState(t, run, ref, "final")
}

// TestAccessBatchReusesOut pins the allocation contract: a batch into a
// pre-sized slice appends without growing it.
func TestAccessBatchReusesOut(t *testing.T) {
	c := NewFromGeometry("batch", 64, 4, 4)
	addrs := make([]uint64, 32)
	for i := range addrs {
		addrs[i] = uint64(i) * 64
	}
	out := make([]AccessResult, 0, len(addrs))
	out = c.AccessBatch(addrs, false, out)
	if len(out) != len(addrs) {
		t.Fatalf("batch returned %d results, want %d", len(out), len(addrs))
	}
	if cap(out) != len(addrs) {
		t.Fatalf("batch grew the result slice: cap %d, want %d", cap(out), len(addrs))
	}
	// All 32 distinct lines on a 16-line cache: 16 misses were evictions.
	if st := c.Stats(); st.Misses != 32 || st.Evictions != 16 {
		t.Fatalf("batch stats = %+v", st)
	}
}

// TestMRUShortcutSurvivesInvalidate pins that the MRU fast path cannot
// resurrect an invalidated or replaced line: the shortcut re-validates tag
// and valid bit on every probe.
func TestMRUShortcutSurvivesInvalidate(t *testing.T) {
	c := NewFromGeometry("mru", 64, 1, 1) // one line total
	c.Access(0, true)
	if hit, _, _ := c.Access(0, false); !hit {
		t.Fatal("second probe of resident line missed")
	}
	c.Invalidate(0)
	if hit, _, _ := c.Access(0, false); hit {
		t.Fatal("invalidated line hit via MRU shortcut")
	}
	// Replace the slot with a different tag; probing the old tag must miss.
	c.Access(64, false)
	if hit, _, _ := c.Access(0, false); hit {
		t.Fatal("replaced line hit via stale MRU index")
	}
}
