package host

import (
	"testing"

	"iceclave/internal/sim"
)

func TestPCIeTransferChargesPerCommand(t *testing.T) {
	p := NewPCIe(PCIeConfig{BytesPerSec: 1e9, PerCommand: 10 * sim.Microsecond, MaxPayload: 1 << 20})
	done := p.Transfer(0, 2<<20) // two commands
	raw := sim.DurationForBytes(2<<20, 1e9)
	if done <= raw {
		t.Fatalf("transfer %v did not include command overhead (raw %v)", done, raw)
	}
	if p.Commands() != 2 {
		t.Fatalf("commands = %d, want 2", p.Commands())
	}
}

func TestPCIeEffectiveBandwidthBelowLink(t *testing.T) {
	p := NewPCIe(DefaultPCIeConfig())
	eff := p.EffectiveBandwidth()
	if eff >= p.Config().BytesPerSec {
		t.Fatalf("effective bandwidth %v not below link rate", eff)
	}
	// The calibrated default should land well under the internal
	// bandwidth of an 8-channel SSD (4.7 GB/s) — that gap is the
	// in-storage computing opportunity.
	if eff > 2.5e9 {
		t.Fatalf("effective bandwidth %v too close to internal bandwidth", eff)
	}
	if eff < 0.8e9 {
		t.Fatalf("effective bandwidth %v implausibly low", eff)
	}
}

func TestPCIeZeroBytes(t *testing.T) {
	p := NewPCIe(DefaultPCIeConfig())
	if done := p.Transfer(42, 0); done != 42 {
		t.Fatal("zero-byte transfer took time")
	}
}

func TestPCIeSmallerRequestsSlower(t *testing.T) {
	big := NewPCIe(PCIeConfig{BytesPerSec: 3.2e9, PerCommand: 20 * sim.Microsecond, MaxPayload: 128 << 10})
	small := NewPCIe(PCIeConfig{BytesPerSec: 3.2e9, PerCommand: 20 * sim.Microsecond, MaxPayload: 4 << 10})
	if big.EffectiveBandwidth() <= small.EffectiveBandwidth() {
		t.Fatal("larger requests should deliver more bandwidth")
	}
}

func TestPCIeReset(t *testing.T) {
	p := NewPCIe(DefaultPCIeConfig())
	p.Transfer(0, 1<<20)
	p.Reset()
	if p.Commands() != 0 {
		t.Fatal("reset did not clear command count")
	}
	done := p.Transfer(0, 64<<10)
	want := p.Config().PerCommand + sim.DurationForBytes(64<<10, p.Config().BytesPerSec)
	if done != want {
		t.Fatalf("post-reset transfer = %v, want %v", done, want)
	}
}

func TestSGXPenaltyGrowsWithCompute(t *testing.T) {
	c := DefaultSGXConfig()
	light := c.ComputePenalty(1*sim.Millisecond, 1<<20)
	heavy := c.ComputePenalty(100*sim.Millisecond, 1<<20)
	if heavy <= light {
		t.Fatal("SGX penalty must grow with base compute time")
	}
}

func TestSGXPenaltyCalibration(t *testing.T) {
	// The paper reports ~103% extra compute time inside SGX: for a
	// compute-dominated phase the penalty should be close to the base.
	c := DefaultSGXConfig()
	base := 1 * sim.Second
	penalty := c.ComputePenalty(base, 1<<20)
	ratio := float64(penalty) / float64(base)
	if ratio < 0.9 || ratio > 1.3 {
		t.Fatalf("SGX penalty ratio = %v, want ~1.03", ratio)
	}
}

func TestOffloadValidate(t *testing.T) {
	ok := Offload{TaskID: 1, Binary: []byte{0x1}, LPAs: []uint32{0}}
	if err := ok.Validate(); err != nil {
		t.Fatal(err)
	}
	if err := (Offload{TaskID: 1, LPAs: []uint32{0}}).Validate(); err == nil {
		t.Fatal("empty binary accepted")
	}
	if err := (Offload{TaskID: 1, Binary: []byte{1}}).Validate(); err == nil {
		t.Fatal("empty LPA list accepted")
	}
}
