// Package host models everything outside the SSD: the PCIe/NVMe transfer
// path with its per-command software overhead, the host CPU, the Intel SGX
// cost model used by the Host+SGX baseline, and the IceClave host library
// (OffloadCode / GetResult) of Table 2.
//
// Concurrency contract: PCIe and the SGX model accumulate per-replay
// transfer accounting and are not safe for concurrent use — each replay
// or tenant session owns its own. Offload and Result are plain values
// passed across the host/device boundary; concurrent tenants submitting
// Offloads are serialized by the device side (iceclave.SSD and
// internal/sched), not here.
package host

import (
	"fmt"

	"iceclave/internal/sim"
)

// PCIeConfig describes the external I/O path from the SSD to host memory.
type PCIeConfig struct {
	// BytesPerSec is the raw link bandwidth. The evaluation SSD (Intel DC
	// P4500) delivers ~3.2 GB/s sequential reads over PCIe 3.0 x4.
	BytesPerSec float64
	// PerCommand is the host software-stack cost charged per NVMe command:
	// syscall, block layer, interrupt, and completion handling. This is
	// what makes the host path slower than the raw link for query I/O.
	PerCommand sim.Duration
	// MaxPayload is the I/O request size the host issues. Scan-heavy
	// workloads use large requests; transactional workloads small ones.
	MaxPayload int64
}

// DefaultPCIeConfig returns the calibrated external path: 3.2 GB/s link,
// 20 µs of host-stack time per command, 64 KB requests. Effective
// streaming bandwidth works out to ~1.6 GB/s, matching the load-dominated
// host bars of Figure 11 against the 8-channel internal 4.7 GB/s.
func DefaultPCIeConfig() PCIeConfig {
	return PCIeConfig{
		BytesPerSec: 3.2e9,
		PerCommand:  20 * sim.Microsecond,
		MaxPayload:  64 << 10,
	}
}

// PCIe is the contended external link. PCIe is full duplex: device-to-host
// reads and host-to-device writes ride separate lanes and do not block
// each other.
type PCIe struct {
	cfg   PCIeConfig
	up    *sim.Server // device -> host (reads)
	down  *sim.Server // host -> device (writes)
	cmds  int64
	moved int64
}

// NewPCIe builds the link model. It panics on a non-positive bandwidth.
func NewPCIe(cfg PCIeConfig) *PCIe {
	if cfg.MaxPayload <= 0 {
		cfg.MaxPayload = 64 << 10
	}
	if cfg.BytesPerSec <= 0 {
		panic("host: PCIe bandwidth must be positive")
	}
	return &PCIe{cfg: cfg, up: sim.NewServer("pcie-up", 1), down: sim.NewServer("pcie-down", 1)}
}

// Config returns the link parameters.
func (p *PCIe) Config() PCIeConfig { return p.cfg }

// Commands returns how many NVMe commands have been issued.
func (p *PCIe) Commands() int64 { return p.cmds }

// Transfer moves n bytes to the host starting at time at, splitting the
// stream into MaxPayload commands, each paying the full per-command stack
// cost serially. It returns the completion time.
func (p *PCIe) Transfer(at sim.Time, n int64) (done sim.Time) {
	if n <= 0 {
		return at
	}
	done = at
	for n > 0 {
		chunk := min64(n, p.cfg.MaxPayload)
		busy := p.cfg.PerCommand + sim.DurationForBytes(chunk, p.cfg.BytesPerSec)
		_, done = p.up.Acquire(done, busy)
		p.moved += chunk
		n -= chunk
		p.cmds++
	}
	return done
}

// TransferStream moves n bytes as part of a long readahead stream: the
// link reservation includes the host-stack cost amortized at MaxPayload
// command granularity, so the per-command cost limits throughput (the
// host CPU and block layer stay busy for it) while small reads still
// pipeline. This is the path the replay engine uses for data loading.
func (p *PCIe) TransferStream(at sim.Time, n int64) (done sim.Time) {
	return p.stream(p.up, at, n)
}

// TransferStreamDown is TransferStream on the host-to-device lanes.
func (p *PCIe) TransferStreamDown(at sim.Time, n int64) (done sim.Time) {
	return p.stream(p.down, at, n)
}

func (p *PCIe) stream(lane *sim.Server, at sim.Time, n int64) (done sim.Time) {
	if n <= 0 {
		return at
	}
	stack := sim.Duration(float64(p.cfg.PerCommand) * float64(n) / float64(p.cfg.MaxPayload))
	busy := stack + sim.DurationForBytes(n, p.cfg.BytesPerSec)
	p.cmds += (n + p.cfg.MaxPayload - 1) / p.cfg.MaxPayload
	_, done = lane.Acquire(at, busy)
	p.moved += n
	return done
}

// EffectiveBandwidth returns the delivered bytes/sec for a long stream of
// MaxPayload commands — the figure to compare against internal bandwidth.
func (p *PCIe) EffectiveBandwidth() float64 {
	per := sim.DurationForBytes(p.cfg.MaxPayload, p.cfg.BytesPerSec) + p.cfg.PerCommand
	return float64(p.cfg.MaxPayload) / per.Seconds()
}

// Moved returns the total bytes transferred.
func (p *PCIe) Moved() int64 { return p.moved }

// Reset clears link reservations and counters.
func (p *PCIe) Reset() { p.up.Reset(); p.down.Reset(); p.cmds = 0; p.moved = 0 }

func min64(a, b int64) int64 {
	if a < b {
		return a
	}
	return b
}

// SGXConfig is the cost model for the Host+SGX baseline: enclave MEE
// traffic and EPC paging inflate compute, and data entering the enclave
// pays transition costs. Calibrated so the query workloads see roughly
// the 103% extra compute time reported in §6.2 for SGX SDK 2.5.101 on
// the evaluation server.
type SGXConfig struct {
	// ComputeInflation is the fractional extra compute time inside the
	// enclave (1.03 = the paper's 103% average).
	ComputeInflation float64
	// TransitionCost is the ECALL/OCALL world-crossing cost.
	TransitionCost sim.Duration
	// TransitionsPerMB approximates enclave crossings per MB of data
	// pulled into the enclave (paging and untrusted I/O).
	TransitionsPerMB float64
}

// DefaultSGXConfig returns the calibrated SGX model.
func DefaultSGXConfig() SGXConfig {
	return SGXConfig{
		ComputeInflation: 1.03,
		TransitionCost:   8 * sim.Microsecond,
		TransitionsPerMB: 4,
	}
}

// ComputePenalty returns the extra time SGX adds to a phase that took
// baseCompute of host compute over inputBytes of enclave-resident data.
func (c SGXConfig) ComputePenalty(baseCompute sim.Duration, inputBytes int64) sim.Duration {
	mb := float64(inputBytes) / (1 << 20)
	transitions := sim.Duration(mb * c.TransitionsPerMB)
	return sim.Duration(float64(baseCompute)*c.ComputeInflation) + transitions*c.TransitionCost
}

// Offload is a host-side request built by the IceClave library's
// OffloadCode API (Table 2): a pre-compiled program image, the logical
// pages it will access, opaque arguments, and a task ID.
type Offload struct {
	TaskID uint32
	Binary []byte   // machine code image (28–528 KB for the §4.5 corpus)
	LPAs   []uint32 // logical pages the program is entitled to
	Args   []byte
}

// Validate rejects malformed offload requests before they reach the SSD.
func (o Offload) Validate() error {
	if len(o.Binary) == 0 {
		return fmt.Errorf("host: offload %d has empty binary", o.TaskID)
	}
	if len(o.LPAs) == 0 {
		return fmt.Errorf("host: offload %d declares no data pages", o.TaskID)
	}
	return nil
}

// Result carries the output of a finished in-storage task back through
// GetResult.
type Result struct {
	TaskID uint32
	Data   []byte
	Err    error
}
