package tee

import (
	"bytes"
	"errors"
	"testing"

	"iceclave/internal/flash"
	"iceclave/internal/ftl"
)

func testRuntime(t *testing.T) (*Runtime, *ftl.FTL) {
	t.Helper()
	geo := flash.Geometry{
		Channels: 2, ChipsPerChannel: 1, DiesPerChip: 1, PlanesPerDie: 1,
		BlocksPerPlane: 32, PagesPerBlock: 16, PageSize: 4096,
	}
	dev, err := flash.NewDevice(geo, flash.DefaultTiming())
	if err != nil {
		t.Fatal(err)
	}
	f := ftl.New(dev, ftl.Config{})
	rt, err := NewRuntime(f, Options{})
	if err != nil {
		t.Fatal(err)
	}
	return rt, f
}

// writePages stores payloads at LPAs 0..n-1 through the host path.
func writePages(t *testing.T, f *ftl.FTL, n int, fill byte) []ftl.LPA {
	t.Helper()
	lpas := make([]ftl.LPA, n)
	for i := range lpas {
		lpas[i] = ftl.LPA(i)
		data := bytes.Repeat([]byte{fill + byte(i)}, 128)
		if _, err := f.Write(0, lpas[i], data); err != nil {
			t.Fatal(err)
		}
	}
	return lpas
}

func TestCreateReadTerminate(t *testing.T) {
	rt, f := testRuntime(t)
	lpas := writePages(t, f, 4, 0x10)
	tee, err := rt.CreateTEE(Config{Binary: make([]byte, 64<<10), LPAs: lpas})
	if err != nil {
		t.Fatal(err)
	}
	if tee.State() != StateRunning {
		t.Fatalf("state = %v", tee.State())
	}
	page, err := rt.ReadPage(tee, 2)
	if err != nil {
		t.Fatal(err)
	}
	if page[0] != 0x12 {
		t.Fatalf("page content = %#x", page[0])
	}
	if err := rt.TerminateTEE(tee, []byte("done")); err != nil {
		t.Fatal(err)
	}
	if string(tee.Result()) != "done" {
		t.Fatal("result not preserved")
	}
	if id, _ := f.IDOf(2); id != ftl.IDNone {
		t.Fatal("ID bits not cleared at termination")
	}
}

func TestCrossTEEAccessAborts(t *testing.T) {
	rt, f := testRuntime(t)
	lpas := writePages(t, f, 8, 0x20)
	victim, err := rt.CreateTEE(Config{Binary: []byte{1}, LPAs: lpas[:4]})
	if err != nil {
		t.Fatal(err)
	}
	attacker, err := rt.CreateTEE(Config{Binary: []byte{1}, LPAs: lpas[4:]})
	if err != nil {
		t.Fatal(err)
	}
	// Attacker probes the victim's mapping entries.
	if _, err := rt.ReadPage(attacker, lpas[0]); !errors.Is(err, ftl.ErrAccessDenied) {
		t.Fatalf("cross-TEE read returned %v", err)
	}
	if attacker.State() != StateAborted {
		t.Fatalf("attacker state = %v, want aborted", attacker.State())
	}
	// The victim is unaffected.
	if _, err := rt.ReadPage(victim, lpas[0]); err != nil {
		t.Fatalf("victim read failed after attack: %v", err)
	}
	// The aborted TEE can no longer do anything.
	if _, err := rt.ReadPage(attacker, lpas[4]); !errors.Is(err, ErrAborted) {
		t.Fatalf("aborted TEE still served: %v", err)
	}
	if rt.Stats().Aborted != 1 {
		t.Fatalf("aborted count = %d", rt.Stats().Aborted)
	}
}

func TestCrossTEEWriteAborts(t *testing.T) {
	rt, f := testRuntime(t)
	lpas := writePages(t, f, 4, 0x30)
	rt.CreateTEE(Config{Binary: []byte{1}, LPAs: lpas[:2]}) // victim owns 0,1
	attacker, _ := rt.CreateTEE(Config{Binary: []byte{1}, LPAs: lpas[2:]})
	if err := rt.WritePage(attacker, lpas[0], []byte("overwrite")); !errors.Is(err, ftl.ErrAccessDenied) {
		t.Fatalf("cross-TEE write returned %v", err)
	}
	if attacker.State() != StateAborted {
		t.Fatal("attacker not aborted")
	}
	// Victim data intact.
	_, data, err := f.Read(rt.Now(), lpas[0])
	if err != nil || data[0] != 0x30 {
		t.Fatalf("victim data corrupted: %v %#x", err, data[0])
	}
}

func TestIDReuseAfterTermination(t *testing.T) {
	rt, f := testRuntime(t)
	lpas := writePages(t, f, 2, 0x40)
	var ids []ftl.TEEID
	// Exhaust all 15 IDs.
	for i := 0; i < 15; i++ {
		tee, err := rt.CreateTEE(Config{Binary: []byte{1}, LPAs: lpas[:1], HeapBytes: 1 << 20})
		if err != nil {
			t.Fatalf("create %d: %v", i, err)
		}
		ids = append(ids, tee.EID())
		if i < 14 {
			rt.TerminateTEE(tee, nil)
		}
	}
	// IDs are reused: with termination between creations, the same low ID
	// comes back.
	if ids[0] != ids[1] {
		t.Fatalf("ID not reused: %v then %v", ids[0], ids[1])
	}
}

func TestIDExhaustion(t *testing.T) {
	rt, f := testRuntime(t)
	// One LPA per TEE: 15 live TEEs may not share pages under the
	// ownership-aware creation rules.
	lpas := writePages(t, f, 16, 0x50)
	for i := 0; i < 15; i++ {
		if _, err := rt.CreateTEE(Config{Binary: []byte{1}, LPAs: lpas[i : i+1], HeapBytes: 1 << 20}); err != nil {
			t.Fatalf("create %d: %v", i, err)
		}
	}
	if _, err := rt.CreateTEE(Config{Binary: []byte{1}, LPAs: lpas[15:], HeapBytes: 1 << 20}); !errors.Is(err, ErrNoFreeID) {
		t.Fatalf("16th TEE returned %v", err)
	}
}

// TestCreateRejectsOwnedLPA pins the ownership-aware SetIDBits decision:
// creating a TEE over an LPA a live TEE owns fails with ErrLPAOwned, the
// prior owner's bits survive, and the rejected creation rolls back fully
// (its ID and heap are reusable, and its other stamps are cleared).
func TestCreateRejectsOwnedLPA(t *testing.T) {
	rt, f := testRuntime(t)
	lpas := writePages(t, f, 3, 0x80)
	owner, err := rt.CreateTEE(Config{Binary: []byte{1}, LPAs: lpas[:1]})
	if err != nil {
		t.Fatal(err)
	}
	live := rt.Live()
	// lpas[1] is free, lpas[0] is owned: the creation must fail and must
	// not leave a stamp on lpas[1].
	if _, err := rt.CreateTEE(Config{Binary: []byte{1}, LPAs: lpas[1:3]}); err != nil {
		t.Fatalf("disjoint creation failed: %v", err)
	}
	if _, err := rt.CreateTEE(Config{Binary: []byte{1}, LPAs: []ftl.LPA{lpas[0]}}); !errors.Is(err, ErrLPAOwned) {
		t.Fatalf("creation over owned LPA returned %v, want ErrLPAOwned", err)
	}
	if id, _ := f.IDOf(lpas[0]); id != owner.EID() {
		t.Fatalf("owner's ID bits disturbed: %d", id)
	}
	if rt.Live() != live+1 {
		t.Fatalf("live TEEs = %d after rejected creation, want %d", rt.Live(), live+1)
	}
	// After the owner terminates, the same LPA is claimable again.
	if err := rt.TerminateTEE(owner, nil); err != nil {
		t.Fatal(err)
	}
	if _, err := rt.CreateTEE(Config{Binary: []byte{1}, LPAs: lpas[:1]}); err != nil {
		t.Fatalf("creation after owner terminated: %v", err)
	}
}

// TestCreateRejectionRollsBackStamps pins the partial-stamp rollback: a
// creation that dies on its Nth LPA must clear the N-1 entries it already
// stamped.
func TestCreateRejectionRollsBackStamps(t *testing.T) {
	rt, f := testRuntime(t)
	lpas := writePages(t, f, 3, 0x90)
	if _, err := rt.CreateTEE(Config{Binary: []byte{1}, LPAs: lpas[2:3]}); err != nil {
		t.Fatal(err)
	}
	// lpas[0] and lpas[1] are free; lpas[2] is owned — stamped in order,
	// the failure happens after two successful claims.
	if _, err := rt.CreateTEE(Config{Binary: []byte{1}, LPAs: lpas}); !errors.Is(err, ErrLPAOwned) {
		t.Fatalf("creation returned %v, want ErrLPAOwned", err)
	}
	for _, l := range lpas[:2] {
		if id, _ := f.IDOf(l); id != ftl.IDNone {
			t.Fatalf("LPA %d still stamped with %d after rollback", l, id)
		}
	}
}

// TestAllowSharedLPAsCompat pins the compatibility flag: with
// AllowSharedLPAs the seed semantics return — creation re-stamps entries
// a live TEE owns, transferring them to the new TEE.
func TestAllowSharedLPAsCompat(t *testing.T) {
	geo := flash.Geometry{
		Channels: 2, ChipsPerChannel: 1, DiesPerChip: 1, PlanesPerDie: 1,
		BlocksPerPlane: 32, PagesPerBlock: 16, PageSize: 4096,
	}
	dev, err := flash.NewDevice(geo, flash.DefaultTiming())
	if err != nil {
		t.Fatal(err)
	}
	f := ftl.New(dev, ftl.Config{})
	rt, err := NewRuntime(f, Options{AllowSharedLPAs: true})
	if err != nil {
		t.Fatal(err)
	}
	lpas := writePages(t, f, 1, 0xA0)
	if _, err := rt.CreateTEE(Config{Binary: []byte{1}, LPAs: lpas}); err != nil {
		t.Fatal(err)
	}
	second, err := rt.CreateTEE(Config{Binary: []byte{1}, LPAs: lpas})
	if err != nil {
		t.Fatalf("shared-LPA creation failed under compat flag: %v", err)
	}
	if id, _ := f.IDOf(lpas[0]); id != second.EID() {
		t.Fatalf("entry owned by %d, want re-stamped to %d", id, second.EID())
	}
}

func TestOversizedBinaryRejected(t *testing.T) {
	rt, f := testRuntime(t)
	lpas := writePages(t, f, 1, 0x60)
	_, err := rt.CreateTEE(Config{Binary: make([]byte, 8<<30), LPAs: lpas})
	if !errors.Is(err, ErrTooLarge) {
		t.Fatalf("oversized binary returned %v", err)
	}
}

func TestCreationCostCharged(t *testing.T) {
	rt, f := testRuntime(t)
	lpas := writePages(t, f, 1, 0x70)
	before := rt.Now()
	tee, err := rt.CreateTEE(Config{Binary: []byte{1}, LPAs: lpas})
	if err != nil {
		t.Fatal(err)
	}
	afterCreate := rt.Now()
	if afterCreate-before < rt.Costs().Create {
		t.Fatalf("creation charged %v, want >= %v", afterCreate-before, rt.Costs().Create)
	}
	rt.TerminateTEE(tee, nil)
	if rt.Now()-afterCreate < rt.Costs().Delete {
		t.Fatal("deletion cost not charged")
	}
}

func TestBusTransfersAreCiphertext(t *testing.T) {
	rt, f := testRuntime(t)
	lpas := writePages(t, f, 1, 0x77)
	tee, _ := rt.CreateTEE(Config{Binary: []byte{1}, LPAs: lpas})
	plain, err := rt.ReadPage(tee, lpas[0])
	if err != nil {
		t.Fatal(err)
	}
	bus := rt.LastBusTransfer()
	if bytes.Equal(bus, plain) {
		t.Fatal("bus snooper sees plaintext")
	}
	if len(bus) != len(plain) {
		t.Fatal("bus transfer size mismatch")
	}
	if plain[0] != 0x77 {
		t.Fatal("TEE did not receive plaintext")
	}
}

func TestCMTMissChargesWorldSwitch(t *testing.T) {
	rt, f := testRuntime(t)
	lpas := writePages(t, f, 8, 0x01)
	tee, _ := rt.CreateTEE(Config{Binary: []byte{1}, LPAs: lpas})
	rt.ReadPage(tee, lpas[0]) // cold CMT: miss
	hits0, misses0 := rt.CMTStats()
	if misses0 == 0 {
		t.Fatal("cold translation did not miss the CMT")
	}
	rt.ReadPage(tee, lpas[1]) // same mapping page: hit, no switch
	hits1, _ := rt.CMTStats()
	if hits1 <= hits0 {
		t.Fatal("warm translation did not hit the CMT")
	}
}

func TestSequentialScanCMTMissRateLow(t *testing.T) {
	rt, f := testRuntime(t)
	const n = 200
	lpas := writePages(t, f, n, 0x00)
	tee, _ := rt.CreateTEE(Config{Binary: []byte{1}, LPAs: lpas})
	for _, l := range lpas {
		if _, err := rt.ReadMappingEntry(tee, l); err != nil {
			t.Fatal(err)
		}
	}
	hits, misses := rt.CMTStats()
	missRate := float64(misses) / float64(hits+misses)
	// 512 entries per mapping page: a 200-page scan misses once.
	if missRate > 0.05 {
		t.Fatalf("sequential CMT miss rate = %v", missRate)
	}
}

func TestNormalWorldCannotWriteMappingTable(t *testing.T) {
	rt, _ := testRuntime(t)
	// The protected region hosts the mapping table: readable, not
	// writable, from the normal world.
	if err := rt.CheckMemoryAccess(protectedBase+0x100, 8, false); err != nil {
		t.Fatalf("normal-world read of mapping table rejected: %v", err)
	}
	if err := rt.CheckMemoryAccess(protectedBase+0x100, 8, true); err == nil {
		t.Fatal("normal-world write of mapping table allowed")
	}
	// The secure region (runtime + FTL code/data) is fully inaccessible.
	if err := rt.CheckMemoryAccess(secureBase+0x100, 8, false); err == nil {
		t.Fatal("normal-world read of secure region allowed")
	}
}

func TestWritePageAdoptsUnownedLPA(t *testing.T) {
	rt, f := testRuntime(t)
	lpas := writePages(t, f, 1, 0x01)
	tee, _ := rt.CreateTEE(Config{Binary: []byte{1}, LPAs: lpas})
	// LPA 10 was never written/owned: the TEE claims it for intermediate
	// output.
	if err := rt.WritePage(tee, 10, []byte("intermediate")); err != nil {
		t.Fatal(err)
	}
	if id, _ := f.IDOf(10); id != tee.EID() {
		t.Fatal("written LPA not stamped with TEE ID")
	}
	page, err := rt.ReadPage(tee, 10)
	if err != nil {
		t.Fatal(err)
	}
	if string(page[:12]) != "intermediate" {
		t.Fatalf("read back %q", page[:12])
	}
}

func TestTerminateTwiceFails(t *testing.T) {
	rt, f := testRuntime(t)
	lpas := writePages(t, f, 1, 0x01)
	tee, _ := rt.CreateTEE(Config{Binary: []byte{1}, LPAs: lpas})
	if err := rt.TerminateTEE(tee, nil); err != nil {
		t.Fatal(err)
	}
	if err := rt.TerminateTEE(tee, nil); err == nil {
		t.Fatal("double termination accepted")
	}
}

func TestThrowOutIdempotent(t *testing.T) {
	rt, f := testRuntime(t)
	lpas := writePages(t, f, 1, 0x01)
	tee, _ := rt.CreateTEE(Config{Binary: []byte{1}, LPAs: lpas})
	rt.ThrowOutTEE(tee, "test exception")
	rt.ThrowOutTEE(tee, "again")
	if rt.Stats().Aborted != 1 {
		t.Fatalf("aborted = %d, want 1", rt.Stats().Aborted)
	}
	if tee.AbortReason() != "test exception" {
		t.Fatalf("abort reason %q", tee.AbortReason())
	}
}
