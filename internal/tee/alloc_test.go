package tee

import (
	"testing"
)

// TestReadPageAllocs pins the data-path allocation budget: the pooled
// keystream scratch and the persistent bus buffer leave the returned
// plaintext page as the only per-read page-sized allocation. The bound is
// 2 allocations per read (the 4 KB plaintext plus slack for runtime
// bookkeeping such as pool-local churn under the race detector); the
// pre-pooling path allocated 3 page-sized buffers every call.
func TestReadPageAllocs(t *testing.T) {
	rt, f := testRuntime(t)
	lpas := writePages(t, f, 4, 0x10)
	tee, err := rt.CreateTEE(Config{Binary: []byte{1}, LPAs: lpas})
	if err != nil {
		t.Fatal(err)
	}
	// Warm the pool and the persistent bus buffer.
	if _, err := rt.ReadPage(tee, 1); err != nil {
		t.Fatal(err)
	}
	avg := testing.AllocsPerRun(200, func() {
		if _, err := rt.ReadPage(tee, 2); err != nil {
			t.Fatal(err)
		}
	})
	if avg > 2 {
		t.Fatalf("ReadPage allocates %.1f objects per call, want <= 2", avg)
	}
}

// TestBusSnapshotSurvivesReuse pins that LastBusTransfer copies out of the
// reused bus buffer: a snapshot taken before another read must not change
// when the buffer is overwritten.
func TestBusSnapshotSurvivesReuse(t *testing.T) {
	rt, f := testRuntime(t)
	lpas := writePages(t, f, 4, 0x10)
	tee, err := rt.CreateTEE(Config{Binary: []byte{1}, LPAs: lpas})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := rt.ReadPage(tee, 0); err != nil {
		t.Fatal(err)
	}
	snap := rt.LastBusTransfer()
	before := append([]byte(nil), snap...)
	if _, err := rt.ReadPage(tee, 3); err != nil {
		t.Fatal(err)
	}
	for i := range snap {
		if snap[i] != before[i] {
			t.Fatal("bus snapshot mutated by a later read")
		}
	}
}
