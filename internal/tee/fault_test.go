package tee

import (
	"errors"
	"testing"

	"iceclave/internal/fault"
	"iceclave/internal/mee"
)

func TestMACFaultSurfacesIntegrityError(t *testing.T) {
	rt, f := testRuntime(t)
	lpas := writePages(t, f, 4, 0x20)
	env, err := rt.CreateTEE(Config{Binary: make([]byte, 64<<10), LPAs: lpas})
	if err != nil {
		t.Fatal(err)
	}
	// Every MAC verification fails: the read must surface both the tee
	// and mee integrity sentinels, and the page must stay re-verifiable
	// (the ordinal advances, so with a 100% rate it keeps failing).
	rt.SetFaultPlan(&fault.Plan{MACFail: 1})
	if _, err := rt.ReadPage(env, 1); !errors.Is(err, ErrIntegrity) || !errors.Is(err, mee.ErrIntegrity) {
		t.Fatalf("err = %v, want ErrIntegrity wrapping mee.ErrIntegrity", err)
	}
	// Detach: the same read now succeeds — MAC faults are injected, not
	// stateful corruption.
	rt.SetFaultPlan(nil)
	page, err := rt.ReadPage(env, 1)
	if err != nil {
		t.Fatalf("read after detach: %v", err)
	}
	if page[0] != 0x21 {
		t.Fatalf("page content = %#x", page[0])
	}
}

func TestMACFaultDeterministicStream(t *testing.T) {
	run := func() []bool {
		rt, f := testRuntime(t)
		lpas := writePages(t, f, 4, 0x30)
		env, err := rt.CreateTEE(Config{Binary: make([]byte, 64<<10), LPAs: lpas})
		if err != nil {
			t.Fatal(err)
		}
		rt.SetFaultPlan(&fault.Plan{Seed: 9, MACFail: 0.3})
		var outcomes []bool
		for i := 0; i < 64; i++ {
			_, err := rt.ReadPage(env, lpas[i%4])
			outcomes = append(outcomes, err != nil)
			if err != nil && !errors.Is(err, ErrIntegrity) {
				t.Fatalf("read %d: unexpected error %v", i, err)
			}
		}
		return outcomes
	}
	a, b := run(), run()
	sawFault := false
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("read %d: outcome differs across identical runs", i)
		}
		sawFault = sawFault || a[i]
	}
	if !sawFault {
		t.Fatal("0.3 MAC rate produced no fault in 64 reads")
	}
}
