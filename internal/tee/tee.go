// Package tee implements the IceClave runtime (paper §4.5–4.6): the
// lifecycle of in-storage trusted execution environments (CreateTEE,
// TerminateTEE, ThrowOutTEE), mapping-table access control through the FTL
// ID bits (SetIDBits / ReadMappingEntry), the three-region TrustZone memory
// layout, the cached mapping table in the protected region, and the
// encrypted flash-to-DRAM data path through the stream cipher engine.
//
// This is the functional layer: permissions are really enforced, pages are
// really encrypted on the simulated internal bus, and violations really
// abort the offending TEE. Timing experiments use the same cost constants
// through the core package's replay engine.
//
// Runtime is safe for concurrent use: N TEEs can read, write, and
// terminate from their own goroutines. The runtime mutex guards the
// lifecycle tables, the protected-region mapping cache, the world monitor,
// and the virtual clock (which advances monotonically under concurrency);
// the flash data path and the stream cipher run outside it so concurrent
// page reads overlap. Below the runtime, the FTL and the flash device are
// both sharded per channel, so TEEs whose LPAs live on different channels
// share no lock on the data path at all — ReadPage/WritePage from
// cross-channel tenants proceed with zero mutual exclusion once past the
// runtime's short bookkeeping sections. Isolation still holds mid-flight:
// ownership is re-checked inside the FTL's critical section on every data
// access.
package tee

import (
	"errors"
	"fmt"
	"sync"

	"iceclave/internal/fault"
	"iceclave/internal/ftl"
	"iceclave/internal/mee"
	"iceclave/internal/sim"
	"iceclave/internal/trivium"
	"iceclave/internal/trustzone"
)

// State is a TEE lifecycle state.
type State uint8

// TEE lifecycle states.
const (
	StateCreated State = iota
	StateRunning
	StateAborted
	StateTerminated
)

// String names the state.
func (s State) String() string {
	switch s {
	case StateCreated:
		return "created"
	case StateRunning:
		return "running"
	case StateAborted:
		return "aborted"
	default:
		return "terminated"
	}
}

// Costs are the Table 5 overhead constants, measured by the paper on the
// OpenSSD Cosmos+ FPGA prototype and adopted here as model parameters.
type Costs struct {
	Create      sim.Duration // TEE creation: 95 µs
	Delete      sim.Duration // TEE deletion: 58 µs
	WorldSwitch sim.Duration // secure<->normal switch: 3.8 µs
	Encrypt     sim.Duration // per memory encryption op: 102.6 ns
	Verify      sim.Duration // per memory verification op: 151.2 ns
}

// DefaultCosts returns the Table 5 constants (rounded to the ns tick).
func DefaultCosts() Costs {
	return Costs{
		Create:      95 * sim.Microsecond,
		Delete:      58 * sim.Microsecond,
		WorldSwitch: 3800 * sim.Nanosecond,
		Encrypt:     103 * sim.Nanosecond,
		Verify:      151 * sim.Nanosecond,
	}
}

// Config describes a TEE creation request (the CreateTEE API of Table 2).
type Config struct {
	// Binary is the offloaded program image; §4.5 reports 28–528 KB
	// images and fails creation when the image exceeds available memory.
	Binary []byte
	// LPAs are the logical pages the program may access; CreateTEE sets
	// their mapping-table ID bits.
	LPAs []ftl.LPA
	// HeapBytes is the preallocated contiguous region (default 16 MB).
	HeapBytes uint64
}

// DefaultHeapBytes is the §4.5 preallocation: 16 MB.
const DefaultHeapBytes = 16 << 20

// ErrNoFreeID is returned when all 15 TEE IDs are live.
var ErrNoFreeID = errors.New("tee: no free TEE ID")

// ErrLPAOwned is returned by CreateTEE when a requested LPA is already
// owned by a live TEE. The seed re-stamped such entries, silently moving
// pages between tenants; creation now rejects the request so a host bug
// (or a malicious co-tenant racing CreateTEE) cannot transfer ownership
// of live data. Options.AllowSharedLPAs restores the seed semantics.
var ErrLPAOwned = errors.New("tee: LPA already owned by a live TEE")

// ErrTooLarge is returned when the binary does not fit available memory.
var ErrTooLarge = errors.New("tee: program image exceeds available SSD DRAM")

// ErrAborted is returned for operations on a thrown-out TEE.
var ErrAborted = errors.New("tee: TEE aborted")

// ErrIntegrity is returned when a page crossing into the TEE's protected
// DRAM fails MAC verification. Errors carrying it also carry
// mee.ErrIntegrity, so callers can match at either layer.
var ErrIntegrity = errors.New("tee: page integrity verification failed")

// TEE is one in-storage trusted execution environment. Its lifecycle state
// may be observed from any goroutine while the owning tenant drives it.
type TEE struct {
	eid      ftl.TEEID
	heapBase uint64
	heapSize uint64
	binary   int // bytes

	mu       sync.Mutex
	state    State
	lpas     []ftl.LPA
	result   []byte
	abortMsg string
	// ops counts in-flight data-path operations (ReadPage/WritePage).
	// The runtime recycles the TEE's 4-bit ID only when the TEE has left
	// the running state AND ops is zero; otherwise an operation holding
	// the old eid could alias a successor TEE that was handed the same
	// ID — see reclaim.
	ops       int
	reclaimed bool
}

// EID returns the TEE's 4-bit identity.
func (t *TEE) EID() ftl.TEEID { return t.eid }

// State returns the lifecycle state.
func (t *TEE) State() State {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.state
}

// HeapBase returns the base address of the preallocated region.
func (t *TEE) HeapBase() uint64 { return t.heapBase }

// HeapSize returns the preallocated region size.
func (t *TEE) HeapSize() uint64 { return t.heapSize }

// Result returns the output copied out at termination.
func (t *TEE) Result() []byte {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.result
}

// AbortReason returns the ThrowOutTEE message, if any.
func (t *TEE) AbortReason() string {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.abortMsg
}

// running reports the state and abort message in one consistent read.
func (t *TEE) running() (bool, string) {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.state == StateRunning, t.abortMsg
}

// abort transitions to StateAborted; it reports false if the TEE already
// left the running/created states (idempotent throw-out).
func (t *TEE) abort(reason string) bool {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.state == StateAborted || t.state == StateTerminated {
		return false
	}
	t.state = StateAborted
	t.abortMsg = reason
	return true
}

// terminate transitions to StateTerminated with the result attached; it
// errors if the TEE is not in a terminable state.
func (t *TEE) terminate(result []byte) error {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.state != StateRunning && t.state != StateCreated {
		return fmt.Errorf("tee: terminate in state %v", t.state)
	}
	t.result = append([]byte(nil), result...)
	t.state = StateTerminated
	return nil
}

// addLPA records an adopted intermediate page.
func (t *TEE) addLPA(l ftl.LPA) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.lpas = append(t.lpas, l)
}

// beginOp admits a data-path operation while the TEE is running.
func (t *TEE) beginOp() (bool, string) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.state != StateRunning {
		return false, t.abortMsg
	}
	t.ops++
	return true, ""
}

// opDone retires a data-path operation; it reports true when this was
// the last in-flight operation of an already dead TEE, i.e. the caller
// must now perform the deferred reclaim.
func (t *TEE) opDone() bool {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.ops--
	if t.ops == 0 && t.state != StateRunning && !t.reclaimed {
		t.reclaimed = true
		return true
	}
	return false
}

// readyToReclaim claims the (single) reclaim of a dead TEE if no
// operation is in flight. Called after the state left StateRunning.
func (t *TEE) readyToReclaim() bool {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.ops == 0 && !t.reclaimed {
		t.reclaimed = true
		return true
	}
	return false
}

// Stats counts runtime activity.
type Stats struct {
	Created    int64
	Terminated int64
	Aborted    int64
	CMTHits    int64
	CMTMisses  int64
	BusPages   int64 // pages that crossed the internal bus encrypted
}

// span is one free region of the TEE-heap area of controller DRAM.
type span struct{ base, size uint64 }

// Runtime is the IceClave runtime: it lives in the secure world and
// manages TEEs, the protected-region mapping cache, and the cipher engine.
type Runtime struct {
	ftl        *ftl.FTL
	cipher     *trivium.Engine
	mem        *mee.Engine
	space      *trustzone.AddressSpace
	monitor    *trustzone.Monitor
	cmt        *ftl.MappingCache
	costs      Costs
	sharedLPAs bool

	mu       sync.Mutex
	now      sim.Time
	inUse    [16]bool
	tees     map[ftl.TEEID]*TEE
	freeHeap []span // free regions sorted by base, coalesced
	heapFree uint64 // total free bytes across freeHeap
	stats    Stats

	// lastBusPage is the ciphertext most recently observed on the bus. It
	// is a persistent buffer overwritten in place under r.mu on every data
	// transfer (LastBusTransfer hands out copies), so recording bus
	// traffic allocates nothing per read.
	lastBusPage []byte

	// pageScratch pools keystream/ciphertext working buffers for the data
	// path: ReadPage borrows one page-sized buffer per call outside the
	// runtime lock, so concurrent TEEs share a small steady-state pool
	// instead of allocating two pages per read.
	pageScratch sync.Pool

	// faults, when non-nil, injects deterministic MAC-verification
	// failures on the ReadPage data path; macOps counts each TEE's
	// MAC-verified reads, the per-tenant ordinal the plan keys on.
	// Both guarded by r.mu.
	faults *fault.Plan
	macOps map[ftl.TEEID]uint64
}

// Layout constants for the three-region physical memory map (Figure 4).
const (
	secureBase    = uint64(0)
	secureSize    = uint64(64 << 20)
	protectedBase = secureBase + secureSize
	protectedSize = uint64(64 << 20)
	normalBase    = protectedBase + protectedSize
)

// Options configures runtime construction.
type Options struct {
	Costs     Costs
	CipherKey []byte // 10-byte Trivium key; a fixed default is used if nil
	DRAMBytes uint64 // controller DRAM capacity (default 4 GB)
	CMTBytes  uint64 // cached-mapping-table capacity (default 32 MB)
	// AllowSharedLPAs restores the seed's CreateTEE semantics, where the
	// ID bits of an LPA owned by a live TEE are silently re-stamped to
	// the new TEE. The default (false) rejects such creations with
	// ErrLPAOwned; see that error for the rationale.
	AllowSharedLPAs bool
}

// NewRuntime builds a runtime over an FTL. The memory map places the
// runtime and FTL in the secure region, the mapping table cache in the
// protected region, and TEE heaps in the normal region.
func NewRuntime(f *ftl.FTL, opts Options) (*Runtime, error) {
	if opts.Costs == (Costs{}) {
		opts.Costs = DefaultCosts()
	}
	if opts.CipherKey == nil {
		opts.CipherKey = []byte("iceclave-k")
	}
	if opts.DRAMBytes == 0 {
		opts.DRAMBytes = 4 << 30
	}
	if opts.CMTBytes == 0 {
		opts.CMTBytes = 32 << 20
	}
	space := &trustzone.AddressSpace{}
	regions := []trustzone.Region{
		{Name: "runtime+ftl", Base: secureBase, Size: secureSize, Kind: trustzone.RegionSecure},
		{Name: "mapping-table", Base: protectedBase, Size: protectedSize, Kind: trustzone.RegionProtected},
		{Name: "tee-heaps", Base: normalBase, Size: opts.DRAMBytes - normalBase, Kind: trustzone.RegionNormal},
	}
	for _, r := range regions {
		if err := space.AddRegion(r); err != nil {
			return nil, err
		}
	}
	var aesKey [16]byte
	var macKey [32]byte
	copy(aesKey[:], "iceclave-mee-aes")
	copy(macKey[:], "iceclave-mee-mac")
	rt := &Runtime{
		ftl:        f,
		cipher:     trivium.NewEngine(opts.CipherKey, 0x1CEC1A7E0001),
		mem:        mee.NewEngine(aesKey, macKey),
		space:      space,
		monitor:    trustzone.NewMonitor(opts.Costs.WorldSwitch),
		cmt:        ftl.NewMappingCache(opts.CMTBytes, uint64(f.Device().Geometry().PageSize)),
		costs:      opts.Costs,
		sharedLPAs: opts.AllowSharedLPAs,
		tees:       make(map[ftl.TEEID]*TEE),
		freeHeap:   []span{{base: normalBase, size: opts.DRAMBytes - normalBase}},
		heapFree:   opts.DRAMBytes - normalBase,
	}
	pageSize := int(f.Device().Geometry().PageSize)
	rt.pageScratch.New = func() any {
		buf := make([]byte, pageSize)
		return &buf
	}
	// The runtime itself executes in the normal world between service
	// calls; boot hand-off to the normal world happens here.
	rt.now = rt.monitor.SwitchTo(rt.now, trustzone.Normal)
	return rt, nil
}

// Now returns the runtime's internal clock.
func (r *Runtime) Now() sim.Time {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.now
}

// Costs returns the configured cost constants.
func (r *Runtime) Costs() Costs { return r.costs }

// Stats returns a copy of the runtime counters.
func (r *Runtime) Stats() Stats {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.stats
}

// AddressSpace exposes the region table for permission demonstrations.
func (r *Runtime) AddressSpace() *trustzone.AddressSpace { return r.space }

// Memory exposes the MEE-protected DRAM engine.
func (r *Runtime) Memory() *mee.Engine { return r.mem }

// SetFaultPlan attaches (or, with nil, detaches) the deterministic
// fault plan driving MAC-verification failures on the ReadPage path,
// rewinding the per-TEE MAC ordinals so the same plan replays the same
// failure sequence.
func (r *Runtime) SetFaultPlan(p *fault.Plan) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if p.Zero() {
		r.faults = nil
		r.macOps = nil
		return
	}
	r.faults = p
	r.macOps = make(map[ftl.TEEID]uint64)
}

// FTL exposes the flash translation layer (secure-world component).
func (r *Runtime) FTL() *ftl.FTL { return r.ftl }

// CMTStats returns the cached-mapping-table hit statistics; 1-HitRate is
// the §6.3 translation miss rate (0.17% in the paper).
func (r *Runtime) CMTStats() (hits, misses int64) {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.stats.CMTHits, r.stats.CMTMisses
}

// LastBusTransfer returns the ciphertext of the most recent page observed
// on the internal bus — the view a bus-snooping adversary gets.
func (r *Runtime) LastBusTransfer() []byte {
	r.mu.Lock()
	defer r.mu.Unlock()
	return append([]byte(nil), r.lastBusPage...)
}

// HeapFree returns the unallocated bytes of the TEE-heap region — the
// capacity reclaimed as TEEs terminate.
func (r *Runtime) HeapFree() uint64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.heapFree
}

// Live returns how many TEEs currently hold an ID.
func (r *Runtime) Live() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.tees)
}

// allocID hands out the lowest free 4-bit ID, skipping IDNone (0).
// Caller holds r.mu.
func (r *Runtime) allocID() (ftl.TEEID, error) {
	for id := ftl.TEEID(1); id <= ftl.MaxTEEID; id++ {
		if !r.inUse[id] {
			r.inUse[id] = true
			return id, nil
		}
	}
	return 0, ErrNoFreeID
}

// allocHeap carves size bytes out of the first free region that fits
// (first fit). Caller holds r.mu.
func (r *Runtime) allocHeap(size uint64) (uint64, bool) {
	for i := range r.freeHeap {
		if r.freeHeap[i].size >= size {
			base := r.freeHeap[i].base
			r.freeHeap[i].base += size
			r.freeHeap[i].size -= size
			if r.freeHeap[i].size == 0 {
				r.freeHeap = append(r.freeHeap[:i], r.freeHeap[i+1:]...)
			}
			r.heapFree -= size
			return base, true
		}
	}
	return 0, false
}

// releaseHeap returns [base, base+size) to the free list, coalescing with
// adjacent regions so long-running multi-tenant churn does not fragment
// the heap area. Caller holds r.mu.
func (r *Runtime) releaseHeap(base, size uint64) {
	if size == 0 {
		return
	}
	i := 0
	for i < len(r.freeHeap) && r.freeHeap[i].base < base {
		i++
	}
	r.freeHeap = append(r.freeHeap, span{})
	copy(r.freeHeap[i+1:], r.freeHeap[i:])
	r.freeHeap[i] = span{base: base, size: size}
	// Coalesce with successor, then predecessor.
	if i+1 < len(r.freeHeap) && r.freeHeap[i].base+r.freeHeap[i].size == r.freeHeap[i+1].base {
		r.freeHeap[i].size += r.freeHeap[i+1].size
		r.freeHeap = append(r.freeHeap[:i+1], r.freeHeap[i+2:]...)
	}
	if i > 0 && r.freeHeap[i-1].base+r.freeHeap[i-1].size == r.freeHeap[i].base {
		r.freeHeap[i-1].size += r.freeHeap[i].size
		r.freeHeap = append(r.freeHeap[:i], r.freeHeap[i+1:]...)
	}
	r.heapFree += size
}

// CreateTEE implements the Table 2 API: allocate an identity, set the ID
// bits of the program's mapping entries, preallocate its heap, and charge
// the 95 µs creation cost. Creation happens in the secure world.
//
// Ownership is enforced at stamping time: an LPA whose entry already
// carries a live TEE's ID bits fails the creation with ErrLPAOwned
// (atomically per entry, via the FTL's claim path), and everything the
// partial creation stamped is rolled back. Options.AllowSharedLPAs keeps
// the seed's silent re-stamping for callers that depend on it.
func (r *Runtime) CreateTEE(cfg Config) (*TEE, error) {
	if cfg.HeapBytes == 0 {
		cfg.HeapBytes = DefaultHeapBytes
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if uint64(len(cfg.Binary)) > r.heapFree {
		return nil, fmt.Errorf("%w: %d bytes", ErrTooLarge, len(cfg.Binary))
	}
	r.now = r.monitor.SwitchTo(r.now, trustzone.Secure)
	id, err := r.allocID()
	if err != nil {
		r.now = r.monitor.SwitchTo(r.now, trustzone.Normal)
		return nil, err
	}
	heapBase, ok := r.allocHeap(cfg.HeapBytes)
	if !ok {
		r.inUse[id] = false
		r.now = r.monitor.SwitchTo(r.now, trustzone.Normal)
		return nil, fmt.Errorf("%w: no room for %d-byte heap", ErrTooLarge, cfg.HeapBytes)
	}
	// SetIDBits: stamp ownership into the mapping table. ClearIDs on the
	// rollback path only touches entries carrying the new id, so a
	// rejected creation leaves the prior owners' bits intact.
	stamp := r.ftl.ClaimID
	if r.sharedLPAs {
		stamp = r.ftl.SetID
	}
	for _, l := range cfg.LPAs {
		err := stamp(l, id)
		if errors.Is(err, ftl.ErrOwned) {
			err = fmt.Errorf("%w: LPA %d", ErrLPAOwned, l)
		}
		if err != nil {
			r.ftl.ClearIDs(id)
			r.inUse[id] = false
			r.releaseHeap(heapBase, cfg.HeapBytes)
			r.now = r.monitor.SwitchTo(r.now, trustzone.Normal)
			return nil, fmt.Errorf("tee: SetIDBits(%d): %w", l, err)
		}
	}
	t := &TEE{
		eid:      id,
		state:    StateRunning,
		lpas:     append([]ftl.LPA(nil), cfg.LPAs...),
		heapBase: heapBase,
		heapSize: cfg.HeapBytes,
		binary:   len(cfg.Binary),
	}
	r.tees[id] = t
	r.now += r.costs.Create
	r.now = r.monitor.SwitchTo(r.now, trustzone.Normal)
	r.stats.Created++
	return t, nil
}

// TerminateTEE ends a TEE normally: results are copied into the metadata
// region, ID bits cleared for reuse, resources reclaimed, 58 µs charged.
// If data-path operations are still in flight on other goroutines, the
// ID/heap reclaim is deferred until the last one retires, so the freed
// 4-bit ID can never alias a successor TEE mid-operation.
func (r *Runtime) TerminateTEE(t *TEE, result []byte) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	if err := t.terminate(result); err != nil {
		return err
	}
	r.stats.Terminated++
	if t.readyToReclaim() {
		r.reclaim(t)
	}
	return nil
}

// ThrowOutTEE aborts a TEE after a violation: §4.5 lists access-control
// violations, corrupted TEE memory or metadata, and program exceptions.
func (r *Runtime) ThrowOutTEE(t *TEE, reason string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.throwOut(t, reason)
}

// throwOut is ThrowOutTEE with r.mu held. When the violating operation
// itself is still in flight (the common case: a denied ReadPage), the
// reclaim happens at that operation's retirement, not here.
func (r *Runtime) throwOut(t *TEE, reason string) {
	if !t.abort(reason) {
		return
	}
	r.stats.Aborted++
	if t.readyToReclaim() {
		r.reclaim(t)
	}
}

// reclaim recycles a dead TEE's resources — ID bits, the 4-bit identity,
// the heap region — and charges the Table 5 deletion cost. Caller holds
// r.mu and has won the readyToReclaim/opDone claim.
func (r *Runtime) reclaim(t *TEE) {
	r.now = r.monitor.SwitchTo(r.now, trustzone.Secure)
	r.ftl.ClearIDs(t.eid)
	r.inUse[t.eid] = false
	delete(r.tees, t.eid)
	r.releaseHeap(t.heapBase, t.heapSize)
	r.now += r.costs.Delete
	r.now = r.monitor.SwitchTo(r.now, trustzone.Normal)
}

// endOp retires a data-path operation, performing the deferred reclaim
// if the TEE died while the operation was in flight.
func (r *Runtime) endOp(t *TEE) {
	if t.opDone() {
		r.mu.Lock()
		r.reclaim(t)
		r.mu.Unlock()
	}
}

// ReadMappingEntry implements the Table 2 API: translate lpa for TEE t
// through the protected-region mapping cache. A cache hit resolves in the
// normal world with a permission check only; a miss pays the world-switch
// round trip while the FTL loads the mapping page (Figure 9 steps 4–5).
// A permission violation aborts the TEE.
func (r *Runtime) ReadMappingEntry(t *TEE, lpa ftl.LPA) (uint64, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if ok, msg := t.running(); !ok {
		return 0, fmt.Errorf("%w: %s", ErrAborted, msg)
	}
	ppa, err := r.ftl.TranslateFor(lpa, t.eid)
	if err != nil {
		if errors.Is(err, ftl.ErrAccessDenied) {
			r.throwOut(t, fmt.Sprintf("access-control violation on LPA %d", lpa))
		}
		return 0, err
	}
	if r.cmt.Lookup(lpa) {
		r.stats.CMTHits++
	} else {
		r.stats.CMTMisses++
		// Secure world loads the mapping page from flash and refreshes
		// the protected region.
		r.now = r.monitor.RoundTrip(r.now)
		r.now += r.ftl.Device().Timing().ReadLatency
	}
	return uint64(ppa), nil
}

// ReadPage reads lpa on behalf of TEE t through the full §4.6 data path:
// permission-checked translation, flash read, stream-cipher encryption
// across the internal bus, decryption into the TEE's DRAM. Returns the
// plaintext the TEE sees.
//
// The flash access and the cipher work run outside the runtime lock, so
// concurrent TEEs overlap their data paths; ownership is re-validated
// inside the FTL critical section, which also pins the PPA the cipher IV
// binds to.
func (r *Runtime) ReadPage(t *TEE, lpa ftl.LPA) ([]byte, error) {
	if ok, msg := t.beginOp(); !ok {
		return nil, fmt.Errorf("%w: %s", ErrAborted, msg)
	}
	defer r.endOp(t)
	if _, err := r.ReadMappingEntry(t, lpa); err != nil {
		return nil, err
	}
	r.mu.Lock()
	at := r.now
	r.mu.Unlock()
	done, ppa, data, err := r.ftl.ReadFor(at, lpa, t.eid)
	if err != nil {
		if errors.Is(err, ftl.ErrAccessDenied) {
			// Ownership changed between translation and read (e.g. the
			// entry was reassigned mid-flight): still a violation.
			r.ThrowOutTEE(t, fmt.Sprintf("access-control violation on LPA %d", lpa))
		}
		return nil, err
	}
	if r.faults != nil {
		r.mu.Lock()
		n := r.macOps[t.eid]
		r.macOps[t.eid] = n + 1
		if done > r.now {
			r.now = done
		}
		r.mu.Unlock()
		if r.faults.MACFault(int(t.eid), n) {
			// The page reached DRAM but its MAC does not verify: a typed
			// integrity error, never silent success.
			return nil, fmt.Errorf("tee: LPA %d for TEE %d: %w: %w", lpa, t.eid, ErrIntegrity, mee.ErrIntegrity)
		}
	}
	// The flash controller encrypts the page with the PPA-bound IV; only
	// ciphertext crosses the bus; the DRAM-side engine decrypts with the
	// same keystream. Both sides derive the identical PPA-bound pad, so
	// the runtime generates it once through the bulk API and applies it
	// twice instead of paying the cipher warm-up per side.
	//
	// The only per-read allocation is the returned plaintext (the caller
	// owns it): the keystream buffer — which becomes the bus ciphertext
	// in place — is pooled, and the bus snapshot is copied into the
	// persistent lastBusPage buffer under the lock.
	pageSize := r.ftl.Device().Geometry().PageSize
	page := make([]byte, pageSize)
	copy(page, data)
	ksp := r.pageScratch.Get().(*[]byte)
	ks := *ksp
	r.cipher.KeystreamPage(uint32(ppa), ks)
	for i := range page {
		ks[i] ^= page[i] // flash-side encryption onto the bus, in place
	}
	r.mu.Lock()
	if done > r.now {
		r.now = done
	}
	if len(r.lastBusPage) != int(pageSize) {
		r.lastBusPage = make([]byte, pageSize)
	}
	copy(r.lastBusPage, ks)
	r.stats.BusPages++
	r.mu.Unlock()
	r.pageScratch.Put(ksp)
	return page, nil
}

// WritePage writes data to lpa on behalf of TEE t. The TEE must own the
// mapping entry (or the page must be unowned intermediate space the
// runtime assigns to it first). The ownership check, the out-of-place
// write, and the adoption stamp are atomic inside the FTL.
func (r *Runtime) WritePage(t *TEE, lpa ftl.LPA, data []byte) error {
	if ok, msg := t.beginOp(); !ok {
		return fmt.Errorf("%w: %s", ErrAborted, msg)
	}
	defer r.endOp(t)
	r.mu.Lock()
	at := r.now
	r.mu.Unlock()
	done, _, adopted, err := r.ftl.WriteFor(at, lpa, data, t.eid)
	if err != nil {
		if errors.Is(err, ftl.ErrAccessDenied) {
			r.ThrowOutTEE(t, fmt.Sprintf("write access-control violation on LPA %d", lpa))
		}
		return err
	}
	if adopted {
		t.addLPA(lpa)
	}
	r.mu.Lock()
	r.cmt.Update(lpa)
	if done > r.now {
		r.now = done
	}
	r.mu.Unlock()
	return nil
}

// CheckMemoryAccess validates a normal-world access (a TEE or any
// in-storage program) against the TrustZone region map — the Figure 6
// permission matrix. Secure-world code does not call this.
func (r *Runtime) CheckMemoryAccess(addr, size uint64, write bool) error {
	return r.space.Check(trustzone.Normal, addr, size, write)
}
