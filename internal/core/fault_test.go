package core

import (
	"errors"
	"testing"

	"iceclave/internal/fault"
	"iceclave/internal/sim"
	"iceclave/internal/workload"
)

// faultMix is a small multi-tenant collocation for the fault tests.
func faultMix(t testing.TB) []*workload.Trace {
	t.Helper()
	return []*workload.Trace{
		recordTrace(t, "TPC-H Q1"),
		recordTrace(t, "TPC-B"),
		recordTrace(t, "Filter"),
	}
}

// testFaultPlan is a moderately hostile scenario: transient reads,
// program failures, MAC faults, and one die death mid-run.
func testFaultPlan() *fault.Plan {
	return &fault.Plan{
		Seed:          77,
		ReadTransient: 0.01,
		ProgramFail:   0.005,
		MACFail:       0.002,
		DieDeaths:     []fault.DieDeath{{Channel: 1, Die: 0, At: sim.Time(2 * sim.Millisecond)}},
	}
}

// A nil plan and an all-zero plan must both reproduce the fault-free
// replay bit for bit — the replay may not even observe that a zero plan
// exists.
func TestZeroFaultPlanBitIdentical(t *testing.T) {
	traces := faultMix(t)
	cfg := DefaultConfig()
	cfg.AdmissionSlots = 2
	base, err := RunMulti(traces, ModeIceClave, cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.FaultPlan = &fault.Plan{Seed: 123} // rates all zero
	got, err := RunMulti(traces, ModeIceClave, cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i := range base {
		if got[i] != base[i] {
			t.Errorf("tenant %d (%s): zero-rate plan diverges from nil plan\n got %+v\nwant %+v",
				i, base[i].Workload, got[i], base[i])
		}
	}
}

// The same seed and plan must yield identical Results on a fresh stack
// and on a pooled (recycled) stack: the injection ordinals rewind with
// the stack.
func TestFaultReplayIdenticalAcrossPooledStacks(t *testing.T) {
	traces := faultMix(t)
	cfg := DefaultConfig()
	cfg.AdmissionSlots = 2
	cfg.FaultPlan = testFaultPlan()
	first, stats1, err := RunMultiStats(traces, ModeIceClave, cfg)
	if err != nil {
		t.Fatal(err)
	}
	// The run must actually have injected something, or this test pins
	// nothing.
	if stats1.Flash.ReadFaults == 0 && stats1.Flash.ProgramFaults == 0 {
		t.Fatalf("plan injected nothing: %+v", stats1.Flash)
	}
	for round := 0; round < 2; round++ {
		again, stats2, err := RunMultiStats(traces, ModeIceClave, cfg)
		if err != nil {
			t.Fatalf("round %d: %v", round, err)
		}
		for i := range first {
			if again[i] != first[i] {
				t.Errorf("round %d tenant %d (%s): pooled-stack result diverges\n got %+v\nwant %+v",
					round, i, first[i].Workload, again[i], first[i])
			}
		}
		if stats2.FTL.BadBlocks != stats1.FTL.BadBlocks || stats2.FTL.ReadRetries != stats1.FTL.ReadRetries {
			t.Errorf("round %d: recovery stats diverge: %+v vs %+v", round, stats2.FTL, stats1.FTL)
		}
	}
}

// The same seed and plan must yield identical Results across engine
// worker counts — fault decisions key on per-channel ordinals, which the
// sharded engine's deterministic event order preserves.
func TestFaultReplayIdenticalAcrossEngineWorkers(t *testing.T) {
	traces := faultMix(t)
	cfg := DefaultConfig()
	cfg.AdmissionSlots = 2
	cfg.FaultPlan = testFaultPlan()
	for _, workers := range []int{2, 3} {
		runBoth(t, traces, ModeIceClave, cfg, workers)
	}
}

// A die death mid-run degrades gracefully: the run completes (no
// deadlock, no panic), recovery is visible in the stats, and any tenant
// that failed still reports a coherent Result.
func TestDieDeathGracefulDegradation(t *testing.T) {
	traces := faultMix(t)
	cfg := DefaultConfig()
	cfg.AdmissionSlots = 2
	cfg.FaultPlan = &fault.Plan{
		Seed:          5,
		ReadTransient: 0.02,
		DieDeaths: []fault.DieDeath{
			{Channel: 0, Die: 1, At: sim.Time(1 * sim.Millisecond)},
			{Channel: 3, Die: 2, At: sim.Time(2 * sim.Millisecond)},
		},
	}
	results, stats, err := RunMultiStats(traces, ModeIceClave, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if stats.FTL.DeadDies == 0 {
		t.Errorf("no die recorded dead: %+v", stats.FTL)
	}
	for i, r := range results {
		if r.Total <= 0 {
			t.Errorf("tenant %d: non-positive total %v", i, r.Total)
		}
	}
}

// Retries and breaker trips are observable under a hostile plan, and a
// plan hostile enough trips the per-tenant breaker without wedging the
// run.
func TestBreakerTripsUnderSustainedFaults(t *testing.T) {
	traces := faultMix(t)
	cfg := DefaultConfig()
	cfg.AdmissionSlots = 2
	cfg.FaultPlan = &fault.Plan{Seed: 3, ReadTransient: 0.6}
	cfg.FaultRetryLimit = 64
	cfg.BreakerFailures = 2
	results, _, err := RunMultiStats(traces, ModeIceClave, cfg)
	if err != nil {
		t.Fatal(err)
	}
	totalRetries, totalTrips := 0, 0
	for _, r := range results {
		totalRetries += r.Retries
		totalTrips += r.BreakerTrips
	}
	if totalRetries == 0 {
		t.Error("sustained 60% transient rate produced no step retries")
	}
	if totalTrips == 0 {
		t.Error("sustained faults with a 2-failure breaker never tripped")
	}
}

// An exhausted retry budget fails the offload instead of hanging: with
// retries disabled and a certain fault, every tenant fails fast and the
// run still terminates with released admission slots.
func TestRetryBudgetExhaustionFailsOffload(t *testing.T) {
	traces := faultMix(t)
	cfg := DefaultConfig()
	cfg.AdmissionSlots = 1 // failures must release slots or this deadlocks
	cfg.FaultPlan = &fault.Plan{Seed: 1, ReadTransient: 1}
	cfg.FaultRetryLimit = -1
	// FTL-level retries all fail too (rate 1), so every read step faults.
	results, _, err := RunMultiStats(traces, ModeIceClave, cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i, r := range results {
		if !r.Failed {
			t.Errorf("tenant %d (%s): survived a 100%% fault rate with no retries", i, r.Workload)
		}
		if r.Total <= 0 {
			t.Errorf("tenant %d: non-positive total %v", i, r.Total)
		}
	}
}

// The offload deadline fails a faulting tenant once its virtual clock
// passes granted+Timeout.
func TestOffloadTimeoutFailsSlowTenant(t *testing.T) {
	traces := faultMix(t)
	cfg := DefaultConfig()
	cfg.AdmissionSlots = 2
	cfg.FaultPlan = &fault.Plan{Seed: 2, ReadTransient: 0.9}
	cfg.FaultRetryLimit = 1 << 20 // budget effectively unlimited
	cfg.OffloadTimeout = 500 * sim.Microsecond
	results, err := RunMulti(traces, ModeIceClave, cfg)
	if err != nil {
		t.Fatal(err)
	}
	failed := 0
	for _, r := range results {
		if r.Failed {
			failed++
		}
	}
	if failed == 0 {
		t.Error("90% fault rate with a 500µs deadline failed no tenant")
	}
}

// The PR 6 reset contract extends to circuit breakers: the breaker set
// recycles with its pooled stack, is reset on acquire, and so trips and
// open/half-open positions never leak across pooled-stack reuse. A
// mismatched install-time plan is a typed error, not a silent no-op.
func TestBreakerStateNoLeakAcrossPooledReuse(t *testing.T) {
	traces := faultMix(t)
	cfg := DefaultConfig()
	cfg.AdmissionSlots = 2
	cfg.FaultPlan = &fault.Plan{Seed: 3, ReadTransient: 0.6}
	cfg.FaultRetryLimit = 64
	cfg.BreakerFailures = 2

	ResetPool()
	defer ResetPool()
	SetPooling(false)
	fresh, _, err := RunMultiStats(traces, ModeIceClave, cfg)
	SetPooling(true)
	if err != nil {
		t.Fatal(err)
	}
	trips := 0
	for _, r := range fresh {
		trips += r.BreakerTrips
	}
	if trips == 0 {
		t.Fatal("scenario produced no breaker trips; the test would pin nothing")
	}

	first, _, err := RunMultiStats(traces, ModeIceClave, cfg) // pool miss: builds the stack
	if err != nil {
		t.Fatal(err)
	}
	second, _, err := RunMultiStats(traces, ModeIceClave, cfg) // pool hit: recycled stack
	if err != nil {
		t.Fatal(err)
	}
	for i := range fresh {
		if first[i] != fresh[i] {
			t.Errorf("tenant %d: first pooled run diverges from fresh stack\n got %+v\nwant %+v",
				i, first[i], fresh[i])
		}
		if second[i] != fresh[i] {
			t.Errorf("tenant %d: recycled-stack run diverges from fresh stack\n got %+v\nwant %+v",
				i, second[i], fresh[i])
		}
	}

	// White-box half: the idle pooled stack still carries the last run's
	// tripped breaker set; acquiring a matching set from it must hand
	// back fully closed, zero-trip breakers, and a differing breaker
	// config must not inherit the old set at all.
	pool.mu.Lock()
	var res *resources
	for _, list := range pool.idle {
		for _, r := range list {
			if r.brk != nil {
				res = r
			}
		}
	}
	pool.mu.Unlock()
	if res == nil {
		t.Fatal("no pooled stack retained a breaker set")
	}
	if res.brk.Trips() == 0 {
		t.Fatal("pooled breaker set recorded no trips; scenario too gentle")
	}
	bs := res.acquireBreakers(res.brk.Config())
	if bs.Trips() != 0 {
		t.Errorf("recycled breaker set carries %d trips across reuse", bs.Trips())
	}
	if st := bs.For(traces[0].Name).State(); st != sim.BreakerClosed {
		t.Errorf("recycled breaker for %s is %v, want closed", traces[0].Name, st)
	}
	if other := res.acquireBreakers(sim.BreakerConfig{Failures: 9, Cooldown: sim.Millisecond}); other == bs {
		t.Error("breaker set reused across differing configurations")
	}
}

// A plan whose scripted deaths fall outside the device geometry is
// rejected at injector-install time with a typed *fault.PlanError — not
// installed as a scenario that silently never fires.
func TestFaultPlanValidatedAtInstall(t *testing.T) {
	traces := faultMix(t)
	cfg := DefaultConfig()
	cfg.FaultPlan = &fault.Plan{
		ReadTransient: 0.01,
		DieDeaths:     []fault.DieDeath{{Channel: cfg.Channels, Die: 0, At: sim.Time(sim.Millisecond)}},
	}
	_, _, err := RunMultiStats(traces, ModeIceClave, cfg)
	if err == nil {
		t.Fatal("out-of-range die death installed without error")
	}
	if !errors.Is(err, fault.ErrInvalidPlan) {
		t.Fatalf("install error %v does not wrap fault.ErrInvalidPlan", err)
	}
	var pe *fault.PlanError
	if !errors.As(err, &pe) {
		t.Fatalf("install error %v is not a *fault.PlanError", err)
	}
}
