package core

import (
	"testing"

	"iceclave/internal/fault"
	"iceclave/internal/sim"
	"iceclave/internal/workload"
)

// faultMix is a small multi-tenant collocation for the fault tests.
func faultMix(t testing.TB) []*workload.Trace {
	t.Helper()
	return []*workload.Trace{
		recordTrace(t, "TPC-H Q1"),
		recordTrace(t, "TPC-B"),
		recordTrace(t, "Filter"),
	}
}

// testFaultPlan is a moderately hostile scenario: transient reads,
// program failures, MAC faults, and one die death mid-run.
func testFaultPlan() *fault.Plan {
	return &fault.Plan{
		Seed:          77,
		ReadTransient: 0.01,
		ProgramFail:   0.005,
		MACFail:       0.002,
		DieDeaths:     []fault.DieDeath{{Channel: 1, Die: 0, At: sim.Time(2 * sim.Millisecond)}},
	}
}

// A nil plan and an all-zero plan must both reproduce the fault-free
// replay bit for bit — the replay may not even observe that a zero plan
// exists.
func TestZeroFaultPlanBitIdentical(t *testing.T) {
	traces := faultMix(t)
	cfg := DefaultConfig()
	cfg.AdmissionSlots = 2
	base, err := RunMulti(traces, ModeIceClave, cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.FaultPlan = &fault.Plan{Seed: 123} // rates all zero
	got, err := RunMulti(traces, ModeIceClave, cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i := range base {
		if got[i] != base[i] {
			t.Errorf("tenant %d (%s): zero-rate plan diverges from nil plan\n got %+v\nwant %+v",
				i, base[i].Workload, got[i], base[i])
		}
	}
}

// The same seed and plan must yield identical Results on a fresh stack
// and on a pooled (recycled) stack: the injection ordinals rewind with
// the stack.
func TestFaultReplayIdenticalAcrossPooledStacks(t *testing.T) {
	traces := faultMix(t)
	cfg := DefaultConfig()
	cfg.AdmissionSlots = 2
	cfg.FaultPlan = testFaultPlan()
	first, stats1, err := RunMultiStats(traces, ModeIceClave, cfg)
	if err != nil {
		t.Fatal(err)
	}
	// The run must actually have injected something, or this test pins
	// nothing.
	if stats1.Flash.ReadFaults == 0 && stats1.Flash.ProgramFaults == 0 {
		t.Fatalf("plan injected nothing: %+v", stats1.Flash)
	}
	for round := 0; round < 2; round++ {
		again, stats2, err := RunMultiStats(traces, ModeIceClave, cfg)
		if err != nil {
			t.Fatalf("round %d: %v", round, err)
		}
		for i := range first {
			if again[i] != first[i] {
				t.Errorf("round %d tenant %d (%s): pooled-stack result diverges\n got %+v\nwant %+v",
					round, i, first[i].Workload, again[i], first[i])
			}
		}
		if stats2.FTL.BadBlocks != stats1.FTL.BadBlocks || stats2.FTL.ReadRetries != stats1.FTL.ReadRetries {
			t.Errorf("round %d: recovery stats diverge: %+v vs %+v", round, stats2.FTL, stats1.FTL)
		}
	}
}

// The same seed and plan must yield identical Results across engine
// worker counts — fault decisions key on per-channel ordinals, which the
// sharded engine's deterministic event order preserves.
func TestFaultReplayIdenticalAcrossEngineWorkers(t *testing.T) {
	traces := faultMix(t)
	cfg := DefaultConfig()
	cfg.AdmissionSlots = 2
	cfg.FaultPlan = testFaultPlan()
	for _, workers := range []int{2, 3} {
		runBoth(t, traces, ModeIceClave, cfg, workers)
	}
}

// A die death mid-run degrades gracefully: the run completes (no
// deadlock, no panic), recovery is visible in the stats, and any tenant
// that failed still reports a coherent Result.
func TestDieDeathGracefulDegradation(t *testing.T) {
	traces := faultMix(t)
	cfg := DefaultConfig()
	cfg.AdmissionSlots = 2
	cfg.FaultPlan = &fault.Plan{
		Seed:          5,
		ReadTransient: 0.02,
		DieDeaths: []fault.DieDeath{
			{Channel: 0, Die: 1, At: sim.Time(1 * sim.Millisecond)},
			{Channel: 3, Die: 2, At: sim.Time(2 * sim.Millisecond)},
		},
	}
	results, stats, err := RunMultiStats(traces, ModeIceClave, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if stats.FTL.DeadDies == 0 {
		t.Errorf("no die recorded dead: %+v", stats.FTL)
	}
	for i, r := range results {
		if r.Total <= 0 {
			t.Errorf("tenant %d: non-positive total %v", i, r.Total)
		}
	}
}

// Retries and breaker trips are observable under a hostile plan, and a
// plan hostile enough trips the per-tenant breaker without wedging the
// run.
func TestBreakerTripsUnderSustainedFaults(t *testing.T) {
	traces := faultMix(t)
	cfg := DefaultConfig()
	cfg.AdmissionSlots = 2
	cfg.FaultPlan = &fault.Plan{Seed: 3, ReadTransient: 0.6}
	cfg.FaultRetryLimit = 64
	cfg.BreakerFailures = 2
	results, _, err := RunMultiStats(traces, ModeIceClave, cfg)
	if err != nil {
		t.Fatal(err)
	}
	totalRetries, totalTrips := 0, 0
	for _, r := range results {
		totalRetries += r.Retries
		totalTrips += r.BreakerTrips
	}
	if totalRetries == 0 {
		t.Error("sustained 60% transient rate produced no step retries")
	}
	if totalTrips == 0 {
		t.Error("sustained faults with a 2-failure breaker never tripped")
	}
}

// An exhausted retry budget fails the offload instead of hanging: with
// retries disabled and a certain fault, every tenant fails fast and the
// run still terminates with released admission slots.
func TestRetryBudgetExhaustionFailsOffload(t *testing.T) {
	traces := faultMix(t)
	cfg := DefaultConfig()
	cfg.AdmissionSlots = 1 // failures must release slots or this deadlocks
	cfg.FaultPlan = &fault.Plan{Seed: 1, ReadTransient: 1}
	cfg.FaultRetryLimit = -1
	// FTL-level retries all fail too (rate 1), so every read step faults.
	results, _, err := RunMultiStats(traces, ModeIceClave, cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i, r := range results {
		if !r.Failed {
			t.Errorf("tenant %d (%s): survived a 100%% fault rate with no retries", i, r.Workload)
		}
		if r.Total <= 0 {
			t.Errorf("tenant %d: non-positive total %v", i, r.Total)
		}
	}
}

// The offload deadline fails a faulting tenant once its virtual clock
// passes granted+Timeout.
func TestOffloadTimeoutFailsSlowTenant(t *testing.T) {
	traces := faultMix(t)
	cfg := DefaultConfig()
	cfg.AdmissionSlots = 2
	cfg.FaultPlan = &fault.Plan{Seed: 2, ReadTransient: 0.9}
	cfg.FaultRetryLimit = 1 << 20 // budget effectively unlimited
	cfg.OffloadTimeout = 500 * sim.Microsecond
	results, err := RunMulti(traces, ModeIceClave, cfg)
	if err != nil {
		t.Fatal(err)
	}
	failed := 0
	for _, r := range results {
		if r.Failed {
			failed++
		}
	}
	if failed == 0 {
		t.Error("90% fault rate with a 500µs deadline failed no tenant")
	}
}
