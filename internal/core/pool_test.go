package core

import (
	"sync"
	"testing"

	"iceclave/internal/mee"
	"iceclave/internal/workload"
)

// TestPooledRunIdenticalToFresh is the pool's differential oracle on the
// Table 6 / Figure 8 axis (the three MEE protection modes): a replay on a
// recycled, reset stack must produce a Result — timings, breakdowns, MEE
// traffic accounting, cache hit rates — equal to a fresh-allocation run.
// It also pins the post-setup seal point: prepopulation activity must not
// leak into either run's figures, or the two could agree with each other
// while both being polluted; the MEE/translation counters compared here
// start from the seal.
func TestPooledRunIdenticalToFresh(t *testing.T) {
	t.Cleanup(func() { SetPooling(true); ResetPool() })
	tr := recordTrace(t, "TPC-H Q1")
	for _, m := range []mee.Mode{mee.ModeHybrid, mee.ModeSplit64, mee.ModeNone} {
		cfg := DefaultConfig()
		cfg.MEEMode = m
		SetPooling(false)
		ResetPool()
		fresh, err := Run(tr, ModeIceClave, cfg)
		if err != nil {
			t.Fatal(err)
		}
		SetPooling(true)
		warm, err := Run(tr, ModeIceClave, cfg) // builds, then pools its stack
		if err != nil {
			t.Fatal(err)
		}
		pooled, err := Run(tr, ModeIceClave, cfg) // runs on the recycled stack
		if err != nil {
			t.Fatal(err)
		}
		if st := PoolSnapshot(); st.Hits == 0 {
			t.Fatalf("mode %v: second pooled run did not hit the pool: %+v", m, st)
		}
		if warm != fresh {
			t.Fatalf("mode %v: pooling-enabled fresh build diverges:\n%+v\nvs\n%+v", m, warm, fresh)
		}
		if pooled != fresh {
			t.Fatalf("mode %v: recycled-stack run diverges:\n%+v\nvs\n%+v", m, pooled, fresh)
		}
	}
}

// TestPooledAcquireAllocsO1 pins the zero-alloc promise: once the pool is
// warm, a full replay setup (acquire, reset, prepopulate, seal) allocates
// a handful of objects — and the count must not scale with the device
// geometry, only the trace drives the work.
func TestPooledAcquireAllocsO1(t *testing.T) {
	t.Cleanup(func() { SetPooling(true); ResetPool() })
	tr := recordTrace(t, "Filter")
	traces := []*workload.Trace{tr}
	SetPooling(true)

	setupAllocs := func(cfg Config) float64 {
		ResetPool()
		res, _, err := newResources(cfg, traces)
		if err != nil {
			t.Fatal(err)
		}
		pool.release(res)
		return testing.AllocsPerRun(10, func() {
			r, _, err := newResources(cfg, traces)
			if err != nil {
				t.Fatal(err)
			}
			pool.release(r)
		})
	}

	small := setupAllocs(DefaultConfig())
	bigCfg := DefaultConfig()
	bigCfg.MinFlashPages = 256 << 10 // ~4x the auto-sized geometry
	big := setupAllocs(bigCfg)
	if small > 8 || big > 8 {
		t.Fatalf("warm-pool setup allocates %.0f (default) / %.0f (large geometry) objects, want O(1)", small, big)
	}
	if big > small {
		t.Fatalf("setup allocations scale with geometry: %.0f -> %.0f", small, big)
	}
}

// TestPoolConcurrentCheckout drives the pool the way parallel suite
// workers do — many goroutines checking stacks in and out with resets in
// between — and requires every run to agree with a solo baseline. Run
// under -race this pins the exclusive-ownership handoff.
func TestPoolConcurrentCheckout(t *testing.T) {
	t.Cleanup(func() { SetPooling(true); ResetPool() })
	tr := recordTrace(t, "Filter")
	cfg := DefaultConfig()
	SetPooling(true)
	ResetPool()
	want, err := Run(tr, ModeIceClave, cfg)
	if err != nil {
		t.Fatal(err)
	}
	const workers, rounds = 6, 2
	results := make([]Result, workers)
	errs := make([]error, workers)
	var wg sync.WaitGroup
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for k := 0; k < rounds; k++ {
				r, err := Run(tr, ModeIceClave, cfg)
				if err != nil {
					errs[i] = err
					return
				}
				results[i] = r
			}
		}(i)
	}
	wg.Wait()
	for i := 0; i < workers; i++ {
		if errs[i] != nil {
			t.Fatalf("worker %d: %v", i, errs[i])
		}
		if results[i] != want {
			t.Fatalf("worker %d diverges from solo baseline:\n%+v\nvs\n%+v", i, results[i], want)
		}
	}
}
