package core

import (
	"testing"

	"iceclave/internal/sim"
	"iceclave/internal/workload"
)

// TestAdmissionCapsCreateQueueDelay is the acceptance pin for the
// virtual-time backbone: a multi-tenant run with one admission slot must
// report nonzero per-tenant queueing delay in core.Result, and that delay
// must be the predecessor's virtual completion time — admission, replay,
// and flash share one clock.
func TestAdmissionCapsCreateQueueDelay(t *testing.T) {
	a := recordTrace(t, "Filter")
	b := recordTrace(t, "Aggregate")
	cfg := DefaultConfig()
	cfg.AdmissionSlots = 1
	results, err := RunMulti([]*workload.Trace{a, b}, ModeIceClave, cfg)
	if err != nil {
		t.Fatal(err)
	}
	first, second := results[0], results[1]
	if first.QueueDelay != 0 {
		t.Fatalf("first tenant queued %v, want 0", first.QueueDelay)
	}
	if second.QueueDelay <= 0 {
		t.Fatalf("second tenant queued %v, want > 0", second.QueueDelay)
	}
	// With one slot the second tenant's grant is exactly the first
	// tenant's completion (including its TEE deletion cost).
	if second.QueueDelay != first.Total {
		t.Fatalf("second tenant queued %v, want the first tenant's total %v",
			second.QueueDelay, first.Total)
	}
	if second.Total <= second.QueueDelay {
		t.Fatalf("total %v does not include the queueing delay %v",
			second.Total, second.QueueDelay)
	}
}

// TestAdmissionUncappedMatchesDefault pins backward compatibility: with
// the zero-value admission config, RunMulti reports zero queueing delay
// and the single-trace path is unchanged by the backbone refactor.
func TestAdmissionUncappedMatchesDefault(t *testing.T) {
	a := recordTrace(t, "Filter")
	b := recordTrace(t, "Aggregate")
	results, err := RunMulti([]*workload.Trace{a, b}, ModeIceClave, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	for i, r := range results {
		if r.QueueDelay != 0 {
			t.Fatalf("tenant %d queued %v with no admission caps", i, r.QueueDelay)
		}
	}
}

// TestAdmissionTenantSlotsSerializeSameWorkload pins the per-tenant cap:
// two instances of one workload name share a tenant key, so a per-tenant
// cap of one serializes them even with global slots to spare.
func TestAdmissionTenantSlotsSerializeSameWorkload(t *testing.T) {
	a := recordTrace(t, "Filter")
	cfg := DefaultConfig()
	cfg.AdmissionTenantSlots = 1
	results, err := RunMulti([]*workload.Trace{a, a}, ModeIceClave, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if results[0].QueueDelay != 0 {
		t.Fatalf("first instance queued %v, want 0", results[0].QueueDelay)
	}
	if results[1].QueueDelay != results[0].Total {
		t.Fatalf("second instance queued %v, want %v", results[1].QueueDelay, results[0].Total)
	}
}

// TestBatchedAdmissionAlignsGrantsToQuantum pins the batched-grant policy
// end to end through RunMulti: with one slot and a grant quantum, the
// second tenant's admission lands on the first quantum boundary at or
// after its predecessor's completion — later than (or equal to) the
// per-release grant, never earlier.
func TestBatchedAdmissionAlignsGrantsToQuantum(t *testing.T) {
	a := recordTrace(t, "Filter")
	b := recordTrace(t, "Aggregate")
	cfg := DefaultConfig()
	cfg.AdmissionSlots = 1
	perRelease, err := RunMulti([]*workload.Trace{a, b}, ModeIceClave, cfg)
	if err != nil {
		t.Fatal(err)
	}
	const quantum = 1 * sim.Millisecond
	cfg.AdmissionQuantum = quantum
	cfg.AdmissionBatch = 1
	batched, err := RunMulti([]*workload.Trace{a, b}, ModeIceClave, cfg)
	if err != nil {
		t.Fatal(err)
	}
	// First tenant: admitted at the t=0 tick in both policies.
	if batched[0].QueueDelay != 0 {
		t.Fatalf("first tenant queued %v under batching, want 0", batched[0].QueueDelay)
	}
	got := batched[1].QueueDelay
	if got < perRelease[1].QueueDelay {
		t.Fatalf("batched grant %v earlier than per-release %v", got, perRelease[1].QueueDelay)
	}
	if sim.Time(got)%sim.Time(quantum) != 0 {
		t.Fatalf("batched grant %v not on a %v boundary", got, quantum)
	}
	want := (sim.Time(perRelease[1].QueueDelay) + sim.Time(quantum) - 1) / sim.Time(quantum) * sim.Time(quantum)
	if sim.Time(got) != want {
		t.Fatalf("batched grant %v, want first boundary %v after release %v",
			got, want, perRelease[1].QueueDelay)
	}
}
