package core

import (
	"testing"

	"iceclave/internal/workload"
)

// TestAdmissionCapsCreateQueueDelay is the acceptance pin for the
// virtual-time backbone: a multi-tenant run with one admission slot must
// report nonzero per-tenant queueing delay in core.Result, and that delay
// must be the predecessor's virtual completion time — admission, replay,
// and flash share one clock.
func TestAdmissionCapsCreateQueueDelay(t *testing.T) {
	a := recordTrace(t, "Filter")
	b := recordTrace(t, "Aggregate")
	cfg := DefaultConfig()
	cfg.AdmissionSlots = 1
	results, err := RunMulti([]*workload.Trace{a, b}, ModeIceClave, cfg)
	if err != nil {
		t.Fatal(err)
	}
	first, second := results[0], results[1]
	if first.QueueDelay != 0 {
		t.Fatalf("first tenant queued %v, want 0", first.QueueDelay)
	}
	if second.QueueDelay <= 0 {
		t.Fatalf("second tenant queued %v, want > 0", second.QueueDelay)
	}
	// With one slot the second tenant's grant is exactly the first
	// tenant's completion (including its TEE deletion cost).
	if second.QueueDelay != first.Total {
		t.Fatalf("second tenant queued %v, want the first tenant's total %v",
			second.QueueDelay, first.Total)
	}
	if second.Total <= second.QueueDelay {
		t.Fatalf("total %v does not include the queueing delay %v",
			second.Total, second.QueueDelay)
	}
}

// TestAdmissionUncappedMatchesDefault pins backward compatibility: with
// the zero-value admission config, RunMulti reports zero queueing delay
// and the single-trace path is unchanged by the backbone refactor.
func TestAdmissionUncappedMatchesDefault(t *testing.T) {
	a := recordTrace(t, "Filter")
	b := recordTrace(t, "Aggregate")
	results, err := RunMulti([]*workload.Trace{a, b}, ModeIceClave, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	for i, r := range results {
		if r.QueueDelay != 0 {
			t.Fatalf("tenant %d queued %v with no admission caps", i, r.QueueDelay)
		}
	}
}

// TestAdmissionTenantSlotsSerializeSameWorkload pins the per-tenant cap:
// two instances of one workload name share a tenant key, so a per-tenant
// cap of one serializes them even with global slots to spare.
func TestAdmissionTenantSlotsSerializeSameWorkload(t *testing.T) {
	a := recordTrace(t, "Filter")
	cfg := DefaultConfig()
	cfg.AdmissionTenantSlots = 1
	results, err := RunMulti([]*workload.Trace{a, a}, ModeIceClave, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if results[0].QueueDelay != 0 {
		t.Fatalf("first instance queued %v, want 0", results[0].QueueDelay)
	}
	if results[1].QueueDelay != results[0].Total {
		t.Fatalf("second instance queued %v, want %v", results[1].QueueDelay, results[0].Total)
	}
}
