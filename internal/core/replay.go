package core

import (
	"errors"
	"fmt"
	"time"

	"iceclave/internal/cpu"
	"iceclave/internal/dram"
	"iceclave/internal/fault"
	"iceclave/internal/flash"
	"iceclave/internal/ftl"
	"iceclave/internal/host"
	"iceclave/internal/mee"
	"iceclave/internal/sched"
	"iceclave/internal/sim"
	"iceclave/internal/workload"
)

// Result is the outcome of replaying one workload trace under one mode.
type Result struct {
	Workload string
	Mode     Mode

	// Total is the end-to-end simulated time from the tenant's arrival
	// (t=0, or its scheduled submission instant under
	// Config.ArrivalSchedule) to its completion, including QueueDelay.
	Total sim.Duration
	// QueueDelay is the simulated time the tenant waited for admission
	// between its arrival and its grant — nonzero only under RunMulti
	// with Config.AdmissionSlots / AdmissionTenantSlots caps set. Under
	// an ArrivalSchedule the wait counts from the scheduled arrival, so a
	// late arrival's pre-arrival idle is never queueing delay.
	QueueDelay sim.Duration
	// LoadTime is time stalled on storage I/O (flash and, on the host
	// path, PCIe).
	LoadTime sim.Duration
	// ComputeTime is pure instruction execution.
	ComputeTime sim.Duration
	// SecurityTime is the memory encryption/verification and stream
	// cipher overhead (the "Memory Encrypt" segment of Figure 11).
	SecurityTime sim.Duration
	// TEETime is TEE creation/termination and world-switch overhead.
	TEETime sim.Duration

	// CMTMissRate is the cached-mapping-table miss fraction (§6.3).
	CMTMissRate float64
	// MEE is the memory-protection traffic accounting (Table 6).
	MEE mee.TrafficStats
	// PageCacheHitRate is the controller DRAM data-cache hit fraction.
	PageCacheHitRate float64

	// Retries counts the step-level retries the tenant's replay scheduled
	// after recoverable faults (Config.FaultPlan); zero without a plan.
	Retries int
	// BreakerTrips counts how many times the tenant's circuit breaker
	// opened during the replay.
	BreakerTrips int
	// Failed reports that the replay gave up before draining its trace:
	// the retry budget or offload deadline was exhausted. Total then
	// measures arrival to the failure instant.
	Failed bool
}

// Throughput returns input bytes per simulated second.
func (r Result) Throughput(inputBytes int64) float64 {
	if r.Total <= 0 {
		return 0
	}
	return float64(inputBytes) / r.Total.Seconds()
}

// SpeedupOver returns other.Total / r.Total: >1 means r is faster.
func (r Result) SpeedupOver(other Result) float64 {
	if r.Total <= 0 {
		return 0
	}
	return float64(other.Total) / float64(r.Total)
}

// resources is the shared hardware one replay run executes against.
// Tenants contend on everything here. A resources instance is owned by
// exactly one run at a time; between runs it may rest in the resource
// pool keyed by key, and reset recycles it (see pool.go).
type resources struct {
	cfg       Config
	key       poolKey
	dev       *flash.Device
	ftl       *ftl.FTL
	cmt       *ftl.MappingCache
	pageCache *dram.PageCache
	storage   *cpu.Complex
	hostCPU   *cpu.Complex
	pcie      *host.PCIe

	// brk is the per-tenant circuit-breaker set of the stack's last
	// faulty run, recycled with the stack under the reset contract:
	// acquireBreakers resets every breaker before reuse, so trips and
	// open/half-open state never leak across pooled-stack reuse. nil
	// until the first run that breaks circuits.
	brk *sched.Breakers
}

// acquireBreakers returns the stack's breaker set for cfg, recycling the
// pooled set (every breaker reset to closed, zero trips) when its
// configuration matches, and building a fresh set otherwise.
func (r *resources) acquireBreakers(cfg sim.BreakerConfig) *sched.Breakers {
	if r.brk != nil && r.brk.Config() == cfg {
		r.brk.Reset()
		return r.brk
	}
	r.brk = sched.NewBreakers(cfg)
	return r.brk
}

// pageCacheBytes returns the page cache capacity cfg sizes for page size
// ps: the DRAM fraction rounded down to a power-of-two set count (cache
// geometry requires one). The pool keys recyclable page caches by this
// value.
func pageCacheBytes(cfg Config, ps uint64) uint64 {
	sets := uint64(float64(cfg.DRAMBytes)*cfg.PageCacheFraction) / (ps * 8)
	for sets&(sets-1) != 0 {
		sets &= sets - 1
	}
	if sets == 0 {
		sets = 1
	}
	return sets * ps * 8
}

// buildResources assembles a replay stack for cfg over geo, pulling each
// component from its pool when a compatible one is idle (reset on
// acquire) and allocating only what is missing. The page cache — the
// single most expensive allocation in setup — depends only on the
// configuration, so it recycles across workloads whose flash geometries
// differ.
func buildResources(cfg Config, key poolKey) (*resources, error) {
	ps := uint64(key.geo.PageSize)
	df, ok := pool.acquireDev(devKey{key.geo, cfg.FlashTiming})
	if ok {
		df.dev.Reset()
		df.f.Reset()
	} else {
		dev, err := flash.NewDevice(key.geo, cfg.FlashTiming)
		if err != nil {
			return nil, err
		}
		df = devFTL{dev, ftl.New(dev, ftl.Config{})}
	}
	pcBytes := pageCacheBytes(cfg, ps)
	pc := pool.acquirePage(cacheKey{pcBytes, ps})
	if pc != nil {
		pc.Reset()
	} else {
		pc = dram.NewPageCache(pcBytes, ps)
	}
	cmt := pool.acquireCMT(cacheKey{cfg.CMTBytes, ps})
	if cmt != nil {
		cmt.Reset()
	} else {
		cmt = ftl.NewMappingCache(cfg.CMTBytes, ps)
	}
	return &resources{
		cfg:       cfg,
		key:       key,
		dev:       df.dev,
		ftl:       df.f,
		cmt:       cmt,
		pageCache: pc,
		storage:   cpu.NewComplex(cfg.StorageCore, cfg.StorageCores),
		hostCPU:   cpu.NewComplex(cfg.HostCore, 1),
		pcie:      host.NewPCIe(cfg.PCIe),
	}, nil
}

// reset returns every layer of a recycled stack to its post-construction
// state — the full reset contract of ARCHITECTURE.md: device page states,
// payloads, and erase bookkeeping; FTL mapping table, free pools, and
// in-flight markers; both caches; CPU, and PCIe servers. After reset the
// stack is indistinguishable from buildResources output.
func (r *resources) reset() {
	r.dev.Reset()
	r.ftl.Reset()
	r.cmt.Reset()
	r.pageCache.Reset()
	r.storage.Reset()
	r.hostCPU.Reset()
	r.pcie.Reset()
	if r.brk != nil {
		r.brk.Reset()
	}
}

// sealSetup is the single post-setup reset point between prepopulation
// and the measured replay: it clears device timing reservations and
// device stats AND the FTL's activity counters, so setup writes leak into
// neither layer's reported figures. (Mapping and page state intentionally
// survive — they are the dataset.) It replaces the bare dev.ResetTiming()
// this path used to call, which left FTL-side erase/GC/write counters
// from prepopulation visible to the measured run.
func (r *resources) sealSetup() {
	r.dev.ResetTiming()
	r.ftl.ResetStats()
}

// newResources sizes and populates the device for the given traces: each
// tenant's logical pages are placed at a disjoint LPA offset. The stack
// comes from the resource pool when a matching idle one exists (reset on
// acquire), otherwise from a fresh build.
func newResources(cfg Config, traces []*workload.Trace) (*resources, []uint32, error) {
	start := time.Now()
	stride := int64(0)
	for _, tr := range traces {
		s := int64(tr.SetupPages) + int64(tr.Meter.PagesWritten) + 1024
		if s > stride {
			stride = s
		}
	}
	totalPages := stride * int64(len(traces))
	geo, err := cfg.geometryFor(totalPages)
	if err != nil {
		return nil, nil, err
	}
	key := poolKey{cfg: cfg, geo: geo}
	res := pool.acquire(key)
	if res != nil {
		res.reset()
	} else if res, err = buildResources(cfg, key); err != nil {
		return nil, nil, err
	}
	f := res.ftl
	if f.LogicalPages() < totalPages {
		return nil, nil, fmt.Errorf("core: sized %d logical pages, need %d", f.LogicalPages(), totalPages)
	}
	// Prepopulate every tenant's dataset pages (timing discarded).
	offsets := make([]uint32, len(traces))
	for i, tr := range traces {
		offsets[i] = uint32(int64(i) * stride)
		var at sim.Time
		for p := 0; p < tr.SetupPages; p++ {
			done, err := f.Write(at, ftl.LPA(offsets[i])+ftl.LPA(p), nil)
			if err != nil {
				return nil, nil, fmt.Errorf("core: prepopulate %s page %d: %w", tr.Name, p, err)
			}
			at = done
		}
	}
	res.sealSetup()
	pool.addSetup(time.Since(start).Nanoseconds())
	return res, offsets, nil
}

// Parallel-replay prepare pipeline sizing: each tenant's MEE charge
// stream may run up to prepDepth steps ahead of its commits, computed
// prepBatch steps per shard event so dispatch overhead amortizes. The
// pipe channel holds prepDepth/prepBatch batches, so a prepare event can
// never block on a full channel (at most prepDepth scheduled-unconsumed
// steps exist by the pump invariant) — which is what keeps shard workers
// from ever waiting on the coordinator.
const (
	prepDepth = 4096
	prepBatch = 256
)

// prepPipe carries one tenant's precomputed MEE charges from its shard
// worker to the commit loop on the coordinator. Everything except ch,
// free, and workerNext is coordinator-owned. free recycles fully-consumed
// batch buffers back to the worker, so the steady-state pipeline
// allocates nothing — the sharded leg must not generate garbage (and
// therefore GC debt) the serial leg does not.
type prepPipe struct {
	ch        chan []sim.Duration
	free      chan []sim.Duration
	buf       []sim.Duration
	bufIdx    int
	nextBatch int
	nBatches  int
	consumed  int

	// workerNext is the next batch index the shard worker will compute.
	// It is worker-owned: prepare events for one tenant all land on one
	// shard, execute FIFO in dispatch order, and dispatch order is batch
	// order, so a single reusable prepare closure can track the index
	// itself instead of capturing it (one closure per batch is garbage the
	// hot path doesn't need).
	workerNext int
}

func newPrepPipe(totalSteps int) *prepPipe {
	return &prepPipe{
		ch:       make(chan []sim.Duration, prepDepth/prepBatch),
		free:     make(chan []sim.Duration, prepDepth/prepBatch),
		nBatches: (totalSteps + prepBatch - 1) / prepBatch,
	}
}

// next returns the charge for the next step in order, blocking until its
// batch's prepare event (always dispatched before the consuming commit by
// the pump ordering) has completed on the shard worker.
func (p *prepPipe) next() sim.Duration {
	if p.bufIdx == len(p.buf) {
		if p.buf != nil {
			select {
			case p.free <- p.buf:
			default:
			}
		}
		p.buf = <-p.ch
		p.bufIdx = 0
	}
	v := p.buf[p.bufIdx]
	p.bufIdx++
	p.consumed++
	return v
}

// getBuf returns a recycled batch buffer, or a fresh one while the
// pipeline warms up. Worker-side.
func (p *prepPipe) getBuf() []sim.Duration {
	select {
	case b := <-p.free:
		return b[:0]
	default:
		return make([]sim.Duration, 0, prepBatch)
	}
}

// tenant replays one trace against shared resources.
type tenant struct {
	res    *resources
	trace  *workload.Trace
	mode   Mode
	offset uint32
	rng    *sim.RNG
	meeM   *mee.TrafficModel

	// shard and pre are set only on the sharded engine (EngineWorkers >
	// 1) for modes with an MEE model: the tenant's charge stream is
	// precomputed on event shard `shard` (its channel by FTL affinity)
	// and consumed through pre in exact step order. The charge
	// computation is timing-independent — it reads only static step
	// fields and tenant-private model state (meeM, rng, heapScratch) — so
	// moving it off the commit path cannot change any Result bit.
	shard int
	pre   *prepPipe
	// prepFn is the single reusable prepare-event callback (see
	// prepPipe.workerNext); scheduling it repeatedly avoids a closure
	// allocation per batch.
	prepFn func(sim.Time)

	// arrival is the tenant's scheduled submission instant; zero without
	// an ArrivalSchedule. QueueDelay and Total count from it.
	arrival       sim.Time
	now           sim.Time
	step          int
	lastWrite     sim.Time
	heapPages     uint64
	secMapPending int
	// heapScratch is the reused address buffer chargeMEE fills per step;
	// it grows to the largest step's batch once and never reallocates, so
	// the per-step hot path stays allocation-free.
	heapScratch []uint64

	// Sliding-window prefetcher state: read steps are issued up to
	// PrefetchWindow ahead of consumption, which is what lets a scan
	// saturate all channels instead of serializing on per-page latency.
	readSteps   []int
	readDone    []sim.Time
	nextIssue   int
	nextConsume int
	window      int

	result          Result
	cmtHit, cmtMiss int64

	// Fault-recovery state, armed only when the run has a fault plan.
	// faults is the plan; tenantIdx keys the tenant's MAC-fault stream;
	// macOps counts its MAC verifications. policy is the retry/backoff
	// budget, breaker the per-tenant circuit (shared by same-named
	// tenants), granted the admission instant the offload deadline counts
	// from. retry re-runs just the faulted storage phase (the step's
	// compute and translation charges are never re-applied); attempts
	// counts the current step's failures; readErr records the newest
	// failed prefetch issue, surfaced when consumption catches up.
	faults    *fault.Plan
	tenantIdx int
	macOps    uint64
	policy    sched.RetryPolicy
	breaker   *sim.Breaker
	granted   sim.Time
	retry     func() error
	attempts  int
	readErr   error
}

func newTenant(res *resources, tr *workload.Trace, mode Mode, offset uint32, seed uint64) *tenant {
	t := &tenant{
		res:    res,
		trace:  tr,
		mode:   mode,
		offset: offset,
		rng:    sim.NewRNG(seed),
		result: Result{Workload: tr.Name, Mode: mode},
	}
	writes := 0
	for i, st := range tr.Steps {
		if st.Op == workload.OpRead {
			t.readSteps = append(t.readSteps, i)
		} else {
			writes++
		}
	}
	t.readDone = make([]sim.Time, len(t.readSteps))
	// Scans prefetch deeply (streaming readahead); transactional traces
	// have dependent point accesses, so their effective queue depth is
	// the modest transaction-level concurrency.
	t.window = res.cfg.PrefetchWindow
	if len(tr.Steps) > 0 && float64(writes)/float64(len(tr.Steps)) > 0.05 {
		t.window = 8
	}
	// The writable intermediate region is sized from the workload's
	// measured working set (hash tables, buckets, output buffers),
	// bounded by the 16 MB TEE heap preallocation.
	t.heapPages = uint64(tr.Meter.Intermediate/mee.PageSize) + 1
	if t.heapPages > maxHeapPages {
		t.heapPages = maxHeapPages
	}
	if mode == ModeIceClave {
		sampling := res.cfg.MEESampling
		if sampling < 1 {
			sampling = 1
		}
		t.meeM = mee.NewTrafficModel(mee.TrafficConfig{
			Mode:              res.cfg.MEEMode,
			CounterCacheBytes: res.cfg.CounterCacheBytes,
			SampleWeight:      sampling,
		})
		// The intermediate/result region of the TEE heap is writable;
		// input pages default to read-only.
		for p := uint64(0); p < t.heapPages; p++ {
			t.meeM.SetPageWritable(heapBasePage+p, true)
		}
	}
	return t
}

// The synthesized TEE-heap address region for intermediate data: up to
// 16 MB of writable pages far above any input page index.
const (
	heapBasePage = uint64(1) << 22
	maxHeapPages = uint64(16<<20) / mee.PageSize
)

// secMapBatch is how many translations the secure-world-mapping variant
// amortizes per world-switch round trip (Figure 5 comparison).
const secMapBatch = 8

// done reports whether the tenant has consumed its whole trace.
func (t *tenant) done() bool { return t.step > len(t.trace.Steps) }

// advance replays the next step. Steps 0..len-1 are storage ops with their
// preceding compute; step len is the tail compute. A non-nil error is a
// recoverable fault from the storage phase; the step's compute and
// translation charges are already applied and t.retry re-runs just the
// faulted remainder.
func (t *tenant) advance() error {
	if t.done() {
		return nil
	}
	var st workload.Step
	tail := t.step == len(t.trace.Steps)
	if tail {
		st = t.trace.Tail
	} else {
		st = t.trace.Steps[t.step]
	}
	t.step++

	// Compute phase: instructions on the mode's CPU, memory-security
	// charges on the step's memory accesses.
	t.computePhase(st)
	if tail {
		// Wait out buffered writes at the end.
		if t.lastWrite > t.now {
			t.result.LoadTime += t.lastWrite - t.now
			t.now = t.lastWrite
		}
		return nil
	}

	// Storage phase. On a fault, arm t.retry with just the fallible half
	// so a retry never re-applies the compute and translation charges.
	lpa := ftl.LPA(t.offset + st.LPA)
	if st.Op == workload.OpRead {
		if err := t.readPhase(st, lpa); err != nil {
			t.retry = t.consumeRead
			return err
		}
		return nil
	}
	if err := t.writePhase(st, lpa); err != nil {
		t.retry = func() error { return t.writePhase(st, lpa) }
		return err
	}
	return nil
}

func (t *tenant) computePhase(st workload.Step) {
	if st.PreInstr > 0 {
		if t.mode.InStorage() {
			// Core-queueing delay under multi-tenancy counts as compute
			// interference.
			_, done := t.res.storage.Run(t.now, st.PreInstr)
			t.result.ComputeTime += done - t.now
			t.now = done
		} else {
			_, done := t.res.hostCPU.Run(t.now, st.PreInstr)
			base := done - t.now
			t.result.ComputeTime += base
			t.now = done
			if t.mode == ModeHostSGX {
				pen := t.res.cfg.SGX.ComputePenalty(base, int64(t.trace.PageSize))
				t.now += pen
				t.result.SecurityTime += pen
			}
		}
	}
	// MEE charges for the compute window's memory traffic (IceClave only).
	// On the sharded engine the charge was precomputed on the tenant's
	// event shard; consuming it here in step order applies the identical
	// sequence of exposures (steps without memory traffic carry a zero,
	// preserving the RNG and model state stream exactly).
	if t.meeM != nil {
		if t.pre != nil {
			exposed := t.pre.next()
			t.now += exposed
			t.result.SecurityTime += exposed
		} else if st.PreMemReads > 0 || st.PreMemWrites > 0 {
			t.chargeMEE(st)
		}
	}
}

// chargeMEE synthesizes addresses for the step's memory accesses and runs
// them (sampled) through the counter-cache model's bulk APIs. Heap traffic
// (hash tables, aggregation state, intermediate buffers) follows a skewed
// distribution — hot structures dominate — and the exposed cost of the
// extra metadata traffic is scaled by MEEExposure because memory-level
// parallelism overlaps most of it with execution.
//
// This is the hottest loop in the whole experiment suite: every replayed
// step funnels its memory accesses through here. The input scan goes
// through AccessSeq (one call per step, run-collapsed metadata probes) and
// the heap batch through AccessMany over a reused scratch slice, so the
// per-step path allocates nothing and pays no per-access call or closure
// overhead. The access stream — addresses, order, and RNG draws — is
// exactly the per-line loop's, so every reported statistic is unchanged
// (mee's differential suite pins the model side; the suite's
// output_identical check pins end to end).
func (t *tenant) chargeMEE(st workload.Step) {
	exposed := t.chargeCost(st)
	t.now += exposed
	t.result.SecurityTime += exposed
}

// chargeCost is chargeMEE's computation half: it advances the tenant's
// MEE model, RNG, and scratch state and returns the exposed duration
// without applying it to the clock. It touches no shared or
// timing-dependent state, which is what lets the sharded engine run it
// ahead on a parallel worker.
func (t *tenant) chargeCost(st workload.Step) sim.Duration {
	sampling := int64(t.res.cfg.MEESampling)
	if sampling < 1 {
		sampling = 1
	}
	var extra sim.Duration
	// Input page scan: sequential read-only lines at the page's address,
	// every sampling-th line.
	pageLines := int64(t.trace.PageSize / mee.LineSize)
	seqReads := st.PreMemReads
	if seqReads > pageLines {
		seqReads = pageLines
	}
	base := uint64(st.LPA) * uint64(t.trace.PageSize)
	if n := (seqReads + sampling - 1) / sampling; n > 0 {
		extra += t.meeM.AccessSeq(base, n, false, uint64(sampling)*mee.LineSize)
	}
	// Remaining reads and all writes: skewed traffic in the writable
	// intermediate heap. Only the cache-miss fraction of heap accesses
	// reaches DRAM (and thus the MEE); the processor caches absorb the
	// rest (~25% miss). Addresses are drawn read-batch first, then
	// write-batch — the same RNG sequence the per-line loop consumed.
	randReads := (st.PreMemReads - seqReads) / 4
	randWrites := st.PreMemWrites / 4
	nr := (randReads + sampling - 1) / sampling
	nw := (randWrites + sampling - 1) / sampling
	if need := int(nr + nw); cap(t.heapScratch) < need {
		t.heapScratch = make([]uint64, need)
	}
	addrs := t.heapScratch[:nr+nw]
	for i := range addrs {
		page := heapBasePage + uint64(t.rng.Zipf(int64(t.heapPages), 0.85, 0.05))
		addrs[i] = page*mee.PageSize + uint64(t.rng.Intn(mee.LinesPerPage))*mee.LineSize
	}
	extra += t.meeM.AccessMany(addrs[:nr], false)
	extra += t.meeM.AccessMany(addrs[nr:], true)
	return sim.Duration(float64(extra) * t.res.cfg.MEEExposure)
}

// stepAt returns step k of the replay's step sequence; index len(Steps)
// is the tail compute, matching advance.
func (t *tenant) stepAt(k int) workload.Step {
	if k == len(t.trace.Steps) {
		return t.trace.Tail
	}
	return t.trace.Steps[k]
}

// prepareNextBatch computes the MEE charges for the worker's next prepare
// batch (workerNext — see prepPipe; dispatch order is batch order, so the
// worker can track the index itself). It runs on the tenant's event shard
// and touches only tenant-private state; steps without memory traffic
// contribute a zero without touching the model, exactly mirroring the
// serial chargeMEE guard.
func (t *tenant) prepareNextBatch() {
	p := t.pre
	b := p.workerNext
	p.workerNext++
	start := b * prepBatch
	end := start + prepBatch
	if total := len(t.trace.Steps) + 1; end > total {
		end = total
	}
	out := p.getBuf()
	for k := start; k < end; k++ {
		st := t.stepAt(k)
		var d sim.Duration
		if st.PreMemReads > 0 || st.PreMemWrites > 0 {
			d = t.chargeCost(st)
		}
		out = append(out, d)
	}
	p.ch <- out
}

// pumpPrepares schedules prepare batches on the tenant's shard until the
// stream is prepDepth steps ahead of consumption. Coordinator-only. The
// ordering invariant the pipeline rests on: a batch is always scheduled
// (at the current instant, with a smaller seq) before the commit event
// that first consumes it is scheduled, so in the engine's global
// (time, seq) order the prepare is dispatched to its worker before the
// consuming commit runs — the blocking receive in prepPipe.next can only
// ever wait on in-flight work, never on an unscheduled batch.
func (t *tenant) pumpPrepares(eng sim.Backbone) {
	p := t.pre
	for p.nextBatch < p.nBatches && p.nextBatch*prepBatch < p.consumed+prepDepth {
		p.nextBatch++
		eng.AtShard(t.shard, eng.Now(), t.prepFn)
	}
}

// issueAhead issues queued read steps until the prefetch window is full,
// with arrival time t.now. Completion times are stored for consumption.
// A device read failing with an injected fault stops the issue loop and
// records the error; while it is pending no further issues happen (a
// re-attempt must come from the step-level retry machinery, with its
// backoff and accounting, never as a free side effect of window
// refills). consumeRead surfaces the error once consumption catches up
// to the failed issue, clearing it so the scheduled retry reissues.
func (t *tenant) issueAhead() {
	cfg := t.res.cfg
	if t.readErr != nil {
		return
	}
	for t.nextIssue < len(t.readSteps) && t.nextIssue < t.nextConsume+t.window {
		st := t.trace.Steps[t.readSteps[t.nextIssue]]
		lpa := ftl.LPA(t.offset + st.LPA)
		// Controller page cache: a hit skips the flash read entirely
		// (in-storage modes only — the host path always pulls over PCIe).
		if t.mode.InStorage() && t.res.pageCache.Touch(uint64(lpa), false) {
			t.readDone[t.nextIssue] = t.now
			t.nextIssue++
			continue
		}
		ppa, err := t.res.ftl.Translate(lpa)
		if err != nil {
			// Reads of never-written pages can only be a replay-layer bug.
			panic(fmt.Sprintf("core: replay translate %d: %v", lpa, err))
		}
		done, _, err := t.res.dev.Read(t.now, ppa)
		if err != nil {
			if t.faults == nil || !isFaultErr(err) {
				panic(fmt.Sprintf("core: replay read %d: %v", ppa, err))
			}
			// The Touch above inserted the page on its miss, but the data
			// never arrived — evict it, or the retry would be served a
			// phantom hit from DRAM.
			if t.mode.InStorage() {
				t.res.pageCache.Evict(uint64(lpa))
			}
			t.readErr = fmt.Errorf("core: read step %d: %w", t.readSteps[t.nextIssue], err)
			return
		}
		if t.mode == ModeIceClave {
			// The stream cipher engine decrypts inline at bus rate; its
			// per-page latency extends the read completion but is hidden
			// by prefetching unless the read is on the critical path.
			done += cfg.CipherPerPage
		}
		if !t.mode.InStorage() {
			// Ship to host memory over PCIe with amortized command cost.
			done = t.res.pcie.TransferStream(done, int64(t.trace.PageSize))
		}
		t.readDone[t.nextIssue] = done
		t.nextIssue++
	}
}

// readPhase consumes the next prefetched read, charging translation costs
// and stalling until the data is resident. A fault surfacing from the
// consume half is returned; its retry re-enters consumeRead directly, so
// the translation charges are never re-applied.
func (t *tenant) readPhase(st workload.Step, lpa ftl.LPA) error {
	cfg := t.res.cfg
	// Address translation on the consume path.
	switch {
	case t.mode == ModeIceClave && cfg.SecureWorldMapping:
		// Figure 5 variant: translations must cross into the secure world.
		// The runtime batches a cluster of translations per crossing
		// (eight here), but unlike the protected region the switches sit
		// on the critical path of every flash access.
		t.secMapPending++
		if t.secMapPending >= secMapBatch {
			t.secMapPending = 0
			sw := 2 * cfg.Costs.WorldSwitch
			t.now += sw
			t.result.TEETime += sw
		}
	case t.mode == ModeIceClave:
		if t.res.cmt.Lookup(lpa) {
			t.cmtHit++
		} else {
			t.cmtMiss++
			pen := 2*cfg.Costs.WorldSwitch + cfg.FlashTiming.ReadLatency
			t.now += pen
			t.result.TEETime += pen
		}
	case t.mode == ModeISC:
		// Translation through the (unprotected) cached mapping table;
		// misses fetch the mapping page without world switches.
		if t.res.cmt.Lookup(lpa) {
			t.cmtHit++
		} else {
			t.cmtMiss++
			t.now += cfg.FlashTiming.ReadLatency
			t.result.LoadTime += cfg.FlashTiming.ReadLatency
		}
	}
	return t.consumeRead()
}

// consumeRead is readPhase's fallible half: fill the prefetch window,
// then consume the next read in order. It is also the retry entry for a
// faulted read step. Two fault classes surface here: a device read fault
// recorded by issueAhead once every successfully issued read before it
// has been consumed, and (IceClave mode, with a plan) a deterministic
// MAC-verification failure on the consumed page — the consume cursor is
// not advanced then, so the retry re-verifies the same page under a
// fresh ordinal.
func (t *tenant) consumeRead() error {
	t.issueAhead()
	if t.nextConsume >= t.nextIssue {
		err := t.readErr
		if err == nil {
			panic(fmt.Sprintf("core: replay consume %d with no issued read", t.nextConsume))
		}
		t.readErr = nil
		return err
	}
	done := t.readDone[t.nextConsume]
	if t.faults != nil && t.mode == ModeIceClave {
		n := t.macOps
		t.macOps++
		if t.faults.MACFault(t.tenantIdx, n) {
			if done > t.now {
				t.result.LoadTime += done - t.now
				t.now = done
			}
			return fmt.Errorf("core: read step MAC verification (tenant %d, op %d): %w",
				t.tenantIdx, n, mee.ErrIntegrity)
		}
	}
	t.nextConsume++
	if done > t.now {
		t.result.LoadTime += done - t.now
		t.now = done
	}
	return nil
}

// writePhase performs a buffered page write: the program continues while
// the flash program completes in the background. A write fault (the FTL
// already exhausted its own bad-block re-staging before surfacing one)
// is returned for step-level retry; the retry re-runs the whole phase.
func (t *tenant) writePhase(st workload.Step, lpa ftl.LPA) error {
	if t.mode.InStorage() {
		t.res.pageCache.Touch(uint64(lpa), true)
	}
	done, err := t.res.ftl.Write(t.now, lpa, nil)
	if err != nil {
		if t.faults == nil || !isFaultErr(err) {
			panic(fmt.Sprintf("core: replay write %d: %v", lpa, err))
		}
		return fmt.Errorf("core: write step: %w", err)
	}
	if t.mode == ModeIceClave {
		t.res.cmt.Update(lpa)
	}
	if !t.mode.InStorage() {
		done = t.res.pcie.TransferStreamDown(done, int64(t.trace.PageSize))
	}
	if done > t.lastWrite {
		t.lastWrite = done
	}
	return nil
}

// finish computes the derived statistics.
func (t *tenant) finish() Result {
	t.result.Total = sim.Duration(t.now - t.arrival)
	if t.cmtHit+t.cmtMiss > 0 {
		t.result.CMTMissRate = float64(t.cmtMiss) / float64(t.cmtHit+t.cmtMiss)
	}
	if t.meeM != nil {
		t.result.MEE = t.meeM.Stats()
	}
	t.result.PageCacheHitRate = t.res.pageCache.Stats().HitRate()
	return t.result
}

// Run replays a single trace under mode with the given configuration.
func Run(tr *workload.Trace, mode Mode, cfg Config) (Result, error) {
	results, err := RunMulti([]*workload.Trace{tr}, mode, cfg)
	if err != nil {
		return Result{}, err
	}
	return results[0], nil
}

// begin opens the tenant's replay at its admission time: the clock starts
// at the grant (so queueing delay is part of Total), the wait is measured
// from the tenant's arrival, and the Table 5 creation cost is charged.
func (t *tenant) begin(granted sim.Time) {
	t.now = granted
	t.granted = granted
	t.result.QueueDelay = sim.Duration(granted - t.arrival)
	if t.mode == ModeIceClave {
		t.now += t.res.cfg.Costs.Create
		t.result.TEETime += t.res.cfg.Costs.Create
	}
}

// isFaultErr reports whether err belongs to the recoverable fault
// taxonomy the replay retries: injected flash faults, a device filled by
// block/die retirement, or a page-integrity failure. Anything else is a
// replay-layer bug and keeps the pre-fault panic behaviour.
func isFaultErr(err error) bool {
	return errors.Is(err, flash.ErrTransientRead) ||
		errors.Is(err, flash.ErrProgramFail) ||
		errors.Is(err, flash.ErrDieDead) ||
		errors.Is(err, ftl.ErrDeviceFull) ||
		errors.Is(err, mee.ErrIntegrity)
}

// retryPolicy resolves the config's fault knobs into the effective
// per-step retry/backoff budget.
func retryPolicy(cfg Config) sched.RetryPolicy {
	p := sched.RetryPolicy{
		MaxRetries: cfg.FaultRetryLimit,
		Backoff:    cfg.FaultBackoff,
		BackoffCap: cfg.FaultBackoffCap,
		Timeout:    cfg.OffloadTimeout,
	}
	if p.MaxRetries == 0 {
		p.MaxRetries = 16
	} else if p.MaxRetries < 0 {
		p.MaxRetries = 0
	}
	if p.Backoff == 0 {
		p.Backoff = 100 * sim.Microsecond
	}
	if p.BackoffCap == 0 {
		p.BackoffCap = 2 * sim.Millisecond
	}
	return p
}

// faultEvent handles a recoverable fault from the current step: count
// the failure against the tenant's circuit breaker, then either
// schedule a capped-exponential-backoff retry on the virtual clock
// (parked until the half-open probe window when the circuit is open) or
// fail the offload once the step's retry budget or the offload deadline
// is exhausted.
func (t *tenant) faultEvent(eng sim.Backbone, adm *sched.VirtualAdmission, ticket *sim.Ticket) {
	t.attempts++
	if t.breaker != nil && t.breaker.Failure(t.now) {
		t.result.BreakerTrips++
	}
	deadlineHit := t.policy.Timeout > 0 && t.now >= t.granted+sim.Time(t.policy.Timeout)
	if t.attempts > t.policy.MaxRetries || deadlineHit {
		t.fail(adm, ticket)
		return
	}
	t.result.Retries++
	next := t.now + t.policy.BackoffFor(t.attempts-1)
	if t.breaker != nil {
		if until, err := t.breaker.Allow(next); err != nil {
			// Circuit open past the backoff: shed until the cooldown ends,
			// and make the parked retry the half-open probe.
			next = until
			t.breaker.Allow(next)
		}
	}
	t.now = next
	eng.AtOverlap(t.now, func(sim.Time) { t.stepEvent(eng, adm, ticket) })
}

// fail abandons the offload: the tenant stops consuming its trace,
// charges teardown, and releases its admission slot so queued tenants
// still get their grants — graceful degradation, never a stuck engine.
func (t *tenant) fail(adm *sched.VirtualAdmission, ticket *sim.Ticket) {
	t.result.Failed = true
	t.retry = nil
	t.step = len(t.trace.Steps) + 2 // past done: never advances again
	if t.mode == ModeIceClave {
		t.now += t.res.cfg.Costs.Delete
		t.result.TEETime += t.res.cfg.Costs.Delete
	}
	adm.Release(ticket, t.now)
}

// stepEvent is one backbone event: replay one step, then reschedule at the
// tenant's advanced clock. A drained trace charges the deletion cost and
// releases the admission slot — which is what lets a queued tenant's grant
// fire at this tenant's virtual completion time.
//
// Commits are AtOverlap events: on the sharded engine they run on the
// coordinator in exact global order but without the barrier, because the
// only state they share with in-flight shard work is the prepare pipe —
// whose channel is the synchronization. Everything else a commit touches
// (servers, caches, FTL, device) is coordinator-confined during a
// parallel run. On the serial engine AtOverlap is At, so this is the
// pre-sharding behaviour verbatim.
func (t *tenant) stepEvent(eng sim.Backbone, adm *sched.VirtualAdmission, ticket *sim.Ticket) {
	if t.done() {
		if t.mode == ModeIceClave {
			t.now += t.res.cfg.Costs.Delete
			t.result.TEETime += t.res.cfg.Costs.Delete
		}
		adm.Release(ticket, t.now)
		return
	}
	var err error
	if op := t.retry; op != nil {
		// Retry just the faulted storage phase; the closure stays armed
		// until it succeeds, so repeated failures re-run the same half.
		if err = op(); err == nil {
			t.retry = nil
		}
	} else {
		err = t.advance()
	}
	if err != nil {
		t.faultEvent(eng, adm, ticket)
		return
	}
	if t.attempts > 0 {
		t.attempts = 0
		if t.breaker != nil {
			t.breaker.Success(t.now)
		}
	}
	if t.pre != nil {
		t.pumpPrepares(eng)
	}
	eng.AtOverlap(t.now, func(sim.Time) { t.stepEvent(eng, adm, ticket) })
}

// RunMulti replays several traces concurrently against shared hardware —
// the multi-tenant experiments of Figures 17 and 18. One discrete-event
// virtual-time backbone spans the whole run: tenants submit to the sched
// package's simulated-time admission gate, grants and replay steps are
// engine events in virtual-time order, and tenants contend for channels,
// dies, cores, the mapping cache, and the page cache through the same
// clock. With admission caps configured, the wait for a slot appears in
// each Result's QueueDelay (and in its Total).
//
// Submission timing is closed-loop by default — every tenant submits at
// time zero with PriorityNormal, the saturation regime. A non-nil
// cfg.ArrivalSchedule switches to open-loop trace playback: tenant i
// enters the gate at Submissions[i].At in its entry's priority band, with
// its entry's tenant key, and its QueueDelay/Total count from that
// arrival instant.
func RunMulti(traces []*workload.Trace, mode Mode, cfg Config) ([]Result, error) {
	out, _, err := RunMultiStats(traces, mode, cfg)
	return out, err
}

// RunStats are whole-run statistics that have no per-tenant home.
type RunStats struct {
	// AdmissionTicks counts the admission gate's batched grant-scheduling
	// passes (zero in per-release mode) — the firmware-work side of the
	// quantum/queue-delay trade the Timing 1 table plots.
	AdmissionTicks int64
	// FTL snapshots the run's FTL activity — under a fault plan this is
	// where device-level recovery shows up (ReadRetries, ProgramFails,
	// BadBlocks, DeadDies).
	FTL ftl.Stats
	// Flash snapshots the device counters, including the injected
	// ReadFaults/ProgramFaults.
	Flash flash.Stats
}

// RunMultiStats is RunMulti returning whole-run statistics alongside the
// per-tenant Results.
func RunMultiStats(traces []*workload.Trace, mode Mode, cfg Config) ([]Result, RunStats, error) {
	if cfg.ArrivalSchedule != nil && len(cfg.ArrivalSchedule.Submissions) != len(traces) {
		return nil, RunStats{}, fmt.Errorf("core: arrival schedule has %d submissions for %d traces",
			len(cfg.ArrivalSchedule.Submissions), len(traces))
	}
	res, offsets, err := newResources(cfg, traces)
	if err != nil {
		return nil, RunStats{}, err
	}
	// Fault injection attaches only for a non-zero plan: a nil plan — or a
	// plan whose rates are all zero and die list empty — leaves the device
	// seam nil and every tenant's faults pointer nil, so the replay takes
	// the exact fault-free code path bit for bit.
	plan := cfg.FaultPlan
	injecting := !plan.Zero()
	var breakers *sched.Breakers
	if injecting {
		// Install-time validation: a plan scripting deaths outside the
		// device geometry is a malformed scenario (it would silently
		// never fire), rejected here with a typed *fault.PlanError.
		geo := res.dev.Geometry()
		inj, err := fault.NewInjectorFor(plan, geo.Channels, geo.DiesPerChannel())
		if err != nil {
			pool.release(res)
			return nil, RunStats{}, err
		}
		res.dev.SetInjector(inj)
		if cfg.BreakerFailures >= 0 {
			breakers = res.acquireBreakers(sim.BreakerConfig{
				Failures: cfg.BreakerFailures,
				Cooldown: cfg.BreakerCooldown,
			})
		}
	}
	// Engine selection: the exact serial loop by default, the sharded
	// parallel engine (one event shard per flash channel) when the
	// configuration asks for workers. Everything downstream is written
	// against the Backbone interface and produces bit-identical Results
	// either way.
	var eng sim.Backbone
	if cfg.EngineWorkers > 1 {
		eng = sim.NewShardedEngine(res.dev.Geometry().Channels, cfg.EngineWorkers)
	} else {
		eng = &sim.Engine{}
	}
	vcfg := sched.VirtualConfig{
		MaxInFlight:       cfg.AdmissionSlots,
		TenantMaxInFlight: cfg.AdmissionTenantSlots,
		GrantQuantum:      cfg.AdmissionQuantum,
		GrantBatch:        cfg.AdmissionBatch,
	}
	if cfg.AdmissionQuantum > 0 && cfg.AdmissionQuantumFloor > 0 {
		floor := cfg.AdmissionQuantumFloor
		vcfg.GrantAdaptive = func(queued int, base sim.Duration) sim.Duration {
			q := base / sim.Duration(1+queued)
			if q < floor {
				q = floor
			}
			return q
		}
	}
	adm := sched.NewVirtualAdmission(eng, vcfg)
	// Build every tenant (and, on the sharded engine, seed its prepare
	// pipeline on its channel's event shard) before any submission: the
	// initial prepare events must precede every grant in the engine's
	// (time, seq) order so a commit can never consume a batch that was not
	// yet dispatched.
	tenants := make([]*tenant, len(traces))
	for i, tr := range traces {
		tn := newTenant(res, tr, mode, offsets[i], cfg.Seed+uint64(i)*7919)
		if cfg.ArrivalSchedule != nil {
			tn.arrival = cfg.ArrivalSchedule.Submissions[i].At
		}
		if injecting {
			tn.faults = plan
			tn.tenantIdx = i
			tn.policy = retryPolicy(cfg)
			if breakers != nil {
				key := tr.Name
				if cfg.ArrivalSchedule != nil && cfg.ArrivalSchedule.Submissions[i].Tenant != "" {
					key = cfg.ArrivalSchedule.Submissions[i].Tenant
				}
				tn.breaker = breakers.For(key)
			}
		}
		// The MEE prepare pipeline runs charge computation ahead of the
		// commits, so a tenant that fails mid-trace would have advanced
		// its MEE model past the failure point by up to prepDepth steps —
		// making Result.MEE depend on prefetch depth and diverge from the
		// serial engine. Under a fault plan (where failure is possible)
		// the sharded engine therefore computes charges inline on the
		// coordinator, trading prepare parallelism for exactness.
		if cfg.EngineWorkers > 1 && tn.meeM != nil && !injecting {
			tn.shard = res.ftl.ChannelOf(ftl.LPA(offsets[i]))
			tn.pre = newPrepPipe(len(tr.Steps) + 1)
			tn.prepFn = func(sim.Time) { tn.prepareNextBatch() }
			tn.pumpPrepares(eng)
		}
		tenants[i] = tn
	}
	if cfg.ArrivalSchedule == nil {
		for i, tr := range traces {
			tn := tenants[i]
			var ticket *sim.Ticket
			ticket = adm.Submit(0, tr.Name, sched.PriorityNormal, func(granted sim.Time) {
				tn.begin(granted)
				tn.stepEvent(eng, adm, ticket)
			})
		}
	} else {
		entries := make([]sched.ScheduledArrival, len(traces))
		tickets := make([]*sim.Ticket, len(traces))
		for i, tr := range traces {
			sub := cfg.ArrivalSchedule.Submissions[i]
			tn := tenants[i]
			key := sub.Tenant
			if key == "" {
				key = tr.Name
			}
			i := i
			entries[i] = sched.ScheduledArrival{
				At:       sub.At,
				Tenant:   key,
				Priority: sched.Priority(sub.Band),
				Fn: func(granted sim.Time) {
					tn.begin(granted)
					tn.stepEvent(eng, adm, tickets[i])
				},
			}
		}
		// Grants fire only once the engine runs, so the tickets slice is
		// fully populated before any callback dereferences it.
		copy(tickets, adm.Playback(entries))
	}
	eng.Run()
	stats := RunStats{
		AdmissionTicks: adm.Ticks(),
		FTL:            res.ftl.Stats(),
		Flash:          res.dev.Snapshot(),
	}
	out := make([]Result, len(tenants))
	for i, tn := range tenants {
		out[i] = tn.finish()
	}
	// All derived statistics are extracted; detach the injector so a
	// recycled stack never carries a fault seam into a fault-free run.
	if injecting {
		res.dev.SetInjector(nil)
	}
	pool.release(res)
	return out, stats, nil
}
