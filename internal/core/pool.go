package core

import (
	"sync"

	"iceclave/internal/dram"
	"iceclave/internal/flash"
	"iceclave/internal/ftl"
)

// poolKey identifies interchangeable replay stacks: the full simulator
// configuration plus the geometry it sized for the run's traces. Both are
// flat comparable values, so the key is a plain map key. Two runs with
// the same key build bit-identical hardware, which is what makes a reset
// recycled stack indistinguishable from a fresh one.
type poolKey struct {
	cfg Config
	geo flash.Geometry
}

// cacheKey identifies interchangeable cache components (page cache, CMT)
// by capacity and line size. Cache geometry depends only on the
// configuration, not on the flash geometry the traces sized, so these
// keys have far lower cardinality than poolKey — the 20 MB page-cache
// line array is shared across every workload of a configuration.
type cacheKey struct {
	bytes    uint64
	pageSize uint64
}

// devKey identifies interchangeable device+FTL pairs: same NAND geometry,
// same command timing.
type devKey struct {
	geo    flash.Geometry
	timing flash.Timing
}

// devFTL is a pooled device with the FTL built on top of it; the two are
// reset and recycled as a unit.
type devFTL struct {
	dev *flash.Device
	f   *ftl.FTL
}

// PoolStats is a snapshot of the resource pool's activity: how many
// replay setups were served from a recycled stack (Hits) versus a fresh
// or partially recycled build (Misses), and the total wall-clock time
// spent in replay setup (reset or construction, plus prepopulation).
// Misses also count setups performed while pooling was disabled.
type PoolStats struct {
	Hits    int64
	Misses  int64
	SetupNs int64
}

// resourcePool recycles replay stacks across runs, at two granularities.
// A whole stack that matches an upcoming run's (Config, Geometry) key is
// reused as-is — the zero-alloc path. A stack whose key has rotated out
// is disassembled on release: its page cache, CMT, and device+FTL pair
// drop into component pools with coarser keys, so even a full-stack miss
// reuses the allocations that dominate setup (the page-cache line array
// above all). Checked-out resources are owned exclusively by one run —
// the pool's mutex hands them over with a happens-before edge, so
// concurrent suite workers are race-free without any locking inside the
// resources themselves. Idle stacks and components are reset on acquire,
// not release, so a recycled stack is provably fresh at the moment of
// use and the reset cost lands in the setup accounting.
type resourcePool struct {
	mu      sync.Mutex
	idle    map[poolKey][]*resources
	idleLen int
	pages   map[cacheKey][]*dram.PageCache
	pageLen int
	cmts    map[cacheKey][]*ftl.MappingCache
	cmtLen  int
	devs    map[devKey][]devFTL
	devLen  int
	enabled bool
	stats   PoolStats
}

// Idle caps. Whole stacks pin the most memory (each holds a page cache),
// so their pool stays small — the suite's dominant repeat pattern is the
// same (config, workload) replayed across modes back to back, which a
// shallow pool already serves. Component pools are bounded per key and
// in total so a long run cannot pin unbounded idle memory.
const (
	poolMaxIdlePerKey = 2
	poolMaxIdleTotal  = 8

	poolMaxPartsPerKey = 2
	poolMaxPagesTotal  = 8
	poolMaxCMTsTotal   = 16
	poolMaxDevsTotal   = 16
)

var pool = resourcePool{
	idle:    make(map[poolKey][]*resources),
	pages:   make(map[cacheKey][]*dram.PageCache),
	cmts:    make(map[cacheKey][]*ftl.MappingCache),
	devs:    make(map[devKey][]devFTL),
	enabled: true,
}

// acquire pops an idle stack for key, or returns nil when the caller must
// build (pool empty for the key, or pooling disabled).
func (p *resourcePool) acquire(key poolKey) *resources {
	p.mu.Lock()
	defer p.mu.Unlock()
	list := p.idle[key]
	if !p.enabled || len(list) == 0 {
		p.stats.Misses++
		return nil
	}
	res := list[len(list)-1]
	list[len(list)-1] = nil
	p.idle[key] = list[:len(list)-1]
	p.idleLen--
	p.stats.Hits++
	return res
}

// acquirePage pops a pooled page cache of the right capacity, nil if none.
func (p *resourcePool) acquirePage(k cacheKey) *dram.PageCache {
	p.mu.Lock()
	defer p.mu.Unlock()
	list := p.pages[k]
	if !p.enabled || len(list) == 0 {
		return nil
	}
	pc := list[len(list)-1]
	list[len(list)-1] = nil
	p.pages[k] = list[:len(list)-1]
	p.pageLen--
	return pc
}

// acquireCMT pops a pooled mapping cache of the right capacity, nil if none.
func (p *resourcePool) acquireCMT(k cacheKey) *ftl.MappingCache {
	p.mu.Lock()
	defer p.mu.Unlock()
	list := p.cmts[k]
	if !p.enabled || len(list) == 0 {
		return nil
	}
	c := list[len(list)-1]
	list[len(list)-1] = nil
	p.cmts[k] = list[:len(list)-1]
	p.cmtLen--
	return c
}

// acquireDev pops a pooled device+FTL pair for the geometry and timing,
// reporting whether one was found.
func (p *resourcePool) acquireDev(k devKey) (devFTL, bool) {
	p.mu.Lock()
	defer p.mu.Unlock()
	list := p.devs[k]
	if !p.enabled || len(list) == 0 {
		return devFTL{}, false
	}
	d := list[len(list)-1]
	list[len(list)-1] = devFTL{}
	p.devs[k] = list[:len(list)-1]
	p.devLen--
	return d, true
}

// release returns a finished run's stack to the pool: whole if its key
// still has room, otherwise disassembled into the component pools.
// Whatever exceeds every cap is dropped for the garbage collector.
func (p *resourcePool) release(res *resources) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if !p.enabled {
		return
	}
	if list := p.idle[res.key]; p.idleLen < poolMaxIdleTotal && len(list) < poolMaxIdlePerKey {
		p.idle[res.key] = append(list, res)
		p.idleLen++
		return
	}
	ps := uint64(res.key.geo.PageSize)
	if k := (cacheKey{pageCacheBytes(res.cfg, ps), ps}); p.pageLen < poolMaxPagesTotal &&
		len(p.pages[k]) < poolMaxPartsPerKey {
		p.pages[k] = append(p.pages[k], res.pageCache)
		p.pageLen++
	}
	if k := (cacheKey{res.cfg.CMTBytes, ps}); p.cmtLen < poolMaxCMTsTotal &&
		len(p.cmts[k]) < poolMaxPartsPerKey {
		p.cmts[k] = append(p.cmts[k], res.cmt)
		p.cmtLen++
	}
	if k := (devKey{res.key.geo, res.cfg.FlashTiming}); p.devLen < poolMaxDevsTotal &&
		len(p.devs[k]) < poolMaxPartsPerKey {
		p.devs[k] = append(p.devs[k], devFTL{res.dev, res.ftl})
		p.devLen++
	}
}

// addSetup accounts one replay setup's wall-clock cost.
func (p *resourcePool) addSetup(ns int64) {
	p.mu.Lock()
	p.stats.SetupNs += ns
	p.mu.Unlock()
}

// SetPooling enables or disables replay-stack recycling. Pooling is on by
// default; the differential tests and the fresh legs of benchmarks turn
// it off to force every setup down the allocation path. Disabling does
// not drop already-pooled stacks — call ResetPool for that.
func SetPooling(on bool) {
	pool.mu.Lock()
	pool.enabled = on
	pool.mu.Unlock()
}

// ResetPool drops every idle pooled stack and component and zeroes the
// pool counters.
func ResetPool() {
	pool.mu.Lock()
	pool.idle = make(map[poolKey][]*resources)
	pool.idleLen = 0
	pool.pages = make(map[cacheKey][]*dram.PageCache)
	pool.pageLen = 0
	pool.cmts = make(map[cacheKey][]*ftl.MappingCache)
	pool.cmtLen = 0
	pool.devs = make(map[devKey][]devFTL)
	pool.devLen = 0
	pool.stats = PoolStats{}
	pool.mu.Unlock()
}

// PoolSnapshot returns the pool activity counters.
func PoolSnapshot() PoolStats {
	pool.mu.Lock()
	defer pool.mu.Unlock()
	return pool.stats
}
