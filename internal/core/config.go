// Package core composes the IceClave system model: the flash device, FTL,
// DRAM, MEE, stream cipher, TrustZone runtime, and host models, plus the
// trace-replay engine that executes recorded workloads under the four
// evaluation modes (Host, Host+SGX, ISC, IceClave) and their variants.
//
// Concurrency contract: a composed system model and every replay over it
// are confined to one goroutine; Config and Result are plain values.
// Parallelism comes from running independent replays, each over its own
// system instance (see experiments.Suite.AllParallel), never from sharing
// one replay across goroutines.
package core

import (
	"fmt"

	"iceclave/internal/cpu"
	"iceclave/internal/fault"
	"iceclave/internal/flash"
	"iceclave/internal/host"
	"iceclave/internal/mee"
	"iceclave/internal/sim"
	"iceclave/internal/tee"
	"iceclave/internal/trace"
)

// Mode is an execution scheme from the §6.1 comparison.
type Mode int

// Execution modes.
const (
	// ModeHost loads data over PCIe and computes on the host CPU.
	ModeHost Mode = iota
	// ModeHostSGX is ModeHost with the queries inside an SGX enclave.
	ModeHostSGX
	// ModeISC computes on the storage processor without any TEE.
	ModeISC
	// ModeIceClave is the full system: in-storage TEE with protected
	// mapping table, hybrid-counter MEE, and the stream cipher engine.
	ModeIceClave
)

// String names the mode as the figures do.
func (m Mode) String() string {
	switch m {
	case ModeHost:
		return "Host"
	case ModeHostSGX:
		return "Host+SGX"
	case ModeISC:
		return "ISC"
	default:
		return "IceClave"
	}
}

// InStorage reports whether the mode computes inside the SSD.
func (m Mode) InStorage() bool { return m == ModeISC || m == ModeIceClave }

// Config is the full simulator configuration: Table 3 defaults plus the
// calibration constants documented in DESIGN.md.
type Config struct {
	// Channels is the flash channel count (Figure 12/13 sweep).
	Channels int
	// FlashTiming holds tRD/tPROG/tERS and per-channel bandwidth
	// (Figure 14 sweeps ReadLatency).
	FlashTiming flash.Timing
	// DRAMBytes is controller DRAM capacity (Figure 16 sweep).
	DRAMBytes uint64
	// PageCacheFraction is the share of controller DRAM caching flash
	// pages for in-storage programs.
	PageCacheFraction float64
	// StorageCore is the in-storage processor (Figure 15 sweep).
	StorageCore cpu.Core
	// StorageCores is the controller core count for multi-tenancy.
	StorageCores int
	// HostCore is the host processor.
	HostCore cpu.Core
	// PCIe is the external path model.
	PCIe host.PCIeConfig
	// SGX is the Host+SGX cost model.
	SGX host.SGXConfig
	// Costs are the Table 5 TEE constants.
	Costs tee.Costs
	// MEEMode selects the DRAM protection scheme in IceClave mode
	// (Figure 8 compares ModeHybrid against ModeSplit64 and ModeNone).
	MEEMode mee.Mode
	// CounterCacheBytes is the MEE metadata cache (128 KB, §5).
	CounterCacheBytes uint64
	// CMTBytes is the protected-region mapping cache capacity.
	CMTBytes uint64
	// SecureWorldMapping places the FTL mapping table in the secure world
	// instead of the protected region, charging a world-switch round trip
	// per translation — the Figure 5 comparison point.
	SecureWorldMapping bool
	// CipherPerPage is the stream-cipher engine latency per 4 KB page
	// (the 64-bit-per-cycle Trivium engine of §5: ~512 cycles).
	CipherPerPage sim.Duration
	// MEESampling drives the counter-cache model with every Nth memory
	// access and scales the result, bounding replay cost. 1 = exact.
	MEESampling int
	// MEEExposure is the fraction of the extra metadata-traffic time that
	// lands on the critical path; the rest is hidden by memory-level
	// parallelism. Calibrated so IceClave's overhead vs ISC averages in
	// the paper's 7.6% band.
	MEEExposure float64
	// PrefetchWindow is the number of outstanding flash reads the
	// in-storage runtime keeps in flight.
	PrefetchWindow int
	// MinFlashPages forces the auto-sized device to at least this many
	// pages. Multi-tenant experiments set it so solo and collocated runs
	// execute on identical hardware.
	MinFlashPages int64
	// AdmissionSlots caps how many tenants replay concurrently in
	// RunMulti. Tenants beyond the cap queue in simulated time behind the
	// sched package's virtual admission gate, and the wait is reported in
	// Result.QueueDelay. 0 disables admission control — every tenant is
	// admitted at time zero, the pre-backbone semantics.
	AdmissionSlots int
	// AdmissionTenantSlots caps concurrently admitted replays per tenant
	// (trace) name, the virtual-time form of sched.Config.
	// TenantMaxInFlight. 0 means unlimited.
	AdmissionTenantSlots int
	// AdmissionQuantum, when positive, switches RunMulti's admission gate
	// to batched grants: queued tenants are admitted only at multiples of
	// the quantum on the virtual clock (controller firmware amortizing
	// scheduling work over a periodic timer), instead of a dispatch pass
	// on every release. 0 keeps per-release dispatch.
	AdmissionQuantum sim.Duration
	// AdmissionBatch caps tenants admitted per quantum tick; 0 means the
	// tick admits everything capacity allows. Ignored unless
	// AdmissionQuantum is set.
	AdmissionBatch int
	// AdmissionQuantumFloor, when positive (and AdmissionQuantum is set),
	// makes the batched-grant tick adaptive: each armed tick uses period
	// AdmissionQuantum/(1+queued), clamped below by this floor — the gate
	// schedules lazily when idle and approaches per-release latency as the
	// queue deepens. A scalar knob (not a hook) keeps Config comparable
	// for the experiment suite's memo keys; RunMulti translates it into
	// the sim layer's AdaptiveQuantum policy hook.
	AdmissionQuantumFloor sim.Duration
	// EngineWorkers selects the replay's event engine: 0 or 1 (the
	// default) is the exact serial sim.Engine; >= 2 runs the sharded
	// parallel engine with per-channel event shards and that many workers,
	// bit-identical to serial by construction (the differential tests in
	// this package pin it). Worker count never affects Results — only wall
	// clock — so it deliberately participates in Config comparisons the
	// same way any knob does: suite memo keys treat different worker
	// counts as different runs, which is also what lets the benchmark
	// harness time them separately.
	EngineWorkers int
	// ArrivalSchedule, when non-nil, switches RunMulti to open-loop
	// playback: tenant i submits at Submissions[i].At with that entry's
	// priority band and tenant key (the trace name when the entry's key is
	// empty), instead of every tenant at t=0 with PriorityNormal. The
	// schedule must have exactly one submission per trace. Each tenant's
	// QueueDelay and Total then count from its scheduled arrival — the
	// pre-arrival idle of a late arrival is not queueing delay. The zero
	// value (nil) reproduces the t=0 semantics exactly. A pointer keeps
	// Config comparable for the experiment suite's memo keys: two configs
	// share a key only when they share the schedule instance, which is
	// also the only way the replays are guaranteed identical.
	ArrivalSchedule *trace.Schedule
	// FaultPlan, when non-nil, injects the plan's deterministic faults
	// into the replay: flash read/program faults and die deaths through
	// the device's injection seam, MAC-verification failures on the
	// IceClave read path, with recovery (FTL retries and bad-block
	// remapping, per-step retry/backoff, per-tenant circuit breaking)
	// threaded through every layer. The zero value (nil) injects nothing
	// and reproduces the fault-free replay bit-identically — as does a
	// non-nil plan whose rates are all zero. Like ArrivalSchedule, a
	// pointer keeps Config comparable for the experiment suite's memo
	// keys: two configs share a key only when they share the plan
	// instance.
	FaultPlan *fault.Plan
	// FaultRetryLimit bounds the retries per offload step before the
	// tenant's replay fails permanently. 0 means the default (16); < 0
	// disables step retries entirely.
	FaultRetryLimit int
	// FaultBackoff is the virtual-time delay before a failed step's first
	// retry; each subsequent retry doubles it, capped at FaultBackoffCap.
	// 0 means the default (100 µs).
	FaultBackoff sim.Duration
	// FaultBackoffCap caps the exponential backoff growth. 0 means the
	// default (2 ms).
	FaultBackoffCap sim.Duration
	// BreakerFailures is the consecutive-failure count that trips a
	// tenant's circuit breaker. 0 means the default (5); < 0 disables
	// circuit breaking.
	BreakerFailures int
	// BreakerCooldown is the virtual time a tripped breaker stays open
	// before granting its half-open probe. 0 means the default (5 ms).
	BreakerCooldown sim.Duration
	// OffloadTimeout is the per-tenant virtual deadline measured from the
	// offload's admission grant: a fault observed past it fails the
	// offload instead of retrying. 0 means no deadline. It is only
	// consulted on the failure path, so a zero-fault replay never
	// observes it.
	OffloadTimeout sim.Duration
	// Seed feeds address-synthesis randomness.
	Seed uint64
}

// DefaultConfig returns the Table 3 device with calibrated host-side
// constants.
func DefaultConfig() Config {
	return Config{
		Channels:          8,
		FlashTiming:       flash.DefaultTiming(),
		DRAMBytes:         4 << 30,
		PageCacheFraction: 0.5,
		StorageCore:       cpu.CortexA72,
		StorageCores:      4,
		HostCore:          cpu.HostI7,
		PCIe:              host.DefaultPCIeConfig(),
		SGX:               host.DefaultSGXConfig(),
		Costs:             tee.DefaultCosts(),
		MEEMode:           mee.ModeHybrid,
		CounterCacheBytes: 128 << 10,
		CMTBytes:          8 << 20,
		CipherPerPage:     640 * sim.Nanosecond,
		MEESampling:       8,
		MEEExposure:       0.5,
		PrefetchWindow:    256,
		Seed:              1,
	}
}

// geometryFor builds a scaled flash geometry with the configured channel
// count and at least minPages pages (plus over-provisioning headroom).
func (c Config) geometryFor(minPages int64) (flash.Geometry, error) {
	if c.MinFlashPages > minPages {
		minPages = c.MinFlashPages
	}
	g := flash.Geometry{
		Channels:        c.Channels,
		ChipsPerChannel: 4,
		DiesPerChip:     4,
		PlanesPerDie:    2,
		PagesPerBlock:   64,
		PageSize:        4096,
		BlocksPerPlane:  1,
	}
	planes := int64(g.Planes())
	needed := minPages*2 + planes*int64(g.PagesPerBlock)*4 // 2x headroom + GC slack
	perPlane := (needed + planes - 1) / planes
	g.BlocksPerPlane = int((perPlane + int64(g.PagesPerBlock) - 1) / int64(g.PagesPerBlock))
	if g.BlocksPerPlane < 4 {
		g.BlocksPerPlane = 4
	}
	if err := g.Validate(); err != nil {
		return g, fmt.Errorf("core: cannot size flash for %d pages: %w", minPages, err)
	}
	return g, nil
}
