package core

import (
	"strings"
	"testing"

	"iceclave/internal/sched"
	"iceclave/internal/sim"
	"iceclave/internal/trace"
	"iceclave/internal/workload"
)

// t0NormalSchedule is the schedule that must be semantically invisible:
// every tenant at virtual time zero, PriorityNormal, default (trace-name)
// tenant keys — exactly what a nil ArrivalSchedule does.
func t0NormalSchedule(n int) *trace.Schedule {
	s := &trace.Schedule{Submissions: make([]trace.Submission, n)}
	for i := range s.Submissions {
		s.Submissions[i] = trace.Submission{At: 0, Band: int(sched.PriorityNormal)}
	}
	return s
}

// TestZeroScheduleMatchesNilSchedule is the acceptance pin for open-loop
// playback's backward compatibility: an explicit all-at-t=0,
// PriorityNormal schedule must reproduce the nil-schedule results
// bit-identically — under no caps, a global cap, a per-tenant cap, and
// batched grants — so the playback path is a strict generalization of the
// closed-loop path, not a parallel implementation that drifts.
func TestZeroScheduleMatchesNilSchedule(t *testing.T) {
	a := recordTrace(t, "Filter")
	b := recordTrace(t, "Aggregate")
	traces := []*workload.Trace{a, b}
	muts := map[string]func(*Config){
		"uncapped":    func(*Config) {},
		"slots=1":     func(c *Config) { c.AdmissionSlots = 1 },
		"tenant caps": func(c *Config) { c.AdmissionTenantSlots = 1 },
		"batched": func(c *Config) {
			c.AdmissionSlots = 1
			c.AdmissionQuantum = 1 * sim.Millisecond
			c.AdmissionBatch = 1
		},
	}
	for name, mut := range muts {
		t.Run(name, func(t *testing.T) {
			cfg := DefaultConfig()
			mut(&cfg)
			closed, err := RunMulti(traces, ModeIceClave, cfg)
			if err != nil {
				t.Fatal(err)
			}
			cfg.ArrivalSchedule = t0NormalSchedule(len(traces))
			open, err := RunMulti(traces, ModeIceClave, cfg)
			if err != nil {
				t.Fatal(err)
			}
			for i := range closed {
				if open[i] != closed[i] {
					t.Fatalf("tenant %d diverges under a zero-value schedule:\n%+v\nvs\n%+v",
						i, open[i], closed[i])
				}
			}
		})
	}
}

// TestScheduledArrivalQueueDelayExcludesIdle is the acceptance pin for the
// open-loop queueing definition: with one slot, a tenant arriving mid-way
// through its predecessor's run waits exactly (predecessor completion -
// its own arrival) — and a tenant arriving after the predecessor finishes
// waits nothing, no matter how long the gate sat idle first.
func TestScheduledArrivalQueueDelayExcludesIdle(t *testing.T) {
	a := recordTrace(t, "Filter")
	b := recordTrace(t, "Aggregate")
	traces := []*workload.Trace{a, b}
	cfg := DefaultConfig()
	cfg.AdmissionSlots = 1
	closed, err := RunMulti(traces, ModeIceClave, cfg)
	if err != nil {
		t.Fatal(err)
	}
	c1 := sim.Time(closed[0].Total) // first tenant's completion instant

	arrival := sim.Time(1 * sim.Millisecond)
	if c1 <= arrival {
		t.Fatalf("first tenant finishes at %v, before the %v test arrival", c1, arrival)
	}
	mid := &trace.Schedule{Submissions: []trace.Submission{
		{At: 0, Band: int(sched.PriorityNormal)},
		{At: arrival, Band: int(sched.PriorityNormal)},
	}}
	cfg.ArrivalSchedule = mid
	open, err := RunMulti(traces, ModeIceClave, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if open[0] != closed[0] {
		t.Fatalf("first tenant changed by the second's arrival time:\n%+v\nvs\n%+v", open[0], closed[0])
	}
	if got, want := open[1].QueueDelay, sim.Duration(c1-arrival); got != want {
		t.Fatalf("mid-run arrival queued %v, want completion - arrival = %v", got, want)
	}
	if open[1].Total <= open[1].QueueDelay {
		t.Fatalf("total %v does not extend past the queueing delay %v", open[1].Total, open[1].QueueDelay)
	}

	// Arriving after the predecessor completes: the slot is free, the wait
	// is zero — the idle interval between c1 and the arrival never shows up.
	late := &trace.Schedule{Submissions: []trace.Submission{
		{At: 0, Band: int(sched.PriorityNormal)},
		{At: c1 + sim.Time(1*sim.Millisecond), Band: int(sched.PriorityNormal)},
	}}
	cfg.ArrivalSchedule = late
	idle, err := RunMulti(traces, ModeIceClave, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if idle[1].QueueDelay != 0 {
		t.Fatalf("post-completion arrival queued %v, want 0", idle[1].QueueDelay)
	}
}

// TestEqualArrivalsGrantInBandOrder pins band-aware admission end to end
// through RunMulti: three instances of one workload arriving at the same
// virtual instant under a one-slot cap are granted high, normal, low —
// each successor's queueing delay is its predecessor-by-band's completion
// time minus nothing (all arrivals at t=0).
func TestEqualArrivalsGrantInBandOrder(t *testing.T) {
	a := recordTrace(t, "Filter")
	traces := []*workload.Trace{a, a, a}
	cfg := DefaultConfig()
	cfg.AdmissionSlots = 1
	// Schedule order deliberately inverts band order: low, normal, high.
	cfg.ArrivalSchedule = &trace.Schedule{Submissions: []trace.Submission{
		{At: 0, Tenant: "batch-job", Band: int(sched.PriorityLow)},
		{At: 0, Tenant: "default-job", Band: int(sched.PriorityNormal)},
		{At: 0, Tenant: "frontend", Band: int(sched.PriorityHigh)},
	}}
	res, err := RunMulti(traces, ModeIceClave, cfg)
	if err != nil {
		t.Fatal(err)
	}
	low, normal, high := res[0], res[1], res[2]
	if high.QueueDelay != 0 {
		t.Fatalf("high-band tenant queued %v, want immediate grant", high.QueueDelay)
	}
	if normal.QueueDelay != high.Total {
		t.Fatalf("normal-band tenant queued %v, want the high tenant's completion %v",
			normal.QueueDelay, high.Total)
	}
	if low.QueueDelay != normal.Total {
		t.Fatalf("low-band tenant queued %v, want the normal tenant's completion %v",
			low.QueueDelay, normal.Total)
	}
}

// TestScheduledRunIdenticalToFreshWhenPooled extends the PR 6 reset
// contract to open-loop playback: a trace-scheduled multi-tenant run on a
// recycled replay stack must produce Results — QueueDelay included —
// identical to a fresh-allocation run of the same schedule.
func TestScheduledRunIdenticalToFreshWhenPooled(t *testing.T) {
	t.Cleanup(func() { SetPooling(true); ResetPool() })
	a := recordTrace(t, "Filter")
	b := recordTrace(t, "Aggregate")
	traces := []*workload.Trace{a, b}
	cfg := DefaultConfig()
	cfg.AdmissionSlots = 1
	cfg.ArrivalSchedule = &trace.Schedule{Submissions: []trace.Submission{
		{At: 0, Tenant: "t-a", Band: int(sched.PriorityLow)},
		{At: 2500 * sim.Microsecond, Tenant: "t-b", Band: int(sched.PriorityHigh)},
	}}
	SetPooling(false)
	ResetPool()
	fresh, err := RunMulti(traces, ModeIceClave, cfg)
	if err != nil {
		t.Fatal(err)
	}
	SetPooling(true)
	warm, err := RunMulti(traces, ModeIceClave, cfg) // builds, then pools its stack
	if err != nil {
		t.Fatal(err)
	}
	pooled, err := RunMulti(traces, ModeIceClave, cfg) // runs on the recycled stack
	if err != nil {
		t.Fatal(err)
	}
	if st := PoolSnapshot(); st.Hits == 0 {
		t.Fatalf("second pooled run did not hit the pool: %+v", st)
	}
	for i := range fresh {
		if warm[i] != fresh[i] {
			t.Fatalf("tenant %d: pooling-enabled fresh build diverges:\n%+v\nvs\n%+v", i, warm[i], fresh[i])
		}
		if pooled[i] != fresh[i] {
			t.Fatalf("tenant %d: recycled-stack scheduled run diverges:\n%+v\nvs\n%+v", i, pooled[i], fresh[i])
		}
	}
}

// TestArrivalScheduleLengthMismatch pins the validation: a schedule whose
// submission count disagrees with the trace count is a configuration
// error, not a silent truncation.
func TestArrivalScheduleLengthMismatch(t *testing.T) {
	a := recordTrace(t, "Filter")
	cfg := DefaultConfig()
	cfg.ArrivalSchedule = t0NormalSchedule(3)
	_, err := RunMulti([]*workload.Trace{a}, ModeIceClave, cfg)
	if err == nil || !strings.Contains(err.Error(), "3 submissions for 1 traces") {
		t.Fatalf("error = %v, want a submission/trace count mismatch", err)
	}
}
