package core

import (
	"testing"

	"iceclave/internal/mee"
	"iceclave/internal/sim"
	"iceclave/internal/workload"
)

// recordQ1 records a mid-size scan trace once for the package's tests.
func recordTrace(t testing.TB, name string) *workload.Trace {
	t.Helper()
	w, err := workload.ByName(name)
	if err != nil {
		t.Fatal(err)
	}
	sc := workload.TinyScale()
	sc.LineitemRows = 30_000
	sc.Accounts = 10_000
	sc.TPCBTxns = 3_000
	sc.StockRows = 10_000
	sc.TPCCTxns = 1_200
	sc.TextPages = 1_024
	tr, err := workload.Record(w, sc, 4096)
	if err != nil {
		t.Fatal(err)
	}
	return tr
}

func runMode(t testing.TB, tr *workload.Trace, mode Mode, mut func(*Config)) Result {
	t.Helper()
	cfg := DefaultConfig()
	if mut != nil {
		mut(&cfg)
	}
	r, err := Run(tr, mode, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return r
}

func TestModeOrderingOnScan(t *testing.T) {
	tr := recordTrace(t, "TPC-H Q1")
	hostR := runMode(t, tr, ModeHost, nil)
	sgxR := runMode(t, tr, ModeHostSGX, nil)
	iscR := runMode(t, tr, ModeISC, nil)
	iceR := runMode(t, tr, ModeIceClave, nil)

	// Paper §6.2: ISC < IceClave < Host < Host+SGX on total time for the
	// I/O-bound query workloads.
	if !(iscR.Total < iceR.Total) {
		t.Fatalf("ISC (%v) not faster than IceClave (%v)", iscR.Total, iceR.Total)
	}
	if !(iceR.Total < hostR.Total) {
		t.Fatalf("IceClave (%v) not faster than Host (%v)", iceR.Total, hostR.Total)
	}
	if !(hostR.Total < sgxR.Total) {
		t.Fatalf("Host (%v) not faster than Host+SGX (%v)", hostR.Total, sgxR.Total)
	}

	// Speedup and overhead bands: 2.31x average vs host in the paper;
	// accept a broad band per-workload. Overhead vs ISC: 7.6% average,
	// up to ~28% — accept < 0.35.
	sp := iceR.SpeedupOver(hostR)
	if sp < 1.3 || sp > 5.0 {
		t.Fatalf("IceClave speedup over Host = %v, outside [1.3, 5.0]", sp)
	}
	ov := float64(iceR.Total-iscR.Total) / float64(iscR.Total)
	if ov > 0.35 {
		t.Fatalf("IceClave overhead vs ISC = %v, want < 0.35", ov)
	}
	t.Logf("Q1: host=%v sgx=%v isc=%v iceclave=%v speedup=%.2f overhead=%.1f%%",
		hostR.Total, sgxR.Total, iscR.Total, iceR.Total, sp, 100*ov)
}

func TestBreakdownPopulated(t *testing.T) {
	tr := recordTrace(t, "TPC-H Q1")
	r := runMode(t, tr, ModeIceClave, nil)
	if r.LoadTime <= 0 || r.ComputeTime <= 0 || r.SecurityTime <= 0 || r.TEETime <= 0 {
		t.Fatalf("breakdown has empty segments: %+v", r)
	}
	if r.CMTMissRate <= 0 || r.CMTMissRate > 0.05 {
		t.Fatalf("CMT miss rate = %v, want small but nonzero", r.CMTMissRate)
	}
	if r.MEE.DataAccesses() == 0 {
		t.Fatal("MEE saw no traffic")
	}
}

func TestChannelScalingHelpsISC(t *testing.T) {
	tr := recordTrace(t, "Filter")
	host4 := runMode(t, tr, ModeHost, func(c *Config) { c.Channels = 4 })
	var prev Result
	for i, ch := range []int{4, 8, 16, 32} {
		r := runMode(t, tr, ModeIceClave, func(c *Config) { c.Channels = ch })
		if i > 0 && r.Total > prev.Total {
			t.Fatalf("%d channels slower than fewer channels: %v > %v", ch, r.Total, prev.Total)
		}
		prev = r
		t.Logf("channels=%d iceclave=%v speedup-vs-host4=%.2f", ch, r.Total, r.SpeedupOver(host4))
	}
}

func TestFlashLatencySweep(t *testing.T) {
	tr := recordTrace(t, "Aggregate")
	var prev Result
	for i, lat := range []int{10, 50, 110} {
		r := runMode(t, tr, ModeIceClave, func(c *Config) {
			c.FlashTiming.ReadLatency = sim.Duration(lat) * sim.Microsecond
		})
		if i > 0 && r.Total < prev.Total {
			t.Fatalf("slower flash gave faster run: %v < %v", r.Total, prev.Total)
		}
		prev = r
	}
}

func TestMEEModeSweep(t *testing.T) {
	tr := recordTrace(t, "Wordcount")
	none := runMode(t, tr, ModeIceClave, func(c *Config) { c.MEEMode = mee.ModeNone })
	sc64 := runMode(t, tr, ModeIceClave, func(c *Config) { c.MEEMode = mee.ModeSplit64 })
	hyb := runMode(t, tr, ModeIceClave, nil)
	// Figure 8 ordering: Non-encryption <= IceClave(hybrid) <= SC-64.
	if !(none.Total <= hyb.Total && hyb.Total <= sc64.Total) {
		t.Fatalf("MEE mode ordering violated: none=%v hybrid=%v sc64=%v",
			none.Total, hyb.Total, sc64.Total)
	}
}

func TestSecureWorldMappingSlower(t *testing.T) {
	tr := recordTrace(t, "TPC-H Q12")
	normal := runMode(t, tr, ModeIceClave, nil)
	secure := runMode(t, tr, ModeIceClave, func(c *Config) { c.SecureWorldMapping = true })
	if secure.Total <= normal.Total {
		t.Fatalf("secure-world mapping (%v) not slower than protected region (%v)",
			secure.Total, normal.Total)
	}
}

func TestMultiTenantDegradation(t *testing.T) {
	a := recordTrace(t, "TPC-H Q1")
	b := recordTrace(t, "Filter")
	solo, err := Run(a, ModeIceClave, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	both, err := RunMulti([]*workload.Trace{a, b}, ModeIceClave, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if both[0].Total < solo.Total {
		t.Fatalf("collocated run faster than solo: %v < %v", both[0].Total, solo.Total)
	}
}

func TestDRAMCapacityEffect(t *testing.T) {
	tr := recordTrace(t, "TPC-H Q14")
	big := runMode(t, tr, ModeISC, func(c *Config) { c.DRAMBytes = 4 << 30 })
	small := runMode(t, tr, ModeISC, func(c *Config) { c.DRAMBytes = 64 << 20 })
	if small.Total < big.Total {
		t.Fatalf("less DRAM was faster: %v < %v", small.Total, big.Total)
	}
}
