package core

import (
	"testing"

	"iceclave/internal/mee"
	"iceclave/internal/sim"
	"iceclave/internal/trace"
	"iceclave/internal/workload"
)

// Differential tests for the sharded parallel engine: Config.EngineWorkers
// must never change a Result bit. Every variant runs once on the serial
// engine and once per worker count, and the []Result slices are compared
// by struct equality — QueueDelay, SecurityTime, MEE stats, cache rates,
// everything.

// parallelMix is a four-tenant collocation heavy enough to exercise
// admission queueing, cache contention, and the MEE prepare pipeline.
func parallelMix(t testing.TB) []*workload.Trace {
	t.Helper()
	return []*workload.Trace{
		recordTrace(t, "TPC-H Q1"),
		recordTrace(t, "Aggregate"),
		recordTrace(t, "TPC-B"),
		recordTrace(t, "Filter"),
	}
}

// runBoth replays the mix serially and with the given worker count and
// fails on any Result difference.
func runBoth(t *testing.T, traces []*workload.Trace, mode Mode, cfg Config, workers int) {
	t.Helper()
	cfg.EngineWorkers = 0
	want, err := RunMulti(traces, mode, cfg)
	if err != nil {
		t.Fatalf("serial: %v", err)
	}
	cfg.EngineWorkers = workers
	got, err := RunMulti(traces, mode, cfg)
	if err != nil {
		t.Fatalf("workers=%d: %v", workers, err)
	}
	if len(got) != len(want) {
		t.Fatalf("workers=%d: %d results, want %d", workers, len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("workers=%d tenant %d (%s): sharded result diverges\n got %+v\nwant %+v",
				workers, i, want[i].Workload, got[i], want[i])
		}
	}
}

func TestEngineWorkersIdenticalAcrossModes(t *testing.T) {
	traces := parallelMix(t)
	for _, mode := range []Mode{ModeHost, ModeHostSGX, ModeISC, ModeIceClave} {
		for _, workers := range []int{2, 3, 8} {
			t.Run(mode.String(), func(t *testing.T) {
				runBoth(t, traces, mode, DefaultConfig(), workers)
			})
		}
	}
}

func TestEngineWorkersIdenticalAcrossMEEModes(t *testing.T) {
	traces := parallelMix(t)
	for _, mm := range []struct {
		name string
		mode mee.Mode
	}{{"hybrid", mee.ModeHybrid}, {"split64", mee.ModeSplit64}, {"none", mee.ModeNone}} {
		t.Run(mm.name, func(t *testing.T) {
			cfg := DefaultConfig()
			cfg.MEEMode = mm.mode
			runBoth(t, traces, ModeIceClave, cfg, 2)
		})
	}
	t.Run("exact-sampling", func(t *testing.T) {
		cfg := DefaultConfig()
		cfg.MEESampling = 1
		runBoth(t, traces, ModeIceClave, cfg, 4)
	})
	t.Run("secure-world-mapping", func(t *testing.T) {
		cfg := DefaultConfig()
		cfg.SecureWorldMapping = true
		runBoth(t, traces, ModeIceClave, cfg, 2)
	})
}

func TestEngineWorkersIdenticalUnderAdmission(t *testing.T) {
	traces := parallelMix(t)
	variants := []struct {
		name string
		mut  func(*Config)
	}{
		{"uncapped", nil},
		{"slots", func(c *Config) { c.AdmissionSlots = 2 }},
		{"tenant-slots", func(c *Config) {
			c.AdmissionSlots = 3
			c.AdmissionTenantSlots = 1
		}},
		{"batched", func(c *Config) {
			c.AdmissionSlots = 2
			c.AdmissionQuantum = sim.Millisecond
			c.AdmissionBatch = 2
		}},
		{"adaptive", func(c *Config) {
			c.AdmissionSlots = 2
			c.AdmissionQuantum = sim.Millisecond
			c.AdmissionQuantumFloor = 125 * sim.Microsecond
		}},
	}
	for _, v := range variants {
		t.Run(v.name, func(t *testing.T) {
			cfg := DefaultConfig()
			if v.mut != nil {
				v.mut(&cfg)
			}
			runBoth(t, traces, ModeIceClave, cfg, 2)
		})
	}
}

func TestEngineWorkersIdenticalOpenLoop(t *testing.T) {
	traces := parallelMix(t)
	sched := &trace.Schedule{Submissions: []trace.Submission{
		{At: 0, Band: 1},
		{At: 50 * sim.Microsecond, Band: 2},
		{At: 50 * sim.Microsecond, Band: 0},
		{At: 2 * sim.Millisecond, Band: 1},
	}}
	cfg := DefaultConfig()
	cfg.AdmissionSlots = 2
	cfg.ArrivalSchedule = sched
	runBoth(t, traces, ModeIceClave, cfg, 2)
	runBoth(t, traces, ModeIceClave, cfg, 5)
}

// TestEngineWorkersSingleTenant covers the degenerate mixes: one tenant,
// and a tenant whose trace the sharded engine still has to drain through
// the prepare pipeline tail.
func TestEngineWorkersSingleTenant(t *testing.T) {
	traces := []*workload.Trace{recordTrace(t, "TPC-H Q1")}
	runBoth(t, traces, ModeIceClave, DefaultConfig(), 2)
	runBoth(t, traces, ModeHost, DefaultConfig(), 2)
}

// TestAdaptiveQuantumTradesTicksForDelay pins the satellite behaviour:
// with a queue-scaled tick the gate runs more scheduling passes than the
// fixed quantum but strictly less mean queueing delay.
func TestAdaptiveQuantumTradesTicksForDelay(t *testing.T) {
	traces := parallelMix(t)
	cfg := DefaultConfig()
	cfg.AdmissionSlots = 2
	cfg.AdmissionQuantum = sim.Millisecond
	cfg.AdmissionBatch = 2
	fixed, fixedStats, err := RunMultiStats(traces, ModeIceClave, cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.AdmissionQuantumFloor = 125 * sim.Microsecond
	adaptive, adaptiveStats, err := RunMultiStats(traces, ModeIceClave, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if fixedStats.AdmissionTicks == 0 {
		t.Fatal("batched run reported no scheduling passes")
	}
	var fixedQ, adaptQ sim.Duration
	for i := range fixed {
		fixedQ += fixed[i].QueueDelay
		adaptQ += adaptive[i].QueueDelay
	}
	if adaptQ > fixedQ {
		t.Errorf("adaptive quantum increased queue delay: %v > %v", adaptQ, fixedQ)
	}
	if adaptQ == fixedQ && adaptiveStats.AdmissionTicks == fixedStats.AdmissionTicks {
		t.Errorf("adaptive quantum changed nothing (ticks %d, delay %v)",
			fixedStats.AdmissionTicks, fixedQ)
	}
	t.Logf("fixed: ticks=%d queue=%v; adaptive: ticks=%d queue=%v",
		fixedStats.AdmissionTicks, fixedQ, adaptiveStats.AdmissionTicks, adaptQ)
}
