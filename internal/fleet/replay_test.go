package fleet

import (
	"reflect"
	"testing"

	"iceclave/internal/core"
	"iceclave/internal/fault"
	"iceclave/internal/flash"
	"iceclave/internal/ftl"
	"iceclave/internal/sim"
	"iceclave/internal/workload"
)

// coreDiesPerChannel mirrors the replay device geometry (4 chips × 4
// dies per channel) for scripting whole-device deaths.
const coreDiesPerChannel = 16

// recordTrace records one workload at the small scale the core tests use.
func recordTrace(t testing.TB, name string) *workload.Trace {
	t.Helper()
	w, err := workload.ByName(name)
	if err != nil {
		t.Fatal(err)
	}
	sc := workload.TinyScale()
	sc.LineitemRows = 30_000
	sc.Accounts = 10_000
	sc.TPCBTxns = 3_000
	sc.StockRows = 10_000
	sc.TPCCTxns = 1_200
	sc.TextPages = 1_024
	tr, err := workload.Record(w, sc, 4096)
	if err != nil {
		t.Fatal(err)
	}
	return tr
}

// renamed copies a trace under a new tenant name, so one recorded
// workload can stand in for several fleet tenants.
func renamed(tr *workload.Trace, name string) *workload.Trace {
	cp := *tr
	cp.Name = name
	return &cp
}

// fleetMix builds six tenants from three recorded workloads.
func fleetMix(t testing.TB) []ReplayTenant {
	t.Helper()
	q1 := recordTrace(t, "TPC-H Q1")
	tpcb := recordTrace(t, "TPC-B")
	filter := recordTrace(t, "Filter")
	return []ReplayTenant{
		{Name: "alpha/q1", Trace: renamed(q1, "alpha/q1")},
		{Name: "beta/tpcb", Trace: renamed(tpcb, "beta/tpcb")},
		{Name: "gamma/filter", Trace: renamed(filter, "gamma/filter")},
		{Name: "delta/q1", Trace: renamed(q1, "delta/q1")},
		{Name: "epsilon/tpcb", Trace: renamed(tpcb, "epsilon/tpcb")},
		{Name: "zeta/filter", Trace: renamed(filter, "zeta/filter")},
	}
}

// mixPages sizes MinFlashPages so every device (and the bare-SSD
// comparison) replays on identical hardware regardless of its tenant
// subset.
func mixPages(tenants []ReplayTenant) int64 {
	var total int64
	for _, tn := range tenants {
		total += int64(tn.Trace.SetupPages) + tn.Trace.Meter.PagesWritten + 1024
	}
	return total
}

// fleetBase is the shared per-device replay configuration.
func fleetBase(tenants []ReplayTenant) core.Config {
	cfg := core.DefaultConfig()
	cfg.AdmissionSlots = 2
	cfg.MinFlashPages = mixPages(tenants)
	return cfg
}

// deathPlan scripts the whole-device death of the busiest device of the
// placement, plus a mild fleet-wide transient-read rate.
func deathPlan(tenants []ReplayTenant, devices int, salt uint64, channels int) (*fault.FleetPlan, int) {
	names := make([]string, len(tenants))
	for i, tn := range tenants {
		names[i] = tn.Name
	}
	counts := make([]int, devices)
	for _, d := range Placements(names, devices, salt, nil) {
		counts[d]++
	}
	victim := 0
	for d, c := range counts {
		if c > counts[victim] {
			victim = d
		}
	}
	return &fault.FleetPlan{
		Seed:          909,
		ReadTransient: 0.002,
		Deaths:        fault.KillDevice(victim, sim.Time(500*sim.Microsecond), channels, coreDiesPerChannel),
	}, victim
}

// A fleet replay is deterministic end to end: identical seeds replay
// identical placement, identical health scores, identical failover
// decisions, and identical post-migration Results.
func TestFleetReplayDeterministic(t *testing.T) {
	tenants := fleetMix(t)
	base := fleetBase(tenants)
	const devices, salt = 3, 17
	plan, victim := deathPlan(tenants, devices, salt, base.Channels)
	rc := ReplayConfig{Devices: devices, Base: base, Faults: plan, PlacementSeed: salt}

	first, err := Replay(tenants, core.ModeIceClave, rc)
	if err != nil {
		t.Fatal(err)
	}
	if len(first.Failovers) == 0 {
		t.Fatalf("whole-device death of device %d triggered no failover; scores %+v", victim, first.Devices)
	}
	if first.Failovers[0].Source != victim {
		t.Errorf("failover source %d, want the killed device %d", first.Failovers[0].Source, victim)
	}
	if !first.Devices[victim].Degraded || first.Devices[victim].Score >= DefaultHealthFloor {
		t.Errorf("killed device not degraded: %+v", first.Devices[victim])
	}
	if first.Recovered == 0 {
		t.Errorf("no tenant recovered: %+v", first)
	}
	for _, o := range first.Tenants {
		if o.Migrated && (o.MigrationLatency <= 0 || o.PagesMoved <= 0) {
			t.Errorf("migrated tenant %s has empty migration: %+v", o.Tenant, o)
		}
	}
	for round := 0; round < 2; round++ {
		again, err := Replay(tenants, core.ModeIceClave, rc)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(first, again) {
			t.Fatalf("round %d: replay diverged\n got %+v\nwant %+v", round, again, first)
		}
	}
}

// The report is bit-identical across fresh and pooled core stacks and
// across engine worker counts — the fleet layer adds no nondeterminism
// on top of the core replay guarantees.
func TestFleetReplayIdenticalAcrossPoolAndWorkers(t *testing.T) {
	tenants := fleetMix(t)
	base := fleetBase(tenants)
	const devices, salt = 3, 17
	plan, _ := deathPlan(tenants, devices, salt, base.Channels)
	rc := ReplayConfig{Devices: devices, Base: base, Faults: plan, PlacementSeed: salt}

	core.ResetPool()
	defer core.ResetPool()
	core.SetPooling(false)
	fresh, err := Replay(tenants, core.ModeIceClave, rc)
	core.SetPooling(true)
	if err != nil {
		t.Fatal(err)
	}
	pooled, err := Replay(tenants, core.ModeIceClave, rc)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(fresh, pooled) {
		t.Errorf("pooled-stack replay diverges from fresh stacks\n got %+v\nwant %+v", pooled, fresh)
	}
	for _, workers := range []int{2, 3} {
		rcw := rc
		rcw.Base.EngineWorkers = workers
		sharded, err := Replay(tenants, core.ModeIceClave, rcw)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(fresh, sharded) {
			t.Errorf("EngineWorkers=%d replay diverges\n got %+v\nwant %+v", workers, sharded, fresh)
		}
	}
}

// A 1-device fleet degenerates to the bare SSD: every tenant lands on
// device 0 in input order, and the per-tenant Results are
// struct-identical to core.RunMultiStats over the same mix.
func TestOneDeviceFleetMatchesBareSSD(t *testing.T) {
	tenants := fleetMix(t)
	base := fleetBase(tenants)
	traces := make([]*workload.Trace, len(tenants))
	for i, tn := range tenants {
		traces[i] = tn.Trace
	}
	bare, _, err := core.RunMultiStats(traces, core.ModeIceClave, base)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := Replay(tenants, core.ModeIceClave, ReplayConfig{Devices: 1, Base: base, PlacementSeed: 99})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Failovers) != 0 || rep.Lost != 0 {
		t.Fatalf("fault-free 1-device fleet reported failovers: %+v", rep)
	}
	for i, o := range rep.Tenants {
		if o.Device != 0 || o.FinalDevice != 0 {
			t.Errorf("tenant %s not on device 0: %+v", o.Tenant, o)
		}
		if o.Result != bare[i] {
			t.Errorf("tenant %s: fleet result diverges from bare SSD\n got %+v\nwant %+v",
				o.Tenant, o.Result, bare[i])
		}
	}
	if rep.UtilizationSkew != 1 {
		t.Errorf("1-device skew %v, want 1", rep.UtilizationSkew)
	}
}

func ftlStats(deadDies, badBlocks, retries int64) ftl.Stats {
	return ftl.Stats{DeadDies: deadDies, BadBlocks: badBlocks, ReadRetries: retries}
}

func flashStats(reads int64) flash.Stats { return flash.Stats{Reads: reads} }

// Health scoring: clean telemetry is a perfect 1.0, and the telemetry
// of a whole-device death lands under the failover floor.
func TestScoreTelemetry(t *testing.T) {
	if s := ScoreTelemetry(ftlStats(0, 0, 0), flashStats(1000), 0, 0); s != 1 {
		t.Errorf("clean device scores %v, want 1", s)
	}
	if s := ScoreTelemetry(ftlStats(16, 0, 0), flashStats(1000), 0, 0); s >= DefaultHealthFloor {
		t.Errorf("16 dead dies score %v, want < %v", s, DefaultHealthFloor)
	}
	// A device failing its tenants' offloads is degraded even when its
	// retirement counters are clean — the read-path die-death signature.
	if s := ScoreTelemetry(ftlStats(0, 0, 0), flash.Stats{Reads: 600, ReadFaults: 50}, 39, 3); s >= DefaultHealthFloor {
		t.Errorf("offload-killing device scores %v, want < %v", s, DefaultHealthFloor)
	}
	if s := ScoreTelemetry(ftlStats(0, 3, 40), flashStats(100), 2, 0); s >= 1 || s < DefaultHealthFloor {
		t.Errorf("worn device scores %v, want degraded-but-alive", s)
	}
	if s := ScoreTelemetry(ftlStats(1000, 1000, 1000), flashStats(1), 1000, 100); s < 0 {
		t.Errorf("score went negative: %v", s)
	}
}
