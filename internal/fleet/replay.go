package fleet

import (
	"fmt"

	"iceclave/internal/core"
	"iceclave/internal/fault"
	"iceclave/internal/sim"
	"iceclave/internal/workload"
)

// ReplayTenant is one tenant of a virtual-time fleet replay: a recorded
// workload trace under a tenant name (the placement key).
type ReplayTenant struct {
	Name  string
	Trace *workload.Trace
}

// Runner executes one device-epoch replay: the named mix on one
// device's configuration. core.RunMultiStats is the canonical
// implementation; experiments.Suite supplies a memoizing one, so a
// rerun of the fleet sweep reuses cached device replays exactly like
// any other experiment.
type Runner func(mix []string, mode core.Mode, cfg core.Config) ([]core.Result, core.RunStats, error)

// ReplayConfig parameterizes a fleet replay.
type ReplayConfig struct {
	// Devices is the fleet size (default 1).
	Devices int
	// Weights are optional per-device placement weights (nil = uniform).
	Weights []float64
	// Base is the per-device replay configuration. Its FaultPlan is
	// overridden per device from Faults; set MinFlashPages for the whole
	// mix so every device runs identical hardware.
	Base core.Config
	// Faults is the fleet fault scenario (nil = fault-free everywhere).
	// Share one pointer across reruns: derived per-device plans are
	// cached inside it, which keeps memoizing Runners effective.
	Faults *fault.FleetPlan
	// PlacementSeed salts the rendezvous placement.
	PlacementSeed uint64
	// HealthFloor is the degradation threshold (0 = DefaultHealthFloor).
	HealthFloor float64
	// Run executes device replays (nil = core.RunMultiStats).
	Run Runner
}

// TenantOutcome is one tenant's fate across the replay.
type TenantOutcome struct {
	Tenant string
	// Device is the initial placement; FinalDevice where the tenant's
	// data and result ended up (differs only after a migration).
	Device      int
	FinalDevice int
	// Migrated marks tenants moved off a degraded device; Lost marks
	// tenants that did not complete — stranded with no healthy target,
	// or still failing after re-admission.
	Migrated bool
	Lost     bool
	// PagesMoved and MigrationLatency describe the migration (zero when
	// the tenant never moved): every owned page is read through the
	// source TEE/MEE path and re-encrypted on the destination, pipelined
	// across the destination's channels.
	PagesMoved       int64
	MigrationLatency sim.Duration
	// Result is the tenant's final replay result: the wave-1 result on
	// its home device, or the post-migration wave-2 result on the
	// failover target.
	Result core.Result
}

// DeviceOutcome summarizes one device's epoch.
type DeviceOutcome struct {
	Device  int
	Tenants int
	// Score is the epoch-end health score; Degraded marks devices that
	// fell below the floor and were failed over.
	Score    float64
	Degraded bool
	// DeadDies and BadBlocks are the retirement telemetry behind Score.
	DeadDies  int64
	BadBlocks int64
	// CompletedPages is the goodput the device served (completed
	// tenants' pages, counted on the tenant's final device).
	CompletedPages int64
	// Makespan is the device's finish time: its last wave-1 completion,
	// extended by recovery waves it absorbed as a failover target.
	Makespan sim.Duration
}

// Failover records one failover decision.
type Failover struct {
	Source, Target int
	// SourceScore is the health score that condemned the source.
	SourceScore float64
	// Tenants are the migrated tenant names, in placement order.
	Tenants []string
}

// ReplayReport is the deterministic outcome of a fleet replay. Two
// replays with identical inputs produce DeepEqual reports — decisions,
// latencies, and per-tenant Results included.
type ReplayReport struct {
	Devices   []DeviceOutcome
	Tenants   []TenantOutcome
	Failovers []Failover
	// Recovered and Lost count the tenants of degraded devices:
	// recovered completed on their failover target, lost did not (no
	// target, or failed again after migration).
	Recovered, Lost int
	// GoodputPagesPerSec is fleet-wide completed work (pages of
	// completed tenants) over the fleet makespan.
	GoodputPagesPerSec float64
	// UtilizationSkew is max device share over mean share of completed
	// pages (1.0 = perfectly even; 0 when nothing completed).
	UtilizationSkew float64
	// Migration latency distribution over migrated tenants.
	MigrationMean, MigrationMax sim.Duration
	// Makespan is the fleet finish time (max device makespan).
	Makespan sim.Duration
}

// Replay runs the virtual-time fleet: placement, one replay epoch per
// device, an epoch-end health evaluation, and failover of every
// degraded device (migration latency modeled on the virtual clock,
// tenants re-admitted on the healthiest target in a recovery wave).
//
// Everything is deterministic: placement is a pure hash, device epochs
// are core replays (bit-identical across pooled stacks and
// EngineWorkers counts), health scores are arithmetic over replay
// counters, and targets are chosen by (score, lowest-ID) — so identical
// seeds replay identical failover decisions and identical
// post-migration Results. A 1-device fleet degenerates to exactly one
// core.RunMultiStats over the tenants in input order: results-identical
// to the bare SSD.
func Replay(tenants []ReplayTenant, mode core.Mode, rc ReplayConfig) (*ReplayReport, error) {
	if rc.Devices <= 0 {
		rc.Devices = 1
	}
	if rc.Weights != nil && len(rc.Weights) != rc.Devices {
		return nil, fmt.Errorf("fleet: %d weights for %d devices", len(rc.Weights), rc.Devices)
	}
	floor := rc.HealthFloor
	if floor == 0 {
		floor = DefaultHealthFloor
	}
	run := rc.Run
	if run == nil {
		byName := make(map[string]*workload.Trace, len(tenants))
		for _, tn := range tenants {
			byName[tn.Name] = tn.Trace
		}
		run = func(mix []string, mode core.Mode, cfg core.Config) ([]core.Result, core.RunStats, error) {
			traces := make([]*workload.Trace, len(mix))
			for i, name := range mix {
				traces[i] = byName[name]
			}
			return core.RunMultiStats(traces, mode, cfg)
		}
	}

	// Placement: input order within each device group, so a 1-device
	// fleet replays the exact input mix.
	groups := make([][]int, rc.Devices)
	for i, tn := range tenants {
		d := Place(tn.Name, rc.Devices, rc.PlacementSeed, rc.Weights, nil)
		if d < 0 {
			return nil, fmt.Errorf("fleet: no eligible device for tenant %s", tn.Name)
		}
		groups[d] = append(groups[d], i)
	}

	rep := &ReplayReport{
		Devices: make([]DeviceOutcome, rc.Devices),
		Tenants: make([]TenantOutcome, len(tenants)),
	}
	scores := make([]float64, rc.Devices)

	// Wave 1: one replay epoch per device, health scored from its
	// virtual-time telemetry.
	for d := 0; d < rc.Devices; d++ {
		rep.Devices[d] = DeviceOutcome{Device: d, Tenants: len(groups[d]), Score: 1}
		scores[d] = 1
		if len(groups[d]) == 0 {
			continue
		}
		mix := mixNames(tenants, groups[d])
		cfg := rc.Base
		cfg.FaultPlan = rc.Faults.ForDevice(d)
		results, rstats, err := run(mix, mode, cfg)
		if err != nil {
			return nil, fmt.Errorf("fleet: device %d: %w", d, err)
		}
		var trips, failed int64
		var makespan sim.Duration
		for k, gi := range groups[d] {
			trips += int64(results[k].BreakerTrips)
			if results[k].Failed {
				failed++
			}
			if results[k].Total > makespan {
				makespan = results[k].Total
			}
			rep.Tenants[gi] = TenantOutcome{
				Tenant: tenants[gi].Name, Device: d, FinalDevice: d, Result: results[k],
			}
		}
		scores[d] = ScoreTelemetry(rstats.FTL, rstats.Flash, trips, failed)
		rep.Devices[d].Score = scores[d]
		rep.Devices[d].DeadDies = rstats.FTL.DeadDies
		rep.Devices[d].BadBlocks = rstats.FTL.BadBlocks
		rep.Devices[d].Makespan = makespan
	}

	// Failover: every degraded device drains to the healthiest
	// non-degraded target (ties to the lowest device ID), in ascending
	// source order — a fixed decision order, so the report is replayable.
	for d := 0; d < rc.Devices; d++ {
		if scores[d] >= floor || len(groups[d]) == 0 {
			if scores[d] < floor {
				rep.Devices[d].Degraded = true
			}
			continue
		}
		rep.Devices[d].Degraded = true
		target := -1
		for t := 0; t < rc.Devices; t++ {
			if t == d || scores[t] < floor {
				continue
			}
			if target < 0 || scores[t] > scores[target] {
				target = t
			}
		}
		mix := mixNames(tenants, groups[d])
		if target < 0 {
			// No healthy device left: the tenants are stranded.
			for _, gi := range groups[d] {
				rep.Tenants[gi].Lost = true
			}
			rep.Lost += len(groups[d])
			continue
		}
		// Migration latency: every owned page crosses the source TEE/MEE
		// read path (tRD + cipher) and is re-encrypted and programmed on
		// the destination (cipher + tPROG), pipelined across the
		// channels, on the virtual clock.
		perPage := rc.Base.FlashTiming.ReadLatency + rc.Base.FlashTiming.ProgramLatency +
			2*rc.Base.CipherPerPage
		channels := rc.Base.Channels
		if channels <= 0 {
			channels = 1
		}
		var maxMig sim.Duration
		for _, gi := range groups[d] {
			tr := tenants[gi].Trace
			pages := int64(tr.SetupPages) + tr.Meter.PagesWritten
			rounds := (pages + int64(channels) - 1) / int64(channels)
			lat := sim.Duration(rounds) * perPage
			o := &rep.Tenants[gi]
			o.Migrated = true
			o.FinalDevice = target
			o.PagesMoved = pages
			o.MigrationLatency = lat
			if lat > maxMig {
				maxMig = lat
			}
		}
		// Recovery wave: the source's tenants re-admitted on the target,
		// replayed under the target's own fault plan.
		cfg := rc.Base
		cfg.FaultPlan = rc.Faults.ForDevice(target)
		results, _, err := run(mix, mode, cfg)
		if err != nil {
			return nil, fmt.Errorf("fleet: recovery wave %d->%d: %w", d, target, err)
		}
		var waveMakespan sim.Duration
		for k, gi := range groups[d] {
			rep.Tenants[gi].Result = results[k]
			if results[k].Failed {
				rep.Tenants[gi].Lost = true
				rep.Lost++
			} else {
				rep.Recovered++
			}
			if results[k].Total > waveMakespan {
				waveMakespan = results[k].Total
			}
		}
		// The target absorbs the recovery wave after the source epoch
		// ends (failure detected at epoch end) and the slowest migration
		// lands.
		finish := rep.Devices[d].Makespan + maxMig + waveMakespan
		if finish > rep.Devices[target].Makespan {
			rep.Devices[target].Makespan = finish
		}
		rep.Failovers = append(rep.Failovers, Failover{
			Source: d, Target: target, SourceScore: scores[d], Tenants: mix,
		})
	}

	// Fleet-wide aggregates: goodput over the fleet makespan,
	// utilization skew over completed pages per final device, migration
	// latency distribution.
	var totalDone int64
	var migSum sim.Duration
	migrated := 0
	for i := range rep.Tenants {
		o := &rep.Tenants[i]
		if o.Migrated {
			migrated++
			migSum += o.MigrationLatency
			if o.MigrationLatency > rep.MigrationMax {
				rep.MigrationMax = o.MigrationLatency
			}
		}
		if o.Lost || o.Result.Failed {
			continue
		}
		work := tenants[i].Trace.Meter.PagesRead + tenants[i].Trace.Meter.PagesWritten
		rep.Devices[o.FinalDevice].CompletedPages += work
		totalDone += work
	}
	if migrated > 0 {
		rep.MigrationMean = migSum / sim.Duration(migrated)
	}
	for d := range rep.Devices {
		if rep.Devices[d].Makespan > rep.Makespan {
			rep.Makespan = rep.Devices[d].Makespan
		}
	}
	if rep.Makespan > 0 {
		rep.GoodputPagesPerSec = float64(totalDone) / (float64(rep.Makespan) / 1e9)
	}
	if totalDone > 0 {
		mean := float64(totalDone) / float64(rc.Devices)
		var maxShare float64
		for d := range rep.Devices {
			if s := float64(rep.Devices[d].CompletedPages); s > maxShare {
				maxShare = s
			}
		}
		rep.UtilizationSkew = maxShare / mean
	}
	return rep, nil
}

func mixNames(tenants []ReplayTenant, group []int) []string {
	out := make([]string, len(group))
	for i, gi := range group {
		out[i] = tenants[gi].Name
	}
	return out
}
