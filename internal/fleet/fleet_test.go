package fleet

import (
	"bytes"
	"context"
	"fmt"
	"math/rand"
	"testing"

	"iceclave"
	"iceclave/internal/query"
	"iceclave/internal/sched"
)

const testPageSize = 4096

// newTestFleet builds a small live fleet.
func newTestFleet(t *testing.T, devices int) *Fleet {
	t.Helper()
	f, err := New(Options{
		Devices:       devices,
		PlacementSeed: 21,
		SSD:           iceclave.Options{BlocksPerPlane: 8},
		Sched:         sched.Config{Workers: 2},
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		if err := f.Close(context.Background()); err != nil {
			t.Errorf("close: %v", err)
		}
	})
	return f
}

// tenantPages builds n deterministic full-size pages for a tenant.
func tenantPages(rng *rand.Rand, n int) [][]byte {
	pages := make([][]byte, n)
	for i := range pages {
		pages[i] = make([]byte, testPageSize)
		rng.Read(pages[i])
	}
	return pages
}

// sumProgram sums every byte of the store's pages — a minimal offloaded
// program touching the full TEE data path.
func sumProgram(lpas []uint32) iceclave.Program {
	return func(st query.Store, m *query.Meter) ([]byte, error) {
		var sum uint64
		for _, l := range lpas {
			page, err := st.ReadPage(l)
			if err != nil {
				return nil, err
			}
			for _, b := range page {
				sum += uint64(b)
			}
		}
		return []byte(fmt.Sprintf("%d", sum)), nil
	}
}

// The live fleet places tenants, executes offloads through per-device
// schedulers, and fails over: tenants drain off the source, their pages
// migrate through the encrypted path, and they keep executing on the
// target — while the source is retired from placement until reopened.
func TestFleetFailoverLifecycle(t *testing.T) {
	f := newTestFleet(t, 3)
	rng := rand.New(rand.NewSource(4))

	byDevice := make(map[int][]string)
	data := make(map[string][][]byte)
	want := make(map[string][]byte)
	for i := 0; i < 6; i++ {
		name := fmt.Sprintf("tenant-%d", i)
		pages := tenantPages(rng, 3)
		d, err := f.AddTenant(name, pages)
		if err != nil {
			t.Fatal(err)
		}
		byDevice[d] = append(byDevice[d], name)
		data[name] = pages

		lpas, err := f.TenantLPAs(name)
		if err != nil {
			t.Fatal(err)
		}
		out, err := f.Execute(name, sched.PriorityNormal, sumProgram(lpas))
		if err != nil {
			t.Fatalf("execute %s: %v", name, err)
		}
		want[name] = out
	}
	for d := 0; d < f.Devices(); d++ {
		if h := f.Health(d); h != 1 {
			t.Errorf("clean device %d health %v, want 1", d, h)
		}
		for o := d + 1; o < f.Devices(); o++ {
			if bytes.Equal(f.DeviceKey(d), f.DeviceKey(o)) {
				t.Errorf("devices %d and %d share a bus cipher key", d, o)
			}
		}
	}

	// Fail over the busiest device.
	src := 0
	for d, names := range byDevice {
		if len(names) > len(byDevice[src]) {
			src = d
		}
	}
	if len(byDevice[src]) == 0 {
		t.Fatal("no device holds a tenant; placement test setup broken")
	}
	rep, err := f.Failover(context.Background(), src)
	if err != nil {
		t.Fatalf("failover: %v", err)
	}
	if rep.Source != src || rep.Target == src || rep.Target < 0 {
		t.Fatalf("bad failover endpoints: %+v", rep)
	}
	if len(rep.Migrated) != len(byDevice[src]) {
		t.Errorf("migrated %v, want all of %v", rep.Migrated, byDevice[src])
	}
	if rep.StragglersQueued != 0 || rep.StragglersRunning != 0 {
		t.Errorf("clean drain reported stragglers: %+v", rep)
	}

	// Every migrated tenant: moved off the source, data intact through
	// both read paths, offloads still running — now on the target.
	for _, name := range rep.Migrated {
		d, err := f.TenantDevice(name)
		if err != nil {
			t.Fatal(err)
		}
		if d == src {
			t.Errorf("tenant %s still on failed device %d", name, src)
		}
		for i, page := range data[name] {
			host, err := f.HostReadTenantPage(name, i)
			if err != nil {
				t.Fatalf("host read %s[%d]: %v", name, i, err)
			}
			if !bytes.Equal(host, page) {
				t.Errorf("tenant %s page %d corrupted across migration (host path)", name, i)
			}
		}
		lpas, err := f.TenantLPAs(name)
		if err != nil {
			t.Fatal(err)
		}
		out, err := f.Execute(name, sched.PriorityNormal, sumProgram(lpas))
		if err != nil {
			t.Fatalf("post-migration execute %s: %v", name, err)
		}
		if !bytes.Equal(out, want[name]) {
			t.Errorf("tenant %s: post-migration result %q, want %q", name, out, want[name])
		}
	}

	// The retired source accepts no work and no placements.
	if _, err := f.Execute(byDevice[src][0], sched.PriorityNormal, nil); err == nil {
		t.Error("nil program on migrated tenant unexpectedly succeeded")
	}
	for i := 0; i < 8; i++ {
		name := fmt.Sprintf("late-%d", i)
		d, err := f.AddTenant(name, tenantPages(rng, 1))
		if err != nil {
			t.Fatal(err)
		}
		if d == src {
			t.Errorf("tenant %s placed on retired device %d", name, src)
		}
	}

	// Reopen returns the device to service: placements may land on it
	// again and its scheduler admits work.
	if err := f.Reopen(src); err != nil {
		t.Fatalf("reopen: %v", err)
	}
	reopened := false
	for i := 0; i < 64 && !reopened; i++ {
		name := fmt.Sprintf("fresh-%d", i)
		d, err := f.AddTenant(name, tenantPages(rng, 1))
		if err != nil {
			t.Fatal(err)
		}
		if d == src {
			reopened = true
			lpas, _ := f.TenantLPAs(name)
			if _, err := f.Execute(name, sched.PriorityNormal, sumProgram(lpas)); err != nil {
				t.Fatalf("execute on reopened device: %v", err)
			}
		}
	}
	if !reopened {
		t.Errorf("64 placements after Reopen never picked device %d", src)
	}
}
