// Package fleet scales the single-device stack to a rack: it places
// tenants onto N independent iceclave.SSD devices behind weighted
// rendezvous hashing, scores each device's health from its fault
// telemetry, and fails a degraded device over — drain, migrate the
// tenants' pages through the TEE/MEE encrypted path (re-encrypting
// under the destination's fresh keys), re-admit on a healthy target.
//
// The package has two facets, mirroring the rest of the repository:
//
//   - Fleet is the functional rack: live SSDs with per-device
//     schedulers, wall-clock drain, and real page migration through
//     TEEs (New / AddTenant / Execute / Failover).
//
//   - Replay is the deterministic virtual-time rack: per-device replays
//     on the discrete-event clock, an epoch health evaluation, and a
//     modeled migration latency — identical seeds replay identical
//     failover decisions and identical post-migration Results across
//     pooled stacks and engine worker counts, and a 1-device fleet is
//     results-identical to a bare SSD (see ARCHITECTURE.md, "Fleet
//     placement and failover").
package fleet

import "math"

// fnv1a hashes a tenant name (FNV-1a 64).
func fnv1a(s string) uint64 {
	h := uint64(14695981039346656037)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= 1099511628211
	}
	return h
}

// mix64 is the splitmix64 finalizer — the same mixer the fault package
// uses for its decision streams.
func mix64(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xBF58476D1CE4E5B9
	x ^= x >> 27
	x *= 0x94D049BB133111EB
	x ^= x >> 31
	return x
}

// rendezvousScore is tenant's weighted highest-random-weight score on
// device: -w / ln(u) with u uniform in (0, 1) derived from
// (tenant, device, salt). Placement picks the eligible device with the
// highest score, which gives weighted-proportional assignment AND
// minimal disruption: removing a device only moves the tenants that
// were on it, because every other device's score is untouched.
func rendezvousScore(tenant string, device int, salt uint64, weight float64) float64 {
	if weight <= 0 {
		return math.Inf(-1)
	}
	h := mix64(fnv1a(tenant) ^ mix64(salt+0x9E3779B97F4A7C15) ^ uint64(device+1)*0xD1B54A32D192ED03)
	u := (float64(h>>11) + 0.5) * (1.0 / (1 << 53)) // uniform in (0, 1)
	return -weight / math.Log(u)
}

// Place picks tenant's device among devices 0..n-1 by weighted
// rendezvous hashing. weights may be nil (all devices weight 1);
// eligible may be nil (all devices eligible). Returns -1 when no device
// is eligible. Place is a pure function — the same arguments always
// pick the same device, on any goroutine, which is what makes placement
// decisions replayable.
func Place(tenant string, n int, salt uint64, weights []float64, eligible func(int) bool) int {
	best, bestScore := -1, math.Inf(-1)
	for d := 0; d < n; d++ {
		if eligible != nil && !eligible(d) {
			continue
		}
		w := 1.0
		if weights != nil {
			w = weights[d]
		}
		if s := rendezvousScore(tenant, d, salt, w); s > bestScore {
			best, bestScore = d, s
		}
	}
	return best
}

// Placements maps each tenant name to its device — the batch form of
// Place used to pre-compute a scenario's tenant→device assignment (for
// example, to script the death of the device a given mix actually
// lands on).
func Placements(tenants []string, n int, salt uint64, weights []float64) []int {
	out := make([]int, len(tenants))
	for i, t := range tenants {
		out[i] = Place(t, n, salt, weights, nil)
	}
	return out
}
