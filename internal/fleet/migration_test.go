package fleet

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"math/rand"
	"testing"

	"iceclave/internal/fault"
	"iceclave/internal/tee"
)

// Migration data-integrity property: for random tenant page sets, every
// page read back after failover — through the host path and through the
// TEE/MEE encrypted path — equals the pre-migration plaintext, even
// though the destination sealed it under different bus keys.
func TestMigrationPreservesPlaintextProperty(t *testing.T) {
	for trial := 0; trial < 3; trial++ {
		trial := trial
		t.Run(fmt.Sprintf("trial-%d", trial), func(t *testing.T) {
			f := newTestFleet(t, 2)
			rng := rand.New(rand.NewSource(int64(1000 + trial)))

			data := make(map[string][][]byte)
			var onSrc []string
			const src = 0
			for i := 0; i < 4+rng.Intn(4); i++ {
				name := fmt.Sprintf("prop-%d-%d", trial, i)
				pages := tenantPages(rng, 1+rng.Intn(5))
				d, err := f.AddTenant(name, pages)
				if err != nil {
					t.Fatal(err)
				}
				data[name] = pages
				if d == src {
					onSrc = append(onSrc, name)
				}
			}
			if len(onSrc) == 0 {
				t.Skip("no tenant landed on the source this trial")
			}

			rep, err := f.Failover(context.Background(), src)
			if err != nil {
				t.Fatalf("failover: %v", err)
			}
			if len(rep.Migrated) != len(onSrc) {
				t.Fatalf("migrated %v, want %v", rep.Migrated, onSrc)
			}

			for name, pages := range data {
				for i, want := range pages {
					host, err := f.HostReadTenantPage(name, i)
					if err != nil {
						t.Fatalf("host read %s[%d]: %v", name, i, err)
					}
					if !bytes.Equal(host, want) {
						t.Errorf("tenant %s page %d: host read-back diverges from pre-migration plaintext", name, i)
					}
					enc, err := f.ReadTenantPage(name, i)
					if err != nil {
						t.Fatalf("TEE read %s[%d]: %v", name, i, err)
					}
					if !bytes.Equal(enc, want) {
						t.Errorf("tenant %s page %d: TEE read-back diverges from pre-migration plaintext", name, i)
					}
				}
			}
		})
	}
}

// Tampered migrated pages do not pass silently: when the destination's
// MAC verification fails on a migrated page, the TEE read path surfaces
// tee.ErrIntegrity through the public API instead of returning bytes.
func TestMigrationTamperSurfacesErrIntegrity(t *testing.T) {
	f := newTestFleet(t, 2)
	rng := rand.New(rand.NewSource(7))

	var victim string
	const src = 0
	for i := 0; victim == ""; i++ {
		if i > 64 {
			t.Fatal("64 tenants and none placed on device 0")
		}
		name := fmt.Sprintf("tamper-%d", i)
		d, err := f.AddTenant(name, tenantPages(rng, 2))
		if err != nil {
			t.Fatal(err)
		}
		if d == src {
			victim = name
		}
	}
	if _, err := f.Failover(context.Background(), src); err != nil {
		t.Fatalf("failover: %v", err)
	}
	dst, err := f.TenantDevice(victim)
	if err != nil {
		t.Fatal(err)
	}

	// Model post-migration tampering: every MAC verification on the
	// destination now fails, as it would if the migrated ciphertext had
	// been modified at rest.
	f.SSD(dst).Runtime().SetFaultPlan(&fault.Plan{Seed: 1, MACFail: 1})
	_, err = f.ReadTenantPage(victim, 0)
	if err == nil {
		t.Fatal("TEE read of a tampered migrated page returned data")
	}
	if !errors.Is(err, tee.ErrIntegrity) {
		t.Fatalf("tampered read error %v does not wrap tee.ErrIntegrity", err)
	}
}
