package fleet

import (
	"context"
	"encoding/binary"
	"fmt"
	"sort"
	"sync"
	"time"

	"iceclave"
	"iceclave/internal/fault"
	"iceclave/internal/host"
	"iceclave/internal/sched"
)

// migrationBinary is the in-storage program image the fleet offloads for
// its own page-migration TEEs (one flash page of position-independent
// copier code).
const migrationBinary = 4096

// DefaultDrainTimeout bounds how long a failover waits for the degraded
// device's scheduler to drain before reporting stragglers.
const DefaultDrainTimeout = 5 * time.Second

// Options configures a functional fleet.
type Options struct {
	// Devices is the fleet size (default 2).
	Devices int
	// Weights are optional per-device placement weights (nil = uniform).
	Weights []float64
	// PlacementSeed salts the rendezvous placement.
	PlacementSeed uint64
	// SSD is the per-device base configuration. The fleet overrides two
	// fields per device: CipherKey (every device seals its bus under its
	// own derived key, so migration re-encrypts under the destination's
	// fresh keys) and FaultPlan (the device's slice of Faults).
	SSD iceclave.Options
	// Faults is the fleet fault scenario (nil = fault-free everywhere).
	Faults *fault.FleetPlan
	// Sched configures each device's offload scheduler.
	Sched sched.Config
	// DrainTimeout bounds the failover drain (default DefaultDrainTimeout).
	DrainTimeout time.Duration
	// HealthFloor is the degradation threshold (0 = DefaultHealthFloor).
	HealthFloor float64
}

// device is one rack slot: a live SSD behind its own offload scheduler
// and a bump allocator for tenant page ranges.
type device struct {
	id    int
	ssd   *iceclave.SSD
	sched *sched.Scheduler
	key   []byte

	mu      sync.Mutex
	nextLPA uint32
	retired bool
}

// alloc bump-allocates n logical pages on the device.
func (d *device) alloc(n int) ([]uint32, error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if int64(d.nextLPA)+int64(n) > d.ssd.LogicalPages() {
		return nil, fmt.Errorf("fleet: device %d out of logical pages", d.id)
	}
	lpas := make([]uint32, n)
	for i := range lpas {
		lpas[i] = d.nextLPA + uint32(i)
	}
	d.nextLPA += uint32(n)
	return lpas, nil
}

// tenantRec tracks where a tenant's data lives right now.
type tenantRec struct {
	device int
	lpas   []uint32
}

// Fleet is the functional rack: N independent iceclave.SSD stacks, each
// behind its own admission-controlled scheduler, with health-aware
// tenant placement and live failover. Safe for concurrent use.
type Fleet struct {
	opts    Options
	devices []*device

	mu      sync.Mutex
	tenants map[string]*tenantRec
	nextTID uint32
}

// deviceKey derives device d's 10-byte Trivium bus key from the
// placement seed — distinct per device, so a migrated page is
// re-encrypted under genuinely fresh keys on its destination.
func deviceKey(seed uint64, d int) []byte {
	x := mix64(seed ^ uint64(d+1)*0x9E3779B97F4A7C15)
	key := make([]byte, 10)
	binary.LittleEndian.PutUint64(key[:8], x)
	binary.LittleEndian.PutUint16(key[8:], uint16(mix64(x)))
	return key
}

// New builds and starts a fleet.
func New(opts Options) (*Fleet, error) {
	if opts.Devices <= 0 {
		opts.Devices = 2
	}
	if opts.Weights != nil && len(opts.Weights) != opts.Devices {
		return nil, fmt.Errorf("fleet: %d weights for %d devices", len(opts.Weights), opts.Devices)
	}
	if opts.DrainTimeout <= 0 {
		opts.DrainTimeout = DefaultDrainTimeout
	}
	if opts.HealthFloor == 0 {
		opts.HealthFloor = DefaultHealthFloor
	}
	f := &Fleet{opts: opts, tenants: make(map[string]*tenantRec)}
	for d := 0; d < opts.Devices; d++ {
		so := opts.SSD
		so.CipherKey = deviceKey(opts.PlacementSeed, d)
		so.FaultPlan = opts.Faults.ForDevice(d)
		ssd, err := iceclave.Open(so)
		if err != nil {
			return nil, fmt.Errorf("fleet: device %d: %w", d, err)
		}
		f.devices = append(f.devices, &device{
			id: d, ssd: ssd, sched: sched.New(opts.Sched), key: so.CipherKey,
		})
	}
	return f, nil
}

// Close drains and stops every device scheduler.
func (f *Fleet) Close(ctx context.Context) error {
	var first error
	for _, d := range f.devices {
		if err := d.sched.Close(ctx); err != nil && first == nil {
			first = err
		}
	}
	return first
}

// Devices returns the fleet size.
func (f *Fleet) Devices() int { return len(f.devices) }

// SSD exposes device d's stack for inspection.
func (f *Fleet) SSD(d int) *iceclave.SSD { return f.devices[d].ssd }

// DeviceKey returns device d's derived bus cipher key.
func (f *Fleet) DeviceKey(d int) []byte { return append([]byte(nil), f.devices[d].key...) }

// eligible reports whether device d accepts placements. Caller holds f.mu
// or tolerates races on admission (placement itself is a pure function).
func (f *Fleet) eligible(d int) bool {
	dev := f.devices[d]
	dev.mu.Lock()
	defer dev.mu.Unlock()
	return !dev.retired
}

// AddTenant places a tenant on the fleet and stores its dataset pages
// through the host path of the chosen device. Returns the device picked
// by weighted rendezvous hashing over the non-retired devices.
func (f *Fleet) AddTenant(name string, pages [][]byte) (int, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if _, dup := f.tenants[name]; dup {
		return 0, fmt.Errorf("fleet: tenant %s already placed", name)
	}
	d := Place(name, len(f.devices), f.opts.PlacementSeed, f.opts.Weights, f.eligible)
	if d < 0 {
		return 0, fmt.Errorf("fleet: no eligible device for tenant %s", name)
	}
	dev := f.devices[d]
	lpas, err := dev.alloc(len(pages))
	if err != nil {
		return 0, err
	}
	for i, p := range pages {
		if err := dev.ssd.HostWrite(lpas[i], p); err != nil {
			return 0, fmt.Errorf("fleet: storing tenant %s page %d: %w", name, i, err)
		}
	}
	f.tenants[name] = &tenantRec{device: d, lpas: lpas}
	return d, nil
}

// lookup resolves a tenant to its current device and page range.
func (f *Fleet) lookup(name string) (*device, *tenantRec, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	rec, ok := f.tenants[name]
	if !ok {
		return nil, nil, fmt.Errorf("fleet: unknown tenant %s", name)
	}
	return f.devices[rec.device], rec, nil
}

// TenantDevice returns the device currently holding the tenant's data.
func (f *Fleet) TenantDevice(name string) (int, error) {
	_, rec, err := f.lookup(name)
	if err != nil {
		return 0, err
	}
	return rec.device, nil
}

// TenantLPAs returns the tenant's current logical page range.
func (f *Fleet) TenantLPAs(name string) ([]uint32, error) {
	_, rec, err := f.lookup(name)
	if err != nil {
		return nil, err
	}
	return append([]uint32(nil), rec.lpas...), nil
}

// offload builds the tenant's offload request over its current pages.
func (f *Fleet) offload(rec *tenantRec) host.Offload {
	f.mu.Lock()
	f.nextTID++
	tid := f.nextTID
	f.mu.Unlock()
	return host.Offload{
		TaskID: tid,
		Binary: make([]byte, migrationBinary),
		LPAs:   append([]uint32(nil), rec.lpas...),
	}
}

// Execute runs an offloaded program for the tenant on its current
// device, through that device's scheduler (admission control, priority
// bands, metering — the full multi-tenant front end).
func (f *Fleet) Execute(name string, prio sched.Priority, prog iceclave.Program) ([]byte, error) {
	dev, rec, err := f.lookup(name)
	if err != nil {
		return nil, err
	}
	var out []byte
	h, err := dev.sched.Submit(name, prio, func(context.Context) error {
		var jerr error
		out, jerr = dev.ssd.Execute(f.offload(rec), prog)
		return jerr
	})
	if err != nil {
		return nil, err
	}
	if err := h.Wait(); err != nil {
		return nil, err
	}
	return out, nil
}

// ReadTenantPage reads the tenant's i-th page through the full TEE/MEE
// data path on its current device — MAC-verified ciphertext on the bus,
// plaintext out. Integrity violations surface as tee.ErrIntegrity.
func (f *Fleet) ReadTenantPage(name string, i int) ([]byte, error) {
	dev, rec, err := f.lookup(name)
	if err != nil {
		return nil, err
	}
	if i < 0 || i >= len(rec.lpas) {
		return nil, fmt.Errorf("fleet: tenant %s has no page %d", name, i)
	}
	task, err := dev.ssd.OffloadCode(f.offload(rec))
	if err != nil {
		return nil, err
	}
	data, rerr := task.Store().ReadPage(rec.lpas[i])
	if ferr := task.Finish(nil); rerr == nil && ferr != nil {
		return nil, ferr
	}
	return data, rerr
}

// HostReadTenantPage reads the tenant's i-th page through the host I/O
// path of its current device.
func (f *Fleet) HostReadTenantPage(name string, i int) ([]byte, error) {
	dev, rec, err := f.lookup(name)
	if err != nil {
		return nil, err
	}
	if i < 0 || i >= len(rec.lpas) {
		return nil, fmt.Errorf("fleet: tenant %s has no page %d", name, i)
	}
	return dev.ssd.HostRead(rec.lpas[i])
}

// Health scores device d from its live fault telemetry: FTL recovery
// work (dead dies, retired blocks, read reissues), raw flash activity
// and aborts, and the scheduler's failed-job count (the functional path
// runs no circuit breakers, so the trips input is zero here).
func (f *Fleet) Health(d int) float64 {
	dev := f.devices[d]
	return ScoreTelemetry(dev.ssd.FTL().Stats(), dev.ssd.FlashStats(), 0, dev.sched.Stats().Failed)
}

// Degraded reports whether device d scores below the health floor.
func (f *Fleet) Degraded(d int) bool { return f.Health(d) < f.opts.HealthFloor }

// FailoverReport describes one completed failover.
type FailoverReport struct {
	Source, Target int
	// SourceScore is the health score that condemned the source.
	SourceScore float64
	// Migrated lists the tenants moved, in placement order; PagesMoved
	// counts the pages re-encrypted onto the target.
	Migrated   []string
	PagesMoved int
	// StragglersQueued and StragglersRunning count jobs the drain
	// abandoned on the source when it timed out (both zero on a clean
	// drain).
	StragglersQueued, StragglersRunning int
}

// Failover drains device src, retires it from placement, and live-migrates
// every tenant on it to the healthiest non-retired device: each page is
// read through the source's TEE/MEE path (MAC-verified, decrypted from
// the source's bus keys) and written through the target's TEE path,
// re-encrypting it under the target's own fresh keys. Tenants keep their
// names; their device and page range move. Subsequent Execute and read
// calls transparently hit the target.
func (f *Fleet) Failover(ctx context.Context, src int) (*FailoverReport, error) {
	if src < 0 || src >= len(f.devices) {
		return nil, fmt.Errorf("fleet: no device %d", src)
	}
	srcDev := f.devices[src]
	rep := &FailoverReport{Source: src, Target: -1, SourceScore: f.Health(src)}

	// Retire the source first: placement and failover-target selection
	// stop seeing it even while the drain runs.
	srcDev.mu.Lock()
	srcDev.retired = true
	srcDev.mu.Unlock()

	// Drain: stop admission, wait for in-flight offloads. A timeout
	// reports the stragglers and aborts the failover — migrating pages
	// out from under a live TEE would throw the tenant out mid-run.
	dctx, cancel := context.WithTimeout(ctx, f.opts.DrainTimeout)
	defer cancel()
	if err := srcDev.sched.Drain(dctx); err != nil {
		rep.StragglersQueued, rep.StragglersRunning = srcDev.sched.Pending()
		return rep, fmt.Errorf("fleet: failover of device %d: %w", src, err)
	}

	// Target: healthiest non-retired device, ties to the lowest ID — the
	// same rule the replay layer pins deterministically.
	target, best := -1, -1.0
	for d := range f.devices {
		if d == src || !f.eligible(d) {
			continue
		}
		if s := f.Health(d); s > best {
			target, best = d, s
		}
	}
	if target < 0 {
		return rep, fmt.Errorf("fleet: no healthy failover target for device %d", src)
	}
	rep.Target = target
	dstDev := f.devices[target]

	// Migrate each of the source's tenants.
	f.mu.Lock()
	var names []string
	for name, rec := range f.tenants {
		if rec.device == src {
			names = append(names, name)
		}
	}
	f.mu.Unlock()
	sort.Strings(names)
	for _, name := range names {
		_, rec, err := f.lookup(name)
		if err != nil {
			return rep, err
		}
		moved, err := f.migrate(name, rec, srcDev, dstDev)
		if err != nil {
			return rep, fmt.Errorf("fleet: migrating tenant %s: %w", name, err)
		}
		rep.Migrated = append(rep.Migrated, name)
		rep.PagesMoved += moved
	}
	return rep, nil
}

// migrate moves one tenant's pages src→dst through the encrypted data
// path and re-points the tenant record.
func (f *Fleet) migrate(name string, rec *tenantRec, src, dst *device) (int, error) {
	// Source side: a migration TEE over the tenant's pages reads each one
	// through ReadPage — permission-checked translation, MAC verification,
	// ciphertext across the source bus, plaintext out.
	srcTask, err := src.ssd.OffloadCode(f.offload(rec))
	if err != nil {
		return 0, fmt.Errorf("source TEE: %w", err)
	}
	pages := make([][]byte, len(rec.lpas))
	for i, lpa := range rec.lpas {
		if pages[i], err = srcTask.Store().ReadPage(lpa); err != nil {
			return 0, fmt.Errorf("reading LPA %d: %w", lpa, err)
		}
	}
	if err := srcTask.Finish(nil); err != nil {
		return 0, fmt.Errorf("source TEE finish: %w", err)
	}

	// Destination side: fresh pages, a migration TEE claiming them, and
	// WritePage re-encrypting every transfer under the destination's own
	// bus keys.
	newLPAs, err := dst.alloc(len(rec.lpas))
	if err != nil {
		return 0, err
	}
	dstTask, err := dst.ssd.OffloadCode(host.Offload{
		TaskID: f.offload(rec).TaskID, Binary: make([]byte, migrationBinary), LPAs: newLPAs,
	})
	if err != nil {
		return 0, fmt.Errorf("destination TEE: %w", err)
	}
	for i, lpa := range newLPAs {
		if err := dstTask.Store().WritePage(lpa, pages[i]); err != nil {
			return 0, fmt.Errorf("writing LPA %d: %w", lpa, err)
		}
	}
	if err := dstTask.Finish(nil); err != nil {
		return 0, fmt.Errorf("destination TEE finish: %w", err)
	}

	f.mu.Lock()
	rec.device = dst.id
	rec.lpas = newLPAs
	f.mu.Unlock()
	return len(newLPAs), nil
}

// Reopen returns a previously failed-over device to service: it becomes
// eligible for placement again and its scheduler re-admits work.
func (f *Fleet) Reopen(d int) error {
	dev := f.devices[d]
	if err := dev.sched.Reopen(); err != nil {
		return err
	}
	dev.mu.Lock()
	dev.retired = false
	dev.mu.Unlock()
	return nil
}
