package fleet

import (
	"fmt"
	"testing"
)

// Place is a pure function: the same arguments always pick the same
// device, and the salt reshuffles the assignment.
func TestPlaceDeterministic(t *testing.T) {
	weights := []float64{1, 2, 1, 4}
	for i := 0; i < 200; i++ {
		name := fmt.Sprintf("tenant-%d", i)
		d := Place(name, 4, 42, weights, nil)
		if d < 0 || d >= 4 {
			t.Fatalf("tenant %s placed on device %d", name, d)
		}
		for rep := 0; rep < 3; rep++ {
			if got := Place(name, 4, 42, weights, nil); got != d {
				t.Fatalf("tenant %s: placement flapped %d -> %d", name, d, got)
			}
		}
	}
	moved := 0
	for i := 0; i < 200; i++ {
		name := fmt.Sprintf("tenant-%d", i)
		if Place(name, 4, 42, weights, nil) != Place(name, 4, 43, weights, nil) {
			moved++
		}
	}
	if moved == 0 {
		t.Error("changing the placement salt moved no tenant")
	}
}

// Weighted rendezvous distributes tenants roughly proportionally to the
// device weights.
func TestPlaceWeightProportional(t *testing.T) {
	weights := []float64{1, 1, 2, 4}
	const tenants = 8000
	counts := make([]int, len(weights))
	for i := 0; i < tenants; i++ {
		counts[Place(fmt.Sprintf("w-%d", i), len(weights), 7, weights, nil)]++
	}
	var wsum float64
	for _, w := range weights {
		wsum += w
	}
	for d, w := range weights {
		expect := float64(tenants) * w / wsum
		if f := float64(counts[d]); f < 0.85*expect || f > 1.15*expect {
			t.Errorf("device %d: %d tenants, want ~%.0f (weight %.0f)", d, counts[d], expect, w)
		}
	}
}

// Removing a device from the eligible set moves only that device's
// tenants — the minimal-disruption property failover depends on.
func TestPlaceMinimalDisruption(t *testing.T) {
	const n, dead = 5, 3
	before := make(map[string]int)
	for i := 0; i < 500; i++ {
		name := fmt.Sprintf("d-%d", i)
		before[name] = Place(name, n, 11, nil, nil)
	}
	onDead := 0
	for name, d := range before {
		after := Place(name, n, 11, nil, func(dev int) bool { return dev != dead })
		if d == dead {
			onDead++
			if after == dead {
				t.Errorf("tenant %s still placed on removed device", name)
			}
			continue
		}
		if after != d {
			t.Errorf("tenant %s moved %d -> %d though its device survived", name, d, after)
		}
	}
	if onDead == 0 {
		t.Fatal("no tenant landed on the removed device; test pins nothing")
	}
}

// Placements is the batch form of Place; no eligible device yields -1.
func TestPlacements(t *testing.T) {
	names := []string{"a", "b", "c"}
	got := Placements(names, 3, 5, nil)
	for i, name := range names {
		if want := Place(name, 3, 5, nil, nil); got[i] != want {
			t.Errorf("tenant %s: Placements %d != Place %d", name, got[i], want)
		}
	}
	if d := Place("a", 3, 5, nil, func(int) bool { return false }); d != -1 {
		t.Errorf("no eligible device still placed on %d", d)
	}
	if d := Place("a", 2, 5, []float64{0, 0}, nil); d != -1 {
		t.Errorf("all-zero weights still placed on %d", d)
	}
}
