package fleet

import (
	"iceclave/internal/flash"
	"iceclave/internal/ftl"
)

// DefaultHealthFloor is the score below which a device counts as
// degraded and becomes a failover source.
const DefaultHealthFloor = 0.5

// Health-score penalty weights. A device starts at 1.0 and loses:
//
//   - deadDiePenalty per retired die (capped at deadDieCap): dead dies
//     are permanent capacity loss and the strongest death signal — a
//     scripted whole-device death alone drags the score to the cap.
//   - badBlockPenalty per retired block (capped at badBlockCap): wear.
//   - retryWeight × (read reissues / device reads), capped at retryCap:
//     the transient-fault rate the FTL is absorbing.
//   - readFaultWeight × (aborted reads / total reads), capped at
//     readFaultCap: faults the FTL could NOT absorb. Die deaths on the
//     read path surface here — the FTL retires dies only on the write
//     path, so a dead die under a read-heavy tenant is visible as
//     aborted reads, not as a DeadDies increment.
//   - tripPenalty per circuit-breaker trip (capped at tripCap): tenants
//     are already shedding load on this device.
//   - failedJobPenalty per failed offload (capped at failedJobCap): the
//     end-to-end casualty count, and the strongest live-path signal — a
//     device that kills its tenants' offloads is degraded no matter how
//     clean its retirement counters look.
//
// The inputs are the virtual-time counters every replay already
// produces (deterministic across pooled stacks and engine workers), so
// the score — plain float64 arithmetic in a fixed order — is as
// replayable as the counters themselves.
const (
	deadDiePenalty   = 0.10
	deadDieCap       = 0.60
	badBlockPenalty  = 0.002
	badBlockCap      = 0.20
	retryWeight      = 2.0
	retryCap         = 0.20
	readFaultWeight  = 2.0
	readFaultCap     = 0.20
	tripPenalty      = 0.02
	tripCap          = 0.20
	failedJobPenalty = 0.20
	failedJobCap     = 0.60
)

// ScoreTelemetry folds one device's fault telemetry into a health score
// in [0, 1]: 1.0 is a clean device, DefaultHealthFloor the standard
// degradation threshold. FTL stats carry the recovery work (retired
// dies and blocks, read reissues), flash stats the raw operation and
// abort counts, trips the circuit-breaker opens observed against the
// device, failedJobs the offloads the device failed outright.
func ScoreTelemetry(fs ftl.Stats, ds flash.Stats, trips, failedJobs int64) float64 {
	score := 1.0
	score -= capAt(float64(fs.DeadDies)*deadDiePenalty, deadDieCap)
	score -= capAt(float64(fs.BadBlocks)*badBlockPenalty, badBlockCap)
	if ds.Reads > 0 {
		score -= capAt(retryWeight*float64(fs.ReadRetries)/float64(ds.Reads), retryCap)
	}
	if total := ds.Reads + ds.ReadFaults; total > 0 {
		score -= capAt(readFaultWeight*float64(ds.ReadFaults)/float64(total), readFaultCap)
	}
	score -= capAt(float64(trips)*tripPenalty, tripCap)
	score -= capAt(float64(failedJobs)*failedJobPenalty, failedJobCap)
	if score < 0 {
		score = 0
	}
	return score
}

func capAt(v, cap float64) float64 {
	if v > cap {
		return cap
	}
	return v
}
