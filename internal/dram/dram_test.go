package dram

import (
	"testing"

	"iceclave/internal/sim"
)

func newTestDRAM() *DRAM {
	return New(DefaultGeometry(), DefaultTiming())
}

func TestRowHitFasterThanMiss(t *testing.T) {
	d := newTestDRAM()
	missDone := d.Access(0, 0, false)       // cold: row miss
	hitDone := d.Access(missDone, 0, false) // same row: hit
	missLat := missDone - 0
	hitLat := hitDone - missDone
	if hitLat >= missLat {
		t.Fatalf("row hit latency %v not faster than miss %v", hitLat, missLat)
	}
	s := d.Stats()
	if s.RowHits != 1 || s.RowMisses != 1 {
		t.Fatalf("stats = %+v", s)
	}
}

func TestRowConflictSlowest(t *testing.T) {
	d := newTestDRAM()
	g := d.Geometry()
	// Two addresses in the same bank, different rows. Banks interleave at
	// line granularity, so stride by banks*rows worth of lines.
	rowStride := g.RowBytes * uint64(g.Banks())
	d.Access(0, 0, false)
	start := sim.Time(1 * sim.Millisecond)
	confDone := d.Access(start, rowStride, false)
	confLat := confDone - start
	d2 := newTestDRAM()
	missDone := d2.Access(0, 0, false)
	if confLat <= missDone {
		t.Fatalf("row conflict latency %v not slower than cold miss %v", confLat, missDone)
	}
	if d.Stats().RowConflicts != 1 {
		t.Fatalf("conflicts = %d, want 1", d.Stats().RowConflicts)
	}
}

func TestWriteSlowerThanRead(t *testing.T) {
	d := newTestDRAM()
	rd := d.AccessLatency(0, false)
	wr := d.AccessLatency(0, true)
	if wr <= rd {
		t.Fatalf("write latency %v not slower than read %v", wr, rd)
	}
}

func TestBusSerialization(t *testing.T) {
	d := newTestDRAM()
	// Saturate the bus with same-cycle accesses to different banks: bursts
	// must serialize.
	var last sim.Time
	for i := 0; i < 64; i++ {
		done := d.Access(0, uint64(i*LineSize), false)
		if done < last {
			t.Fatal("bus completions went backwards")
		}
		last = done
	}
	burst := sim.DurationForBytes(LineSize, d.Timing().BusBytesPerSec)
	if minTotal := sim.Duration(64) * burst; last < minTotal {
		t.Fatalf("64 bursts finished in %v, faster than bus allows (%v)", last, minTotal)
	}
}

func TestAccessLatencyDoesNotMutate(t *testing.T) {
	d := newTestDRAM()
	d.Access(0, 0, false) // open row 0
	before := d.Stats()
	d.AccessLatency(1<<20, false)
	if d.Stats() != before {
		t.Fatal("AccessLatency mutated stats")
	}
	// Row 0 must still be open: a real access to it should be a hit.
	d.Access(0, 0, false)
	if d.Stats().RowHits != 1 {
		t.Fatal("AccessLatency disturbed row state")
	}
}

func TestReset(t *testing.T) {
	d := newTestDRAM()
	d.Access(0, 0, true)
	d.Reset()
	if d.Stats().Accesses() != 0 {
		t.Fatal("stats survived reset")
	}
	d.Access(0, 0, false)
	if d.Stats().RowMisses != 1 {
		t.Fatal("row state survived reset")
	}
}

func TestStatsAccounting(t *testing.T) {
	d := newTestDRAM()
	d.Access(0, 0, false)
	d.Access(0, 64, true)
	s := d.Stats()
	if s.Reads != 1 || s.Writes != 1 || s.BytesMoved != 128 {
		t.Fatalf("stats = %+v", s)
	}
	if s.Accesses() != 2 {
		t.Fatalf("accesses = %d", s.Accesses())
	}
}

func TestRowHitRate(t *testing.T) {
	var s Stats
	if s.RowHitRate() != 0 {
		t.Fatal("empty hit rate should be 0")
	}
	d := newTestDRAM()
	for i := 0; i < 10; i++ {
		d.Access(0, 0, false)
	}
	if hr := d.Stats().RowHitRate(); hr != 0.9 {
		t.Fatalf("hit rate = %v, want 0.9", hr)
	}
}

func TestPageCacheCapacityEffect(t *testing.T) {
	// A working set that fits in the big cache but not the small one: the
	// Figure 16 mechanism.
	const pageSize = 4096
	big := NewPageCache(1<<20, pageSize)   // 256 pages
	small := NewPageCache(1<<18, pageSize) // 64 pages
	const workingSet = 128
	for pass := 0; pass < 4; pass++ {
		for p := uint64(0); p < workingSet; p++ {
			big.Touch(p, false)
			small.Touch(p, false)
		}
	}
	if bh, sh := big.Stats().HitRate(), small.Stats().HitRate(); bh <= sh {
		t.Fatalf("bigger cache hit rate %v not better than smaller %v", bh, sh)
	}
}

func TestInvalidGeometryPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("invalid geometry did not panic")
		}
	}()
	New(Geometry{}, DefaultTiming())
}
