// Package dram models the SSD controller's DRAM: DDR3-style bank/row
// timing (standing in for USIMM in the paper's stack), bus bandwidth, and a
// page-granular data cache that captures how much of the working set fits
// in controller memory (the quantity Figure 16 sweeps).
//
// Concurrency contract: DRAM and PageCache carry bank/row and residency
// state and are not safe for concurrent use; each replayed system owns
// one of each. Timing and Geometry are plain configuration values.
package dram

import (
	"fmt"

	"iceclave/internal/cache"
	"iceclave/internal/sim"
)

// Timing holds the DDR parameters from Table 3 of the paper:
// DDR3-1600 with tRCD-tRAS-tRP-tCL-tWR = 11-28-11-11-12 (cycles) on a
// 1.25 ns clock.
type Timing struct {
	Clock sim.Duration // one memory-controller cycle
	TRCD  int          // cycles, row activate to column command
	TRAS  int          // cycles, row active time (unused by the simplified model, kept for fidelity)
	TRP   int          // cycles, row precharge
	TCL   int          // cycles, CAS latency
	TWR   int          // cycles, write recovery
	// BusBytesPerSec is the data-bus bandwidth (DDR3-1600 x64: 12.8 GB/s).
	BusBytesPerSec float64
}

// DefaultTiming returns the Table 3 configuration.
func DefaultTiming() Timing {
	return Timing{
		Clock:          sim.Nanosecond, // 1.25 ns rounded to the 1 ns tick (800 MHz)
		TRCD:           11,
		TRAS:           28,
		TRP:            11,
		TCL:            11,
		TWR:            12,
		BusBytesPerSec: 12.8e9,
	}
}

// Geometry describes the DRAM organization: Table 3 uses one channel, two
// ranks per channel, eight banks per rank.
type Geometry struct {
	Channels     int
	RanksPerChan int
	BanksPerRank int
	RowBytes     uint64 // row-buffer size per bank
	Capacity     uint64 // total bytes
}

// DefaultGeometry returns the Table 3 organization with 4 GB capacity and
// 8 KB rows.
func DefaultGeometry() Geometry {
	return Geometry{Channels: 1, RanksPerChan: 2, BanksPerRank: 8, RowBytes: 8192, Capacity: 4 << 30}
}

// Banks returns the total number of banks.
func (g Geometry) Banks() int { return g.Channels * g.RanksPerChan * g.BanksPerRank }

// Stats aggregates DRAM activity.
type Stats struct {
	Reads        int64
	Writes       int64
	RowHits      int64
	RowMisses    int64 // closed-row activations
	RowConflicts int64
	BytesMoved   int64
}

// Accesses returns the total access count.
func (s Stats) Accesses() int64 { return s.Reads + s.Writes }

// RowHitRate returns the fraction of accesses that hit an open row.
func (s Stats) RowHitRate() float64 {
	if s.Accesses() == 0 {
		return 0
	}
	return float64(s.RowHits) / float64(s.Accesses())
}

// bankState tracks the open row of one bank.
type bankState struct {
	openRow uint64
	hasOpen bool
}

// DRAM is the controller-memory model. Accesses are 64-byte (cache-line)
// transactions; the model computes open-page row-buffer latency and
// serializes transfers on the shared data bus.
type DRAM struct {
	timing Timing
	geo    Geometry
	banks  []bankState
	bus    *sim.Server
	stats  Stats
}

// LineSize is the DRAM transaction size in bytes.
const LineSize = 64

// New builds a DRAM model. It panics on non-positive geometry, which is a
// configuration error.
func New(geo Geometry, timing Timing) *DRAM {
	if geo.Banks() <= 0 || geo.RowBytes == 0 || geo.Capacity == 0 {
		panic(fmt.Sprintf("dram: invalid geometry %+v", geo))
	}
	return &DRAM{
		timing: timing,
		geo:    geo,
		banks:  make([]bankState, geo.Banks()),
		bus:    sim.NewServer("dram-bus", 1),
	}
}

// Geometry returns the module organization.
func (d *DRAM) Geometry() Geometry { return d.geo }

// Timing returns the timing parameters.
func (d *DRAM) Timing() Timing { return d.timing }

// Stats returns a copy of the activity counters.
func (d *DRAM) Stats() Stats { return d.stats }

// cycles converts a cycle count to simulated time.
func (d *DRAM) cycles(n int) sim.Duration { return sim.Duration(n) * d.timing.Clock }

// locate splits a physical address into bank and row. Banks interleave at
// line granularity so streaming accesses spread across banks.
func (d *DRAM) locate(addr uint64) (bank int, row uint64) {
	line := addr / LineSize
	bank = int(line % uint64(d.geo.Banks()))
	row = addr / d.geo.RowBytes
	return bank, row
}

// Access performs one line-sized transaction arriving at time at and
// returns its completion time. write selects the write-recovery timing.
func (d *DRAM) Access(at sim.Time, addr uint64, write bool) (done sim.Time) {
	bank, row := d.locate(addr)
	var lat sim.Duration
	bs := &d.banks[bank]
	switch {
	case bs.hasOpen && bs.openRow == row:
		d.stats.RowHits++
		lat = d.cycles(d.timing.TCL)
	case !bs.hasOpen:
		d.stats.RowMisses++
		lat = d.cycles(d.timing.TRCD + d.timing.TCL)
	default:
		d.stats.RowConflicts++
		lat = d.cycles(d.timing.TRP + d.timing.TRCD + d.timing.TCL)
	}
	if write {
		lat += d.cycles(d.timing.TWR)
		d.stats.Writes++
	} else {
		d.stats.Reads++
	}
	bs.openRow, bs.hasOpen = row, true
	d.stats.BytesMoved += LineSize
	burst := sim.DurationForBytes(LineSize, d.timing.BusBytesPerSec)
	_, done = d.bus.Acquire(at+lat, burst)
	return done
}

// AccessLatency returns the latency a single isolated access to addr would
// see, without reserving the bus or mutating row state — used by analytic
// cost models that batch millions of accesses.
func (d *DRAM) AccessLatency(addr uint64, write bool) sim.Duration {
	bank, row := d.locate(addr)
	bs := d.banks[bank]
	var lat sim.Duration
	switch {
	case bs.hasOpen && bs.openRow == row:
		lat = d.cycles(d.timing.TCL)
	case !bs.hasOpen:
		lat = d.cycles(d.timing.TRCD + d.timing.TCL)
	default:
		lat = d.cycles(d.timing.TRP + d.timing.TRCD + d.timing.TCL)
	}
	if write {
		lat += d.cycles(d.timing.TWR)
	}
	return lat + sim.DurationForBytes(LineSize, d.timing.BusBytesPerSec)
}

// Reset clears bank state, bus reservations, and statistics.
func (d *DRAM) Reset() {
	for i := range d.banks {
		d.banks[i] = bankState{}
	}
	d.bus.Reset()
	d.stats = Stats{}
}

// PageCache models the portion of SSD DRAM that caches flash-page data for
// in-storage programs. Its capacity is what shrinks when the experiment
// halves DRAM from 4 GB to 2 GB (Figure 16).
type PageCache struct {
	c        *cache.Cache
	pageSize uint64
}

// NewPageCache builds a page cache of capacityBytes over flash pages of
// pageSize bytes.
func NewPageCache(capacityBytes, pageSize uint64) *PageCache {
	return &PageCache{c: cache.New("dram-pagecache", capacityBytes, pageSize, 8), pageSize: pageSize}
}

// Touch records an access to the flash page with index page, returning
// whether it was resident in DRAM.
func (pc *PageCache) Touch(page uint64, write bool) (hit bool) {
	hit, _, _ = pc.c.Access(page*pc.pageSize, write)
	return hit
}

// Evict removes the flash page from the cache if resident. The replay's
// fault path uses it to undo a Touch whose backing flash read then
// failed — the data never arrived, so the page must not be served from
// DRAM on the retry.
func (pc *PageCache) Evict(page uint64) { pc.c.Invalidate(page * pc.pageSize) }

// Stats returns hit/miss counters.
func (pc *PageCache) Stats() cache.Stats { return pc.c.Stats() }

// Capacity returns the cache capacity in bytes.
func (pc *PageCache) Capacity() uint64 { return pc.c.Capacity() }

// ResetStats clears counters while keeping residency.
func (pc *PageCache) ResetStats() { pc.c.ResetStats() }

// Reset empties the cache and zeroes its counters, returning it to the
// post-NewPageCache state. The underlying line array — half a million
// entries for a multi-gigabyte cache, the dominant allocation of a fresh
// replay stack — is invalidated by generation stamp, not re-zeroed, so
// Reset is O(1) (part of the pool reset contract).
func (pc *PageCache) Reset() { pc.c.Reset() }
