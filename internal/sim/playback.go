package sim

import "sort"

// This file is the admission gate's open-loop mode. Submit is closed-loop
// vocabulary: the caller decides when to call it, typically reacting to
// grants and releases (work-conserving backpressure). Playback instead
// takes a fixed arrival schedule — the replay of a recorded trace — and
// posts each submission as an engine event at its scheduled virtual time,
// whether or not the gate has caught up. Queueing delay measured this way
// is the open-loop quantity: time from scheduled arrival to grant, never
// counting pre-arrival idle.

// Arrival is one entry in a fixed open-loop submission schedule: the
// virtual instant the request reaches the gate, plus the key, band, and
// grant callback that Submit would take.
type Arrival struct {
	At   Time
	Key  string
	Band int
	Fn   func(granted Time)
}

// Playback posts a fixed arrival schedule onto the engine and returns the
// tickets in schedule order (granted once the engine runs; Waited and the
// admission statistics count from each ticket's scheduled arrival, so
// pre-arrival idle never appears as queueing delay). Arrivals sharing one
// virtual instant enter the gate together and are granted by one dispatch
// pass — highest band first, FIFO within a band — so simultaneous
// arrivals contend by priority, not by schedule position; arrivals need
// not be sorted. It panics on an out-of-range band or a negative arrival
// time, matching Submit's posture that scheduling bugs must not pass
// silently.
func (a *Admission) Playback(arrivals []Arrival) []*Ticket {
	tickets := make([]*Ticket, len(arrivals))
	order := make([]int, len(arrivals))
	for i, ar := range arrivals {
		if ar.Band < 0 || ar.Band >= len(a.bands) {
			panic("sim: admission band out of range")
		}
		tickets[i] = &Ticket{Key: ar.Key, Band: ar.Band, Submitted: ar.At, fn: ar.Fn}
		order[i] = i
	}
	// Stable on arrival time only: same-instant arrivals keep schedule
	// order within their band queues.
	sort.SliceStable(order, func(x, y int) bool {
		return arrivals[order[x]].At < arrivals[order[y]].At
	})
	for start := 0; start < len(order); {
		at := arrivals[order[start]].At
		end := start
		for end < len(order) && arrivals[order[end]].At == at {
			end++
		}
		group := make([]*Ticket, end-start)
		for k, oi := range order[start:end] {
			group[k] = tickets[oi]
		}
		a.eng.At(at, func(now Time) { a.arrive(group, now) })
		start = end
	}
	return tickets
}

// arrive enqueues one instant's scheduled arrivals together, then runs a
// single grant pass — the property that makes equal-time grants follow
// band order under a tight slot cap. The queue high-water mark is taken
// after the pass, so arrivals the same instant admits never count as
// queued.
func (a *Admission) arrive(group []*Ticket, now Time) {
	for _, t := range group {
		a.bands[t.Band] = append(a.bands[t.Band], t)
		a.queued++
	}
	if a.quantum > 0 {
		// Batched mode: the whole group waits for the scheduler tick,
		// exactly as Submit-queued tickets do.
		if a.anyAdmissible() {
			a.scheduleTick(a.nextTick(now))
		}
	} else {
		a.dispatch(now)
	}
	if a.queued > a.maxQueued {
		a.maxQueued = a.queued
	}
}
