package sim

// Admission is a virtual-time admission gate: the discrete-event form of
// the sched package's admission control. Tickets are submitted with a
// tenant key and a priority band; a ticket is granted when the global slot
// cap and its key's per-key cap both have room. Grants are delivered as
// Engine events, so queueing delay from admission control lands on the
// same virtual clock as every downstream resource (CPU servers, flash
// dies, channel buses) — the backbone property the multi-tenant timing
// experiments depend on.
//
// Dispatch policy mirrors sched.Scheduler: highest band first, FIFO within
// a band, and work-conserving — a queued ticket whose key is at its cap is
// skipped rather than head-of-line blocking the band.
//
// Two grant policies exist. Per-release (the default) dispatches the
// moment capacity frees, the behaviour of firmware that reschedules on
// every completion interrupt. Batched-grant mode (Policy.Quantum > 0)
// instead aligns every grant to quantum tick boundaries and admits at
// most Policy.Batch queued tickets per tick — the model of controller
// firmware that amortizes its scheduling work over a periodic timer
// instead of taking a scheduling pass per completion. Batching trades
// queueing delay (a freed slot waits for the next tick) for scheduler
// invocations (Ticks counts them).
//
// Like Server, Admission is single-goroutine by the package contract; all
// concurrency it models is virtual.
type Admission struct {
	eng      Scheduler
	bands    [][]*Ticket
	slots    int      // global concurrent-grant cap; <= 0 means unlimited
	perKey   int      // per-key concurrent-grant cap; <= 0 means unlimited
	quantum  Duration // > 0 switches to batched-grant mode
	batch    int      // max grants per quantum tick; <= 0 means unlimited
	adaptive func(queued int, base Duration) Duration

	inUse       int
	byKey       map[string]int
	tickPending bool

	granted   int64
	waited    Duration
	maxQueued int
	queued    int
	ticks     int64
}

// Policy bundles the admission gate's capacity and grant-batching knobs.
// The zero value means unlimited capacity with per-release dispatch.
type Policy struct {
	// Slots is the global concurrent-grant cap; <= 0 means unlimited.
	Slots int
	// PerKey is the per-key concurrent-grant cap; <= 0 means unlimited.
	PerKey int
	// Quantum, when positive, enables batched-grant mode: grants fire
	// only at multiples of Quantum on the virtual clock.
	Quantum Duration
	// Batch caps grants per quantum tick; <= 0 means no per-tick cap
	// (the tick then admits everything capacity allows, still aligned to
	// the quantum). Ignored unless Quantum is set.
	Batch int
	// AdaptiveQuantum, when non-nil, scales the batched-grant tick with
	// load: each time a tick is armed, the gate calls it with the current
	// queue depth and the base Quantum and aligns the tick to the returned
	// period instead (non-positive returns fall back to Quantum). A hook
	// that shrinks the period as the queue deepens trades scheduling
	// passes for queueing delay only when there is a queue to drain.
	// Ignored unless Quantum is set.
	AdaptiveQuantum func(queued int, base Duration) Duration
}

// Ticket is one admission request. Submitted and Granted expose the
// queueing interval once the grant fires; Granted is meaningful only
// after the grant callback has run.
type Ticket struct {
	Key       string
	Band      int
	Submitted Time
	Granted   Time

	fn      func(granted Time)
	running bool
	done    bool
}

// Waited returns the ticket's queueing delay; zero until granted.
func (t *Ticket) Waited() Duration {
	if !t.running && !t.done {
		return 0
	}
	return t.Granted - t.Submitted
}

// NewAdmission builds a per-release-dispatch gate with the given number
// of priority bands (band bands-1 is the highest), a global slot cap, and
// a per-key cap. Non-positive caps mean unlimited. It panics if bands < 1
// or eng is nil.
func NewAdmission(eng Scheduler, bands, slots, perKey int) *Admission {
	return NewAdmissionWithPolicy(eng, bands, Policy{Slots: slots, PerKey: perKey})
}

// NewAdmissionWithPolicy builds a gate with the full policy, including
// the batched-grant mode. It panics if bands < 1 or eng is nil.
func NewAdmissionWithPolicy(eng Scheduler, bands int, pol Policy) *Admission {
	if eng == nil {
		panic("sim: NewAdmission needs an engine")
	}
	if bands < 1 {
		panic("sim: NewAdmission needs at least one band")
	}
	return &Admission{
		eng:      eng,
		bands:    make([][]*Ticket, bands),
		slots:    pol.Slots,
		perKey:   pol.PerKey,
		quantum:  pol.Quantum,
		batch:    pol.Batch,
		adaptive: pol.AdaptiveQuantum,
		byKey:    make(map[string]int),
	}
}

// admissible reports whether a ticket for key could start right now.
func (a *Admission) admissible(key string) bool {
	if a.slots > 0 && a.inUse >= a.slots {
		return false
	}
	if a.perKey > 0 && a.byKey[key] >= a.perKey {
		return false
	}
	return true
}

// grant marks t running at time at and schedules its callback.
func (a *Admission) grant(t *Ticket, at Time) {
	t.running = true
	t.Granted = at
	a.inUse++
	a.byKey[t.Key]++
	a.granted++
	a.waited += at - t.Submitted
	a.eng.At(at, func(now Time) { t.fn(now) })
}

// Submit enqueues a request at virtual time at; fn runs (as an engine
// event) when the ticket is granted — immediately at `at` if the caps have
// room. It panics on an out-of-range band, matching the Engine's posture
// that scheduling bugs should not pass silently.
func (a *Admission) Submit(at Time, key string, band int, fn func(granted Time)) *Ticket {
	if band < 0 || band >= len(a.bands) {
		panic("sim: admission band out of range")
	}
	t := &Ticket{Key: key, Band: band, Submitted: at, fn: fn}
	if a.quantum <= 0 && a.admissible(key) {
		a.grant(t, at)
		return t
	}
	a.bands[band] = append(a.bands[band], t)
	a.queued++
	if a.queued > a.maxQueued {
		a.maxQueued = a.queued
	}
	if a.quantum > 0 && a.admissible(key) {
		// Batched mode: even an immediately admissible ticket waits for
		// the scheduler tick (which may be this very instant if at lies
		// on a quantum boundary).
		a.scheduleTick(a.nextTick(at))
	}
	return t
}

// tickQuantum returns the grant-tick period in effect right now: the
// fixed Quantum, or the adaptive hook's load-scaled period.
func (a *Admission) tickQuantum() Duration {
	q := a.quantum
	if a.adaptive != nil {
		if aq := a.adaptive(a.queued, q); aq > 0 {
			q = aq
		}
	}
	return q
}

// nextTick returns the first tick boundary at or after at. Under the
// adaptive hook the boundary grid itself is load-dependent: the period is
// sampled when the tick is armed, so a queue that deepens after arming
// still waits out the already-armed tick — firmware reprograms its timer
// on the scheduling pass, not on every enqueue.
func (a *Admission) nextTick(at Time) Time {
	q := Time(a.tickQuantum())
	return (at + q - 1) / q * q
}

// scheduleTick arms the (single) pending grant tick at the given time.
func (a *Admission) scheduleTick(tick Time) {
	if a.tickPending {
		return
	}
	a.tickPending = true
	a.eng.At(tick, func(now Time) {
		a.tickPending = false
		a.grantTick(now)
	})
}

// grantTick is one batched scheduling pass: admit up to batch queued
// tickets at the tick instant. If the per-tick batch cap — not
// capacity — is what stopped the pass, the next tick is armed; otherwise
// the queue drains further only when a Release frees capacity.
func (a *Admission) grantTick(now Time) {
	a.ticks++
	n := a.dispatchUpTo(now, a.batch)
	if a.batch > 0 && n >= a.batch && a.anyAdmissible() {
		a.scheduleTick(now + Time(a.tickQuantum()))
	}
}

// anyAdmissible reports whether some queued ticket could be granted right
// now — the guard that keeps a batch-capped tick from arming a follow-up
// tick no queued ticket could use (capacity-blocked tickets are re-armed
// by the Release that unblocks them instead).
func (a *Admission) anyAdmissible() bool {
	for _, q := range a.bands {
		for _, t := range q {
			if a.admissible(t.Key) {
				return true
			}
		}
	}
	return false
}

// Release retires a granted ticket at virtual time at and grants every
// queued ticket that the freed capacity now admits.
func (a *Admission) Release(t *Ticket, at Time) {
	if !t.running || t.done {
		panic("sim: release of a ticket that is not running")
	}
	t.running = false
	t.done = true
	a.inUse--
	a.byKey[t.Key]--
	if a.byKey[t.Key] == 0 {
		delete(a.byKey, t.Key)
	}
	if a.quantum > 0 {
		// Batched mode: the freed capacity is picked up at the next
		// scheduler tick, not here.
		if a.queued > 0 {
			a.scheduleTick(a.nextTick(at))
		}
		return
	}
	a.dispatch(at)
}

// dispatch grants queued tickets while capacity allows.
func (a *Admission) dispatch(at Time) { a.dispatchUpTo(at, 0) }

// dispatchUpTo is the one dispatch loop both grant policies share: grant
// queued tickets — highest band first, FIFO within a band, skipping (not
// blocking on) keys at their cap — until capacity runs out or max grants
// have fired (max <= 0 means no grant limit). It returns the number of
// grants made.
func (a *Admission) dispatchUpTo(at Time, max int) int {
	n := 0
	for b := len(a.bands) - 1; b >= 0; b-- {
		q := a.bands[b]
		for i := 0; i < len(q); {
			if max > 0 && n >= max {
				break
			}
			if a.slots > 0 && a.inUse >= a.slots {
				break
			}
			t := q[i]
			if !a.admissible(t.Key) {
				i++ // work-conserving: skip the capped key, try later tickets
				continue
			}
			q = append(q[:i:i], q[i+1:]...)
			a.queued--
			a.grant(t, at)
			n++
		}
		a.bands[b] = q
	}
	return n
}

// Pending returns the number of queued (not yet granted) tickets.
func (a *Admission) Pending() int { return a.queued }

// Running returns the number of granted, unreleased tickets.
func (a *Admission) Running() int { return a.inUse }

// Granted returns how many tickets have been granted so far.
func (a *Admission) Granted() int64 { return a.granted }

// Waited returns the total queueing delay across granted tickets.
func (a *Admission) Waited() Duration { return a.waited }

// MaxQueued returns the high-water mark of the admission queue.
func (a *Admission) MaxQueued() int { return a.maxQueued }

// Ticks returns how many batched scheduling passes have run; always zero
// in per-release mode, where every Release is its own dispatch.
func (a *Admission) Ticks() int64 { return a.ticks }
