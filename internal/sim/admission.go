package sim

// Admission is a virtual-time admission gate: the discrete-event form of
// the sched package's admission control. Tickets are submitted with a
// tenant key and a priority band; a ticket is granted when the global slot
// cap and its key's per-key cap both have room. Grants are delivered as
// Engine events, so queueing delay from admission control lands on the
// same virtual clock as every downstream resource (CPU servers, flash
// dies, channel buses) — the backbone property the multi-tenant timing
// experiments depend on.
//
// Dispatch policy mirrors sched.Scheduler: highest band first, FIFO within
// a band, and work-conserving — a queued ticket whose key is at its cap is
// skipped rather than head-of-line blocking the band.
//
// Like Server, Admission is single-goroutine by the package contract; all
// concurrency it models is virtual.
type Admission struct {
	eng    *Engine
	bands  [][]*Ticket
	slots  int // global concurrent-grant cap; <= 0 means unlimited
	perKey int // per-key concurrent-grant cap; <= 0 means unlimited

	inUse int
	byKey map[string]int

	granted   int64
	waited    Duration
	maxQueued int
	queued    int
}

// Ticket is one admission request. Submitted and Granted expose the
// queueing interval once the grant fires; Granted is meaningful only
// after the grant callback has run.
type Ticket struct {
	Key       string
	Band      int
	Submitted Time
	Granted   Time

	fn      func(granted Time)
	running bool
	done    bool
}

// Waited returns the ticket's queueing delay; zero until granted.
func (t *Ticket) Waited() Duration {
	if !t.running && !t.done {
		return 0
	}
	return t.Granted - t.Submitted
}

// NewAdmission builds a gate with the given number of priority bands
// (band bands-1 is the highest), a global slot cap, and a per-key cap.
// Non-positive caps mean unlimited. It panics if bands < 1 or eng is nil.
func NewAdmission(eng *Engine, bands, slots, perKey int) *Admission {
	if eng == nil {
		panic("sim: NewAdmission needs an engine")
	}
	if bands < 1 {
		panic("sim: NewAdmission needs at least one band")
	}
	return &Admission{
		eng:    eng,
		bands:  make([][]*Ticket, bands),
		slots:  slots,
		perKey: perKey,
		byKey:  make(map[string]int),
	}
}

// admissible reports whether a ticket for key could start right now.
func (a *Admission) admissible(key string) bool {
	if a.slots > 0 && a.inUse >= a.slots {
		return false
	}
	if a.perKey > 0 && a.byKey[key] >= a.perKey {
		return false
	}
	return true
}

// grant marks t running at time at and schedules its callback.
func (a *Admission) grant(t *Ticket, at Time) {
	t.running = true
	t.Granted = at
	a.inUse++
	a.byKey[t.Key]++
	a.granted++
	a.waited += at - t.Submitted
	a.eng.At(at, func(now Time) { t.fn(now) })
}

// Submit enqueues a request at virtual time at; fn runs (as an engine
// event) when the ticket is granted — immediately at `at` if the caps have
// room. It panics on an out-of-range band, matching the Engine's posture
// that scheduling bugs should not pass silently.
func (a *Admission) Submit(at Time, key string, band int, fn func(granted Time)) *Ticket {
	if band < 0 || band >= len(a.bands) {
		panic("sim: admission band out of range")
	}
	t := &Ticket{Key: key, Band: band, Submitted: at, fn: fn}
	if a.admissible(key) {
		a.grant(t, at)
		return t
	}
	a.bands[band] = append(a.bands[band], t)
	a.queued++
	if a.queued > a.maxQueued {
		a.maxQueued = a.queued
	}
	return t
}

// Release retires a granted ticket at virtual time at and grants every
// queued ticket that the freed capacity now admits.
func (a *Admission) Release(t *Ticket, at Time) {
	if !t.running || t.done {
		panic("sim: release of a ticket that is not running")
	}
	t.running = false
	t.done = true
	a.inUse--
	a.byKey[t.Key]--
	if a.byKey[t.Key] == 0 {
		delete(a.byKey, t.Key)
	}
	a.dispatch(at)
}

// dispatch grants queued tickets while capacity allows: highest band
// first, FIFO within a band, skipping (not blocking on) keys at their cap.
func (a *Admission) dispatch(at Time) {
	for b := len(a.bands) - 1; b >= 0; b-- {
		q := a.bands[b]
		for i := 0; i < len(q); {
			if a.slots > 0 && a.inUse >= a.slots {
				a.bands[b] = q
				return
			}
			t := q[i]
			if !a.admissible(t.Key) {
				i++ // work-conserving: skip the capped key, try later tickets
				continue
			}
			q = append(q[:i:i], q[i+1:]...)
			a.queued--
			a.grant(t, at)
		}
		a.bands[b] = q
	}
}

// Pending returns the number of queued (not yet granted) tickets.
func (a *Admission) Pending() int { return a.queued }

// Running returns the number of granted, unreleased tickets.
func (a *Admission) Running() int { return a.inUse }

// Granted returns how many tickets have been granted so far.
func (a *Admission) Granted() int64 { return a.granted }

// Waited returns the total queueing delay across granted tickets.
func (a *Admission) Waited() Duration { return a.waited }

// MaxQueued returns the high-water mark of the admission queue.
func (a *Admission) MaxQueued() int { return a.maxQueued }
