package sim

import (
	"testing"
	"testing/quick"
)

func TestServerSingleUnitFIFO(t *testing.T) {
	s := NewServer("bus", 1)
	start, done := s.Acquire(0, 100)
	if start != 0 || done != 100 {
		t.Fatalf("first request: start=%d done=%d", start, done)
	}
	// Arrives while busy: queues.
	start, done = s.Acquire(50, 100)
	if start != 100 || done != 200 {
		t.Fatalf("queued request: start=%d done=%d, want 100/200", start, done)
	}
	// Arrives after idle: starts immediately.
	start, done = s.Acquire(500, 10)
	if start != 500 || done != 510 {
		t.Fatalf("idle request: start=%d done=%d", start, done)
	}
	if s.Requests() != 3 {
		t.Fatalf("requests = %d, want 3", s.Requests())
	}
	if s.Waited() != 50 {
		t.Fatalf("waited = %d, want 50", s.Waited())
	}
}

func TestServerMultiUnitParallelism(t *testing.T) {
	s := NewServer("cores", 2)
	_, d1 := s.Acquire(0, 100)
	_, d2 := s.Acquire(0, 100)
	if d1 != 100 || d2 != 100 {
		t.Fatalf("two units should serve in parallel: %d %d", d1, d2)
	}
	start, _ := s.Acquire(0, 100)
	if start != 100 {
		t.Fatalf("third request should wait for a unit: start=%d", start)
	}
}

func TestServerUtilization(t *testing.T) {
	s := NewServer("x", 2)
	s.Acquire(0, 100)
	s.Acquire(0, 50)
	if got := s.Utilization(100); got != 0.75 {
		t.Fatalf("utilization = %v, want 0.75", got)
	}
}

func TestServerReset(t *testing.T) {
	s := NewServer("x", 1)
	s.Acquire(0, 100)
	s.Reset()
	if s.Busy() != 0 || s.Requests() != 0 || s.NextFree() != 0 {
		t.Fatal("reset did not clear state")
	}
}

func TestServerInvariantsProperty(t *testing.T) {
	// Properties for any arrival/service sequence: starts never precede
	// arrivals, completions equal start+service, and with one unit the
	// completions are non-decreasing (FIFO).
	f := func(reqs []struct {
		Gap uint16
		Dur uint16
	}) bool {
		s := NewServer("p", 1)
		var at, lastDone Time
		for _, r := range reqs {
			at += Time(r.Gap)
			start, done := s.Acquire(at, Duration(r.Dur))
			if start < at || done != start+Duration(r.Dur) || done < lastDone {
				return false
			}
			lastDone = done
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestPipeTransfer(t *testing.T) {
	p := NewPipe("pcie", 1e9) // 1 GB/s => 1 byte/ns
	start, done := p.Transfer(0, 1000)
	if start != 0 || done != 1000 {
		t.Fatalf("transfer: start=%d done=%d, want 0/1000", start, done)
	}
	_, done = p.Transfer(0, 500)
	if done != 1500 {
		t.Fatalf("serialized transfer done=%d, want 1500", done)
	}
	if p.Moved() != 1500 {
		t.Fatalf("moved = %d, want 1500", p.Moved())
	}
}

func TestDurationForBytes(t *testing.T) {
	if d := DurationForBytes(0, 1e9); d != 0 {
		t.Fatalf("zero bytes should take zero time, got %d", d)
	}
	if d := DurationForBytes(1, 1e12); d != 1 {
		t.Fatalf("tiny transfer should round up to 1ns, got %d", d)
	}
	if d := DurationForBytes(600<<20, 600*1<<20); d != Second {
		t.Fatalf("600MB at 600MB/s should be 1s, got %v", d)
	}
}

func TestNewServerValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NewServer(0) did not panic")
		}
	}()
	NewServer("bad", 0)
}
