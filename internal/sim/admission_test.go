package sim

import "testing"

// TestAdmissionImmediateGrant pins the uncontended path: with free
// capacity, the grant fires at the submission instant with zero wait.
func TestAdmissionImmediateGrant(t *testing.T) {
	eng := &Engine{}
	a := NewAdmission(eng, 3, 2, 1)
	var granted Time = -1
	tk := a.Submit(10, "a", 1, func(now Time) { granted = now })
	eng.Run()
	if granted != 10 {
		t.Fatalf("granted at %v, want 10", granted)
	}
	if tk.Waited() != 0 {
		t.Fatalf("waited %v, want 0", tk.Waited())
	}
	if a.Running() != 1 || a.Pending() != 0 {
		t.Fatalf("running=%d pending=%d", a.Running(), a.Pending())
	}
}

// TestAdmissionGlobalCapQueues pins the backbone property: the second
// ticket's grant time equals the first ticket's release time, and the
// interval is recorded as queueing delay.
func TestAdmissionGlobalCapQueues(t *testing.T) {
	eng := &Engine{}
	a := NewAdmission(eng, 1, 1, 0)
	var t1, t2 Time = -1, -1
	tk1 := a.Submit(0, "a", 0, func(now Time) { t1 = now })
	tk2 := a.Submit(0, "b", 0, func(now Time) { t2 = now })
	eng.Run()
	if t1 != 0 || t2 != -1 {
		t.Fatalf("before release: t1=%v t2=%v", t1, t2)
	}
	a.Release(tk1, 500)
	eng.Run()
	if t2 != 500 {
		t.Fatalf("queued grant at %v, want the release time 500", t2)
	}
	if tk2.Waited() != 500 {
		t.Fatalf("waited %v, want 500", tk2.Waited())
	}
	if a.Waited() != 500 {
		t.Fatalf("aggregate wait %v, want 500", a.Waited())
	}
}

// TestAdmissionBandPriority pins dispatch order on release: the
// highest-band queued ticket wins regardless of submission order.
func TestAdmissionBandPriority(t *testing.T) {
	eng := &Engine{}
	a := NewAdmission(eng, 3, 1, 0)
	hold := a.Submit(0, "hold", 2, func(Time) {})
	var order []string
	submit := func(key string, band int) *Ticket {
		return a.Submit(0, key, band, func(Time) { order = append(order, key) })
	}
	submit("low", 0)
	high := submit("high", 2)
	mid := submit("mid", 1)
	eng.Run()

	a.Release(hold, 100)
	eng.Run()
	a.Release(high, 200)
	eng.Run()
	a.Release(mid, 300)
	eng.Run()
	if got := len(order); got != 3 {
		t.Fatalf("granted %d, want 3", got)
	}
	for i, want := range []string{"high", "mid", "low"} {
		if order[i] != want {
			t.Fatalf("grant order %v, want high,mid,low", order)
		}
	}
}

// TestAdmissionPerKeySkip pins work conservation: a queued ticket whose
// key is at its per-key cap is skipped, not head-of-line blocking.
func TestAdmissionPerKeySkip(t *testing.T) {
	eng := &Engine{}
	a := NewAdmission(eng, 1, 2, 1)
	var order []string
	note := func(key string) func(Time) {
		return func(Time) { order = append(order, key) }
	}
	ta1 := a.Submit(0, "a", 0, note("a1"))
	tb1 := a.Submit(0, "b", 0, note("b1"))
	// Both slots busy now; queue a's second job ahead of c's first.
	a.Submit(0, "a", 0, note("a2"))
	a.Submit(0, "c", 0, note("c1"))
	eng.Run()
	if len(order) != 2 || order[0] != "a1" || order[1] != "b1" {
		t.Fatalf("granted %v, want a1,b1", order)
	}
	// A slot frees while "a" is still running: a2 must be skipped (key at
	// cap) and c1 granted instead.
	a.Release(tb1, 100)
	eng.Run()
	if len(order) != 3 || order[2] != "c1" {
		t.Fatalf("after b1 release: %v, want c1 granted (a2 skipped)", order)
	}
	a.Release(ta1, 200)
	eng.Run()
	if len(order) != 4 || order[3] != "a2" {
		t.Fatalf("after a1 release: %v, want a2 granted", order)
	}
}

// TestAdmissionFIFOWithinBand pins arrival order within one band.
func TestAdmissionFIFOWithinBand(t *testing.T) {
	eng := &Engine{}
	a := NewAdmission(eng, 1, 1, 0)
	var order []string
	hold := a.Submit(0, "hold", 0, func(Time) {})
	tks := make([]*Ticket, 3)
	for i, key := range []string{"x", "y", "z"} {
		key := key
		tks[i] = a.Submit(Time(i), key, 0, func(Time) { order = append(order, key) })
	}
	eng.Run()
	a.Release(hold, 10)
	eng.Run()
	a.Release(tks[0], 20)
	eng.Run()
	a.Release(tks[1], 30)
	eng.Run()
	if len(order) != 3 || order[0] != "x" || order[1] != "y" || order[2] != "z" {
		t.Fatalf("grant order %v, want x,y,z", order)
	}
	if a.MaxQueued() != 3 {
		t.Fatalf("max queued %d, want 3", a.MaxQueued())
	}
}

// TestBatchedGrantsTickAligned pins batched-grant mode's core rule: with
// quantum q and batch K, tickets submitted at t=0 are admitted K per tick
// at t = 0, q, 2q, ... instead of all at once.
func TestBatchedGrantsTickAligned(t *testing.T) {
	eng := &Engine{}
	a := NewAdmissionWithPolicy(eng, 1, Policy{Quantum: 1000, Batch: 2})
	grants := make(map[string]Time)
	for _, key := range []string{"a", "b", "c", "d", "e"} {
		key := key
		a.Submit(0, key, 0, func(now Time) { grants[key] = now })
	}
	eng.Run()
	want := map[string]Time{"a": 0, "b": 0, "c": 1000, "d": 1000, "e": 2000}
	for key, at := range want {
		if grants[key] != at {
			t.Fatalf("grants = %v, want %v", grants, want)
		}
	}
	if a.Ticks() != 3 {
		t.Fatalf("ticks = %d, want 3", a.Ticks())
	}
}

// TestBatchedReleaseWaitsForTick pins the per-release vs batched
// difference: capacity freed mid-quantum is handed out at the next tick
// boundary, not at the release instant.
func TestBatchedReleaseWaitsForTick(t *testing.T) {
	eng := &Engine{}
	a := NewAdmissionWithPolicy(eng, 1, Policy{Slots: 1, Quantum: 1000, Batch: 1})
	var t1, t2 Time = -1, -1
	tk1 := a.Submit(0, "a", 0, func(now Time) { t1 = now })
	a.Submit(0, "b", 0, func(now Time) { t2 = now })
	eng.Run()
	if t1 != 0 || t2 != -1 {
		t.Fatalf("before release: t1=%v t2=%v", t1, t2)
	}
	a.Release(tk1, 1500)
	eng.Run()
	if t2 != 2000 {
		t.Fatalf("queued grant at %v, want next tick 2000 (release was 1500)", t2)
	}
}

// TestBatchedUnlimitedBatchStillTickAligned pins Batch <= 0 semantics: a
// tick admits everything capacity allows, but off-boundary submissions
// still wait for the boundary.
func TestBatchedUnlimitedBatchStillTickAligned(t *testing.T) {
	eng := &Engine{}
	a := NewAdmissionWithPolicy(eng, 1, Policy{Quantum: 1000})
	grants := make(map[string]Time)
	for _, key := range []string{"a", "b", "c"} {
		key := key
		a.Submit(300, key, 0, func(now Time) { grants[key] = now })
	}
	eng.Run()
	for _, key := range []string{"a", "b", "c"} {
		if grants[key] != 1000 {
			t.Fatalf("grants = %v, want all at the 1000 boundary", grants)
		}
	}
	if a.Ticks() != 1 {
		t.Fatalf("ticks = %d, want 1", a.Ticks())
	}
}

// TestBatchedKeepsBandPriorityAndWorkConservation pins that a batched
// tick dispatches with the same policy as per-release mode: highest band
// first, capped keys skipped rather than head-of-line blocking.
func TestBatchedKeepsBandPriorityAndWorkConservation(t *testing.T) {
	eng := &Engine{}
	a := NewAdmissionWithPolicy(eng, 3, Policy{Slots: 2, PerKey: 1, Quantum: 1000, Batch: 2})
	var order []string
	note := func(key string) func(Time) {
		return func(Time) { order = append(order, key) }
	}
	a.Submit(0, "a", 0, note("a-low"))
	a.Submit(0, "a", 2, note("a-high"))
	a.Submit(0, "b", 1, note("b-mid"))
	eng.Run()
	// One tick: a-high (band 2), then b-mid (band 1); a-low is skipped —
	// its key is at the per-key cap — not head-of-line blocking b.
	if len(order) != 2 || order[0] != "a-high" || order[1] != "b-mid" {
		t.Fatalf("granted %v, want a-high then b-mid", order)
	}
}

// TestPerReleaseModeHasNoTicks pins that the default policy is untouched
// by the batching machinery.
func TestPerReleaseModeHasNoTicks(t *testing.T) {
	eng := &Engine{}
	a := NewAdmission(eng, 1, 1, 0)
	tk1 := a.Submit(0, "a", 0, func(Time) {})
	a.Submit(0, "b", 0, func(Time) {})
	eng.Run()
	a.Release(tk1, 777)
	eng.Run()
	if a.Ticks() != 0 {
		t.Fatalf("ticks = %d, want 0 in per-release mode", a.Ticks())
	}
}
