package sim

import (
	"math"
	"testing"
)

func TestRNGDeterminism(t *testing.T) {
	a, b := NewRNG(42), NewRNG(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("same seed produced different streams")
		}
	}
}

func TestRNGSeedsDiffer(t *testing.T) {
	a, b := NewRNG(1), NewRNG(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("different seeds collided %d/100 times", same)
	}
}

func TestRNGZeroSeed(t *testing.T) {
	r := NewRNG(0)
	if r.Uint64() == 0 && r.Uint64() == 0 {
		t.Fatal("zero seed stuck at zero")
	}
}

func TestRNGIntnRange(t *testing.T) {
	r := NewRNG(7)
	for i := 0; i < 10000; i++ {
		if v := r.Intn(17); v < 0 || v >= 17 {
			t.Fatalf("Intn out of range: %d", v)
		}
	}
}

func TestRNGFloat64Range(t *testing.T) {
	r := NewRNG(9)
	for i := 0; i < 10000; i++ {
		if v := r.Float64(); v < 0 || v >= 1 {
			t.Fatalf("Float64 out of range: %v", v)
		}
	}
}

func TestRNGFloat64Mean(t *testing.T) {
	r := NewRNG(11)
	var sum float64
	const n = 100000
	for i := 0; i < n; i++ {
		sum += r.Float64()
	}
	if mean := sum / n; math.Abs(mean-0.5) > 0.01 {
		t.Fatalf("mean = %v, want ~0.5", mean)
	}
}

func TestRNGZipfSkew(t *testing.T) {
	r := NewRNG(13)
	const n, hotFrac, skew = 1000, 0.1, 0.9
	hot := 0
	const trials = 100000
	for i := 0; i < trials; i++ {
		if r.Zipf(n, skew, hotFrac) < int64(float64(n)*hotFrac) {
			hot++
		}
	}
	// Hot fraction should be roughly skew + (1-skew)*hotFrac = 0.91.
	got := float64(hot) / trials
	if got < 0.88 || got > 0.94 {
		t.Fatalf("hot hit fraction = %v, want ~0.91", got)
	}
}

func TestRNGPanics(t *testing.T) {
	r := NewRNG(1)
	for name, fn := range map[string]func(){
		"Intn":   func() { r.Intn(0) },
		"Int63n": func() { r.Int63n(-1) },
		"Zipf":   func() { r.Zipf(0, 0.5, 0.1) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("%s with invalid n did not panic", name)
				}
			}()
			fn()
		}()
	}
}
