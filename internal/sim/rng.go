package sim

// RNG is a small deterministic pseudo-random number generator
// (xorshift64*). Simulations must not depend on the global math/rand state:
// every component that needs randomness owns an RNG seeded from the run
// configuration so results are reproducible bit-for-bit.
type RNG struct {
	state uint64
}

// NewRNG returns a generator seeded with seed. A zero seed is remapped to a
// fixed non-zero constant because xorshift has an all-zero fixed point.
func NewRNG(seed uint64) *RNG {
	if seed == 0 {
		seed = 0x9E3779B97F4A7C15
	}
	return &RNG{state: seed}
}

// Uint64 returns the next 64 random bits.
func (r *RNG) Uint64() uint64 {
	x := r.state
	x ^= x >> 12
	x ^= x << 25
	x ^= x >> 27
	r.state = x
	return x * 0x2545F4914F6CDD1D
}

// Uint32 returns the next 32 random bits.
func (r *RNG) Uint32() uint32 { return uint32(r.Uint64() >> 32) }

// Intn returns a uniform value in [0, n). It panics if n <= 0.
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("sim: Intn with non-positive n")
	}
	return int(r.Uint64() % uint64(n))
}

// Int63n returns a uniform value in [0, n). It panics if n <= 0.
func (r *RNG) Int63n(n int64) int64 {
	if n <= 0 {
		panic("sim: Int63n with non-positive n")
	}
	return int64(r.Uint64() % uint64(n))
}

// Float64 returns a uniform value in [0, 1).
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Bool returns true with probability p.
func (r *RNG) Bool(p float64) bool { return r.Float64() < p }

// Zipf returns values in [0, n) following an approximate Zipf-like skew:
// with probability skew the value falls in the hot first hotFrac of the
// range, otherwise it is uniform. This captures the locality that matters
// to cache models without the cost of a full Zipf sampler.
func (r *RNG) Zipf(n int64, skew, hotFrac float64) int64 {
	if n <= 0 {
		panic("sim: Zipf with non-positive n")
	}
	hot := int64(float64(n) * hotFrac)
	if hot < 1 {
		hot = 1
	}
	if r.Bool(skew) {
		return r.Int63n(hot)
	}
	return r.Int63n(n)
}
