package sim

import "container/heap"

// Event is a callback scheduled to run at a point in simulated time.
//
// Event structs are pooled: once an event has fired or been cancelled, its
// handle is dead and the struct may be reused by a later At. Holding a
// dead handle is fine; calling Cancel through one is not (it may cancel an
// unrelated recycled event). Every current user either drops the handle or
// cancels an event it knows is still pending, which is the contract.
type Event struct {
	At Time
	Fn func(now Time)

	seq   int    // tie-break so events at the same instant run in schedule order
	idx   int    // heap index
	shard int    // target shard; cross-shard events use the negative sentinels
	next  *Event // free-list link while pooled
}

// Shard placement sentinels: fenced cross-shard events wait for all
// in-flight shard work before running; overlap events may run while shard
// workers are still busy (see ShardedEngine).
const (
	crossFenced  = -1
	crossOverlap = -2
)

// eventHeap orders events by time, then by scheduling order.
type eventHeap []*Event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].At != h[j].At {
		return h[i].At < h[j].At
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].idx, h[j].idx = i, j
}
func (h *eventHeap) Push(x any) {
	e := x.(*Event)
	e.idx = len(*h)
	*h = append(*h, e)
}
func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return e
}

// eventBefore is the heap order as a standalone predicate, used by the
// sharded engine to compare heads across heaps.
func eventBefore(a, b *Event) bool {
	if a.At != b.At {
		return a.At < b.At
	}
	return a.seq < b.seq
}

// eventPool is a per-engine free list of Event structs. A replay schedules
// one event per step on the hottest suite path; recycling fired events
// makes the steady state allocation-free (each step's At reuses the struct
// the previous step's event just released).
type eventPool struct {
	free *Event
}

func (p *eventPool) get(at Time, fn func(now Time), seq, shard int) *Event {
	ev := p.free
	if ev == nil {
		ev = &Event{}
	} else {
		p.free = ev.next
	}
	ev.At = at
	ev.Fn = fn
	ev.seq = seq
	ev.idx = -1
	ev.shard = shard
	ev.next = nil
	return ev
}

func (p *eventPool) put(ev *Event) {
	ev.Fn = nil // drop the closure so pooled events pin no captures
	ev.next = p.free
	p.free = ev
}

// Scheduler is the event-scheduling surface shared by the serial Engine
// and the ShardedEngine: everything Admission (and other virtual-time
// resources built on events) needs.
type Scheduler interface {
	Now() Time
	At(at Time, fn func(now Time)) *Event
	After(delay Duration, fn func(now Time)) *Event
	Cancel(ev *Event)
}

// Backbone is the full engine surface a replay runs on: scheduling plus
// shard placement and the run loop. The serial Engine implements it with
// every event on one implicit shard; ShardedEngine fans shard events out
// to workers. A program written against Backbone (shard events never call
// engine methods, cross events carry the synchronization) runs bit-
// identically on both.
type Backbone interface {
	Scheduler
	AtShard(shard int, at Time, fn func(now Time)) *Event
	AtOverlap(at Time, fn func(now Time)) *Event
	Run() Time
	RunUntil(deadline Time) Time
	Shards() int
}

// Engine is a minimal discrete-event simulation loop. The zero value is
// ready to use and starts at time zero.
type Engine struct {
	now    Time
	queue  eventHeap
	nextID int
	ran    int64
	pool   eventPool
}

var _ Backbone = (*Engine)(nil)

// Now returns the current simulated time.
func (e *Engine) Now() Time { return e.now }

// Processed reports how many events have run so far.
func (e *Engine) Processed() int64 { return e.ran }

// Pending reports how many events are waiting in the queue.
func (e *Engine) Pending() int { return len(e.queue) }

// Shards reports the number of event shards; the serial engine has one.
func (e *Engine) Shards() int { return 1 }

// At schedules fn to run at absolute time at. Scheduling in the past (before
// Now) panics: it would silently reorder causality. The returned handle is
// valid until the event fires or is cancelled (see Event).
func (e *Engine) At(at Time, fn func(now Time)) *Event {
	return e.schedule(at, fn, crossFenced)
}

// AtShard schedules a shard-affine event. On the serial engine shard
// placement is advisory — every event runs on the one loop — so this is
// At with the tag recorded; it exists so shard-aware programs run
// unchanged on either engine.
func (e *Engine) AtShard(shard int, at Time, fn func(now Time)) *Event {
	if shard < 0 {
		panic("sim: negative shard")
	}
	return e.schedule(at, fn, shard)
}

// AtOverlap schedules a cross-shard event that the sharded engine may run
// while shard workers are still busy. On the serial engine it is exactly
// At.
func (e *Engine) AtOverlap(at Time, fn func(now Time)) *Event {
	return e.schedule(at, fn, crossOverlap)
}

func (e *Engine) schedule(at Time, fn func(now Time), shard int) *Event {
	if at < e.now {
		panic("sim: event scheduled in the past")
	}
	ev := e.pool.get(at, fn, e.nextID, shard)
	e.nextID++
	heap.Push(&e.queue, ev)
	return ev
}

// After schedules fn to run delay nanoseconds from now.
func (e *Engine) After(delay Duration, fn func(now Time)) *Event {
	return e.At(e.now+delay, fn)
}

// Cancel removes a scheduled event. It is a no-op if the event already ran.
func (e *Engine) Cancel(ev *Event) {
	if ev == nil || ev.idx < 0 || ev.idx >= len(e.queue) || e.queue[ev.idx] != ev {
		return
	}
	heap.Remove(&e.queue, ev.idx)
	ev.idx = -1
	e.pool.put(ev)
}

// Step runs the next pending event, advancing the clock to its time. It
// reports false when the queue is empty.
func (e *Engine) Step() bool {
	if len(e.queue) == 0 {
		return false
	}
	ev := heap.Pop(&e.queue).(*Event)
	ev.idx = -1
	e.now = ev.At
	e.ran++
	fn, at := ev.Fn, ev.At
	// Recycle before running: the handle is dead once the event fires, and
	// the callback's own At calls may then reuse the struct.
	e.pool.put(ev)
	fn(at)
	return true
}

// Run processes events until the queue drains and returns the final time.
func (e *Engine) Run() Time {
	for e.Step() {
	}
	return e.now
}

// RunUntil processes events with At <= deadline, then sets the clock to the
// deadline (if it has not passed it already) and returns it.
func (e *Engine) RunUntil(deadline Time) Time {
	for len(e.queue) > 0 && e.queue[0].At <= deadline {
		e.Step()
	}
	if e.now < deadline {
		e.now = deadline
	}
	return e.now
}

// Reset returns the engine to time zero with an empty queue in O(1):
// pending events are dropped (not recycled — they go to the garbage
// collector with their closures) and the free list and queue capacity are
// kept for reuse. Part of the repo-wide reset contract.
func (e *Engine) Reset() {
	e.now = 0
	e.nextID = 0
	e.ran = 0
	e.queue = e.queue[:0]
}
