package sim

import "container/heap"

// Event is a callback scheduled to run at a point in simulated time.
type Event struct {
	At Time
	Fn func(now Time)

	seq int // tie-break so events at the same instant run in schedule order
	idx int // heap index
}

// eventHeap orders events by time, then by scheduling order.
type eventHeap []*Event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].At != h[j].At {
		return h[i].At < h[j].At
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].idx, h[j].idx = i, j
}
func (h *eventHeap) Push(x any) {
	e := x.(*Event)
	e.idx = len(*h)
	*h = append(*h, e)
}
func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return e
}

// Engine is a minimal discrete-event simulation loop. The zero value is
// ready to use and starts at time zero.
type Engine struct {
	now    Time
	queue  eventHeap
	nextID int
	ran    int64
}

// Now returns the current simulated time.
func (e *Engine) Now() Time { return e.now }

// Processed reports how many events have run so far.
func (e *Engine) Processed() int64 { return e.ran }

// Pending reports how many events are waiting in the queue.
func (e *Engine) Pending() int { return len(e.queue) }

// At schedules fn to run at absolute time at. Scheduling in the past (before
// Now) panics: it would silently reorder causality.
func (e *Engine) At(at Time, fn func(now Time)) *Event {
	if at < e.now {
		panic("sim: event scheduled in the past")
	}
	ev := &Event{At: at, Fn: fn, seq: e.nextID}
	e.nextID++
	heap.Push(&e.queue, ev)
	return ev
}

// After schedules fn to run delay nanoseconds from now.
func (e *Engine) After(delay Duration, fn func(now Time)) *Event {
	return e.At(e.now+delay, fn)
}

// Cancel removes a scheduled event. It is a no-op if the event already ran.
func (e *Engine) Cancel(ev *Event) {
	if ev == nil || ev.idx < 0 || ev.idx >= len(e.queue) || e.queue[ev.idx] != ev {
		return
	}
	heap.Remove(&e.queue, ev.idx)
	ev.idx = -1
}

// Step runs the next pending event, advancing the clock to its time. It
// reports false when the queue is empty.
func (e *Engine) Step() bool {
	if len(e.queue) == 0 {
		return false
	}
	ev := heap.Pop(&e.queue).(*Event)
	ev.idx = -1
	e.now = ev.At
	e.ran++
	ev.Fn(e.now)
	return true
}

// Run processes events until the queue drains and returns the final time.
func (e *Engine) Run() Time {
	for e.Step() {
	}
	return e.now
}

// RunUntil processes events with At <= deadline, then sets the clock to the
// deadline (if it has not passed it already) and returns it.
func (e *Engine) RunUntil(deadline Time) Time {
	for len(e.queue) > 0 && e.queue[0].At <= deadline {
		e.Step()
	}
	if e.now < deadline {
		e.now = deadline
	}
	return e.now
}
