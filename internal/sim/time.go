// Package sim provides the discrete-event simulation substrate used by the
// IceClave computational-SSD model: a virtual clock, an event queue, and
// contended-resource primitives (servers and bandwidth pipes).
//
// The package is deliberately free of goroutines; all simulated concurrency
// is expressed through virtual time so that runs are deterministic and
// reproducible.
//
// Concurrency contract: Engine, Server, Pipe, and RNG are not safe for
// concurrent use — a simulation instance lives on one goroutine, which is
// what makes runs reproducible. Time and Duration are plain values; code
// that shares them across goroutines (e.g. the tee.Runtime clock)
// provides its own synchronization.
package sim

import (
	"fmt"
	"time"
)

// Time is a point in simulated time, measured in nanoseconds from the start
// of the simulation. It is a distinct type to keep simulated time from being
// confused with wall-clock time.
type Time int64

// Duration is a span of simulated time in nanoseconds.
type Duration = Time

// Common durations, mirroring the time package for readability at call
// sites such as 50*sim.Microsecond.
const (
	Nanosecond  Duration = 1
	Microsecond Duration = 1000
	Millisecond Duration = 1000 * 1000
	Second      Duration = 1000 * 1000 * 1000
)

// FromStdDuration converts a time.Duration to a simulated Duration.
func FromStdDuration(d time.Duration) Duration { return Duration(d.Nanoseconds()) }

// Std converts a simulated duration to a time.Duration for display.
func (t Time) Std() time.Duration { return time.Duration(t) * time.Nanosecond }

// Seconds reports the time as floating-point seconds.
func (t Time) Seconds() float64 { return float64(t) / float64(Second) }

// Micros reports the time as floating-point microseconds.
func (t Time) Micros() float64 { return float64(t) / float64(Microsecond) }

// String formats the time using time.Duration notation (e.g. "50µs").
func (t Time) String() string { return t.Std().String() }

// MaxTime is the largest representable simulation time.
const MaxTime Time = 1<<63 - 1

// Max returns the later of a and b.
func Max(a, b Time) Time {
	if a > b {
		return a
	}
	return b
}

// Min returns the earlier of a and b.
func Min(a, b Time) Time {
	if a < b {
		return a
	}
	return b
}

// DurationForBytes returns the time needed to move n bytes at the given
// bandwidth in bytes per second. It rounds up so that a nonzero transfer
// always takes nonzero time. It panics if bytesPerSec is not positive, since
// a zero-bandwidth link would hang the simulation silently.
func DurationForBytes(n int64, bytesPerSec float64) Duration {
	if bytesPerSec <= 0 {
		panic(fmt.Sprintf("sim: non-positive bandwidth %v", bytesPerSec))
	}
	if n <= 0 {
		return 0
	}
	d := Duration(float64(n) / bytesPerSec * float64(Second))
	if d == 0 {
		d = 1
	}
	return d
}
