package sim

// Server models a contended FIFO resource with a fixed number of identical
// service units (e.g. a flash channel bus, a DRAM rank, a CPU core pool).
// Requests are admitted in arrival order; each occupies one unit for its
// service duration. Server is a virtual-time reservation calculator: it does
// not use the event queue, which keeps simulation of millions of requests
// cheap while still modelling queueing delay and contention exactly for
// FIFO service.
//
// The zero value is not usable; create servers with NewServer.
type Server struct {
	name string
	free []Time // next-free time per unit, maintained unsorted (k is small)

	busy     Duration // total busy time accumulated across units
	requests int64
	waited   Duration // total queueing delay endured by requests
}

// NewServer returns a Server with k service units. It panics if k < 1.
func NewServer(name string, k int) *Server {
	if k < 1 {
		panic("sim: NewServer needs at least one unit")
	}
	return &Server{name: name, free: make([]Time, k)}
}

// Name returns the label given at construction.
func (s *Server) Name() string { return s.name }

// Units returns the number of service units.
func (s *Server) Units() int { return len(s.free) }

// Acquire reserves the earliest-available unit for a request arriving at
// time at with the given service duration. It returns the start and
// completion times. Contention appears as start > at.
func (s *Server) Acquire(at Time, service Duration) (start, done Time) {
	best := 0
	for i := 1; i < len(s.free); i++ {
		if s.free[i] < s.free[best] {
			best = i
		}
	}
	start = Max(at, s.free[best])
	done = start + service
	s.free[best] = done
	s.busy += service
	s.requests++
	s.waited += start - at
	return start, done
}

// NextFree returns the earliest time any unit becomes available.
func (s *Server) NextFree() Time {
	t := s.free[0]
	for _, f := range s.free[1:] {
		if f < t {
			t = f
		}
	}
	return t
}

// Busy returns the total busy time accumulated across all units.
func (s *Server) Busy() Duration { return s.busy }

// Requests returns the number of requests served.
func (s *Server) Requests() int64 { return s.requests }

// Waited returns the total queueing delay across all requests.
func (s *Server) Waited() Duration { return s.waited }

// Utilization reports the mean fraction of time the units were busy over
// the horizon [0, until].
func (s *Server) Utilization(until Time) float64 {
	if until <= 0 {
		return 0
	}
	return float64(s.busy) / (float64(until) * float64(len(s.free)))
}

// Reset returns the server to its initial idle state, keeping its identity.
func (s *Server) Reset() {
	for i := range s.free {
		s.free[i] = 0
	}
	s.busy, s.requests, s.waited = 0, 0, 0
}

// Pipe models a shared bandwidth-limited link (PCIe, the SSD internal bus).
// Transfers serialize on the link in FIFO order; the duration of a transfer
// is size / bandwidth.
type Pipe struct {
	srv   *Server
	bps   float64
	moved int64
}

// NewPipe returns a Pipe with the given bandwidth in bytes per second.
func NewPipe(name string, bytesPerSec float64) *Pipe {
	if bytesPerSec <= 0 {
		panic("sim: NewPipe needs positive bandwidth")
	}
	return &Pipe{srv: NewServer(name, 1), bps: bytesPerSec}
}

// Name returns the label given at construction.
func (p *Pipe) Name() string { return p.srv.Name() }

// Bandwidth returns the link bandwidth in bytes per second.
func (p *Pipe) Bandwidth() float64 { return p.bps }

// Transfer reserves the link for n bytes arriving at time at and returns
// the start and completion times.
func (p *Pipe) Transfer(at Time, n int64) (start, done Time) {
	p.moved += n
	return p.srv.Acquire(at, DurationForBytes(n, p.bps))
}

// Moved returns the total bytes transferred.
func (p *Pipe) Moved() int64 { return p.moved }

// Busy returns the total time the link spent transferring.
func (p *Pipe) Busy() Duration { return p.srv.Busy() }

// Reset returns the pipe to idle.
func (p *Pipe) Reset() { p.srv.Reset(); p.moved = 0 }
