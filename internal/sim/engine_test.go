package sim

import (
	"testing"
	"testing/quick"
)

func TestEngineOrdering(t *testing.T) {
	var e Engine
	var order []int
	e.At(30, func(Time) { order = append(order, 3) })
	e.At(10, func(Time) { order = append(order, 1) })
	e.At(20, func(Time) { order = append(order, 2) })
	end := e.Run()
	if end != 30 {
		t.Fatalf("final time = %d, want 30", end)
	}
	want := []int{1, 2, 3}
	for i, v := range want {
		if order[i] != v {
			t.Fatalf("order = %v, want %v", order, want)
		}
	}
}

func TestEngineSameInstantFIFO(t *testing.T) {
	var e Engine
	var order []int
	for i := 0; i < 10; i++ {
		i := i
		e.At(5, func(Time) { order = append(order, i) })
	}
	e.Run()
	for i, v := range order {
		if v != i {
			t.Fatalf("same-instant events ran out of schedule order: %v", order)
		}
	}
}

func TestEngineAfterChaining(t *testing.T) {
	var e Engine
	var times []Time
	var step func(now Time)
	step = func(now Time) {
		times = append(times, now)
		if len(times) < 5 {
			e.After(7, step)
		}
	}
	e.After(7, step)
	e.Run()
	for i, at := range times {
		if want := Time(7 * (i + 1)); at != want {
			t.Fatalf("times[%d] = %d, want %d", i, at, want)
		}
	}
}

func TestEnginePastPanics(t *testing.T) {
	var e Engine
	e.At(10, func(Time) {})
	e.Run()
	defer func() {
		if recover() == nil {
			t.Fatal("scheduling in the past did not panic")
		}
	}()
	e.At(5, func(Time) {})
}

func TestEngineCancel(t *testing.T) {
	var e Engine
	ran := false
	ev := e.At(10, func(Time) { ran = true })
	e.Cancel(ev)
	e.Run()
	if ran {
		t.Fatal("cancelled event ran")
	}
	// Cancelling twice (or after running) is a no-op.
	e.Cancel(ev)
	ev2 := e.At(20, func(Time) {})
	e.Run()
	e.Cancel(ev2)
}

func TestEngineRunUntil(t *testing.T) {
	var e Engine
	var ran []Time
	for _, at := range []Time{5, 10, 15, 20} {
		at := at
		e.At(at, func(now Time) { ran = append(ran, now) })
	}
	now := e.RunUntil(12)
	if now != 12 {
		t.Fatalf("RunUntil returned %d, want 12", now)
	}
	if len(ran) != 2 {
		t.Fatalf("ran %d events before deadline, want 2", len(ran))
	}
	if e.Pending() != 2 {
		t.Fatalf("pending = %d, want 2", e.Pending())
	}
	e.Run()
	if len(ran) != 4 {
		t.Fatalf("ran %d events total, want 4", len(ran))
	}
}

func TestEngineMonotonicClockProperty(t *testing.T) {
	// Property: regardless of the (non-negative) delays scheduled, the
	// observed event times are non-decreasing.
	f := func(delays []uint16) bool {
		var e Engine
		var last Time = -1
		ok := true
		for _, d := range delays {
			e.After(Duration(d), func(now Time) {
				if now < last {
					ok = false
				}
				last = now
			})
		}
		e.Run()
		return ok
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
