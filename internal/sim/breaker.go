package sim

import "errors"

// ErrCircuitOpen is returned by Breaker.Allow while the circuit is open:
// the caller should shed the work instead of attempting it.
var ErrCircuitOpen = errors.New("sim: circuit open")

// BreakerState names the circuit's position.
type BreakerState uint8

// Breaker states.
const (
	// BreakerClosed: requests flow; failures are counted.
	BreakerClosed BreakerState = iota
	// BreakerOpen: requests are shed until the cooldown elapses.
	BreakerOpen
	// BreakerHalfOpen: one probe request is in flight; its outcome
	// decides between closing and re-opening.
	BreakerHalfOpen
)

func (s BreakerState) String() string {
	switch s {
	case BreakerClosed:
		return "closed"
	case BreakerOpen:
		return "open"
	case BreakerHalfOpen:
		return "half-open"
	default:
		return "unknown"
	}
}

// BreakerConfig parameterizes a Breaker. The zero value gets defaults.
type BreakerConfig struct {
	// Failures is the consecutive-failure count that trips the circuit.
	// Default 5.
	Failures int
	// Cooldown is the virtual time the circuit stays open before
	// granting a half-open probe. Default 5 ms.
	Cooldown Duration
}

func (c BreakerConfig) withDefaults() BreakerConfig {
	if c.Failures <= 0 {
		c.Failures = 5
	}
	if c.Cooldown <= 0 {
		c.Cooldown = 5 * Millisecond
	}
	return c
}

// Breaker is a per-tenant circuit breaker on the virtual clock. It trips
// open after K consecutive failures, sheds requests with ErrCircuitOpen
// for a cooldown, then grants a single half-open probe whose outcome
// closes the circuit or re-opens it for another cooldown.
//
// Like every type in this package, Breaker is single-goroutine by
// contract: on the replay path it is mutated only from coordinator-run
// events, in deterministic (time, seq) order.
type Breaker struct {
	cfg BreakerConfig

	state       BreakerState
	consecutive int  // consecutive failures while closed
	until       Time // open until this instant
	trips       int
}

// NewBreaker builds a breaker with the given config (zero value for
// defaults), starting closed.
func NewBreaker(cfg BreakerConfig) *Breaker {
	return &Breaker{cfg: cfg.withDefaults()}
}

// Allow reports whether a request arriving at time at may proceed.
// Closed (or half-open, for re-entrant probes) grants immediately. Open
// grants a half-open probe once the cooldown has elapsed; otherwise it
// returns the instant the cooldown ends and ErrCircuitOpen, so the
// caller can park the retry exactly until the probe window opens.
func (b *Breaker) Allow(at Time) (Time, error) {
	switch b.state {
	case BreakerOpen:
		if at < b.until {
			return b.until, ErrCircuitOpen
		}
		b.state = BreakerHalfOpen
		return at, nil
	default:
		return at, nil
	}
}

// Success records a completed request at time at, closing the circuit
// and clearing the consecutive-failure count.
func (b *Breaker) Success(at Time) {
	b.state = BreakerClosed
	b.consecutive = 0
}

// Failure records a failed request at time at. It returns true when this
// failure trips the circuit open (either the K-th consecutive failure
// while closed, or a failed half-open probe).
func (b *Breaker) Failure(at Time) bool {
	switch b.state {
	case BreakerHalfOpen:
		b.trip(at)
		return true
	case BreakerClosed:
		b.consecutive++
		if b.consecutive >= b.cfg.Failures {
			b.trip(at)
			return true
		}
	}
	return false
}

func (b *Breaker) trip(at Time) {
	b.state = BreakerOpen
	b.consecutive = 0
	b.until = at + Time(b.cfg.Cooldown)
	b.trips++
}

// State returns the circuit's current position.
func (b *Breaker) State() BreakerState { return b.state }

// Trips returns how many times the circuit has opened.
func (b *Breaker) Trips() int { return b.trips }

// Reset returns the breaker to its initial closed state with zero trips.
func (b *Breaker) Reset() {
	b.state = BreakerClosed
	b.consecutive = 0
	b.until = 0
	b.trips = 0
}
