package sim

import (
	"reflect"
	"testing"
)

// transcript records what a program observed while running on an engine:
// per-shard event orderings (appended by the shard events themselves, so
// they capture true execution order on the workers) and the cross-shard
// stream with, at each fenced cross event, the number of completed events
// per shard — the cross-shard interaction points the sharded engine must
// reproduce exactly.
type transcript struct {
	shard [][]shardRec
	cross []crossRec
	final Time
	ran   int64
}

type shardRec struct {
	id int
	at Time
}

type crossRec struct {
	id   int
	at   Time
	seen []int // per-shard completed-event counts; nil for overlap events
}

func (tr *transcript) seenVector() []int {
	v := make([]int, len(tr.shard))
	for s := range tr.shard {
		v[s] = len(tr.shard[s])
	}
	return v
}

// progOp is one scheduled event of a deterministic test program.
type progOp struct {
	at      Time
	shard   int  // >= 0 shard event; -1 fenced cross; -2 overlap cross
	childOf int  // schedule from this cross op's callback (-1: at setup)
	cancels int  // >= 0: this (cross) op cancels op #cancels when it runs
	canceld bool // filled during the run
}

// runProgram replays ops on eng and returns the transcript. Child
// scheduling and cancels run only in coordinator contexts (setup and
// cross callbacks), honouring the sharded engine's contract.
func runProgram(eng Backbone, nshards int, ops []progOp) *transcript {
	tr := &transcript{shard: make([][]shardRec, nshards)}
	handles := make([]*Event, len(ops))
	var schedule func(i int)
	schedule = func(i int) {
		op := &ops[i]
		id := i
		switch {
		case op.shard >= 0:
			handles[i] = eng.AtShard(op.shard, op.at, func(now Time) {
				tr.shard[op.shard] = append(tr.shard[op.shard], shardRec{id, now})
			})
		default:
			fenced := op.shard == -1
			fn := func(now Time) {
				rec := crossRec{id: id, at: now}
				if fenced {
					rec.seen = tr.seenVector()
				}
				tr.cross = append(tr.cross, rec)
				if op.cancels >= 0 && !ops[op.cancels].canceld {
					eng.Cancel(handles[op.cancels])
					ops[op.cancels].canceld = true
				}
				for j := range ops {
					if ops[j].childOf == i {
						schedule(j)
					}
				}
			}
			if fenced {
				handles[i] = eng.At(op.at, fn)
			} else {
				handles[i] = eng.AtOverlap(op.at, fn)
			}
		}
	}
	for i := range ops {
		if ops[i].childOf == -1 {
			schedule(i)
		}
	}
	tr.final = eng.Run()
	switch e := eng.(type) {
	case *Engine:
		tr.ran = e.Processed()
	case *ShardedEngine:
		tr.ran = e.Processed()
	}
	return tr
}

// diffTranscripts replays ops on the serial engine and on sharded engines
// at several worker counts and requires identical transcripts.
func diffTranscripts(t *testing.T, nshards int, mkOps func() []progOp) {
	t.Helper()
	want := runProgram(&Engine{}, nshards, mkOps())
	for _, workers := range []int{1, 2, 3} {
		got := runProgram(NewShardedEngine(nshards, workers), nshards, mkOps())
		if got.final != want.final || got.ran != want.ran {
			t.Errorf("workers=%d: final=%v ran=%d, want final=%v ran=%d",
				workers, got.final, got.ran, want.final, want.ran)
		}
		if !reflect.DeepEqual(got.shard, want.shard) {
			t.Errorf("workers=%d: shard transcripts diverge\n got %v\nwant %v",
				workers, got.shard, want.shard)
		}
		if !reflect.DeepEqual(got.cross, want.cross) {
			t.Errorf("workers=%d: cross transcripts diverge\n got %v\nwant %v",
				workers, got.cross, want.cross)
		}
	}
}

func op(at Time, shard int) progOp { return progOp{at: at, shard: shard, childOf: -1, cancels: -1} }

// TestShardedSameInstantSeqOrder: events at one instant spanning several
// shards must dispatch in global seq (schedule) order, and a fenced cross
// event at the same instant, scheduled after them, must observe them all.
func TestShardedSameInstantSeqOrder(t *testing.T) {
	mk := func() []progOp {
		return []progOp{
			op(10, 0), // A: seq 0
			op(10, 1), // B: seq 1
			op(10, 2), // C: seq 2
			op(10, -1),
		}
	}
	diffTranscripts(t, 3, mk)

	// With one worker every shard shares a FIFO, so the worker's merged
	// execution order is observable and must equal schedule order.
	var merged []int
	eng := NewShardedEngine(3, 1)
	for i, s := range []int{2, 0, 1} {
		i := i
		eng.AtShard(s, 10, func(Time) { merged = append(merged, i) })
	}
	eng.Run()
	if !reflect.DeepEqual(merged, []int{0, 1, 2}) {
		t.Errorf("same-instant cross-shard events ran out of seq order: %v", merged)
	}
}

// TestShardedCancelAtHorizon: a fenced cross event that currently defines
// the safe horizon is cancelled by an earlier cross event; the shard
// streams around it must still replay identically.
func TestShardedCancelAtHorizon(t *testing.T) {
	mk := func() []progOp {
		ops := []progOp{
			op(4, 0),
			op(5, -1), // the horizon event, cancelled before it fires
			op(6, 1),
			op(8, -1),
			{at: 3, shard: -1, childOf: -1, cancels: 1},
		}
		return ops
	}
	diffTranscripts(t, 2, mk)

	eng := NewShardedEngine(2, 2)
	fired := false
	eng.AtShard(0, 4, func(Time) {})
	horizon := eng.At(5, func(Time) { fired = true })
	eng.AtShard(1, 6, func(Time) {})
	eng.At(3, func(Time) { eng.Cancel(horizon) })
	if final := eng.Run(); final != 6 {
		t.Errorf("final time %v, want 6", final)
	}
	if fired {
		t.Error("cancelled horizon event ran")
	}
	if eng.Pending() != 0 {
		t.Errorf("pending %d after run", eng.Pending())
	}
}

// TestShardedRunUntilEmptyShard: RunUntil over an engine where some
// shards have no events at all must advance the clock to the deadline and
// leave later events pending, exactly like the serial engine.
func TestShardedRunUntilEmptyShard(t *testing.T) {
	for _, workers := range []int{1, 3} {
		eng := NewShardedEngine(3, workers)
		var ran []int
		eng.AtShard(0, 2, func(Time) { ran = append(ran, 0) })
		eng.At(4, func(Time) { ran = append(ran, 1) })
		eng.AtShard(0, 9, func(Time) { ran = append(ran, 2) })
		if now := eng.RunUntil(5); now != 5 {
			t.Errorf("workers=%d: RunUntil returned %v, want 5", workers, now)
		}
		if !reflect.DeepEqual(ran, []int{0, 1}) {
			t.Errorf("workers=%d: ran %v, want [0 1]", workers, ran)
		}
		if eng.Pending() != 1 {
			t.Errorf("workers=%d: pending %d, want 1", workers, eng.Pending())
		}
		if final := eng.Run(); final != 9 {
			t.Errorf("workers=%d: final %v, want 9", workers, final)
		}
		if !reflect.DeepEqual(ran, []int{0, 1, 2}) {
			t.Errorf("workers=%d: ran %v, want [0 1 2]", workers, ran)
		}
	}
}

// TestShardedChainedScheduling: cross events scheduling shard children and
// further cross events (the admission-grant shape) replay identically.
func TestShardedChainedScheduling(t *testing.T) {
	mk := func() []progOp {
		return []progOp{
			{at: 0, shard: -1, childOf: -1, cancels: -1},  // 0: root
			{at: 5, shard: 0, childOf: 0, cancels: -1},    // scheduled by 0
			{at: 5, shard: 1, childOf: 0, cancels: -1},    // scheduled by 0
			{at: 7, shard: -2, childOf: 0, cancels: -1},   // overlap cross
			{at: 10, shard: -1, childOf: 0, cancels: -1},  // 4: fenced cross
			{at: 12, shard: 1, childOf: 4, cancels: -1},   // scheduled by 4
			{at: 12, shard: -1, childOf: 4, cancels: -1},  // fenced tail
			{at: 3, shard: 0, childOf: -1, cancels: -1},   // setup shard event
			{at: 15, shard: -1, childOf: -1, cancels: -1}, // final barrier
		}
	}
	diffTranscripts(t, 2, mk)
}

// TestShardedReset pins the O(1) reset contract: a reset engine replays a
// fresh program identically to a new one.
func TestShardedReset(t *testing.T) {
	mk := func() []progOp {
		return []progOp{op(1, 0), op(2, 1), op(2, -1), op(3, -2)}
	}
	eng := NewShardedEngine(2, 2)
	runProgram(eng, 2, mk())
	eng.AtShard(0, 99, func(Time) { t.Error("dropped event ran") })
	eng.Reset()
	if eng.Now() != 0 || eng.Pending() != 0 || eng.Processed() != 0 {
		t.Fatalf("reset left now=%v pending=%d ran=%d", eng.Now(), eng.Pending(), eng.Processed())
	}
	got := runProgram(eng, 2, mk())
	want := runProgram(NewShardedEngine(2, 2), 2, mk())
	if !reflect.DeepEqual(got.shard, want.shard) || !reflect.DeepEqual(got.cross, want.cross) {
		t.Errorf("post-reset replay diverges: got %v/%v want %v/%v",
			got.shard, got.cross, want.shard, want.cross)
	}
}

// decodeProgram turns fuzz bytes into a valid event program: a byte
// triple per op (placement, time, parent selector). Cross events may have
// children; every op's parent is an earlier cross op or setup; cancels
// target strictly-later ops so the cancel races nothing.
func decodeProgram(data []byte, nshards int) []progOp {
	n := len(data) / 3
	if n > 64 {
		n = 64
	}
	ops := make([]progOp, 0, n)
	crossIdx := []int{}
	for i := 0; i < n; i++ {
		place := int(data[3*i]) % (nshards + 2)
		at := Time(data[3*i+1]) % 32
		sel := int(data[3*i+2])
		o := progOp{at: at, shard: place - 2, childOf: -1, cancels: -1}
		if len(crossIdx) > 0 && sel%3 == 1 {
			// Child of an earlier cross op: runs at or after the parent.
			p := crossIdx[sel%len(crossIdx)]
			o.childOf = p
			if o.at < ops[p].at {
				o.at = ops[p].at
			}
		}
		ops = append(ops, o)
		if o.shard < 0 {
			crossIdx = append(crossIdx, i)
		}
	}
	// Wire cancels: a cross op may cancel a strictly-later-in-time setup
	// op (never one that could already have run or been dispatched).
	for _, ci := range crossIdx {
		sel := int(data[3*ci+2])
		if sel%5 != 0 {
			continue
		}
		for j := range ops {
			if ops[j].childOf == -1 && ops[j].at > ops[ci].at && j != ci {
				ops[ci].cancels = j
				break
			}
		}
	}
	return ops
}

// FuzzShardedEngineTranscript replays random event programs through the
// serial and sharded engines and requires identical transcripts.
func FuzzShardedEngineTranscript(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{0, 1, 2, 3, 4, 5, 6, 7, 8})
	f.Add([]byte{1, 10, 1, 2, 10, 1, 0, 10, 5, 3, 5, 0, 4, 20, 7})
	f.Add([]byte{5, 0, 0, 5, 0, 3, 1, 1, 1, 2, 2, 2, 0, 31, 5, 1, 16, 10})
	f.Fuzz(func(t *testing.T, data []byte) {
		const nshards = 3
		want := runProgram(&Engine{}, nshards, decodeProgram(data, nshards))
		for _, workers := range []int{1, 2, 3} {
			got := runProgram(NewShardedEngine(nshards, workers), nshards, decodeProgram(data, nshards))
			if got.final != want.final || got.ran != want.ran ||
				!reflect.DeepEqual(got.shard, want.shard) ||
				!reflect.DeepEqual(got.cross, want.cross) {
				t.Fatalf("workers=%d diverges\n got %+v\nwant %+v", workers, got, want)
			}
		}
	})
}

// TestEngineEventPoolAllocs pins the Event free list: once a replay-shaped
// loop reaches steady state (each fired event's struct feeds the next At),
// scheduling allocates nothing.
func TestEngineEventPoolAllocs(t *testing.T) {
	e := &Engine{}
	var hops int
	var hop func(now Time)
	hop = func(now Time) {
		hops++
		if hops%1000 != 0 {
			e.At(now+1, hop)
		}
	}
	e.At(0, hop)
	e.Run() // warm the pool and the heap capacity
	allocs := testing.AllocsPerRun(100, func() {
		e.At(e.Now()+1, hop)
		e.Run()
	})
	if allocs > 0 {
		t.Errorf("steady-state schedule+run allocates %.1f objects per run, want 0", allocs)
	}
}

// TestEngineResetDropsEvents pins serial Engine.Reset.
func TestEngineResetDropsEvents(t *testing.T) {
	e := &Engine{}
	e.At(5, func(Time) { t.Error("dropped event ran") })
	e.Reset()
	if e.Now() != 0 || e.Pending() != 0 || e.Processed() != 0 {
		t.Fatalf("reset left now=%v pending=%d ran=%d", e.Now(), e.Pending(), e.Processed())
	}
	ran := false
	e.At(2, func(Time) { ran = true })
	if final := e.Run(); final != 2 || !ran {
		t.Errorf("post-reset run: final=%v ran=%v", final, ran)
	}
}

// TestShardedEngineClamps documents constructor clamping.
func TestShardedEngineClamps(t *testing.T) {
	if w := NewShardedEngine(2, 8).Workers(); w != 2 {
		t.Errorf("workers clamped to %d, want 2 (shard count)", w)
	}
	if w := NewShardedEngine(4, 0).Workers(); w != 1 {
		t.Errorf("workers clamped to %d, want 1", w)
	}
	defer func() {
		if recover() == nil {
			t.Error("NewShardedEngine(0, 1) did not panic")
		}
	}()
	NewShardedEngine(0, 1)
}
