package sim

import (
	"errors"
	"testing"
)

func TestBreakerTripAfterKFailures(t *testing.T) {
	b := NewBreaker(BreakerConfig{Failures: 3, Cooldown: 100})
	for i := 0; i < 2; i++ {
		if b.Failure(Time(i)) {
			t.Fatalf("failure %d tripped early", i)
		}
		if b.State() != BreakerClosed {
			t.Fatalf("state after failure %d = %v, want closed", i, b.State())
		}
	}
	if !b.Failure(2) {
		t.Fatal("third failure did not trip")
	}
	if b.State() != BreakerOpen || b.Trips() != 1 {
		t.Fatalf("state=%v trips=%d, want open/1", b.State(), b.Trips())
	}
}

func TestBreakerSuccessResetsCount(t *testing.T) {
	b := NewBreaker(BreakerConfig{Failures: 3, Cooldown: 100})
	b.Failure(0)
	b.Failure(1)
	b.Success(2)
	b.Failure(3)
	b.Failure(4)
	if b.State() != BreakerClosed {
		t.Fatal("interleaved successes should prevent tripping")
	}
}

func TestBreakerOpenShedsUntilCooldown(t *testing.T) {
	b := NewBreaker(BreakerConfig{Failures: 1, Cooldown: 100})
	b.Failure(10) // trips; open until 110
	until, err := b.Allow(50)
	if !errors.Is(err, ErrCircuitOpen) {
		t.Fatalf("err = %v, want ErrCircuitOpen", err)
	}
	if until != 110 {
		t.Fatalf("until = %d, want 110", until)
	}
	// At the cooldown boundary the breaker grants a half-open probe.
	granted, err := b.Allow(110)
	if err != nil || granted != 110 {
		t.Fatalf("probe grant = (%d, %v), want (110, nil)", granted, err)
	}
	if b.State() != BreakerHalfOpen {
		t.Fatalf("state = %v, want half-open", b.State())
	}
}

func TestBreakerHalfOpenProbeOutcomes(t *testing.T) {
	// Probe success closes.
	b := NewBreaker(BreakerConfig{Failures: 1, Cooldown: 100})
	b.Failure(0)
	b.Allow(100)
	b.Success(101)
	if b.State() != BreakerClosed {
		t.Fatalf("state after probe success = %v, want closed", b.State())
	}
	// Probe failure re-opens for another full cooldown. (With K=1 the
	// intermediate failure at t=200 is itself trip #2; the failed probe
	// is trip #3.)
	b.Failure(200)
	b.Allow(300)
	if !b.Failure(301) {
		t.Fatal("failed probe did not re-trip")
	}
	if b.State() != BreakerOpen || b.Trips() != 3 {
		t.Fatalf("state=%v trips=%d, want open/3", b.State(), b.Trips())
	}
	if until, err := b.Allow(302); !errors.Is(err, ErrCircuitOpen) || until != 301+100 {
		t.Fatalf("Allow after re-trip = (%d, %v), want (401, ErrCircuitOpen)", until, err)
	}
}

func TestBreakerDefaultsAndReset(t *testing.T) {
	b := NewBreaker(BreakerConfig{})
	for i := 0; i < 4; i++ {
		if b.Failure(Time(i)) {
			t.Fatal("default breaker tripped before 5 failures")
		}
	}
	if !b.Failure(4) {
		t.Fatal("default breaker did not trip at 5 failures")
	}
	if until, err := b.Allow(4); err == nil || until != 4+Time(5*Millisecond) {
		t.Fatalf("default cooldown end = %d, want %d", until, 4+Time(5*Millisecond))
	}
	b.Reset()
	if b.State() != BreakerClosed || b.Trips() != 0 {
		t.Fatal("Reset did not restore the initial state")
	}
	if _, err := b.Allow(0); err != nil {
		t.Fatalf("Allow after Reset = %v", err)
	}
}

func TestBreakerStateString(t *testing.T) {
	for s, want := range map[BreakerState]string{
		BreakerClosed:   "closed",
		BreakerOpen:     "open",
		BreakerHalfOpen: "half-open",
		BreakerState(9): "unknown",
	} {
		if s.String() != want {
			t.Errorf("%d.String() = %q, want %q", s, s.String(), want)
		}
	}
}
