package sim

import "testing"

// TestPlaybackGrantsInBandOrderAtEqualArrival pins the open-loop gate's
// simultaneous-arrival contract: arrivals sharing one virtual instant
// enter the gate as a group, so under a one-slot cap they are granted in
// band order — high, normal, low — regardless of schedule position (the
// low-band arrival is listed first here).
func TestPlaybackGrantsInBandOrderAtEqualArrival(t *testing.T) {
	eng := &Engine{}
	a := NewAdmission(eng, 3, 1, 0)
	const service = Duration(100)
	var order []int
	mk := func(i int) func(Time) { return func(Time) { order = append(order, i) } }
	var tks []*Ticket
	tks = a.Playback([]Arrival{
		{At: 0, Key: "low", Band: 0, Fn: func(g Time) { mk(0)(g); eng.At(g+service, func(now Time) { a.Release(tks[0], now) }) }},
		{At: 0, Key: "normal", Band: 1, Fn: func(g Time) { mk(1)(g); eng.At(g+service, func(now Time) { a.Release(tks[1], now) }) }},
		{At: 0, Key: "high", Band: 2, Fn: func(g Time) { mk(2)(g); eng.At(g+service, func(now Time) { a.Release(tks[2], now) }) }},
	})
	eng.Run()
	if len(order) != 3 || order[0] != 2 || order[1] != 1 || order[2] != 0 {
		t.Fatalf("grant order = %v, want [2 1 0] (high, normal, low)", order)
	}
	// Grants chain at service boundaries: high at 0, normal at 100, low at 200.
	if tks[2].Granted != 0 || tks[1].Granted != 100 || tks[0].Granted != 200 {
		t.Fatalf("grant times = high %v, normal %v, low %v; want 0, 100, 200",
			tks[2].Granted, tks[1].Granted, tks[0].Granted)
	}
}

// TestPlaybackWaitExcludesPreArrivalIdle pins the open-loop queueing
// definition: a late arrival finding free capacity is granted at its own
// arrival instant with zero wait — the idle gate time before it arrived is
// not queueing delay.
func TestPlaybackWaitExcludesPreArrivalIdle(t *testing.T) {
	eng := &Engine{}
	a := NewAdmission(eng, 3, 2, 0)
	var granted Time = -1
	tks := a.Playback([]Arrival{
		{At: 5 * Millisecond, Key: "late", Band: 1, Fn: func(g Time) { granted = g }},
	})
	eng.Run()
	if granted != 5*Millisecond {
		t.Fatalf("granted at %v, want the 5ms arrival instant", granted)
	}
	if w := tks[0].Waited(); w != 0 {
		t.Fatalf("ticket waited %v, want 0 — pre-arrival idle counted as queueing", w)
	}
	if w := a.Waited(); w != 0 {
		t.Fatalf("gate accumulated %v wait, want 0", w)
	}
}

// TestPlaybackQueuedWaitCountsFromArrival pins the other half of the same
// definition: a blocked arrival's wait runs from its scheduled arrival to
// its grant, not from time zero.
func TestPlaybackQueuedWaitCountsFromArrival(t *testing.T) {
	eng := &Engine{}
	a := NewAdmission(eng, 3, 1, 0)
	var tks []*Ticket
	tks = a.Playback([]Arrival{
		{At: 0, Key: "first", Band: 1, Fn: func(g Time) {
			eng.At(g+10*Millisecond, func(now Time) { a.Release(tks[0], now) })
		}},
		{At: 4 * Millisecond, Key: "second", Band: 1, Fn: func(Time) {}},
	})
	eng.Run()
	if tks[1].Granted != 10*Millisecond {
		t.Fatalf("second granted at %v, want the 10ms release", tks[1].Granted)
	}
	if w := tks[1].Waited(); w != 6*Millisecond {
		t.Fatalf("second waited %v, want 6ms (10ms grant - 4ms arrival)", w)
	}
	if w := a.Waited(); w != 6*Millisecond {
		t.Fatalf("gate total wait %v, want 6ms", w)
	}
}

// TestPlaybackUnsortedArrivalsAndTicketOrder pins that the schedule need
// not be sorted: events are posted per instant, every arrival fires at its
// own time, and the returned tickets stay in schedule order.
func TestPlaybackUnsortedArrivalsAndTicketOrder(t *testing.T) {
	eng := &Engine{}
	a := NewAdmission(eng, 3, 0, 0)
	var grants []Time
	tks := a.Playback([]Arrival{
		{At: 20, Key: "later", Band: 1, Fn: func(g Time) { grants = append(grants, g) }},
		{At: 0, Key: "earlier", Band: 1, Fn: func(g Time) { grants = append(grants, g) }},
	})
	eng.Run()
	if len(grants) != 2 || grants[0] != 0 || grants[1] != 20 {
		t.Fatalf("grants fired at %v, want [0 20]", grants)
	}
	if tks[0].Key != "later" || tks[1].Key != "earlier" {
		t.Fatalf("tickets reordered: %q, %q", tks[0].Key, tks[1].Key)
	}
	if tks[0].Submitted != 20 || tks[1].Submitted != 0 {
		t.Fatalf("submitted times = %v, %v; want 20, 0", tks[0].Submitted, tks[1].Submitted)
	}
}

// TestPlaybackBatchedModeAlignsToTicks pins playback under the
// batched-grant policy: a scheduled arrival waits for the next quantum
// tick exactly as a Submit-queued ticket would.
func TestPlaybackBatchedModeAlignsToTicks(t *testing.T) {
	eng := &Engine{}
	const quantum = Duration(300 * Microsecond)
	a := NewAdmissionWithPolicy(eng, 3, Policy{Slots: 1, Quantum: quantum, Batch: 1})
	var granted Time = -1
	a.Playback([]Arrival{
		{At: 1000 * Microsecond, Key: "a", Band: 1, Fn: func(g Time) { granted = g }},
	})
	eng.Run()
	if granted < 1000*Microsecond {
		t.Fatalf("granted at %v, before the arrival", granted)
	}
	if Duration(granted)%quantum != 0 {
		t.Fatalf("granted at %v, not on a %v tick", granted, quantum)
	}
	if granted-1000*Microsecond >= Time(quantum) {
		t.Fatalf("granted at %v, more than one quantum past the 1000us arrival", granted)
	}
}

// TestPlaybackRejectsBadBand pins the same must-not-pass-silently posture
// Submit has: an out-of-range band is a scheduling bug, not data.
func TestPlaybackRejectsBadBand(t *testing.T) {
	eng := &Engine{}
	a := NewAdmission(eng, 3, 0, 0)
	defer func() {
		if recover() == nil {
			t.Fatal("Playback accepted an out-of-range band")
		}
	}()
	a.Playback([]Arrival{{At: 0, Key: "x", Band: 3, Fn: func(Time) {}}})
}

// TestPlaybackMaxQueuedExcludesImmediateGrants pins the high-water mark
// semantics: arrivals admitted in their own arrival pass never count as
// queued, while genuinely blocked arrivals do.
func TestPlaybackMaxQueuedExcludesImmediateGrants(t *testing.T) {
	eng := &Engine{}
	a := NewAdmission(eng, 3, 2, 0)
	var tks []*Ticket
	tks = a.Playback([]Arrival{
		{At: 0, Key: "a", Band: 1, Fn: func(g Time) { eng.At(g+100, func(now Time) { a.Release(tks[0], now) }) }},
		{At: 0, Key: "b", Band: 1, Fn: func(g Time) { eng.At(g+100, func(now Time) { a.Release(tks[1], now) }) }},
		{At: 10, Key: "c", Band: 1, Fn: func(Time) {}},
	})
	eng.Run()
	if mq := a.MaxQueued(); mq != 1 {
		t.Fatalf("max queued = %d, want 1 (only the blocked third arrival)", mq)
	}
}
