package sim

import (
	"container/heap"
	"sync"
	"sync/atomic"
)

// ShardedEngine is the conservative parallel form of Engine: N per-shard
// event heaps plus one cross-shard heap, with shard events executed by
// parallel workers and cross-shard events executed on the coordinator (the
// goroutine inside Run). It is drop-in for programs written against
// Backbone and produces bit-identical schedules to the serial Engine.
//
// # Execution model
//
// The coordinator repeatedly pops the globally minimal pending event by
// (time, seq) across every heap — exactly the serial engine's total
// order. A shard event is not run inline: it is appended to its shard's
// worker FIFO and the coordinator moves on, so independent shard streams
// overlap on real CPUs. A cross-shard event runs on the coordinator
// itself; events scheduled with At first wait for every dispatched shard
// event to complete (the conservative barrier — the event's timestamp is
// the safe horizon, since no pending shard event can precede it in the
// total order), while AtOverlap events skip the barrier for callers that
// synchronize with shard work through their own channels.
//
// # Why the barrier is sound
//
// The coordinator dispatches in global (time, seq) order, so when a cross
// event at time T pops, every shard event with (time, seq) below it has
// already been handed to its worker FIFO; the fence merely waits for those
// FIFOs to drain. Shard state is only touched by shard events (channels
// are share-nothing at every layer), so after the fence the cross event
// observes exactly the state the serial engine would have produced.
//
// # Contract
//
// All engine methods — At, AtShard, AtOverlap, After, Cancel, Now — are
// coordinator-only: call them before Run or from inside cross-shard event
// callbacks, never from a shard event callback. Shard callbacks receive
// their event time as an argument and must communicate through their own
// data structures (the race detector catches violations: worker-side
// scheduling races on the heaps). This is what makes seq assignment — and
// therefore the whole schedule — deterministic and identical to the
// serial engine's.
//
// Shard events mapped to the same worker (worker = shard % workers) run
// in dispatch order, so a single shard's events always execute in engine
// order even when shards outnumber workers.
type ShardedEngine struct {
	now    Time
	nextID int
	ran    int64
	pool   eventPool

	cross  eventHeap
	shards []eventHeap
	// shardPending counts events waiting in shard heaps. Most events in a
	// typical run are cross-shard, so when it is zero the scheduling loop
	// skips scanning every shard heap.
	shardPending int

	nw      int
	workers []*shardWorker // live only inside Run/RunUntil
	sent    []int64        // events dispatched per worker (coordinator-owned)
}

var _ Backbone = (*ShardedEngine)(nil)

// shardJob is one dispatched shard event: the callback plus the event
// time the coordinator popped it at (shard callbacks must use this, not
// Now, which may have advanced past them).
type shardJob struct {
	at Time
	fn func(now Time)
}

// shardWorker is one worker goroutine's mailbox. The coordinator appends
// under mu; the worker drains in FIFO order and counts completions, and
// the shared cond doubles as the fence the coordinator waits on. done is
// atomic so an already-satisfied fence — the common case for admission
// events, whose prepare work drained long before — is a single load with
// no lock traffic; the worker still broadcasts under mu, which is what
// makes the fence's check-then-wait race-free.
type shardWorker struct {
	mu     sync.Mutex
	cond   *sync.Cond
	queue  []shardJob
	head   int
	done   atomic.Int64
	closed bool
}

// NewShardedEngine builds an engine with the given shard count whose
// shard events execute on up to workers parallel goroutines (clamped to
// the shard count; at least one). Workers are started by Run and joined
// before it returns, so an idle ShardedEngine holds no goroutines.
func NewShardedEngine(shards, workers int) *ShardedEngine {
	if shards < 1 {
		panic("sim: ShardedEngine needs at least one shard")
	}
	if workers < 1 {
		workers = 1
	}
	if workers > shards {
		workers = shards
	}
	return &ShardedEngine{
		shards: make([]eventHeap, shards),
		nw:     workers,
	}
}

// Now returns the current simulated time. Coordinator-only.
func (e *ShardedEngine) Now() Time { return e.now }

// Shards reports the number of event shards.
func (e *ShardedEngine) Shards() int { return len(e.shards) }

// Workers reports the parallel worker count shard events execute on.
func (e *ShardedEngine) Workers() int { return e.nw }

// Processed reports how many events have been executed or dispatched.
func (e *ShardedEngine) Processed() int64 { return e.ran }

// Pending reports how many events are waiting across all heaps. Events
// already handed to a worker no longer count, matching the serial engine
// (an event leaves Pending the moment the loop commits to running it).
func (e *ShardedEngine) Pending() int {
	n := len(e.cross)
	for i := range e.shards {
		n += len(e.shards[i])
	}
	return n
}

// At schedules a fenced cross-shard event: before fn runs, every shard
// event dispatched so far has completed. This is the safe default for
// callbacks that read or write state shard events also touch (admission
// grants, arrival injection, run finalization).
func (e *ShardedEngine) At(at Time, fn func(now Time)) *Event {
	return e.schedule(at, fn, crossFenced)
}

// AtShard schedules fn on the given shard's event stream; it will execute
// on that shard's worker, FIFO with every other event of the shard.
func (e *ShardedEngine) AtShard(shard int, at Time, fn func(now Time)) *Event {
	if shard < 0 || shard >= len(e.shards) {
		panic("sim: shard out of range")
	}
	return e.schedule(at, fn, shard)
}

// AtOverlap schedules an unfenced cross-shard event: it runs on the
// coordinator in global order but does not wait for in-flight shard work.
// Use it for hot-path events that synchronize with shard events through
// their own channels and touch no shard-owned state.
func (e *ShardedEngine) AtOverlap(at Time, fn func(now Time)) *Event {
	return e.schedule(at, fn, crossOverlap)
}

// After schedules a fenced cross-shard event delay nanoseconds from now.
func (e *ShardedEngine) After(delay Duration, fn func(now Time)) *Event {
	return e.At(e.now+delay, fn)
}

func (e *ShardedEngine) schedule(at Time, fn func(now Time), shard int) *Event {
	if at < e.now {
		panic("sim: event scheduled in the past")
	}
	ev := e.pool.get(at, fn, e.nextID, shard)
	e.nextID++
	if shard >= 0 {
		e.shardPending++
	}
	heap.Push(e.heapFor(shard), ev)
	return ev
}

func (e *ShardedEngine) heapFor(shard int) *eventHeap {
	if shard >= 0 {
		return &e.shards[shard]
	}
	return &e.cross
}

// Cancel removes a scheduled event. It is a no-op if the event already ran
// or was dispatched to a worker — dispatch is the sharded engine's point
// of no return, exactly where the serial engine runs the callback.
// Coordinator-only.
func (e *ShardedEngine) Cancel(ev *Event) {
	if ev == nil || ev.idx < 0 || ev.shard >= len(e.shards) {
		return
	}
	h := e.heapFor(ev.shard)
	if ev.idx >= len(*h) || (*h)[ev.idx] != ev {
		return
	}
	if ev.shard >= 0 {
		e.shardPending--
	}
	heap.Remove(h, ev.idx)
	ev.idx = -1
	e.pool.put(ev)
}

// peekMin returns the globally minimal pending event's heap, or nil when
// every heap is empty. Ties are impossible (seq is unique), so the choice
// is deterministic. The shardPending fast path keeps the per-step cost at
// one heap top when no shard events are waiting — the common case, since
// shard events are dispatched almost as soon as they are scheduled.
func (e *ShardedEngine) peekMin() *eventHeap {
	var best *eventHeap
	if len(e.cross) > 0 {
		best = &e.cross
	}
	if e.shardPending == 0 {
		return best
	}
	for i := range e.shards {
		h := &e.shards[i]
		if len(*h) > 0 && (best == nil || eventBefore((*h)[0], (*best)[0])) {
			best = h
		}
	}
	return best
}

// step pops and executes (or dispatches) the globally minimal event.
func (e *ShardedEngine) step() bool {
	h := e.peekMin()
	if h == nil {
		return false
	}
	ev := heap.Pop(h).(*Event)
	ev.idx = -1
	e.now = ev.At
	e.ran++
	if ev.shard >= 0 {
		e.shardPending--
		e.dispatch(ev)
		return true
	}
	fenced := ev.shard == crossFenced
	fn, at := ev.Fn, ev.At
	e.pool.put(ev)
	if fenced {
		e.FenceAll()
	}
	fn(at)
	return true
}

// dispatch hands a shard event to its worker's FIFO and recycles the
// Event struct (only the coordinator ever touches Event structs).
func (e *ShardedEngine) dispatch(ev *Event) {
	wi := ev.shard % e.nw
	w := e.workers[wi]
	job := shardJob{at: ev.At, fn: ev.Fn}
	e.pool.put(ev)
	e.sent[wi]++
	w.mu.Lock()
	w.queue = append(w.queue, job)
	w.mu.Unlock()
	w.cond.Broadcast()
}

// Fence blocks until every event dispatched so far to the given shard's
// worker has completed. Coordinator-only, valid only while running.
func (e *ShardedEngine) Fence(shard int) {
	if e.workers == nil || shard < 0 || shard >= len(e.shards) {
		return
	}
	e.fenceWorker(shard % e.nw)
}

// FenceAll blocks until every dispatched shard event has completed.
func (e *ShardedEngine) FenceAll() {
	if e.workers == nil {
		return
	}
	for wi := range e.workers {
		e.fenceWorker(wi)
	}
}

func (e *ShardedEngine) fenceWorker(wi int) {
	w := e.workers[wi]
	target := e.sent[wi]
	if w.done.Load() >= target {
		return
	}
	// The worker only broadcasts while holding mu, so a completion cannot
	// slip between the re-check below and Wait's registration.
	w.mu.Lock()
	for w.done.Load() < target {
		w.cond.Wait()
	}
	w.mu.Unlock()
}

func (w *shardWorker) loop(wg *sync.WaitGroup) {
	defer wg.Done()
	w.mu.Lock()
	for {
		for w.head == len(w.queue) && !w.closed {
			w.cond.Wait()
		}
		if w.head == len(w.queue) {
			w.mu.Unlock()
			return
		}
		job := w.queue[w.head]
		w.queue[w.head] = shardJob{} // release the closure
		w.head++
		if w.head == len(w.queue) {
			w.queue = w.queue[:0]
			w.head = 0
		}
		w.mu.Unlock()
		job.fn(job.at)
		w.done.Add(1)
		w.mu.Lock()
		w.cond.Broadcast()
	}
}

// startWorkers spins up the worker pool for one run.
func (e *ShardedEngine) startWorkers() *sync.WaitGroup {
	e.workers = make([]*shardWorker, e.nw)
	e.sent = make([]int64, e.nw)
	wg := &sync.WaitGroup{}
	wg.Add(e.nw)
	for i := range e.workers {
		w := &shardWorker{}
		w.cond = sync.NewCond(&w.mu)
		e.workers[i] = w
		go w.loop(wg)
	}
	return wg
}

// stopWorkers drains in-flight shard work, shuts the pool down, and joins
// every worker, so no goroutine outlives the run.
func (e *ShardedEngine) stopWorkers(wg *sync.WaitGroup) {
	e.FenceAll()
	for _, w := range e.workers {
		w.mu.Lock()
		w.closed = true
		w.mu.Unlock()
		w.cond.Broadcast()
	}
	wg.Wait()
	e.workers = nil
	e.sent = nil
}

// Run processes events until every heap drains, then waits for all shard
// work to complete and returns the final time.
func (e *ShardedEngine) Run() Time {
	wg := e.startWorkers()
	for e.step() {
	}
	e.stopWorkers(wg)
	return e.now
}

// RunUntil processes events with At <= deadline (completing all dispatched
// shard work before returning), then sets the clock to the deadline if it
// has not passed it already.
func (e *ShardedEngine) RunUntil(deadline Time) Time {
	wg := e.startWorkers()
	for {
		h := e.peekMin()
		if h == nil || (*h)[0].At > deadline {
			break
		}
		e.step()
	}
	e.stopWorkers(wg)
	if e.now < deadline {
		e.now = deadline
	}
	return e.now
}

// Reset returns the engine to time zero with empty heaps in O(1), keeping
// heap capacity and the event free list. Pending events are dropped. Must
// not be called while a run is in progress.
func (e *ShardedEngine) Reset() {
	e.now = 0
	e.nextID = 0
	e.ran = 0
	e.shardPending = 0
	e.cross = e.cross[:0]
	for i := range e.shards {
		e.shards[i] = e.shards[i][:0]
	}
}
