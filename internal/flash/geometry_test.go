package flash

import (
	"testing"
	"testing/quick"
)

func testGeometry() Geometry {
	return Geometry{
		Channels:        8,
		ChipsPerChannel: 4,
		DiesPerChip:     4,
		PlanesPerDie:    2,
		BlocksPerPlane:  16,
		PagesPerBlock:   32,
		PageSize:        4096,
	}
}

func TestGeometryCounts(t *testing.T) {
	g := testGeometry()
	if g.Dies() != 128 {
		t.Fatalf("dies = %d, want 128", g.Dies())
	}
	if g.Planes() != 256 {
		t.Fatalf("planes = %d, want 256", g.Planes())
	}
	if g.TotalBlocks() != 256*16 {
		t.Fatalf("blocks = %d", g.TotalBlocks())
	}
	if g.TotalPages() != 256*16*32 {
		t.Fatalf("pages = %d", g.TotalPages())
	}
	if g.Capacity() != g.TotalPages()*4096 {
		t.Fatalf("capacity = %d", g.Capacity())
	}
}

func TestComposeDecomposeRoundTrip(t *testing.T) {
	g := testGeometry()
	for _, p := range []PPA{0, 1, 31, 32, 511, 512, PPA(g.TotalPages() - 1)} {
		a := g.Decompose(p)
		if got := g.Compose(a); got != p {
			t.Fatalf("roundtrip %d -> %+v -> %d", p, a, got)
		}
	}
}

func TestDecomposeRanges(t *testing.T) {
	g := testGeometry()
	for p := PPA(0); int64(p) < g.TotalPages(); p += 977 { // stride over the space
		a := g.Decompose(p)
		if a.Channel < 0 || a.Channel >= g.Channels ||
			a.Chip < 0 || a.Chip >= g.ChipsPerChannel ||
			a.Die < 0 || a.Die >= g.DiesPerChip ||
			a.Plane < 0 || a.Plane >= g.PlanesPerDie ||
			a.Block < 0 || a.Block >= g.BlocksPerPlane ||
			a.Page < 0 || a.Page >= g.PagesPerBlock {
			t.Fatalf("decompose %d out of range: %+v", p, a)
		}
	}
}

func TestRoundTripProperty(t *testing.T) {
	g := testGeometry()
	n := g.TotalPages()
	f := func(raw uint32) bool {
		p := PPA(int64(raw) % n)
		return g.Compose(g.Decompose(p)) == p
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestBlockOfAndFirstPage(t *testing.T) {
	g := testGeometry()
	p := PPA(3*32 + 7) // block 3, page 7
	if b := g.BlockOf(p); b != 3 {
		t.Fatalf("BlockOf = %d, want 3", b)
	}
	if fp := g.FirstPage(3); fp != 96 {
		t.Fatalf("FirstPage = %d, want 96", fp)
	}
}

func TestValidate(t *testing.T) {
	g := testGeometry()
	if err := g.Validate(); err != nil {
		t.Fatalf("valid geometry rejected: %v", err)
	}
	g.Channels = 0
	if err := g.Validate(); err == nil {
		t.Fatal("zero channels accepted")
	}
}

func TestDieIndexDistinctPerDie(t *testing.T) {
	g := testGeometry()
	seen := map[int]bool{}
	// First page of each plane of each die should map to a stable die index.
	pagesPerPlane := g.PagesPerPlane()
	for plane := int64(0); plane < int64(g.Planes()); plane++ {
		idx := g.DieIndex(PPA(plane * pagesPerPlane))
		if idx < 0 || idx >= g.Dies() {
			t.Fatalf("die index %d out of range", idx)
		}
		seen[idx] = true
	}
	if len(seen) != g.Dies() {
		t.Fatalf("found %d distinct dies, want %d", len(seen), g.Dies())
	}
}
