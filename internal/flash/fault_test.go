package flash

import (
	"errors"
	"testing"

	"iceclave/internal/sim"
)

// scriptInjector fails specific (kind, ordinal) pairs and records the
// ordinal sequences it observes.
type scriptInjector struct {
	failRead    map[uint64]error
	failProgram map[uint64]error
	failErase   map[uint64]error
	readNs      []uint64
}

func (s *scriptInjector) Read(at sim.Time, ch, die int, n uint64) error {
	s.readNs = append(s.readNs, n)
	return s.failRead[n]
}
func (s *scriptInjector) Program(at sim.Time, ch, die int, n uint64) error {
	return s.failProgram[n]
}
func (s *scriptInjector) Erase(at sim.Time, ch, die int, n uint64) error {
	return s.failErase[n]
}

func TestInjectorTransientRead(t *testing.T) {
	d := testDevice(t)
	if _, err := d.Program(0, 3, nil); err != nil {
		t.Fatal(err)
	}
	inj := &scriptInjector{failRead: map[uint64]error{0: ErrTransientRead}}
	d.SetInjector(inj)
	done, data, err := d.Read(1000, 3)
	if !errors.Is(err, ErrTransientRead) {
		t.Fatalf("err = %v, want ErrTransientRead", err)
	}
	if data != nil {
		t.Fatal("failed read returned data")
	}
	// The array read ran: the die is charged tRD before the failure is
	// known, but nothing crossed the bus.
	if want := sim.Time(1000) + sim.Time(d.Timing().ReadLatency); done != want {
		t.Fatalf("fail done = %d, want %d", done, want)
	}
	// The retry (next ordinal) succeeds and the page data is intact.
	if _, _, err := d.Read(done, 3); err != nil {
		t.Fatalf("retry failed: %v", err)
	}
	if got := d.Snapshot().ReadFaults; got != 1 {
		t.Fatalf("ReadFaults = %d, want 1", got)
	}
}

func TestInjectorProgramFailLeavesPageFree(t *testing.T) {
	d := testDevice(t)
	d.SetInjector(&scriptInjector{failProgram: map[uint64]error{0: ErrProgramFail}})
	done, err := d.Program(0, 7, []byte{1, 2, 3})
	if !errors.Is(err, ErrProgramFail) {
		t.Fatalf("err = %v, want ErrProgramFail", err)
	}
	// Full transfer + tPROG elapse before the status read reports failure.
	if done <= 0 {
		t.Fatal("failed program charged no time")
	}
	// The page stays free: re-programming it succeeds without an erase.
	if _, err := d.Program(done, 7, []byte{1, 2, 3}); err != nil {
		t.Fatalf("re-program after failure rejected: %v", err)
	}
	if got := d.Snapshot().ProgramFaults; got != 1 {
		t.Fatalf("ProgramFaults = %d, want 1", got)
	}
}

func TestInjectorDieDeadFailsFast(t *testing.T) {
	d := testDevice(t)
	if _, err := d.Program(0, 0, nil); err != nil {
		t.Fatal(err)
	}
	d.SetInjector(&scriptInjector{
		failRead:    map[uint64]error{0: ErrDieDead},
		failProgram: map[uint64]error{0: ErrDieDead},
		failErase:   map[uint64]error{0: ErrDieDead},
	})
	if done, _, err := d.Read(500, 0); !errors.Is(err, ErrDieDead) || done != 500 {
		t.Fatalf("read: done=%d err=%v, want fast-fail ErrDieDead", done, err)
	}
	if done, err := d.Program(500, 1, nil); !errors.Is(err, ErrDieDead) || done != 500 {
		t.Fatalf("program: done=%d err=%v, want fast-fail ErrDieDead", done, err)
	}
	if err := d.Invalidate(0); err != nil {
		t.Fatal(err)
	}
	if done, err := d.Erase(500, 0); !errors.Is(err, ErrDieDead) || done != 500 {
		t.Fatalf("erase: done=%d err=%v, want fast-fail ErrDieDead", done, err)
	}
}

// SetInjector and Reset rewind the per-channel fault ordinals, so a plan
// replays the same sequence on a reused device as on a fresh one.
func TestInjectorOrdinalsRewind(t *testing.T) {
	d := testDevice(t)
	for p := PPA(0); p < 4; p++ {
		if _, err := d.Program(0, p, nil); err != nil {
			t.Fatal(err)
		}
	}
	inj := &scriptInjector{}
	d.SetInjector(inj)
	for p := PPA(0); p < 4; p++ {
		if _, _, err := d.Read(0, p); err != nil {
			t.Fatal(err)
		}
	}
	want := []uint64{0, 1, 2, 3}
	for i, n := range want {
		if inj.readNs[i] != n {
			t.Fatalf("first pass ordinals = %v, want %v", inj.readNs, want)
		}
	}
	// Reattaching rewinds to zero.
	d.SetInjector(inj)
	inj.readNs = nil
	if _, _, err := d.Read(0, 0); err != nil {
		t.Fatal(err)
	}
	if len(inj.readNs) != 1 || inj.readNs[0] != 0 {
		t.Fatalf("ordinals after SetInjector = %v, want [0]", inj.readNs)
	}
}

// A detached injector restores the untouched fast path: the faultOps
// counters stop advancing and no verdict is consulted.
func TestInjectorDetach(t *testing.T) {
	d := testDevice(t)
	if _, err := d.Program(0, 2, nil); err != nil {
		t.Fatal(err)
	}
	d.SetInjector(&scriptInjector{failRead: map[uint64]error{0: ErrTransientRead}})
	d.SetInjector(nil)
	if _, _, err := d.Read(0, 2); err != nil {
		t.Fatalf("read with detached injector failed: %v", err)
	}
	if got := d.Snapshot().ReadFaults; got != 0 {
		t.Fatalf("ReadFaults = %d, want 0", got)
	}
}
