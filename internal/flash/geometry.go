// Package flash models the NAND subsystem of a solid-state drive: the
// channel/chip/die/plane/block/page hierarchy, the erase-before-write state
// machine, command timing (read, program, erase), and per-channel bus
// bandwidth. It is the bottom substrate of the IceClave simulator, standing
// in for SimpleSSD's device model (paper §5, Table 3).
//
// Concurrency contract: Device is safe for concurrent use and is the leaf
// of the SSD lock hierarchy — it takes no other lock, so any layer may
// call into it while holding its own (the FTL's channel shards and
// mapping stripes do exactly that). The device's functional state is
// sharded by channel: every operation locks only the channel its PPA or
// BlockID resolves to, so operations on different channels share no lock
// (stats are lock-free atomics read via Snapshot). Geometry and Timing
// are plain values.
package flash

import "fmt"

// PPA is a physical page address: the linear index of a page across the
// whole device, in channel-major order. PPAs fit in 32 bits for the scaled
// device sizes the simulator uses, matching the 32-bit PPA the IceClave
// stream cipher engine folds into its IV.
type PPA uint32

// InvalidPPA is a sentinel for "no physical page".
const InvalidPPA = ^PPA(0)

// Geometry describes the physical organization of the flash array. The
// paper's device (Table 3) is 8 channels x 4 chips x 4 dies x 2 planes x
// 2048 blocks x 512 pages x 4 KB = 1 TB; experiments typically scale
// BlocksPerPlane down to keep simulations fast while preserving ratios.
type Geometry struct {
	Channels        int
	ChipsPerChannel int
	DiesPerChip     int
	PlanesPerDie    int
	BlocksPerPlane  int
	PagesPerBlock   int
	PageSize        int // bytes
}

// Validate reports an error if any dimension is non-positive.
func (g Geometry) Validate() error {
	dims := []struct {
		name string
		v    int
	}{
		{"Channels", g.Channels},
		{"ChipsPerChannel", g.ChipsPerChannel},
		{"DiesPerChip", g.DiesPerChip},
		{"PlanesPerDie", g.PlanesPerDie},
		{"BlocksPerPlane", g.BlocksPerPlane},
		{"PagesPerBlock", g.PagesPerBlock},
		{"PageSize", g.PageSize},
	}
	for _, d := range dims {
		if d.v <= 0 {
			return fmt.Errorf("flash: geometry %s = %d, must be positive", d.name, d.v)
		}
	}
	if g.TotalPages() > int64(InvalidPPA) {
		return fmt.Errorf("flash: geometry has %d pages, exceeding the 32-bit PPA space", g.TotalPages())
	}
	return nil
}

// Dies returns the total number of dies (the unit of command parallelism).
func (g Geometry) Dies() int { return g.Channels * g.ChipsPerChannel * g.DiesPerChip }

// Planes returns the total number of planes.
func (g Geometry) Planes() int { return g.Dies() * g.PlanesPerDie }

// TotalBlocks returns the total number of erase blocks.
func (g Geometry) TotalBlocks() int64 { return int64(g.Planes()) * int64(g.BlocksPerPlane) }

// TotalPages returns the total number of flash pages.
func (g Geometry) TotalPages() int64 { return g.TotalBlocks() * int64(g.PagesPerBlock) }

// Capacity returns the raw capacity in bytes.
func (g Geometry) Capacity() int64 { return g.TotalPages() * int64(g.PageSize) }

// PagesPerPlane returns the number of pages in one plane.
func (g Geometry) PagesPerPlane() int64 { return int64(g.BlocksPerPlane) * int64(g.PagesPerBlock) }

// DiesPerChannel returns the number of dies behind one channel.
func (g Geometry) DiesPerChannel() int { return g.ChipsPerChannel * g.DiesPerChip }

// PagesPerChannel returns the number of pages behind one channel. The
// linear PPA layout is channel-major, so channel ch owns the contiguous
// PPA range [ch*PagesPerChannel, (ch+1)*PagesPerChannel).
func (g Geometry) PagesPerChannel() int64 {
	return int64(g.DiesPerChannel()) * int64(g.PlanesPerDie) * g.PagesPerPlane()
}

// BlocksPerChannel returns the number of erase blocks behind one channel;
// like pages, a channel's BlockIDs are one contiguous range.
func (g Geometry) BlocksPerChannel() int64 {
	return g.PagesPerChannel() / int64(g.PagesPerBlock)
}

// Addr is a decomposed physical page address.
type Addr struct {
	Channel, Chip, Die, Plane, Block, Page int
}

// Decompose splits a PPA into its hierarchical coordinates. The linear
// layout is channel-major: consecutive PPAs within a plane walk pages then
// blocks; planes, dies, chips, and channels are the outer dimensions. The
// FTL stripes writes across channels itself, so the codec here only needs
// to be a bijection.
func (g Geometry) Decompose(p PPA) Addr {
	v := int64(p)
	pagesPerPlane := g.PagesPerPlane()
	plane := v / pagesPerPlane
	rem := v % pagesPerPlane
	a := Addr{
		Block: int(rem / int64(g.PagesPerBlock)),
		Page:  int(rem % int64(g.PagesPerBlock)),
	}
	a.Plane = int(plane % int64(g.PlanesPerDie))
	plane /= int64(g.PlanesPerDie)
	a.Die = int(plane % int64(g.DiesPerChip))
	plane /= int64(g.DiesPerChip)
	a.Chip = int(plane % int64(g.ChipsPerChannel))
	a.Channel = int(plane / int64(g.ChipsPerChannel))
	return a
}

// Compose is the inverse of Decompose.
func (g Geometry) Compose(a Addr) PPA {
	plane := ((int64(a.Channel)*int64(g.ChipsPerChannel)+int64(a.Chip))*int64(g.DiesPerChip)+int64(a.Die))*int64(g.PlanesPerDie) + int64(a.Plane)
	return PPA(plane*g.PagesPerPlane() + int64(a.Block)*int64(g.PagesPerBlock) + int64(a.Page))
}

// BlockID is the linear index of an erase block across the device.
type BlockID int64

// BlockOf returns the erase block containing p.
func (g Geometry) BlockOf(p PPA) BlockID {
	return BlockID(int64(p) / int64(g.PagesPerBlock))
}

// FirstPage returns the PPA of page 0 of block b.
func (g Geometry) FirstPage(b BlockID) PPA {
	return PPA(int64(b) * int64(g.PagesPerBlock))
}

// ChannelOf returns the channel that p's die hangs off. Channel is the
// outermost dimension of the linear layout, so this is a single division
// (equal to Decompose(p).Channel, without materializing the full Addr).
func (g Geometry) ChannelOf(p PPA) int { return int(int64(p) / g.PagesPerChannel()) }

// DieIndex returns the linear die index of p (for die-busy accounting).
func (g Geometry) DieIndex(p PPA) int {
	a := g.Decompose(p)
	return (a.Channel*g.ChipsPerChannel+a.Chip)*g.DiesPerChip + a.Die
}
