package flash

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"

	"iceclave/internal/sim"
)

// Typed fault sentinels surfaced by the injection seam. Callers match
// them with errors.Is through any number of %w wraps.
var (
	// ErrTransientRead is a retryable read failure (e.g. a read-disturb
	// ECC miss). The page data is intact; a retry may succeed.
	ErrTransientRead = errors.New("flash: transient read error")
	// ErrProgramFail is a permanent program failure: the target block is
	// worn out and must be retired by the FTL.
	ErrProgramFail = errors.New("flash: program failure")
	// ErrDieDead is a permanent die failure: every operation on the die
	// fails, forever. The FTL must stop allocating from it.
	ErrDieDead = errors.New("flash: die dead")
)

// Injector is the fault-injection seam. The device consults it before
// performing each read/program/erase, passing the arrival time, the
// channel and channel-local die of the target, and the per-channel
// ordinal n of this operation kind (0, 1, 2, ... in channel-lock
// acquisition order — deterministic on the replay path, where all
// device calls for a channel execute in (time, seq) order). A non-nil
// error aborts the operation; the device wraps it with the page/block
// context and charges the appropriate partial timing.
//
// Implementations must be pure functions of their arguments (no mutable
// state) so that injection is reproducible across worker counts;
// internal/fault.Injector is the canonical implementation.
type Injector interface {
	Read(at sim.Time, ch, die int, n uint64) error
	Program(at sim.Time, ch, die int, n uint64) error
	Erase(at sim.Time, ch, die int, n uint64) error
}

// Per-channel fault-ordinal slots, one per operation kind.
const (
	faultOpRead = iota
	faultOpProgram
	faultOpErase
	numFaultOps
)

// Timing holds the NAND command latencies and channel bandwidth. Defaults
// follow Table 3 of the paper: tRD = 50 µs, tPROG = 300 µs, 600 MB/s per
// channel. tERS uses a typical 3 ms block-erase figure (the paper does not
// state it; GC cost is dominated by page movement for the read-intensive
// workloads evaluated).
type Timing struct {
	ReadLatency      sim.Duration // array read (tRD), per page
	ProgramLatency   sim.Duration // array program (tPROG), per page
	EraseLatency     sim.Duration // block erase (tERS)
	ChannelBandwidth float64      // bytes/sec of each channel bus
}

// DefaultTiming returns the Table 3 configuration.
func DefaultTiming() Timing {
	return Timing{
		ReadLatency:      50 * sim.Microsecond,
		ProgramLatency:   300 * sim.Microsecond,
		EraseLatency:     3 * sim.Millisecond,
		ChannelBandwidth: 600 * (1 << 20), // 600 MB/s
	}
}

// PageState tracks the erase-before-write lifecycle of a flash page.
type PageState uint8

// Page lifecycle states.
const (
	PageFree    PageState = iota // erased, programmable
	PageValid                    // programmed, holds live data
	PageInvalid                  // programmed, data superseded; needs erase
)

// Stats is a snapshot of the device activity counters, taken with
// Snapshot().
type Stats struct {
	Reads        int64
	Programs     int64
	Erases       int64
	BytesRead    int64
	BytesWritten int64
	// ReadFaults and ProgramFaults count operations aborted by the
	// injection seam (successful operations are counted separately).
	ReadFaults    int64
	ProgramFaults int64
}

// counters is the internal, atomically updated form of Stats: hot-path
// accounting never extends a channel's critical section, and readers never
// take any lock (each counter is individually atomic and monotonic; the
// snapshot is not a cross-counter barrier — the same contract as
// ftl.Stats).
type counters struct {
	reads         atomic.Int64
	programs      atomic.Int64
	erases        atomic.Int64
	bytesRead     atomic.Int64
	bytesWritten  atomic.Int64
	readFaults    atomic.Int64
	programFaults atomic.Int64
}

// channelState is one channel's functional and timing shard: the page
// states, erase counts, and payloads of the channel's contiguous PPA
// range, plus the channel's die command units and bus server, all under
// the channel's own lock. Operations on different channels share no lock
// and no sim.Server, so a many-channel write storm from N concurrent
// tenants scales with cores instead of serializing on a device-wide
// mutex.
type channelState struct {
	mu         sync.Mutex
	state      []PageState    // channel-local page index
	eraseCount []int32        // channel-local block index
	data       map[PPA][]byte // sparse payload store, keyed by global PPA

	// touched marks the channel-local blocks whose page states or erase
	// counts have diverged from factory-fresh (any program or erase);
	// touchedList holds their indices in first-touch order. Reset walks
	// the list instead of the whole channel, so resetting a lightly-used
	// device costs O(blocks written), not O(geometry).
	touched     []bool
	touchedList []int64

	// faultOps counts this channel's operations per kind, feeding the
	// injector's ordinal argument. Guarded by cs.mu; zeroed when the
	// injector is (re)attached and on Reset, so a given plan sees the
	// same ordinals on fresh and pooled stacks.
	faultOps [numFaultOps]uint64

	dies  []*sim.Server // array reads, one unit per die
	diesW []*sim.Server // programs/erases; modern controllers suspend
	// in-flight programs for reads, so the read path does not queue
	// behind the much slower program operations
	bus *sim.Server // bus serialization for this channel
}

// Device is a simulated NAND flash array: functional page storage plus a
// timing model with per-die command units and per-channel bus bandwidth.
// All operations take an arrival time and return a completion time, so
// callers compose the device into larger discrete-event simulations.
//
// Device is safe for concurrent use and its state is sharded by channel:
// each operation resolves its channel from the PPA (or BlockID) and takes
// only that channel's lock, so N in-storage TEEs pinned to different
// channels issue commands with no mutual exclusion between them at all
// (TestCrossChannelNoSharedLock pins this, mirroring the FTL's
// cross-channel contract). Virtual-time ordering under concurrency
// follows lock-acquisition order within a channel; operations on
// different channels touch disjoint simulated resources (dies, buses,
// pages) and are causally independent. Stats are atomic counters read
// through Snapshot without any lock.
type Device struct {
	geo    Geometry
	timing Timing

	chans []channelState

	pagesPerChannel  int64
	blocksPerChannel int64
	diesPerChannel   int
	pagesPerDie      int64
	pagesPerBlock    int64

	// inj is the optional fault-injection seam; nil means every
	// operation succeeds (the default, and the bit-identical baseline).
	// Written only by SetInjector on a quiesced device, read on the
	// operation paths under the channel lock acquired after the write.
	inj Injector

	stats counters
}

// NewDevice builds a device with the given geometry and timing. It returns
// an error if the geometry is invalid.
func NewDevice(geo Geometry, timing Timing) (*Device, error) {
	if err := geo.Validate(); err != nil {
		return nil, err
	}
	if timing.ChannelBandwidth <= 0 {
		return nil, fmt.Errorf("flash: channel bandwidth must be positive, got %v", timing.ChannelBandwidth)
	}
	d := &Device{
		geo:              geo,
		timing:           timing,
		chans:            make([]channelState, geo.Channels),
		pagesPerChannel:  geo.PagesPerChannel(),
		blocksPerChannel: geo.BlocksPerChannel(),
		diesPerChannel:   geo.DiesPerChannel(),
		pagesPerDie:      int64(geo.PlanesPerDie) * geo.PagesPerPlane(),
		pagesPerBlock:    int64(geo.PagesPerBlock),
	}
	for ch := range d.chans {
		cs := &d.chans[ch]
		cs.state = make([]PageState, d.pagesPerChannel)
		cs.eraseCount = make([]int32, d.blocksPerChannel)
		cs.data = make(map[PPA][]byte)
		cs.touched = make([]bool, d.blocksPerChannel)
		cs.dies = make([]*sim.Server, d.diesPerChannel)
		cs.diesW = make([]*sim.Server, d.diesPerChannel)
		for i := range cs.dies {
			cs.dies[i] = sim.NewServer(fmt.Sprintf("c%dd%d", ch, i), 1)
			cs.diesW[i] = sim.NewServer(fmt.Sprintf("c%dd%dw", ch, i), 1)
		}
		cs.bus = sim.NewServer(fmt.Sprintf("chan%d", ch), 1)
	}
	return d, nil
}

// Geometry returns the device geometry.
func (d *Device) Geometry() Geometry { return d.geo }

// Affinity returns the event-shard tag for operations on p: its channel
// index. Die and bus servers, page state, and timing reservations are all
// channel-local (per-channel shards since PR 4), so two operations with
// different Affinity values share no device state and their event streams
// may execute on different workers of a sharded engine.
func (d *Device) Affinity(p PPA) int { return d.geo.ChannelOf(p) }

// Timing returns the device timing parameters.
func (d *Device) Timing() Timing { return d.timing }

// SetInjector attaches (or, with nil, detaches) the fault-injection
// seam and rewinds every channel's fault ordinals to zero, so the same
// injector replays the same fault sequence on a pooled stack as on a
// fresh one. Like Reset, it must only be called on a quiesced device.
func (d *Device) SetInjector(inj Injector) {
	for ch := range d.chans {
		cs := &d.chans[ch]
		cs.mu.Lock()
		cs.faultOps = [numFaultOps]uint64{}
		cs.mu.Unlock()
	}
	d.inj = inj
}

// Snapshot returns the activity counters. It is the only stats accessor:
// lock-free, safe against concurrent operations on any channel.
func (d *Device) Snapshot() Stats {
	return Stats{
		Reads:         d.stats.reads.Load(),
		Programs:      d.stats.programs.Load(),
		Erases:        d.stats.erases.Load(),
		BytesRead:     d.stats.bytesRead.Load(),
		BytesWritten:  d.stats.bytesWritten.Load(),
		ReadFaults:    d.stats.readFaults.Load(),
		ProgramFaults: d.stats.programFaults.Load(),
	}
}

// markTouched records that block lb's page states or erase count have
// diverged from fresh. Caller holds cs.mu.
func (cs *channelState) markTouched(lb int64) {
	if !cs.touched[lb] {
		cs.touched[lb] = true
		cs.touchedList = append(cs.touchedList, lb)
	}
}

// shardOf resolves p's channel shard and channel-local page index.
func (d *Device) shardOf(p PPA) (*channelState, int64) {
	return &d.chans[int64(p)/d.pagesPerChannel], int64(p) % d.pagesPerChannel
}

// blockShard resolves b's channel shard and channel-local block index.
func (d *Device) blockShard(b BlockID) (*channelState, int64) {
	return &d.chans[int64(b)/d.blocksPerChannel], int64(b) % d.blocksPerChannel
}

// localDie returns the channel-local die index of the channel-local page
// lp. Dies are the next dimension inside a channel (the layout is
// channel > chip > die > plane > block > page), so this is one division —
// the hot paths never pay a full address decomposition.
func (d *Device) localDie(lp int64) int {
	return int(lp / d.pagesPerDie)
}

// State returns the lifecycle state of page p.
func (d *Device) State(p PPA) PageState {
	cs, lp := d.shardOf(p)
	cs.mu.Lock()
	defer cs.mu.Unlock()
	return cs.state[lp]
}

// EraseCount returns how many times p's block has been erased (the wear
// figure used by wear leveling).
func (d *Device) EraseCount(b BlockID) int {
	cs, lb := d.blockShard(b)
	cs.mu.Lock()
	defer cs.mu.Unlock()
	return int(cs.eraseCount[lb])
}

func (d *Device) checkPPA(p PPA) error {
	if int64(p) >= d.geo.TotalPages() {
		return fmt.Errorf("flash: PPA %d out of range (%d pages)", p, d.geo.TotalPages())
	}
	return nil
}

// transferTime is the channel-bus time for one page.
func (d *Device) transferTime() sim.Duration {
	return sim.DurationForBytes(int64(d.geo.PageSize), d.timing.ChannelBandwidth)
}

// PageTransferTime returns the channel-bus occupancy of one page — the
// short phase of a program that serializes per channel while the long
// cell-program phase overlaps across dies. Callers pinning die-pipelining
// bounds (completion < 2x tPROG) compute their budgets from this.
func (d *Device) PageTransferTime() sim.Duration { return d.transferTime() }

// Read performs a page read arriving at time at: the die is busy for tRD,
// then the page crosses the channel bus. It returns the completion time and
// the stored payload (nil if the page was never programmed with data).
// Reading a free page is a protocol error — the FTL must never map a live
// LPA to an unwritten page.
//
// With an injector attached, a read may instead fail with a wrapped
// ErrTransientRead (the array read ran — the die is charged tRD, but
// nothing crosses the bus; the returned time is when the failure is
// known and a retry may be issued) or ErrDieDead (fails fast at at).
func (d *Device) Read(at sim.Time, p PPA) (done sim.Time, data []byte, err error) {
	if err := d.checkPPA(p); err != nil {
		return at, nil, err
	}
	cs, lp := d.shardOf(p)
	cs.mu.Lock()
	defer cs.mu.Unlock()
	if cs.state[lp] == PageFree {
		return at, nil, fmt.Errorf("flash: read of free page %d", p)
	}
	die := d.localDie(lp)
	if d.inj != nil {
		n := cs.faultOps[faultOpRead]
		cs.faultOps[faultOpRead]++
		if ferr := d.inj.Read(at, int(int64(p)/d.pagesPerChannel), die, n); ferr != nil {
			d.stats.readFaults.Add(1)
			if errors.Is(ferr, ErrDieDead) {
				return at, nil, fmt.Errorf("flash: read of page %d: %w", p, ferr)
			}
			_, failDone := cs.dies[die].Acquire(at, d.timing.ReadLatency)
			return failDone, nil, fmt.Errorf("flash: read of page %d: %w", p, ferr)
		}
	}
	_, arrayDone := cs.dies[die].Acquire(at, d.timing.ReadLatency)
	_, done = cs.bus.Acquire(arrayDone, d.transferTime())
	d.stats.reads.Add(1)
	d.stats.bytesRead.Add(int64(d.geo.PageSize))
	return done, cs.data[p], nil
}

// Program writes data into page p (out-of-place write discipline: the page
// must be in the free state). The payload crosses the channel bus first,
// then the die is busy for tPROG. data may be nil for pure-timing callers;
// a non-nil payload is copied and must not exceed the page size.
func (d *Device) Program(at sim.Time, p PPA, data []byte) (done sim.Time, err error) {
	if err := d.checkPPA(p); err != nil {
		return at, err
	}
	cs, lp := d.shardOf(p)
	cs.mu.Lock()
	defer cs.mu.Unlock()
	if cs.state[lp] != PageFree {
		return at, fmt.Errorf("flash: program of non-free page %d (state %d)", p, cs.state[lp])
	}
	if len(data) > d.geo.PageSize {
		return at, fmt.Errorf("flash: payload %d bytes exceeds page size %d", len(data), d.geo.PageSize)
	}
	die := d.localDie(lp)
	if d.inj != nil {
		n := cs.faultOps[faultOpProgram]
		cs.faultOps[faultOpProgram]++
		if ferr := d.inj.Program(at, int(int64(p)/d.pagesPerChannel), die, n); ferr != nil {
			d.stats.programFaults.Add(1)
			if errors.Is(ferr, ErrDieDead) {
				return at, fmt.Errorf("flash: program of page %d: %w", p, ferr)
			}
			// A failed program still pays the full transfer + tPROG
			// before the status read reports the failure; the page
			// stays free and holds no payload.
			_, failBus := cs.bus.Acquire(at, d.transferTime())
			_, failDone := cs.diesW[die].Acquire(failBus, d.timing.ProgramLatency)
			return failDone, fmt.Errorf("flash: program of page %d: %w", p, ferr)
		}
	}
	_, busDone := cs.bus.Acquire(at, d.transferTime())
	_, done = cs.diesW[die].Acquire(busDone, d.timing.ProgramLatency)
	cs.state[lp] = PageValid
	cs.markTouched(lp / d.pagesPerBlock)
	if data != nil {
		cs.data[p] = append([]byte(nil), data...)
	}
	d.stats.programs.Add(1)
	d.stats.bytesWritten.Add(int64(d.geo.PageSize))
	return done, nil
}

// Invalidate marks a valid page as superseded. Only the FTL calls this,
// when an LPA is rewritten elsewhere.
func (d *Device) Invalidate(p PPA) error {
	if err := d.checkPPA(p); err != nil {
		return err
	}
	cs, lp := d.shardOf(p)
	cs.mu.Lock()
	defer cs.mu.Unlock()
	if cs.state[lp] != PageValid {
		return fmt.Errorf("flash: invalidate of non-valid page %d (state %d)", p, cs.state[lp])
	}
	cs.state[lp] = PageInvalid
	delete(cs.data, p)
	return nil
}

// Erase erases block b, returning every page to the free state. Erasing a
// block that still holds valid pages is a data-loss bug in the caller, so
// it is rejected.
func (d *Device) Erase(at sim.Time, b BlockID) (done sim.Time, err error) {
	if int64(b) >= d.geo.TotalBlocks() {
		return at, fmt.Errorf("flash: block %d out of range", b)
	}
	cs, lb := d.blockShard(b)
	cs.mu.Lock()
	defer cs.mu.Unlock()
	first := d.geo.FirstPage(b)
	_, lfirst := d.shardOf(first)
	for i := 0; i < d.geo.PagesPerBlock; i++ {
		if cs.state[lfirst+int64(i)] == PageValid {
			return at, fmt.Errorf("flash: erase of block %d with valid page %d", b, first+PPA(i))
		}
	}
	if d.inj != nil {
		n := cs.faultOps[faultOpErase]
		cs.faultOps[faultOpErase]++
		if ferr := d.inj.Erase(at, int(int64(b)/d.blocksPerChannel), d.localDie(lfirst), n); ferr != nil {
			return at, fmt.Errorf("flash: erase of block %d: %w", b, ferr)
		}
	}
	for i := 0; i < d.geo.PagesPerBlock; i++ {
		cs.state[lfirst+int64(i)] = PageFree
		delete(cs.data, first+PPA(i))
	}
	_, done = cs.diesW[d.localDie(lfirst)].Acquire(at, d.timing.EraseLatency)
	cs.eraseCount[lb]++
	cs.markTouched(lb)
	d.stats.erases.Add(1)
	return done, nil
}

// ValidPages returns the number of valid pages in block b.
func (d *Device) ValidPages(b BlockID) int {
	cs, _ := d.blockShard(b)
	cs.mu.Lock()
	defer cs.mu.Unlock()
	_, lfirst := d.shardOf(d.geo.FirstPage(b))
	n := 0
	for i := 0; i < d.geo.PagesPerBlock; i++ {
		if cs.state[lfirst+int64(i)] == PageValid {
			n++
		}
	}
	return n
}

// ChannelBusy returns the accumulated busy time of channel ch, for
// bandwidth-utilization reporting.
func (d *Device) ChannelBusy(ch int) sim.Duration {
	cs := &d.chans[ch]
	cs.mu.Lock()
	defer cs.mu.Unlock()
	return cs.bus.Busy()
}

// InternalBandwidth returns the aggregate internal bandwidth in bytes/sec
// (channels x per-channel bandwidth) — the quantity Figure 12 sweeps.
func (d *Device) InternalBandwidth() float64 {
	return float64(d.geo.Channels) * d.timing.ChannelBandwidth
}

// ResetTiming clears the timing reservations and stats while keeping page
// contents, letting one populated device serve several timing experiments.
// It locks one channel at a time; quiesce concurrent operations first if a
// cross-channel consistent reset matters.
func (d *Device) ResetTiming() {
	for ch := range d.chans {
		cs := &d.chans[ch]
		cs.mu.Lock()
		cs.resetTiming()
		cs.mu.Unlock()
	}
	d.resetStats()
}

// Reset returns the device to its factory-fresh state: every page free,
// every erase count zero, no payloads, idle servers, zero stats. The cost
// is proportional to the blocks actually touched since construction (or
// the last Reset), not to the geometry — the reuse-aware half of the pool
// reset contract. Like ResetTiming it locks one channel at a time, so the
// caller must quiesce concurrent operations first; on the replay path the
// pool's exclusive resource handoff guarantees that.
func (d *Device) Reset() {
	for ch := range d.chans {
		cs := &d.chans[ch]
		cs.mu.Lock()
		for _, lb := range cs.touchedList {
			clear(cs.state[lb*d.pagesPerBlock : (lb+1)*d.pagesPerBlock])
			cs.eraseCount[lb] = 0
			cs.touched[lb] = false
		}
		cs.touchedList = cs.touchedList[:0]
		clear(cs.data)
		cs.faultOps = [numFaultOps]uint64{}
		cs.resetTiming()
		cs.mu.Unlock()
	}
	d.resetStats()
}

// resetTiming returns the channel's servers to idle. Caller holds cs.mu.
func (cs *channelState) resetTiming() {
	for _, s := range cs.dies {
		s.Reset()
	}
	for _, s := range cs.diesW {
		s.Reset()
	}
	cs.bus.Reset()
}

func (d *Device) resetStats() {
	d.stats.reads.Store(0)
	d.stats.programs.Store(0)
	d.stats.erases.Store(0)
	d.stats.bytesRead.Store(0)
	d.stats.bytesWritten.Store(0)
	d.stats.readFaults.Store(0)
	d.stats.programFaults.Store(0)
}
