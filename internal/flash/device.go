package flash

import (
	"fmt"
	"sync"

	"iceclave/internal/sim"
)

// Timing holds the NAND command latencies and channel bandwidth. Defaults
// follow Table 3 of the paper: tRD = 50 µs, tPROG = 300 µs, 600 MB/s per
// channel. tERS uses a typical 3 ms block-erase figure (the paper does not
// state it; GC cost is dominated by page movement for the read-intensive
// workloads evaluated).
type Timing struct {
	ReadLatency      sim.Duration // array read (tRD), per page
	ProgramLatency   sim.Duration // array program (tPROG), per page
	EraseLatency     sim.Duration // block erase (tERS)
	ChannelBandwidth float64      // bytes/sec of each channel bus
}

// DefaultTiming returns the Table 3 configuration.
func DefaultTiming() Timing {
	return Timing{
		ReadLatency:      50 * sim.Microsecond,
		ProgramLatency:   300 * sim.Microsecond,
		EraseLatency:     3 * sim.Millisecond,
		ChannelBandwidth: 600 * (1 << 20), // 600 MB/s
	}
}

// PageState tracks the erase-before-write lifecycle of a flash page.
type PageState uint8

// Page lifecycle states.
const (
	PageFree    PageState = iota // erased, programmable
	PageValid                    // programmed, holds live data
	PageInvalid                  // programmed, data superseded; needs erase
)

// Stats aggregates device activity.
type Stats struct {
	Reads        int64
	Programs     int64
	Erases       int64
	BytesRead    int64
	BytesWritten int64
}

// Device is a simulated NAND flash array: functional page storage plus a
// timing model with per-die command units and per-channel bus bandwidth.
// All operations take an arrival time and return a completion time, so
// callers compose the device into larger discrete-event simulations.
//
// Device is safe for concurrent use: one mutex serializes page-state,
// payload, and reservation updates, so N in-storage TEEs can issue
// commands from their own goroutines. Virtual-time ordering under
// concurrency follows lock-acquisition order.
type Device struct {
	mu     sync.Mutex
	geo    Geometry
	timing Timing

	state      []PageState
	eraseCount []int32
	data       map[PPA][]byte // sparse payload store for programmed pages

	dies  []*sim.Server // array reads, one unit per die
	diesW []*sim.Server // programs/erases; modern controllers suspend
	// in-flight programs for reads, so the read path does not queue
	// behind the much slower program operations
	channels []*sim.Server // bus serialization per channel

	stats Stats
}

// NewDevice builds a device with the given geometry and timing. It returns
// an error if the geometry is invalid.
func NewDevice(geo Geometry, timing Timing) (*Device, error) {
	if err := geo.Validate(); err != nil {
		return nil, err
	}
	if timing.ChannelBandwidth <= 0 {
		return nil, fmt.Errorf("flash: channel bandwidth must be positive, got %v", timing.ChannelBandwidth)
	}
	d := &Device{
		geo:        geo,
		timing:     timing,
		state:      make([]PageState, geo.TotalPages()),
		eraseCount: make([]int32, geo.TotalBlocks()),
		data:       make(map[PPA][]byte),
		dies:       make([]*sim.Server, geo.Dies()),
		diesW:      make([]*sim.Server, geo.Dies()),
		channels:   make([]*sim.Server, geo.Channels),
	}
	for i := range d.dies {
		d.dies[i] = sim.NewServer(fmt.Sprintf("die%d", i), 1)
		d.diesW[i] = sim.NewServer(fmt.Sprintf("die%dw", i), 1)
	}
	for i := range d.channels {
		d.channels[i] = sim.NewServer(fmt.Sprintf("chan%d", i), 1)
	}
	return d, nil
}

// Geometry returns the device geometry.
func (d *Device) Geometry() Geometry { return d.geo }

// Timing returns the device timing parameters.
func (d *Device) Timing() Timing { return d.timing }

// Stats returns a copy of the activity counters.
func (d *Device) Stats() Stats {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.stats
}

// State returns the lifecycle state of page p.
func (d *Device) State(p PPA) PageState {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.state[p]
}

// EraseCount returns how many times p's block has been erased (the wear
// figure used by wear leveling).
func (d *Device) EraseCount(b BlockID) int {
	d.mu.Lock()
	defer d.mu.Unlock()
	return int(d.eraseCount[b])
}

func (d *Device) checkPPA(p PPA) error {
	if int64(p) >= d.geo.TotalPages() {
		return fmt.Errorf("flash: PPA %d out of range (%d pages)", p, d.geo.TotalPages())
	}
	return nil
}

// transferTime is the channel-bus time for one page.
func (d *Device) transferTime() sim.Duration {
	return sim.DurationForBytes(int64(d.geo.PageSize), d.timing.ChannelBandwidth)
}

// PageTransferTime returns the channel-bus occupancy of one page — the
// short phase of a program that serializes per channel while the long
// cell-program phase overlaps across dies. Callers pinning die-pipelining
// bounds (completion < 2x tPROG) compute their budgets from this.
func (d *Device) PageTransferTime() sim.Duration { return d.transferTime() }

// Read performs a page read arriving at time at: the die is busy for tRD,
// then the page crosses the channel bus. It returns the completion time and
// the stored payload (nil if the page was never programmed with data).
// Reading a free page is a protocol error — the FTL must never map a live
// LPA to an unwritten page.
func (d *Device) Read(at sim.Time, p PPA) (done sim.Time, data []byte, err error) {
	if err := d.checkPPA(p); err != nil {
		return at, nil, err
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.state[p] == PageFree {
		return at, nil, fmt.Errorf("flash: read of free page %d", p)
	}
	_, arrayDone := d.dies[d.geo.DieIndex(p)].Acquire(at, d.timing.ReadLatency)
	_, done = d.channels[d.geo.ChannelOf(p)].Acquire(arrayDone, d.transferTime())
	d.stats.Reads++
	d.stats.BytesRead += int64(d.geo.PageSize)
	return done, d.data[p], nil
}

// Program writes data into page p (out-of-place write discipline: the page
// must be in the free state). The payload crosses the channel bus first,
// then the die is busy for tPROG. data may be nil for pure-timing callers;
// a non-nil payload is copied and must not exceed the page size.
func (d *Device) Program(at sim.Time, p PPA, data []byte) (done sim.Time, err error) {
	if err := d.checkPPA(p); err != nil {
		return at, err
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.state[p] != PageFree {
		return at, fmt.Errorf("flash: program of non-free page %d (state %d)", p, d.state[p])
	}
	if len(data) > d.geo.PageSize {
		return at, fmt.Errorf("flash: payload %d bytes exceeds page size %d", len(data), d.geo.PageSize)
	}
	_, busDone := d.channels[d.geo.ChannelOf(p)].Acquire(at, d.transferTime())
	_, done = d.diesW[d.geo.DieIndex(p)].Acquire(busDone, d.timing.ProgramLatency)
	d.state[p] = PageValid
	if data != nil {
		d.data[p] = append([]byte(nil), data...)
	}
	d.stats.Programs++
	d.stats.BytesWritten += int64(d.geo.PageSize)
	return done, nil
}

// Invalidate marks a valid page as superseded. Only the FTL calls this,
// when an LPA is rewritten elsewhere.
func (d *Device) Invalidate(p PPA) error {
	if err := d.checkPPA(p); err != nil {
		return err
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.state[p] != PageValid {
		return fmt.Errorf("flash: invalidate of non-valid page %d (state %d)", p, d.state[p])
	}
	d.state[p] = PageInvalid
	delete(d.data, p)
	return nil
}

// Erase erases block b, returning every page to the free state. Erasing a
// block that still holds valid pages is a data-loss bug in the caller, so
// it is rejected.
func (d *Device) Erase(at sim.Time, b BlockID) (done sim.Time, err error) {
	if int64(b) >= d.geo.TotalBlocks() {
		return at, fmt.Errorf("flash: block %d out of range", b)
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	first := d.geo.FirstPage(b)
	for i := 0; i < d.geo.PagesPerBlock; i++ {
		p := first + PPA(i)
		if d.state[p] == PageValid {
			return at, fmt.Errorf("flash: erase of block %d with valid page %d", b, p)
		}
	}
	for i := 0; i < d.geo.PagesPerBlock; i++ {
		p := first + PPA(i)
		d.state[p] = PageFree
		delete(d.data, p)
	}
	_, done = d.diesW[d.geo.DieIndex(first)].Acquire(at, d.timing.EraseLatency)
	d.eraseCount[b]++
	d.stats.Erases++
	return done, nil
}

// ValidPages returns the number of valid pages in block b.
func (d *Device) ValidPages(b BlockID) int {
	d.mu.Lock()
	defer d.mu.Unlock()
	first := d.geo.FirstPage(b)
	n := 0
	for i := 0; i < d.geo.PagesPerBlock; i++ {
		if d.state[first+PPA(i)] == PageValid {
			n++
		}
	}
	return n
}

// ChannelBusy returns the accumulated busy time of channel ch, for
// bandwidth-utilization reporting.
func (d *Device) ChannelBusy(ch int) sim.Duration {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.channels[ch].Busy()
}

// InternalBandwidth returns the aggregate internal bandwidth in bytes/sec
// (channels x per-channel bandwidth) — the quantity Figure 12 sweeps.
func (d *Device) InternalBandwidth() float64 {
	return float64(d.geo.Channels) * d.timing.ChannelBandwidth
}

// ResetTiming clears the timing reservations and stats while keeping page
// contents, letting one populated device serve several timing experiments.
func (d *Device) ResetTiming() {
	d.mu.Lock()
	defer d.mu.Unlock()
	for _, s := range d.dies {
		s.Reset()
	}
	for _, s := range d.diesW {
		s.Reset()
	}
	for _, s := range d.channels {
		s.Reset()
	}
	d.stats = Stats{}
}
