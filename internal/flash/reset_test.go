package flash

import (
	"bytes"
	"fmt"
	"testing"

	"iceclave/internal/sim"
)

// churnDevice programs, invalidates, and erases across several blocks,
// leaving a with dirty page states, nonzero erase counts, payloads, and
// busy servers.
func churnDevice(t *testing.T, d *Device) {
	t.Helper()
	geo := d.Geometry()
	payload := bytes.Repeat([]byte{0xA5}, geo.PageSize)
	var at sim.Time
	for b := BlockID(0); b < 6; b++ {
		first := geo.FirstPage(b)
		for p := 0; p < geo.PagesPerBlock; p++ {
			done, err := d.Program(at, first+PPA(p), payload)
			if err != nil {
				t.Fatal(err)
			}
			at = done
		}
	}
	// Invalidate block 2 entirely and erase it twice (erase count > 1).
	for round := 0; round < 2; round++ {
		first := geo.FirstPage(2)
		for p := 0; p < geo.PagesPerBlock; p++ {
			if err := d.Invalidate(first + PPA(p)); err != nil {
				t.Fatal(err)
			}
		}
		done, err := d.Erase(at, 2)
		if err != nil {
			t.Fatal(err)
		}
		at = done
		if round == 0 {
			for p := 0; p < geo.PagesPerBlock; p++ {
				done, err := d.Program(at, first+PPA(p), nil)
				if err != nil {
					t.Fatal(err)
				}
				at = done
			}
		}
	}
}

// TestDeviceResetEquivalentToFresh pins the full Reset contract: after
// churn (programs with payloads, invalidations, double erases) and a
// Reset, the device must be indistinguishable from a new one — identical
// page states, erase counts, payload reads, operation timings, and stats
// under an identical operation sequence.
func TestDeviceResetEquivalentToFresh(t *testing.T) {
	a := testDevice(t)
	churnDevice(t, a)
	a.Reset()

	if s := a.Snapshot(); s != (Stats{}) {
		t.Fatalf("stats after Reset: %+v", s)
	}
	geo := a.Geometry()
	for p := int64(0); p < geo.TotalPages(); p += 17 {
		if st := a.State(PPA(p)); st != PageFree {
			t.Fatalf("page %d state %d after Reset", p, st)
		}
	}
	for b := int64(0); b < geo.TotalBlocks(); b++ {
		if e := a.EraseCount(BlockID(b)); e != 0 {
			t.Fatalf("block %d erase count %d after Reset", b, e)
		}
	}

	b := testDevice(t)
	drive := func(d *Device) string {
		var log bytes.Buffer
		payload := bytes.Repeat([]byte{0x3C}, geo.PageSize)
		var at sim.Time
		for blk := BlockID(0); blk < 4; blk++ {
			first := geo.FirstPage(blk)
			for p := 0; p < geo.PagesPerBlock; p++ {
				done, err := d.Program(at, first+PPA(p), payload)
				if err != nil {
					t.Fatal(err)
				}
				at = done
				fmt.Fprintf(&log, "prog %d %d\n", first+PPA(p), done)
			}
		}
		first := geo.FirstPage(1)
		for p := 0; p < geo.PagesPerBlock; p++ {
			done, data, err := d.Read(at, first+PPA(p))
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(data, payload) {
				t.Fatalf("page %d read back wrong payload", first+PPA(p))
			}
			fmt.Fprintf(&log, "read %d %d\n", first+PPA(p), done)
			if err := d.Invalidate(first + PPA(p)); err != nil {
				t.Fatal(err)
			}
		}
		done, err := d.Erase(at, 1)
		if err != nil {
			t.Fatal(err)
		}
		fmt.Fprintf(&log, "erase 1 %d\n", done)
		fmt.Fprintf(&log, "stats %+v\n", d.Snapshot())
		return log.String()
	}
	if got, want := drive(a), drive(b); got != want {
		t.Fatalf("reset device diverges from fresh:\nreset:\n%s\nfresh:\n%s", got, want)
	}
}

// TestDeviceResetRepeatable pins that back-to-back reuse keeps working:
// several churn/Reset cycles, each indistinguishable from the first.
func TestDeviceResetRepeatable(t *testing.T) {
	d := testDevice(t)
	var want Stats
	for round := 0; round < 3; round++ {
		churnDevice(t, d)
		if round == 0 {
			want = d.Snapshot()
		} else if got := d.Snapshot(); got != want {
			t.Fatalf("round %d stats %+v, want %+v", round, got, want)
		}
		d.Reset()
	}
}
