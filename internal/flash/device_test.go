package flash

import (
	"bytes"
	"testing"

	"iceclave/internal/sim"
)

func testDevice(t *testing.T) *Device {
	t.Helper()
	d, err := NewDevice(testGeometry(), DefaultTiming())
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func TestProgramReadRoundTrip(t *testing.T) {
	d := testDevice(t)
	payload := bytes.Repeat([]byte{0x5A}, 4096)
	done, err := d.Program(0, 10, payload)
	if err != nil {
		t.Fatal(err)
	}
	if done <= 0 {
		t.Fatal("program took no time")
	}
	_, data, err := d.Read(done, 10)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(data, payload) {
		t.Fatal("read returned different data")
	}
}

func TestEraseBeforeWriteDiscipline(t *testing.T) {
	d := testDevice(t)
	if _, err := d.Program(0, 5, nil); err != nil {
		t.Fatal(err)
	}
	if _, err := d.Program(0, 5, nil); err == nil {
		t.Fatal("double program accepted")
	}
	if err := d.Invalidate(5); err != nil {
		t.Fatal(err)
	}
	if _, err := d.Program(0, 5, nil); err == nil {
		t.Fatal("program of invalid (un-erased) page accepted")
	}
	if _, err := d.Erase(0, 0); err != nil {
		t.Fatal(err)
	}
	if _, err := d.Program(0, 5, nil); err != nil {
		t.Fatalf("program after erase rejected: %v", err)
	}
}

func TestReadFreePageRejected(t *testing.T) {
	d := testDevice(t)
	if _, _, err := d.Read(0, 3); err == nil {
		t.Fatal("read of free page accepted")
	}
}

func TestEraseWithValidPagesRejected(t *testing.T) {
	d := testDevice(t)
	if _, err := d.Program(0, 0, nil); err != nil {
		t.Fatal(err)
	}
	if _, err := d.Erase(0, 0); err == nil {
		t.Fatal("erase of block with valid page accepted")
	}
}

func TestEraseCountAndState(t *testing.T) {
	d := testDevice(t)
	d.Program(0, 0, nil)
	d.Invalidate(0)
	if _, err := d.Erase(0, 0); err != nil {
		t.Fatal(err)
	}
	if d.EraseCount(0) != 1 {
		t.Fatalf("erase count = %d, want 1", d.EraseCount(0))
	}
	if d.State(0) != PageFree {
		t.Fatal("page not free after erase")
	}
}

func TestReadTimingIncludesArrayAndBus(t *testing.T) {
	d := testDevice(t)
	d.Program(0, 0, nil)
	tm := d.Timing()
	start := sim.Time(1000 * sim.Microsecond)
	done, _, err := d.Read(start, 0)
	if err != nil {
		t.Fatal(err)
	}
	want := start + tm.ReadLatency + sim.DurationForBytes(4096, tm.ChannelBandwidth)
	if done != want {
		t.Fatalf("read done = %v, want %v", done, want)
	}
}

func TestChannelContentionSerializesTransfers(t *testing.T) {
	g := testGeometry()
	g.Channels = 1
	d, err := NewDevice(g, DefaultTiming())
	if err != nil {
		t.Fatal(err)
	}
	// Two pages on different dies of the same channel: array reads overlap,
	// bus transfers serialize.
	pagesPerDie := PPA(int64(g.PlanesPerDie) * g.PagesPerPlane())
	p1, p2 := PPA(0), pagesPerDie
	if g.DieIndex(p1) == g.DieIndex(p2) {
		t.Fatal("test pages on same die")
	}
	d.Program(0, p1, nil)
	d.Program(0, p2, nil)
	d.ResetTiming()
	xfer := sim.DurationForBytes(4096, d.Timing().ChannelBandwidth)
	done1, _, _ := d.Read(0, p1)
	done2, _, _ := d.Read(0, p2)
	if done2 != done1+xfer {
		t.Fatalf("second read done=%v, want %v (bus-serialized)", done2, done1+xfer)
	}
}

func TestDieContentionSerializesReads(t *testing.T) {
	d := testDevice(t)
	d.Program(0, 0, nil)
	d.Program(0, 1, nil) // same die, same plane
	d.ResetTiming()
	tm := d.Timing()
	done1, _, _ := d.Read(0, 0)
	done2, _, _ := d.Read(0, 1)
	if done2 < done1+tm.ReadLatency {
		t.Fatalf("same-die reads overlapped: %v then %v", done1, done2)
	}
}

func TestChannelParallelismAcrossChannels(t *testing.T) {
	d := testDevice(t)
	g := d.Geometry()
	pagesPerChannel := PPA(int64(g.ChipsPerChannel) * int64(g.DiesPerChip) * int64(g.PlanesPerDie) * g.PagesPerPlane())
	p1, p2 := PPA(0), pagesPerChannel // channel 0 and channel 1
	if g.ChannelOf(p1) == g.ChannelOf(p2) {
		t.Fatal("test pages on same channel")
	}
	d.Program(0, p1, nil)
	d.Program(0, p2, nil)
	d.ResetTiming()
	done1, _, _ := d.Read(0, p1)
	done2, _, _ := d.Read(0, p2)
	if done1 != done2 {
		t.Fatalf("cross-channel reads should fully overlap: %v vs %v", done1, done2)
	}
}

func TestStats(t *testing.T) {
	d := testDevice(t)
	d.Program(0, 0, nil)
	d.Read(0, 0)
	d.Invalidate(0)
	d.Erase(0, 0)
	s := d.Snapshot()
	if s.Programs != 1 || s.Reads != 1 || s.Erases != 1 {
		t.Fatalf("stats = %+v", s)
	}
	if s.BytesRead != 4096 || s.BytesWritten != 4096 {
		t.Fatalf("byte stats = %+v", s)
	}
}

func TestValidPages(t *testing.T) {
	d := testDevice(t)
	d.Program(0, 0, nil)
	d.Program(0, 1, nil)
	d.Program(0, 2, nil)
	d.Invalidate(1)
	if n := d.ValidPages(0); n != 2 {
		t.Fatalf("valid pages = %d, want 2", n)
	}
}

func TestOversizedPayloadRejected(t *testing.T) {
	d := testDevice(t)
	if _, err := d.Program(0, 0, make([]byte, 4097)); err == nil {
		t.Fatal("oversized payload accepted")
	}
}

func TestOutOfRangePPARejected(t *testing.T) {
	d := testDevice(t)
	bad := PPA(d.Geometry().TotalPages())
	if _, _, err := d.Read(0, bad); err == nil {
		t.Fatal("out-of-range read accepted")
	}
	if _, err := d.Program(0, bad, nil); err == nil {
		t.Fatal("out-of-range program accepted")
	}
	if err := d.Invalidate(bad); err == nil {
		t.Fatal("out-of-range invalidate accepted")
	}
	if _, err := d.Erase(0, BlockID(d.Geometry().TotalBlocks())); err == nil {
		t.Fatal("out-of-range erase accepted")
	}
}

func TestInternalBandwidth(t *testing.T) {
	d := testDevice(t)
	want := 8 * 600.0 * (1 << 20)
	if got := d.InternalBandwidth(); got != want {
		t.Fatalf("internal bandwidth = %v, want %v", got, want)
	}
}
