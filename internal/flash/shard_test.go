package flash

import (
	"fmt"
	"sync"
	"testing"
	"time"
)

// TestCrossChannelNoSharedLock is the device-level analogue of the FTL's
// cross-channel contract: with channel 0's shard lock held hostage, a
// tenant pinned to channel 1 must still complete reads, programs,
// invalidates, erases, and state queries — under the old device-wide
// mutex every one of these deadlocks and the test times out.
func TestCrossChannelNoSharedLock(t *testing.T) {
	d := testDevice(t)
	g := d.Geometry()
	p1 := PPA(g.PagesPerChannel()) // first page of channel 1
	if g.ChannelOf(p1) != 1 {
		t.Fatalf("page %d on channel %d, want 1", p1, g.ChannelOf(p1))
	}
	b1 := g.BlockOf(p1)

	d.chans[0].mu.Lock()
	defer d.chans[0].mu.Unlock()

	done := make(chan error, 1)
	go func() {
		if _, err := d.Program(0, p1, []byte("channel one")); err != nil {
			done <- fmt.Errorf("program: %w", err)
			return
		}
		if _, _, err := d.Read(0, p1); err != nil {
			done <- fmt.Errorf("read: %w", err)
			return
		}
		if st := d.State(p1); st != PageValid {
			done <- fmt.Errorf("state = %d, want valid", st)
			return
		}
		if n := d.ValidPages(b1); n != 1 {
			done <- fmt.Errorf("valid pages = %d, want 1", n)
			return
		}
		if err := d.Invalidate(p1); err != nil {
			done <- fmt.Errorf("invalidate: %w", err)
			return
		}
		if _, err := d.Erase(0, b1); err != nil {
			done <- fmt.Errorf("erase: %w", err)
			return
		}
		if n := d.EraseCount(b1); n != 1 {
			done <- fmt.Errorf("erase count = %d, want 1", n)
			return
		}
		done <- nil
	}()

	select {
	case err := <-done:
		if err != nil {
			t.Fatal(err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("channel-1 tenant blocked on a lock while channel 0 was held: device state is not sharded per channel")
	}
}

// TestSnapshotRaceWithPrograms pins the flash.Stats fix: Snapshot must be
// safe (and lock-free) against concurrent writers on every channel. Run
// under -race this catches any return to mutex-guarded plain counters
// read outside the mutex.
func TestSnapshotRaceWithPrograms(t *testing.T) {
	d := testDevice(t)
	g := d.Geometry()
	perChannel := g.PagesPerChannel()

	const programsPerChannel = 64
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for ch := 0; ch < g.Channels; ch++ {
		wg.Add(1)
		go func(ch int) {
			defer wg.Done()
			base := PPA(int64(ch) * perChannel)
			for i := 0; i < programsPerChannel; i++ {
				if _, err := d.Program(0, base+PPA(i), []byte{byte(i)}); err != nil {
					t.Errorf("channel %d program %d: %v", ch, i, err)
					return
				}
			}
		}(ch)
	}
	var readers sync.WaitGroup
	readers.Add(1)
	go func() {
		defer readers.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			s := d.Snapshot()
			if s.BytesWritten != s.Programs*int64(g.PageSize) {
				// Each counter is individually atomic; this derived
				// relation holds at quiescence, checked below. Here we
				// only exercise concurrent reads.
				continue
			}
		}
	}()
	wg.Wait()
	close(stop)
	readers.Wait()

	s := d.Snapshot()
	want := int64(g.Channels * programsPerChannel)
	if s.Programs != want || s.BytesWritten != want*int64(g.PageSize) {
		t.Fatalf("snapshot after quiescence = %+v, want %d programs", s, want)
	}
}

// TestCrossChannelWriteStormIntegrity storms every channel from its own
// goroutine with program/invalidate/erase churn (the write-storm
// microbenchmark's access pattern) and verifies the per-channel functional
// state afterwards: the sharded state arrays must end exactly where a
// serial run would.
func TestCrossChannelWriteStormIntegrity(t *testing.T) {
	d := testDevice(t)
	g := d.Geometry()
	perChannel := g.PagesPerChannel()
	blocksPer := g.BlocksPerChannel()

	const rounds = 3
	var wg sync.WaitGroup
	errs := make(chan error, g.Channels)
	for ch := 0; ch < g.Channels; ch++ {
		wg.Add(1)
		go func(ch int) {
			defer wg.Done()
			basePage := PPA(int64(ch) * perChannel)
			baseBlock := BlockID(int64(ch) * blocksPer)
			for r := 0; r < rounds; r++ {
				for p := int64(0); p < perChannel; p++ {
					if _, err := d.Program(0, basePage+PPA(p), []byte{byte(ch), byte(r)}); err != nil {
						errs <- fmt.Errorf("ch %d round %d program: %w", ch, r, err)
						return
					}
				}
				for p := int64(0); p < perChannel; p++ {
					if err := d.Invalidate(basePage + PPA(p)); err != nil {
						errs <- fmt.Errorf("ch %d round %d invalidate: %w", ch, r, err)
						return
					}
				}
				for b := int64(0); b < blocksPer; b++ {
					if _, err := d.Erase(0, baseBlock+BlockID(b)); err != nil {
						errs <- fmt.Errorf("ch %d round %d erase: %w", ch, r, err)
						return
					}
				}
			}
		}(ch)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}

	for b := BlockID(0); int64(b) < g.TotalBlocks(); b++ {
		if got := d.EraseCount(b); got != rounds {
			t.Fatalf("block %d erase count = %d, want %d", b, got, rounds)
		}
		if n := d.ValidPages(b); n != 0 {
			t.Fatalf("block %d has %d valid pages after final erase", b, n)
		}
	}
	s := d.Snapshot()
	wantPrograms := int64(g.Channels) * rounds * perChannel
	wantErases := int64(g.Channels) * rounds * blocksPer
	if s.Programs != wantPrograms || s.Erases != wantErases {
		t.Fatalf("stats = %+v, want %d programs, %d erases", s, wantPrograms, wantErases)
	}
}
