package experiments

import (
	"testing"

	"iceclave/internal/core"
	"iceclave/internal/workload"
)

// TestParallelMatchesSerial renders every table through the serial path
// and the 4-worker parallel path and requires byte-identical output —
// the acceptance bar for parallelizing the harness.
func TestParallelMatchesSerial(t *testing.T) {
	sc := workload.TinyScale()
	serial, err := NewSuite(sc, core.DefaultConfig()).All()
	if err != nil {
		t.Fatal(err)
	}
	parallel, err := NewSuite(sc, core.DefaultConfig()).AllParallel(4)
	if err != nil {
		t.Fatal(err)
	}
	if len(serial) != len(parallel) {
		t.Fatalf("table counts differ: %d vs %d", len(serial), len(parallel))
	}
	for i := range serial {
		if serial[i].ID != parallel[i].ID {
			t.Fatalf("table %d: ID %q vs %q", i, serial[i].ID, parallel[i].ID)
		}
		if got, want := parallel[i].String(), serial[i].String(); got != want {
			t.Errorf("%s: parallel output diverges from serial:\n--- serial ---\n%s\n--- parallel ---\n%s",
				serial[i].ID, want, got)
		}
	}
}

// TestTraceSingleflight checks concurrent Trace calls record one trace.
func TestTraceSingleflight(t *testing.T) {
	s := NewSuite(workload.TinyScale(), core.DefaultConfig()).SetWorkers(8)
	ptrs := make([]*workload.Trace, 16)
	err := s.mapIndexed(len(ptrs), func(i int) error {
		tr, err := s.Trace("Filter")
		ptrs[i] = tr
		return err
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(ptrs); i++ {
		if ptrs[i] != ptrs[0] {
			t.Fatal("concurrent Trace calls produced distinct recordings")
		}
	}
}
