package experiments

import (
	"fmt"

	"iceclave/internal/core"
	"iceclave/internal/sim"
	"iceclave/internal/stats"
)

// admissionMixes are the four-tenant collocations the timing mode is
// evaluated on — a representative slice of the Figure 18 matrix.
var admissionMixes = [][]string{
	{"TPC-C", "Aggregate", "Arithmetic", "Filter"},
	{"TPC-C", "TPC-H Q1", "TPC-H Q3", "TPC-H Q12"},
	{"TPC-B", "TPC-H Q12", "TPC-H Q14", "TPC-H Q19"},
	{"TPC-H Q1", "TPC-H Q3", "TPC-H Q14", "TPC-H Q19"},
}

// admissionSlots is the cap the table applies: half the tenants of a
// four-tenant mix run while the rest queue, the contended regime the
// 15-ID limit of §4.3 produces at scale.
const admissionSlots = 2

// Batched-grant policy compared against per-release dispatch: the gate
// runs a scheduling pass only every grantQuantum of virtual time,
// admitting at most grantBatch tenants per pass — firmware that amortizes
// scheduling work over a periodic timer instead of dispatching on every
// completion interrupt.
const (
	grantQuantum = 1 * sim.Millisecond
	grantBatch   = 2
	// grantFloor switches the third policy leg to the adaptive tick: the
	// armed period is grantQuantum/(1+queued) clamped to this floor, so
	// the gate schedules lazily when idle and nearly per-release under a
	// deep queue — the scheduling-passes vs queue-delay frontier.
	grantFloor = grantQuantum / 8
)

// AdmissionTiming is the Figure 17/18-style multi-tenant timing table for
// the scheduler-driven timing mode: each four-tenant mix replays once
// uncapped and once with the sched admission gate limiting concurrent
// tenants, all on one virtual-time backbone. Queueing delay from
// admission control appears in the same simulated clock as flash and
// compute time — the per-tenant waits and the throughput cost of the cap
// are read straight out of core.Result.
func (s *Suite) AdmissionTiming() (*stats.Table, error) {
	t := &stats.Table{
		ID: "Timing 1",
		Title: fmt.Sprintf("Multi-tenant timing under admission control (%d of 4 tenants admitted; batched = %d grants per %v tick; adaptive tick floor %v)",
			admissionSlots, grantBatch, grantQuantum, grantFloor),
		Header: []string{"Mix", "Mean queue (ms)", "Max queue (ms)",
			"Queued tenants", "Total vs uncapped", "Batched mean queue (ms)", "Batched vs per-release",
			"Adaptive mean queue (ms)", "Sched passes (batched/adaptive)"},
	}
	rows := make([]rowOut, len(admissionMixes))
	err := s.mapIndexed(len(admissionMixes), func(i int) error {
		mix := admissionMixes[i]
		var totalPages int64
		for _, name := range mix {
			tr, err := s.Trace(name)
			if err != nil {
				return err
			}
			totalPages += int64(tr.SetupPages) + tr.Meter.PagesWritten + 1024
		}
		// Sizing matches multiTenant's formula, so the uncapped run of a
		// mix Figure 18 also replays is a memo hit, not a second replay.
		cfg := s.Config
		cfg.MinFlashPages = totalPages
		free, err := s.runMulti(mix, core.ModeIceClave, cfg)
		if err != nil {
			return err
		}
		cfg.AdmissionSlots = admissionSlots
		capped, err := s.runMulti(mix, core.ModeIceClave, cfg)
		if err != nil {
			return err
		}
		// Same cap, batched-grant policy: the second policy axis.
		cfg.AdmissionQuantum = grantQuantum
		cfg.AdmissionBatch = grantBatch
		batched, batchedStats, err := s.runMultiStats(mix, core.ModeIceClave, cfg)
		if err != nil {
			return err
		}
		// Same quantum with the queue-scaled adaptive tick: the third
		// policy point on the scheduling-passes vs queue-delay frontier.
		cfg.AdmissionQuantumFloor = grantFloor
		adaptive, adaptiveStats, err := s.runMultiStats(mix, core.ModeIceClave, cfg)
		if err != nil {
			return err
		}
		var meanQ, maxQ, slow, batchQ, batchSlow, adaptQ float64
		queued := 0
		for j := range capped {
			q := float64(capped[j].QueueDelay) / 1e6
			meanQ += q / float64(len(capped))
			if q > maxQ {
				maxQ = q
			}
			if capped[j].QueueDelay > 0 {
				queued++
			}
			slow += float64(capped[j].Total) / float64(free[j].Total) / float64(len(capped))
			batchQ += float64(batched[j].QueueDelay) / 1e6 / float64(len(capped))
			batchSlow += float64(batched[j].Total) / float64(capped[j].Total) / float64(len(capped))
			adaptQ += float64(adaptive[j].QueueDelay) / 1e6 / float64(len(capped))
		}
		rows[i] = rowOut{
			row: []any{mixLabel(mix), fmt.Sprintf("%.2f", meanQ), fmt.Sprintf("%.2f", maxQ),
				fmt.Sprintf("%d/%d", queued, len(mix)), stats.Ratio(slow),
				fmt.Sprintf("%.2f", batchQ), stats.Ratio(batchSlow),
				fmt.Sprintf("%.2f", adaptQ),
				fmt.Sprintf("%d/%d", batchedStats.AdmissionTicks, adaptiveStats.AdmissionTicks)},
			aux: []float64{meanQ, batchQ, adaptQ,
				float64(batchedStats.AdmissionTicks), float64(adaptiveStats.AdmissionTicks)},
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	addRows(t, rows)
	t.AddNote("admission caps reach the simulated clock: queueing delay is part of each tenant's Result, "+
		"mean across mixes %.2f ms", sumAux(rows, 0)/float64(len(rows)))
	t.AddNote("a ratio below 1x means serializing tenants cost less than the device contention it removed")
	t.AddNote("batched grants align admissions to %v scheduler ticks (<= %d per tick): queueing rises to the "+
		"next tick boundary (mean %.2f ms) in exchange for fewer firmware scheduling passes", grantQuantum,
		grantBatch, sumAux(rows, 1)/float64(len(rows)))
	t.AddNote("the adaptive tick scales the period with queue depth (quantum/(1+queued), floor %v): mean queue "+
		"%.2f ms over %.0f scheduling passes vs the fixed tick's %.2f ms over %.0f — the gate buys back "+
		"queueing delay only when there is a queue to drain", grantFloor,
		sumAux(rows, 2)/float64(len(rows)), sumAux(rows, 4),
		sumAux(rows, 1)/float64(len(rows)), sumAux(rows, 3))
	return t, nil
}
