package experiments

import (
	"fmt"

	"iceclave/internal/core"
	"iceclave/internal/flash"
	"iceclave/internal/ftl"
	"iceclave/internal/stats"
	"iceclave/internal/tee"
	"iceclave/internal/workload"
)

// Table1 reproduces the in-storage workload characterization: the memory
// write ratio of each workload, measured from the functional runs, next
// to the paper's reported value.
func (s *Suite) Table1() (*stats.Table, error) {
	t := &stats.Table{
		ID:     "Table 1",
		Title:  "In-storage workload characterization (memory write ratio)",
		Header: []string{"Workload", "Measured", "Paper", "Read-dominated"},
	}
	ws := workload.Standard()
	rows := make([]rowOut, len(ws))
	err := s.mapIndexed(len(ws), func(i int) error {
		w := ws[i]
		tr, err := s.Trace(w.Name)
		if err != nil {
			return err
		}
		measured := tr.Meter.WriteRatio()
		rows[i] = rowOut{row: []any{w.Name,
			fmt.Sprintf("%.2e", measured),
			fmt.Sprintf("%.2e", w.PaperWriteRatio),
			fmt.Sprint(measured < 0.5)}}
		return nil
	})
	if err != nil {
		return nil, err
	}
	addRows(t, rows)
	t.AddNote("measured on the scaled dataset (%d lineitem rows); paper uses 32 GB datasets", s.Scale.LineitemRows)
	return t, nil
}

// Table3 prints the simulator configuration in the paper's format.
func (s *Suite) Table3() *stats.Table {
	c := s.Config
	t := &stats.Table{
		ID:     "Table 3",
		Title:  "Computational SSD simulator configuration",
		Header: []string{"Component", "Setting"},
	}
	t.AddRow("SSD Processor", c.StorageCore.Name)
	t.AddRow("Processor cores", c.StorageCores)
	t.AddRow("SSD DRAM", fmt.Sprintf("%d MB", c.DRAMBytes>>20))
	t.AddRow("Flash channels", c.Channels)
	t.AddRow("Organization/channel", "4 chips x 4 dies x 2 planes")
	t.AddRow("Page size", "4 KB")
	t.AddRow("tRD", c.FlashTiming.ReadLatency.String())
	t.AddRow("tPROG", c.FlashTiming.ProgramLatency.String())
	t.AddRow("Channel bandwidth", fmt.Sprintf("%.0f MB/s", c.FlashTiming.ChannelBandwidth/(1<<20)))
	t.AddRow("Counter cache", fmt.Sprintf("%d KB", c.CounterCacheBytes>>10))
	t.AddRow("Host CPU", c.HostCore.Name)
	t.AddRow("PCIe link", fmt.Sprintf("%.1f GB/s, %v/cmd, %d KB payload",
		c.PCIe.BytesPerSec/1e9, c.PCIe.PerCommand, c.PCIe.MaxPayload>>10))
	return t
}

// Table5 reports the TEE overhead sources: the configured Table 5
// constants next to the costs measured from the functional runtime.
func (s *Suite) Table5() (*stats.Table, error) {
	t := &stats.Table{
		ID:     "Table 5",
		Title:  "Overhead source of IceClave",
		Header: []string{"Overhead source", "Paper", "Model"},
	}
	costs := s.Config.Costs
	// Measure the functional runtime's lifecycle costs on a small device.
	geo := flash.Geometry{Channels: 2, ChipsPerChannel: 1, DiesPerChip: 1,
		PlanesPerDie: 1, BlocksPerPlane: 16, PagesPerBlock: 16, PageSize: 4096}
	dev, err := flash.NewDevice(geo, s.Config.FlashTiming)
	if err != nil {
		return nil, err
	}
	f := ftl.New(dev, ftl.Config{})
	if _, err := f.Write(0, 0, nil); err != nil {
		return nil, err
	}
	rt, err := tee.NewRuntime(f, tee.Options{Costs: costs})
	if err != nil {
		return nil, err
	}
	t0 := rt.Now()
	env, err := rt.CreateTEE(tee.Config{Binary: []byte{1}, LPAs: []ftl.LPA{0}, HeapBytes: 1 << 20})
	if err != nil {
		return nil, err
	}
	createTime := rt.Now() - t0
	t1 := rt.Now()
	if err := rt.TerminateTEE(env, nil); err != nil {
		return nil, err
	}
	deleteTime := rt.Now() - t1

	t.AddRow("TEE creation", "95 us", createTime.String())
	t.AddRow("TEE deletion", "58 us", deleteTime.String())
	t.AddRow("Context switch", "3.8 us", costs.WorldSwitch.String())
	t.AddRow("Memory encryption", "102.6 ns", costs.Encrypt.String())
	t.AddRow("Memory verification", "151.2 ns", costs.Verify.String())
	t.AddNote("creation/deletion include the world-switch round trips the runtime performs")
	return t, nil
}

// Table6 reports the extra memory traffic caused by memory encryption and
// integrity verification per workload under the hybrid-counter scheme.
func (s *Suite) Table6() (*stats.Table, error) {
	t := &stats.Table{
		ID:     "Table 6",
		Title:  "Extra memory traffic from encryption / verification (IceClave mode)",
		Header: []string{"Workload", "Encryption", "Verification", "Paper enc", "Paper ver"},
	}
	paper := map[string][2]string{
		"Arithmetic": {"3.05%", "2.27%"},
		"Aggregate":  {"3.06%", "2.26%"},
		"Filter":     {"3.04%", "2.26%"},
		"TPC-H Q1":   {"2.99%", "2.22%"},
		"TPC-H Q3":   {"5.62%", "4.50%"},
		"TPC-H Q12":  {"5.11%", "3.78%"},
		"TPC-H Q14":  {"10.28%", "5.39%"},
		"TPC-H Q19":  {"36.20%", "24.75%"},
		"TPC-B":      {"46.92%", "36.68%"},
		"TPC-C":      {"39.09%", "31.72%"},
		"Wordcount":  {"67.45%", "43.81%"},
	}
	rows, err := s.forEachRow(func(name string) (rowOut, error) {
		r, err := s.run(name, core.ModeIceClave, nil)
		if err != nil {
			return rowOut{}, err
		}
		p := paper[name]
		return rowOut{row: []any{name,
			stats.Pct(r.MEE.EncryptionOverhead()),
			stats.Pct(r.MEE.VerificationOverhead()),
			p[0], p[1]}}, nil
	})
	if err != nil {
		return nil, err
	}
	addRows(t, rows)
	t.AddNote("traffic sampled 1/%d and scaled; see EXPERIMENTS.md for the address-synthesis approximation", s.Config.MEESampling)
	return t, nil
}
