package experiments

import (
	"fmt"

	"iceclave/internal/core"
	"iceclave/internal/stats"
)

// AblationCounterCache sweeps the MEE counter-cache capacity, isolating
// the design choice behind the paper's 128 KB figure (§5): too small and
// metadata thrashes; beyond the metadata working set, more buys nothing.
func (s *Suite) AblationCounterCache() (*stats.Table, error) {
	sizes := []uint64{16 << 10, 64 << 10, 128 << 10, 512 << 10}
	header := []string{"Workload"}
	for _, b := range sizes {
		header = append(header, fmt.Sprintf("%dKB", b>>10))
	}
	t := &stats.Table{
		ID:     "Ablation A1",
		Title:  "Counter-cache capacity (IceClave time normalized to 128KB)",
		Header: header,
	}
	for _, name := range []string{"TPC-H Q1", "TPC-H Q19", "TPC-B", "Wordcount"} {
		base, err := s.run(name, core.ModeIceClave, func(c *core.Config) { c.CounterCacheBytes = 128 << 10 })
		if err != nil {
			return nil, err
		}
		row := []any{name}
		for _, b := range sizes {
			b := b
			r, err := s.run(name, core.ModeIceClave, func(c *core.Config) { c.CounterCacheBytes = b })
			if err != nil {
				return nil, err
			}
			row = append(row, fmt.Sprintf("%.3f", float64(r.Total)/float64(base.Total)))
		}
		t.AddRow(row...)
	}
	return t, nil
}

// AblationCMTSize sweeps the cached-mapping-table capacity in the
// protected region, the structure §4.2 places there to avoid world
// switches; the miss rate (and hence switch count) falls with capacity.
func (s *Suite) AblationCMTSize() (*stats.Table, error) {
	sizes := []uint64{64 << 10, 1 << 20, 8 << 20}
	header := []string{"Workload"}
	for _, b := range sizes {
		header = append(header, fmt.Sprintf("%dKB miss%%", b>>10))
	}
	t := &stats.Table{
		ID:     "Ablation A2",
		Title:  "Cached mapping table capacity vs translation miss rate",
		Header: header,
	}
	for _, name := range []string{"TPC-H Q1", "TPC-C"} {
		row := []any{name}
		for _, b := range sizes {
			b := b
			r, err := s.run(name, core.ModeIceClave, func(c *core.Config) { c.CMTBytes = b })
			if err != nil {
				return nil, err
			}
			row = append(row, stats.Pct(r.CMTMissRate))
		}
		t.AddRow(row...)
	}
	return t, nil
}

// AblationPrefetch sweeps the in-storage read prefetch depth: the lever
// that converts per-page flash latency into channel-limited throughput
// for scans.
func (s *Suite) AblationPrefetch() (*stats.Table, error) {
	windows := []int{1, 8, 64, 256}
	header := []string{"Workload"}
	for _, w := range windows {
		header = append(header, fmt.Sprintf("w=%d", w))
	}
	t := &stats.Table{
		ID:     "Ablation A3",
		Title:  "Prefetch window (IceClave time normalized to w=256)",
		Header: header,
	}
	for _, name := range []string{"TPC-H Q1", "Filter"} {
		base, err := s.run(name, core.ModeIceClave, nil)
		if err != nil {
			return nil, err
		}
		row := []any{name}
		for _, w := range windows {
			w := w
			r, err := s.run(name, core.ModeIceClave, func(c *core.Config) { c.PrefetchWindow = w })
			if err != nil {
				return nil, err
			}
			row = append(row, fmt.Sprintf("%.2f", float64(r.Total)/float64(base.Total)))
		}
		t.AddRow(row...)
	}
	return t, nil
}
