package experiments

import "testing"

// TestFaultTimingMemoizedRerunByteIdentical is the suite-level
// determinism pin for the fault sweep: the Fault table must render
// byte-identically on a memoized rerun (served from the result cache
// through the shared plan pointers) and on a completely fresh suite with
// memoization off (which builds its own plan instances) — fault replay
// depends on plan contents and seed, never on instance identity or cache
// state.
func TestFaultTimingMemoizedRerunByteIdentical(t *testing.T) {
	s := testSuite()
	cold, err := s.FaultTiming()
	if err != nil {
		t.Fatal(err)
	}
	hits0, _ := s.MemoStats()
	memo, err := s.FaultTiming()
	if err != nil {
		t.Fatal(err)
	}
	hits1, _ := s.MemoStats()
	if hits1 <= hits0 {
		t.Fatalf("rerun recorded no memo hits (%d -> %d)", hits0, hits1)
	}
	if memo.String() != cold.String() {
		t.Fatalf("memoized rerun diverges:\n%s\nvs\n%s", memo.String(), cold.String())
	}

	fresh := testSuite().SetMemoize(false)
	uncached, err := fresh.FaultTiming()
	if err != nil {
		t.Fatal(err)
	}
	if uncached.String() != cold.String() {
		t.Fatalf("fresh unmemoized suite diverges:\n%s\nvs\n%s", uncached.String(), cold.String())
	}
}

// TestFaultReplaySummaryShape pins the degradation story the table
// tells: the fault-free baseline does no recovery work, every injected
// scenario actually injects, recovery work grows with the fault rate,
// and sojourns never improve under injection (for tenants that ran to
// completion, faults only add latency).
func TestFaultReplaySummaryShape(t *testing.T) {
	s := testSuite()
	sum, err := s.FaultReplaySummary()
	if err != nil {
		t.Fatal(err)
	}
	if sum.Slots != FaultReplaySlots {
		t.Fatalf("summary slots = %d, want %d", sum.Slots, FaultReplaySlots)
	}
	if len(sum.Scenarios) < 3 {
		t.Fatalf("sweep has %d scenarios, want >= 3", len(sum.Scenarios))
	}
	base := sum.Scenarios[0]
	if base.Retries != 0 || base.BreakerTrips != 0 || base.ReadFaults != 0 ||
		base.BadBlocks != 0 || base.DeadDies != 0 {
		t.Fatalf("fault-free baseline did recovery work: %+v", base)
	}
	if base.Completed != base.Tenants {
		t.Fatalf("fault-free baseline failed tenants: %d/%d", base.Completed, base.Tenants)
	}
	prevRetries := 0
	for i, sc := range sum.Scenarios[1:] {
		if sc.ReadFaults == 0 && sc.ProgramFaults == 0 {
			t.Errorf("scenario %s injected nothing", sc.Scenario)
		}
		if sc.MeanSojourn < base.MeanSojourn && sc.Completed == sc.Tenants {
			t.Errorf("scenario %s: all tenants completed yet mean sojourn %v beat the fault-free %v",
				sc.Scenario, sc.MeanSojourn, base.MeanSojourn)
		}
		// The first three injected scenarios are the rising-rate sweep;
		// recovery work must rise with the rate.
		if i < 3 {
			if sc.Retries < prevRetries {
				t.Errorf("scenario %s: retries %d fell below the lower-rate scenario's %d",
					sc.Scenario, sc.Retries, prevRetries)
			}
			prevRetries = sc.Retries
		}
	}
	last := sum.Scenarios[len(sum.Scenarios)-1]
	if last.BreakerTrips == 0 {
		t.Errorf("die-death scenario tripped no breaker: %+v", last)
	}
	if last.Completed == 0 {
		t.Errorf("die-death scenario completed nothing — degradation is not graceful: %+v", last)
	}
}
