package experiments

import (
	"strings"
	"testing"
)

// TestAdmissionTimingShowsQueueing pins the timing-mode table: every mix
// must report queued tenants with nonzero queueing delay, and capping
// admission can only slow a mix down relative to the uncapped replay.
func TestAdmissionTimingShowsQueueing(t *testing.T) {
	s := testSuite()
	tb, err := s.AdmissionTiming()
	rs := rows(t, tb, err)
	if len(rs) != len(admissionMixes) {
		t.Fatalf("rows = %d, want %d mixes", len(rs), len(admissionMixes))
	}
	for _, r := range rs {
		meanQ := cellFloat(t, r[1])
		if meanQ <= 0 {
			t.Fatalf("%s: mean queueing delay %v ms, want > 0 under a %d-slot cap",
				r[0], meanQ, admissionSlots)
		}
		if maxQ := cellFloat(t, r[2]); maxQ < meanQ {
			t.Fatalf("%s: max queue %v below mean %v", r[0], maxQ, meanQ)
		}
		// With 2 of 4 tenants admitted immediately, exactly the remainder
		// should have queued.
		if got := r[3]; !strings.HasPrefix(got, "2/") {
			t.Fatalf("%s: queued tenants = %q, want 2 of the mix", r[0], got)
		}
		// Capping can land on either side of 1x (queueing cost vs the
		// contention it removes) but must stay in a sane band.
		if ratio := cellFloat(t, r[4]); ratio < 0.5 || ratio > 3.0 {
			t.Fatalf("%s: capped/uncapped total = %vx, outside [0.5, 3.0]", r[0], ratio)
		}
		// Batched grants delay each admission to its next tick, so the
		// batched mean queue sits at or above per-release for these
		// mixes. The total ratio usually lands >= 1x, but — like the
		// capped/uncapped column — delaying admissions can also *reduce*
		// device contention, so the bound is the same sanity band, not a
		// hard 1x floor.
		batchQ := cellFloat(t, r[5])
		if batchQ < meanQ {
			t.Fatalf("%s: batched mean queue %v ms below per-release %v ms", r[0], batchQ, meanQ)
		}
		if ratio := cellFloat(t, r[6]); ratio < 0.5 || ratio > 3.0 {
			t.Fatalf("%s: batched/per-release total = %vx, outside [0.5, 3.0]", r[0], ratio)
		}
	}
}
