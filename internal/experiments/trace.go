package experiments

import (
	"fmt"

	"iceclave/internal/core"
	"iceclave/internal/sched"
	"iceclave/internal/sim"
	"iceclave/internal/stats"
	"iceclave/internal/trace"
	"iceclave/internal/workload"
)

// TraceReplaySlots is the admission cap the trace-replay scenario runs
// under: tight enough that the bursty fixture's simultaneous arrivals
// contend (which is what makes band order observable), loose enough that
// the open-loop run is not a pure serialization.
const TraceReplaySlots = 2

// TraceBandStat summarizes one priority band of the trace-replay
// scenario: queue-delay and completion-time (sojourn) statistics under
// open-loop playback, plus the same tenants' mean queueing when the whole
// mix is instead submitted at t=0 — the closed-loop saturation baseline
// every other timing table measures.
type TraceBandStat struct {
	Band        string
	Tenants     int
	MeanQueue   sim.Duration
	MaxQueue    sim.Duration
	MeanSojourn sim.Duration
	MaxSojourn  sim.Duration
	// T0MeanQueue is the band members' mean queue delay when submitted
	// at t=0 (closed-loop); the contrast against MeanQueue is the
	// open-loop story: arrival spacing absorbs queueing that saturation
	// manufactures.
	T0MeanQueue sim.Duration
}

// TraceReplaySummary is the scenario description plus per-band statistics
// the Timing 2 table renders and the bench record embeds as its
// trace_replay section.
type TraceReplaySummary struct {
	Fixture string
	Tenants int
	Slots   int
	Span    sim.Duration
	Bands   []TraceBandStat // highest band first
}

// traceScenario parses the embedded bursty fixture once per suite and
// resolves each submission onto a standard workload (by name when the
// trace names one, else deterministically via workload.ByTraceKey). The
// schedule pointer is cached so every experiment and rerun shares one
// instance — which is what lets the memo layer key open-loop replays by
// schedule identity.
func (s *Suite) traceScenario() (*trace.Schedule, []string, error) {
	s.traceOnce.Do(func() {
		entries, _, err := trace.ReadBytes(trace.FixtureBursty)
		if err != nil {
			s.traceErr = fmt.Errorf("trace fixture %s: %w", trace.FixtureBurstyName, err)
			return
		}
		sched := trace.BuildSchedule(entries)
		mix := make([]string, len(sched.Submissions))
		for i, sub := range sched.Submissions {
			name := sub.Workload
			if _, err := workload.ByName(name); err != nil {
				name = workload.ByTraceKey(name).Name
				sched.Submissions[i].Workload = name
			}
			mix[i] = name
		}
		s.traceSched, s.traceMix = sched, mix
	})
	return s.traceSched, s.traceMix, s.traceErr
}

// traceRuns replays the fixture mix twice under the scenario's admission
// cap: open-loop on the fixture's arrival schedule, and closed-loop with
// the same work all submitted at t=0. Both replays go through the memo
// layer (the schedule pointer disambiguates the keys), so reruns and the
// bench harness reuse them.
func (s *Suite) traceRuns() (open, closed []core.Result, sch *trace.Schedule, err error) {
	sch, mix, err := s.traceScenario()
	if err != nil {
		return nil, nil, nil, err
	}
	var totalPages int64
	for _, name := range mix {
		tr, err := s.Trace(name)
		if err != nil {
			return nil, nil, nil, err
		}
		totalPages += int64(tr.SetupPages) + tr.Meter.PagesWritten + 1024
	}
	cfg := s.Config
	cfg.MinFlashPages = totalPages
	cfg.AdmissionSlots = TraceReplaySlots
	if closed, err = s.runMulti(mix, core.ModeIceClave, cfg); err != nil {
		return nil, nil, nil, err
	}
	cfg.ArrivalSchedule = sch
	if open, err = s.runMulti(mix, core.ModeIceClave, cfg); err != nil {
		return nil, nil, nil, err
	}
	return open, closed, sch, nil
}

// TraceReplaySummary computes the per-band queue-delay and sojourn
// statistics of the trace-replay scenario.
func (s *Suite) TraceReplaySummary() (TraceReplaySummary, error) {
	open, closed, sch, err := s.traceRuns()
	if err != nil {
		return TraceReplaySummary{}, err
	}
	sum := TraceReplaySummary{
		Fixture: trace.FixtureBurstyName,
		Tenants: len(open),
		Slots:   TraceReplaySlots,
		Span:    sch.Span(),
	}
	for band := int(sched.PriorityHigh); band >= int(sched.PriorityLow); band-- {
		st := TraceBandStat{Band: sched.Priority(band).String()}
		var queue, sojourn, t0 sim.Duration
		for i, sub := range sch.Submissions {
			if sub.Band != band {
				continue
			}
			st.Tenants++
			queue += open[i].QueueDelay
			sojourn += open[i].Total
			t0 += closed[i].QueueDelay
			if open[i].QueueDelay > st.MaxQueue {
				st.MaxQueue = open[i].QueueDelay
			}
			if open[i].Total > st.MaxSojourn {
				st.MaxSojourn = open[i].Total
			}
		}
		if st.Tenants > 0 {
			n := sim.Duration(st.Tenants)
			st.MeanQueue = queue / n
			st.MeanSojourn = sojourn / n
			st.T0MeanQueue = t0 / n
		}
		sum.Bands = append(sum.Bands, st)
	}
	return sum, nil
}

// TraceTiming is the Timing 2 table: trace-driven open-loop replay on the
// virtual-time backbone. The committed bursty fixture's arrival schedule
// drives the admission gate — submissions fire at their recorded virtual
// instants in their classified priority bands — and the table reports
// per-band queueing and completion-time statistics against the same work
// submitted at t=0. Queue delay here counts from each tenant's scheduled
// arrival, so a late arrival's idle wait never inflates it.
func (s *Suite) TraceTiming() (*stats.Table, error) {
	sum, err := s.TraceReplaySummary()
	if err != nil {
		return nil, err
	}
	t := &stats.Table{
		ID: "Timing 2",
		Title: fmt.Sprintf("Trace-driven open-loop replay (%s: %d tenants over %v, %d slots)",
			sum.Fixture, sum.Tenants, sum.Span, sum.Slots),
		Header: []string{"Band", "Tenants", "Mean queue (ms)", "Max queue (ms)",
			"Mean sojourn (ms)", "Max sojourn (ms)", "t=0 mean queue (ms)"},
	}
	ms := func(d sim.Duration) string { return fmt.Sprintf("%.3f", float64(d)/1e6) }
	var openMean, t0Mean float64
	for _, b := range sum.Bands {
		t.AddRow(b.Band, fmt.Sprintf("%d", b.Tenants), ms(b.MeanQueue), ms(b.MaxQueue),
			ms(b.MeanSojourn), ms(b.MaxSojourn), ms(b.T0MeanQueue))
		openMean += float64(b.MeanQueue) * float64(b.Tenants) / float64(sum.Tenants)
		t0Mean += float64(b.T0MeanQueue) * float64(b.Tenants) / float64(sum.Tenants)
	}
	t.AddNote("open-loop arrivals on the virtual clock: mean queue %.3f ms vs %.3f ms for the same "+
		"work submitted at t=0 — arrival spacing absorbs queueing that saturation manufactures",
		openMean/1e6, t0Mean/1e6)
	t.AddNote("queue delay counts from each tenant's scheduled arrival (pre-arrival idle excluded); " +
		"equal-time arrivals are granted in band order")
	return t, nil
}
