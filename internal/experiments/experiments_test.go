package experiments

import (
	"strconv"
	"strings"
	"testing"

	"iceclave/internal/core"
	"iceclave/internal/stats"
	"iceclave/internal/workload"
)

// testSuite uses a reduced scale so the whole experiment matrix stays
// fast under `go test`.
func testSuite() *Suite {
	sc := workload.TinyScale()
	sc.LineitemRows = 20_000
	sc.Accounts = 8_000
	sc.TPCBTxns = 2_000
	sc.StockRows = 8_000
	sc.TPCCTxns = 800
	sc.TextPages = 512
	return NewSuite(sc, core.DefaultConfig())
}

func rows(t *testing.T, tb *stats.Table, err error) [][]string {
	t.Helper()
	if err != nil {
		t.Fatal(err)
	}
	if len(tb.Rows) == 0 {
		t.Fatalf("%s: empty table", tb.ID)
	}
	return tb.Rows
}

// cellFloat parses a numeric cell that may carry x or % suffixes.
func cellFloat(t *testing.T, cell string) float64 {
	t.Helper()
	cell = strings.TrimSuffix(strings.TrimSuffix(cell, "x"), "%")
	v, err := strconv.ParseFloat(cell, 64)
	if err != nil {
		t.Fatalf("cell %q: %v", cell, err)
	}
	return v
}

func TestTable1WriteRatios(t *testing.T) {
	s := testSuite()
	tb, err := s.Table1()
	rs := rows(t, tb, err)
	if len(rs) != 11 {
		t.Fatalf("rows = %d", len(rs))
	}
	// Wordcount must be the most write-intensive measured workload.
	var wc, q1 float64
	for _, r := range rs {
		v, err := strconv.ParseFloat(r[1], 64)
		if err != nil {
			t.Fatal(err)
		}
		switch r[0] {
		case "Wordcount":
			wc = v
		case "TPC-H Q1":
			q1 = v
		}
	}
	if wc <= q1 {
		t.Fatalf("wordcount ratio %v not above Q1 %v", wc, q1)
	}
}

func TestTable3Config(t *testing.T) {
	s := testSuite()
	tb := s.Table3()
	if !strings.Contains(tb.String(), "A72") {
		t.Fatal("Table 3 missing processor")
	}
}

func TestTable5Overheads(t *testing.T) {
	s := testSuite()
	tb, err := s.Table5()
	rs := rows(t, tb, err)
	if len(rs) != 5 {
		t.Fatalf("rows = %d, want 5 overhead sources", len(rs))
	}
	out := tb.String()
	for _, want := range []string{"TEE creation", "Context switch", "Memory verification"} {
		if !strings.Contains(out, want) {
			t.Fatalf("Table 5 missing %q", want)
		}
	}
}

func TestTable6TrafficShape(t *testing.T) {
	s := testSuite()
	tb, err := s.Table6()
	rs := rows(t, tb, err)
	enc := map[string]float64{}
	for _, r := range rs {
		enc[r[0]] = cellFloat(t, r[1])
	}
	// Table 6 shape: write-intensive workloads incur far more extra
	// traffic than scans.
	if enc["Wordcount"] <= enc["TPC-H Q1"] {
		t.Fatalf("wordcount extra traffic %v not above Q1 %v", enc["Wordcount"], enc["TPC-H Q1"])
	}
	if enc["TPC-H Q1"] > 10 {
		t.Fatalf("Q1 extra encryption traffic = %v%%, want small", enc["TPC-H Q1"])
	}
}

func TestFigure5ProtectedRegionWins(t *testing.T) {
	s := testSuite()
	tb, err := s.Figure5()
	rs := rows(t, tb, err)
	for _, r := range rs {
		// Write-bound workloads barely translate on the read path, so a
		// fraction of a percent of scheduling noise is tolerated.
		if v := cellFloat(t, r[2]); v > 1.005 {
			t.Fatalf("%s: secure-world mapping faster than protected region (%v)", r[0], v)
		}
	}
}

func TestFigure8Ordering(t *testing.T) {
	s := testSuite()
	tb, err := s.Figure8()
	rs := rows(t, tb, err)
	for _, r := range rs {
		sc, hy := cellFloat(t, r[2]), cellFloat(t, r[3])
		if hy < sc {
			t.Fatalf("%s: hybrid (%v) worse than SC-64 (%v)", r[0], hy, sc)
		}
		if hy > 1.0001 {
			t.Fatalf("%s: hybrid faster than non-encryption (%v)", r[0], hy)
		}
	}
}

func TestFigure11Headline(t *testing.T) {
	s := testSuite()
	tb, err := s.Figure11()
	rs := rows(t, tb, err)
	if len(rs) != 11 {
		t.Fatalf("rows = %d", len(rs))
	}
	faster := 0
	for _, r := range rs {
		isc, ice := cellFloat(t, r[3]), cellFloat(t, r[4])
		if isc > ice+1e-9 {
			t.Fatalf("%s: ISC (%v) slower than IceClave (%v)", r[0], isc, ice)
		}
		if ice < 1.0 {
			faster++
		}
	}
	// The majority of workloads must beat the host baseline.
	if faster < 8 {
		t.Fatalf("only %d/11 workloads beat Host", faster)
	}
}

func TestFigure12Scaling(t *testing.T) {
	s := testSuite()
	tb, err := s.Figure12()
	rs := rows(t, tb, err)
	for _, r := range rs {
		lo, hi := cellFloat(t, r[1]), cellFloat(t, r[len(r)-1])
		if hi < lo {
			t.Fatalf("%s: 32-channel speedup %v below 4-channel %v", r[0], hi, lo)
		}
	}
}

func TestFigure13OverheadBound(t *testing.T) {
	s := testSuite()
	tb, err := s.Figure13()
	rs := rows(t, tb, err)
	for _, r := range rs {
		for _, cell := range r[1:] {
			v := cellFloat(t, cell)
			if v > 1.0001 {
				t.Fatalf("%s: IceClave faster than ISC (%v)", r[0], v)
			}
			if v < 0.5 {
				t.Fatalf("%s: IceClave overhead vs ISC exceeds 2x (%v)", r[0], v)
			}
		}
	}
}

func TestFigure14LatencySweep(t *testing.T) {
	s := testSuite()
	tb, err := s.Figure14()
	rs := rows(t, tb, err)
	if len(rs) != 11 || len(rs[0]) != 6 {
		t.Fatalf("figure 14 shape: %dx%d", len(rs), len(rs[0]))
	}
}

func TestFigure15CPUOrdering(t *testing.T) {
	s := testSuite()
	tb, err := s.Figure15()
	rs := rows(t, tb, err)
	for _, r := range rs {
		a77, a72slow := cellFloat(t, r[1]), cellFloat(t, r[3])
		if a77 < a72slow {
			t.Fatalf("%s: A77 (%v) slower than A72@0.8 (%v)", r[0], a77, a72slow)
		}
	}
}

func TestFigure16DRAM(t *testing.T) {
	s := testSuite()
	tb, err := s.Figure16()
	rs := rows(t, tb, err)
	for _, r := range rs {
		iscSmall := cellFloat(t, r[3])
		if iscSmall > 1.01 {
			t.Fatalf("%s: smaller DRAM faster (%v)", r[0], iscSmall)
		}
	}
}

func TestFigure17TwoTenants(t *testing.T) {
	s := testSuite()
	tb, err := s.Figure17()
	rs := rows(t, tb, err)
	if len(rs) != 9 {
		t.Fatalf("rows = %d, want 9 mixes", len(rs))
	}
	for _, r := range rs {
		v := cellFloat(t, r[1])
		if v > 1.01 {
			t.Fatalf("%s: collocation speeds things up (%v)", r[0], v)
		}
		if v < 0.4 {
			t.Fatalf("%s: collocation degradation too extreme (%v)", r[0], v)
		}
	}
}

func TestFigure18FourTenants(t *testing.T) {
	s := testSuite()
	tb, err := s.Figure18()
	rs := rows(t, tb, err)
	if len(rs) != 9 {
		t.Fatalf("rows = %d, want 9 mixes", len(rs))
	}
}

func TestMixLabel(t *testing.T) {
	got := mixLabel([]string{"TPC-C", "TPC-H Q1", "Wordcount"})
	if got != "TC+H1+WC" {
		t.Fatalf("label = %q", got)
	}
}
