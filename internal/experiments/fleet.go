package experiments

import (
	"fmt"

	"iceclave/internal/core"
	"iceclave/internal/fault"
	"iceclave/internal/fleet"
	"iceclave/internal/sim"
	"iceclave/internal/stats"
	"iceclave/internal/workload"
)

// fleetMix is the eight-tenant population the fleet table spreads across
// devices: every standard workload family, so a device death strands a
// representative cross-section of scan, write, and compute tenants.
var fleetMix = []string{"TPC-H Q1", "TPC-B", "Filter", "Aggregate",
	"TPC-H Q12", "Arithmetic", "TPC-C", "Wordcount"}

// Fleet-sweep shape: the rack size, the placement salt every scenario
// shares, and the admission cap each device replays under (the same
// contended regime as the Fault table).
const (
	FleetDevices       = 3
	FleetPlacementSeed = 2020 // spreads the mix 2/3/3 across the rack
	FleetReplaySlots   = 2
)

// fleetDiesPerChannel mirrors the replay device geometry (4 chips x 4
// dies per channel) for scripting whole-device deaths.
const fleetDiesPerChannel = 16

// FleetRecoveryFloor is the committed tenant floor of the device-death
// scenario: bench-compare fails if a death sweep ever recovers fewer
// tenants than this. The scenario is deterministic, so the floor is an
// exact regression tripwire, not a statistical bound.
const FleetRecoveryFloor = 3

// fleetScenario is one point of the fleet sweep. A nil fleet plan is
// the all-healthy baseline.
type fleetScenario struct {
	name   string
	faults *fault.FleetPlan
	victim int // scripted dead device; -1 when none
}

// fleetScenarios builds the sweep once per suite so reruns share the
// same *fault.FleetPlan instance — per-device plans derived from it are
// cached inside the plan, so the memoizing runner sees identical
// *fault.Plan pointers on a rerun and serves every device epoch from
// cache.
func (s *Suite) fleetScenarios() []fleetScenario {
	s.fleetOnce.Do(func() {
		// Script the death of the busiest device, so the failover actually
		// has tenants to migrate. Placement is a pure hash — computing it
		// here is the same decision the replay will make.
		counts := make([]int, FleetDevices)
		for _, d := range fleet.Placements(fleetMix, FleetDevices, FleetPlacementSeed, nil) {
			counts[d]++
		}
		victim := 0
		for d, c := range counts {
			if c > counts[victim] {
				victim = d
			}
		}
		s.fleetScens = []fleetScenario{
			{"all healthy", nil, -1},
			{"device death", &fault.FleetPlan{
				Seed:          77,
				ReadTransient: 0.002,
				Deaths: fault.KillDevice(victim, sim.Time(500*sim.Microsecond),
					s.Config.Channels, fleetDiesPerChannel),
			}, victim},
		}
	})
	return s.fleetScens
}

// FleetScenarioStat summarizes one scenario of the fleet sweep.
type FleetScenarioStat struct {
	Scenario string
	Devices  int
	Tenants  int
	// Failovers is the number of degraded devices drained; Recovered and
	// Lost partition the tenants those devices stranded.
	Failovers int
	Recovered int
	Lost      int
	// GoodputPerSec is fleet-wide completed pages per simulated second of
	// fleet makespan; UtilizationSkew is max/mean completed-page share.
	GoodputPerSec   float64
	UtilizationSkew float64
	// Migration latency distribution over migrated tenants, on the
	// virtual clock.
	MigrationMean sim.Duration
	MigrationMax  sim.Duration
	Makespan      sim.Duration
}

// FleetReplaySummary is the fleet sweep the Fleet table renders and the
// bench record embeds as its fleet_replay section.
type FleetReplaySummary struct {
	Mix     []string
	Devices int
	Slots   int
	// RecoveryFloor is the committed minimum for the death scenario's
	// Recovered count (the bench-compare gate).
	RecoveryFloor int
	Scenarios     []FleetScenarioStat
	// OneDeviceIdentical is the degeneracy gate: a 1-device fleet replay
	// must produce per-tenant Results struct-identical to a bare-SSD
	// core.RunMultiStats over the same mix — checked against a direct
	// core run, bypassing the suite's memo cache.
	OneDeviceIdentical bool
}

// fleetTenants resolves the fleet mix to replay tenants (name + trace).
func (s *Suite) fleetTenants() ([]fleet.ReplayTenant, error) {
	tenants := make([]fleet.ReplayTenant, len(fleetMix))
	for i, name := range fleetMix {
		tr, err := s.Trace(name)
		if err != nil {
			return nil, err
		}
		tenants[i] = fleet.ReplayTenant{Name: name, Trace: tr}
	}
	return tenants, nil
}

// fleetBase is the shared per-device replay configuration: MinFlashPages
// covers the whole mix so every device (and the bare-SSD degeneracy
// check) replays identical hardware, making device epochs memoizable
// across scenarios.
func (s *Suite) fleetBase(tenants []fleet.ReplayTenant) core.Config {
	var totalPages int64
	for _, tn := range tenants {
		totalPages += int64(tn.Trace.SetupPages) + tn.Trace.Meter.PagesWritten + 1024
	}
	cfg := s.Config
	cfg.MinFlashPages = totalPages
	cfg.AdmissionSlots = FleetReplaySlots
	return cfg
}

// FleetReplaySummary replays the fleet sweep — an all-healthy baseline
// and a whole-device death with failover — and pins the 1-device
// degeneracy. Scenarios run across the suite's workers; device epochs
// go through the suite's memoizing runner, so scenarios sharing a
// device configuration (every clean device of both scenarios) replay it
// once per suite.
func (s *Suite) FleetReplaySummary() (FleetReplaySummary, error) {
	tenants, err := s.fleetTenants()
	if err != nil {
		return FleetReplaySummary{}, err
	}
	base := s.fleetBase(tenants)
	scens := s.fleetScenarios()
	out := FleetReplaySummary{Mix: fleetMix, Devices: FleetDevices, Slots: FleetReplaySlots,
		RecoveryFloor: FleetRecoveryFloor, Scenarios: make([]FleetScenarioStat, len(scens))}
	err = s.mapIndexed(len(scens), func(i int) error {
		rep, err := fleet.Replay(tenants, core.ModeIceClave, fleet.ReplayConfig{
			Devices:       FleetDevices,
			Base:          base,
			Faults:        scens[i].faults,
			PlacementSeed: FleetPlacementSeed,
			Run:           s.runMultiStats,
		})
		if err != nil {
			return fmt.Errorf("scenario %s: %w", scens[i].name, err)
		}
		out.Scenarios[i] = FleetScenarioStat{
			Scenario:        scens[i].name,
			Devices:         FleetDevices,
			Tenants:         len(rep.Tenants),
			Failovers:       len(rep.Failovers),
			Recovered:       rep.Recovered,
			Lost:            rep.Lost,
			GoodputPerSec:   rep.GoodputPagesPerSec,
			UtilizationSkew: rep.UtilizationSkew,
			MigrationMean:   rep.MigrationMean,
			MigrationMax:    rep.MigrationMax,
			Makespan:        rep.Makespan,
		}
		return nil
	})
	if err != nil {
		return FleetReplaySummary{}, err
	}
	identical, err := s.fleetOneDeviceIdentity(tenants, base)
	if err != nil {
		return FleetReplaySummary{}, err
	}
	out.OneDeviceIdentical = identical
	return out, nil
}

// fleetOneDeviceIdentity checks the degeneracy contract with a direct
// (unmemoized) core replay on one side and the fleet's default runner
// on the other, so the comparison never collapses into one cache entry.
func (s *Suite) fleetOneDeviceIdentity(tenants []fleet.ReplayTenant, base core.Config) (bool, error) {
	traces := make([]*workload.Trace, len(tenants))
	for i, tn := range tenants {
		traces[i] = tn.Trace
	}
	bare, _, err := core.RunMultiStats(traces, core.ModeIceClave, base)
	if err != nil {
		return false, err
	}
	rep, err := fleet.Replay(tenants, core.ModeIceClave, fleet.ReplayConfig{
		Devices: 1, Base: base, PlacementSeed: FleetPlacementSeed,
	})
	if err != nil {
		return false, err
	}
	for i := range bare {
		if rep.Tenants[i].Result != bare[i] {
			return false, nil
		}
	}
	return true, nil
}

// FleetTiming is the Fleet table: rack-scale placement, health-aware
// failover, and live tenant migration under a scripted whole-device
// death. Each row replays the same eight-tenant, three-device fleet
// under one scenario and reports fleet-wide goodput, per-device
// utilization skew, the migration-latency distribution, and the
// recovered-vs-lost tenant partition.
func (s *Suite) FleetTiming() (*stats.Table, error) {
	sum, err := s.FleetReplaySummary()
	if err != nil {
		return nil, err
	}
	t := &stats.Table{
		ID: "Fleet",
		Title: fmt.Sprintf("Rack-scale fleet: placement, failover, and migration (%d tenants, %d devices)",
			len(sum.Mix), sum.Devices),
		Header: []string{"Scenario", "Failovers", "Recovered", "Lost", "Goodput (pages/s)",
			"Util skew", "Migration mean (ms)", "Migration max (ms)", "Makespan (ms)"},
	}
	ms := func(d sim.Duration) string { return fmt.Sprintf("%.3f", float64(d)/1e6) }
	for _, sc := range sum.Scenarios {
		t.AddRow(sc.Scenario, fmt.Sprintf("%d", sc.Failovers), fmt.Sprintf("%d", sc.Recovered),
			fmt.Sprintf("%d", sc.Lost), fmt.Sprintf("%.0f", sc.GoodputPerSec),
			fmt.Sprintf("%.2f", sc.UtilizationSkew), ms(sc.MigrationMean), ms(sc.MigrationMax),
			ms(sc.Makespan))
	}
	death := sum.Scenarios[len(sum.Scenarios)-1]
	t.AddNote("tenants are placed by weighted rendezvous hashing (salt %d): a pure hash, so placement "+
		"— like the health scores and failover targets derived from replay counters — is identical on "+
		"every rerun, across pooled stacks and engine worker counts", FleetPlacementSeed)
	t.AddNote("the death scenario kills every die of the busiest device at 500µs of virtual time; the "+
		"health monitor scores it below the %.1f floor from its own telemetry (aborted reads, breaker "+
		"trips, failed offloads) and fails it over to the healthiest survivor, recovering %d/%d stranded "+
		"tenants (committed floor %d)", fleet.DefaultHealthFloor, death.Recovered,
		death.Recovered+death.Lost, sum.RecoveryFloor)
	t.AddNote("migration latency models draining every owned page through the source TEE/MEE read path "+
		"and re-encrypting it on the destination, pipelined across %d channels on the virtual clock",
		s.Config.Channels)
	t.AddNote("a 1-device fleet degenerates to the bare SSD: per-tenant Results struct-identical to "+
		"core.RunMultiStats (checked unmemoized: %v)", sum.OneDeviceIdentical)
	return t, nil
}
