package experiments

import (
	"testing"

	"iceclave/internal/core"
)

// TestMemoSharesReplaysAcrossFigures pins the satellite claim: figures
// sharing a configuration (the IceClave default appears in Figures 5, 11,
// and 15) replay it once, and the memoized tables are byte-identical to
// cold ones.
func TestMemoSharesReplaysAcrossFigures(t *testing.T) {
	cold := testSuite().SetMemoize(false)
	warm := testSuite() // memoizing by default

	type gen struct {
		name string
		fn   func(*Suite) (interface{ String() string }, error)
	}
	gens := []gen{
		{"Figure 5", func(s *Suite) (interface{ String() string }, error) { return s.Figure5() }},
		{"Figure 11", func(s *Suite) (interface{ String() string }, error) { return s.Figure11() }},
		{"Figure 15", func(s *Suite) (interface{ String() string }, error) { return s.Figure15() }},
	}
	for _, g := range gens {
		want, err := g.fn(cold)
		if err != nil {
			t.Fatal(err)
		}
		got, err := g.fn(warm)
		if err != nil {
			t.Fatal(err)
		}
		if got.String() != want.String() {
			t.Fatalf("%s: memoized table differs from cold table", g.name)
		}
	}
	hits, misses := warm.MemoStats()
	if hits == 0 {
		t.Fatal("no memo hits across Figures 5/11/15, which share the IceClave default run")
	}
	// Figures 5, 11, and 15 all need (workload, IceClave, default) and 11
	// and 15 share (workload, Host, default): at least 2 hits per workload.
	if want := int64(2 * 11); hits < want {
		t.Fatalf("memo hits = %d, want >= %d", hits, want)
	}
	if misses == 0 {
		t.Fatal("memo recorded no misses, so nothing ever replayed")
	}
}

// TestMemoResetForcesReplay pins ResetMemo: after a reset the same run is
// a miss again and still produces the identical result.
func TestMemoResetForcesReplay(t *testing.T) {
	s := testSuite()
	r1, err := s.run("Filter", core.ModeIceClave, nil)
	if err != nil {
		t.Fatal(err)
	}
	s.ResetMemo()
	if h, m := s.MemoStats(); h != 0 || m != 0 {
		t.Fatalf("stats after reset: %d/%d", h, m)
	}
	r2, err := s.run("Filter", core.ModeIceClave, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, m := s.MemoStats(); m != 1 {
		t.Fatalf("misses after reset+run = %d, want 1", m)
	}
	if r1 != r2 {
		t.Fatal("replay after reset differs from the memoized result")
	}
}

// TestMemoKeyDistinguishesConfigs pins that a config mutation is a
// different key: the same workload and mode with different channel counts
// must not share a result.
func TestMemoKeyDistinguishesConfigs(t *testing.T) {
	s := testSuite()
	r8, err := s.run("Filter", core.ModeIceClave, nil)
	if err != nil {
		t.Fatal(err)
	}
	r4, err := s.run("Filter", core.ModeIceClave, func(c *core.Config) { c.Channels = 4 })
	if err != nil {
		t.Fatal(err)
	}
	if hits, _ := s.MemoStats(); hits != 0 {
		t.Fatalf("distinct configs shared a memo entry (%d hits)", hits)
	}
	if r8.Total == r4.Total {
		t.Fatal("4- and 8-channel replays returned identical totals; key too coarse?")
	}
}
