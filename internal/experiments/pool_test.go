package experiments

import (
	"testing"

	"iceclave/internal/core"
	"iceclave/internal/workload"
)

// TestPooledSuiteOutputIdentical is the suite-level differential oracle
// for the core resource pool, on the rows the pool's post-setup seal
// could corrupt: Table 6 (MEE traffic accounting) and Figure 8 (MEE mode
// comparison). It renders both with pooling disabled, then twice with
// pooling enabled — the second enabled pass replays entirely on recycled,
// reset stacks — and requires byte-identical output.
func TestPooledSuiteOutputIdentical(t *testing.T) {
	t.Cleanup(func() { core.SetPooling(true); core.ResetPool() })
	sc := workload.TinyScale()
	render := func() (string, string) {
		s := NewSuite(sc, core.DefaultConfig())
		t6, err := s.Table6()
		if err != nil {
			t.Fatal(err)
		}
		f8, err := s.Figure8()
		if err != nil {
			t.Fatal(err)
		}
		return t6.String(), f8.String()
	}

	core.SetPooling(false)
	core.ResetPool()
	freshT6, freshF8 := render()

	core.SetPooling(true)
	core.ResetPool()
	warmT6, warmF8 := render() // builds the stacks, then pools them
	poolT6, poolF8 := render() // replays on recycled stacks
	if st := core.PoolSnapshot(); st.Hits == 0 {
		t.Fatalf("second pooled pass never hit the pool: %+v", st)
	}

	for _, c := range []struct{ name, got, want string }{
		{"Table6/warm", warmT6, freshT6},
		{"Figure8/warm", warmF8, freshF8},
		{"Table6/pooled", poolT6, freshT6},
		{"Figure8/pooled", poolF8, freshF8},
	} {
		if c.got != c.want {
			t.Errorf("%s diverges from fresh-alloc output:\n--- fresh ---\n%s\n--- got ---\n%s",
				c.name, c.want, c.got)
		}
	}
}
