package experiments

import "testing"

// The Fleet table must render byte-identically on a memoized rerun
// (served from the result cache through the shared FleetPlan's cached
// per-device plans) and on a fresh suite with memoization off — the
// fleet replay depends on plan contents and seeds, never on instance
// identity or cache state.
func TestFleetTimingMemoizedRerunByteIdentical(t *testing.T) {
	s := testSuite()
	cold, err := s.FleetTiming()
	if err != nil {
		t.Fatal(err)
	}
	hits0, _ := s.MemoStats()
	memo, err := s.FleetTiming()
	if err != nil {
		t.Fatal(err)
	}
	hits1, _ := s.MemoStats()
	if hits1 <= hits0 {
		t.Fatalf("rerun recorded no memo hits (%d -> %d)", hits0, hits1)
	}
	if memo.String() != cold.String() {
		t.Fatalf("memoized rerun diverges:\n%s\nvs\n%s", memo.String(), cold.String())
	}

	fresh := testSuite().SetMemoize(false)
	uncached, err := fresh.FleetTiming()
	if err != nil {
		t.Fatal(err)
	}
	if uncached.String() != cold.String() {
		t.Fatalf("fresh unmemoized suite diverges:\n%s\nvs\n%s", uncached.String(), cold.String())
	}
}

// The fleet sweep's story: the healthy baseline loses nobody, the
// device-death scenario fails over and recovers at least the committed
// floor, migration latencies are real, and the 1-device degeneracy
// holds against an unmemoized bare-SSD replay.
func TestFleetReplaySummaryShape(t *testing.T) {
	s := testSuite()
	sum, err := s.FleetReplaySummary()
	if err != nil {
		t.Fatal(err)
	}
	if sum.Devices != FleetDevices || sum.RecoveryFloor != FleetRecoveryFloor {
		t.Fatalf("summary shape diverges from committed constants: %+v", sum)
	}
	if !sum.OneDeviceIdentical {
		t.Fatal("1-device fleet is not results-identical to the bare SSD")
	}
	if len(sum.Scenarios) != 2 {
		t.Fatalf("sweep has %d scenarios, want 2", len(sum.Scenarios))
	}
	healthy, death := sum.Scenarios[0], sum.Scenarios[1]
	if healthy.Failovers != 0 || healthy.Recovered != 0 || healthy.Lost != 0 {
		t.Fatalf("all-healthy scenario failed over: %+v", healthy)
	}
	if healthy.UtilizationSkew <= 0 || healthy.GoodputPerSec <= 0 {
		t.Fatalf("all-healthy scenario reports no work: %+v", healthy)
	}
	if death.Failovers == 0 {
		t.Fatalf("device-death scenario triggered no failover: %+v", death)
	}
	if death.Recovered < sum.RecoveryFloor {
		t.Fatalf("death sweep recovered %d tenants, committed floor %d", death.Recovered, sum.RecoveryFloor)
	}
	if death.MigrationMax <= 0 || death.MigrationMean <= 0 || death.MigrationMean > death.MigrationMax {
		t.Fatalf("migration latency distribution incoherent: %+v", death)
	}
}
