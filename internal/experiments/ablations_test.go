package experiments

import "testing"

func TestAblationCounterCache(t *testing.T) {
	s := testSuite()
	tb, err := s.AblationCounterCache()
	rs := rows(t, tb, err)
	// A tiny counter cache must never beat the 128KB default on the
	// metadata-heavy workloads (within noise).
	for _, r := range rs {
		tiny, def := cellFloat(t, r[1]), cellFloat(t, r[3])
		if tiny < def-0.02 {
			t.Errorf("%s: 16KB counter cache (%v) beats 128KB (%v)", r[0], tiny, def)
		}
	}
}

func TestAblationCMTSize(t *testing.T) {
	s := testSuite()
	tb, err := s.AblationCMTSize()
	rs := rows(t, tb, err)
	for _, r := range rs {
		small, large := cellFloat(t, r[1]), cellFloat(t, r[3])
		if large > small+0.01 {
			t.Errorf("%s: bigger CMT raised miss rate: %v%% -> %v%%", r[0], small, large)
		}
	}
}

func TestAblationPrefetch(t *testing.T) {
	s := testSuite()
	tb, err := s.AblationPrefetch()
	rs := rows(t, tb, err)
	for _, r := range rs {
		w1, w256 := cellFloat(t, r[1]), cellFloat(t, r[4])
		if w1 < 2.0 {
			t.Errorf("%s: depth-1 prefetch only %vx slower; scans should be latency-crushed", r[0], w1)
		}
		if w256 > 1.01 {
			t.Errorf("%s: w=256 normalized to itself is %v", r[0], w256)
		}
	}
}
