package experiments

import (
	"testing"

	"iceclave/internal/sched"
)

// TestTraceTimingMemoizedRerunByteIdentical is the suite-level
// differential pin: the Timing 2 table must render byte-identically on a
// memoized rerun (served from the result cache through the shared schedule
// pointer) and on a completely fresh suite with memoization off (which
// re-parses the fixture into a new schedule instance) — replay timing
// depends on schedule contents, never on instance identity or cache state.
func TestTraceTimingMemoizedRerunByteIdentical(t *testing.T) {
	s := testSuite()
	cold, err := s.TraceTiming()
	if err != nil {
		t.Fatal(err)
	}
	hits0, _ := s.MemoStats()
	memo, err := s.TraceTiming()
	if err != nil {
		t.Fatal(err)
	}
	hits1, _ := s.MemoStats()
	if hits1 <= hits0 {
		t.Fatalf("rerun recorded no memo hits (%d -> %d)", hits0, hits1)
	}
	if memo.String() != cold.String() {
		t.Fatalf("memoized rerun diverges:\n%s\nvs\n%s", memo.String(), cold.String())
	}

	fresh := testSuite().SetMemoize(false)
	uncached, err := fresh.TraceTiming()
	if err != nil {
		t.Fatal(err)
	}
	if uncached.String() != cold.String() {
		t.Fatalf("fresh unmemoized suite diverges:\n%s\nvs\n%s", uncached.String(), cold.String())
	}
}

// TestTraceReplaySummaryCoversAllBands pins the band-coverage property at
// the experiment level: the committed bursty fixture populates every
// priority band, the high band's open-loop queueing never exceeds the low
// band's, and queue delays stay within each band's sojourn times.
func TestTraceReplaySummaryCoversAllBands(t *testing.T) {
	s := testSuite()
	sum, err := s.TraceReplaySummary()
	if err != nil {
		t.Fatal(err)
	}
	if sum.Slots != TraceReplaySlots {
		t.Fatalf("summary slots = %d, want %d", sum.Slots, TraceReplaySlots)
	}
	if len(sum.Bands) != 3 {
		t.Fatalf("summary has %d bands, want 3", len(sum.Bands))
	}
	total := 0
	byName := map[string]TraceBandStat{}
	for _, b := range sum.Bands {
		if b.Tenants == 0 {
			t.Fatalf("band %s has no tenants — fixture lost band coverage", b.Band)
		}
		total += b.Tenants
		if b.MaxQueue < b.MeanQueue || b.MaxSojourn < b.MeanSojourn {
			t.Fatalf("band %s: max below mean: %+v", b.Band, b)
		}
		if b.MeanSojourn < b.MeanQueue {
			t.Fatalf("band %s: sojourn %v below queue delay %v", b.Band, b.MeanSojourn, b.MeanQueue)
		}
		byName[b.Band] = b
	}
	if total != sum.Tenants {
		t.Fatalf("band tenants sum to %d, summary says %d", total, sum.Tenants)
	}
	high := byName[sched.PriorityHigh.String()]
	low := byName[sched.PriorityLow.String()]
	if high.MeanQueue > low.MeanQueue {
		t.Fatalf("high band queues longer than low under contention: %v > %v",
			high.MeanQueue, low.MeanQueue)
	}
}
