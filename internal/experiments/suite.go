// Package experiments regenerates every table and figure of the paper's
// evaluation (§6). Each exported method of Suite produces one result as a
// stats.Table; the per-experiment index in DESIGN.md maps paper artifacts
// to these methods and to the benchmark targets in the repository root.
//
// The suite runs serially by default; SetWorkers(n) spreads the
// independent (workload, mode, config) replays of each experiment across
// n goroutines. Replay results are memoized by (workload, mode, config) —
// replays are deterministic, so experiments sharing a configuration reuse
// one result (SetMemoize(false) restores replay-every-time). Output is
// deterministic either way: rows are assembled in workload order and note
// aggregates are summed in that same order, so a parallel or memoized run
// emits byte-identical tables to a serial cold one.
//
// Concurrency contract: Suite is safe for concurrent use — the trace and
// result caches are mutex-guarded with once-per-key population, and each
// replay worker builds a private system model. Call SetWorkers and
// SetMemoize before sharing a Suite; those knobs themselves are not
// synchronized.
package experiments

import (
	"fmt"
	"strings"
	"sync"
	"sync/atomic"

	"iceclave/internal/core"
	"iceclave/internal/stats"
	"iceclave/internal/trace"
	"iceclave/internal/workload"
)

// Suite shares recorded workload traces across experiments so each
// workload's functional execution happens once, and memoizes replay
// results by (workload, mode, config) so figures sharing a configuration
// (IceClave-default appears in Figures 5, 11, and 15, the Host baseline
// in 11 and 15, ...) replay it once per suite.
type Suite struct {
	Scale  workload.Scale
	Config core.Config

	workers int
	memoize bool
	mu      sync.Mutex
	traces  map[string]*traceEntry
	results map[runKey]*resultEntry

	// The trace-replay scenario (Timing 2): the embedded bursty fixture's
	// schedule and workload mix, parsed once per suite so every rerun
	// shares one schedule pointer — the identity the memo keys use.
	traceOnce  sync.Once
	traceSched *trace.Schedule
	traceMix   []string
	traceErr   error

	// The fault-injection sweep (Fault table): scenario plans built once
	// per suite so reruns share the same *fault.Plan pointers, for the
	// same memo-key-identity reason as the trace schedule.
	faultOnce  sync.Once
	faultScens []faultScenario

	// The fleet sweep (Fleet table): fleet fault plans built once per
	// suite — per-device plans derived from a FleetPlan are cached inside
	// it, so sharing the instance keeps device epochs memo hits.
	fleetOnce  sync.Once
	fleetScens []fleetScenario

	memoHits, memoMisses atomic.Int64
}

// traceEntry makes trace recording once-per-workload even when several
// experiment goroutines ask for the same trace concurrently.
type traceEntry struct {
	once sync.Once
	tr   *workload.Trace
	err  error
}

// runKey identifies one deterministic replay. core.Config is a flat
// comparable value, so the full configuration — seed included —
// participates in the comparison and two replays share a key exactly when
// core.Run would produce identical Results. Its two pointer fields
// (ArrivalSchedule, FaultPlan) compare by identity, which is why the
// suite caches the schedule and the fault plans: one instance per suite
// makes a rerun a memo hit. A multi-tenant
// key is the newline-joined mix under a "multi\n" prefix (workload names
// contain no newline, so a one-tenant mix can never collide with the
// single-tenant key of the same workload) — tenant order matters, since
// it decides offsets and seeds.
type runKey struct {
	name string
	mode core.Mode
	cfg  core.Config
}

// resultEntry makes each keyed replay once-per-suite; concurrent workers
// needing the same result share one execution. Multi-tenant replays
// populate multi and rstats, single-tenant replays res.
type resultEntry struct {
	once   sync.Once
	res    core.Result
	multi  []core.Result
	rstats core.RunStats
	err    error
}

// NewSuite returns a serial, memoizing suite at the given scale with the
// given base device configuration.
func NewSuite(sc workload.Scale, cfg core.Config) *Suite {
	return &Suite{
		Scale:   sc,
		Config:  cfg,
		workers: 1,
		memoize: true,
		traces:  make(map[string]*traceEntry),
		results: make(map[runKey]*resultEntry),
	}
}

// DefaultSuite uses the experiment scale and Table 3 configuration.
func DefaultSuite() *Suite {
	return NewSuite(workload.SmallScale(), core.DefaultConfig())
}

// SetWorkers sets the replay parallelism (minimum 1, the serial path) and
// returns the suite for chaining.
func (s *Suite) SetWorkers(n int) *Suite {
	if n < 1 {
		n = 1
	}
	s.workers = n
	return s
}

// Workers returns the configured replay parallelism.
func (s *Suite) Workers() int { return s.workers }

// SetEngineWorkers sets core.Config.EngineWorkers for every replay the
// suite runs: 0/1 is the exact serial event engine, >= 2 the sharded
// parallel engine (bit-identical results, so every table and figure is
// byte-identical at any setting — the parallel_replay bench gate pins
// this). Returns the suite for chaining. Like SetWorkers, call before
// sharing the suite.
func (s *Suite) SetEngineWorkers(n int) *Suite {
	if n < 0 {
		n = 0
	}
	s.Config.EngineWorkers = n
	return s
}

// SetMemoize toggles the replay-result cache (on by default) and returns
// the suite for chaining. Turning it off makes every run replay fresh —
// the honest mode for wall-clock benchmarking of the replay engine.
func (s *Suite) SetMemoize(on bool) *Suite {
	s.memoize = on
	return s
}

// ResetMemo drops every cached replay result and zeroes the hit/miss
// counters; recorded traces are kept. Benchmark harnesses call this
// between timed passes so each pass does full work.
func (s *Suite) ResetMemo() {
	s.mu.Lock()
	s.results = make(map[runKey]*resultEntry)
	s.mu.Unlock()
	s.memoHits.Store(0)
	s.memoMisses.Store(0)
}

// MemoStats reports how many replays were served from the cache (hits)
// and how many actually ran (misses) since the last ResetMemo.
func (s *Suite) MemoStats() (hits, misses int64) {
	return s.memoHits.Load(), s.memoMisses.Load()
}

// Trace records (or returns the cached) trace for the named workload.
// Concurrent callers of the same name share one recording.
func (s *Suite) Trace(name string) (*workload.Trace, error) {
	s.mu.Lock()
	e, ok := s.traces[name]
	if !ok {
		e = &traceEntry{}
		s.traces[name] = e
	}
	s.mu.Unlock()
	e.once.Do(func() {
		w, err := workload.ByName(name)
		if err != nil {
			e.err = err
			return
		}
		e.tr, e.err = workload.Record(w, s.Scale, 4096)
	})
	return e.tr, e.err
}

// run replays a workload under a mode with an optional config mutation.
func (s *Suite) run(name string, mode core.Mode, mut func(*core.Config)) (core.Result, error) {
	cfg := s.Config
	if mut != nil {
		mut(&cfg)
	}
	return s.runCfg(name, mode, cfg)
}

// runCfg replays (or returns the memoized result of) one deterministic
// (workload, mode, config) combination. Concurrent callers of the same
// key share a single replay, mirroring the trace cache.
func (s *Suite) runCfg(name string, mode core.Mode, cfg core.Config) (core.Result, error) {
	if !s.memoize {
		tr, err := s.Trace(name)
		if err != nil {
			return core.Result{}, err
		}
		return core.Run(tr, mode, cfg)
	}
	e := s.entryFor(runKey{name: name, mode: mode, cfg: cfg}, func(e *resultEntry) {
		tr, err := s.Trace(name)
		if err != nil {
			e.err = err
			return
		}
		e.res, e.err = core.Run(tr, mode, cfg)
	})
	return e.res, e.err
}

// runMulti replays (or returns the memoized results of) one collocated
// mix — the colo half of Figures 17/18 and both halves of the Timing
// table, whose uncapped runs are byte-identical to Figure 18's.
func (s *Suite) runMulti(mix []string, mode core.Mode, cfg core.Config) ([]core.Result, error) {
	out, _, err := s.runMultiStats(mix, mode, cfg)
	return out, err
}

// runMultiStats is runMulti surfacing the whole-run statistics (admission
// scheduling passes) alongside the memoized per-tenant results.
func (s *Suite) runMultiStats(mix []string, mode core.Mode, cfg core.Config) ([]core.Result, core.RunStats, error) {
	record := func(e *resultEntry) {
		traces := make([]*workload.Trace, len(mix))
		for i, name := range mix {
			tr, err := s.Trace(name)
			if err != nil {
				e.err = err
				return
			}
			traces[i] = tr
		}
		e.multi, e.rstats, e.err = core.RunMultiStats(traces, mode, cfg)
	}
	if !s.memoize {
		e := &resultEntry{}
		record(e)
		return e.multi, e.rstats, e.err
	}
	e := s.entryFor(runKey{name: "multi\n" + strings.Join(mix, "\n"), mode: mode, cfg: cfg}, record)
	return e.multi, e.rstats, e.err
}

// entryFor returns the memo entry for key, populating it via record
// exactly once across concurrent callers, and counts the hit or miss.
// Caller must have checked s.memoize.
func (s *Suite) entryFor(key runKey, record func(*resultEntry)) *resultEntry {
	s.mu.Lock()
	e, ok := s.results[key]
	if !ok {
		e = &resultEntry{}
		s.results[key] = e
	}
	s.mu.Unlock()
	hit := true
	e.once.Do(func() {
		hit = false
		record(e)
	})
	if hit {
		s.memoHits.Add(1)
	} else {
		s.memoMisses.Add(1)
	}
	return e
}

// mapIndexed runs fn(0..n-1) across up to s.workers goroutines; with one
// worker it runs inline in index order, exactly the serial path. After a
// failure, workers stop claiming further indices; the lowest-indexed
// error among the replays that actually ran is returned (which replays
// those are can vary with scheduling — only success output is guaranteed
// identical to the serial path).
func (s *Suite) mapIndexed(n int, fn func(i int) error) error {
	w := s.workers
	if w > n {
		w = n
	}
	if w <= 1 {
		for i := 0; i < n; i++ {
			if err := fn(i); err != nil {
				return err
			}
		}
		return nil
	}
	var (
		next   atomic.Int64
		failed atomic.Bool
		wg     sync.WaitGroup
		mu     sync.Mutex
		outErr error
		errIdx = n
	)
	wg.Add(w)
	for g := 0; g < w; g++ {
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1) - 1)
				if i >= n || failed.Load() {
					return
				}
				if err := fn(i); err != nil {
					failed.Store(true) // stop claiming further indices
					mu.Lock()
					if i < errIdx {
						outErr, errIdx = err, i
					}
					mu.Unlock()
				}
			}
		}()
	}
	wg.Wait()
	return outErr
}

// rowOut is one workload's table row plus the aggregate terms the
// experiment folds into its notes (summed in workload order afterwards,
// keeping floating-point results identical across parallelism levels).
type rowOut struct {
	row []any
	aux []float64
}

// forEachRow computes one row per standard workload — in parallel across
// the suite's workers — and returns them in workload order.
func (s *Suite) forEachRow(fn func(name string) (rowOut, error)) ([]rowOut, error) {
	names := workload.Names()
	outs := make([]rowOut, len(names))
	err := s.mapIndexed(len(names), func(i int) error {
		ro, err := fn(names[i])
		if err != nil {
			return fmt.Errorf("%s: %w", names[i], err)
		}
		outs[i] = ro
		return nil
	})
	if err != nil {
		return nil, err
	}
	return outs, nil
}

// sumAux folds column k of the aux vectors in row order.
func sumAux(rows []rowOut, k int) float64 {
	var sum float64
	for _, r := range rows {
		sum += r.aux[k]
	}
	return sum
}

// addRows appends every collected row to t in order.
func addRows(t *stats.Table, rows []rowOut) {
	for _, r := range rows {
		t.AddRow(r.row...)
	}
}

// generators lists every paper artifact in order.
func (s *Suite) generators() []struct {
	name string
	fn   func() (*stats.Table, error)
} {
	return []struct {
		name string
		fn   func() (*stats.Table, error)
	}{
		{"Table 1", s.Table1},
		{"Table 3", func() (*stats.Table, error) { return s.Table3(), nil }},
		{"Figure 5", s.Figure5},
		{"Figure 8", s.Figure8},
		{"Table 5", s.Table5},
		{"Table 6", s.Table6},
		{"Figure 11", s.Figure11},
		{"Figure 12", s.Figure12},
		{"Figure 13", s.Figure13},
		{"Figure 14", s.Figure14},
		{"Figure 15", s.Figure15},
		{"Figure 16", s.Figure16},
		{"Figure 17", s.Figure17},
		{"Figure 18", s.Figure18},
		{"Timing 1", s.AdmissionTiming},
		{"Timing 2", s.TraceTiming},
		{"Fault", s.FaultTiming},
		{"Fleet", s.FleetTiming},
	}
}

// All regenerates every table and figure, in paper order. Each
// experiment's independent replays run across the suite's workers; the
// experiments themselves run in sequence so nested parallelism stays
// bounded by SetWorkers.
func (s *Suite) All() ([]*stats.Table, error) {
	var out []*stats.Table
	for _, g := range s.generators() {
		t, err := g.fn()
		if err != nil {
			return nil, fmt.Errorf("%s: %w", g.name, err)
		}
		out = append(out, t)
	}
	return out, nil
}

// AllParallel is All with the suite temporarily set to n workers — the
// parallel evaluation harness entry point used by cmd/iceclave-bench.
func (s *Suite) AllParallel(n int) ([]*stats.Table, error) {
	old := s.workers
	s.SetWorkers(n)
	defer s.SetWorkers(old)
	return s.All()
}
