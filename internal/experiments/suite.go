// Package experiments regenerates every table and figure of the paper's
// evaluation (§6). Each exported method of Suite produces one result as a
// stats.Table; the per-experiment index in DESIGN.md maps paper artifacts
// to these methods and to the benchmark targets in the repository root.
package experiments

import (
	"fmt"

	"iceclave/internal/core"
	"iceclave/internal/stats"
	"iceclave/internal/workload"
)

// Suite shares recorded workload traces across experiments so each
// workload's functional execution happens once.
type Suite struct {
	Scale  workload.Scale
	Config core.Config

	traces map[string]*workload.Trace
}

// NewSuite returns a suite at the given scale with the given base device
// configuration.
func NewSuite(sc workload.Scale, cfg core.Config) *Suite {
	return &Suite{Scale: sc, Config: cfg, traces: make(map[string]*workload.Trace)}
}

// DefaultSuite uses the experiment scale and Table 3 configuration.
func DefaultSuite() *Suite {
	return NewSuite(workload.SmallScale(), core.DefaultConfig())
}

// Trace records (or returns the cached) trace for the named workload.
func (s *Suite) Trace(name string) (*workload.Trace, error) {
	if tr, ok := s.traces[name]; ok {
		return tr, nil
	}
	w, err := workload.ByName(name)
	if err != nil {
		return nil, err
	}
	tr, err := workload.Record(w, s.Scale, 4096)
	if err != nil {
		return nil, err
	}
	s.traces[name] = tr
	return tr, nil
}

// run replays a workload under a mode with an optional config mutation.
func (s *Suite) run(name string, mode core.Mode, mut func(*core.Config)) (core.Result, error) {
	tr, err := s.Trace(name)
	if err != nil {
		return core.Result{}, err
	}
	cfg := s.Config
	if mut != nil {
		mut(&cfg)
	}
	return core.Run(tr, mode, cfg)
}

// forEach runs fn over the standard workload list, collecting errors.
func forEach(fn func(name string) error) error {
	for _, name := range workload.Names() {
		if err := fn(name); err != nil {
			return fmt.Errorf("%s: %w", name, err)
		}
	}
	return nil
}

// All regenerates every table and figure, in paper order.
func (s *Suite) All() ([]*stats.Table, error) {
	type gen struct {
		name string
		fn   func() (*stats.Table, error)
	}
	gens := []gen{
		{"Table 1", s.Table1},
		{"Table 3", func() (*stats.Table, error) { return s.Table3(), nil }},
		{"Figure 5", s.Figure5},
		{"Figure 8", s.Figure8},
		{"Table 5", s.Table5},
		{"Table 6", s.Table6},
		{"Figure 11", s.Figure11},
		{"Figure 12", s.Figure12},
		{"Figure 13", s.Figure13},
		{"Figure 14", s.Figure14},
		{"Figure 15", s.Figure15},
		{"Figure 16", s.Figure16},
		{"Figure 17", s.Figure17},
		{"Figure 18", s.Figure18},
	}
	var out []*stats.Table
	for _, g := range gens {
		t, err := g.fn()
		if err != nil {
			return nil, fmt.Errorf("%s: %w", g.name, err)
		}
		out = append(out, t)
	}
	return out, nil
}
