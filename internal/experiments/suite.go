// Package experiments regenerates every table and figure of the paper's
// evaluation (§6). Each exported method of Suite produces one result as a
// stats.Table; the per-experiment index in DESIGN.md maps paper artifacts
// to these methods and to the benchmark targets in the repository root.
//
// The suite runs serially by default; SetWorkers(n) spreads the
// independent (workload, mode, config) replays of each experiment across
// n goroutines. Output is deterministic either way: rows are assembled in
// workload order and note aggregates are summed in that same order, so a
// parallel run emits byte-identical tables to a serial one.
//
// Concurrency contract: Suite is safe for concurrent use — the trace
// cache is mutex-guarded with once-per-workload recording, and each
// replay worker builds a private system model. Call SetWorkers before
// sharing a Suite; the worker count itself is not synchronized.
package experiments

import (
	"fmt"
	"sync"
	"sync/atomic"

	"iceclave/internal/core"
	"iceclave/internal/stats"
	"iceclave/internal/workload"
)

// Suite shares recorded workload traces across experiments so each
// workload's functional execution happens once.
type Suite struct {
	Scale  workload.Scale
	Config core.Config

	workers int
	mu      sync.Mutex
	traces  map[string]*traceEntry
}

// traceEntry makes trace recording once-per-workload even when several
// experiment goroutines ask for the same trace concurrently.
type traceEntry struct {
	once sync.Once
	tr   *workload.Trace
	err  error
}

// NewSuite returns a serial suite at the given scale with the given base
// device configuration.
func NewSuite(sc workload.Scale, cfg core.Config) *Suite {
	return &Suite{Scale: sc, Config: cfg, workers: 1, traces: make(map[string]*traceEntry)}
}

// DefaultSuite uses the experiment scale and Table 3 configuration.
func DefaultSuite() *Suite {
	return NewSuite(workload.SmallScale(), core.DefaultConfig())
}

// SetWorkers sets the replay parallelism (minimum 1, the serial path) and
// returns the suite for chaining.
func (s *Suite) SetWorkers(n int) *Suite {
	if n < 1 {
		n = 1
	}
	s.workers = n
	return s
}

// Workers returns the configured replay parallelism.
func (s *Suite) Workers() int { return s.workers }

// Trace records (or returns the cached) trace for the named workload.
// Concurrent callers of the same name share one recording.
func (s *Suite) Trace(name string) (*workload.Trace, error) {
	s.mu.Lock()
	e, ok := s.traces[name]
	if !ok {
		e = &traceEntry{}
		s.traces[name] = e
	}
	s.mu.Unlock()
	e.once.Do(func() {
		w, err := workload.ByName(name)
		if err != nil {
			e.err = err
			return
		}
		e.tr, e.err = workload.Record(w, s.Scale, 4096)
	})
	return e.tr, e.err
}

// run replays a workload under a mode with an optional config mutation.
func (s *Suite) run(name string, mode core.Mode, mut func(*core.Config)) (core.Result, error) {
	tr, err := s.Trace(name)
	if err != nil {
		return core.Result{}, err
	}
	cfg := s.Config
	if mut != nil {
		mut(&cfg)
	}
	return core.Run(tr, mode, cfg)
}

// mapIndexed runs fn(0..n-1) across up to s.workers goroutines; with one
// worker it runs inline in index order, exactly the serial path. After a
// failure, workers stop claiming further indices; the lowest-indexed
// error among the replays that actually ran is returned (which replays
// those are can vary with scheduling — only success output is guaranteed
// identical to the serial path).
func (s *Suite) mapIndexed(n int, fn func(i int) error) error {
	w := s.workers
	if w > n {
		w = n
	}
	if w <= 1 {
		for i := 0; i < n; i++ {
			if err := fn(i); err != nil {
				return err
			}
		}
		return nil
	}
	var (
		next   atomic.Int64
		failed atomic.Bool
		wg     sync.WaitGroup
		mu     sync.Mutex
		outErr error
		errIdx = n
	)
	wg.Add(w)
	for g := 0; g < w; g++ {
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1) - 1)
				if i >= n || failed.Load() {
					return
				}
				if err := fn(i); err != nil {
					failed.Store(true) // stop claiming further indices
					mu.Lock()
					if i < errIdx {
						outErr, errIdx = err, i
					}
					mu.Unlock()
				}
			}
		}()
	}
	wg.Wait()
	return outErr
}

// rowOut is one workload's table row plus the aggregate terms the
// experiment folds into its notes (summed in workload order afterwards,
// keeping floating-point results identical across parallelism levels).
type rowOut struct {
	row []any
	aux []float64
}

// forEachRow computes one row per standard workload — in parallel across
// the suite's workers — and returns them in workload order.
func (s *Suite) forEachRow(fn func(name string) (rowOut, error)) ([]rowOut, error) {
	names := workload.Names()
	outs := make([]rowOut, len(names))
	err := s.mapIndexed(len(names), func(i int) error {
		ro, err := fn(names[i])
		if err != nil {
			return fmt.Errorf("%s: %w", names[i], err)
		}
		outs[i] = ro
		return nil
	})
	if err != nil {
		return nil, err
	}
	return outs, nil
}

// sumAux folds column k of the aux vectors in row order.
func sumAux(rows []rowOut, k int) float64 {
	var sum float64
	for _, r := range rows {
		sum += r.aux[k]
	}
	return sum
}

// addRows appends every collected row to t in order.
func addRows(t *stats.Table, rows []rowOut) {
	for _, r := range rows {
		t.AddRow(r.row...)
	}
}

// generators lists every paper artifact in order.
func (s *Suite) generators() []struct {
	name string
	fn   func() (*stats.Table, error)
} {
	return []struct {
		name string
		fn   func() (*stats.Table, error)
	}{
		{"Table 1", s.Table1},
		{"Table 3", func() (*stats.Table, error) { return s.Table3(), nil }},
		{"Figure 5", s.Figure5},
		{"Figure 8", s.Figure8},
		{"Table 5", s.Table5},
		{"Table 6", s.Table6},
		{"Figure 11", s.Figure11},
		{"Figure 12", s.Figure12},
		{"Figure 13", s.Figure13},
		{"Figure 14", s.Figure14},
		{"Figure 15", s.Figure15},
		{"Figure 16", s.Figure16},
		{"Figure 17", s.Figure17},
		{"Figure 18", s.Figure18},
	}
}

// All regenerates every table and figure, in paper order. Each
// experiment's independent replays run across the suite's workers; the
// experiments themselves run in sequence so nested parallelism stays
// bounded by SetWorkers.
func (s *Suite) All() ([]*stats.Table, error) {
	var out []*stats.Table
	for _, g := range s.generators() {
		t, err := g.fn()
		if err != nil {
			return nil, fmt.Errorf("%s: %w", g.name, err)
		}
		out = append(out, t)
	}
	return out, nil
}

// AllParallel is All with the suite temporarily set to n workers — the
// parallel evaluation harness entry point used by cmd/iceclave-bench.
func (s *Suite) AllParallel(n int) ([]*stats.Table, error) {
	old := s.workers
	s.SetWorkers(n)
	defer s.SetWorkers(old)
	return s.All()
}
