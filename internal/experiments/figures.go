package experiments

import (
	"fmt"

	"iceclave/internal/core"
	"iceclave/internal/cpu"
	"iceclave/internal/mee"
	"iceclave/internal/sim"
	"iceclave/internal/stats"
	"iceclave/internal/workload"
)

// Figure5 compares IceClave against the variant that keeps the FTL
// mapping table in the secure world, forcing a world-switch round trip on
// every translation (the paper reports the protected region wins by 21.6%
// on average).
func (s *Suite) Figure5() (*stats.Table, error) {
	t := &stats.Table{
		ID:     "Figure 5",
		Title:  "Mapping table in protected region vs secure world (normalized to IceClave)",
		Header: []string{"Workload", "IceClave", "Map-in-secure-world", "Win"},
	}
	rows, err := s.forEachRow(func(name string) (rowOut, error) {
		base, err := s.run(name, core.ModeIceClave, nil)
		if err != nil {
			return rowOut{}, err
		}
		sec, err := s.run(name, core.ModeIceClave, func(c *core.Config) { c.SecureWorldMapping = true })
		if err != nil {
			return rowOut{}, err
		}
		norm := float64(base.Total) / float64(sec.Total)
		return rowOut{
			row: []any{name, "1.000", fmt.Sprintf("%.3f", norm),
				stats.Pct(float64(sec.Total-base.Total) / float64(sec.Total))},
			aux: []float64{float64(sec.Total)/float64(base.Total) - 1},
		}, nil
	})
	if err != nil {
		return nil, err
	}
	addRows(t, rows)
	t.AddNote("average improvement from the protected region: %s (paper: 21.6%%)",
		stats.Pct(sumAux(rows, 0)/float64(len(rows))))
	return t, nil
}

// Figure8 compares the DRAM protection schemes: no encryption, SC-64
// split counters, and IceClave's hybrid counters, normalized to the
// non-encrypted run.
func (s *Suite) Figure8() (*stats.Table, error) {
	t := &stats.Table{
		ID:     "Figure 8",
		Title:  "Memory protection schemes (performance normalized to Non-Encryption)",
		Header: []string{"Workload", "Non-Encryption", "SC-64", "IceClave"},
	}
	rows, err := s.forEachRow(func(name string) (rowOut, error) {
		none, err := s.run(name, core.ModeIceClave, func(c *core.Config) { c.MEEMode = mee.ModeNone })
		if err != nil {
			return rowOut{}, err
		}
		sc, err := s.run(name, core.ModeIceClave, func(c *core.Config) { c.MEEMode = mee.ModeSplit64 })
		if err != nil {
			return rowOut{}, err
		}
		hy, err := s.run(name, core.ModeIceClave, func(c *core.Config) { c.MEEMode = mee.ModeHybrid })
		if err != nil {
			return rowOut{}, err
		}
		return rowOut{
			row: []any{name, "1.000",
				fmt.Sprintf("%.3f", float64(none.Total)/float64(sc.Total)),
				fmt.Sprintf("%.3f", float64(none.Total)/float64(hy.Total))},
			aux: []float64{float64(sc.Total)/float64(hy.Total) - 1},
		}, nil
	})
	if err != nil {
		return nil, err
	}
	addRows(t, rows)
	t.AddNote("hybrid counters improve on SC-64 by %s on average (paper: 43%% on memory-bound phases)",
		stats.Pct(sumAux(rows, 0)/float64(len(rows))))
	return t, nil
}

// Figure11 is the headline comparison: Host, Host+SGX, ISC, and IceClave
// with the load/compute/security breakdown, normalized to Host.
func (s *Suite) Figure11() (*stats.Table, error) {
	t := &stats.Table{
		ID:    "Figure 11",
		Title: "Performance of Host, Host+SGX, ISC, IceClave (normalized to Host; breakdown in ms)",
		Header: []string{"Workload", "Host", "Host+SGX", "ISC", "IceClave",
			"IC-load", "IC-compute", "IC-memsec", "IC-tee"},
	}
	rows, err := s.forEachRow(func(name string) (rowOut, error) {
		host, err := s.run(name, core.ModeHost, nil)
		if err != nil {
			return rowOut{}, err
		}
		sgx, err := s.run(name, core.ModeHostSGX, nil)
		if err != nil {
			return rowOut{}, err
		}
		isc, err := s.run(name, core.ModeISC, nil)
		if err != nil {
			return rowOut{}, err
		}
		ice, err := s.run(name, core.ModeIceClave, nil)
		if err != nil {
			return rowOut{}, err
		}
		norm := func(r core.Result) string {
			return fmt.Sprintf("%.3f", float64(r.Total)/float64(host.Total))
		}
		ms := func(d sim.Duration) string { return fmt.Sprintf("%.2f", float64(d)/1e6) }
		return rowOut{
			row: []any{name, "1.000", norm(sgx), norm(isc), norm(ice),
				ms(ice.LoadTime), ms(ice.ComputeTime), ms(ice.SecurityTime), ms(ice.TEETime)},
			aux: []float64{
				ice.SpeedupOver(host),
				ice.SpeedupOver(sgx),
				float64(ice.Total-isc.Total) / float64(isc.Total),
			},
		}, nil
	})
	if err != nil {
		return nil, err
	}
	addRows(t, rows)
	fn := float64(len(rows))
	t.AddNote("IceClave vs Host: %.2fx avg speedup (paper: 2.31x)", sumAux(rows, 0)/fn)
	t.AddNote("IceClave vs Host+SGX: %.2fx avg speedup (paper: 2.38x)", sumAux(rows, 1)/fn)
	t.AddNote("IceClave overhead vs ISC: %s avg (paper: 7.6%%)", stats.Pct(sumAux(rows, 2)/fn))
	return t, nil
}

// channelSweep runs the channel-count sensitivity for the given baseline.
func (s *Suite) channelSweep(id, title string, baseline core.Mode, invert bool) (*stats.Table, error) {
	channels := []int{4, 8, 16, 32}
	header := []string{"Workload"}
	for _, ch := range channels {
		header = append(header, fmt.Sprintf("%d ch", ch))
	}
	t := &stats.Table{ID: id, Title: title, Header: header}
	rows, err := s.forEachRow(func(name string) (rowOut, error) {
		row := []any{name}
		for _, ch := range channels {
			ch := ch
			base, err := s.run(name, baseline, func(c *core.Config) { c.Channels = ch })
			if err != nil {
				return rowOut{}, err
			}
			ice, err := s.run(name, core.ModeIceClave, func(c *core.Config) { c.Channels = ch })
			if err != nil {
				return rowOut{}, err
			}
			v := ice.SpeedupOver(base)
			if invert {
				// Figure 13 plots IceClave relative to ISC (<=1).
				row = append(row, fmt.Sprintf("%.3f", v))
			} else {
				row = append(row, stats.Ratio(v))
			}
		}
		return rowOut{row: row}, nil
	})
	if err != nil {
		return nil, err
	}
	addRows(t, rows)
	return t, nil
}

// Figure12 sweeps the internal bandwidth (channel count) against Host.
func (s *Suite) Figure12() (*stats.Table, error) {
	return s.channelSweep("Figure 12",
		"IceClave speedup vs Host across flash channel counts", core.ModeHost, false)
}

// Figure13 sweeps the channel count against ISC (values <= 1; the gap is
// IceClave's security overhead).
func (s *Suite) Figure13() (*stats.Table, error) {
	return s.channelSweep("Figure 13",
		"IceClave performance normalized to ISC across channel counts", core.ModeISC, true)
}

// Figure14 sweeps the flash read latency from ultra-low-latency (10 µs)
// to commodity TLC (110 µs), reporting speedup over Host.
func (s *Suite) Figure14() (*stats.Table, error) {
	lats := []int{10, 20, 50, 80, 110}
	header := []string{"Workload"}
	for _, l := range lats {
		header = append(header, fmt.Sprintf("%dus", l))
	}
	t := &stats.Table{ID: "Figure 14", Title: "IceClave speedup vs Host across flash read latencies", Header: header}
	rows, err := s.forEachRow(func(name string) (rowOut, error) {
		row := []any{name}
		for _, l := range lats {
			l := l
			mut := func(c *core.Config) { c.FlashTiming.ReadLatency = sim.Duration(l) * sim.Microsecond }
			host, err := s.run(name, core.ModeHost, mut)
			if err != nil {
				return rowOut{}, err
			}
			ice, err := s.run(name, core.ModeIceClave, mut)
			if err != nil {
				return rowOut{}, err
			}
			row = append(row, stats.Ratio(ice.SpeedupOver(host)))
		}
		return rowOut{row: row}, nil
	})
	if err != nil {
		return nil, err
	}
	addRows(t, rows)
	return t, nil
}

// Figure15 sweeps the in-storage processor model, reporting speedup over
// the host baseline.
func (s *Suite) Figure15() (*stats.Table, error) {
	cores := []cpu.Core{cpu.CortexA77, cpu.CortexA72, cpu.CortexA72Slow, cpu.CortexA53}
	header := []string{"Workload"}
	for _, c := range cores {
		header = append(header, c.Name)
	}
	t := &stats.Table{ID: "Figure 15", Title: "IceClave speedup vs Host across in-storage processors", Header: header}
	rows, err := s.forEachRow(func(name string) (rowOut, error) {
		host, err := s.run(name, core.ModeHost, nil)
		if err != nil {
			return rowOut{}, err
		}
		row := []any{name}
		for _, c := range cores {
			c := c
			ice, err := s.run(name, core.ModeIceClave, func(cf *core.Config) { cf.StorageCore = c })
			if err != nil {
				return rowOut{}, err
			}
			row = append(row, stats.Ratio(ice.SpeedupOver(host)))
		}
		return rowOut{row: row}, nil
	})
	if err != nil {
		return nil, err
	}
	addRows(t, rows)
	return t, nil
}

// Figure16 halves the controller DRAM. The paper's 32 GB datasets exceed
// 4 GB of DRAM; at simulation scale the DRAM is set proportional to the
// dataset (1.5x and 0.75x) to preserve the fits/does-not-fit relation.
func (s *Suite) Figure16() (*stats.Table, error) {
	t := &stats.Table{
		ID:     "Figure 16",
		Title:  "Impact of SSD DRAM capacity (normalized to ISC with large DRAM)",
		Header: []string{"Workload", "ISC 4GB-eq", "IceClave 4GB-eq", "ISC 2GB-eq", "IceClave 2GB-eq"},
	}
	rows, err := s.forEachRow(func(name string) (rowOut, error) {
		tr, err := s.Trace(name)
		if err != nil {
			return rowOut{}, err
		}
		dataset := uint64(tr.SetupPages) * 4096
		big := func(c *core.Config) { c.DRAMBytes = dataset*3/2 + (8 << 20) }
		small := func(c *core.Config) { c.DRAMBytes = dataset*3/4 + (8 << 20) }
		iscBig, err := s.run(name, core.ModeISC, big)
		if err != nil {
			return rowOut{}, err
		}
		iceBig, err := s.run(name, core.ModeIceClave, big)
		if err != nil {
			return rowOut{}, err
		}
		iscSmall, err := s.run(name, core.ModeISC, small)
		if err != nil {
			return rowOut{}, err
		}
		iceSmall, err := s.run(name, core.ModeIceClave, small)
		if err != nil {
			return rowOut{}, err
		}
		norm := func(r core.Result) string {
			return fmt.Sprintf("%.3f", float64(iscBig.Total)/float64(r.Total))
		}
		return rowOut{row: []any{name, "1.000", norm(iceBig), norm(iscSmall), norm(iceSmall)}}, nil
	})
	if err != nil {
		return nil, err
	}
	addRows(t, rows)
	t.AddNote("DRAM scaled with the dataset (1.5x / 0.75x) to preserve the capacity relation of 4GB/2GB vs 32GB data")
	return t, nil
}

// multiTenant replays a mix concurrently and reports the mean normalized
// performance (solo time / collocated time) across instances. The mixes
// themselves are independent replays, so they spread across the suite's
// workers.
func (s *Suite) multiTenant(id, title string, mixes [][]string) (*stats.Table, error) {
	t := &stats.Table{ID: id, Title: title, Header: []string{"Mix", "Normalized perf"}}
	rows := make([]rowOut, len(mixes))
	err := s.mapIndexed(len(mixes), func(i int) error {
		mix := mixes[i]
		var traces []*workload.Trace
		var totalPages int64
		for _, name := range mix {
			tr, err := s.Trace(name)
			if err != nil {
				return err
			}
			traces = append(traces, tr)
			totalPages += int64(tr.SetupPages) + tr.Meter.PagesWritten + 1024
		}
		// Solo and collocated runs execute on identical hardware: the
		// device is sized for the whole mix in both cases. Solo runs go
		// through the memo, so mixes sharing a sizing replay them once.
		cfg := s.Config
		cfg.MinFlashPages = totalPages
		solo := make([]core.Result, len(mix))
		for j, name := range mix {
			r, err := s.runCfg(name, core.ModeIceClave, cfg)
			if err != nil {
				return err
			}
			solo[j] = r
		}
		colo, err := s.runMulti(mix, core.ModeIceClave, cfg)
		if err != nil {
			return err
		}
		var sum float64
		for j := range colo {
			sum += float64(solo[j].Total) / float64(colo[j].Total)
		}
		rows[i] = rowOut{row: []any{mixLabel(mix), fmt.Sprintf("%.3f", sum/float64(len(colo)))}}
		return nil
	})
	if err != nil {
		return nil, err
	}
	addRows(t, rows)
	return t, nil
}

// mixLabel abbreviates a workload mix the way the paper's x-axis does
// (TC+AG, TB+H1+H3+H12, ...).
func mixLabel(mix []string) string {
	abbr := map[string]string{
		"Arithmetic": "AR", "Aggregate": "AG", "Filter": "FI",
		"TPC-H Q1": "H1", "TPC-H Q3": "H3", "TPC-H Q12": "H12",
		"TPC-H Q14": "H14", "TPC-H Q19": "H19",
		"TPC-B": "TB", "TPC-C": "TC", "Wordcount": "WC",
	}
	out := ""
	for i, m := range mix {
		if i > 0 {
			out += "+"
		}
		out += abbr[m]
	}
	return out
}

// Figure17 collocates TPC-C with each other workload (two tenants).
func (s *Suite) Figure17() (*stats.Table, error) {
	mixes := [][]string{
		{"TPC-C", "Aggregate"}, {"TPC-C", "Arithmetic"}, {"TPC-C", "Filter"},
		{"TPC-C", "TPC-H Q1"}, {"TPC-C", "TPC-H Q3"}, {"TPC-C", "TPC-H Q12"},
		{"TPC-C", "TPC-H Q14"}, {"TPC-C", "TPC-H Q19"}, {"TPC-C", "TPC-B"},
	}
	return s.multiTenant("Figure 17", "Two concurrent IceClave instances (normalized to solo)", mixes)
}

// Figure18 runs the paper's four-tenant mixes.
func (s *Suite) Figure18() (*stats.Table, error) {
	mixes := [][]string{
		{"TPC-C", "Aggregate", "Arithmetic", "Filter"},
		{"TPC-C", "TPC-H Q1", "TPC-H Q3", "TPC-H Q12"},
		{"TPC-C", "TPC-H Q12", "TPC-H Q14", "TPC-H Q19"},
		{"TPC-C", "TPC-B", "Aggregate", "TPC-H Q1"},
		{"TPC-B", "Aggregate", "Arithmetic", "Filter"},
		{"TPC-B", "TPC-H Q1", "TPC-H Q3", "TPC-H Q12"},
		{"TPC-B", "TPC-H Q12", "TPC-H Q14", "TPC-H Q19"},
		{"TPC-H Q1", "TPC-H Q3", "TPC-H Q12", "TPC-H Q14"},
		{"TPC-H Q3", "TPC-H Q12", "TPC-H Q14", "TPC-H Q19"},
	}
	return s.multiTenant("Figure 18", "Four concurrent IceClave instances (normalized to solo)", mixes)
}
