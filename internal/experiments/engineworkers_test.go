package experiments

import (
	"testing"

	"iceclave/internal/core"
	"iceclave/internal/workload"
)

// TestEngineWorkersOutputIdentical renders every table through the serial
// event engine and through the sharded parallel engine at several worker
// counts and requires byte-identical output — the acceptance bar for the
// parallel replay engine (Table 6, Figure 8, Timing 1, Timing 2, and the
// rest all flow from Results the sharded engine must reproduce bit for
// bit).
func TestEngineWorkersOutputIdentical(t *testing.T) {
	sc := workload.TinyScale()
	serial, err := NewSuite(sc, core.DefaultConfig()).All()
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{2, 4} {
		sharded, err := NewSuite(sc, core.DefaultConfig()).SetEngineWorkers(workers).All()
		if err != nil {
			t.Fatalf("engine workers %d: %v", workers, err)
		}
		if len(serial) != len(sharded) {
			t.Fatalf("engine workers %d: table counts differ: %d vs %d", workers, len(serial), len(sharded))
		}
		for i := range serial {
			if got, want := sharded[i].String(), serial[i].String(); got != want {
				t.Errorf("%s: sharded-engine output diverges (workers=%d):\n--- serial ---\n%s\n--- sharded ---\n%s",
					serial[i].ID, workers, want, got)
			}
		}
	}
}
