package experiments

import (
	"fmt"
	"sort"

	"iceclave/internal/core"
	"iceclave/internal/fault"
	"iceclave/internal/sim"
	"iceclave/internal/stats"
)

// faultMix is the six-tenant collocation the fault table degrades: a
// representative spread of scan-heavy, write-heavy, and compute-heavy
// workloads, so recovery cost shows up in reads, programs, and MAC
// verification alike.
var faultMix = []string{"TPC-H Q1", "TPC-B", "Filter", "Aggregate", "TPC-H Q12", "Arithmetic"}

// FaultReplaySlots is the admission cap the fault scenarios run under:
// the same contended regime as the timing tables, so breaker sheds and
// failure-path slot releases are exercised, not just straight-line
// retries.
const FaultReplaySlots = 2

// faultScenario is one named point on the fault-rate sweep. A nil plan
// is the fault-free baseline — the replay must not even observe that the
// sweep exists (the zero-plan bit-identity contract).
type faultScenario struct {
	name string
	plan *fault.Plan
}

// faultScenarios builds the sweep once per suite so every rerun shares
// the same *fault.Plan instances — plan pointers participate in the memo
// key, so cached construction is what makes a rerun a memo hit instead
// of a fresh replay.
func (s *Suite) faultScenarios() []faultScenario {
	s.faultOnce.Do(func() {
		mk := func(read, prog, mac float64, deaths ...fault.DieDeath) *fault.Plan {
			return &fault.Plan{Seed: 42, ReadTransient: read, ProgramFail: prog,
				MACFail: mac, DieDeaths: deaths}
		}
		s.faultScens = []faultScenario{
			{"fault-free", nil},
			{"0.5% faults", mk(0.005, 0.001, 0.0005)},
			{"2% faults", mk(0.02, 0.005, 0.002)},
			{"5% faults", mk(0.05, 0.01, 0.005)},
			{"2% + die deaths", mk(0.02, 0.005, 0.002,
				fault.DieDeath{Channel: 1, Die: 0, At: sim.Time(2 * sim.Millisecond)},
				fault.DieDeath{Channel: 2, Die: 1, At: sim.Time(4 * sim.Millisecond)})},
		}
	})
	return s.faultScens
}

// FaultScenarioStat summarizes one scenario of the fault sweep:
// completion and goodput under the scenario's injected fault rates, the
// sojourn distribution across tenants, and the recovery work every layer
// performed (step retries and breaker trips in the replay, read reissues
// and block/die retirement in the FTL).
type FaultScenarioStat struct {
	Scenario  string
	Tenants   int
	Completed int
	// GoodputPerSec is completed work — the flash pages read and written
	// by tenants that finished — per simulated second of makespan. Pages,
	// not offloads: a failed heavy tenant shortens the makespan, and an
	// unweighted rate would report that loss as a speedup.
	GoodputPerSec float64
	MeanSojourn   sim.Duration
	P99Sojourn    sim.Duration
	MaxSojourn    sim.Duration
	Retries       int   // step-level replay retries across tenants
	BreakerTrips  int   // circuit-breaker opens across tenants
	ReadRetries   int64 // FTL transient-read reissues
	BadBlocks     int64 // blocks retired after program failures
	DeadDies      int64 // dies retired by the die-death script
	ReadFaults    int64 // injected device-level read aborts
	ProgramFaults int64 // injected device-level program aborts
}

// FaultReplaySummary is the scenario sweep the Fault table renders and
// the bench record embeds as its fault_replay section.
type FaultReplaySummary struct {
	Mix       []string
	Slots     int
	Scenarios []FaultScenarioStat
}

// percentile returns the p-quantile of the (unsorted) durations by the
// nearest-rank method; with fewer than 1/(1-p) samples it equals the max.
func percentile(ds []sim.Duration, p float64) sim.Duration {
	if len(ds) == 0 {
		return 0
	}
	sorted := append([]sim.Duration(nil), ds...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	idx := int(float64(len(sorted))*p+0.5) - 1
	if idx < 0 {
		idx = 0
	}
	if idx >= len(sorted) {
		idx = len(sorted) - 1
	}
	return sorted[idx]
}

// FaultReplaySummary replays the fault mix once per scenario — fault-free
// baseline, three probabilistic rates, and a scripted die-death run — and
// summarizes goodput, sojourn, and recovery work for each. Scenarios run
// across the suite's workers; plans are seeded and decisions keyed on
// per-channel ordinals, so every scenario is deterministic and memoizable
// like any other replay.
func (s *Suite) FaultReplaySummary() (FaultReplaySummary, error) {
	scens := s.faultScenarios()
	var totalPages int64
	work := make([]int64, len(faultMix)) // per-tenant goodput weight
	for i, name := range faultMix {
		tr, err := s.Trace(name)
		if err != nil {
			return FaultReplaySummary{}, err
		}
		totalPages += int64(tr.SetupPages) + tr.Meter.PagesWritten + 1024
		work[i] = tr.Meter.PagesRead + tr.Meter.PagesWritten
	}
	out := FaultReplaySummary{Mix: faultMix, Slots: FaultReplaySlots,
		Scenarios: make([]FaultScenarioStat, len(scens))}
	err := s.mapIndexed(len(scens), func(i int) error {
		cfg := s.Config
		cfg.MinFlashPages = totalPages
		cfg.AdmissionSlots = FaultReplaySlots
		cfg.FaultPlan = scens[i].plan
		results, rstats, err := s.runMultiStats(faultMix, core.ModeIceClave, cfg)
		if err != nil {
			return fmt.Errorf("scenario %s: %w", scens[i].name, err)
		}
		st := FaultScenarioStat{
			Scenario:      scens[i].name,
			Tenants:       len(results),
			ReadRetries:   rstats.FTL.ReadRetries,
			BadBlocks:     rstats.FTL.BadBlocks,
			DeadDies:      rstats.FTL.DeadDies,
			ReadFaults:    rstats.Flash.ReadFaults,
			ProgramFaults: rstats.Flash.ProgramFaults,
		}
		sojourns := make([]sim.Duration, 0, len(results))
		var sum, makespan sim.Duration
		var donePages int64
		for j, r := range results {
			if !r.Failed {
				st.Completed++
				donePages += work[j]
			}
			st.Retries += r.Retries
			st.BreakerTrips += r.BreakerTrips
			sojourns = append(sojourns, r.Total)
			sum += r.Total
			if r.Total > makespan {
				makespan = r.Total
			}
		}
		st.MeanSojourn = sum / sim.Duration(len(results))
		st.P99Sojourn = percentile(sojourns, 0.99)
		st.MaxSojourn = makespan
		if makespan > 0 {
			st.GoodputPerSec = float64(donePages) / (float64(makespan) / 1e9)
		}
		out.Scenarios[i] = st
		return nil
	})
	if err != nil {
		return FaultReplaySummary{}, err
	}
	return out, nil
}

// FaultTiming is the Fault table: end-to-end degradation under the
// deterministic fault sweep. Each row replays the same six-tenant mix
// under one injection scenario and reports what survived (completions,
// goodput), what it cost (sojourn distribution), and the recovery work
// every layer performed to get there (step retries and breaker trips in
// the replay, read reissues and bad-block/die retirement in the FTL).
func (s *Suite) FaultTiming() (*stats.Table, error) {
	sum, err := s.FaultReplaySummary()
	if err != nil {
		return nil, err
	}
	t := &stats.Table{
		ID: "Fault",
		Title: fmt.Sprintf("Deterministic fault injection and recovery (%d tenants, %d slots)",
			len(sum.Mix), sum.Slots),
		Header: []string{"Scenario", "Completed", "Goodput (pages/s)", "Mean sojourn (ms)",
			"p99 sojourn (ms)", "Max sojourn (ms)", "Retries", "Breaker trips",
			"Bad blocks", "Dead dies"},
	}
	ms := func(d sim.Duration) string { return fmt.Sprintf("%.3f", float64(d)/1e6) }
	base := sum.Scenarios[0]
	for _, sc := range sum.Scenarios {
		t.AddRow(sc.Scenario, fmt.Sprintf("%d/%d", sc.Completed, sc.Tenants),
			fmt.Sprintf("%.0f", sc.GoodputPerSec), ms(sc.MeanSojourn), ms(sc.P99Sojourn),
			ms(sc.MaxSojourn), fmt.Sprintf("%d", sc.Retries), fmt.Sprintf("%d", sc.BreakerTrips),
			fmt.Sprintf("%d", sc.BadBlocks), fmt.Sprintf("%d", sc.DeadDies))
	}
	last := sum.Scenarios[len(sum.Scenarios)-1]
	t.AddNote("plans are seeded and fault decisions keyed on per-channel op ordinals: every scenario "+
		"replays bit-identically across reruns, pooled stacks, and engine worker counts; the fault-free "+
		"row is byte-identical to a run with no plan at all (goodput %.0f pages/s baseline)",
		base.GoodputPerSec)
	t.AddNote("goodput counts only pages of tenants that completed, over the run's makespan — a failed " +
		"tenant's work is lost throughput, not a shorter run")
	t.AddNote("recovery is layered: the FTL reissues transient reads and retires failing blocks "+
		"(invisible to the tenant until its budget is spent), the replay retries surviving failures "+
		"with virtual-time backoff, and per-tenant breakers shed during sustained faults — the die-death "+
		"scenario retires %d die(s) and still completes %d/%d tenants", last.DeadDies,
		last.Completed, last.Tenants)
	t.AddNote("p99 by nearest rank over %d tenants (equals max below 100 samples)", len(sum.Mix))
	return t, nil
}
