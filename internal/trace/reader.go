package trace

import (
	"fmt"
	"io"
	"math"
	"strconv"
	"strings"

	"iceclave/internal/sim"
)

// Format identifies a sniffed trace schema.
type Format int

// Known trace schemas. Sniffing happens on the header row: the native
// schema names its columns directly; the Azure schema is the column
// layout of the public Azure Functions invocation traces.
const (
	FormatUnknown Format = iota
	FormatNative
	FormatAzure
)

// String names the format.
func (f Format) String() string {
	switch f {
	case FormatNative:
		return "native"
	case FormatAzure:
		return "azure-functions"
	default:
		return "unknown"
	}
}

// Column layouts the sniffer recognizes (lower-cased, space-trimmed).
var (
	nativeHeader = []string{"arrival_us", "tenant", "workload", "class"}
	azureHeader  = []string{"app", "func", "end_timestamp", "duration"}
)

// Azure-schema classification thresholds: the invocation's duration is
// the only latency signal the schema carries, so short functions classify
// as interactive (they are what a user is waiting on), long ones as
// batch, the rest as normal.
const (
	AzureInteractiveMaxSeconds = 1.0
	AzureNormalMaxSeconds      = 60.0
)

// Azure timestamps are seconds (possibly relative to the trace's own
// epoch, possibly Unix time); anything beyond this magnitude would
// overflow the nanosecond virtual clock.
const maxAzureSeconds = 4e9

// Read parses a CSV arrival trace from r, sniffing the schema from the
// header row. It returns the parsed entries in file order (BuildSchedule
// sorts), the sniffed format, and the first error encountered — a
// *ParseError for a malformed row, a wrapped ErrUnknownFormat for an
// unrecognized header, or r's own read error.
func Read(r io.Reader) ([]Entry, Format, error) {
	data, err := io.ReadAll(r)
	if err != nil {
		return nil, FormatUnknown, err
	}
	return ReadBytes(data)
}

// ReadBytes is Read over an in-memory trace.
func ReadBytes(data []byte) ([]Entry, Format, error) {
	lines := strings.Split(string(data), "\n")
	// The header is the first non-blank line; everything before it must be
	// blank (a trace with leading garbage fails the sniff, not the rows).
	head := 0
	for head < len(lines) && blank(lines[head]) {
		head++
	}
	if head == len(lines) {
		return nil, FormatUnknown, fmt.Errorf("%w: empty input", ErrUnknownFormat)
	}
	format := sniff(lines[head])
	if format == FormatUnknown {
		return nil, FormatUnknown, fmt.Errorf("%w: %q", ErrUnknownFormat, strings.TrimRight(lines[head], "\r"))
	}
	var entries []Entry
	for i := head + 1; i < len(lines); i++ {
		if blank(lines[i]) {
			continue
		}
		fields, err := splitRow(lines[i], i+1, format)
		if err != nil {
			return nil, format, err
		}
		var e Entry
		if format == FormatNative {
			e, err = parseNative(fields, i+1)
		} else {
			e, err = parseAzure(fields, i+1)
		}
		if err != nil {
			return nil, format, err
		}
		entries = append(entries, e)
	}
	return entries, format, nil
}

// blank reports whether a line carries no row (empty or CR/whitespace
// only) — the only lines a reader may skip.
func blank(line string) bool { return strings.TrimSpace(line) == "" }

// sniff matches the header row against the known column layouts.
func sniff(header string) Format {
	cols := strings.Split(strings.TrimRight(header, "\r"), ",")
	for i, c := range cols {
		cols[i] = strings.ToLower(strings.TrimSpace(c))
	}
	switch {
	case equalCols(cols, nativeHeader):
		return FormatNative
	case equalCols(cols, azureHeader):
		return FormatAzure
	default:
		return FormatUnknown
	}
}

func equalCols(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// splitRow splits one data row and rejects ragged rows (every schema here
// has exactly four columns). Field values are space-trimmed; the trace
// schemas carry no quoting or embedded commas.
func splitRow(line string, lineNo int, f Format) ([]string, error) {
	fields := strings.Split(strings.TrimRight(line, "\r"), ",")
	if len(fields) != 4 {
		return nil, &ParseError{Line: lineNo, Format: f, Field: "row",
			Reason: fmt.Sprintf("has %d fields, want 4", len(fields))}
	}
	for i := range fields {
		fields[i] = strings.TrimSpace(fields[i])
	}
	return fields, nil
}

// parseNative parses one arrival_us,tenant,workload,class row.
func parseNative(fields []string, lineNo int) (Entry, error) {
	us, err := strconv.ParseInt(fields[0], 10, 64)
	if err != nil {
		return Entry{}, &ParseError{Line: lineNo, Format: FormatNative, Field: "arrival_us",
			Reason: fmt.Sprintf("not an integer: %q", fields[0])}
	}
	if us < 0 {
		return Entry{}, &ParseError{Line: lineNo, Format: FormatNative, Field: "arrival_us",
			Reason: fmt.Sprintf("negative arrival %d", us)}
	}
	if us > int64(sim.MaxTime)/int64(sim.Microsecond) {
		return Entry{}, &ParseError{Line: lineNo, Format: FormatNative, Field: "arrival_us",
			Reason: fmt.Sprintf("arrival %d overflows the virtual clock", us)}
	}
	if fields[1] == "" {
		return Entry{}, &ParseError{Line: lineNo, Format: FormatNative, Field: "tenant", Reason: "empty"}
	}
	if fields[2] == "" {
		return Entry{}, &ParseError{Line: lineNo, Format: FormatNative, Field: "workload", Reason: "empty"}
	}
	class, ok := parseClass(fields[3])
	if !ok {
		return Entry{}, &ParseError{Line: lineNo, Format: FormatNative, Field: "class",
			Reason: fmt.Sprintf("unknown class %q (want interactive|normal|batch)", fields[3])}
	}
	return Entry{
		Arrival:  sim.Time(us) * sim.Microsecond,
		Tenant:   fields[1],
		Workload: fields[2],
		Class:    class,
	}, nil
}

// parseClass maps the native schema's class column (and its common
// aliases) onto a Class.
func parseClass(s string) (Class, bool) {
	switch strings.ToLower(s) {
	case "interactive", "high":
		return ClassInteractive, true
	case "normal", "default":
		return ClassNormal, true
	case "batch", "background", "low":
		return ClassBatch, true
	default:
		return 0, false
	}
}

// parseAzure parses one app,func,end_timestamp,duration row. The arrival
// instant is end_timestamp - duration (both in seconds); the class comes
// from the duration thresholds above.
func parseAzure(fields []string, lineNo int) (Entry, error) {
	if fields[0] == "" {
		return Entry{}, &ParseError{Line: lineNo, Format: FormatAzure, Field: "app", Reason: "empty"}
	}
	if fields[1] == "" {
		return Entry{}, &ParseError{Line: lineNo, Format: FormatAzure, Field: "func", Reason: "empty"}
	}
	end, err := parseSeconds(fields[2])
	if err != nil {
		return Entry{}, &ParseError{Line: lineNo, Format: FormatAzure, Field: "end_timestamp",
			Reason: err.Error()}
	}
	dur, err := parseSeconds(fields[3])
	if err != nil {
		return Entry{}, &ParseError{Line: lineNo, Format: FormatAzure, Field: "duration",
			Reason: err.Error()}
	}
	if dur < 0 {
		return Entry{}, &ParseError{Line: lineNo, Format: FormatAzure, Field: "duration",
			Reason: fmt.Sprintf("negative duration %v", fields[3])}
	}
	class := ClassBatch
	switch {
	case dur <= AzureInteractiveMaxSeconds:
		class = ClassInteractive
	case dur <= AzureNormalMaxSeconds:
		class = ClassNormal
	}
	return Entry{
		// The invocation *started* at end - duration; that start is the
		// arrival. It may precede the trace's own epoch (a long function
		// ending just after the capture began) — BuildSchedule renormalizes.
		Arrival:  sim.Time(math.Round((end - dur) * float64(sim.Second))),
		Tenant:   fields[0],
		Workload: fields[1],
		Class:    class,
	}, nil
}

// parseSeconds parses a finite, clock-representable seconds value.
func parseSeconds(s string) (float64, error) {
	v, err := strconv.ParseFloat(s, 64)
	if err != nil {
		return 0, fmt.Errorf("not a number: %q", s)
	}
	if math.IsNaN(v) || math.IsInf(v, 0) {
		return 0, fmt.Errorf("not finite: %q", s)
	}
	if math.Abs(v) > maxAzureSeconds {
		return 0, fmt.Errorf("%v seconds overflows the virtual clock", s)
	}
	return v, nil
}
