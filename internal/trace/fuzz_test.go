package trace

import (
	"errors"
	"strings"
	"testing"
)

// FuzzTraceReader pins the reader's failure contract on arbitrary bytes:
// parsing never panics, every failure is a typed error (*ParseError or a
// wrapped ErrUnknownFormat), and a successful parse accounts for every
// non-blank data row — no silent drops — and builds a well-formed schedule
// (sorted, zero-anchored, bands in range). Seeds cover both schemas, the
// malformed shapes the golden tests pin, and the committed corpus under
// testdata/fuzz keeps prior crashers in CI forever.
func FuzzTraceReader(f *testing.F) {
	f.Add([]byte("arrival_us,tenant,workload,class\n0,a,Filter,interactive\n250,b,Aggregate,normal\n"))
	f.Add([]byte("app,func,end_timestamp,duration\napp-a,f1,10.5,0.5\napp-b,f2,12.0,30\n"))
	f.Add([]byte("arrival_us,tenant,workload,class\n10,beta,Aggregate\n"))
	f.Add([]byte("arrival_us,tenant,workload,class\n-1,a,w,batch\n"))
	f.Add([]byte("arrival_us,tenant,workload,class\n99999999999999999,a,w,batch\n"))
	f.Add([]byte("app,func,end_timestamp,duration\na,f,NaN,1\n"))
	f.Add([]byte("app,func,end_timestamp,duration\na,f,1e308,1e308\n"))
	f.Add([]byte("lba,size,op,time\n1,2,r,3\n"))
	f.Add([]byte("\r\n\narrival_us, Tenant ,WORKLOAD,class\r\n 5 , a , w , low \r\n"))
	f.Add([]byte(""))
	f.Add([]byte("\n\n\n"))
	f.Add(FixtureBursty)

	f.Fuzz(func(t *testing.T, data []byte) {
		entries, format, err := ReadBytes(data)
		if err != nil {
			var pe *ParseError
			switch {
			case errors.Is(err, ErrUnknownFormat):
				if format != FormatUnknown {
					t.Fatalf("unknown-format error but format = %v", format)
				}
			case errors.As(err, &pe):
				if pe.Line < 2 {
					t.Fatalf("ParseError on line %d — data rows start after the header", pe.Line)
				}
				if format == FormatUnknown {
					t.Fatalf("row-level error with unknown format: %v", err)
				}
			default:
				t.Fatalf("untyped error %v (%T)", err, err)
			}
			return
		}
		if format == FormatUnknown {
			t.Fatal("successful parse reported unknown format")
		}
		// Every non-blank data row must be accounted for.
		lines := strings.Split(string(data), "\n")
		head := 0
		for head < len(lines) && strings.TrimSpace(lines[head]) == "" {
			head++
		}
		rows := 0
		for _, l := range lines[head+1:] {
			if strings.TrimSpace(l) != "" {
				rows++
			}
		}
		if len(entries) != rows {
			t.Fatalf("parsed %d entries from %d non-blank rows — silent drop", len(entries), rows)
		}
		sched := BuildSchedule(entries)
		if len(sched.Submissions) != len(entries) {
			t.Fatalf("schedule has %d submissions for %d entries", len(sched.Submissions), len(entries))
		}
		for i, sub := range sched.Submissions {
			if sub.Band < 0 || sub.Band > 2 {
				t.Fatalf("submission %d band %d out of range", i, sub.Band)
			}
			if i == 0 {
				if sub.At != 0 {
					t.Fatalf("schedule not zero-anchored: first arrival %v", sub.At)
				}
				continue
			}
			if sub.At < sched.Submissions[i-1].At {
				t.Fatalf("schedule out of order at %d: %v after %v", i, sub.At, sched.Submissions[i-1].At)
			}
		}
	})
}
