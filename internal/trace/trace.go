// Package trace converts real arrival traces into virtual-time submission
// schedules for the replay engine. Every workload in the experiment suite
// is otherwise a synthetic generator submitted at t=0, so the timing
// tables only ever measure saturation; a trace reader turns any public
// block/KV/function-invocation trace into an open-loop arrival scenario —
// submissions fire at their recorded (virtual) instants, whether or not
// the device has caught up — and a classifier maps each entry onto the
// scheduler's three priority bands, so real mixes finally exercise band
// logic that synthetic traffic left at PriorityNormal.
//
// The package reads CSV traces with a format-sniffing header: a minimal
// native schema (arrival_us,tenant,workload,class) and an
// Azure-Functions-shaped schema (app,func,end_timestamp,duration — the
// column layout of the public Azure Functions invocation traces, where
// the arrival instant is end_timestamp minus duration). Malformed input
// produces typed errors (*ParseError, ErrUnknownFormat), never panics or
// silent row drops: FuzzTraceReader pins that every non-blank data row is
// either parsed or reported.
//
// Concurrency contract: readers and schedule builders are pure functions
// over their input; a built Schedule is immutable by convention and safe
// to share across replays (core.RunMulti only reads it).
package trace

import (
	"errors"
	"fmt"
	"sort"

	"iceclave/internal/sim"
)

// Class is a latency class attached to a trace entry; it is what the
// classifier maps onto a priority band. The three classes mirror the
// scheduler's three bands: interactive traffic is latency-sensitive,
// batch traffic is throughput work that can wait, normal is everything
// between.
type Class int

// Latency classes, lowest to highest urgency. The numeric values align
// with the sched package's priority bands (PriorityLow..PriorityHigh), so
// Band is the identity — a deliberate coupling pinned by a test.
const (
	ClassBatch Class = iota
	ClassNormal
	ClassInteractive

	numClasses
)

// String names the class as the native schema spells it.
func (c Class) String() string {
	switch c {
	case ClassBatch:
		return "batch"
	case ClassNormal:
		return "normal"
	case ClassInteractive:
		return "interactive"
	default:
		return fmt.Sprintf("class(%d)", int(c))
	}
}

// Band maps the latency class onto the scheduler's priority bands
// (0 = low .. 2 = high): interactive traffic dispatches first, batch
// traffic last.
func (c Class) Band() int { return int(c) }

// Entry is one parsed trace record, format-independent: an arrival
// instant on the trace's own clock, the submitting tenant, an opaque
// workload identifier (a repo workload name in the native schema, a
// function hash in the Azure schema), and the latency class the
// classifier assigned.
type Entry struct {
	Arrival  sim.Time
	Tenant   string
	Workload string
	Class    Class
}

// Submission is one scheduled arrival on the virtual clock: replay
// tenant Tenant submits workload Workload at virtual time At into
// priority band Band.
type Submission struct {
	At       sim.Time
	Tenant   string
	Workload string
	Band     int
}

// Schedule is a fixed open-loop arrival schedule: submissions in
// nondecreasing virtual-time order, with the earliest arrival at t=0.
// core.Config.ArrivalSchedule points at one of these; the zero value
// (nil pointer) means the closed t=0 semantics.
type Schedule struct {
	Submissions []Submission
}

// BuildSchedule orders entries by arrival (a stable sort, so same-instant
// entries keep their file order), shifts the earliest arrival to virtual
// time zero, and maps each entry's class onto its band. Out-of-order
// trace files are therefore fine: the schedule is sorted, not the file.
func BuildSchedule(entries []Entry) *Schedule {
	order := make([]int, len(entries))
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(x, y int) bool {
		return entries[order[x]].Arrival < entries[order[y]].Arrival
	})
	s := &Schedule{Submissions: make([]Submission, len(entries))}
	var epoch sim.Time
	if len(order) > 0 {
		epoch = entries[order[0]].Arrival
	}
	for k, i := range order {
		e := entries[i]
		s.Submissions[k] = Submission{
			At:       e.Arrival - epoch,
			Tenant:   e.Tenant,
			Workload: e.Workload,
			Band:     e.Class.Band(),
		}
	}
	return s
}

// ParseSchedule is Read + BuildSchedule over an in-memory trace.
func ParseSchedule(data []byte) (*Schedule, Format, error) {
	entries, f, err := ReadBytes(data)
	if err != nil {
		return nil, f, err
	}
	return BuildSchedule(entries), f, nil
}

// Span returns the arrival span: the virtual time of the last submission
// (the first is always at zero).
func (s *Schedule) Span() sim.Duration {
	if len(s.Submissions) == 0 {
		return 0
	}
	return s.Submissions[len(s.Submissions)-1].At
}

// BandCounts returns how many submissions land in each priority band
// (index 0 = low .. 2 = high).
func (s *Schedule) BandCounts() [3]int {
	var out [3]int
	for _, sub := range s.Submissions {
		if sub.Band >= 0 && sub.Band < len(out) {
			out[sub.Band]++
		}
	}
	return out
}

// Compressed returns a copy of the schedule with the arrival span
// linearly rescaled onto [0, span] — real traces cover hours or weeks,
// and compression maps that burst structure onto the device's millisecond
// timescale. Relative arrival order is preserved exactly; a schedule with
// zero span (or a non-positive target) is returned as a plain copy.
func (s *Schedule) Compressed(span sim.Duration) *Schedule {
	out := &Schedule{Submissions: append([]Submission(nil), s.Submissions...)}
	last := s.Span()
	if last <= 0 || span <= 0 {
		return out
	}
	scale := float64(span) / float64(last)
	for i := range out.Submissions {
		out.Submissions[i].At = sim.Time(float64(out.Submissions[i].At) * scale)
	}
	return out
}

// ErrUnknownFormat reports a header line that matches no known trace
// schema; Read wraps it with the offending header.
var ErrUnknownFormat = errors.New("trace: unrecognized trace header")

// ParseError is the typed per-row failure every reader returns for
// malformed input: the 1-based line number, the sniffed format, the field
// at fault, and what was wrong with it. Malformed rows are never silently
// dropped and never panic — they stop the read with one of these.
type ParseError struct {
	Line   int
	Format Format
	Field  string
	Reason string
}

// Error formats the failure with its location.
func (e *ParseError) Error() string {
	return fmt.Sprintf("trace: line %d (%s schema): field %q: %s", e.Line, e.Format, e.Field, e.Reason)
}
