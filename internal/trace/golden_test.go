package trace

import (
	"errors"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"iceclave/internal/sim"
)

func readGolden(t *testing.T, name string) []byte {
	t.Helper()
	data, err := os.ReadFile(filepath.Join("testdata", name))
	if err != nil {
		t.Fatal(err)
	}
	return data
}

// TestGoldenSchedules pins the exact parsed schedule — arrival instants,
// tenants, workloads, and band classification — for the committed golden
// traces, so any reader or classifier change that shifts a single
// submission fails loudly.
func TestGoldenSchedules(t *testing.T) {
	cases := []struct {
		file   string
		format Format
		want   []Submission
	}{
		{
			// Well-formed, in file order, one entry per band.
			file:   "golden_native.csv",
			format: FormatNative,
			want: []Submission{
				{At: 0, Tenant: "alpha", Workload: "Filter", Band: 2},
				{At: 250 * sim.Microsecond, Tenant: "beta", Workload: "Aggregate", Band: 1},
				{At: 1000 * sim.Microsecond, Tenant: "gamma", Workload: "TPC-B", Band: 0},
			},
		},
		{
			// Azure schema: arrival = end_timestamp - duration, classified
			// by duration. f2 starts *before* the trace epoch (12 - 30 =
			// -18 s), so it becomes the schedule origin and the two
			// invocations starting at 10 s land 28 s later, keeping file
			// order at the shared instant.
			file:   "golden_azure.csv",
			format: FormatAzure,
			want: []Submission{
				{At: 0, Tenant: "app-b", Workload: "f2", Band: 1},
				{At: 28 * sim.Second, Tenant: "app-a", Workload: "f1", Band: 2},
				{At: 28 * sim.Second, Tenant: "app-a", Workload: "f3", Band: 0},
			},
		},
		{
			// Out-of-order timestamps: the schedule is sorted and
			// re-anchored at the earliest arrival (100 us), the file is not.
			file:   "out_of_order.csv",
			format: FormatNative,
			want: []Submission{
				{At: 0, Tenant: "tenant-a", Workload: "Filter", Band: 2},
				{At: 0, Tenant: "tenant-b", Workload: "Aggregate", Band: 1},
				{At: 300 * sim.Microsecond, Tenant: "tenant-a", Workload: "TPC-C", Band: 0},
				{At: 800 * sim.Microsecond, Tenant: "tenant-z", Workload: "Wordcount", Band: 0},
			},
		},
		{
			// Duplicate tenants are distinct submissions, never merged.
			file:   "duplicate_tenants.csv",
			format: FormatNative,
			want: []Submission{
				{At: 0, Tenant: "shared", Workload: "Filter", Band: 2},
				{At: 0, Tenant: "shared", Workload: "Filter", Band: 2},
				{At: 50 * sim.Microsecond, Tenant: "shared", Workload: "Aggregate", Band: 0},
			},
		},
	}
	for _, tc := range cases {
		t.Run(tc.file, func(t *testing.T) {
			data := readGolden(t, tc.file)
			sched, format, err := ParseSchedule(data)
			if err != nil {
				t.Fatal(err)
			}
			if format != tc.format {
				t.Fatalf("format = %v, want %v", format, tc.format)
			}
			if !reflect.DeepEqual(sched.Submissions, tc.want) {
				t.Fatalf("schedule mismatch:\ngot  %+v\nwant %+v", sched.Submissions, tc.want)
			}
		})
	}
}

// TestGoldenRaggedRowTypedError pins that a short row in a committed
// fixture fails with a located *ParseError instead of panicking or
// dropping the row.
func TestGoldenRaggedRowTypedError(t *testing.T) {
	_, format, err := ReadBytes(readGolden(t, "ragged.csv"))
	if format != FormatNative {
		t.Fatalf("format = %v, want native", format)
	}
	var pe *ParseError
	if !errors.As(err, &pe) {
		t.Fatalf("error = %v (%T), want *ParseError", err, err)
	}
	if pe.Line != 3 || pe.Field != "row" {
		t.Fatalf("ParseError = %+v, want line 3 field \"row\"", pe)
	}
	if msg := pe.Error(); !strings.Contains(msg, "line 3") || !strings.Contains(msg, "native") {
		t.Fatalf("error message %q lacks location", msg)
	}
}

// TestMalformedRowsProduceTypedErrors walks the malformed-input matrix:
// every bad row stops the read with a *ParseError naming the line and
// field, and an unrecognized header wraps ErrUnknownFormat.
func TestMalformedRowsProduceTypedErrors(t *testing.T) {
	native := "arrival_us,tenant,workload,class\n"
	azure := "app,func,end_timestamp,duration\n"
	cases := []struct {
		name  string
		input string
		line  int
		field string
	}{
		{"native bad arrival", native + "abc,a,w,batch\n", 2, "arrival_us"},
		{"native negative arrival", native + "-5,a,w,batch\n", 2, "arrival_us"},
		{"native overflow arrival", native + "99999999999999999,a,w,batch\n", 2, "arrival_us"},
		{"native empty tenant", native + "0,,w,batch\n", 2, "tenant"},
		{"native empty workload", native + "0,a,,batch\n", 2, "workload"},
		{"native unknown class", native + "0,a,w,urgent\n", 2, "class"},
		{"native extra field", native + "0,a,w,batch,x\n", 2, "row"},
		{"native second row bad", native + "0,a,w,batch\n1,b,w,nope\n", 3, "class"},
		{"azure empty app", azure + ",f,1,1\n", 2, "app"},
		{"azure empty func", azure + "a,,1,1\n", 2, "func"},
		{"azure bad end", azure + "a,f,xyz,1\n", 2, "end_timestamp"},
		{"azure nan end", azure + "a,f,NaN,1\n", 2, "end_timestamp"},
		{"azure inf duration", azure + "a,f,1,Inf\n", 2, "duration"},
		{"azure negative duration", azure + "a,f,1,-2\n", 2, "duration"},
		{"azure overflow seconds", azure + "a,f,5e12,1\n", 2, "end_timestamp"},
		{"azure ragged", azure + "a,f,1\n", 2, "row"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, _, err := ReadBytes([]byte(tc.input))
			var pe *ParseError
			if !errors.As(err, &pe) {
				t.Fatalf("error = %v (%T), want *ParseError", err, err)
			}
			if pe.Line != tc.line || pe.Field != tc.field {
				t.Fatalf("ParseError = %+v, want line %d field %q", pe, tc.line, tc.field)
			}
		})
	}

	for _, bad := range []string{"", "\n\n", "a,b,c\n", "lba,size,op,time\n1,2,r,3\n"} {
		if _, _, err := ReadBytes([]byte(bad)); !errors.Is(err, ErrUnknownFormat) {
			t.Fatalf("input %q: error = %v, want ErrUnknownFormat", bad, err)
		}
	}
}

// TestReaderTolerantFraming pins the framing the readers must accept
// without changing the parse: CRLF line endings, blank lines between rows,
// leading blank lines before the header, and padded fields.
func TestReaderTolerantFraming(t *testing.T) {
	framed := "\n\r\narrival_us, tenant , workload ,class\r\n\n 0 , a , Filter , batch \r\n\n"
	entries, format, err := ReadBytes([]byte(framed))
	if err != nil {
		t.Fatal(err)
	}
	if format != FormatNative {
		t.Fatalf("format = %v, want native", format)
	}
	want := []Entry{{Arrival: 0, Tenant: "a", Workload: "Filter", Class: ClassBatch}}
	if !reflect.DeepEqual(entries, want) {
		t.Fatalf("entries = %+v, want %+v", entries, want)
	}

	// The io.Reader front door parses identically.
	viaReader, rf, err := Read(strings.NewReader(framed))
	if err != nil || rf != format || !reflect.DeepEqual(viaReader, entries) {
		t.Fatalf("Read diverges from ReadBytes: %+v %v %v", viaReader, rf, err)
	}
}

// TestScheduleHelpers pins Span, BandCounts, and Compressed on a known
// schedule.
func TestScheduleHelpers(t *testing.T) {
	sched, _, err := ParseSchedule(readGolden(t, "out_of_order.csv"))
	if err != nil {
		t.Fatal(err)
	}
	if got := sched.Span(); got != 800*sim.Microsecond {
		t.Fatalf("span = %v, want 800us", got)
	}
	if got := sched.BandCounts(); got != [3]int{2, 1, 1} {
		t.Fatalf("band counts = %v, want [2 1 1]", got)
	}
	c := sched.Compressed(80 * sim.Microsecond)
	if got := c.Span(); got != 80*sim.Microsecond {
		t.Fatalf("compressed span = %v, want 80us", got)
	}
	for i := 1; i < len(c.Submissions); i++ {
		if c.Submissions[i].At < c.Submissions[i-1].At {
			t.Fatalf("compression broke arrival order at %d: %+v", i, c.Submissions)
		}
	}
	// Original untouched.
	if sched.Span() != 800*sim.Microsecond {
		t.Fatal("Compressed mutated the source schedule")
	}
}

// TestClassBandAlignment pins the deliberate numeric coupling between
// latency classes and scheduler priority bands: batch=0 (low),
// normal=1, interactive=2 (high).
func TestClassBandAlignment(t *testing.T) {
	if ClassBatch.Band() != 0 || ClassNormal.Band() != 1 || ClassInteractive.Band() != 2 {
		t.Fatalf("class/band mapping shifted: batch=%d normal=%d interactive=%d",
			ClassBatch.Band(), ClassNormal.Band(), ClassInteractive.Band())
	}
	for c, want := range map[Class]string{ClassBatch: "batch", ClassNormal: "normal", ClassInteractive: "interactive"} {
		if c.String() != want {
			t.Fatalf("Class(%d).String() = %q, want %q", int(c), c.String(), want)
		}
	}
}

// TestEmbeddedBurstyFixtureCoversAllBands pins the committed experiment
// fixture: it must parse cleanly and populate every priority band, the
// property the band-coverage experiments and tests build on.
func TestEmbeddedBurstyFixtureCoversAllBands(t *testing.T) {
	sched, format, err := ParseSchedule(FixtureBursty)
	if err != nil {
		t.Fatal(err)
	}
	if format != FormatNative {
		t.Fatalf("fixture format = %v, want native", format)
	}
	if len(sched.Submissions) != 8 {
		t.Fatalf("fixture has %d submissions, want 8", len(sched.Submissions))
	}
	counts := sched.BandCounts()
	for band, n := range counts {
		if n == 0 {
			t.Fatalf("fixture leaves band %d empty: %v", band, counts)
		}
	}
	if sched.Submissions[0].At != 0 {
		t.Fatalf("fixture schedule starts at %v, want 0", sched.Submissions[0].At)
	}
}
