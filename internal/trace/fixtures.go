package trace

import _ "embed"

// FixtureBursty is the committed bursty arrival trace (native schema) the
// trace-replay experiment, benchmarks, and tests replay: three bursts and
// a straggler over a 20 ms span, eight submissions from six tenants (two
// tenants submit twice), covering all three latency classes. Keeping the
// fixture embedded makes the Timing 2 table and the trace_replay bench
// section hermetic — no working-directory dependence.
//
//go:embed fixtures/bursty_native.csv
var FixtureBursty []byte

// FixtureBurstyName names the embedded fixture in table titles and the
// bench record.
const FixtureBurstyName = "bursty_native.csv"
