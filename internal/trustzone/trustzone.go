// Package trustzone models the ARM TrustZone extension IceClave builds on:
// two execution worlds (secure and normal), the three-way partition of the
// controller's physical memory into secure, protected, and normal regions
// (paper §4.2, Figure 4), the page-attribute encoding of Figure 6 (NS bit,
// AP[2:1] flags, and the repurposed ES bit), and world-switch cost
// accounting (3.8 µs per switch, Table 5).
//
// Concurrency contract: AddressSpace is mutated only during construction
// (AddRegion); once built, Check is a pure read and safe from any
// goroutine. Monitor tracks the current world of the single storage
// processor and is not safe for concurrent use — tee.Runtime serializes
// it under the runtime lock.
package trustzone

import (
	"errors"
	"fmt"
	"sort"

	"iceclave/internal/sim"
)

// World is the TrustZone execution world a processor runs in.
type World uint8

// The two TrustZone worlds.
const (
	Secure World = iota
	Normal
)

// String returns "secure" or "normal".
func (w World) String() string {
	if w == Secure {
		return "secure"
	}
	return "normal"
}

// RegionKind classifies a physical memory region. IceClave extends the
// classic secure/normal split with a protected region: writable only from
// the secure world but readable from the normal world, so in-storage
// programs can translate addresses through the shared mapping table without
// a world switch.
type RegionKind uint8

// The three IceClave memory region kinds.
const (
	RegionSecure RegionKind = iota
	RegionProtected
	RegionNormal
)

// String names the region kind.
func (k RegionKind) String() string {
	switch k {
	case RegionSecure:
		return "secure"
	case RegionProtected:
		return "protected"
	default:
		return "normal"
	}
}

// PageAttr is the Figure 6 page-table attribute encoding. NS distinguishes
// secure from non-secure pages; AP[2:1] carries the ARMv8 access
// permissions; ES is the reserved bit IceClave repurposes to mark the
// protected region.
type PageAttr struct {
	NS bool  // non-secure
	AP uint8 // AP[2:1], two bits
	ES bool  // IceClave protected-region marker
}

// AttrFor returns the Figure 6 encoding for a region kind.
func AttrFor(k RegionKind) PageAttr {
	switch k {
	case RegionSecure:
		return PageAttr{NS: false, AP: 0b00, ES: false}
	case RegionProtected:
		return PageAttr{NS: true, AP: 0b01, ES: true}
	default:
		return PageAttr{NS: true, AP: 0b01, ES: false}
	}
}

// Kind decodes an attribute back to its region kind.
func (a PageAttr) Kind() RegionKind {
	if !a.NS {
		return RegionSecure
	}
	if a.ES {
		return RegionProtected
	}
	return RegionNormal
}

// Allows implements the Figure 6 permission matrix: the access rights a
// world holds over a page with this attribute.
func (a PageAttr) Allows(w World, write bool) bool {
	switch a.Kind() {
	case RegionSecure:
		return w == Secure // R/W for secure, no access for normal
	case RegionProtected:
		if w == Secure {
			return true // R/W
		}
		return !write // read-only from the normal world
	default: // RegionNormal
		return true // R/W from both worlds
	}
}

// ErrFault is the base error for memory permission faults.
var ErrFault = errors.New("trustzone: permission fault")

// Region is a contiguous physical range with one attribute.
type Region struct {
	Name string
	Base uint64
	Size uint64
	Kind RegionKind
}

// End returns the first byte past the region.
func (r Region) End() uint64 { return r.Base + r.Size }

// AddressSpace is the TZASC-style region table: an ordered set of
// non-overlapping regions with permission checking.
type AddressSpace struct {
	regions []Region
}

// AddRegion registers a region. Overlapping an existing region is a
// configuration bug and returns an error.
func (as *AddressSpace) AddRegion(r Region) error {
	if r.Size == 0 {
		return fmt.Errorf("trustzone: region %q has zero size", r.Name)
	}
	for _, ex := range as.regions {
		if r.Base < ex.End() && ex.Base < r.End() {
			return fmt.Errorf("trustzone: region %q [%#x,%#x) overlaps %q [%#x,%#x)",
				r.Name, r.Base, r.End(), ex.Name, ex.Base, ex.End())
		}
	}
	as.regions = append(as.regions, r)
	sort.Slice(as.regions, func(i, j int) bool { return as.regions[i].Base < as.regions[j].Base })
	return nil
}

// Regions returns the registered regions in base order.
func (as *AddressSpace) Regions() []Region {
	out := make([]Region, len(as.regions))
	copy(out, as.regions)
	return out
}

// RegionAt returns the region containing addr.
func (as *AddressSpace) RegionAt(addr uint64) (Region, bool) {
	i := sort.Search(len(as.regions), func(i int) bool { return as.regions[i].End() > addr })
	if i < len(as.regions) && as.regions[i].Base <= addr {
		return as.regions[i], true
	}
	return Region{}, false
}

// Check validates an access by world w to [addr, addr+size). It returns a
// fault error if any byte is unmapped or the permission matrix denies it.
func (as *AddressSpace) Check(w World, addr, size uint64, write bool) error {
	if size == 0 {
		return nil
	}
	end := addr + size
	for addr < end {
		r, ok := as.RegionAt(addr)
		if !ok {
			return fmt.Errorf("%w: %s-world access to unmapped address %#x", ErrFault, w, addr)
		}
		if !AttrFor(r.Kind).Allows(w, write) {
			op := "read"
			if write {
				op = "write"
			}
			return fmt.Errorf("%w: %s-world %s of %s region %q at %#x", ErrFault, w, op, r.Kind, r.Name, addr)
		}
		addr = r.End()
	}
	return nil
}

// Monitor tracks the current world of the (single) storage processor
// complex and charges the world-switch cost. In IceClave, switches happen
// on CMT misses, TEE lifecycle events, and exceptions — not on ordinary
// flash translations, which is the point of the protected region.
type Monitor struct {
	world      World
	switchCost sim.Duration
	switches   int64
}

// NewMonitor returns a monitor starting in the secure world (boot state)
// with the given per-switch cost.
func NewMonitor(switchCost sim.Duration) *Monitor {
	return &Monitor{world: Secure, switchCost: switchCost}
}

// World returns the current world.
func (m *Monitor) World() World { return m.world }

// Switches returns how many world switches have occurred.
func (m *Monitor) Switches() int64 { return m.switches }

// SwitchCost returns the configured per-switch cost.
func (m *Monitor) SwitchCost() sim.Duration { return m.switchCost }

// SwitchTo moves the processor to world w, returning the time after the
// switch completes. Switching to the current world is free.
func (m *Monitor) SwitchTo(at sim.Time, w World) sim.Time {
	if w == m.world {
		return at
	}
	m.world = w
	m.switches++
	return at + m.switchCost
}

// RoundTrip charges a normal→secure→normal round trip (e.g. a CMT miss
// serviced by the FTL) and returns the completion time. The processor must
// currently be in the normal world.
func (m *Monitor) RoundTrip(at sim.Time) sim.Time {
	at = m.SwitchTo(at, Secure)
	return m.SwitchTo(at, Normal)
}
