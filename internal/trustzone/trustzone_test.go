package trustzone

import (
	"errors"
	"testing"
	"testing/quick"

	"iceclave/internal/sim"
)

func TestPermissionMatrix(t *testing.T) {
	// The Figure 6 matrix: rows are (region, world, write) -> allowed.
	cases := []struct {
		kind  RegionKind
		world World
		write bool
		want  bool
	}{
		{RegionSecure, Secure, false, true},
		{RegionSecure, Secure, true, true},
		{RegionSecure, Normal, false, false},
		{RegionSecure, Normal, true, false},
		{RegionProtected, Secure, false, true},
		{RegionProtected, Secure, true, true},
		{RegionProtected, Normal, false, true},
		{RegionProtected, Normal, true, false},
		{RegionNormal, Secure, false, true},
		{RegionNormal, Secure, true, true},
		{RegionNormal, Normal, false, true},
		{RegionNormal, Normal, true, true},
	}
	for _, c := range cases {
		if got := AttrFor(c.kind).Allows(c.world, c.write); got != c.want {
			t.Errorf("Allows(%v, %v, write=%v) = %v, want %v", c.kind, c.world, c.write, got, c.want)
		}
	}
}

func TestAttrEncodingRoundTrip(t *testing.T) {
	for _, k := range []RegionKind{RegionSecure, RegionProtected, RegionNormal} {
		if got := AttrFor(k).Kind(); got != k {
			t.Errorf("attr roundtrip for %v = %v", k, got)
		}
	}
}

func TestAttrBits(t *testing.T) {
	if a := AttrFor(RegionSecure); a.NS {
		t.Fatal("secure region has NS set")
	}
	if a := AttrFor(RegionProtected); !a.NS || !a.ES {
		t.Fatal("protected region must be NS=1 ES=1")
	}
	if a := AttrFor(RegionNormal); !a.NS || a.ES {
		t.Fatal("normal region must be NS=1 ES=0")
	}
}

func buildSpace(t *testing.T) *AddressSpace {
	t.Helper()
	as := &AddressSpace{}
	regions := []Region{
		{Name: "secure", Base: 0, Size: 0x1000, Kind: RegionSecure},
		{Name: "protected", Base: 0x1000, Size: 0x1000, Kind: RegionProtected},
		{Name: "normal", Base: 0x2000, Size: 0x2000, Kind: RegionNormal},
	}
	for _, r := range regions {
		if err := as.AddRegion(r); err != nil {
			t.Fatal(err)
		}
	}
	return as
}

func TestAddressSpaceChecks(t *testing.T) {
	as := buildSpace(t)
	// Normal world cannot touch the secure region.
	if err := as.Check(Normal, 0x10, 8, false); !errors.Is(err, ErrFault) {
		t.Fatalf("normal read of secure region: %v", err)
	}
	// Normal world can read but not write the protected region.
	if err := as.Check(Normal, 0x1010, 8, false); err != nil {
		t.Fatalf("normal read of protected region: %v", err)
	}
	if err := as.Check(Normal, 0x1010, 8, true); !errors.Is(err, ErrFault) {
		t.Fatalf("normal write of protected region: %v", err)
	}
	// Secure world can write everywhere.
	for _, addr := range []uint64{0x10, 0x1010, 0x2010} {
		if err := as.Check(Secure, addr, 8, true); err != nil {
			t.Fatalf("secure write at %#x: %v", addr, err)
		}
	}
	// Unmapped access faults.
	if err := as.Check(Secure, 0x5000, 8, false); !errors.Is(err, ErrFault) {
		t.Fatalf("unmapped access: %v", err)
	}
}

func TestCheckSpanningRegions(t *testing.T) {
	as := buildSpace(t)
	// A read spanning protected+normal succeeds from the normal world...
	if err := as.Check(Normal, 0x1FF0, 0x20, false); err != nil {
		t.Fatalf("spanning read: %v", err)
	}
	// ...but a write spanning them faults on the protected part.
	if err := as.Check(Normal, 0x1FF0, 0x20, true); !errors.Is(err, ErrFault) {
		t.Fatalf("spanning write: %v", err)
	}
	// A read spanning secure+protected faults from the normal world.
	if err := as.Check(Normal, 0xFF0, 0x20, false); !errors.Is(err, ErrFault) {
		t.Fatalf("spanning secure read: %v", err)
	}
}

func TestOverlapRejected(t *testing.T) {
	as := buildSpace(t)
	err := as.AddRegion(Region{Name: "bad", Base: 0x800, Size: 0x1000, Kind: RegionNormal})
	if err == nil {
		t.Fatal("overlapping region accepted")
	}
	if err := as.AddRegion(Region{Name: "empty", Base: 0x9000, Size: 0}); err == nil {
		t.Fatal("zero-size region accepted")
	}
}

func TestRegionAt(t *testing.T) {
	as := buildSpace(t)
	r, ok := as.RegionAt(0x1800)
	if !ok || r.Name != "protected" {
		t.Fatalf("RegionAt(0x1800) = %+v, %v", r, ok)
	}
	if _, ok := as.RegionAt(0x4000); ok {
		t.Fatal("RegionAt of unmapped address succeeded")
	}
}

func TestMonitorSwitchAccounting(t *testing.T) {
	m := NewMonitor(3800 * sim.Nanosecond)
	if m.World() != Secure {
		t.Fatal("monitor must boot in the secure world")
	}
	at := m.SwitchTo(0, Normal)
	if at != 3800*sim.Nanosecond {
		t.Fatalf("switch cost = %v", at)
	}
	// Switching to the current world is free.
	if got := m.SwitchTo(at, Normal); got != at {
		t.Fatal("no-op switch charged time")
	}
	if m.Switches() != 1 {
		t.Fatalf("switches = %d, want 1", m.Switches())
	}
}

func TestMonitorRoundTrip(t *testing.T) {
	m := NewMonitor(1000)
	m.SwitchTo(0, Normal)
	at := m.RoundTrip(10_000)
	if at != 12_000 {
		t.Fatalf("round trip completed at %v, want 12000", at)
	}
	if m.World() != Normal {
		t.Fatal("round trip must return to the normal world")
	}
	if m.Switches() != 3 {
		t.Fatalf("switches = %d, want 3", m.Switches())
	}
}

func TestSecureWorldDominatesProperty(t *testing.T) {
	// Property: any access the normal world may perform, the secure world
	// may also perform.
	f := func(kindRaw uint8, write bool) bool {
		kind := RegionKind(kindRaw % 3)
		a := AttrFor(kind)
		if a.Allows(Normal, write) && !a.Allows(Secure, write) {
			return false
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
