// Package stats renders experiment results as aligned text tables and
// CSV, the output format of the benchmark harness that regenerates the
// paper's tables and figures.
//
// Concurrency contract: Table is a single-goroutine builder; parallel
// experiment runners assemble rows into per-goroutine buffers and merge
// them in deterministic order rather than sharing one Table.
package stats

import (
	"fmt"
	"strings"
)

// Table is a rendered experiment result: one paper table or figure.
type Table struct {
	ID     string // e.g. "Table 6", "Figure 11"
	Title  string
	Header []string
	Rows   [][]string
	Notes  []string
}

// AddRow appends one row; values are formatted with %v.
func (t *Table) AddRow(cells ...any) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = fmt.Sprintf("%.3f", v)
		case string:
			row[i] = v
		default:
			row[i] = fmt.Sprint(v)
		}
	}
	t.Rows = append(t.Rows, row)
}

// AddNote appends a footnote line.
func (t *Table) AddNote(format string, args ...any) {
	t.Notes = append(t.Notes, fmt.Sprintf(format, args...))
}

// String renders the table with aligned columns.
func (t *Table) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s: %s\n", t.ID, t.Title)
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteByte('\n')
	}
	writeRow(t.Header)
	total := 0
	for _, w := range widths {
		total += w + 2
	}
	b.WriteString(strings.Repeat("-", total))
	b.WriteByte('\n')
	for _, row := range t.Rows {
		writeRow(row)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(&b, "note: %s\n", n)
	}
	return b.String()
}

// CSV renders the table as comma-separated values (quotes are not needed
// for the numeric/identifier content these tables carry).
func (t *Table) CSV() string {
	var b strings.Builder
	b.WriteString(strings.Join(t.Header, ","))
	b.WriteByte('\n')
	for _, row := range t.Rows {
		b.WriteString(strings.Join(row, ","))
		b.WriteByte('\n')
	}
	return b.String()
}

// Pct formats a fraction as a percentage string.
func Pct(f float64) string { return fmt.Sprintf("%.2f%%", 100*f) }

// Ratio formats a speedup/slowdown multiplier.
func Ratio(f float64) string { return fmt.Sprintf("%.2fx", f) }
