package stats

import (
	"strings"
	"testing"
)

func TestTableRendering(t *testing.T) {
	tb := &Table{ID: "Table X", Title: "demo", Header: []string{"name", "value"}}
	tb.AddRow("alpha", 1.5)
	tb.AddRow("beta-longer", 42)
	tb.AddNote("scaled by %d", 7)
	out := tb.String()
	for _, want := range []string{"Table X: demo", "alpha", "beta-longer", "1.500", "42", "note: scaled by 7"} {
		if !strings.Contains(out, want) {
			t.Fatalf("output missing %q:\n%s", want, out)
		}
	}
}

func TestCSV(t *testing.T) {
	tb := &Table{Header: []string{"a", "b"}}
	tb.AddRow("x", 1)
	got := tb.CSV()
	if got != "a,b\nx,1\n" {
		t.Fatalf("csv = %q", got)
	}
}

func TestFormatters(t *testing.T) {
	if Pct(0.076) != "7.60%" {
		t.Fatalf("Pct = %q", Pct(0.076))
	}
	if Ratio(2.31) != "2.31x" {
		t.Fatalf("Ratio = %q", Ratio(2.31))
	}
}

func TestAlignment(t *testing.T) {
	tb := &Table{ID: "T", Title: "t", Header: []string{"col"}}
	tb.AddRow("short")
	tb.AddRow("a-much-longer-cell")
	lines := strings.Split(tb.String(), "\n")
	if len(lines) < 4 {
		t.Fatal("too few lines")
	}
}
