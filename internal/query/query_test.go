package query

import (
	"strings"
	"testing"
	"testing/quick"
)

func TestRowEncodeDecodeRoundTrip(t *testing.T) {
	s := Schema{{Name: "a", Type: I64}, {Name: "b", Type: F64}, {Name: "c", Type: Str16}}
	tab := NewTable("t", s)
	r := NewRow(s)
	r.SetInt(0, -42)
	r.SetFloat(1, 3.25)
	r.SetStr(2, "hello")
	tab.Append(r)
	buf := make([]byte, s.RowSize())
	tab.EncodeRow(0, buf)
	got := DecodeRow(s, buf)
	if got.Int(0) != -42 || got.Float(1) != 3.25 || got.Str(2) != "hello" {
		t.Fatalf("roundtrip: %d %v %q", got.Int(0), got.Float(1), got.Str(2))
	}
}

func TestRowEncodeDecodeProperty(t *testing.T) {
	s := Schema{{Name: "a", Type: I64}, {Name: "b", Type: F64}, {Name: "c", Type: Str16}}
	f := func(a int64, b float64, c string) bool {
		if len(c) > 15 {
			c = c[:15]
		}
		if strings.ContainsRune(c, 0) || b != b { // NaN compares unequal
			return true
		}
		tab := NewTable("t", s)
		r := NewRow(s)
		r.SetInt(0, a)
		r.SetFloat(1, b)
		r.SetStr(2, c)
		tab.Append(r)
		buf := make([]byte, s.RowSize())
		tab.EncodeRow(0, buf)
		got := DecodeRow(s, buf)
		return got.Int(0) == a && got.Float(1) == b && got.Str(2) == c
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestSchemaHelpers(t *testing.T) {
	if LineitemSchema.RowSize() != 8*9+16*4 {
		t.Fatalf("lineitem row size = %d", LineitemSchema.RowSize())
	}
	if LineitemSchema.Index("l_shipdate") != 8 {
		t.Fatalf("l_shipdate index = %d", LineitemSchema.Index("l_shipdate"))
	}
	if LineitemSchema.Index("nope") != -1 {
		t.Fatal("missing column found")
	}
}

func TestStoreTableAndScan(t *testing.T) {
	store := NewMemStore(4096)
	ds := GenerateTPCH(1000, 1)
	sd, err := ds.Store(store, 0)
	if err != nil {
		t.Fatal(err)
	}
	var m Meter
	sc := &Scanner{Store: store, Ref: sd.Lineitem, Meter: &m}
	n := 0
	if err := sc.Scan(func(r Row) error { n++; return nil }); err != nil {
		t.Fatal(err)
	}
	if n != 1000 {
		t.Fatalf("scanned %d rows, want 1000", n)
	}
	if m.PagesRead == 0 || m.Instructions == 0 || m.MemReads == 0 {
		t.Fatalf("meter not populated: %+v", m)
	}
}

func TestGenerateDeterministic(t *testing.T) {
	a := GenerateTPCH(500, 7)
	b := GenerateTPCH(500, 7)
	for i := 0; i < 500; i += 37 {
		if a.Lineitem.Int(i, 0) != b.Lineitem.Int(i, 0) ||
			a.Lineitem.Float(i, 3) != b.Lineitem.Float(i, 3) {
			t.Fatal("same seed generated different data")
		}
	}
	c := GenerateTPCH(500, 8)
	same := true
	for i := 0; i < 500; i++ {
		if a.Lineitem.Float(i, 3) != c.Lineitem.Float(i, 3) {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds generated identical data")
	}
}

// runAll executes every TPC-H style program over a small stored dataset.
func runAll(t *testing.T) (map[string]string, map[string]*Meter) {
	t.Helper()
	store := NewMemStore(4096)
	ds := GenerateTPCH(4000, 42)
	sd, err := ds.Store(store, 0)
	if err != nil {
		t.Fatal(err)
	}
	programs := map[string]Program{
		"Q1": Q1, "Q3": Q3, "Q12": Q12, "Q14": Q14, "Q19": Q19,
		"Arithmetic": Arithmetic, "Aggregate": Aggregate, "Filter": Filter,
	}
	results := make(map[string]string)
	meters := make(map[string]*Meter)
	for name, p := range programs {
		var m Meter
		out, err := p(store, sd, &m)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		results[name] = out
		meters[name] = &m
	}
	return results, meters
}

func TestAllQueriesProduceOutput(t *testing.T) {
	results, meters := runAll(t)
	for name, out := range results {
		if out == "" {
			t.Errorf("%s produced empty output", name)
		}
		if meters[name].PagesRead == 0 {
			t.Errorf("%s read no pages", name)
		}
	}
	// Q1 aggregates over 6 (returnflag, linestatus) combinations.
	if n := strings.Count(results["Q1"], "\n"); n != 6 {
		t.Errorf("Q1 groups = %d, want 6:\n%s", n, results["Q1"])
	}
	// Q12 reports MAIL and SHIP rows.
	if !strings.Contains(results["Q12"], "MAIL") || !strings.Contains(results["Q12"], "SHIP") {
		t.Errorf("Q12 output missing modes:\n%s", results["Q12"])
	}
}

func TestQueriesDeterministic(t *testing.T) {
	r1, _ := runAll(t)
	r2, _ := runAll(t)
	for name := range r1 {
		if r1[name] != r2[name] {
			t.Errorf("%s nondeterministic", name)
		}
	}
}

func TestScanWorkloadsAreReadDominated(t *testing.T) {
	_, meters := runAll(t)
	// The Table 1 characterization: scan/aggregation workloads have tiny
	// write ratios; joins write more (hash tables) but stay read-dominated.
	for _, name := range []string{"Arithmetic", "Aggregate", "Filter", "Q1"} {
		if wr := meters[name].WriteRatio(); wr > 0.02 {
			t.Errorf("%s write ratio = %v, want < 0.02", name, wr)
		}
	}
	for _, name := range []string{"Q3", "Q12", "Q14", "Q19"} {
		if wr := meters[name].WriteRatio(); wr > 0.2 {
			t.Errorf("%s write ratio = %v, want < 0.2", name, wr)
		}
	}
}

func TestQ1RespectscCutoff(t *testing.T) {
	// All lineitems generated have shipdate < 2526-90? No — verify by
	// recomputing: the aggregate count must equal rows passing the filter.
	store := NewMemStore(4096)
	ds := GenerateTPCH(2000, 9)
	sd, _ := ds.Store(store, 0)
	var m Meter
	out, err := Q1(store, sd, &m)
	if err != nil {
		t.Fatal(err)
	}
	var want int64
	for i := 0; i < ds.Lineitem.Rows(); i++ {
		if ds.Lineitem.Int(i, 8) <= Day2526-90 {
			want++
		}
	}
	var got int64
	for _, line := range strings.Split(strings.TrimSpace(out), "\n") {
		var n int64
		if _, err := fmtSscanfCount(line, &n); err != nil {
			t.Fatalf("parse %q: %v", line, err)
		}
		got += n
	}
	if got != want {
		t.Fatalf("Q1 counted %d rows, want %d", got, want)
	}
}

// fmtSscanfCount extracts the n=<count> field from a rendered agg line.
func fmtSscanfCount(line string, n *int64) (int, error) {
	i := strings.Index(line, "n=")
	if i < 0 {
		return 0, nil
	}
	rest := line[i+2:]
	if j := strings.IndexByte(rest, ','); j >= 0 {
		rest = rest[:j]
	}
	var v int64
	for _, c := range rest {
		if c < '0' || c > '9' {
			break
		}
		v = v*10 + int64(c-'0')
	}
	*n = v
	return 1, nil
}

func TestRowsPerPagePanicsOnHugeRow(t *testing.T) {
	huge := Schema{}
	for i := 0; i < 300; i++ {
		huge = append(huge, Column{Name: "c", Type: Str16})
	}
	defer func() {
		if recover() == nil {
			t.Fatal("oversized row did not panic")
		}
	}()
	RowsPerPage(huge, 4096)
}

func TestMeterWriteRatio(t *testing.T) {
	var m Meter
	if m.WriteRatio() != 0 {
		t.Fatal("empty meter has write ratio")
	}
	m.ReadBytes(64 * 3)
	m.WriteBytes(64)
	if m.WriteRatio() != 0.25 {
		t.Fatalf("write ratio = %v, want 0.25", m.WriteRatio())
	}
}

func TestMeterAdd(t *testing.T) {
	a := Meter{PagesRead: 1, Instructions: 10, MemReads: 5}
	b := Meter{PagesRead: 2, Instructions: 20, MemWrites: 7}
	a.Add(b)
	if a.PagesRead != 3 || a.Instructions != 30 || a.MemReads != 5 || a.MemWrites != 7 {
		t.Fatalf("merged meter: %+v", a)
	}
}
