// Package query implements the mini columnar engine behind the paper's
// evaluation workloads (Table 4): fixed-width row storage paged onto the
// simulated SSD, scan/filter/hash-join/aggregate operators with
// instruction and memory-access accounting, the five TPC-H queries (Q1,
// Q3, Q12, Q14, Q19), simplified TPC-B and TPC-C transaction mixes,
// Wordcount, and the three synthetic operators (Arithmetic, Aggregate,
// Filter).
//
// Programs execute against a Store (flash pages reached through the FTL
// or the TEE) and record their work in a Meter; the timing layer converts
// metered operation counts into simulated time.
//
// Concurrency contract: a Meter, a Store handle, and the operator types
// built over them belong to one program invocation on one goroutine.
// Concurrent offloaded programs are isolated by giving each its own
// Meter/Store pair (see iceclave.SSD.Execute); the shared device beneath
// those handles enforces its own thread safety.
package query

import (
	"encoding/binary"
	"fmt"
	"math"
)

// ColType is a column's physical type.
type ColType uint8

// Column types. Dates are stored as int64 days since an epoch.
const (
	I64 ColType = iota
	F64
	Str16 // fixed-width 16-byte string
)

// Width returns the encoded width in bytes.
func (t ColType) Width() int {
	if t == Str16 {
		return 16
	}
	return 8
}

// Column describes one table column.
type Column struct {
	Name string
	Type ColType
}

// Schema is an ordered column list.
type Schema []Column

// RowSize returns the fixed encoded row width.
func (s Schema) RowSize() int {
	n := 0
	for _, c := range s {
		n += c.Type.Width()
	}
	return n
}

// Index returns the position of the named column, or -1.
func (s Schema) Index(name string) int {
	for i, c := range s {
		if c.Name == name {
			return i
		}
	}
	return -1
}

// Row is one decoded record: numeric values as uint64 bit patterns
// (float64 via math.Float64bits) and strings in Strs, indexed per column
// position for their kind.
type Row struct {
	schema Schema
	ints   []uint64
	strs   []string
}

// NewRow returns an empty row for a schema.
func NewRow(s Schema) Row {
	return Row{schema: s, ints: make([]uint64, len(s)), strs: make([]string, len(s))}
}

// Int returns column i as int64.
func (r Row) Int(i int) int64 { return int64(r.ints[i]) }

// Float returns column i as float64.
func (r Row) Float(i int) float64 { return math.Float64frombits(r.ints[i]) }

// Str returns column i as a string.
func (r Row) Str(i int) string { return r.strs[i] }

// SetInt stores an int64 in column i.
func (r Row) SetInt(i int, v int64) { r.ints[i] = uint64(v) }

// SetFloat stores a float64 in column i.
func (r Row) SetFloat(i int, v float64) { r.ints[i] = math.Float64bits(v) }

// SetStr stores a string in column i (truncated to 16 bytes on encode).
func (r *Row) SetStr(i int, v string) { r.strs[i] = v }

// Table is an in-memory table: decoded rows in column-major storage.
type Table struct {
	Name   string
	Schema Schema
	nrows  int
	ints   [][]uint64 // per column; nil for string columns
	strs   [][]string // per column; nil for numeric columns
}

// NewTable returns an empty table.
func NewTable(name string, schema Schema) *Table {
	t := &Table{Name: name, Schema: schema,
		ints: make([][]uint64, len(schema)), strs: make([][]string, len(schema))}
	return t
}

// Rows returns the row count.
func (t *Table) Rows() int { return t.nrows }

// Append adds a row; the row's schema must match.
func (t *Table) Append(r Row) {
	for i, c := range t.Schema {
		if c.Type == Str16 {
			t.strs[i] = append(t.strs[i], r.strs[i])
		} else {
			t.ints[i] = append(t.ints[i], r.ints[i])
		}
	}
	t.nrows++
}

// Row materializes row i.
func (t *Table) Row(i int) Row {
	r := NewRow(t.Schema)
	for c, col := range t.Schema {
		if col.Type == Str16 {
			r.strs[c] = t.strs[c][i]
		} else {
			r.ints[c] = t.ints[c][i]
		}
	}
	return r
}

// Int returns column col of row i as int64.
func (t *Table) Int(i, col int) int64 { return int64(t.ints[col][i]) }

// Float returns column col of row i as float64.
func (t *Table) Float(i, col int) float64 { return math.Float64frombits(t.ints[col][i]) }

// Str returns column col of row i.
func (t *Table) Str(i, col int) string { return t.strs[col][i] }

// EncodeRow serializes row i into dst (len >= RowSize).
func (t *Table) EncodeRow(i int, dst []byte) {
	off := 0
	for c, col := range t.Schema {
		switch col.Type {
		case Str16:
			var buf [16]byte
			copy(buf[:], t.strs[c][i])
			copy(dst[off:], buf[:])
			off += 16
		default:
			binary.LittleEndian.PutUint64(dst[off:], t.ints[c][i])
			off += 8
		}
	}
}

// DecodeRow parses one encoded row.
func DecodeRow(s Schema, src []byte) Row {
	r := NewRow(s)
	off := 0
	for c, col := range s {
		switch col.Type {
		case Str16:
			b := src[off : off+16]
			n := 0
			for n < 16 && b[n] != 0 {
				n++
			}
			r.strs[c] = string(b[:n])
			off += 16
		default:
			r.ints[c] = binary.LittleEndian.Uint64(src[off:])
			off += 8
		}
	}
	return r
}

// RowsPerPage returns how many rows of this schema fit a page.
func RowsPerPage(s Schema, pageSize int) int {
	n := pageSize / s.RowSize()
	if n == 0 {
		panic(fmt.Sprintf("query: row of %d bytes exceeds page size %d", s.RowSize(), pageSize))
	}
	return n
}

// PageCount returns how many pages a table of nrows occupies.
func PageCount(s Schema, nrows, pageSize int) int {
	rpp := RowsPerPage(s, pageSize)
	return (nrows + rpp - 1) / rpp
}
