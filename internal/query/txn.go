package query

import (
	"fmt"
	"strings"

	"iceclave/internal/sim"
)

// AccountSchema is the TPC-B account/branch/teller record layout.
var AccountSchema = Schema{
	{Name: "a_id", Type: I64},
	{Name: "a_branch", Type: I64},
	{Name: "a_balance", Type: F64},
	{Name: "a_pad", Type: Str16},
}

// HistorySchema is the TPC-B history append record.
var HistorySchema = Schema{
	{Name: "h_account", Type: I64},
	{Name: "h_delta", Type: F64},
	{Name: "h_pad", Type: Str16},
}

// SetupAccounts generates and stores n account rows starting at page base.
func SetupAccounts(store Store, n int, base uint32, seed uint64) (TableRef, error) {
	rng := sim.NewRNG(seed)
	t := NewTable("accounts", AccountSchema)
	for i := 0; i < n; i++ {
		r := NewRow(AccountSchema)
		r.SetInt(0, int64(i))
		r.SetInt(1, int64(i%100))
		r.SetFloat(2, float64(rng.Intn(100000)))
		r.SetStr(3, "padpadpadpad")
		t.Append(r)
	}
	if _, err := StoreTable(store, t, base); err != nil {
		return TableRef{}, err
	}
	return TableRef{Schema: AccountSchema, Base: base, NRows: n}, nil
}

// rowPage locates the page and in-page index of row i of a stored table.
func rowPage(ref TableRef, pageSize int, i int) (lpa uint32, idx int) {
	rpp := RowsPerPage(ref.Schema, pageSize)
	return ref.Base + uint32(i/rpp), i % rpp
}

// updateRow performs a metered read-modify-write of one row in place.
// readFootprint is the DRAM read traffic the lookup incurs (buffer-pool
// page install plus index-path reads) — a calibration lever for the
// Table 1 write ratios.
func updateRow(store Store, ref TableRef, m *Meter, i int, readFootprint int64, mutate func(Row) Row) error {
	ps := store.PageSize()
	lpa, idx := rowPage(ref, ps, i)
	data, err := store.ReadPage(lpa)
	if err != nil {
		return err
	}
	m.PagesRead++
	rowSize := ref.Schema.RowSize()
	m.ReadBytes(readFootprint)
	row := DecodeRow(ref.Schema, data[idx*rowSize:])
	m.AddInstr(InstrRowDecode)
	row = mutate(row)
	page := append([]byte(nil), data...)
	tmp := NewTable("tmp", ref.Schema)
	tmp.Append(row)
	tmp.EncodeRow(0, page[idx*rowSize:])
	m.AddInstr(InstrRowDecode)
	m.WriteBytes(int64(rowSize))
	if err := store.WritePage(lpa, page); err != nil {
		return err
	}
	m.PagesWritten++
	return nil
}

// TPCB runs ntxn TPC-B style transactions against the account table:
// read-modify-write a random account, a branch row, and append to the
// history table at page histBase. It returns the final balance checksum.
func TPCB(store Store, accounts TableRef, histBase uint32, ntxn int, seed uint64, m *Meter) (string, error) {
	rng := sim.NewRNG(seed)
	ps := store.PageSize()
	histRows := RowsPerPage(HistorySchema, ps)
	histBuf := NewTable("history", HistorySchema)
	histPage := histBase
	var checksum float64
	for i := 0; i < ntxn; i++ {
		acct := rng.Intn(accounts.NRows)
		delta := float64(rng.Intn(2000) - 1000)
		m.AddInstr(2500) // SQL parse/plan, locking, logging, B-tree descent
		err := updateRow(store, accounts, m, acct, int64(ps), func(r Row) Row {
			m.AddInstr(2 * InstrArith)
			r.SetFloat(2, r.Float(2)+delta)
			checksum += delta
			return r
		})
		if err != nil {
			return "", err
		}
		// Branch row update: TPC-B touches the branch of the account.
		branch := acct % 100
		if branch < accounts.NRows {
			if err := updateRow(store, accounts, m, branch, int64(ps), func(r Row) Row {
				r.SetFloat(2, r.Float(2)+delta)
				m.AddInstr(InstrArith)
				return r
			}); err != nil {
				return "", err
			}
		}
		m.WriteBytes(256) // commit log record (WAL)
		// History append, flushed a page at a time.
		h := NewRow(HistorySchema)
		h.SetInt(0, int64(acct))
		h.SetFloat(1, delta)
		histBuf.Append(h)
		m.WriteBytes(int64(HistorySchema.RowSize()))
		if histBuf.Rows() == histRows {
			if err := flushTable(store, histBuf, histPage, m); err != nil {
				return "", err
			}
			histPage++
			histBuf = NewTable("history", HistorySchema)
		}
	}
	if histBuf.Rows() > 0 {
		if err := flushTable(store, histBuf, histPage, m); err != nil {
			return "", err
		}
	}
	m.RowsEmitted++
	return fmt.Sprintf("tpcb_delta:%.2f\n", checksum), nil
}

// flushTable writes a small table into one page.
func flushTable(store Store, t *Table, lpa uint32, m *Meter) error {
	ps := store.PageSize()
	buf := make([]byte, ps)
	rowSize := t.Schema.RowSize()
	for i := 0; i < t.Rows(); i++ {
		t.EncodeRow(i, buf[i*rowSize:])
	}
	if err := store.WritePage(lpa, buf); err != nil {
		return err
	}
	m.PagesWritten++
	m.Allocate(int64(ps))
	return nil
}

// StockSchema is the TPC-C stock/district record layout.
var StockSchema = Schema{
	{Name: "s_id", Type: I64},
	{Name: "s_qty", Type: F64},
	{Name: "s_ytd", Type: F64},
	{Name: "s_pad", Type: Str16},
}

// SetupStock generates and stores n stock rows starting at page base.
func SetupStock(store Store, n int, base uint32, seed uint64) (TableRef, error) {
	rng := sim.NewRNG(seed)
	t := NewTable("stock", StockSchema)
	for i := 0; i < n; i++ {
		r := NewRow(StockSchema)
		r.SetInt(0, int64(i))
		r.SetFloat(1, float64(10+rng.Intn(90)))
		r.SetFloat(2, 0)
		r.SetStr(3, "stockstock")
		t.Append(r)
	}
	if _, err := StoreTable(store, t, base); err != nil {
		return TableRef{}, err
	}
	return TableRef{Schema: StockSchema, Base: base, NRows: n}, nil
}

// TPCC runs ntxn simplified TPC-C transactions: 45% new-order (read 10
// stock rows, decrement quantities, append order lines), 43% payment
// (read-modify-write one row), 12% order-status (read-only probes).
func TPCC(store Store, stock TableRef, olBase uint32, ntxn int, seed uint64, m *Meter) (string, error) {
	rng := sim.NewRNG(seed)
	ps := store.PageSize()
	olRows := RowsPerPage(HistorySchema, ps)
	olBuf := NewTable("orderline", HistorySchema)
	olPage := olBase
	var orders, payments, statuses int64
	for i := 0; i < ntxn; i++ {
		m.AddInstr(3000) // transaction logic: plan, locking, logging, index walks
		switch p := rng.Float64(); {
		case p < 0.45: // new-order
			orders++
			m.WriteBytes(512) // order header + commit log record
			for j := 0; j < 10; j++ {
				item := rng.Intn(stock.NRows)
				if err := updateRow(store, stock, m, item, int64(ps/2), func(r Row) Row {
					m.AddInstr(3 * InstrArith)
					q := r.Float(1) - 1
					if q < 0 {
						q = 91
					}
					r.SetFloat(1, q)
					r.SetFloat(2, r.Float(2)+1)
					return r
				}); err != nil {
					return "", err
				}
				ol := NewRow(HistorySchema)
				ol.SetInt(0, int64(item))
				ol.SetFloat(1, 1)
				olBuf.Append(ol)
				m.WriteBytes(int64(HistorySchema.RowSize()))
				if olBuf.Rows() == olRows {
					if err := flushTable(store, olBuf, olPage, m); err != nil {
						return "", err
					}
					olPage++
					olBuf = NewTable("orderline", HistorySchema)
				}
			}
		case p < 0.88: // payment
			payments++
			m.WriteBytes(256) // commit log record
			if err := updateRow(store, stock, m, rng.Intn(stock.NRows), int64(ps/2), func(r Row) Row {
				m.AddInstr(InstrArith)
				r.SetFloat(2, r.Float(2)+10)
				return r
			}); err != nil {
				return "", err
			}
		default: // order-status: read-only
			statuses++
			lpa, idx := rowPage(stock, ps, rng.Intn(stock.NRows))
			data, err := store.ReadPage(lpa)
			if err != nil {
				return "", err
			}
			m.PagesRead++
			m.ReadBytes(int64(ps / 2))
			_ = DecodeRow(stock.Schema, data[idx*stock.Schema.RowSize():])
			m.AddInstr(InstrRowDecode)
		}
	}
	if olBuf.Rows() > 0 {
		if err := flushTable(store, olBuf, olPage, m); err != nil {
			return "", err
		}
	}
	m.RowsEmitted++
	return fmt.Sprintf("tpcc:orders=%d,payments=%d,status=%d\n", orders, payments, statuses), nil
}

// SetupText generates npages of pseudo-text (space-separated words drawn
// from a skewed vocabulary) starting at page base.
func SetupText(store Store, npages int, base uint32, seed uint64) error {
	rng := sim.NewRNG(seed)
	vocab := make([]string, 1000)
	for i := range vocab {
		vocab[i] = fmt.Sprintf("word%03d", i)
	}
	ps := store.PageSize()
	for p := 0; p < npages; p++ {
		var b strings.Builder
		for b.Len() < ps-16 {
			b.WriteString(vocab[rng.Zipf(int64(len(vocab)), 0.8, 0.05)])
			b.WriteByte(' ')
		}
		buf := make([]byte, ps)
		copy(buf, b.String())
		if err := store.WritePage(base+uint32(p), buf); err != nil {
			return err
		}
	}
	return nil
}

// Wordcount scans npages of text from page base and counts word
// frequencies — the Biscuit-derived workload of Table 4, and the most
// write-intensive one (every word updates a hash bucket).
func Wordcount(store Store, base uint32, npages int, m *Meter) (string, error) {
	counts := make(map[string]int64)
	var words int64
	for p := 0; p < npages; p++ {
		data, err := store.ReadPage(base + uint32(p))
		if err != nil {
			return "", err
		}
		m.PagesRead++
		m.ReadBytes(int64(len(data)))
		start := -1
		for i, c := range data {
			isWord := c > ' ' && c != 0
			switch {
			case isWord && start < 0:
				start = i
			case !isWord && start >= 0:
				w := string(data[start:i])
				if counts[w] == 0 {
					m.Allocate(16)
				}
				counts[w]++
				words++
				// SIMD-friendly tokenization plus one hash update: the
				// per-word cost, with the DRAM traffic of the (large)
				// count table.
				m.AddInstr(InstrWordStep + InstrWordStep/2 + 6)
				m.ReadBytes(16)
				m.WriteBytes(16)
				start = -1
			}
		}
	}
	m.RowsEmitted++
	return fmt.Sprintf("wordcount:words=%d,distinct=%d\n", words, len(counts)), nil
}
