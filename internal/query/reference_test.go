package query

import (
	"fmt"
	"strings"
	"testing"
)

// These tests validate the operator pipeline against brute-force
// re-implementations computed directly over the in-memory tables.

func refDataset(t *testing.T) (*Dataset, *StoredDataset, Store) {
	t.Helper()
	store := NewMemStore(4096)
	ds := GenerateTPCH(3000, 77)
	sd, err := ds.Store(store, 0)
	if err != nil {
		t.Fatal(err)
	}
	return ds, sd, store
}

func TestQ14AgainstBruteForce(t *testing.T) {
	ds, sd, store := refDataset(t)
	var m Meter
	got, err := Q14(store, sd, &m)
	if err != nil {
		t.Fatal(err)
	}
	// Brute force: same month window, promo share.
	const month = 1065
	partType := make(map[int64]string)
	for i := 0; i < ds.Part.Rows(); i++ {
		partType[ds.Part.Int(i, 0)] = ds.Part.Str(i, 2)
	}
	var promo, total float64
	for i := 0; i < ds.Lineitem.Rows(); i++ {
		ship := ds.Lineitem.Int(i, 8)
		if ship < month || ship >= month+30 {
			continue
		}
		typ, ok := partType[ds.Lineitem.Int(i, 1)]
		if !ok {
			continue
		}
		rev := ds.Lineitem.Float(i, 3) * (1 - ds.Lineitem.Float(i, 4))
		total += rev
		if strings.HasPrefix(typ, "PROMO") {
			promo += rev
		}
	}
	want := "promo_revenue:0.00\n"
	if total != 0 {
		want = fmt.Sprintf("promo_revenue:%.2f\n", 100*promo/total)
	}
	if got != want {
		t.Fatalf("Q14 = %q, brute force = %q", got, want)
	}
}

func TestQ12AgainstBruteForce(t *testing.T) {
	ds, sd, store := refDataset(t)
	var m Meter
	got, err := Q12(store, sd, &m)
	if err != nil {
		t.Fatal(err)
	}
	const year = 1095
	prio := make(map[int64]string)
	for i := 0; i < ds.Orders.Rows(); i++ {
		prio[ds.Orders.Int(i, 0)] = ds.Orders.Str(i, 4)
	}
	counts := map[string][2]int64{} // mode -> {high, low}
	for i := 0; i < ds.Lineitem.Rows(); i++ {
		mode := ds.Lineitem.Str(i, 11)
		if mode != "MAIL" && mode != "SHIP" {
			continue
		}
		commit, receipt, ship := ds.Lineitem.Int(i, 9), ds.Lineitem.Int(i, 10), ds.Lineitem.Int(i, 8)
		if !(commit < receipt && ship < commit && receipt >= year && receipt < year+365) {
			continue
		}
		p := prio[ds.Lineitem.Int(i, 0)]
		c := counts[mode]
		if p == "1-URGENT" || p == "2-HIGH" {
			c[0]++
		} else {
			c[1]++
		}
		counts[mode] = c
	}
	for _, mode := range []string{"MAIL", "SHIP"} {
		c, ok := counts[mode]
		if !ok {
			continue
		}
		needle := fmt.Sprintf("%s:n=%d,%.2f,%.2f", mode, c[0]+c[1], float64(c[0]), float64(c[1]))
		if !strings.Contains(got, needle) {
			t.Fatalf("Q12 output missing %q:\n%s", needle, got)
		}
	}
}

func TestFilterAgainstBruteForce(t *testing.T) {
	ds, sd, store := refDataset(t)
	var m Meter
	got, err := Filter(store, sd, &m)
	if err != nil {
		t.Fatal(err)
	}
	var hits int64
	for i := 0; i < ds.Lineitem.Rows(); i++ {
		if ds.Lineitem.Float(i, 2) > 25 && ds.Lineitem.Str(i, 6) == "R" {
			hits++
		}
	}
	want := fmt.Sprintf("hits:%d\n", hits)
	if got != want {
		t.Fatalf("Filter = %q, brute force = %q", got, want)
	}
}

func TestAggregateAgainstBruteForce(t *testing.T) {
	ds, sd, store := refDataset(t)
	var m Meter
	got, err := Aggregate(store, sd, &m)
	if err != nil {
		t.Fatal(err)
	}
	var sum float64
	for i := 0; i < ds.Lineitem.Rows(); i++ {
		sum += ds.Lineitem.Float(i, 3)
	}
	want := fmt.Sprintf("avg:%.2f\n", sum/float64(ds.Lineitem.Rows()))
	if got != want {
		t.Fatalf("Aggregate = %q, brute force = %q", got, want)
	}
}
