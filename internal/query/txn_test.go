package query

import (
	"strings"
	"testing"
)

func TestTPCBBalancesConsistent(t *testing.T) {
	store := NewMemStore(4096)
	ref, err := SetupAccounts(store, 1000, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	// Sum balances before.
	var before float64
	var m0 Meter
	sc := &Scanner{Store: store, Ref: ref, Meter: &m0}
	sc.Scan(func(r Row) error { before += r.Float(2); return nil })

	var m Meter
	out, err := TPCB(store, ref, 5000, 200, 7, &m)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(out, "tpcb_delta:") {
		t.Fatalf("output %q", out)
	}
	if m.PagesWritten == 0 {
		t.Fatal("TPC-B wrote no pages")
	}
	// TPC-B applies each delta to an account AND its branch row, so the
	// table total moves by 2x the checksum (when branch != account the
	// delta double-counts; we only verify the table changed consistently
	// with a fresh re-run).
	var after float64
	var m1 Meter
	sc = &Scanner{Store: store, Ref: ref, Meter: &m1}
	sc.Scan(func(r Row) error { after += r.Float(2); return nil })
	if before == after {
		t.Fatal("TPC-B did not change any balance")
	}
}

func TestTPCBWriteIntensive(t *testing.T) {
	store := NewMemStore(4096)
	ref, _ := SetupAccounts(store, 1000, 0, 1)
	var m Meter
	if _, err := TPCB(store, ref, 5000, 500, 3, &m); err != nil {
		t.Fatal(err)
	}
	// TPC-B's memory write ratio (Table 1: 5.2e-2) is far above the scan
	// workloads'.
	if wr := m.WriteRatio(); wr < 0.01 {
		t.Fatalf("TPC-B write ratio = %v, want >= 0.01", wr)
	}
}

func TestTPCBDeterministic(t *testing.T) {
	run := func() string {
		store := NewMemStore(4096)
		ref, _ := SetupAccounts(store, 500, 0, 1)
		var m Meter
		out, err := TPCB(store, ref, 2000, 100, 9, &m)
		if err != nil {
			t.Fatal(err)
		}
		return out
	}
	if run() != run() {
		t.Fatal("TPC-B nondeterministic")
	}
}

func TestTPCCTransactionMix(t *testing.T) {
	store := NewMemStore(4096)
	ref, err := SetupStock(store, 2000, 0, 2)
	if err != nil {
		t.Fatal(err)
	}
	var m Meter
	out, err := TPCC(store, ref, 5000, 1000, 11, &m)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "orders=") || !strings.Contains(out, "payments=") {
		t.Fatalf("output %q", out)
	}
	if m.PagesWritten == 0 || m.PagesRead == 0 {
		t.Fatalf("TPC-C meter: %+v", m)
	}
	// TPC-C is the most write-intensive transactional mix (Table 1:
	// 9.05e-2 memory write ratio).
	if wr := m.WriteRatio(); wr < 0.01 {
		t.Fatalf("TPC-C write ratio = %v", wr)
	}
}

func TestWordcount(t *testing.T) {
	store := NewMemStore(4096)
	const npages = 20
	if err := SetupText(store, npages, 0, 5); err != nil {
		t.Fatal(err)
	}
	var m Meter
	out, err := Wordcount(store, 0, npages, &m)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "words=") {
		t.Fatalf("output %q", out)
	}
	// Wordcount has the highest write ratio of the corpus (Table 1:
	// 0.46): every token updates a hash bucket.
	if wr := m.WriteRatio(); wr < 0.2 {
		t.Fatalf("wordcount write ratio = %v, want >= 0.2", wr)
	}
}

func TestWordcountCountsEveryWord(t *testing.T) {
	store := NewMemStore(4096)
	page := make([]byte, 4096)
	copy(page, "alpha beta alpha gamma ")
	store.WritePage(0, page)
	var m Meter
	out, err := Wordcount(store, 0, 1, &m)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "words=4") || !strings.Contains(out, "distinct=3") {
		t.Fatalf("output %q", out)
	}
}

func TestWriteRatioOrderingMatchesTable1(t *testing.T) {
	// The qualitative Table 1 ordering: scans << TPC-B < TPC-C << Wordcount.
	store := NewMemStore(4096)
	ds := GenerateTPCH(3000, 1)
	sd, _ := ds.Store(store, 0)
	var scan Meter
	if _, err := Filter(store, sd, &scan); err != nil {
		t.Fatal(err)
	}

	bStore := NewMemStore(4096)
	bRef, _ := SetupAccounts(bStore, 1000, 0, 1)
	var tb Meter
	if _, err := TPCB(bStore, bRef, 5000, 400, 2, &tb); err != nil {
		t.Fatal(err)
	}

	wStore := NewMemStore(4096)
	SetupText(wStore, 30, 0, 3)
	var wc Meter
	if _, err := Wordcount(wStore, 0, 30, &wc); err != nil {
		t.Fatal(err)
	}

	if !(scan.WriteRatio() < tb.WriteRatio() && tb.WriteRatio() < wc.WriteRatio()) {
		t.Fatalf("write ratio ordering violated: scan=%v tpcb=%v wordcount=%v",
			scan.WriteRatio(), tb.WriteRatio(), wc.WriteRatio())
	}
}
