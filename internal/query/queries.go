package query

import (
	"fmt"
	"sort"
	"strings"
)

// Program is an executable in-storage workload: it reads the stored
// dataset through store, meters its work, and returns a deterministic
// textual result for verification.
type Program func(store Store, sd *StoredDataset, m *Meter) (string, error)

// Q1 is TPC-H Query 1: pricing summary report. Scan lineitem with a
// shipdate cutoff, group by (returnflag, linestatus), and compute sums and
// averages.
func Q1(store Store, sd *StoredDataset, m *Meter) (string, error) {
	agg := NewAggregator(m, 4) // sum_qty, sum_base, sum_disc_price, sum_charge
	sc := &Scanner{Store: store, Ref: sd.Lineitem, Meter: m}
	cutoff := int64(Day2526 - 90)
	err := sc.Scan(func(r Row) error {
		m.AddInstr(InstrPredicate)
		if r.Int(8) > cutoff { // l_shipdate
			return nil
		}
		qty, price, disc, tax := r.Float(2), r.Float(3), r.Float(4), r.Float(5)
		m.AddInstr(3 * InstrArith)
		agg.Update(r.Str(6)+"|"+r.Str(7), qty, price, price*(1-disc), price*(1-disc)*(1+tax))
		return nil
	})
	if err != nil {
		return "", err
	}
	return renderAgg(agg, m), nil
}

// Q3 is TPC-H Query 3: shipping priority. Join customer (BUILDING
// segment), orders (before a date), and lineitem (shipped after it), group
// revenue by order, and return the top orders.
func Q3(store Store, sd *StoredDataset, m *Meter) (string, error) {
	const date = 1200 // mid-1995 in dataset days
	// Build: qualifying customers.
	custs := NewHashJoin(m)
	sc := &Scanner{Store: store, Ref: sd.Customer, Meter: m}
	if err := sc.Scan(func(r Row) error {
		m.AddInstr(InstrPredicate)
		if r.Str(1) == "BUILDING" {
			custs.Build(r.Int(0), r)
		}
		return nil
	}); err != nil {
		return "", err
	}
	// Build: qualifying orders by orderkey, keyed for the lineitem probe.
	orders := NewHashJoin(m)
	sc = &Scanner{Store: store, Ref: sd.Orders, Meter: m}
	if err := sc.Scan(func(r Row) error {
		m.AddInstr(2 * InstrPredicate)
		if r.Int(2) >= date { // o_orderdate
			return nil
		}
		if len(custs.Probe(r.Int(1))) == 0 {
			return nil
		}
		orders.Build(r.Int(0), r)
		return nil
	}); err != nil {
		return "", err
	}
	// Probe lineitem, aggregate revenue per order.
	agg := NewAggregator(m, 1)
	sc = &Scanner{Store: store, Ref: sd.Lineitem, Meter: m}
	if err := sc.Scan(func(r Row) error {
		m.AddInstr(InstrPredicate)
		if r.Int(8) <= date { // l_shipdate
			return nil
		}
		if len(orders.Probe(r.Int(0))) == 0 {
			return nil
		}
		m.AddInstr(2 * InstrArith)
		agg.Update(fmt.Sprintf("%d", r.Int(0)), r.Float(3)*(1-r.Float(4)))
		return nil
	}); err != nil {
		return "", err
	}
	// Top 10 by revenue.
	type rev struct {
		key string
		v   float64
	}
	var revs []rev
	agg.Each(func(key string, g *Agg) { revs = append(revs, rev{key, g.Sums[0]}) })
	sort.Slice(revs, func(i, j int) bool {
		if revs[i].v != revs[j].v {
			return revs[i].v > revs[j].v
		}
		return revs[i].key < revs[j].key
	})
	if len(revs) > 10 {
		revs = revs[:10]
	}
	var b strings.Builder
	for _, r := range revs {
		fmt.Fprintf(&b, "%s:%.2f\n", r.key, r.v)
		m.RowsEmitted++
	}
	return b.String(), nil
}

// Q12 is TPC-H Query 12: shipping modes and order priority. Join lineitem
// (shipmode MAIL/SHIP, date sanity conditions) with orders and count
// high/low priority lines per mode.
func Q12(store Store, sd *StoredDataset, m *Meter) (string, error) {
	const year = 1095 // day range [1095, 1460): the "1995" window
	orders := NewHashJoin(m)
	sc := &Scanner{Store: store, Ref: sd.Orders, Meter: m}
	if err := sc.Scan(func(r Row) error {
		orders.Build(r.Int(0), r)
		return nil
	}); err != nil {
		return "", err
	}
	agg := NewAggregator(m, 2) // high_count, low_count
	sc = &Scanner{Store: store, Ref: sd.Lineitem, Meter: m}
	if err := sc.Scan(func(r Row) error {
		m.AddInstr(4 * InstrPredicate)
		mode := r.Str(11)
		if mode != "MAIL" && mode != "SHIP" {
			return nil
		}
		commit, receipt, ship := r.Int(9), r.Int(10), r.Int(8)
		if !(commit < receipt && ship < commit && receipt >= year && receipt < year+365) {
			return nil
		}
		matches := orders.Probe(r.Int(0))
		if len(matches) == 0 {
			return nil
		}
		prio := matches[0].Str(4)
		m.AddInstr(2 * InstrPredicate)
		if prio == "1-URGENT" || prio == "2-HIGH" {
			agg.Update(mode, 1, 0)
		} else {
			agg.Update(mode, 0, 1)
		}
		return nil
	}); err != nil {
		return "", err
	}
	return renderAgg(agg, m), nil
}

// Q14 is TPC-H Query 14: promotion effect. Join lineitem (one ship month)
// with part and compute the promo revenue share.
func Q14(store Store, sd *StoredDataset, m *Meter) (string, error) {
	const month = 1065 // a 30-day window
	parts := NewHashJoin(m)
	sc := &Scanner{Store: store, Ref: sd.Part, Meter: m}
	if err := sc.Scan(func(r Row) error {
		parts.Build(r.Int(0), r)
		return nil
	}); err != nil {
		return "", err
	}
	var promo, total float64
	sc = &Scanner{Store: store, Ref: sd.Lineitem, Meter: m}
	if err := sc.Scan(func(r Row) error {
		m.AddInstr(2 * InstrPredicate)
		ship := r.Int(8)
		if ship < month || ship >= month+30 {
			return nil
		}
		matches := parts.Probe(r.Int(1))
		if len(matches) == 0 {
			return nil
		}
		rev := r.Float(3) * (1 - r.Float(4))
		m.AddInstr(3 * InstrArith)
		total += rev
		if strings.HasPrefix(matches[0].Str(2), "PROMO") {
			promo += rev
		}
		return nil
	}); err != nil {
		return "", err
	}
	m.RowsEmitted++
	if total == 0 {
		return "promo_revenue:0.00\n", nil
	}
	return fmt.Sprintf("promo_revenue:%.2f\n", 100*promo/total), nil
}

// Q19 is TPC-H Query 19: discounted revenue. Join lineitem with part under
// a disjunction of brand/container/quantity/size conditions.
func Q19(store Store, sd *StoredDataset, m *Meter) (string, error) {
	parts := NewHashJoin(m)
	sc := &Scanner{Store: store, Ref: sd.Part, Meter: m}
	if err := sc.Scan(func(r Row) error {
		parts.Build(r.Int(0), r)
		return nil
	}); err != nil {
		return "", err
	}
	var revenue float64
	sc = &Scanner{Store: store, Ref: sd.Lineitem, Meter: m}
	if err := sc.Scan(func(r Row) error {
		m.AddInstr(3 * InstrPredicate)
		if r.Str(12) != "DELIVER IN PERSON" {
			return nil
		}
		mode := r.Str(11)
		if mode != "AIR" && mode != "REG AIR" {
			return nil
		}
		matches := parts.Probe(r.Int(1))
		if len(matches) == 0 {
			return nil
		}
		p := matches[0]
		qty := r.Float(2)
		size := p.Int(4)
		m.AddInstr(9 * InstrPredicate)
		ok := (p.Str(1) == "Brand#12" && strings.HasPrefix(p.Str(3), "SM") && qty >= 1 && qty <= 11 && size <= 5) ||
			(p.Str(1) == "Brand#23" && strings.HasPrefix(p.Str(3), "MED") && qty >= 10 && qty <= 20 && size <= 10) ||
			(p.Str(1) == "Brand#34" && strings.HasPrefix(p.Str(3), "LG") && qty >= 20 && qty <= 30 && size <= 15)
		if ok {
			m.AddInstr(2 * InstrArith)
			revenue += r.Float(3) * (1 - r.Float(4))
		}
		return nil
	}); err != nil {
		return "", err
	}
	m.RowsEmitted++
	return fmt.Sprintf("revenue:%.2f\n", revenue), nil
}

// Arithmetic is the synthetic operator workload of Table 4: a math
// pipeline over every lineitem record.
func Arithmetic(store Store, sd *StoredDataset, m *Meter) (string, error) {
	var acc float64
	var n int64
	sc := &Scanner{Store: store, Ref: sd.Lineitem, Meter: m}
	if err := sc.Scan(func(r Row) error {
		m.AddInstr(6 * InstrArith)
		acc += r.Float(3)*(1-r.Float(4))*(1+r.Float(5)) - r.Float(2)
		if n++; n%1024 == 0 {
			m.WriteBytes(64) // periodic spill of partial results
		}
		return nil
	}); err != nil {
		return "", err
	}
	m.RowsEmitted++
	return fmt.Sprintf("arith:%.2f\n", acc), nil
}

// Aggregate is the synthetic aggregation workload: average a column over
// the full table.
func Aggregate(store Store, sd *StoredDataset, m *Meter) (string, error) {
	var sum float64
	var n int64
	sc := &Scanner{Store: store, Ref: sd.Lineitem, Meter: m}
	if err := sc.Scan(func(r Row) error {
		m.AddInstr(2 * InstrArith)
		sum += r.Float(3)
		if n++; n%1024 == 0 {
			m.WriteBytes(64) // periodic spill of the running aggregate
		}
		return nil
	}); err != nil {
		return "", err
	}
	m.RowsEmitted++
	if n == 0 {
		return "avg:0.00\n", nil
	}
	return fmt.Sprintf("avg:%.2f\n", sum/float64(n)), nil
}

// Filter is the synthetic selection workload: count records matching a
// predicate.
func Filter(store Store, sd *StoredDataset, m *Meter) (string, error) {
	var hits int64
	var n int64
	sc := &Scanner{Store: store, Ref: sd.Lineitem, Meter: m}
	if err := sc.Scan(func(r Row) error {
		m.AddInstr(2 * InstrPredicate)
		if r.Float(2) > 25 && r.Str(6) == "R" {
			hits++
			if n++; n%256 == 0 {
				m.WriteBytes(64) // emit a block of matching row IDs
			}
		}
		return nil
	}); err != nil {
		return "", err
	}
	m.RowsEmitted++
	return fmt.Sprintf("hits:%d\n", hits), nil
}

// renderAgg formats an aggregator's groups deterministically.
func renderAgg(agg *Aggregator, m *Meter) string {
	type kv struct {
		key string
		g   *Agg
	}
	var all []kv
	agg.Each(func(key string, g *Agg) { all = append(all, kv{key, g}) })
	sort.Slice(all, func(i, j int) bool { return all[i].key < all[j].key })
	var b strings.Builder
	for _, e := range all {
		fmt.Fprintf(&b, "%s:n=%d", e.key, e.g.Count)
		for _, s := range e.g.Sums {
			fmt.Fprintf(&b, ",%.2f", s)
		}
		b.WriteByte('\n')
		m.RowsEmitted++
	}
	return b.String()
}
