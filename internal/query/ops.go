package query

import "fmt"

// Instruction cost constants: calibrated per-row costs for the operator
// kernels, in retired instructions. They drive the compute-time model; the
// absolute values matter less than their ratios (probing a hash table
// costs more than evaluating a predicate, and so on).
const (
	InstrRowDecode = 6  // unpack one fixed-width row
	InstrPredicate = 4  // evaluate one comparison
	InstrHashBuild = 30 // insert into a join hash table
	InstrHashProbe = 22 // probe a join hash table
	InstrAggUpdate = 12 // update one aggregate bucket
	InstrEmit      = 10 // materialize one output row
	InstrArith     = 3  // one arithmetic operation on a column value
	InstrWordStep  = 2  // per input byte of text tokenization
)

// Scanner streams a stored table's rows through a callback, metering page
// reads, decode work, and memory traffic.
type Scanner struct {
	Store Store
	Ref   TableRef
	Meter *Meter
}

// Scan invokes fn for every row. Scanning stops on the first error.
func (sc *Scanner) Scan(fn func(Row) error) error {
	ps := sc.Store.PageSize()
	rpp := RowsPerPage(sc.Ref.Schema, ps)
	rowSize := sc.Ref.Schema.RowSize()
	base, npages := sc.Ref.PageSpan(ps)
	remaining := sc.Ref.NRows
	for p := 0; p < npages; p++ {
		data, err := sc.Store.ReadPage(base + uint32(p))
		if err != nil {
			return fmt.Errorf("query: scan of %d rows: %w", sc.Ref.NRows, err)
		}
		sc.Meter.PagesRead++
		sc.Meter.ReadBytes(int64(ps))
		n := rpp
		if remaining < n {
			n = remaining
		}
		for i := 0; i < n; i++ {
			row := DecodeRow(sc.Ref.Schema, data[i*rowSize:])
			sc.Meter.RowsScanned++
			sc.Meter.AddInstr(InstrRowDecode)
			if err := fn(row); err != nil {
				return err
			}
		}
		remaining -= n
	}
	return nil
}

// HashJoin joins the probe side against a built hash table on int64 keys,
// the equi-join shape every TPC-H query here uses.
type HashJoin struct {
	Meter *Meter
	table map[int64][]Row
}

// NewHashJoin returns an empty join.
func NewHashJoin(m *Meter) *HashJoin {
	return &HashJoin{Meter: m, table: make(map[int64][]Row)}
}

// Build inserts a build-side row under key.
func (j *HashJoin) Build(key int64, r Row) {
	j.table[key] = append(j.table[key], r)
	j.Meter.AddInstr(InstrHashBuild)
	j.Meter.WriteBytes(int64(r.schema.RowSize()) + 8)
	j.Meter.Allocate(int64(r.schema.RowSize()) + 8)
}

// Probe looks up the matches for key.
func (j *HashJoin) Probe(key int64) []Row {
	j.Meter.AddInstr(InstrHashProbe)
	j.Meter.ReadBytes(16)
	rows := j.table[key]
	if len(rows) > 0 {
		j.Meter.ReadBytes(int64(len(rows) * rows[0].schema.RowSize()))
	}
	return rows
}

// Size returns the number of distinct build keys.
func (j *HashJoin) Size() int { return len(j.table) }

// Agg is one aggregate bucket: running sums, counts, min/max.
type Agg struct {
	Count int64
	Sums  []float64
}

// Aggregator groups rows by a string key and maintains nsums running sums
// per group.
type Aggregator struct {
	Meter  *Meter
	nsums  int
	groups map[string]*Agg
}

// NewAggregator returns an aggregator with nsums sums per group.
func NewAggregator(m *Meter, nsums int) *Aggregator {
	return &Aggregator{Meter: m, nsums: nsums, groups: make(map[string]*Agg)}
}

// Update adds vals (len nsums) into key's bucket. Memory traffic is
// charged only on bucket creation: live aggregation state is small and
// cache-resident, so repeated updates never reach DRAM — which is why the
// Table 1 write ratios of scan/aggregate workloads are in the 1e-4 range.
func (a *Aggregator) Update(key string, vals ...float64) {
	g, ok := a.groups[key]
	if !ok {
		g = &Agg{Sums: make([]float64, a.nsums)}
		a.groups[key] = g
		a.Meter.ReadBytes(int64(16 + 8*a.nsums))
		a.Meter.WriteBytes(int64(16 + 8*a.nsums))
		a.Meter.Allocate(int64(16 + 8*a.nsums))
	}
	g.Count++
	for i, v := range vals {
		g.Sums[i] += v
	}
	a.Meter.AddInstr(InstrAggUpdate + InstrArith*int64(len(vals)))
}

// Get returns key's bucket, or nil.
func (a *Aggregator) Get(key string) *Agg { return a.groups[key] }

// Groups returns the number of distinct groups.
func (a *Aggregator) Groups() int { return len(a.groups) }

// Each visits every (key, bucket) pair in unspecified order.
func (a *Aggregator) Each(fn func(key string, g *Agg)) {
	for k, g := range a.groups {
		fn(k, g)
		a.Meter.AddInstr(InstrEmit)
	}
}
