package query

import "fmt"

// Store is the paged storage a query program runs against. In the full
// system it is backed by the FTL (host path) or a TEE's permission-checked
// view of flash (in-storage path); tests use MemStore.
type Store interface {
	// PageSize returns the page granularity in bytes.
	PageSize() int
	// ReadPage returns the content of logical page lpa.
	ReadPage(lpa uint32) ([]byte, error)
	// WritePage stores data (at most PageSize bytes) at logical page lpa.
	WritePage(lpa uint32, data []byte) error
}

// Meter accumulates the work a program performs, in units the timing layer
// converts to simulated time. Memory accesses are 64-byte lines.
type Meter struct {
	PagesRead    int64
	PagesWritten int64
	Instructions int64
	MemReads     int64
	MemWrites    int64
	RowsScanned  int64
	RowsEmitted  int64
	// Intermediate is the bytes of live intermediate state the program
	// allocates (hash tables, aggregation buckets, output buffers) — the
	// writable working set the MEE protects.
	Intermediate int64
}

// AddInstr records n instructions.
func (m *Meter) AddInstr(n int64) { m.Instructions += n }

// ReadBytes records memory-read traffic of n bytes.
func (m *Meter) ReadBytes(n int64) { m.MemReads += (n + 63) / 64 }

// WriteBytes records memory-write traffic of n bytes.
func (m *Meter) WriteBytes(n int64) { m.MemWrites += (n + 63) / 64 }

// WriteRatio returns memory writes over total memory accesses — the
// Table 1 characterization metric.
func (m *Meter) WriteRatio() float64 {
	total := m.MemReads + m.MemWrites
	if total == 0 {
		return 0
	}
	return float64(m.MemWrites) / float64(total)
}

// Allocate records n bytes of new intermediate state.
func (m *Meter) Allocate(n int64) { m.Intermediate += n }

// Add merges another meter's counts into m.
func (m *Meter) Add(o Meter) {
	m.PagesRead += o.PagesRead
	m.PagesWritten += o.PagesWritten
	m.Instructions += o.Instructions
	m.MemReads += o.MemReads
	m.MemWrites += o.MemWrites
	m.RowsScanned += o.RowsScanned
	m.RowsEmitted += o.RowsEmitted
	m.Intermediate += o.Intermediate
}

// MemStore is an in-memory Store for tests and the host execution path.
type MemStore struct {
	pageSize int
	pages    map[uint32][]byte
}

// NewMemStore returns a MemStore with the given page size.
func NewMemStore(pageSize int) *MemStore {
	return &MemStore{pageSize: pageSize, pages: make(map[uint32][]byte)}
}

// PageSize implements Store.
func (s *MemStore) PageSize() int { return s.pageSize }

// ReadPage implements Store.
func (s *MemStore) ReadPage(lpa uint32) ([]byte, error) {
	p, ok := s.pages[lpa]
	if !ok {
		return nil, fmt.Errorf("query: page %d not found", lpa)
	}
	return p, nil
}

// WritePage implements Store.
func (s *MemStore) WritePage(lpa uint32, data []byte) error {
	if len(data) > s.pageSize {
		return fmt.Errorf("query: page write of %d bytes exceeds page size %d", len(data), s.pageSize)
	}
	s.pages[lpa] = append([]byte(nil), data...)
	return nil
}

// Pages returns the number of stored pages.
func (s *MemStore) Pages() int { return len(s.pages) }

// StoreTable serializes t into store starting at page base, returning the
// number of pages written.
func StoreTable(store Store, t *Table, base uint32) (pages int, err error) {
	ps := store.PageSize()
	rpp := RowsPerPage(t.Schema, ps)
	rowSize := t.Schema.RowSize()
	buf := make([]byte, ps)
	page, inPage := 0, 0
	for i := 0; i < t.Rows(); i++ {
		t.EncodeRow(i, buf[inPage*rowSize:])
		inPage++
		if inPage == rpp {
			if err := store.WritePage(base+uint32(page), buf); err != nil {
				return page, err
			}
			page++
			inPage = 0
			for j := range buf {
				buf[j] = 0
			}
		}
	}
	if inPage > 0 {
		if err := store.WritePage(base+uint32(page), buf); err != nil {
			return page, err
		}
		page++
	}
	return page, nil
}

// TableRef locates a stored table: its schema, base page, and row count.
type TableRef struct {
	Schema Schema
	Base   uint32
	NRows  int
}

// PageSpan returns the page range [Base, Base+n) the table occupies.
func (r TableRef) PageSpan(pageSize int) (base uint32, n int) {
	return r.Base, PageCount(r.Schema, r.NRows, pageSize)
}

// LPAs enumerates the logical pages of the table, for SetIDBits calls.
func (r TableRef) LPAs(pageSize int) []uint32 {
	base, n := r.PageSpan(pageSize)
	out := make([]uint32, n)
	for i := range out {
		out[i] = base + uint32(i)
	}
	return out
}
