package query

import "iceclave/internal/sim"

// The TPC-H subset schema: the columns the five evaluated queries (Q1, Q3,
// Q12, Q14, Q19) touch. Dates are days since 1992-01-01; the classic
// cutoff date 1998-12-01 is day 2526.
var (
	// LineitemSchema covers Q1/Q3/Q12/Q14/Q19.
	LineitemSchema = Schema{
		{Name: "l_orderkey", Type: I64},
		{Name: "l_partkey", Type: I64},
		{Name: "l_quantity", Type: F64},
		{Name: "l_extendedprice", Type: F64},
		{Name: "l_discount", Type: F64},
		{Name: "l_tax", Type: F64},
		{Name: "l_returnflag", Type: Str16},
		{Name: "l_linestatus", Type: Str16},
		{Name: "l_shipdate", Type: I64},
		{Name: "l_commitdate", Type: I64},
		{Name: "l_receiptdate", Type: I64},
		{Name: "l_shipmode", Type: Str16},
		{Name: "l_shipinstruct", Type: Str16},
	}
	// OrdersSchema covers Q3/Q12.
	OrdersSchema = Schema{
		{Name: "o_orderkey", Type: I64},
		{Name: "o_custkey", Type: I64},
		{Name: "o_orderdate", Type: I64},
		{Name: "o_shippriority", Type: I64},
		{Name: "o_orderpriority", Type: Str16},
	}
	// CustomerSchema covers Q3.
	CustomerSchema = Schema{
		{Name: "c_custkey", Type: I64},
		{Name: "c_mktsegment", Type: Str16},
	}
	// PartSchema covers Q14/Q19.
	PartSchema = Schema{
		{Name: "p_partkey", Type: I64},
		{Name: "p_brand", Type: Str16},
		{Name: "p_type", Type: Str16},
		{Name: "p_container", Type: Str16},
		{Name: "p_size", Type: I64},
	}
)

// Day2526 is 1998-12-01, the Q1 cutoff anchor.
const Day2526 = 2526

var (
	shipmodes    = []string{"MAIL", "SHIP", "AIR", "RAIL", "TRUCK", "FOB", "REG AIR"}
	returnflags  = []string{"R", "N", "A"}
	linestatuses = []string{"O", "F"}
	segments     = []string{"BUILDING", "AUTOMOBILE", "MACHINERY", "HOUSEHOLD", "FURNITURE"}
	brands       = []string{"Brand#12", "Brand#23", "Brand#34", "Brand#45", "Brand#55"}
	types        = []string{"PROMO BURNISHED", "PROMO PLATED", "STANDARD BRUSHED", "ECONOMY POLISHED", "MEDIUM ANODIZED"}
	containers   = []string{"SM CASE", "SM BOX", "MED BAG", "MED BOX", "LG CASE", "LG BOX", "SM PACK", "MED PKG", "LG PACK"}
	instructs    = []string{"DELIVER IN PERSON", "COLLECT COD", "NONE", "TAKE BACK RETURN"}
	priorities   = []string{"1-URGENT", "2-HIGH", "3-MEDIUM", "4-NOT SPECIFIED", "5-LOW"}
)

// Dataset is a generated TPC-H subset instance.
type Dataset struct {
	Lineitem *Table
	Orders   *Table
	Customer *Table
	Part     *Table
}

// GenerateTPCH builds a deterministic scaled dataset with the given number
// of lineitem rows. Orders are lineitems/4, customers orders/10, parts
// lineitems/8, mirroring TPC-H's row-count ratios.
func GenerateTPCH(lineitems int, seed uint64) *Dataset {
	rng := sim.NewRNG(seed)
	norders := lineitems/4 + 1
	ncust := norders/10 + 1
	nparts := lineitems/8 + 1

	ds := &Dataset{
		Lineitem: NewTable("lineitem", LineitemSchema),
		Orders:   NewTable("orders", OrdersSchema),
		Customer: NewTable("customer", CustomerSchema),
		Part:     NewTable("part", PartSchema),
	}

	for i := 0; i < ncust; i++ {
		r := NewRow(CustomerSchema)
		r.SetInt(0, int64(i))
		r.SetStr(1, segments[rng.Intn(len(segments))])
		ds.Customer.Append(r)
	}
	for i := 0; i < norders; i++ {
		r := NewRow(OrdersSchema)
		r.SetInt(0, int64(i))
		r.SetInt(1, rng.Int63n(int64(ncust)))
		r.SetInt(2, rng.Int63n(2400)) // order dates through mid-1998
		r.SetInt(3, 0)
		r.SetStr(4, priorities[rng.Intn(len(priorities))])
		ds.Orders.Append(r)
	}
	for i := 0; i < nparts; i++ {
		r := NewRow(PartSchema)
		r.SetInt(0, int64(i))
		r.SetStr(1, brands[rng.Intn(len(brands))])
		r.SetStr(2, types[rng.Intn(len(types))])
		r.SetStr(3, containers[rng.Intn(len(containers))])
		r.SetInt(4, 1+rng.Int63n(50))
		ds.Part.Append(r)
	}
	for i := 0; i < lineitems; i++ {
		r := NewRow(LineitemSchema)
		order := rng.Int63n(int64(norders))
		ship := ds.Orders.Int(int(order), 2) + 1 + rng.Int63n(120)
		r.SetInt(0, order)
		r.SetInt(1, rng.Int63n(int64(nparts)))
		r.SetFloat(2, float64(1+rng.Intn(50)))
		r.SetFloat(3, 900+rng.Float64()*100000)
		r.SetFloat(4, float64(rng.Intn(11))/100)
		r.SetFloat(5, float64(rng.Intn(9))/100)
		r.SetStr(6, returnflags[rng.Intn(len(returnflags))])
		r.SetStr(7, linestatuses[rng.Intn(len(linestatuses))])
		r.SetInt(8, ship)
		r.SetInt(9, ship+int64(rng.Intn(30))-15)
		r.SetInt(10, ship+1+rng.Int63n(30))
		r.SetStr(11, shipmodes[rng.Intn(len(shipmodes))])
		r.SetStr(12, instructs[rng.Intn(len(instructs))])
		ds.Lineitem.Append(r)
	}
	return ds
}

// StoredDataset is a Dataset serialized onto a Store, with the page
// layout needed to address each table.
type StoredDataset struct {
	Lineitem TableRef
	Orders   TableRef
	Customer TableRef
	Part     TableRef
}

// Store serializes ds onto store, packing the tables contiguously from
// page base, and returns their locations.
func (ds *Dataset) Store(store Store, base uint32) (*StoredDataset, error) {
	sd := &StoredDataset{}
	next := base
	place := func(t *Table, ref *TableRef) error {
		n, err := StoreTable(store, t, next)
		if err != nil {
			return err
		}
		*ref = TableRef{Schema: t.Schema, Base: next, NRows: t.Rows()}
		next += uint32(n)
		return nil
	}
	if err := place(ds.Lineitem, &sd.Lineitem); err != nil {
		return nil, err
	}
	if err := place(ds.Orders, &sd.Orders); err != nil {
		return nil, err
	}
	if err := place(ds.Customer, &sd.Customer); err != nil {
		return nil, err
	}
	if err := place(ds.Part, &sd.Part); err != nil {
		return nil, err
	}
	return sd, nil
}

// AllLPAs returns every logical page of the dataset, for SetIDBits.
func (sd *StoredDataset) AllLPAs(pageSize int) []uint32 {
	var out []uint32
	for _, ref := range []TableRef{sd.Lineitem, sd.Orders, sd.Customer, sd.Part} {
		out = append(out, ref.LPAs(pageSize)...)
	}
	return out
}
