package sched

import (
	"context"
	"sort"
	"time"

	"iceclave/internal/sim"
)

// RetryPolicy is the virtual-time retry/backoff policy applied to a
// tenant's offload when a step fails with a recoverable fault. It is a
// pure value: the replay engine evaluates it on the virtual clock, so
// identical policies replay identically.
type RetryPolicy struct {
	// MaxRetries bounds the retries per offload; once exhausted the
	// offload fails permanently.
	MaxRetries int
	// Backoff is the delay before the first retry; each subsequent retry
	// doubles it, capped at BackoffCap.
	Backoff sim.Duration
	// BackoffCap caps the exponential growth. <= 0 means uncapped.
	BackoffCap sim.Duration
	// Timeout is the per-offload virtual deadline measured from the
	// offload's start; a fault observed past it fails the offload
	// immediately instead of retrying. <= 0 means no deadline.
	Timeout sim.Duration
}

// BackoffFor returns the capped exponential delay before retry attempt
// (0-based): Backoff << attempt, saturating at BackoffCap.
func (p RetryPolicy) BackoffFor(attempt int) sim.Duration {
	d := p.Backoff
	if d <= 0 {
		return 0
	}
	for i := 0; i < attempt; i++ {
		d *= 2
		if p.BackoffCap > 0 && d >= p.BackoffCap {
			return p.BackoffCap
		}
	}
	if p.BackoffCap > 0 && d > p.BackoffCap {
		return p.BackoffCap
	}
	return d
}

// Breakers is a set of per-tenant circuit breakers keyed by tenant name,
// sharing one configuration. Like the breakers themselves it follows the
// sim single-goroutine contract: on the replay path it is touched only
// from coordinator-run events.
type Breakers struct {
	cfg sim.BreakerConfig
	m   map[string]*sim.Breaker
}

// NewBreakers builds an empty breaker set with the given per-breaker
// config (zero value for defaults).
func NewBreakers(cfg sim.BreakerConfig) *Breakers {
	return &Breakers{cfg: cfg, m: make(map[string]*sim.Breaker)}
}

// For returns tenant's breaker, creating it (closed) on first use.
// Tenants sharing a name share a breaker — the per-tenant semantics of
// the experiments, where a tenant is its workload identity.
func (bs *Breakers) For(tenant string) *sim.Breaker {
	b, ok := bs.m[tenant]
	if !ok {
		b = sim.NewBreaker(bs.cfg)
		bs.m[tenant] = b
	}
	return b
}

// Trips sums the trip counts across all breakers.
func (bs *Breakers) Trips() int {
	n := 0
	for _, b := range bs.m {
		n += b.Trips()
	}
	return n
}

// Config returns the per-breaker configuration the set was built with —
// the identity the resource pool matches on when deciding whether a
// recycled set can serve an upcoming run.
func (bs *Breakers) Config() sim.BreakerConfig { return bs.cfg }

// Reset returns every breaker in the set to its initial closed state
// with zero trips — the pooled-reuse contract hook: a recycled replay
// stack's breaker set must be indistinguishable from a fresh one, no
// matter how tripped, open, or half-open the previous run left it.
func (bs *Breakers) Reset() {
	for _, b := range bs.m {
		b.Reset()
	}
}

// Straggler reports one tenant's unfinished work at a drain deadline.
type Straggler struct {
	Tenant  string
	Queued  int
	Running int
}

// DrainTimeout stops admission and waits up to timeout for the queues
// and workers to empty. On success it returns (nil, nil). At the
// deadline it returns the per-tenant stragglers (sorted by tenant name)
// and a drain error, instead of blocking forever — the caller decides
// whether to Close hard or keep waiting. Like Drain, workers stay alive
// and the scheduler keeps rejecting new Submits afterwards.
func (s *Scheduler) DrainTimeout(timeout time.Duration) ([]Straggler, error) {
	ctx, cancel := context.WithTimeout(context.Background(), timeout)
	defer cancel()
	err := s.Drain(ctx)
	if err == nil {
		return nil, nil
	}
	return s.stragglers(), err
}

// Reopen returns a drained (but not Closed) scheduler to service:
// Submit accepts work again. It is the re-admit half of the fleet
// failover sequence — a device drained for migration or repair comes
// back into rotation without rebuilding its scheduler and workers.
// Reopening a Closed scheduler fails with ErrClosed.
func (s *Scheduler) Reopen() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.stopped {
		return ErrClosed
	}
	s.draining = false
	return nil
}

// stragglers snapshots the tenants with queued or running jobs.
func (s *Scheduler) stragglers() []Straggler {
	s.mu.Lock()
	defer s.mu.Unlock()
	byTenant := make(map[string]*Straggler)
	get := func(name string) *Straggler {
		st, ok := byTenant[name]
		if !ok {
			st = &Straggler{Tenant: name}
			byTenant[name] = st
		}
		return st
	}
	for p := range s.queues {
		for _, j := range s.queues[p] {
			get(j.tenant).Queued++
		}
	}
	for name, ts := range s.tenants {
		if ts.inflight > 0 {
			get(name).Running = ts.inflight
		}
	}
	out := make([]Straggler, 0, len(byTenant))
	for _, st := range byTenant {
		out = append(out, *st)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Tenant < out[j].Tenant })
	return out
}
