package sched

import "iceclave/internal/sim"

// This file is the scheduler's simulated-time mode. The goroutine pool in
// sched.go meters admission control in wall-clock time; VirtualAdmission
// expresses the same policy — per-tenant in-flight caps, a global cap,
// FIFO dispatch within three priority bands, work-conserving skip of
// capped tenants — as discrete events on a sim.Engine, so queueing delay
// from admission lands on the simulated clock that the flash, CPU, and
// memory models already share. core.RunMulti threads this mode into the
// multi-tenant replay loop; the Figure 17/18-style timing tables read the
// delay back out of core.Result.QueueDelay.
//
// Concurrency contract: unlike Scheduler, VirtualAdmission follows the sim
// package's single-goroutine rule — it is part of a simulation, not a
// thread pool.

// VirtualConfig tunes the simulated-time admission gate. The zero value
// means no admission control at all (every tenant starts immediately),
// which reproduces the pre-backbone replay semantics.
type VirtualConfig struct {
	// MaxInFlight caps tenants replaying concurrently across the device
	// (the 15 live TEE IDs of §4.3, or a policy choice below it).
	// Non-positive means unlimited.
	MaxInFlight int
	// TenantMaxInFlight caps concurrently running jobs per tenant key.
	// Non-positive means unlimited.
	TenantMaxInFlight int
	// GrantQuantum, when positive, switches the gate from per-release
	// dispatch to batched grants: admissions fire only at multiples of
	// the quantum on the virtual clock, modelling controller firmware
	// that amortizes scheduling over a periodic timer instead of taking
	// a scheduling pass on every completion.
	GrantQuantum sim.Duration
	// GrantBatch caps how many queued tenants one quantum tick admits;
	// non-positive means the tick admits everything capacity allows.
	// Ignored unless GrantQuantum is set.
	GrantBatch int
	// GrantAdaptive, when non-nil, makes the batched-grant tick
	// load-sensitive: each armed tick uses the period this hook returns
	// for the current queue depth and base quantum (non-positive returns
	// fall back to GrantQuantum). Ignored unless GrantQuantum is set.
	GrantAdaptive func(queued int, base sim.Duration) sim.Duration
}

// VirtualAdmission is the sim-backed admission resource: Submit queues a
// tenant job at a virtual instant, the grant callback fires as an engine
// event when capacity allows, and Release returns the slot at the job's
// virtual completion time.
type VirtualAdmission struct {
	adm *sim.Admission
}

// NewVirtualAdmission builds the gate over eng with the scheduler's three
// priority bands. Any sim.Scheduler works — the serial sim.Engine or the
// sharded parallel engine; grants are cross-shard (fenced) events either
// way, so the gate's bookkeeping never races with shard workers.
func NewVirtualAdmission(eng sim.Scheduler, cfg VirtualConfig) *VirtualAdmission {
	return &VirtualAdmission{
		adm: sim.NewAdmissionWithPolicy(eng, int(numPriorities), sim.Policy{
			Slots:           cfg.MaxInFlight,
			PerKey:          cfg.TenantMaxInFlight,
			Quantum:         cfg.GrantQuantum,
			Batch:           cfg.GrantBatch,
			AdaptiveQuantum: cfg.GrantAdaptive,
		}),
	}
}

// Submit enqueues one job for tenant at virtual time at; fn runs when the
// job is admitted, with the grant time as its argument. Like Scheduler,
// higher priorities dispatch first and tenants at their cap are skipped,
// not waited on.
func (v *VirtualAdmission) Submit(at sim.Time, tenant string, prio Priority, fn func(granted sim.Time)) *sim.Ticket {
	if prio < PriorityLow || prio >= numPriorities {
		prio = PriorityNormal
	}
	return v.adm.Submit(at, tenant, int(prio), fn)
}

// ScheduledArrival is one entry of a fixed open-loop submission schedule:
// the virtual instant the tenant's request reaches the gate, plus the
// tenant key, priority, and grant callback Submit would take. Out-of-range
// priorities clamp to PriorityNormal, matching Submit.
type ScheduledArrival struct {
	At       sim.Time
	Tenant   string
	Priority Priority
	Fn       func(granted sim.Time)
}

// Playback is the gate's open-loop mode: each entry enters the gate as an
// engine event at its scheduled virtual time (rather than when the caller
// gets around to Submit), and entries sharing an instant are granted by
// one dispatch pass — highest band first — so simultaneous arrivals
// contend by priority, not schedule position. Tickets are returned in
// entry order; their Waited and the gate's statistics count from each
// scheduled arrival, never including pre-arrival idle. This is how
// core.RunMulti replays a trace.Schedule.
func (v *VirtualAdmission) Playback(entries []ScheduledArrival) []*sim.Ticket {
	arrivals := make([]sim.Arrival, len(entries))
	for i, e := range entries {
		p := e.Priority
		if p < PriorityLow || p >= numPriorities {
			p = PriorityNormal
		}
		arrivals[i] = sim.Arrival{At: e.At, Key: e.Tenant, Band: int(p), Fn: e.Fn}
	}
	return v.adm.Playback(arrivals)
}

// Release retires a granted job at its virtual completion time, admitting
// whatever the freed capacity now allows.
func (v *VirtualAdmission) Release(t *sim.Ticket, at sim.Time) { v.adm.Release(t, at) }

// Pending returns the queued (not yet admitted) job count.
func (v *VirtualAdmission) Pending() int { return v.adm.Pending() }

// Running returns the admitted, unreleased job count.
func (v *VirtualAdmission) Running() int { return v.adm.Running() }

// Waited returns the total simulated queueing delay across admitted jobs.
func (v *VirtualAdmission) Waited() sim.Duration { return v.adm.Waited() }

// Ticks returns how many batched scheduling passes have run (zero in
// per-release mode).
func (v *VirtualAdmission) Ticks() int64 { return v.adm.Ticks() }
