package sched

import (
	"context"
	"testing"
	"time"

	"iceclave/internal/sim"
)

func TestBackoffFor(t *testing.T) {
	p := RetryPolicy{Backoff: 100, BackoffCap: 1000}
	want := []sim.Duration{100, 200, 400, 800, 1000, 1000}
	for attempt, w := range want {
		if got := p.BackoffFor(attempt); got != w {
			t.Errorf("BackoffFor(%d) = %d, want %d", attempt, got, w)
		}
	}
	// No cap: pure doubling.
	if got := (RetryPolicy{Backoff: 1}).BackoffFor(10); got != 1024 {
		t.Errorf("uncapped BackoffFor(10) = %d, want 1024", got)
	}
	// No base: no delay regardless of attempt.
	if got := (RetryPolicy{}).BackoffFor(5); got != 0 {
		t.Errorf("zero-policy BackoffFor(5) = %d, want 0", got)
	}
}

func TestBreakersSharedByName(t *testing.T) {
	bs := NewBreakers(sim.BreakerConfig{Failures: 1, Cooldown: 10})
	a := bs.For("tenant-a")
	if bs.For("tenant-a") != a {
		t.Fatal("same name must return the same breaker")
	}
	b := bs.For("tenant-b")
	if a == b {
		t.Fatal("different names must not share a breaker")
	}
	a.Failure(0)
	b.Failure(0)
	a.Allow(10)
	a.Failure(11)
	if got := bs.Trips(); got != 3 {
		t.Fatalf("Trips() = %d, want 3", got)
	}
}

func TestDrainTimeoutSuccess(t *testing.T) {
	s := New(Config{Workers: 2})
	defer s.Close(context.Background())
	for i := 0; i < 8; i++ {
		if _, err := s.Submit("t0", PriorityNormal, func(context.Context) error { return nil }); err != nil {
			t.Fatal(err)
		}
	}
	stragglers, err := s.DrainTimeout(5 * time.Second)
	if err != nil {
		t.Fatalf("drain failed: %v", err)
	}
	if stragglers != nil {
		t.Fatalf("stragglers on clean drain: %+v", stragglers)
	}
}

func TestDrainTimeoutReportsStragglers(t *testing.T) {
	s := New(Config{Workers: 1, TenantMaxInFlight: 1})
	release := make(chan struct{})
	defer func() {
		close(release)
		s.Close(context.Background())
	}()
	started := make(chan struct{})
	// One job wedges the single worker; the rest queue behind it.
	if _, err := s.Submit("slow", PriorityNormal, func(context.Context) error {
		close(started)
		<-release
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	<-started
	for i := 0; i < 3; i++ {
		if _, err := s.Submit("queued", PriorityNormal, func(context.Context) error { return nil }); err != nil {
			t.Fatal(err)
		}
	}
	stragglers, err := s.DrainTimeout(50 * time.Millisecond)
	if err == nil {
		t.Fatal("drain of a wedged scheduler succeeded")
	}
	byName := map[string]Straggler{}
	for _, st := range stragglers {
		byName[st.Tenant] = st
	}
	if byName["slow"].Running != 1 {
		t.Fatalf("slow tenant not reported running: %+v", stragglers)
	}
	if byName["queued"].Queued != 3 {
		t.Fatalf("queued tenant not reported: %+v", stragglers)
	}
	// Sorted by tenant name.
	for i := 1; i < len(stragglers); i++ {
		if stragglers[i-1].Tenant > stragglers[i].Tenant {
			t.Fatalf("stragglers not sorted: %+v", stragglers)
		}
	}
}
