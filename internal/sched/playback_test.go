package sched

import (
	"testing"

	"iceclave/internal/sim"
)

// TestVirtualPlaybackClampsPriorities pins the sched-level playback
// wrapper: out-of-range priorities clamp to PriorityNormal (matching
// Submit), and in-range priorities keep their bands — under a one-slot
// cap, the high entry is granted before both clamped-to-normal entries,
// which then follow schedule order.
func TestVirtualPlaybackClampsPriorities(t *testing.T) {
	eng := &sim.Engine{}
	va := NewVirtualAdmission(eng, VirtualConfig{MaxInFlight: 1})
	const service = 50 * sim.Microsecond
	var order []string
	var tks []*sim.Ticket
	entry := func(i int, name string, prio Priority) ScheduledArrival {
		return ScheduledArrival{At: 0, Tenant: name, Priority: prio, Fn: func(g sim.Time) {
			order = append(order, name)
			eng.At(g+sim.Time(service), func(now sim.Time) { va.Release(tks[i], now) })
		}}
	}
	tks = va.Playback([]ScheduledArrival{
		entry(0, "underflow", Priority(-3)),
		entry(1, "high", PriorityHigh),
		entry(2, "overflow", Priority(99)),
	})
	eng.Run()
	want := []string{"high", "underflow", "overflow"}
	for i := range want {
		if i >= len(order) || order[i] != want[i] {
			t.Fatalf("grant order = %v, want %v", order, want)
		}
	}
	if tks[0].Band != int(PriorityNormal) || tks[2].Band != int(PriorityNormal) {
		t.Fatalf("clamped bands = %d, %d; want both %d",
			tks[0].Band, tks[2].Band, int(PriorityNormal))
	}
	if tks[1].Band != int(PriorityHigh) {
		t.Fatalf("high entry landed in band %d", tks[1].Band)
	}
}

// TestVirtualPlaybackSchedulesAtArrival pins that the wrapper preserves
// scheduled arrival instants and tenant keys through to the gate.
func TestVirtualPlaybackSchedulesAtArrival(t *testing.T) {
	eng := &sim.Engine{}
	va := NewVirtualAdmission(eng, VirtualConfig{})
	var granted sim.Time = -1
	tks := va.Playback([]ScheduledArrival{
		{At: 7 * sim.Millisecond, Tenant: "t0", Priority: PriorityLow,
			Fn: func(g sim.Time) { granted = g }},
	})
	eng.Run()
	if granted != 7*sim.Millisecond {
		t.Fatalf("granted at %v, want the 7ms arrival", granted)
	}
	if tks[0].Key != "t0" || tks[0].Submitted != 7*sim.Millisecond || tks[0].Waited() != 0 {
		t.Fatalf("ticket = %+v, want key t0 submitted at 7ms with zero wait", tks[0])
	}
}
