package sched

import (
	"testing"

	"iceclave/internal/sim"
)

// TestVirtualAdmissionMirrorsSchedulerPolicy drives the simulated-time
// mode through the same admission scenario the goroutine pool implements
// — per-tenant cap 1, global cap 2, priority bands — and checks the grant
// order and the virtual queueing delays.
func TestVirtualAdmissionMirrorsSchedulerPolicy(t *testing.T) {
	eng := &sim.Engine{}
	va := NewVirtualAdmission(eng, VirtualConfig{MaxInFlight: 2, TenantMaxInFlight: 1})

	type grant struct {
		name string
		at   sim.Time
	}
	var grants []grant
	submit := func(tenant string, prio Priority) *sim.Ticket {
		return va.Submit(0, tenant, prio, func(now sim.Time) {
			grants = append(grants, grant{tenant + "/" + prio.String(), now})
		})
	}

	tA := submit("a", PriorityNormal)
	tB := submit("b", PriorityNormal)
	submit("a", PriorityHigh) // tenant a at cap: queued despite high band
	submit("c", PriorityLow)
	submit("d", PriorityHigh)
	eng.Run()

	// Two slots: a and b run; the rest queue.
	if va.Running() != 2 || va.Pending() != 3 {
		t.Fatalf("running=%d pending=%d, want 2/3", va.Running(), va.Pending())
	}

	// b finishes at t=1000: tenant a is still capped, so the high-band
	// winner is d, not a's second job.
	va.Release(tB, 1000)
	eng.Run()
	if got := grants[len(grants)-1]; got.name != "d/high" || got.at != 1000 {
		t.Fatalf("after b: granted %+v, want d/high at 1000", got)
	}

	// a finishes at t=3000: its queued high-band job now beats c's low.
	va.Release(tA, 3000)
	eng.Run()
	if got := grants[len(grants)-1]; got.name != "a/high" || got.at != 3000 {
		t.Fatalf("after a: granted %+v, want a/high at 3000", got)
	}

	// Queueing delay accumulated on the virtual clock: d waited 1000,
	// a/high waited 3000.
	if va.Waited() != 4000 {
		t.Fatalf("aggregate wait %v, want 4000", va.Waited())
	}
}

// TestVirtualAdmissionUncapped pins the zero-config behavior RunMulti
// relies on: no caps means every tenant is admitted at submission time.
func TestVirtualAdmissionUncapped(t *testing.T) {
	eng := &sim.Engine{}
	va := NewVirtualAdmission(eng, VirtualConfig{})
	for i := 0; i < 64; i++ {
		va.Submit(0, "t", PriorityNormal, func(now sim.Time) {
			if now != 0 {
				t.Errorf("uncapped grant at %v, want 0", now)
			}
		})
	}
	eng.Run()
	if va.Pending() != 0 || va.Running() != 64 {
		t.Fatalf("pending=%d running=%d, want 0/64", va.Pending(), va.Running())
	}
}

// TestVirtualAdmissionOutOfRangePriority pins the defensive clamp: an
// invalid band falls back to normal rather than panicking mid-simulation.
func TestVirtualAdmissionOutOfRangePriority(t *testing.T) {
	eng := &sim.Engine{}
	va := NewVirtualAdmission(eng, VirtualConfig{MaxInFlight: 1})
	fired := false
	va.Submit(0, "t", Priority(99), func(sim.Time) { fired = true })
	eng.Run()
	if !fired {
		t.Fatal("clamped-priority submission never granted")
	}
}
