package sched

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// waitAll waits on every handle, failing the test on job error.
func waitAll(t *testing.T, hs []*Handle) {
	t.Helper()
	for i, h := range hs {
		if err := h.Wait(); err != nil {
			t.Fatalf("job %d: %v", i, err)
		}
	}
}

func TestSubmitRunsJobs(t *testing.T) {
	s := New(Config{Workers: 2})
	defer s.Close(context.Background())
	var n atomic.Int64
	var hs []*Handle
	for i := 0; i < 16; i++ {
		h, err := s.Submit("t0", PriorityNormal, func(context.Context) error {
			n.Add(1)
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
		hs = append(hs, h)
	}
	waitAll(t, hs)
	if n.Load() != 16 {
		t.Fatalf("ran %d jobs, want 16", n.Load())
	}
	st := s.Stats()
	if st.Completed != 16 || st.Failed != 0 {
		t.Fatalf("stats = %+v", st)
	}
}

// TestAdmission is the table-driven admission-control check: with various
// per-tenant and global caps, the observed concurrency must never exceed
// either bound, and every job must still run (work conservation).
func TestAdmission(t *testing.T) {
	cases := []struct {
		name          string
		cfg           Config
		tenants       int
		jobsPerTenant int
	}{
		{"one-per-tenant", Config{Workers: 8, TenantMaxInFlight: 1, MaxInFlight: 15}, 4, 6},
		{"two-per-tenant", Config{Workers: 8, TenantMaxInFlight: 2, MaxInFlight: 15}, 4, 6},
		{"global-cap-binds", Config{Workers: 8, TenantMaxInFlight: 8, MaxInFlight: 3}, 4, 4},
		{"single-worker", Config{Workers: 1, TenantMaxInFlight: 4, MaxInFlight: 15}, 3, 3},
		{"more-tenants-than-workers", Config{Workers: 2, TenantMaxInFlight: 1, MaxInFlight: 15}, 9, 2},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			s := New(tc.cfg)
			defer s.Close(context.Background())
			var (
				mu         sync.Mutex
				inflight   = map[string]int{}
				total      int
				maxTotal   int
				maxPerTen  int
				violations int
			)
			var hs []*Handle
			for ti := 0; ti < tc.tenants; ti++ {
				tenant := fmt.Sprintf("tenant-%d", ti)
				for j := 0; j < tc.jobsPerTenant; j++ {
					h, err := s.Submit(tenant, PriorityNormal, func(context.Context) error {
						mu.Lock()
						inflight[tenant]++
						total++
						if total > maxTotal {
							maxTotal = total
						}
						if inflight[tenant] > maxPerTen {
							maxPerTen = inflight[tenant]
						}
						if inflight[tenant] > tc.cfg.TenantMaxInFlight || total > tc.cfg.MaxInFlight {
							violations++
						}
						mu.Unlock()
						time.Sleep(time.Millisecond)
						mu.Lock()
						inflight[tenant]--
						total--
						mu.Unlock()
						return nil
					})
					if err != nil {
						t.Fatal(err)
					}
					hs = append(hs, h)
				}
			}
			waitAll(t, hs)
			if violations > 0 {
				t.Fatalf("%d admission violations (max total %d, max per-tenant %d)",
					violations, maxTotal, maxPerTen)
			}
			if got := s.Stats().Completed; got != int64(tc.tenants*tc.jobsPerTenant) {
				t.Fatalf("completed %d, want %d", got, tc.tenants*tc.jobsPerTenant)
			}
			for ti := 0; ti < tc.tenants; ti++ {
				ts := s.TenantStats(fmt.Sprintf("tenant-%d", ti))
				if ts.Completed != int64(tc.jobsPerTenant) {
					t.Fatalf("tenant %d completed %d, want %d", ti, ts.Completed, tc.jobsPerTenant)
				}
				if ts.MaxInFlight > tc.cfg.TenantMaxInFlight {
					t.Fatalf("tenant %d high-water %d above cap %d", ti, ts.MaxInFlight, tc.cfg.TenantMaxInFlight)
				}
			}
		})
	}
}

// TestPriorityOrder holds the single worker busy, queues low- and
// high-band jobs, and checks the high band drains first.
func TestPriorityOrder(t *testing.T) {
	s := New(Config{Workers: 1, TenantMaxInFlight: 8, MaxInFlight: 8})
	defer s.Close(context.Background())

	gate := make(chan struct{})
	block, err := s.Submit("t0", PriorityNormal, func(context.Context) error {
		<-gate
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	var mu sync.Mutex
	var order []string
	record := func(tag string) Job {
		return func(context.Context) error {
			mu.Lock()
			order = append(order, tag)
			mu.Unlock()
			return nil
		}
	}
	var hs []*Handle
	for i := 0; i < 3; i++ {
		h, err := s.Submit("t0", PriorityLow, record(fmt.Sprintf("low%d", i)))
		if err != nil {
			t.Fatal(err)
		}
		hs = append(hs, h)
	}
	for i := 0; i < 3; i++ {
		h, err := s.Submit("t0", PriorityHigh, record(fmt.Sprintf("high%d", i)))
		if err != nil {
			t.Fatal(err)
		}
		hs = append(hs, h)
	}
	close(gate)
	if err := block.Wait(); err != nil {
		t.Fatal(err)
	}
	waitAll(t, hs)
	want := []string{"high0", "high1", "high2", "low0", "low1", "low2"}
	for i, w := range want {
		if order[i] != w {
			t.Fatalf("order = %v, want %v", order, want)
		}
	}
}

// TestWorkConserving: a tenant at its cap must not head-of-line block
// another tenant's queued job in the same band.
func TestWorkConserving(t *testing.T) {
	s := New(Config{Workers: 2, TenantMaxInFlight: 1, MaxInFlight: 8})
	defer s.Close(context.Background())

	gate := make(chan struct{})
	running := make(chan struct{}, 1)
	h0, err := s.Submit("hog", PriorityNormal, func(context.Context) error {
		running <- struct{}{}
		<-gate
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	<-running // hog occupies its 1-slot cap
	// Second hog job is inadmissible; other tenant's job must run anyway.
	h1, err := s.Submit("hog", PriorityNormal, func(context.Context) error { return nil })
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan struct{})
	h2, err := s.Submit("other", PriorityNormal, func(context.Context) error {
		close(done)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("other tenant blocked behind capped tenant")
	}
	close(gate)
	waitAll(t, []*Handle{h0, h1, h2})
}

func TestQueueFullRejects(t *testing.T) {
	s := New(Config{Workers: 1, TenantMaxInFlight: 1, MaxInFlight: 1, QueueDepth: 2})
	defer s.Close(context.Background())
	gate := make(chan struct{})
	running := make(chan struct{})
	h, err := s.Submit("t0", PriorityNormal, func(context.Context) error {
		close(running)
		<-gate
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	<-running
	// Two queued jobs fit; the third must reject.
	var hs []*Handle
	for i := 0; i < 2; i++ {
		q, err := s.Submit("t0", PriorityNormal, func(context.Context) error { return nil })
		if err != nil {
			t.Fatal(err)
		}
		hs = append(hs, q)
	}
	if _, err := s.Submit("t0", PriorityNormal, func(context.Context) error { return nil }); !errors.Is(err, ErrQueueFull) {
		t.Fatalf("overfull submit returned %v", err)
	}
	if s.TenantStats("t0").Rejected != 1 {
		t.Fatalf("rejected = %d", s.TenantStats("t0").Rejected)
	}
	close(gate)
	waitAll(t, append([]*Handle{h}, hs...))
}

// TestDrain is the graceful-drain table: drain must complete all admitted
// work, then reject new submissions; a cancelled drain context reports
// pending work.
func TestDrain(t *testing.T) {
	t.Run("completes-admitted-work", func(t *testing.T) {
		s := New(Config{Workers: 4, TenantMaxInFlight: 2, MaxInFlight: 8})
		var n atomic.Int64
		for i := 0; i < 20; i++ {
			if _, err := s.Submit(fmt.Sprintf("t%d", i%5), PriorityNormal, func(context.Context) error {
				time.Sleep(200 * time.Microsecond)
				n.Add(1)
				return nil
			}); err != nil {
				t.Fatal(err)
			}
		}
		if err := s.Drain(context.Background()); err != nil {
			t.Fatal(err)
		}
		if n.Load() != 20 {
			t.Fatalf("drained with %d/20 jobs done", n.Load())
		}
		if _, err := s.Submit("t0", PriorityNormal, func(context.Context) error { return nil }); !errors.Is(err, ErrClosed) {
			t.Fatalf("post-drain submit returned %v", err)
		}
		if err := s.Close(context.Background()); err != nil {
			t.Fatal(err)
		}
	})
	t.Run("timeout-reports-pending", func(t *testing.T) {
		s := New(Config{Workers: 1, TenantMaxInFlight: 1, MaxInFlight: 1})
		gate := make(chan struct{})
		running := make(chan struct{})
		h, err := s.Submit("t0", PriorityNormal, func(context.Context) error {
			close(running)
			<-gate
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
		<-running
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Millisecond)
		defer cancel()
		if err := s.Drain(ctx); !errors.Is(err, context.DeadlineExceeded) {
			t.Fatalf("drain returned %v", err)
		}
		close(gate)
		if err := h.Wait(); err != nil {
			t.Fatal(err)
		}
		if err := s.Close(context.Background()); err != nil {
			t.Fatal(err)
		}
	})
}

func TestJobErrorAndPanicMetering(t *testing.T) {
	s := New(Config{Workers: 2, TenantMaxInFlight: 2, MaxInFlight: 8})
	defer s.Close(context.Background())
	boom := errors.New("boom")
	h1, _ := s.Submit("t0", PriorityNormal, func(context.Context) error { return boom })
	h2, _ := s.Submit("t0", PriorityNormal, func(context.Context) error { panic("tenant bug") })
	if err := h1.Wait(); !errors.Is(err, boom) {
		t.Fatalf("error not propagated: %v", err)
	}
	if err := h2.Wait(); err == nil {
		t.Fatal("panic not converted to error")
	}
	ts := s.TenantStats("t0")
	if ts.Failed != 2 || ts.Completed != 0 {
		t.Fatalf("stats = %+v", ts)
	}
}

// TestStress hammers the scheduler from many goroutines under -race.
func TestStress(t *testing.T) {
	s := New(Config{Workers: 8, TenantMaxInFlight: 2, MaxInFlight: 12, QueueDepth: 1 << 14})
	var n atomic.Int64
	var wg sync.WaitGroup
	const tenants, jobs = 32, 25
	for ti := 0; ti < tenants; ti++ {
		wg.Add(1)
		go func(ti int) {
			defer wg.Done()
			tenant := fmt.Sprintf("t%d", ti)
			for j := 0; j < jobs; j++ {
				h, err := s.Submit(tenant, Priority(j%int(numPriorities)), func(context.Context) error {
					n.Add(1)
					return nil
				})
				if err != nil {
					t.Errorf("%s: %v", tenant, err)
					return
				}
				if j%5 == 0 { // mix waiting and fire-and-forget submitters
					if err := h.Wait(); err != nil {
						t.Errorf("%s: %v", tenant, err)
					}
				}
			}
		}(ti)
	}
	wg.Wait()
	if err := s.Close(context.Background()); err != nil {
		t.Fatal(err)
	}
	if n.Load() != tenants*jobs {
		t.Fatalf("ran %d, want %d", n.Load(), tenants*jobs)
	}
}
