// Package sched implements the concurrent multi-tenant offload scheduler
// for the IceClave SSD: the admission-and-dispatch layer a real
// computational-storage controller runs between the NVMe front end and the
// in-storage TEE runtime.
//
// The paper's threat model (§3) exists precisely because many mutually
// distrusting tenants offload programs to one device at the same time; the
// seed simulated one offload at a time. This package supplies the missing
// shape, mirroring the proxy/enclave separation of multi-tenant TEE
// deployments:
//
//   - A fixed worker pool executes offloaded jobs concurrently, bounded by
//     Config.Workers (the controller's core count).
//   - Per-tenant admission control caps each tenant's in-flight jobs
//     (Config.TenantMaxInFlight), so one noisy tenant cannot monopolize
//     the pool; a global cap (Config.MaxInFlight) matches hardware limits
//     such as the 15 live 4-bit TEE IDs of paper §4.3.
//   - Jobs queue FIFO within three priority bands; dispatch is
//     work-conserving: a job whose tenant is at its cap is skipped, not
//     head-of-line blocking the band.
//   - Dispatch is cache-affine: a tenant's next job prefers the worker
//     that last ran that tenant (its working set is warm in that core's
//     cache, mirroring controller core affinity). An idle preferred
//     worker is left to claim its tenant's job; a busy one is not waited
//     for — any free worker takes the job, keeping dispatch
//     work-conserving.
//   - Graceful drain: Drain stops admission and waits for the queues and
//     workers to empty; Close additionally stops the workers.
//   - Per-tenant metering: submissions, completions, failures,
//     rejections, queue wait, and run time, for fairness accounting.
//
// The scheduler is deliberately generic — a Job is just a func(ctx) error —
// so the same pool drives functional TEE offloads (iceclave.SSD), timing
// replays, and the parallel experiment suite.
//
// Concurrency contract: Scheduler and Handle are safe for concurrent use
// from any number of tenant goroutines; Stats snapshots are internally
// consistent. Jobs themselves run on pool workers and must be
// self-synchronizing if they share state.
package sched

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"
)

// Priority orders jobs across the scheduler's bands. Within a band,
// dispatch is FIFO.
type Priority int

// Priority bands, lowest to highest.
const (
	PriorityLow Priority = iota
	PriorityNormal
	PriorityHigh
	numPriorities
)

// String names the band.
func (p Priority) String() string {
	switch p {
	case PriorityLow:
		return "low"
	case PriorityNormal:
		return "normal"
	case PriorityHigh:
		return "high"
	default:
		return fmt.Sprintf("priority(%d)", int(p))
	}
}

// Job is one schedulable unit of tenant work — typically an OffloadCode /
// execute / GetResult round trip. The context is cancelled when the
// scheduler is closed hard.
type Job func(ctx context.Context) error

// Config tunes the scheduler.
type Config struct {
	// Workers is the number of concurrent executors (default 4, the
	// Table 3 controller core count).
	Workers int
	// TenantMaxInFlight caps each tenant's concurrently running jobs
	// (default 1: one live TEE per tenant, the paper's base scenario).
	TenantMaxInFlight int
	// MaxInFlight caps jobs running concurrently across all tenants
	// (default 15, the number of live TEE IDs §4.3 can represent).
	MaxInFlight int
	// QueueDepth bounds the total queued (not yet running) jobs; Submit
	// rejects with ErrQueueFull beyond it. Default 1024.
	QueueDepth int
}

func (c *Config) applyDefaults() {
	if c.Workers <= 0 {
		c.Workers = 4
	}
	if c.TenantMaxInFlight <= 0 {
		c.TenantMaxInFlight = 1
	}
	if c.MaxInFlight <= 0 {
		c.MaxInFlight = 15
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 1024
	}
}

// Scheduler errors.
var (
	// ErrClosed is returned by Submit after Drain or Close.
	ErrClosed = errors.New("sched: scheduler closed to new work")
	// ErrQueueFull is returned when admission would exceed QueueDepth.
	ErrQueueFull = errors.New("sched: queue full")
)

// TenantStats is the per-tenant metering record.
type TenantStats struct {
	Submitted int64
	Completed int64
	Failed    int64
	Rejected  int64
	// QueueWait is the cumulative time jobs spent queued before running.
	QueueWait time.Duration
	// RunTime is the cumulative execution time of finished jobs.
	RunTime time.Duration
	// MaxInFlight is the high-water mark of concurrently running jobs.
	MaxInFlight int
	// LastWorker is the pool worker (0..Workers-1) that most recently
	// started one of the tenant's jobs — the cache-affinity target; -1
	// until the tenant's first job runs.
	LastWorker int
}

// Stats aggregates scheduler-wide counters.
type Stats struct {
	Submitted int64
	Completed int64
	Failed    int64
	Rejected  int64
}

// Handle tracks one submitted job.
type Handle struct {
	done chan struct{}
	err  error // written before done closes
}

// Done returns a channel closed when the job finishes.
func (h *Handle) Done() <-chan struct{} { return h.done }

// Wait blocks until the job finishes and returns its error.
func (h *Handle) Wait() error {
	<-h.done
	return h.err
}

// Err returns the job error; valid after Done is closed.
func (h *Handle) Err() error {
	select {
	case <-h.done:
		return h.err
	default:
		return nil
	}
}

// job is the queued form.
type job struct {
	tenant   string
	fn       Job
	handle   *Handle
	enqueued time.Time
}

// tenantState is the per-tenant admission and metering record.
type tenantState struct {
	inflight int
	stats    TenantStats
}

// Scheduler is the admission-controlled worker pool. Create with New;
// the zero value is not usable.
type Scheduler struct {
	cfg Config

	mu       sync.Mutex
	cond     *sync.Cond
	queues   [numPriorities][]*job
	queued   int
	running  int
	tenants  map[string]*tenantState
	idle     []bool // idle[w]: worker w is parked in cond.Wait
	stats    Stats
	draining bool
	stopped  bool

	ctx    context.Context
	cancel context.CancelFunc
	wg     sync.WaitGroup
}

// New builds a scheduler and starts its workers.
func New(cfg Config) *Scheduler {
	cfg.applyDefaults()
	s := &Scheduler{
		cfg:     cfg,
		tenants: make(map[string]*tenantState),
	}
	s.cond = sync.NewCond(&s.mu)
	s.idle = make([]bool, cfg.Workers)
	s.ctx, s.cancel = context.WithCancel(context.Background())
	s.wg.Add(cfg.Workers)
	for i := 0; i < cfg.Workers; i++ {
		go s.worker(i)
	}
	return s
}

// Config returns the effective (defaulted) configuration.
func (s *Scheduler) Config() Config { return s.cfg }

// tenant returns (creating if needed) the tenant record. Caller holds s.mu.
func (s *Scheduler) tenant(name string) *tenantState {
	ts, ok := s.tenants[name]
	if !ok {
		ts = &tenantState{}
		ts.stats.LastWorker = -1
		s.tenants[name] = ts
	}
	return ts
}

// Submit queues a job for tenant at the given priority. It returns a
// Handle to wait on, ErrClosed after Drain/Close, or ErrQueueFull when the
// queue bound is hit (counted against the tenant as a rejection).
func (s *Scheduler) Submit(tenant string, prio Priority, fn Job) (*Handle, error) {
	if prio < PriorityLow || prio >= numPriorities {
		return nil, fmt.Errorf("sched: invalid priority %d", int(prio))
	}
	if fn == nil {
		return nil, errors.New("sched: nil job")
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.draining || s.stopped {
		return nil, ErrClosed
	}
	ts := s.tenant(tenant)
	if s.queued >= s.cfg.QueueDepth {
		ts.stats.Rejected++
		s.stats.Rejected++
		return nil, fmt.Errorf("%w: %d jobs queued", ErrQueueFull, s.queued)
	}
	j := &job{
		tenant:   tenant,
		fn:       fn,
		handle:   &Handle{done: make(chan struct{})},
		enqueued: time.Now(),
	}
	s.queues[prio] = append(s.queues[prio], j)
	s.queued++
	ts.stats.Submitted++
	s.stats.Submitted++
	// Broadcast, not Signal: the cache-affine skip rule means the first
	// worker woken may decline the job in favour of its idle preferred
	// worker, which must itself wake to claim it.
	s.cond.Broadcast()
	return j.handle, nil
}

// next pops the highest-priority FIFO job runnable by worker w: the
// tenant must be below its in-flight cap (global cap honored), and a job
// whose tenant last ran on a *different, currently idle* worker is left
// for that worker to claim — its caches are warm there, and leaving it
// costs no throughput because the preferred worker is free and awake (the
// submit/retire broadcasts wake every parked worker). If the preferred
// worker is busy, any worker takes the job: affinity never outweighs work
// conservation. Caller holds s.mu. Returns nil when nothing is runnable
// by this worker right now.
func (s *Scheduler) next(w int) *job {
	if s.running >= s.cfg.MaxInFlight {
		return nil
	}
	for p := numPriorities - 1; p >= 0; p-- {
		q := s.queues[p]
		for i, j := range q {
			ts := s.tenant(j.tenant)
			if ts.inflight >= s.cfg.TenantMaxInFlight {
				continue // admission: tenant at cap; try later jobs
			}
			if pref := ts.stats.LastWorker; pref >= 0 && pref != w && s.idle[pref] {
				continue // cache affinity: the warm worker is free; let it claim
			}
			s.queues[p] = append(q[:i:i], q[i+1:]...)
			return j
		}
	}
	return nil
}

// worker executes jobs until the scheduler stops. id is the worker's
// stable index, the unit of cache affinity.
func (s *Scheduler) worker(id int) {
	defer s.wg.Done()
	for {
		s.mu.Lock()
		var j *job
		for {
			j = s.next(id)
			if j != nil || s.stopped {
				break
			}
			s.idle[id] = true
			s.cond.Wait()
			s.idle[id] = false
		}
		if j == nil { // stopped with nothing runnable
			s.mu.Unlock()
			return
		}
		ts := s.tenant(j.tenant)
		ts.stats.LastWorker = id
		s.queued--
		s.running++
		ts.inflight++
		if s.queued > 0 {
			// Claiming this job may have turned a previously-skipped job
			// runnable-by-anyone (its preferred worker is us, and we are
			// now busy): re-wake parked workers so none of them sits idle
			// next to a runnable job.
			s.cond.Broadcast()
		}
		if ts.inflight > ts.stats.MaxInFlight {
			ts.stats.MaxInFlight = ts.inflight
		}
		ts.stats.QueueWait += time.Since(j.enqueued)
		s.mu.Unlock()

		start := time.Now()
		err := s.run(j)

		// Retirement order matters for observers: metering first (so a
		// caller returning from Wait sees its job counted), then the
		// handle, then the running slot (so Drain cannot return while
		// any handle still reports an unfinished job).
		s.mu.Lock()
		ts.inflight--
		ts.stats.RunTime += time.Since(start)
		if err != nil {
			ts.stats.Failed++
			s.stats.Failed++
		} else {
			ts.stats.Completed++
			s.stats.Completed++
		}
		// The tenant dropping below its cap may unblock its queued jobs.
		s.cond.Broadcast()
		s.mu.Unlock()

		j.handle.err = err
		close(j.handle.done)

		s.mu.Lock()
		s.running--
		s.cond.Broadcast() // wake drain waiters and globally capped workers
		s.mu.Unlock()
	}
}

// run executes one job, converting a panic into an error so a faulty
// tenant program cannot take down the pool (the software analogue of
// ThrowOutTEE).
func (s *Scheduler) run(j *job) (err error) {
	defer func() {
		if rec := recover(); rec != nil {
			err = fmt.Errorf("sched: job panic: %v", rec)
		}
	}()
	return j.fn(s.ctx)
}

// Drain stops admission and blocks until every queued and running job has
// finished, or ctx expires (returning ctx.Err() with work still pending).
// Workers stay alive; a drained scheduler rejects new Submits.
func (s *Scheduler) Drain(ctx context.Context) error {
	s.mu.Lock()
	s.draining = true
	s.mu.Unlock()

	// Wake the cond waiter when ctx dies.
	stop := context.AfterFunc(ctx, func() {
		s.mu.Lock()
		s.cond.Broadcast()
		s.mu.Unlock()
	})
	defer stop()

	s.mu.Lock()
	defer s.mu.Unlock()
	for (s.queued > 0 || s.running > 0) && ctx.Err() == nil {
		s.cond.Wait()
	}
	if s.queued > 0 || s.running > 0 {
		return fmt.Errorf("sched: drain: %w (%d queued, %d running)", ctx.Err(), s.queued, s.running)
	}
	return nil
}

// Close drains with the given context, then stops the workers. Jobs still
// pending when ctx expires are abandoned in the queue and their handles
// never complete; pass a background context for a full graceful shutdown.
func (s *Scheduler) Close(ctx context.Context) error {
	err := s.Drain(ctx)
	s.mu.Lock()
	s.stopped = true
	s.cond.Broadcast()
	s.mu.Unlock()
	s.cancel()
	s.wg.Wait()
	return err
}

// Pending returns the queued (not yet running) and running job counts.
func (s *Scheduler) Pending() (queued, running int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.queued, s.running
}

// Stats returns the scheduler-wide counters.
func (s *Scheduler) Stats() Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.stats
}

// TenantStats returns a copy of the metering record for tenant.
func (s *Scheduler) TenantStats(tenant string) TenantStats {
	s.mu.Lock()
	defer s.mu.Unlock()
	if ts, ok := s.tenants[tenant]; ok {
		return ts.stats
	}
	return TenantStats{LastWorker: -1}
}

// Tenants returns the per-tenant metering records keyed by tenant name.
func (s *Scheduler) Tenants() map[string]TenantStats {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make(map[string]TenantStats, len(s.tenants))
	for name, ts := range s.tenants {
		out[name] = ts.stats
	}
	return out
}
