package sched

import (
	"context"
	"testing"
	"time"
)

// waitWorkersIdle polls until n workers are parked in cond.Wait, the
// quiescent state the affinity tests need between submissions (a worker
// retires its job slightly before it re-parks, so handle completion alone
// is not enough).
func waitWorkersIdle(t *testing.T, s *Scheduler, n int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		s.mu.Lock()
		idle := 0
		for _, v := range s.idle {
			if v {
				idle++
			}
		}
		s.mu.Unlock()
		if idle >= n {
			return
		}
		time.Sleep(100 * time.Microsecond)
	}
	t.Fatalf("workers never went idle (want %d)", n)
}

// TestCacheAffineDispatchKeepsHotTenantOnItsWorker is the deterministic
// pin for cache-affine dispatch: with a 2-worker pool fully idle, a hot
// tenant's next job must land on the worker that last ran that tenant,
// every time — a non-preferred worker that wins the race to the queue
// declines the job because the warm worker is free.
func TestCacheAffineDispatchKeepsHotTenantOnItsWorker(t *testing.T) {
	s := New(Config{Workers: 2, TenantMaxInFlight: 1, MaxInFlight: 4})
	defer s.Close(context.Background())

	run := func() int {
		h, err := s.Submit("hot", PriorityNormal, func(context.Context) error { return nil })
		if err != nil {
			t.Fatal(err)
		}
		if err := h.Wait(); err != nil {
			t.Fatal(err)
		}
		return s.TenantStats("hot").LastWorker
	}

	waitWorkersIdle(t, s, 2)
	home := run()
	if home < 0 || home > 1 {
		t.Fatalf("first job reported worker %d", home)
	}
	for i := 0; i < 50; i++ {
		waitWorkersIdle(t, s, 2) // both workers free: affinity must decide
		if got := run(); got != home {
			t.Fatalf("round %d: hot tenant moved from worker %d to %d with both workers free",
				i, home, got)
		}
	}
}

// TestAffinityFallsBackWhenPreferredWorkerBusy pins work conservation:
// when the hot tenant's preferred worker is occupied, the other worker
// takes the job instead of letting it wait for warmth.
func TestAffinityFallsBackWhenPreferredWorkerBusy(t *testing.T) {
	s := New(Config{Workers: 2, TenantMaxInFlight: 1, MaxInFlight: 4})
	defer s.Close(context.Background())

	// Pin down the hot tenant's home worker.
	h, err := s.Submit("hot", PriorityNormal, func(context.Context) error { return nil })
	if err != nil {
		t.Fatal(err)
	}
	if err := h.Wait(); err != nil {
		t.Fatal(err)
	}
	home := s.TenantStats("hot").LastWorker

	// Occupy BOTH workers with blockers, then free only the non-home one:
	// the home worker stays provably busy while a worker is free for the
	// hot job.
	waitWorkersIdle(t, s, 2)
	releases := [2]chan struct{}{make(chan struct{}), make(chan struct{})}
	handles := [2]*Handle{}
	for i := 0; i < 2; i++ {
		i := i
		tenant := "blocker-" + string(rune('a'+i))
		bh, err := s.Submit(tenant, PriorityNormal, func(context.Context) error {
			<-releases[i]
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
		handles[i] = bh
		deadline := time.Now().Add(5 * time.Second)
		for s.TenantStats(tenant).LastWorker < 0 {
			if time.Now().After(deadline) {
				t.Fatal("blocker never started")
			}
			time.Sleep(100 * time.Microsecond)
		}
	}
	onHome := 0 // index of the blocker running on the home worker
	if s.TenantStats("blocker-b").LastWorker == home {
		onHome = 1
	}
	if got := s.TenantStats("blocker-" + string(rune('a'+onHome))).LastWorker; got != home {
		t.Fatalf("neither blocker on home worker %d (got %d and %d)", home,
			s.TenantStats("blocker-a").LastWorker, s.TenantStats("blocker-b").LastWorker)
	}
	homeRelease, homeHandle := releases[onHome], handles[onHome]
	close(releases[1-onHome])
	if err := handles[1-onHome].Wait(); err != nil {
		t.Fatal(err)
	}
	waitWorkersIdle(t, s, 1) // the non-home worker re-parks; home still blocked

	hh, err := s.Submit("hot", PriorityNormal, func(context.Context) error { return nil })
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- hh.Wait() }()
	select {
	case err := <-done:
		if err != nil {
			t.Fatal(err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("hot job starved waiting for its busy preferred worker: dispatch is not work-conserving")
	}
	if got := s.TenantStats("hot").LastWorker; got == home {
		// Only possible if home freed first, which it cannot: its blocker
		// still holds the release channel.
		t.Fatalf("hot job reports home worker %d while home was blocked", got)
	}
	close(homeRelease)
	if err := homeHandle.Wait(); err != nil {
		t.Fatal(err)
	}
}
