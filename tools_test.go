package iceclave

import (
	"os/exec"
	"testing"
)

// TestGoVetClean is the CI smoke test that the whole module — library,
// commands, and examples — stays go vet clean.
func TestGoVetClean(t *testing.T) {
	if testing.Short() {
		t.Skip("skipping go vet in -short mode")
	}
	goBin, err := exec.LookPath("go")
	if err != nil {
		t.Skip("go binary not available")
	}
	out, err := exec.Command(goBin, "vet", "./...").CombinedOutput()
	if err != nil {
		t.Fatalf("go vet ./... failed: %v\n%s", err, out)
	}
}
