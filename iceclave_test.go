package iceclave

import (
	"bytes"
	"errors"
	"strings"
	"testing"

	"iceclave/internal/ftl"
	"iceclave/internal/host"
	"iceclave/internal/query"
)

func openSmall(t *testing.T) *SSD {
	t.Helper()
	ssd, err := Open(Options{Channels: 2, BlocksPerPlane: 8})
	if err != nil {
		t.Fatal(err)
	}
	return ssd
}

func TestHostReadWrite(t *testing.T) {
	ssd := openSmall(t)
	want := bytes.Repeat([]byte{0xEE}, 64)
	if err := ssd.HostWrite(5, want); err != nil {
		t.Fatal(err)
	}
	got, err := ssd.HostRead(5)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got[:64], want) {
		t.Fatal("host round trip failed")
	}
}

func TestOffloadQueryEndToEnd(t *testing.T) {
	// The full Figure 9 workflow: store a dataset, offload a query,
	// execute it inside the TEE, and fetch the result.
	ssd, err := Open(Options{})
	if err != nil {
		t.Fatal(err)
	}
	ds := query.GenerateTPCH(2000, 3)
	sd, err := ssd.StoreDataset(ds, 0)
	if err != nil {
		t.Fatal(err)
	}
	task, err := ssd.OffloadCode(host.Offload{
		TaskID: 1,
		Binary: make([]byte, 64<<10),
		LPAs:   sd.AllLPAs(ssd.PageSize()),
	})
	if err != nil {
		t.Fatal(err)
	}
	out, err := query.Q1(task.Store(), sd, task.Meter())
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "n=") {
		t.Fatalf("unexpected result %q", out)
	}
	// The result must match a plain host-side execution byte for byte.
	memStore := query.NewMemStore(4096)
	ds2 := query.GenerateTPCH(2000, 3)
	sd2, _ := ds2.Store(memStore, 0)
	var m query.Meter
	want, err := query.Q1(memStore, sd2, &m)
	if err != nil {
		t.Fatal(err)
	}
	if out != want {
		t.Fatalf("TEE result differs from host result:\n%s\nvs\n%s", out, want)
	}
	if err := task.Finish([]byte(out)); err != nil {
		t.Fatal(err)
	}
	if string(task.TEE().Result()) != out {
		t.Fatal("result not preserved through termination")
	}
}

func TestOffloadIsolation(t *testing.T) {
	ssd := openSmall(t)
	for lpa := uint32(0); lpa < 8; lpa++ {
		if err := ssd.HostWrite(lpa, []byte{byte(lpa)}); err != nil {
			t.Fatal(err)
		}
	}
	victim, err := ssd.OffloadCode(host.Offload{TaskID: 1, Binary: []byte{1}, LPAs: []uint32{0, 1, 2, 3}})
	if err != nil {
		t.Fatal(err)
	}
	attacker, err := ssd.OffloadCode(host.Offload{TaskID: 2, Binary: []byte{1}, LPAs: []uint32{4, 5, 6, 7}})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := attacker.Store().ReadPage(0); !errors.Is(err, ftl.ErrAccessDenied) {
		t.Fatalf("cross-TEE read returned %v", err)
	}
	if _, err := victim.Store().ReadPage(0); err != nil {
		t.Fatalf("victim read failed: %v", err)
	}
}

func TestOffloadValidation(t *testing.T) {
	ssd := openSmall(t)
	if _, err := ssd.OffloadCode(host.Offload{TaskID: 1}); err == nil {
		t.Fatal("invalid offload accepted")
	}
}
