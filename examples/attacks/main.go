// Attacks: demonstrates that the three attack classes of the paper's
// threat model (§3) are actually blocked by the functional IceClave
// implementation:
//
//  1. a malicious in-storage program probing another tenant's data via
//     the shared mapping table (blocked by ID bits, attacker aborted);
//  2. an in-storage program writing the FTL mapping table / secure world
//     (blocked by the TrustZone region permissions);
//  3. physical attacks on SSD DRAM — bus snooping, tampering, and replay
//     (ciphertext on the bus; MEE integrity verification detects both
//     tampering and rollback).
package main

import (
	"bytes"
	"errors"
	"fmt"
	"log"

	"iceclave"
	"iceclave/internal/ftl"
	"iceclave/internal/host"
	"iceclave/internal/mee"
)

func main() {
	ssd, err := iceclave.Open(iceclave.Options{Channels: 2, BlocksPerPlane: 8})
	if err != nil {
		log.Fatal(err)
	}
	for lpa := uint32(0); lpa < 8; lpa++ {
		payload := bytes.Repeat([]byte{0xA0 + byte(lpa)}, 32)
		if err := ssd.HostWrite(lpa, payload); err != nil {
			log.Fatal(err)
		}
	}

	victim, err := ssd.OffloadCode(host.Offload{TaskID: 1, Binary: []byte{1}, LPAs: []uint32{0, 1, 2, 3}})
	if err != nil {
		log.Fatal(err)
	}
	attacker, err := ssd.OffloadCode(host.Offload{TaskID: 2, Binary: []byte{1}, LPAs: []uint32{4, 5, 6, 7}})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("== Attack 1: cross-TEE data probe via the mapping table ==")
	_, err = attacker.Store().ReadPage(0) // LPA 0 belongs to the victim
	fmt.Printf("attacker reads victim's LPA 0: %v\n", err)
	if !errors.Is(err, ftl.ErrAccessDenied) {
		log.Fatal("ATTACK SUCCEEDED: cross-TEE read was not denied")
	}
	fmt.Printf("attacker TEE state after violation: %v (reason: %s)\n",
		attacker.TEE().State(), attacker.TEE().AbortReason())
	if _, err := victim.Store().ReadPage(0); err != nil {
		log.Fatal("victim collateral damage: ", err)
	}
	fmt.Println("victim unaffected: still reads its own data")

	fmt.Println("\n== Attack 2: writing the FTL mapping table from the normal world ==")
	rt := ssd.Runtime()
	// The mapping table lives in the protected region at 64 MB.
	const mappingTableAddr = 64 << 20
	err = rt.CheckMemoryAccess(mappingTableAddr, 8, true)
	fmt.Printf("normal-world write to mapping table: %v\n", err)
	if err == nil {
		log.Fatal("ATTACK SUCCEEDED: mapping table writable from normal world")
	}
	err = rt.CheckMemoryAccess(mappingTableAddr, 8, false)
	fmt.Printf("normal-world read of mapping table (for translation): %v\n", err)
	if err != nil {
		log.Fatal("protected region must stay readable: ", err)
	}
	err = rt.CheckMemoryAccess(0x1000, 8, false) // secure region: runtime + FTL code
	fmt.Printf("normal-world read of secure-world FTL state: %v\n", err)
	if err == nil {
		log.Fatal("ATTACK SUCCEEDED: secure world readable")
	}

	fmt.Println("\n== Attack 3a: bus snooping ==")
	plain, err := victim.Store().ReadPage(1)
	if err != nil {
		log.Fatal(err)
	}
	snooped := rt.LastBusTransfer()
	fmt.Printf("TEE sees plaintext:   %x...\n", plain[:8])
	fmt.Printf("bus snooper captures: %x...\n", snooped[:8])
	if bytes.Equal(snooped, plain) {
		log.Fatal("ATTACK SUCCEEDED: plaintext on the internal bus")
	}

	fmt.Println("\n== Attack 3b: DRAM tampering and replay ==")
	memEngine := rt.Memory()
	line := bytes.Repeat([]byte{0x42}, mee.LineSize)
	if err := memEngine.Write(100, 0, line); err != nil {
		log.Fatal(err)
	}
	snap, err := memEngine.Snapshot(100, 0)
	if err != nil {
		log.Fatal(err)
	}
	// Tamper: flip a ciphertext bit in DRAM.
	if err := memEngine.TamperCiphertext(100, 0); err != nil {
		log.Fatal(err)
	}
	_, err = memEngine.Read(100, 0)
	fmt.Printf("read after physical tamper: %v\n", err)
	if !errors.Is(err, mee.ErrIntegrity) {
		log.Fatal("ATTACK SUCCEEDED: tamper undetected")
	}
	// Replay: restore the whole old triple (ciphertext, MAC, counters)
	// after a legitimate update — defeats MAC-only protection.
	if err := memEngine.Replay(snap); err != nil { // heal the tamper first
		log.Fatal(err)
	}
	if err := memEngine.Write(100, 0, bytes.Repeat([]byte{0x43}, mee.LineSize)); err != nil {
		log.Fatal(err)
	}
	if err := memEngine.Replay(snap); err != nil {
		log.Fatal(err)
	}
	_, err = memEngine.Read(100, 0)
	fmt.Printf("read after replay attack:   %v\n", err)
	if !errors.Is(err, mee.ErrIntegrity) {
		log.Fatal("ATTACK SUCCEEDED: replay undetected")
	}

	fmt.Println("\nall attacks blocked")
}
