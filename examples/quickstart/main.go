// Quickstart: open a simulated IceClave SSD, store a dataset, offload a
// query into an in-storage TEE, and fetch the result — the end-to-end
// workflow of Figure 9 in the paper.
package main

import (
	"fmt"
	"log"

	"iceclave"
	"iceclave/internal/host"
	"iceclave/internal/query"
)

func main() {
	// Open a simulated SSD with the Table 3 geometry.
	ssd, err := iceclave.Open(iceclave.Options{})
	if err != nil {
		log.Fatal(err)
	}

	// Generate a small TPC-H style dataset and store it through the host
	// I/O path, as a database engine would.
	ds := query.GenerateTPCH(10_000, 42)
	sd, err := ssd.StoreDataset(ds, 0)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("stored dataset: %d lineitem rows\n", ds.Lineitem.Rows())

	// Offload "code" to the SSD: the host library validates the request,
	// the runtime creates a TEE and stamps the mapping-table ID bits for
	// exactly the pages this program may read.
	task, err := ssd.OffloadCode(host.Offload{
		TaskID: 1,
		Binary: make([]byte, 128<<10), // the program image (28-528 KB in the paper)
		LPAs:   sd.AllLPAs(ssd.PageSize()),
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("TEE created with ID %d\n", task.TEE().EID())

	// Run TPC-H Q1 inside the TEE. Every page it reads is translated via
	// the protected-region mapping table, permission-checked against the
	// TEE's ID bits, and crosses the internal bus encrypted.
	result, err := query.Q1(task.Store(), sd, task.Meter())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print("TPC-H Q1 pricing summary (returnflag|linestatus: count, sums):\n", result)

	// A bus snooper sees only ciphertext.
	bus := ssd.Runtime().LastBusTransfer()
	fmt.Printf("last bus transfer (snooper's view): %x...\n", bus[:16])

	// Terminate the TEE and retrieve the result, GetResult-style.
	if err := task.Finish([]byte(result)); err != nil {
		log.Fatal(err)
	}
	m := task.Meter()
	fmt.Printf("done: %d pages read, %d instructions metered, write ratio %.2e\n",
		m.PagesRead, m.Instructions, m.WriteRatio())
}
