// Multitenant: collocates many in-storage TEEs on one SSD — the
// Figure 17/18 scenario scaled up to a production-shaped tenant fleet.
//
// Part 1 (functional) drives 24 tenants through the internal/sched
// admission-controlled worker pool: each tenant repeatedly offloads a
// program that scans its own pages through the encrypted data path and
// writes intermediate output, all concurrently, while one malicious
// tenant probes a neighbour's pages and gets its TEE thrown out
// mid-flight. Per-tenant metering comes back from the scheduler.
//
// Part 2 (timing) replays the paper's collocation mixes on the
// discrete-event model and reports the per-tenant slowdown versus
// running alone.
package main

import (
	"context"
	"errors"
	"fmt"
	"log"
	"sort"

	"iceclave"
	"iceclave/internal/core"
	"iceclave/internal/ftl"
	"iceclave/internal/host"
	"iceclave/internal/query"
	"iceclave/internal/sched"
	"iceclave/internal/workload"
)

func main() {
	const (
		tenants        = 24
		jobsPerTenant  = 3
		pagesPerTenant = 8
	)
	ssd, err := iceclave.Open(iceclave.Options{})
	if err != nil {
		log.Fatal(err)
	}
	// Seed each tenant's disjoint dataset through the host path.
	lpas := make([][]uint32, tenants)
	for ti := 0; ti < tenants; ti++ {
		for p := 0; p < pagesPerTenant; p++ {
			lpa := uint32(ti*pagesPerTenant + p)
			if err := ssd.HostWrite(lpa, []byte{byte(ti), byte(p)}); err != nil {
				log.Fatal(err)
			}
			lpas[ti] = append(lpas[ti], lpa)
		}
	}
	interBase := uint32(tenants * pagesPerTenant)

	pool := sched.New(sched.Config{
		Workers:           8,
		TenantMaxInFlight: 1,  // one live TEE per tenant
		MaxInFlight:       12, // below the 15 live TEE IDs of §4.3
		QueueDepth:        tenants * jobsPerTenant,
	})
	fmt.Printf("== %d tenants x %d offloads through the scheduler (%d workers) ==\n",
		tenants, jobsPerTenant, pool.Config().Workers)
	var handles []*sched.Handle
	for ti := 0; ti < tenants; ti++ {
		ti := ti
		for j := 0; j < jobsPerTenant; j++ {
			j := j
			h, err := pool.Submit(fmt.Sprintf("tenant-%02d", ti), sched.PriorityNormal, func(context.Context) error {
				own := lpas[ti]
				inter := interBase + uint32(ti)
				_, err := ssd.Execute(host.Offload{
					TaskID: uint32(ti*jobsPerTenant + j),
					Binary: make([]byte, 32<<10),
					LPAs:   append(append([]uint32(nil), own...), inter),
				}, func(st query.Store, m *query.Meter) ([]byte, error) {
					for p, lpa := range own {
						data, err := st.ReadPage(lpa)
						if err != nil {
							return nil, err
						}
						if data[0] != byte(ti) || data[1] != byte(p) {
							return nil, fmt.Errorf("tenant %d read foreign bytes", ti)
						}
					}
					return []byte{byte(ti)}, st.WritePage(inter, []byte{byte(ti), byte(j)})
				})
				return err
			})
			if err != nil {
				log.Fatal(err)
			}
			handles = append(handles, h)
		}
	}
	if err := pool.Close(context.Background()); err != nil {
		log.Fatal(err)
	}
	for _, h := range handles {
		if err := h.Wait(); err != nil {
			log.Fatalf("tenant job failed: %v", err)
		}
	}
	names := make([]string, 0, tenants)
	for name := range pool.Tenants() {
		names = append(names, name)
	}
	sort.Strings(names)
	fmt.Printf("%-12s %9s %9s %11s\n", "tenant", "completed", "failed", "queue-wait")
	for _, name := range names[:4] {
		ts := pool.TenantStats(name)
		fmt.Printf("%-12s %9d %9d %11v\n", name, ts.Completed, ts.Failed, ts.QueueWait.Round(1000))
	}
	fmt.Printf("... (%d more tenants, all %d offloads completed, %d TEEs live after drain)\n",
		tenants-4, pool.Stats().Completed, ssd.Runtime().Live())

	// A malicious tenant probes a live neighbour's mapping entries
	// mid-flight: the victim TEE below is running and owns its pages when
	// the attacker reads them — access denied, attacker thrown out, the
	// victim keeps serving.
	victim, err := ssd.OffloadCode(host.Offload{
		TaskID: 998, Binary: []byte{1}, LPAs: lpas[0],
	})
	if err != nil {
		log.Fatal(err)
	}
	attacker, err := ssd.OffloadCode(host.Offload{
		TaskID: 999, Binary: []byte{1}, LPAs: []uint32{interBase + tenants},
	})
	if err != nil {
		log.Fatal(err)
	}
	if _, err := attacker.Store().ReadPage(lpas[0][0]); errors.Is(err, ftl.ErrAccessDenied) {
		fmt.Printf("cross-tenant read denied and attacker thrown out: state=%v\n", attacker.TEE().State())
	} else {
		log.Fatalf("attacker read tenant 0's data: %v", err)
	}
	if _, err := victim.Store().ReadPage(lpas[0][0]); err != nil {
		log.Fatalf("victim perturbed by attack: %v", err)
	}
	fmt.Printf("victim unaffected: state=%v\n", victim.TEE().State())
	if err := victim.Finish(nil); err != nil {
		log.Fatal(err)
	}

	// Timing: collocate TPC-C with scan workloads and measure degradation.
	fmt.Println("\n== timing: collocation slowdown (IceClave mode) ==")
	sc := workload.SmallScale()
	cfg := core.DefaultConfig()
	record := func(name string) *workload.Trace {
		w, err := workload.ByName(name)
		if err != nil {
			log.Fatal(err)
		}
		tr, err := workload.Record(w, sc, 4096)
		if err != nil {
			log.Fatal(err)
		}
		return tr
	}
	mix := []string{"TPC-C", "TPC-H Q1", "Filter", "Aggregate"}
	var traces []*workload.Trace
	solo := map[string]core.Result{}
	for _, name := range mix {
		tr := record(name)
		traces = append(traces, tr)
		r, err := core.Run(tr, core.ModeIceClave, cfg)
		if err != nil {
			log.Fatal(err)
		}
		solo[name] = r
	}
	colo, err := core.RunMulti(traces, core.ModeIceClave, cfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%-10s %12s %12s %10s\n", "tenant", "solo", "collocated", "normalized")
	for i, name := range mix {
		s := solo[name]
		c := colo[i]
		fmt.Printf("%-10s %12v %12v %9.3f\n", name, s.Total, c.Total,
			float64(s.Total)/float64(c.Total))
	}
}
