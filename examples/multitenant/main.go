// Multitenant: collocates several in-storage TEEs on one SSD — the
// Figure 17/18 scenario. Functionally, each tenant gets its own TEE with
// disjoint ID bits; on the timing model, tenants contend for channels,
// dies, cores, and the mapping cache, and the example reports the
// per-tenant slowdown versus running alone.
package main

import (
	"fmt"
	"log"

	"iceclave"
	"iceclave/internal/core"
	"iceclave/internal/host"
	"iceclave/internal/query"
	"iceclave/internal/workload"
)

func main() {
	// Functional: three tenants, isolated datasets, concurrent TEEs.
	ssd, err := iceclave.Open(iceclave.Options{})
	if err != nil {
		log.Fatal(err)
	}
	const pagesPerTenant = 256
	type tenant struct {
		task *iceclave.Task
		lpas []uint32
	}
	var tenants []tenant
	for i := 0; i < 3; i++ {
		base := uint32(i * pagesPerTenant)
		var lpas []uint32
		for p := uint32(0); p < pagesPerTenant; p++ {
			lpa := base + p
			if err := ssd.HostWrite(lpa, []byte{byte(i), byte(p)}); err != nil {
				log.Fatal(err)
			}
			lpas = append(lpas, lpa)
		}
		task, err := ssd.OffloadCode(host.Offload{
			TaskID: uint32(i), Binary: make([]byte, 32<<10), LPAs: lpas,
		})
		if err != nil {
			log.Fatal(err)
		}
		tenants = append(tenants, tenant{task, lpas})
	}
	fmt.Printf("created %d concurrent TEEs with IDs", len(tenants))
	for _, tn := range tenants {
		fmt.Printf(" %d", tn.task.TEE().EID())
	}
	fmt.Println()
	// Each tenant reads its own data; none can read a neighbour's.
	for i, tn := range tenants {
		if _, err := tn.task.Store().ReadPage(tn.lpas[0]); err != nil {
			log.Fatalf("tenant %d blocked from own data: %v", i, err)
		}
	}
	other := tenants[1].lpas[0]
	if _, err := tenants[0].task.Store().ReadPage(other); err == nil {
		log.Fatal("tenant 0 read tenant 1's data")
	} else {
		fmt.Printf("cross-tenant read denied: tenant 0 -> LPA %d\n", other)
	}
	_ = query.Meter{}

	// Timing: collocate TPC-C with scan workloads and measure degradation.
	fmt.Println("\n== timing: collocation slowdown (IceClave mode) ==")
	sc := workload.SmallScale()
	cfg := core.DefaultConfig()
	record := func(name string) *workload.Trace {
		w, err := workload.ByName(name)
		if err != nil {
			log.Fatal(err)
		}
		tr, err := workload.Record(w, sc, 4096)
		if err != nil {
			log.Fatal(err)
		}
		return tr
	}
	mix := []string{"TPC-C", "TPC-H Q1", "Filter", "Aggregate"}
	var traces []*workload.Trace
	solo := map[string]core.Result{}
	for _, name := range mix {
		tr := record(name)
		traces = append(traces, tr)
		r, err := core.Run(tr, core.ModeIceClave, cfg)
		if err != nil {
			log.Fatal(err)
		}
		solo[name] = r
	}
	colo, err := core.RunMulti(traces, core.ModeIceClave, cfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%-10s %12s %12s %10s\n", "tenant", "solo", "collocated", "normalized")
	for i, name := range mix {
		s := solo[name]
		c := colo[i]
		fmt.Printf("%-10s %12v %12v %9.3f\n", name, s.Total, c.Total,
			float64(s.Total)/float64(c.Total))
	}
}
