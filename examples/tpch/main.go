// TPC-H: runs the paper's five TPC-H queries (Q1, Q3, Q12, Q14, Q19)
// inside in-storage TEEs and compares the four execution schemes of the
// evaluation (Host, Host+SGX, ISC, IceClave) on the timing model —
// a miniature of Figure 11.
package main

import (
	"fmt"
	"log"

	"iceclave"
	"iceclave/internal/core"
	"iceclave/internal/host"
	"iceclave/internal/query"
	"iceclave/internal/workload"
)

func main() {
	// Part 1: functional — execute the queries inside TEEs and verify
	// the results against plain host execution.
	ssd, err := iceclave.Open(iceclave.Options{})
	if err != nil {
		log.Fatal(err)
	}
	ds := query.GenerateTPCH(20_000, 7)
	sd, err := ssd.StoreDataset(ds, 0)
	if err != nil {
		log.Fatal(err)
	}
	queries := []struct {
		name string
		prog query.Program
	}{
		{"Q1", query.Q1}, {"Q3", query.Q3}, {"Q12", query.Q12},
		{"Q14", query.Q14}, {"Q19", query.Q19},
	}
	fmt.Println("== functional: queries inside in-storage TEEs ==")
	for _, q := range queries {
		task, err := ssd.OffloadCode(host.Offload{
			TaskID: 1, Binary: make([]byte, 64<<10), LPAs: sd.AllLPAs(ssd.PageSize()),
		})
		if err != nil {
			log.Fatal(err)
		}
		out, err := q.prog(task.Store(), sd, task.Meter())
		if err != nil {
			log.Fatalf("%s: %v", q.name, err)
		}
		if err := task.Finish([]byte(out)); err != nil {
			log.Fatal(err)
		}
		first := out
		if i := len(first); i > 60 {
			first = first[:60] + "..."
		}
		fmt.Printf("%-4s pages=%-5d result: %s\n", q.name, task.Meter().PagesRead, first)
	}

	// Part 2: timing — replay each query's trace under the four schemes.
	fmt.Println("\n== timing: Host vs Host+SGX vs ISC vs IceClave ==")
	fmt.Printf("%-10s %10s %10s %10s %10s %9s\n",
		"query", "Host", "Host+SGX", "ISC", "IceClave", "speedup")
	sc := workload.SmallScale()
	cfg := core.DefaultConfig()
	for _, name := range []string{"TPC-H Q1", "TPC-H Q3", "TPC-H Q12", "TPC-H Q14", "TPC-H Q19"} {
		w, err := workload.ByName(name)
		if err != nil {
			log.Fatal(err)
		}
		tr, err := workload.Record(w, sc, 4096)
		if err != nil {
			log.Fatal(err)
		}
		var results []core.Result
		for _, mode := range []core.Mode{core.ModeHost, core.ModeHostSGX, core.ModeISC, core.ModeIceClave} {
			r, err := core.Run(tr, mode, cfg)
			if err != nil {
				log.Fatal(err)
			}
			results = append(results, r)
		}
		fmt.Printf("%-10s %10v %10v %10v %10v %8.2fx\n",
			name, results[0].Total, results[1].Total, results[2].Total, results[3].Total,
			results[3].SpeedupOver(results[0]))
	}
}
