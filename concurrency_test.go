package iceclave

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"

	"iceclave/internal/ftl"
	"iceclave/internal/host"
	"iceclave/internal/query"
	"iceclave/internal/sched"
	"iceclave/internal/tee"
)

// stressTenantPages is each tenant's disjoint data-page count in the
// concurrency tests; page i of tenant t holds {byte(t), byte(i)}.
const stressTenantPages = 4

// seedTenantData writes every tenant's pages through the host path and
// returns the per-tenant LPA lists.
func seedTenantData(t testing.TB, ssd *SSD, tenants int) [][]uint32 {
	t.Helper()
	lpas := make([][]uint32, tenants)
	for ti := 0; ti < tenants; ti++ {
		for p := 0; p < stressTenantPages; p++ {
			lpa := uint32(ti*stressTenantPages + p)
			if err := ssd.HostWrite(lpa, []byte{byte(ti), byte(p)}); err != nil {
				t.Fatal(err)
			}
			lpas[ti] = append(lpas[ti], lpa)
		}
	}
	return lpas
}

// TestConcurrentOffloadStress drives ≥32 tenants through the scheduler,
// each repeatedly offloading, reading its own pages through the encrypted
// data path, writing intermediate output, and terminating. The total TEE
// count deliberately exceeds what the heap area could hold without
// reclamation, so lifecycle churn is exercised end to end. Run with -race.
func TestConcurrentOffloadStress(t *testing.T) {
	const tenants, jobsPerTenant = 32, 8
	ssd, err := Open(Options{Channels: 2, BlocksPerPlane: 8})
	if err != nil {
		t.Fatal(err)
	}
	lpas := seedTenantData(t, ssd, tenants)
	// Disjoint intermediate LPAs, far above the data region.
	interBase := uint32(tenants * stressTenantPages)

	s := sched.New(sched.Config{
		Workers:           8,
		TenantMaxInFlight: 1,
		MaxInFlight:       12, // stay below the 15 live TEE IDs
		QueueDepth:        tenants * jobsPerTenant,
	})
	var handles []*sched.Handle
	for ti := 0; ti < tenants; ti++ {
		ti := ti
		tenant := fmt.Sprintf("tenant-%02d", ti)
		for j := 0; j < jobsPerTenant; j++ {
			j := j
			h, err := s.Submit(tenant, sched.Priority(j%3), func(context.Context) error {
				own := append([]uint32(nil), lpas[ti]...)
				inter := interBase + uint32(ti)
				res, err := ssd.Execute(host.Offload{
					TaskID: uint32(ti*jobsPerTenant + j),
					Binary: make([]byte, 32<<10),
					LPAs:   append(own, inter),
				}, func(st query.Store, m *query.Meter) ([]byte, error) {
					for p, lpa := range own[:2] {
						data, err := st.ReadPage(lpa)
						if err != nil {
							return nil, fmt.Errorf("read %d: %w", lpa, err)
						}
						if data[0] != byte(ti) || data[1] != byte(p) {
							return nil, fmt.Errorf("tenant %d saw foreign data %v on LPA %d", ti, data[:2], lpa)
						}
					}
					payload := []byte{byte(ti), byte(j), 0xA5}
					if err := st.WritePage(inter, payload); err != nil {
						return nil, fmt.Errorf("write %d: %w", inter, err)
					}
					back, err := st.ReadPage(inter)
					if err != nil {
						return nil, err
					}
					if !bytes.Equal(back[:3], payload) {
						return nil, fmt.Errorf("intermediate round trip lost data")
					}
					return payload, nil
				})
				if err != nil {
					return err
				}
				if len(res) != 3 || res[0] != byte(ti) || res[1] != byte(j) {
					return fmt.Errorf("result cross-contaminated: %v", res)
				}
				return nil
			})
			if err != nil {
				t.Fatal(err)
			}
			handles = append(handles, h)
		}
	}
	if err := s.Close(context.Background()); err != nil {
		t.Fatal(err)
	}
	for i, h := range handles {
		if err := h.Wait(); err != nil {
			t.Fatalf("job %d: %v", i, err)
		}
	}
	st := s.Stats()
	if st.Completed != tenants*jobsPerTenant || st.Failed != 0 {
		t.Fatalf("stats = %+v", st)
	}
	rst := ssd.Runtime().Stats()
	if rst.Created != tenants*jobsPerTenant || rst.Terminated != tenants*jobsPerTenant {
		t.Fatalf("runtime lifecycle counters = %+v", rst)
	}
	if ssd.Runtime().Live() != 0 {
		t.Fatalf("%d TEEs leaked", ssd.Runtime().Live())
	}
	// All heap reclaimed after full churn.
	if free := ssd.Runtime().HeapFree(); free != (4<<30)-(128<<20) {
		t.Fatalf("heap not fully reclaimed: %d bytes free", free)
	}
	for ti := 0; ti < tenants; ti++ {
		ts := s.TenantStats(fmt.Sprintf("tenant-%02d", ti))
		if ts.Completed != jobsPerTenant {
			t.Fatalf("tenant %d completed %d/%d", ti, ts.Completed, jobsPerTenant)
		}
	}
}

// TestIsolationUnderConcurrency proves the paper's isolation guarantee
// holds mid-flight: while victim TEEs stream their own data, concurrent
// attacker TEEs probing foreign mapping entries are denied and thrown
// out, without perturbing the victims.
func TestIsolationUnderConcurrency(t *testing.T) {
	const victims, attackers = 6, 6
	ssd, err := Open(Options{Channels: 2, BlocksPerPlane: 8})
	if err != nil {
		t.Fatal(err)
	}
	lpas := seedTenantData(t, ssd, victims+attackers)

	victimTasks := make([]*Task, victims)
	for i := 0; i < victims; i++ {
		victimTasks[i], err = ssd.OffloadCode(host.Offload{
			TaskID: uint32(i), Binary: []byte{1}, LPAs: lpas[i],
		})
		if err != nil {
			t.Fatal(err)
		}
	}
	started := make(chan struct{})
	var startOnce sync.Once
	var wg sync.WaitGroup
	errCh := make(chan error, victims+attackers)

	// Victims stream their own pages the whole time.
	for i := 0; i < victims; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for round := 0; round < 30; round++ {
				startOnce.Do(func() { close(started) })
				for p, lpa := range lpas[i] {
					data, err := victimTasks[i].Store().ReadPage(lpa)
					if err != nil {
						errCh <- fmt.Errorf("victim %d read %d: %w", i, lpa, err)
						return
					}
					if data[0] != byte(i) || data[1] != byte(p) {
						errCh <- fmt.Errorf("victim %d read wrong bytes %v", i, data[:2])
						return
					}
				}
			}
		}(i)
	}
	// Attackers probe victims' LPAs mid-flight.
	for i := 0; i < attackers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			<-started
			ai := victims + i
			task, err := ssd.OffloadCode(host.Offload{
				TaskID: uint32(ai), Binary: []byte{1}, LPAs: lpas[ai],
			})
			if err != nil {
				errCh <- fmt.Errorf("attacker %d offload: %w", i, err)
				return
			}
			target := lpas[i%victims][0] // some victim's page
			if _, err := task.Store().ReadPage(target); !errors.Is(err, ftl.ErrAccessDenied) {
				errCh <- fmt.Errorf("attacker %d cross-TEE read returned %v, want access denied", i, err)
				return
			}
			if st := task.TEE().State(); st != tee.StateAborted {
				errCh <- fmt.Errorf("attacker %d state %v after violation, want aborted", i, st)
				return
			}
			// The aborted TEE is dead even for its own pages.
			if _, err := task.Store().ReadPage(lpas[ai][0]); !errors.Is(err, tee.ErrAborted) {
				errCh <- fmt.Errorf("attacker %d still served after abort: %v", i, err)
			}
		}(i)
	}
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Error(err)
	}
	if t.Failed() {
		t.FailNow()
	}
	if got := ssd.Runtime().Stats().Aborted; got != attackers {
		t.Fatalf("aborted = %d, want %d", got, attackers)
	}
	// Victims remain healthy and readable after the attack wave.
	for i, task := range victimTasks {
		if st := task.TEE().State(); st != tee.StateRunning {
			t.Fatalf("victim %d state %v", i, st)
		}
		if _, err := task.Store().ReadPage(lpas[i][0]); err != nil {
			t.Fatalf("victim %d read after attacks: %v", i, err)
		}
		if err := task.Finish(nil); err != nil {
			t.Fatalf("victim %d finish: %v", i, err)
		}
	}
}
